// Process-level metrics registry: named counters, gauges, and fixed-bucket
// histograms with optional labels (rank, job, core, phase).  Registration
// takes a lock; the returned handles are stable for the registry's lifetime
// and update with a single relaxed atomic op, so they can live on the hot
// path.  snapshot() renders the whole registry into util::Json for embedding
// in service reports and bench artifacts.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace ca::obs {

/// Sorted (key, value) label set; order-insensitive at registration.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing count (messages sent, retries, dumps...).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level (queue depth, ranks retired, bytes resident...).
class Gauge {
 public:
  void set(double v) {
    bits_.store(encode(v), std::memory_order_relaxed);
  }
  void add(double delta) {
    // Registry updates are single-writer in practice; a CAS loop keeps the
    // gauge correct even when they are not.
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(cur, encode(decode(cur) + delta),
                                        std::memory_order_relaxed)) {
    }
  }
  double value() const { return decode(bits_.load(std::memory_order_relaxed)); }

 private:
  static std::uint64_t encode(double v) {
    std::uint64_t b;
    static_assert(sizeof(b) == sizeof(v));
    __builtin_memcpy(&b, &v, sizeof(b));
    return b;
  }
  static double decode(std::uint64_t b) {
    double v;
    __builtin_memcpy(&v, &b, sizeof(v));
    return v;
  }
  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket histogram: bucket upper bounds are set at registration and
/// never change, so observe() is a linear scan over a handful of atomics.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const;
  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Count of observations landing in bucket i alone (NOT cumulative:
  /// bounds()[i-1] < v <= bounds()[i]); snapshot() emits these per-bucket
  /// counts plus a final +Inf entry holding the overflow.
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t overflow() const {
    return overflow_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // double, CAS-accumulated
};

/// Named instrument registry.  Lookups with the same (name, labels) return
/// the same instrument; references stay valid until the registry dies.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  /// Bounds must be strictly ascending; re-registration with different
  /// bounds keeps the original ones (first registration wins).
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       Labels labels = {});

  /// {"counters": [...], "gauges": [...], "histograms": [...]}, each entry
  /// {"name", "labels", ...values}.  Insertion-ordered and deterministic.
  util::Json snapshot() const;

 private:
  template <typename T>
  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<T> instrument;
  };

  static void normalize(Labels& labels);
  template <typename T>
  static T* find(std::vector<Entry<T>>& entries, const std::string& name,
                 const Labels& labels);

  mutable std::mutex mutex_;
  std::vector<Entry<Counter>> counters_;
  std::vector<Entry<Gauge>> gauges_;
  std::vector<Entry<Histogram>> histograms_;
};

/// Renders a MetricsRegistry::snapshot() document in the Prometheus text
/// exposition format (0.0.4): one `# TYPE` line per metric family, metric
/// and label names sanitized to [a-zA-Z0-9_:] ('.'/'-' become '_'), label
/// values escaped per the spec.  Histogram series follow the convention:
/// `_bucket{le="..."}` lines carry CUMULATIVE counts (the snapshot stores
/// per-bucket counts, so this function accumulates), the final bucket is
/// `le="+Inf"` and equals `_count`, and `_sum`/`_count` close the family.
std::string to_prometheus(const util::Json& snapshot);

}  // namespace ca::obs
