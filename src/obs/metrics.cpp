#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace ca::obs {
namespace {

std::uint64_t double_bits(double v) {
  std::uint64_t b;
  __builtin_memcpy(&b, &v, sizeof(b));
  return b;
}

double bits_double(std::uint64_t b) {
  double v;
  __builtin_memcpy(&v, &b, sizeof(v));
  return v;
}

util::Json labels_json(const Labels& labels) {
  util::Json j = util::Json::object();
  for (const auto& [k, v] : labels) j[k] = v;
  return j;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty())
    throw std::invalid_argument("histogram: needs at least one bucket bound");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
    throw std::invalid_argument(
        "histogram: bucket bounds must be strictly ascending");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size());
  for (std::size_t i = 0; i < bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  if (it == bounds_.end())
    overflow_.fetch_add(1, std::memory_order_relaxed);
  else
    buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
        1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(cur, double_bits(bits_double(cur) + v),
                                          std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const {
  return bits_double(sum_bits_.load(std::memory_order_relaxed));
}

void MetricsRegistry::normalize(Labels& labels) {
  std::sort(labels.begin(), labels.end());
}

template <typename T>
T* MetricsRegistry::find(std::vector<Entry<T>>& entries,
                         const std::string& name, const Labels& labels) {
  for (auto& e : entries)
    if (e.name == name && e.labels == labels) return e.instrument.get();
  return nullptr;
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels) {
  normalize(labels);
  std::lock_guard<std::mutex> lock(mutex_);
  if (Counter* c = find(counters_, name, labels)) return *c;
  counters_.push_back({name, std::move(labels), std::make_unique<Counter>()});
  return *counters_.back().instrument;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels) {
  normalize(labels);
  std::lock_guard<std::mutex> lock(mutex_);
  if (Gauge* g = find(gauges_, name, labels)) return *g;
  gauges_.push_back({name, std::move(labels), std::make_unique<Gauge>()});
  return *gauges_.back().instrument;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      Labels labels) {
  normalize(labels);
  std::lock_guard<std::mutex> lock(mutex_);
  if (Histogram* h = find(histograms_, name, labels)) return *h;
  histograms_.push_back(
      {name, std::move(labels), std::make_unique<Histogram>(std::move(bounds))});
  return *histograms_.back().instrument;
}

util::Json MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  util::Json doc = util::Json::object();
  util::Json counters = util::Json::array();
  for (const auto& e : counters_) {
    util::Json j = util::Json::object();
    j["name"] = e.name;
    j["labels"] = labels_json(e.labels);
    j["value"] = static_cast<double>(e.instrument->value());
    counters.push_back(std::move(j));
  }
  doc["counters"] = std::move(counters);
  util::Json gauges = util::Json::array();
  for (const auto& e : gauges_) {
    util::Json j = util::Json::object();
    j["name"] = e.name;
    j["labels"] = labels_json(e.labels);
    j["value"] = e.instrument->value();
    gauges.push_back(std::move(j));
  }
  doc["gauges"] = std::move(gauges);
  util::Json histograms = util::Json::array();
  for (const auto& e : histograms_) {
    util::Json j = util::Json::object();
    j["name"] = e.name;
    j["labels"] = labels_json(e.labels);
    util::Json buckets = util::Json::array();
    const auto& bounds = e.instrument->upper_bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      util::Json b = util::Json::object();
      b["le"] = bounds[i];
      b["count"] = static_cast<double>(e.instrument->bucket_count(i));
      buckets.push_back(std::move(b));
    }
    util::Json inf = util::Json::object();
    inf["le"] = "+Inf";
    inf["count"] = static_cast<double>(e.instrument->overflow());
    buckets.push_back(std::move(inf));
    j["buckets"] = std::move(buckets);
    j["count"] = static_cast<double>(e.instrument->count());
    j["sum"] = e.instrument->sum();
    histograms.push_back(std::move(j));
  }
  doc["histograms"] = std::move(histograms);
  return doc;
}

}  // namespace ca::obs
