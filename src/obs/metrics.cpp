#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace ca::obs {
namespace {

std::uint64_t double_bits(double v) {
  std::uint64_t b;
  __builtin_memcpy(&b, &v, sizeof(b));
  return b;
}

double bits_double(std::uint64_t b) {
  double v;
  __builtin_memcpy(&v, &b, sizeof(v));
  return v;
}

util::Json labels_json(const Labels& labels) {
  util::Json j = util::Json::object();
  for (const auto& [k, v] : labels) j[k] = v;
  return j;
}

// Prometheus metric/label names allow [a-zA-Z0-9_:]; everything else
// (the registry's dotted names, dashes) maps to '_'.
std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out.front() >= '0' && out.front() <= '9')
    out.insert(out.begin(), '_');
  return out;
}

// Shortest round-trippable rendering: integers print bare, everything
// else tries %g and falls back to full precision when %g loses bits.
std::string prom_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  if (std::strtod(buf, nullptr) == v) return buf;
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string prom_escape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

// Renders the snapshot's labels object (plus an optional extra pair, used
// for the histogram `le` label) as `{k="v",...}`, or "" with no labels.
std::string prom_labels(const util::Json* labels,
                        const std::string& extra_key = "",
                        const std::string& extra_val = "") {
  std::string body;
  if (labels != nullptr && labels->is_object()) {
    for (const auto& [k, v] : labels->members()) {
      if (!body.empty()) body += ",";
      body += prom_name(k) + "=\"" +
              prom_escape(v.is_string() ? v.as_string() : v.dump(0)) + "\"";
    }
  }
  if (!extra_key.empty()) {
    if (!body.empty()) body += ",";
    body += extra_key + "=\"" + prom_escape(extra_val) + "\"";
  }
  return body.empty() ? std::string() : "{" + body + "}";
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty())
    throw std::invalid_argument("histogram: needs at least one bucket bound");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
    throw std::invalid_argument(
        "histogram: bucket bounds must be strictly ascending");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size());
  for (std::size_t i = 0; i < bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  if (it == bounds_.end())
    overflow_.fetch_add(1, std::memory_order_relaxed);
  else
    buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
        1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(cur, double_bits(bits_double(cur) + v),
                                          std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const {
  return bits_double(sum_bits_.load(std::memory_order_relaxed));
}

void MetricsRegistry::normalize(Labels& labels) {
  std::sort(labels.begin(), labels.end());
}

template <typename T>
T* MetricsRegistry::find(std::vector<Entry<T>>& entries,
                         const std::string& name, const Labels& labels) {
  for (auto& e : entries)
    if (e.name == name && e.labels == labels) return e.instrument.get();
  return nullptr;
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels) {
  normalize(labels);
  std::lock_guard<std::mutex> lock(mutex_);
  if (Counter* c = find(counters_, name, labels)) return *c;
  counters_.push_back({name, std::move(labels), std::make_unique<Counter>()});
  return *counters_.back().instrument;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels) {
  normalize(labels);
  std::lock_guard<std::mutex> lock(mutex_);
  if (Gauge* g = find(gauges_, name, labels)) return *g;
  gauges_.push_back({name, std::move(labels), std::make_unique<Gauge>()});
  return *gauges_.back().instrument;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      Labels labels) {
  normalize(labels);
  std::lock_guard<std::mutex> lock(mutex_);
  if (Histogram* h = find(histograms_, name, labels)) return *h;
  histograms_.push_back(
      {name, std::move(labels), std::make_unique<Histogram>(std::move(bounds))});
  return *histograms_.back().instrument;
}

util::Json MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  util::Json doc = util::Json::object();
  util::Json counters = util::Json::array();
  for (const auto& e : counters_) {
    util::Json j = util::Json::object();
    j["name"] = e.name;
    j["labels"] = labels_json(e.labels);
    j["value"] = static_cast<double>(e.instrument->value());
    counters.push_back(std::move(j));
  }
  doc["counters"] = std::move(counters);
  util::Json gauges = util::Json::array();
  for (const auto& e : gauges_) {
    util::Json j = util::Json::object();
    j["name"] = e.name;
    j["labels"] = labels_json(e.labels);
    j["value"] = e.instrument->value();
    gauges.push_back(std::move(j));
  }
  doc["gauges"] = std::move(gauges);
  util::Json histograms = util::Json::array();
  for (const auto& e : histograms_) {
    util::Json j = util::Json::object();
    j["name"] = e.name;
    j["labels"] = labels_json(e.labels);
    util::Json buckets = util::Json::array();
    const auto& bounds = e.instrument->upper_bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      util::Json b = util::Json::object();
      b["le"] = bounds[i];
      b["count"] = static_cast<double>(e.instrument->bucket_count(i));
      buckets.push_back(std::move(b));
    }
    util::Json inf = util::Json::object();
    inf["le"] = "+Inf";
    inf["count"] = static_cast<double>(e.instrument->overflow());
    buckets.push_back(std::move(inf));
    j["buckets"] = std::move(buckets);
    j["count"] = static_cast<double>(e.instrument->count());
    j["sum"] = e.instrument->sum();
    histograms.push_back(std::move(j));
  }
  doc["histograms"] = std::move(histograms);
  return doc;
}

std::string to_prometheus(const util::Json& snapshot) {
  std::string out;
  std::vector<std::string> typed;  // families that already got a TYPE line
  auto type_line = [&](const std::string& name, const char* kind) {
    if (std::find(typed.begin(), typed.end(), name) != typed.end()) return;
    typed.push_back(name);
    out += "# TYPE " + name + " " + kind + "\n";
  };
  auto entries = [&](const char* key) -> const std::vector<util::Json>& {
    static const std::vector<util::Json> kEmpty;
    const util::Json* s = snapshot.find(key);
    return s != nullptr && s->is_array() ? s->items() : kEmpty;
  };
  auto scalar = [&](const util::Json& e, const char* kind) {
    const util::Json* n = e.find("name");
    if (n == nullptr || !n->is_string()) return;
    const std::string name = prom_name(n->as_string());
    type_line(name, kind);
    const util::Json* v = e.find("value");
    out += name + prom_labels(e.find("labels")) + " " +
           prom_value(v != nullptr ? v->as_double() : 0.0) + "\n";
  };
  for (const auto& e : entries("counters")) scalar(e, "counter");
  for (const auto& e : entries("gauges")) scalar(e, "gauge");
  for (const auto& e : entries("histograms")) {
    const util::Json* n = e.find("name");
    if (n == nullptr || !n->is_string()) continue;
    const std::string name = prom_name(n->as_string());
    type_line(name, "histogram");
    const util::Json* labels = e.find("labels");
    double cumulative = 0.0;  // snapshot stores per-bucket counts
    if (const util::Json* buckets = e.find("buckets")) {
      for (const auto& b : buckets->items()) {
        const util::Json* le = b.find("le");
        const util::Json* c = b.find("count");
        cumulative += c != nullptr ? c->as_double() : 0.0;
        const std::string bound =
            le == nullptr
                ? "+Inf"
                : (le->is_string() ? le->as_string() : prom_value(le->as_double()));
        out += name + "_bucket" + prom_labels(labels, "le", bound) + " " +
               prom_value(cumulative) + "\n";
      }
    }
    const util::Json* sum = e.find("sum");
    const util::Json* count = e.find("count");
    out += name + "_sum" + prom_labels(labels) + " " +
           prom_value(sum != nullptr ? sum->as_double() : 0.0) + "\n";
    out += name + "_count" + prom_labels(labels) + " " +
           prom_value(count != nullptr ? count->as_double() : 0.0) + "\n";
  }
  return out;
}

}  // namespace ca::obs
