#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>

#include "util/config.hpp"

namespace ca::obs {
namespace {

std::chrono::steady_clock::time_point process_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

// Touch the epoch at static-init time so concurrent first calls from rank
// threads never race on the function-local static's first use ordering
// relative to timestamps (the static itself is thread-safe; this just pins
// t=0 near process start instead of first-span time).
const auto kEpochAnchor = process_epoch();

}  // namespace

TraceOptions TraceOptions::from_config(const util::Config& cfg) {
  TraceOptions o;
  o.trace = cfg.get_bool("obs.trace", o.trace);
  o.dump_on_failure = cfg.get_bool("obs.dump_on_failure", o.dump_on_failure);
  o.ring_events = cfg.get_int("obs.ring_events", o.ring_events);
  o.dump_dir = cfg.get_string("obs.dump_dir", o.dump_dir);
  return o;
}

TraceOptions TraceOptions::env_resolved() const {
  // An empty Config still resolves CA_AGCM_* environment overrides, so the
  // operator can force tracing on (or dumps off) for a whole run without
  // touching call sites.
  util::Config env;
  TraceOptions o;
  o.trace = env.get_bool("obs.trace", trace);
  o.dump_on_failure = env.get_bool("obs.dump_on_failure", dump_on_failure);
  o.ring_events = env.get_int("obs.ring_events", ring_events);
  o.dump_dir = env.get_string("obs.dump_dir", dump_dir);
  return o;
}

double Tracer::now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - process_epoch())
      .count();
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    finish();
    tracer_ = other.tracer_;
    name_ = other.name_;
    category_ = other.category_;
    phase_ = other.phase_;
    t0_us_ = other.t0_us_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::finish() {
  if (tracer_ == nullptr) return;
  Tracer* t = tracer_;
  tracer_ = nullptr;
  const double t1 = Tracer::now_us();
  const double dur = t1 > t0_us_ ? t1 - t0_us_ : 0.0;
  if (phase_ != nullptr && t->phase_sink_ != nullptr)
    t->phase_sink_->add(phase_, dur * 1e-6);
  if (t->recording_)
    t->record(name_, category_, t0_us_, dur, /*instant=*/false, {});
}

void Tracer::configure(const TraceOptions& opts, int tid,
                       util::PhaseTimers* phase_sink,
                       TraceCollector* collector, int pid) {
  opts_ = opts;
  tid_ = tid;
  pid_ = pid;
  phase_sink_ = phase_sink;
  collector_ = collector;
  exporting_ = opts_.trace && collector_ != nullptr;
  recording_ = opts_.trace || opts_.dump_on_failure;
#ifdef CA_AGCM_OBS_OFF
  recording_ = false;
  exporting_ = false;
#endif
  ring_capacity_ = static_cast<std::size_t>(std::max(8, opts_.ring_events));
  ring_.clear();
  ring_.reserve(ring_capacity_);
  head_ = 0;
  wrapped_ = false;
  recorded_ = 0;
  dropped_ = 0;
}

void Tracer::record(const char* name, const char* category, double ts_us,
                    double dur_us, bool instant, std::string detail) {
  ++recorded_;
  TraceEvent ev{name, category, ts_us, dur_us, instant, std::move(detail)};
  if (ring_.size() < ring_capacity_) {
    ring_.push_back(std::move(ev));
    return;
  }
  if (exporting_) {
    // Exporting runs keep the complete stream: spill the full ring to the
    // collector and start over.  The ring still holds the most recent
    // events for flight dumps.
    collector_->add(pid_, tid_, ring_snapshot());
    ring_.clear();
    head_ = 0;
    wrapped_ = false;
    ring_.push_back(std::move(ev));
    return;
  }
  // Flight-recorder mode: bounded ring, overwrite the oldest.
  ring_[head_] = std::move(ev);
  head_ = (head_ + 1) % ring_capacity_;
  wrapped_ = true;
  ++dropped_;
}

void Tracer::instant(const char* name, const char* category,
                     std::string detail) {
  if (!recording_) return;
  record(name, category, now_us(), 0.0, /*instant=*/true, std::move(detail));
}

std::vector<TraceEvent> Tracer::ring_snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (wrapped_) {
    for (std::size_t i = 0; i < ring_.size(); ++i)
      out.push_back(ring_[(head_ + i) % ring_.size()]);
  } else {
    out = ring_;
  }
  return out;
}

void Tracer::flush() {
  if (!exporting_ || ring_.empty()) return;
  collector_->add(pid_, tid_, ring_snapshot());
  ring_.clear();
  head_ = 0;
  wrapped_ = false;
}

util::Json Tracer::flight_json(const std::string& reason) const {
  util::Json doc = util::Json::object();
  doc["schema"] = "ca-agcm/obs-flight/v1";
  doc["rank"] = tid_;
  doc["job"] = pid_;
  doc["reason"] = reason;
  doc["recorded"] = static_cast<double>(recorded_);
  doc["dropped"] = static_cast<double>(dropped_);
  util::Json events = util::Json::array();
  for (const TraceEvent& ev : ring_snapshot()) {
    util::Json j = util::Json::object();
    j["name"] = ev.name;
    j["cat"] = ev.category;
    j["ts_us"] = ev.ts_us;
    if (ev.instant)
      j["instant"] = true;
    else
      j["dur_us"] = ev.dur_us;
    if (!ev.detail.empty()) j["detail"] = ev.detail;
    events.push_back(std::move(j));
  }
  doc["events"] = std::move(events);
  return doc;
}

std::string Tracer::dump_flight(const std::string& reason) {
  if (!opts_.dump_on_failure) return "";
  std::string dir = opts_.dump_dir.empty() ? std::string(".") : opts_.dump_dir;
  if (dir.back() != '/') dir += '/';
  const std::string stem =
      tid_ >= 0 ? "obs_dump_rank" + std::to_string(tid_) : "obs_dump_service";
  // The first incident for this timeline keeps the legacy name; later
  // ones get a monotonic incident suffix instead of truncating it —
  // clobbering the dump of the FIRST failure with a later (often
  // secondary) one would destroy exactly the postmortem an operator
  // needs.  The existence probe makes the sequence robust across Tracer
  // instances: each attempt constructs its own rank tracers, so an
  // in-memory counter would restart at 0 and clobber anyway.
  std::string path = dir + stem + ".json";
  for (int incident = 1; std::ifstream(path).good(); ++incident) {
    if (incident > 9999) return "";  // runaway loop guard; give up loudly
    path = dir + stem + ".incident" + std::to_string(incident) + ".json";
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return "";
  out << flight_json(reason).dump(2) << "\n";
  return out ? path : "";
}

void TraceCollector::add(int pid, int tid, std::vector<TraceEvent> events) {
  std::lock_guard<std::mutex> lock(mutex_);
  items_.reserve(items_.size() + events.size());
  for (TraceEvent& ev : events) items_.push_back(Item{pid, tid, std::move(ev)});
}

void TraceCollector::set_process_name(int pid, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [p, n] : process_names_)
    if (p == pid) {
      n = std::move(name);
      return;
    }
  process_names_.emplace_back(pid, std::move(name));
}

void TraceCollector::set_thread_name(int pid, int tid, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, n] : thread_names_)
    if (key == std::make_pair(pid, tid)) {
      n = std::move(name);
      return;
    }
  thread_names_.emplace_back(std::make_pair(pid, tid), std::move(name));
}

std::size_t TraceCollector::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

util::Json TraceCollector::chrome_trace() const {
  std::lock_guard<std::mutex> lock(mutex_);
  util::Json doc = util::Json::object();
  util::Json events = util::Json::array();
  for (const auto& [pid, name] : process_names_) {
    util::Json m = util::Json::object();
    m["name"] = "process_name";
    m["ph"] = "M";
    m["pid"] = pid;
    m["tid"] = 0;
    util::Json args = util::Json::object();
    args["name"] = name;
    m["args"] = std::move(args);
    events.push_back(std::move(m));
  }
  for (const auto& [key, name] : thread_names_) {
    util::Json m = util::Json::object();
    m["name"] = "thread_name";
    m["ph"] = "M";
    m["pid"] = key.first;
    m["tid"] = key.second;
    util::Json args = util::Json::object();
    args["name"] = name;
    m["args"] = std::move(args);
    events.push_back(std::move(m));
  }
  // Stable ts order within each (pid, tid) timeline keeps the export
  // deterministic for tests and diffs.
  std::vector<const Item*> ordered;
  ordered.reserve(items_.size());
  for (const Item& it : items_) ordered.push_back(&it);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Item* a, const Item* b) {
                     if (a->pid != b->pid) return a->pid < b->pid;
                     if (a->tid != b->tid) return a->tid < b->tid;
                     return a->ev.ts_us < b->ev.ts_us;
                   });
  for (const Item* it : ordered) {
    util::Json j = util::Json::object();
    j["name"] = it->ev.name;
    j["cat"] = it->ev.category;
    j["ph"] = it->ev.instant ? "i" : "X";
    j["ts"] = it->ev.ts_us;
    if (!it->ev.instant) j["dur"] = it->ev.dur_us;
    j["pid"] = it->pid;
    j["tid"] = it->tid;
    if (it->ev.instant) j["s"] = "t";
    if (!it->ev.detail.empty()) {
      util::Json args = util::Json::object();
      args["detail"] = it->ev.detail;
      j["args"] = std::move(args);
    }
    events.push_back(std::move(j));
  }
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  return doc;
}

bool TraceCollector::write(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << chrome_trace().dump(1) << "\n";
  return static_cast<bool>(out);
}

std::string validate_chrome_trace(const util::Json& doc) {
  if (!doc.is_object()) return "document is not an object";
  const util::Json* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array())
    return "missing traceEvents array";
  std::size_t i = 0;
  for (const util::Json& ev : events->items()) {
    const std::string where = "traceEvents[" + std::to_string(i++) + "]";
    if (!ev.is_object()) return where + " is not an object";
    const util::Json* name = ev.find("name");
    if (name == nullptr || !name->is_string())
      return where + " lacks a string name";
    const util::Json* ph = ev.find("ph");
    if (ph == nullptr || !ph->is_string())
      return where + " lacks a string ph";
    const std::string& phase = ph->as_string();
    if (phase != "X" && phase != "i" && phase != "M")
      return where + " has unsupported ph '" + phase + "'";
    for (const char* key : {"pid", "tid"}) {
      const util::Json* v = ev.find(key);
      if (v == nullptr || !v->is_number())
        return where + " lacks numeric " + key;
    }
    if (phase == "M") continue;
    const util::Json* ts = ev.find("ts");
    if (ts == nullptr || !ts->is_number() || ts->as_double() < 0.0)
      return where + " lacks a non-negative ts";
    if (phase == "X") {
      const util::Json* dur = ev.find("dur");
      if (dur == nullptr || !dur->is_number() || dur->as_double() < 0.0)
        return where + " lacks a non-negative dur";
    }
  }
  return "";
}

}  // namespace ca::obs
