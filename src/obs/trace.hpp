// Tracing spans and the crash flight recorder.
//
// Each logical rank (and the service's scheduler thread) owns a Tracer: an
// RAII span API writing into a bounded per-rank ring buffer.  Three consumers
// share the same clock reads:
//
//   * util::PhaseTimers — spans opened with phase_span() add their duration
//     to the rank's phase totals, so BENCH_wallclock.json numbers and trace
//     timelines come from the same measurements;
//   * the trace export — when obs.trace is on, rings spill into the run's
//     TraceCollector, which merges all ranks into one Chrome trace_event
//     JSON (load chrome://tracing or https://ui.perfetto.dev);
//   * the flight recorder — the last N events stay in the ring and are
//     dumped to obs_dump_rank<r>.json when a rank dies (PeerDeadError,
//     ChecksumError, kill), a job exhausts its retries, or a checkpoint
//     chain read falls back, turning incidents into readable postmortems.
//
// With obs fully off (obs.trace=0 obs.dump_on_failure=0, or the
// CA_AGCM_OBS_OFF compile definition) span() reduces to a single branch and
// no clock is read; phase_span() keeps the seed's PhaseTimers accounting.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/timer.hpp"

namespace ca::util {
class Config;
}

namespace ca::obs {

/// Runtime observability knobs, all env-overridable (CA_AGCM_OBS_*).
struct TraceOptions {
  /// Export spans to the run's TraceCollector (Chrome trace JSON).
  bool trace = false;
  /// Keep the flight-recorder ring armed and dump it on failures.
  bool dump_on_failure = true;
  /// Ring capacity (events per rank) for the flight recorder.
  int ring_events = 256;
  /// Directory receiving obs_dump_rank<r>.json flight dumps.
  std::string dump_dir = ".";

  /// Reads obs.trace / obs.dump_on_failure / obs.ring_events / obs.dump_dir.
  static TraceOptions from_config(const util::Config& cfg);
  /// This options value with CA_AGCM_OBS_* environment overrides applied on
  /// top (same pattern as the service.replicate env default): programmatic
  /// settings survive unless the operator exported an override.
  TraceOptions env_resolved() const;
};

struct TraceEvent {
  const char* name = "";
  const char* category = "";
  double ts_us = 0.0;   // relative to the process-wide steady epoch
  double dur_us = 0.0;
  bool instant = false;
  std::string detail;   // optional free-form annotation ("args.detail")
};

class TraceCollector;
class Tracer;

/// Movable RAII handle; closes (and records) the span on destruction.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { finish(); }

  /// Closes the span early (idempotent).
  void finish();
  bool active() const { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, const char* name, const char* category,
       const char* phase, double t0_us)
      : tracer_(tracer), name_(name), category_(category), phase_(phase),
        t0_us_(t0_us) {}

  Tracer* tracer_ = nullptr;
  const char* name_ = "";
  const char* category_ = "";
  const char* phase_ = nullptr;  // PhaseTimers key, null = trace-only
  double t0_us_ = 0.0;
};

class Tracer {
 public:
  Tracer() = default;

  /// Arms the tracer.  tid identifies this ring in merged traces and dump
  /// file names (world rank; -1 = the service scheduler).  phase_sink, when
  /// set, receives phase_span() durations (the rank's PhaseTimers).
  /// collector, when set and opts.trace is on, receives the full span
  /// stream under (pid, tid).
  void configure(const TraceOptions& opts, int tid,
                 util::PhaseTimers* phase_sink = nullptr,
                 TraceCollector* collector = nullptr, int pid = 0);

  /// True when events are being recorded (trace export or flight ring).
  bool recording() const { return recording_; }
  const TraceOptions& options() const { return opts_; }
  int tid() const { return tid_; }

  /// Trace-only span: a single predicted-false branch when obs is off.
  Span span(const char* name, const char* category = "core") {
#ifdef CA_AGCM_OBS_OFF
    (void)name;
    (void)category;
    return Span{};
#else
    if (!recording_) return Span{};
    return Span(this, name, category, nullptr, now_us());
#endif
  }

  /// Span that also accumulates into PhaseTimers under `phase` — the
  /// bench's phase totals and the trace timeline share one clock pair.
  Span phase_span(const char* name, const char* category, const char* phase) {
#ifdef CA_AGCM_OBS_OFF
    if (phase_sink_ == nullptr) return Span{};
    return Span(this, name, category, phase, now_us());
#else
    if (!recording_ && phase_sink_ == nullptr) return Span{};
    return Span(this, name, category, phase, now_us());
#endif
  }

  /// Point event (heartbeat beat, retransmit request, scheduler decision).
  void instant(const char* name, const char* category = "comm",
               std::string detail = {});

  /// Events recorded / overwritten-before-export since configure().
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Ring contents, oldest first.
  std::vector<TraceEvent> ring_snapshot() const;

  /// Pushes any ring remainder to the collector (when exporting).  Called
  /// once when the owning rank finishes; safe to call repeatedly.
  void flush();

  /// Flight-recorder document for this ring (schema ca-agcm/obs-flight/v1).
  util::Json flight_json(const std::string& reason) const;

  /// Writes flight_json to <dump_dir>/obs_dump_rank<tid>.json (tid < 0 =>
  /// obs_dump_service.json).  A second incident for the same timeline
  /// never clobbers the first: once the legacy name exists, later dumps
  /// append a monotonic `.incident<seq>` suffix (probe-based, so the
  /// sequence survives Tracer reconstruction across attempts).  No-op
  /// returning "" when dump_on_failure is off; returns the path written
  /// otherwise.
  std::string dump_flight(const std::string& reason);

  /// Microseconds since the process-wide steady epoch shared by every
  /// tracer, so per-rank timelines merge without skew.
  static double now_us();

 private:
  friend class Span;
  void record(const char* name, const char* category, double ts_us,
              double dur_us, bool instant, std::string detail);

  TraceOptions opts_;
  bool recording_ = false;
  bool exporting_ = false;
  int tid_ = 0;
  int pid_ = 0;
  util::PhaseTimers* phase_sink_ = nullptr;
  TraceCollector* collector_ = nullptr;
  std::vector<TraceEvent> ring_;
  std::size_t ring_capacity_ = 0;
  std::size_t head_ = 0;  // oldest entry once the ring has wrapped
  bool wrapped_ = false;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Thread-safe sink merging every rank's spans of a run (pid = job id,
/// tid = rank) into one Chrome trace_event document.
class TraceCollector {
 public:
  void add(int pid, int tid, std::vector<TraceEvent> events);
  void set_process_name(int pid, std::string name);
  void set_thread_name(int pid, int tid, std::string name);

  std::size_t event_count() const;
  /// {"traceEvents": [...], "displayTimeUnit": "ms"} — "X" complete events
  /// and "i" instants, plus "M" metadata naming processes/threads.
  util::Json chrome_trace() const;
  /// Serializes chrome_trace() to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  struct Item {
    int pid;
    int tid;
    TraceEvent ev;
  };
  mutable std::mutex mutex_;
  std::vector<Item> items_;
  std::vector<std::pair<int, std::string>> process_names_;
  std::vector<std::pair<std::pair<int, int>, std::string>> thread_names_;
};

/// Structural validation of a Chrome trace document ("" = valid, else a
/// description of the first violation).  Used by tests and the bench gates.
std::string validate_chrome_trace(const util::Json& doc);

}  // namespace ca::obs
