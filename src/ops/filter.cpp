#include "ops/filter.hpp"

#include <cmath>

#include "util/math.hpp"

namespace ca::ops {

FourierFilter::FourierFilter(const OpContext& ctx)
    : plan_(static_cast<std::size_t>(ctx.mesh->nx())),
      nx_(ctx.mesh->nx()),
      ny_(ctx.mesh->ny()),
      band_(ctx.params.filter_band),
      aspect_(static_cast<double>(ctx.mesh->nx()) /
              (2.0 * ctx.mesh->ny())) {}

bool FourierFilter::row_active(int gj) const {
  const double theta = (gj + 0.5) * util::kPi / ny_;
  return theta < band_ || theta > util::kPi - band_;
}

int FourierFilter::active_rows(int gj0, int gj1) const {
  int n = 0;
  for (int gj = gj0; gj < gj1; ++gj)
    if (row_active(gj)) ++n;
  return n;
}

template <typename T>
std::span<T> FourierFilter::acquire(std::vector<T>& buf,
                                    std::size_t n) const {
  if (n > buf.capacity())
    ++ws_.allocations;
  else
    ++ws_.reuses;
  buf.resize(n);
  return {buf.data(), n};
}

void FourierFilter::filter_line(std::span<double> line,
                                double sin_theta) const {
  const std::size_t n = static_cast<std::size_t>(nx_);
  auto spec = acquire(ws_.spec, n / 2 + 1);
  auto scratch = acquire(ws_.fft_scratch, plan_.scratch_size());
  plan_.forward(std::span<const double>(line.data(), n), spec, scratch);
  for (std::size_t m = 1; m <= n / 2; ++m) {
    const double smn = std::sin(util::kPi * static_cast<double>(m) /
                                static_cast<double>(n));
    const double d = std::min(1.0, sin_theta * aspect_ / smn);
    spec[m] *= d;
  }
  plan_.inverse(spec, line, scratch);
}

void FourierFilter::apply_local(const OpContext& ctx, state::State& s,
                                const mesh::Box& window) const {
  for (int j = window.j0; j < window.j1; ++j) {
    const int gj = ctx.gj(j);
    if (gj < 0 || gj >= ny_ || !row_active(gj)) continue;
    const double sc = ctx.sin_t(j);
    const double svv = ctx.sin_tv(j);
    for (int k = window.k0; k < window.k1; ++k) {
      filter_line(s.u().line(j, k), sc);
      if (svv > 1e-12) filter_line(s.v().line(j, k), svv);
      filter_line(s.phi().line(j, k), sc);
    }
    // psa line (2-D): stage a contiguous copy in the reusable row buffer.
    auto row = acquire(ws_.row, static_cast<std::size_t>(nx_));
    for (int i = 0; i < nx_; ++i)
      row[static_cast<std::size_t>(i)] = s.psa()(i, j);
    filter_line(row, sc);
    for (int i = 0; i < nx_; ++i)
      s.psa()(i, j) = row[static_cast<std::size_t>(i)];
  }
}

void FourierFilter::apply_distributed(const OpContext& ctx,
                                      comm::Context& comm_ctx,
                                      const comm::Communicator& line_x,
                                      state::State& s,
                                      const mesh::Box& window) const {
  const int lnx = s.lnx();
  const int px = line_x.size();
  // Collect the active (field, j, k) lines of this window.
  ws_.lines.clear();
  std::vector<LineRef>& lines = ws_.lines;
  for (int j = window.j0; j < window.j1; ++j) {
    const int gj = ctx.gj(j);
    if (gj < 0 || gj >= ny_ || !row_active(gj)) continue;
    const double sc = ctx.sin_t(j);
    const double svv = ctx.sin_tv(j);
    for (int k = window.k0; k < window.k1; ++k) {
      lines.push_back({0, j, k, sc});
      if (svv > 1e-12) lines.push_back({1, j, k, svv});
      lines.push_back({2, j, k, sc});
    }
    lines.push_back({3, j, 0, sc});
  }
  if (lines.empty()) {
    // Stay collective: peers with the same window also see no lines.
    return;
  }

  const std::size_t nlines = lines.size();
  auto local = acquire(ws_.local, nlines * static_cast<std::size_t>(lnx));
  auto value = [&](const LineRef& ref, int i) -> double& {
    switch (ref.field) {
      case 0:
        return s.u()(i, ref.j, ref.k);
      case 1:
        return s.v()(i, ref.j, ref.k);
      case 2:
        return s.phi()(i, ref.j, ref.k);
      default:
        return s.psa()(i, ref.j);
    }
  };
  for (std::size_t l = 0; l < nlines; ++l)
    for (int i = 0; i < lnx; ++i)
      local[l * static_cast<std::size_t>(lnx) +
            static_cast<std::size_t>(i)] = value(lines[l], i);

  auto gathered =
      acquire(ws_.gathered, local.size() * static_cast<std::size_t>(px));
  comm::allgather<double>(comm_ctx, line_x, local, gathered);

  // Reassemble each full line (rank blocks are contiguous in `gathered`).
  auto full = acquire(ws_.full, static_cast<std::size_t>(nx_));
  const int me = line_x.rank();
  for (std::size_t l = 0; l < nlines; ++l) {
    for (int r = 0; r < px; ++r) {
      const double* src = gathered.data() +
                          static_cast<std::size_t>(r) * local.size() +
                          l * static_cast<std::size_t>(lnx);
      for (int i = 0; i < lnx; ++i)
        full[static_cast<std::size_t>(r * lnx + i)] = src[i];
    }
    filter_line(full, lines[l].sin_theta);
    for (int i = 0; i < lnx; ++i)
      value(lines[l], i) = full[static_cast<std::size_t>(me * lnx + i)];
  }
}

}  // namespace ca::ops
