#include "ops/tendency.hpp"

#include "ops/vertical.hpp"

namespace ca::ops {

mesh::Box face_ring(const mesh::Box& window) {
  // x needs two extra columns: the 4th-order staggered x-derivative of
  // phi' at a U point reads {i-2 .. i+1}; y needs one (staggered averages
  // and j+-1 stencils).
  mesh::Box b = window;
  b.i0 -= 2;
  b.i1 += 2;
  b.j0 -= 1;
  b.j1 += 1;
  return b;
}

void compute_local_diag(const OpContext& ctx, const state::State& xi,
                        const mesh::Box& window, DiagWorkspace& ws) {
  const mesh::Box ring = face_ring(window);
  compute_surface_factors(ctx, xi.psa(), ring, 1, ws.local);
  compute_divergence(ctx, xi, ring, ws.local);
}

void compute_vert_diag_serial(const OpContext& ctx, const state::State& xi,
                              const mesh::Box& window, DiagWorkspace& ws) {
  const mesh::Box ring = face_ring(window);
  column_partials(ctx, xi, ring, ws.local, ws.own_div, ws.own_phi);
  for (int j = ring.j0; j < ring.j1; ++j) {
    for (int i = ring.i0; i < ring.i1; ++i) {
      ws.base_div(i, j) = 0.0;
      ws.base_phi(i, j) = 0.0;
      ws.total_div(i, j) = ws.own_div(i, j);
      ws.total_phi(i, j) = ws.own_phi(i, j);
    }
  }
  column_finish(ctx, xi, ring, ws.local, ws.base_div, ws.total_div,
                ws.base_phi, ws.own_phi, ws.total_phi, ws.vert);
}

}  // namespace ca::ops
