// Sub-range (interior/boundary) window arithmetic for the
// communication/computation overlap: an update window splits into an
// interior box whose full read footprint stays inside owned cells and a
// deterministic set of boundary boxes that are evaluated only after the
// halo faces they read have arrived.  The split is purely geometric —
// every stencil kernel already takes an explicit window, so running it
// over {interior} ∪ boundary boxes composes bitwise to the full-window
// evaluation (the tiles partition the window and each kernel is a
// deterministic pointwise function of its inputs).
#pragma once

#include <vector>

#include "mesh/halo.hpp"

namespace ca::ops {

/// `w` shrunk inward by (sx, sy, sz) on both sides of each axis; collapses
/// to a canonical empty box (all extents zero at the window origin) when
/// the window is too small to keep an interior.  The shrink per axis must
/// be at least the kernel's read depth on that axis so the interior pass
/// reads no halo cell.
mesh::Box shrink_window(const mesh::Box& w, int sx, int sy, int sz);

/// `b` grown outward by (gx, gy, gz) on both sides of each axis: the read
/// closure of a boundary box, i.e. the region whose halo messages must
/// have landed before the box can be evaluated.
mesh::Box grow_box(const mesh::Box& b, int gx, int gy, int gz);

/// Boxes covering window \ inner in deterministic order (y-low strip,
/// y-high strip, x-low, x-high, z-low, z-high).  `inner` is clipped to
/// the window first; an empty inner yields {window}.  Together with
/// `inner` the result partitions `window` (disjoint, exact cover).
std::vector<mesh::Box> subtract_box(const mesh::Box& window,
                                    const mesh::Box& inner);

}  // namespace ca::ops
