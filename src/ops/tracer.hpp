// Passive tracer transport with the dynamical core's own advection
// machinery: a scalar q carried at the scalar points and advected by the
// same skew-symmetric L1 + L2 + L3 operators as Phi (paper eq. 3), so it
// inherits the quadratic-conservation property.  AGCMs carry moisture and
// chemistry this way; here it doubles as an independent consumer of the
// operator layer.
#pragma once

#include "mesh/halo.hpp"
#include "ops/context.hpp"
#include "state/state.hpp"

namespace ca::ops {

enum class TracerScheme {
  /// The dynamical core's skew-symmetric form: conserves the quadratic
  /// invariant, but (like all centered schemes) can overshoot.
  kSkewSymmetric,
  /// First-order upwind in flux form: monotone (no new extrema, positive
  /// definite) at the cost of numerical diffusion — the standard choice
  /// for moisture-like tracers.
  kUpwindMonotone,
};

class TracerAdvection {
 public:
  /// The advecting state xi provides u, v (through pfac) and sigma-dot
  /// (through vert).
  TracerAdvection(const OpContext& ctx, const state::State& xi,
                  const LocalDiag& local, const VertDiag& vert,
                  TracerScheme scheme = TracerScheme::kSkewSymmetric)
      : ctx_(&ctx), xi_(&xi), local_(&local), vert_(&vert),
        scheme_(scheme) {}

  /// d(q)/dt = -(L1 + L2 + L3)(q) at the scalar point (i, j, k).
  double tendency(const util::Array3D<double>& q, int i, int j, int k) const;

  /// Evaluates the tendency over `window` into dq.
  void apply(const util::Array3D<double>& q, util::Array3D<double>& dq,
             const mesh::Box& window) const;

 private:
  double l1(const util::Array3D<double>& q, int i, int j, int k) const;
  double l2(const util::Array3D<double>& q, int i, int j, int k) const;
  double l3(const util::Array3D<double>& q, int i, int j, int k) const;
  double u_at_u(int i, int j, int k) const;
  double v_at_v(int i, int j, int k) const;

  double upwind_tendency(const util::Array3D<double>& q, int i, int j,
                         int k) const;

  const OpContext* ctx_;
  const state::State* xi_;
  const LocalDiag* local_;
  const VertDiag* vert_;
  TracerScheme scheme_ = TracerScheme::kSkewSymmetric;
};

/// Forward-Euler advance of a tracer field over `steps` sub-steps of dt,
/// refreshing the tracer's boundary halos with the given filler between
/// sub-steps (periodic x + pole reflection + zero-gradient z, like a
/// scalar prognostic).
void advance_tracer(const OpContext& ctx, const state::State& xi,
                    const LocalDiag& local, const VertDiag& vert,
                    util::Array3D<double>& q, double dt, int steps,
                    TracerScheme scheme = TracerScheme::kSkewSymmetric);

/// Boundary fill for a scalar tracer (symmetric pole reflection).
void fill_tracer_boundaries(const OpContext& ctx,
                            util::Array3D<double>& q);

}  // namespace ca::ops
