// The smoothing operator S~ (paper Section 4.3.2, Table 3):
//   P1(phi) = phi - (beta/16) dlambda^4 phi                  (U, V)
//   P2(phi) = (1 - beta/16 dlambda^4)(1 - beta/16 dtheta^4)  (Phi, p'_sa)
// where d^4 is the 4th finite difference (footprint +-2).
//
// The operator-splitting S~ = S~2 ∘ S~1 writes P2 as a sum of y-offset
// contributions  P2(phi)_j = sum_{d=-2..2} a_d * X(phi_{j+d})  with X the
// x-factor and a_{0,+-1,+-2} = {1 - 6b, 4b, -b}, b = beta/16.  Former
// smoothing (S1) applies the offsets available before the halo exchange;
// later smoothing (S2) recomputes the seam rows as the complete canonical
// fold from the received pre-smoothing rows, fusing the smoothing exchange
// into the adaptation exchange (Algorithm 2 lines 5-11).  S2 deliberately
// overwrites rather than accumulating the missing terms: reproducing the
// monolithic operator's exact floating-point addition order keeps a
// y-decomposed trajectory bitwise identical to the serial one, which is
// what lets checkpoints reshard across py changes bit-for-bit.
#pragma once

#include "mesh/halo.hpp"
#include "ops/context.hpp"
#include "state/state.hpp"

namespace ca::ops {

/// a_d coefficient of the y (theta) smoothing factor, d in [-2, 2].
double smoothing_y_coeff(const ModelParams& params, int d);

/// Full S~ over `window`: out.U/V = P1(in), out.Phi/psa = P2(in).
/// Requires +-2 halos of `in` valid in x and y around the window.
/// `out` must not alias `in`.
void apply_smoothing(const OpContext& ctx, const state::State& in,
                     state::State& out, const mesh::Box& window);

/// Former smoothing S1, in place.  Rows within 2 of the north (low-j) side
/// use only offsets d >= -(distance) when split_north (the missing
/// contributions come later); analogously for split_south.  U and V (P1,
/// x-only) are always completed here.  The caller must have saved the
/// pre-smoothing boundary rows (see apply_smoothing_later).
void apply_smoothing_former(const OpContext& ctx, state::State& s,
                            const mesh::Box& window, bool split_north,
                            bool split_south);

/// Later smoothing S2: recomputes the complete P2 fold (canonical d=-2..2
/// order, matching apply_smoothing bitwise) for
///   - own rows {0, 1} (north) / {lny-2, lny-1} (south), and
///   - received halo rows {-1, -2} / {lny, lny+1}
/// reading pre-smoothing values from `pre` (a copy of the state before S1
/// whose halo rows hold the neighbors' pre-smoothing rows to depth 4).
void apply_smoothing_later(const OpContext& ctx, const state::State& pre,
                           state::State& s, const mesh::Box& window,
                           bool split_north, bool split_south);

}  // namespace ca::ops
