// Optional horizontal diffusion (del-2) of the prognostic fields — the
// explicit dissipation production dynamical cores add for numerical
// robustness alongside (or instead of) stronger smoothing.  Kept separate
// from the paper's operators so the reproduction stays faithful by
// default (coefficient 0 = off); exposed for stability experiments and
// the dissipation ablation.
#pragma once

#include "mesh/halo.hpp"
#include "ops/context.hpp"
#include "state/state.hpp"

namespace ca::ops {

/// Applies one explicit diffusion step q += dt * nu * del2(q) to U, V and
/// Phi over the owned interior (halos must be valid; callers re-exchange
/// afterwards).  nu in m^2/s; stability requires
/// nu * dt / min(dx)^2 <= 1/4.
void apply_horizontal_diffusion(const OpContext& ctx, state::State& s,
                                double nu, double dt);

/// The spherical del-2 of a scalar-point field at (i, j, k):
/// (1/a^2)[ (1/sin^2) d2/dlambda^2 + (1/sin) d/dtheta (sin d/dtheta) ].
double laplacian_at(const OpContext& ctx, const util::Array3D<double>& f,
                    int i, int j, int k);

/// Largest stable dt for a given nu on this mesh (the min-dx constraint
/// at the most polar scalar row).
double diffusion_stable_dt(const OpContext& ctx, double nu);

}  // namespace ca::ops
