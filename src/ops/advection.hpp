// The advection operator L~ = L1 + L2 + L3 (paper eq. 3, Table 2) in the
// IAP skew-symmetric form  L(F) = (1/2)(2 d(F c)/ds - F dc/ds)  which
// telescopes under summation by parts: sum_m F_m L(F)_m = boundary terms,
// the discrete property behind the model's quadratic conservation.
//
// x-direction (L1) supports 2nd order (exactly skew-symmetric; used by the
// conservation tests) and 4th order (the production setting, reproducing
// the i±3 footprints of Table 2).  y (L2) and z (L3) are 2nd order with
// footprints {j, j±1} and {k, k±1} as in the table.
#pragma once

#include "mesh/halo.hpp"
#include "ops/context.hpp"
#include "state/state.hpp"

namespace ca::ops {

class AdvectionTerms {
 public:
  AdvectionTerms(const OpContext& ctx, const state::State& xi,
                 const LocalDiag& local, const VertDiag& vert)
      : ctx_(&ctx), xi_(&xi), local_(&local), vert_(&vert) {}

  double l1_u(int i, int j, int k) const;
  double l2_u(int i, int j, int k) const;
  double l3_u(int i, int j, int k) const;

  double l1_v(int i, int j, int k) const;
  double l2_v(int i, int j, int k) const;
  double l3_v(int i, int j, int k) const;

  double l1_phi(int i, int j, int k) const;
  double l2_phi(int i, int j, int k) const;
  double l3_phi(int i, int j, int k) const;

  double tend_u(int i, int j, int k) const {
    return -(l1_u(i, j, k) + l2_u(i, j, k) + l3_u(i, j, k));
  }
  double tend_v(int i, int j, int k) const {
    return -(l1_v(i, j, k) + l2_v(i, j, k) + l3_v(i, j, k));
  }
  double tend_phi(int i, int j, int k) const {
    return -(l1_phi(i, j, k) + l2_phi(i, j, k) + l3_phi(i, j, k));
  }

 private:
  // Physical velocities at their C-grid points (u = U/P_u etc.).
  double u_at_u(int i, int j, int k) const;
  double v_at_v(int i, int j, int k) const;

  const OpContext* ctx_;
  const state::State* xi_;
  const LocalDiag* local_;
  const VertDiag* vert_;
};

/// Evaluates the advection tendency (-sum L_m applied to U, V, Phi; the
/// p'_sa component of L~ is zero) over `window`.  local/vert must hold pfac
/// and sdot on the window (+1 ring).
void apply_advection(const OpContext& ctx, const state::State& xi,
                     const LocalDiag& local, const VertDiag& vert,
                     state::State& tend, const mesh::Box& window);

}  // namespace ca::ops
