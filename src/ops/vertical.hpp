// The vertical (collective-along-z) computations of the operator C:
// surface pressure factors, the horizontal divergence D(P), and the
// column integrals that yield the divergence sum, sigma-dot, W, and the
// hydrostatic geopotential deviation phi'.
//
// The cross-rank step is exactly two z-line collectives per C execution
// (one allreduce of the per-rank column totals, one exclusive scan),
// performed by the core executors; everything in this header is local.
//
// Index conventions: full levels k in [k0, k1) of the evaluation window;
// interface arrays (sdot, w) at index k = interface sigma_half(k), valid
// for k in [k0, k1].
#pragma once

#include "mesh/halo.hpp"
#include "ops/context.hpp"
#include "state/state.hpp"

namespace ca::ops {

/// Fills local.pes and local.pfac over the (i, j) face of `window` expanded
/// by `ring` extra cells on each side (staggered averages and x/y
/// derivatives of p_es read neighbors).  psa must be valid there.
void compute_surface_factors(const OpContext& ctx,
                             const util::Array2D<double>& psa,
                             const mesh::Box& window, int ring,
                             LocalDiag& local);

/// D(P) at scalar points over `window`.  Reads U at {i, i+1}, V at
/// {j-1, j} (and pfac averages), so inputs must be valid one cell beyond
/// the window in x and y.
void compute_divergence(const OpContext& ctx, const state::State& xi,
                        const mesh::Box& window, LocalDiag& local);

/// Per-rank column contributions over the OWNED z range, evaluated on the
/// (i, j) face of `window`:
///   out_div(i,j) = sum_{k owned} dsigma_k * D(P)
///   out_phi(i,j) = sum of this rank's hydrostatic increments
/// local.div must already hold D(P) on the owned z range of the face.
void column_partials(const OpContext& ctx, const state::State& xi,
                     const mesh::Box& window, const LocalDiag& local,
                     util::Array2D<double>& out_div,
                     util::Array2D<double>& out_phi);

/// Hydrostatic increment between full levels m-1 and m (interface m), or
/// the surface half-step when m == nz (global).  Used by column_partials
/// and column_finish; exposed for tests.
double hydrostatic_increment(const OpContext& ctx, const state::State& xi,
                             const LocalDiag& local, int i, int j, int m);

/// Given the cross-rank bases —
///   div_prefix(i,j): sum of dsigma*D(P) over all GLOBAL levels above this
///     rank's first owned level (exscan result),
///   div_total(i,j): the global column sum (allreduce result),
///   phi_prefix(i,j): sum of hydrostatic increments of ranks ABOVE
///     (smaller cz; exscan result),
///   phi_own(i,j): this rank's own contribution —
/// fills vert.divsum, vert.sdot, vert.w (interfaces [k0, k1]) and
/// vert.phi_geo (full levels [k0, k1)) over `window`.
void column_finish(const OpContext& ctx, const state::State& xi,
                   const mesh::Box& window, const LocalDiag& local,
                   const util::Array2D<double>& div_prefix,
                   const util::Array2D<double>& div_total,
                   const util::Array2D<double>& phi_prefix,
                   const util::Array2D<double>& phi_own,
                   const util::Array2D<double>& phi_total,
                   VertDiag& vert);

}  // namespace ca::ops
