#include "ops/smoothing.hpp"

#include <cmath>

namespace ca::ops {
namespace {

/// X factor (1 - beta/16 * dlambda^4) of a 3-D field at (i, j, k).
inline double x_factor3(const util::Array3D<double>& f, double b, int i,
                        int j, int k) {
  const double d4 = f(i - 2, j, k) - 4.0 * f(i - 1, j, k) +
                    6.0 * f(i, j, k) - 4.0 * f(i + 1, j, k) +
                    f(i + 2, j, k);
  return f(i, j, k) - b * d4;
}

inline double x_factor2(const util::Array2D<double>& f, double b, int i,
                        int j) {
  const double d4 = f(i - 2, j) - 4.0 * f(i - 1, j) + 6.0 * f(i, j) -
                    4.0 * f(i + 1, j) + f(i + 2, j);
  return f(i, j) - b * d4;
}

}  // namespace

double smoothing_y_coeff(const ModelParams& params, int d) {
  const double b = params.smooth_beta / 16.0;
  switch (d < 0 ? -d : d) {
    case 0:
      return 1.0 - 6.0 * b;
    case 1:
      return 4.0 * b;
    case 2:
      return -b;
    default:
      return 0.0;
  }
}

void apply_smoothing(const OpContext& ctx, const state::State& in,
                     state::State& out, const mesh::Box& window) {
  const double b = ctx.params.smooth_beta / 16.0;
  for (int k = window.k0; k < window.k1; ++k) {
    for (int j = window.j0; j < window.j1; ++j) {
      for (int i = window.i0; i < window.i1; ++i) {
        out.u()(i, j, k) = x_factor3(in.u(), b, i, j, k);
        out.v()(i, j, k) = x_factor3(in.v(), b, i, j, k);
        double acc = 0.0;
        for (int d = -2; d <= 2; ++d)
          acc += smoothing_y_coeff(ctx.params, d) *
                 x_factor3(in.phi(), b, i, j + d, k);
        out.phi()(i, j, k) = acc;
      }
    }
  }
  for (int j = window.j0; j < window.j1; ++j) {
    for (int i = window.i0; i < window.i1; ++i) {
      double acc = 0.0;
      for (int d = -2; d <= 2; ++d)
        acc += smoothing_y_coeff(ctx.params, d) *
               x_factor2(in.psa(), b, i, j + d);
      out.psa()(i, j) = acc;
    }
  }
}

namespace {

/// Offset range [dlo, dhi] available for row j in former smoothing.
void available_offsets(int j, int lny, bool split_north, bool split_south,
                       int& dlo, int& dhi) {
  dlo = -2;
  dhi = 2;
  if (split_north && j < 2) dlo = -j;
  if (split_south && j > lny - 3) dhi = lny - 1 - j;
}

}  // namespace

void apply_smoothing_former(const OpContext& ctx, state::State& s,
                            const mesh::Box& window, bool split_north,
                            bool split_south) {
  const double b = ctx.params.smooth_beta / 16.0;
  const int lny = s.lny();
  // Out-of-place per row group into temporaries: P2 rows read +-2 rows of
  // the ORIGINAL field, so we buffer the full window result then write
  // back.
  state::State tmp(s.lnx(), s.lny(), s.lnz(), s.halo());
  for (int k = window.k0; k < window.k1; ++k) {
    for (int j = window.j0; j < window.j1; ++j) {
      int dlo, dhi;
      available_offsets(j, lny, split_north, split_south, dlo, dhi);
      for (int i = window.i0; i < window.i1; ++i) {
        tmp.u()(i, j, k) = x_factor3(s.u(), b, i, j, k);
        tmp.v()(i, j, k) = x_factor3(s.v(), b, i, j, k);
        double acc = 0.0;
        for (int d = dlo; d <= dhi; ++d)
          acc += smoothing_y_coeff(ctx.params, d) *
                 x_factor3(s.phi(), b, i, j + d, k);
        tmp.phi()(i, j, k) = acc;
      }
    }
  }
  for (int j = window.j0; j < window.j1; ++j) {
    int dlo, dhi;
    available_offsets(j, lny, split_north, split_south, dlo, dhi);
    for (int i = window.i0; i < window.i1; ++i) {
      double acc = 0.0;
      for (int d = dlo; d <= dhi; ++d)
        acc += smoothing_y_coeff(ctx.params, d) *
               x_factor2(s.psa(), b, i, j + d);
      tmp.psa()(i, j) = acc;
    }
  }
  s.assign(tmp, window);
}

void apply_smoothing_later(const OpContext& ctx, const state::State& pre,
                           state::State& s, const mesh::Box& window,
                           bool split_north, bool split_south) {
  const double b = ctx.params.smooth_beta / 16.0;
  const int lny = s.lny();

  // Each affected row is recomputed as the COMPLETE canonical fold over
  // d = -2..+2 from the pre-smoothing values, overwriting S1's partial
  // result (own rows {0,1} / {lny-2,lny-1}) and the received partial rows
  // (halo rows {-1,-2} / {lny,lny+1}).  Adding only the missing offsets on
  // top of the partial sum would group the additions differently from the
  // monolithic operator — a 1-ulp seam perturbation that makes y-decomposed
  // trajectories drift from the serial ones and breaks bitwise resharding
  // across py changes.  Reproducing apply_smoothing's exact addition order
  // keeps them identical.  Reads pre rows j-2..j+2, i.e. pre halo rows to
  // depth 4 for the +-2 halo rows — the fused exchange refreshes that deep.
  auto redo_3d = [&](util::Array3D<double>& field,
                     const util::Array3D<double>& pre_field, int j, int k,
                     int i0, int i1) {
    for (int i = i0; i < i1; ++i) {
      double acc = 0.0;
      for (int d = -2; d <= 2; ++d)
        acc += smoothing_y_coeff(ctx.params, d) *
               x_factor3(pre_field, b, i, j + d, k);
      field(i, j, k) = acc;
    }
  };
  auto redo_2d = [&](util::Array2D<double>& field,
                     const util::Array2D<double>& pre_field, int j, int i0,
                     int i1) {
    for (int i = i0; i < i1; ++i) {
      double acc = 0.0;
      for (int d = -2; d <= 2; ++d)
        acc += smoothing_y_coeff(ctx.params, d) *
               x_factor2(pre_field, b, i, j + d);
      field(i, j) = acc;
    }
  };

  std::vector<int> rows;
  if (split_north)
    for (int j : {-2, -1, 0, 1}) rows.push_back(j);
  if (split_south)
    for (int j : {lny - 2, lny - 1, lny, lny + 1}) rows.push_back(j);

  for (int j : rows) {
    for (int k = window.k0; k < window.k1; ++k)
      redo_3d(s.phi(), pre.phi(), j, k, window.i0, window.i1);
    redo_2d(s.psa(), pre.psa(), j, window.i0, window.i1);
  }
}

}  // namespace ca::ops
