#include "ops/smoothing.hpp"

#include <cmath>

namespace ca::ops {
namespace {

/// X factor (1 - beta/16 * dlambda^4) of a 3-D field at (i, j, k).
inline double x_factor3(const util::Array3D<double>& f, double b, int i,
                        int j, int k) {
  const double d4 = f(i - 2, j, k) - 4.0 * f(i - 1, j, k) +
                    6.0 * f(i, j, k) - 4.0 * f(i + 1, j, k) +
                    f(i + 2, j, k);
  return f(i, j, k) - b * d4;
}

inline double x_factor2(const util::Array2D<double>& f, double b, int i,
                        int j) {
  const double d4 = f(i - 2, j) - 4.0 * f(i - 1, j) + 6.0 * f(i, j) -
                    4.0 * f(i + 1, j) + f(i + 2, j);
  return f(i, j) - b * d4;
}

}  // namespace

double smoothing_y_coeff(const ModelParams& params, int d) {
  const double b = params.smooth_beta / 16.0;
  switch (d < 0 ? -d : d) {
    case 0:
      return 1.0 - 6.0 * b;
    case 1:
      return 4.0 * b;
    case 2:
      return -b;
    default:
      return 0.0;
  }
}

void apply_smoothing(const OpContext& ctx, const state::State& in,
                     state::State& out, const mesh::Box& window) {
  const double b = ctx.params.smooth_beta / 16.0;
  for (int k = window.k0; k < window.k1; ++k) {
    for (int j = window.j0; j < window.j1; ++j) {
      for (int i = window.i0; i < window.i1; ++i) {
        out.u()(i, j, k) = x_factor3(in.u(), b, i, j, k);
        out.v()(i, j, k) = x_factor3(in.v(), b, i, j, k);
        double acc = 0.0;
        for (int d = -2; d <= 2; ++d)
          acc += smoothing_y_coeff(ctx.params, d) *
                 x_factor3(in.phi(), b, i, j + d, k);
        out.phi()(i, j, k) = acc;
      }
    }
  }
  for (int j = window.j0; j < window.j1; ++j) {
    for (int i = window.i0; i < window.i1; ++i) {
      double acc = 0.0;
      for (int d = -2; d <= 2; ++d)
        acc += smoothing_y_coeff(ctx.params, d) *
               x_factor2(in.psa(), b, i, j + d);
      out.psa()(i, j) = acc;
    }
  }
}

namespace {

/// Offset range [dlo, dhi] available for row j in former smoothing.
void available_offsets(int j, int lny, bool split_north, bool split_south,
                       int& dlo, int& dhi) {
  dlo = -2;
  dhi = 2;
  if (split_north && j < 2) dlo = -j;
  if (split_south && j > lny - 3) dhi = lny - 1 - j;
}

}  // namespace

void apply_smoothing_former(const OpContext& ctx, state::State& s,
                            const mesh::Box& window, bool split_north,
                            bool split_south) {
  const double b = ctx.params.smooth_beta / 16.0;
  const int lny = s.lny();
  // Out-of-place per row group into temporaries: P2 rows read +-2 rows of
  // the ORIGINAL field, so we buffer the full window result then write
  // back.
  state::State tmp(s.lnx(), s.lny(), s.lnz(), s.halo());
  for (int k = window.k0; k < window.k1; ++k) {
    for (int j = window.j0; j < window.j1; ++j) {
      int dlo, dhi;
      available_offsets(j, lny, split_north, split_south, dlo, dhi);
      for (int i = window.i0; i < window.i1; ++i) {
        tmp.u()(i, j, k) = x_factor3(s.u(), b, i, j, k);
        tmp.v()(i, j, k) = x_factor3(s.v(), b, i, j, k);
        double acc = 0.0;
        for (int d = dlo; d <= dhi; ++d)
          acc += smoothing_y_coeff(ctx.params, d) *
                 x_factor3(s.phi(), b, i, j + d, k);
        tmp.phi()(i, j, k) = acc;
      }
    }
  }
  for (int j = window.j0; j < window.j1; ++j) {
    int dlo, dhi;
    available_offsets(j, lny, split_north, split_south, dlo, dhi);
    for (int i = window.i0; i < window.i1; ++i) {
      double acc = 0.0;
      for (int d = dlo; d <= dhi; ++d)
        acc += smoothing_y_coeff(ctx.params, d) *
               x_factor2(s.psa(), b, i, j + d);
      tmp.psa()(i, j) = acc;
    }
  }
  s.assign(tmp, window);
}

void apply_smoothing_later(const OpContext& ctx, const state::State& pre,
                           state::State& s, const mesh::Box& window,
                           bool split_north, bool split_south) {
  const double b = ctx.params.smooth_beta / 16.0;
  const int lny = s.lny();

  // Row -> missing offset range, for own partial rows and received halo
  // rows.  Halo row -1 was the neighbor's row lny-1 (it was missing its
  // southward offsets, which are OUR rows 0..1); halo row -2 misses d=+2.
  auto add_missing_3d = [&](util::Array3D<double>& field,
                            const util::Array3D<double>& pre_field, int j,
                            int dlo, int dhi, int k, int i0, int i1) {
    for (int i = i0; i < i1; ++i) {
      double acc = 0.0;
      for (int d = dlo; d <= dhi; ++d)
        acc += smoothing_y_coeff(ctx.params, d) *
               x_factor3(pre_field, b, i, j + d, k);
      field(i, j, k) += acc;
    }
  };
  auto add_missing_2d = [&](util::Array2D<double>& field,
                            const util::Array2D<double>& pre_field, int j,
                            int dlo, int dhi, int i0, int i1) {
    for (int i = i0; i < i1; ++i) {
      double acc = 0.0;
      for (int d = dlo; d <= dhi; ++d)
        acc += smoothing_y_coeff(ctx.params, d) *
               x_factor2(pre_field, b, i, j + d);
      field(i, j) += acc;
    }
  };

  struct RowFix {
    int j;
    int dlo, dhi;  // the MISSING offsets to add now
  };
  std::vector<RowFix> fixes;
  if (split_north) {
    fixes.push_back({0, -2, -1});
    fixes.push_back({1, -2, -2});
    fixes.push_back({-1, 1, 2});   // neighbor's last row
    fixes.push_back({-2, 2, 2});   // neighbor's second-to-last row
  }
  if (split_south) {
    fixes.push_back({lny - 1, 1, 2});
    fixes.push_back({lny - 2, 2, 2});
    fixes.push_back({lny, -2, -1});
    fixes.push_back({lny + 1, -2, -2});
  }

  for (const RowFix& fix : fixes) {
    for (int k = window.k0; k < window.k1; ++k)
      add_missing_3d(s.phi(), pre.phi(), fix.j, fix.dlo, fix.dhi, k,
                     window.i0, window.i1);
    add_missing_2d(s.psa(), pre.psa(), fix.j, fix.dlo, fix.dhi, window.i0,
                   window.i1);
  }
}

}  // namespace ca::ops
