// The adaptation-process stencil operator A-hat (paper Table 1): pressure
// gradient terms, Coriolis terms, the Omega source terms of the Phi
// equation, and the surface dissipation D_sa.  Each term is exposed as a
// method at its C-grid location so the footprint tests can probe the
// exact dependency pattern of Table 1.
//
// Array index conventions (see mesh/latlon.hpp): U(i,j,k) at (i-1/2, j),
// V(i,j,k) at (i, j+1/2), scalars at (i, j).
#pragma once

#include "mesh/halo.hpp"
#include "ops/context.hpp"
#include "state/state.hpp"

namespace ca::ops {

class AdaptationTerms {
 public:
  AdaptationTerms(const OpContext& ctx, const state::State& xi,
                  const LocalDiag& local, const VertDiag& vert)
      : ctx_(&ctx), xi_(&xi), local_(&local), vert_(&vert) {}

  // --- U equation (at U points) -------------------------------------------
  /// P_lambda^(1) = P dphi'/(a sin(theta) dlambda).
  double p_lambda1(int i, int j, int k) const;
  /// P_lambda^(2) = b Phi (1-delta_p)/p_es * dp_es/(a sin(theta) dlambda).
  double p_lambda2(int i, int j, int k) const;
  /// f* V interpolated to the U point (sign applied by tend_u).
  double coriolis_u(int i, int j, int k) const;

  // --- V equation (at V points) -------------------------------------------
  /// P_theta^(1) = P dphi'/(a dtheta).
  double p_theta1(int i, int j, int k) const;
  /// P_theta^(2) = b Phi (1-delta_p)/p_es * dp_es/(a dtheta).
  double p_theta2(int i, int j, int k) const;
  /// f* U interpolated to the V point.
  double coriolis_v(int i, int j, int k) const;

  // --- Phi equation (at scalar points) -------------------------------------
  /// Omega^(1) = W/sigma - (1/P)[D(P) + d(PW)/dsigma].
  double omega1(int i, int j, int k) const;
  /// Omega_theta^(2) = (V/p_es) dp_es/(a dtheta).
  double omega2_theta(int i, int j, int k) const;
  /// Omega_lambda^(2) = (U/p_es) dp_es/(a sin(theta) dlambda).
  double omega2_lambda(int i, int j, int k) const;

  // --- p'_sa equation (2-D) -------------------------------------------------
  /// D_sa = div(rho~ k_sa grad(p'_sa/(rho~ p_0))) (spherical Laplacian).
  double d_sa(int i, int j) const;

  // --- assembled tendencies -------------------------------------------------
  double tend_u(int i, int j, int k) const;
  double tend_v(int i, int j, int k) const;
  double tend_phi(int i, int j, int k) const;
  /// A-hat part only (p_0 kappa* D_sa); the executor adds C's
  /// -p_0 * divsum contribution.
  double tend_psa(int i, int j) const;

 private:
  const OpContext* ctx_;
  const state::State* xi_;
  const LocalDiag* local_;
  const VertDiag* vert_;
};

/// Evaluates the A-hat tendency over `window` into `tend`, adding the
/// C contribution -p_0 * vert.divsum to the p'_sa component (vert may hold
/// stale vertical integrals in the communication-avoiding algorithm).
void apply_adaptation(const OpContext& ctx, const state::State& xi,
                      const LocalDiag& local, const VertDiag& vert,
                      state::State& tend, const mesh::Box& window);

}  // namespace ca::ops
