// Fourier polar filtering F~ (paper Section 3, reference [21]): a 1-D FFT
// along each high-latitude circle, damping of the high zonal wavenumbers
// whose effective grid spacing dlambda*sin(theta) violates the CFL limit
// of the mid-latitude spacing, and the inverse FFT.
//
// Damping factor for wavenumber m at a row with colatitude theta:
//   d(m, theta) = min(1, (sin(theta) * nx / (2 ny)) / sin(pi m / nx))
// applied only to rows within `filter_band` radians of a pole.
//
// Under the Y-Z decomposition each rank owns full latitude circles and the
// filter is communication-free (apply_local); under X-Y decomposition the
// lines are assembled with an allgather along the x line communicator
// (apply_distributed) — the collective the paper's Theorem 4.1 argues
// should be eliminated.  Lines are real-valued, so the transform uses the
// half-length real-input FFT (nx must be even, as every production
// lat-lon mesh is).
#pragma once

#include <cstdint>
#include <vector>

#include "comm/collectives.hpp"
#include "fft/fft.hpp"
#include "mesh/halo.hpp"
#include "ops/context.hpp"
#include "state/state.hpp"

namespace ca::ops {

class FourierFilter {
 public:
  explicit FourierFilter(const OpContext& ctx);

  /// True if the scalar row with GLOBAL index gj is inside the filter band.
  bool row_active(int gj) const;

  /// Filters all four components over `window` assuming this rank owns
  /// full x lines (px = 1).  No communication.
  void apply_local(const OpContext& ctx, state::State& s,
                   const mesh::Box& window) const;

  /// Filters one full x line in place (exposed for tests).  `sin_theta`
  /// selects the row's damping.
  void filter_line(std::span<double> line, double sin_theta) const;

  /// X-Y decomposition path: assembles full lines with one allgather over
  /// `line_x` per filter application, filters, and keeps the local
  /// segment.  All ranks of the line must call collectively with matching
  /// windows.
  void apply_distributed(const OpContext& ctx, comm::Context& comm_ctx,
                         const comm::Communicator& line_x, state::State& s,
                         const mesh::Box& window) const;

  /// Number of active rows in [gj0, gj1) (for cost accounting/tests).
  int active_rows(int gj0, int gj1) const;

  /// Workspace heap behavior: acquires that grew a buffer's capacity vs
  /// acquires served from existing capacity.  After the first filtered
  /// line/window every acquire must be a reuse — the steady-state perf
  /// tests assert workspace_allocations() stops growing.
  std::uint64_t workspace_allocations() const { return ws_.allocations; }
  std::uint64_t workspace_reuses() const { return ws_.reuses; }

 private:
  /// One x line scheduled for filtering (distributed path).
  struct LineRef {
    int field;  // 0=U, 1=V, 2=Phi, 3=psa
    int j, k;
    double sin_theta;
  };

  /// Reusable scratch of the filter hot path: FFT spectrum + transform
  /// scratch for every line, psa row staging (apply_local), and the line
  /// assembly buffers of the distributed path.  Mutable because filtering
  /// is logically const on the filter; each rank owns its filter so there
  /// is no sharing.
  struct Workspace {
    std::vector<fft::cplx> spec;
    std::vector<fft::cplx> fft_scratch;
    std::vector<double> row;       // psa line staging
    std::vector<double> full;      // assembled full line (distributed)
    std::vector<double> local;     // packed local segments (distributed)
    std::vector<double> gathered;  // allgather target (distributed)
    std::vector<LineRef> lines;
    std::uint64_t allocations = 0;
    std::uint64_t reuses = 0;
  };

  template <typename T>
  std::span<T> acquire(std::vector<T>& buf, std::size_t n) const;

  fft::RealPlan plan_;
  int nx_ = 0;
  int ny_ = 0;
  double band_ = 0.0;
  double aspect_ = 0.0;  ///< nx / (2 ny)
  mutable Workspace ws_;
};

}  // namespace ca::ops
