#include "ops/tracer.hpp"

namespace ca::ops {

double TracerAdvection::u_at_u(int i, int j, int k) const {
  const double pu = 0.5 * (local_->pfac(i - 1, j) + local_->pfac(i, j));
  return xi_->u()(i, j, k) / pu;
}

double TracerAdvection::v_at_v(int i, int j, int k) const {
  const double pv = 0.5 * (local_->pfac(i, j) + local_->pfac(i, j + 1));
  return xi_->v()(i, j, k) / pv;
}

double TracerAdvection::l1(const util::Array3D<double>& q, int i, int j,
                           int k) const {
  const double inv_dl = 1.0 / ctx_->mesh->dlambda();
  const double geom = 1.0 / (ctx_->mesh->radius() * ctx_->sin_t(j));
  if (ctx_->params.x_order < 4) {
    // Skew-symmetric 2nd order: [u_{i+1/2} q_{i+1} - u_{i-1/2} q_{i-1}]/2dl.
    return (u_at_u(i + 1, j, k) * q(i + 1, j, k) -
            u_at_u(i, j, k) * q(i - 1, j, k)) *
           0.5 * inv_dl * geom;
  }
  // 4th order: 4th-order midpoint interpolation (-1, 9, 9, -1)/16 and a
  // 4th-order flux divergence, same construction as L1(Phi).
  auto c = [&](int ii) { return u_at_u(ii, j, k); };
  auto qhat = [&](int ii) {
    return (9.0 * (q(ii - 1, j, k) + q(ii, j, k)) -
            (q(ii - 2, j, k) + q(ii + 1, j, k))) /
           16.0;
  };
  auto flux = [&](int ii) { return c(ii) * qhat(ii); };
  const double dflux = (27.0 * (flux(i + 1) - flux(i)) -
                        (flux(i + 2) - flux(i - 1))) /
                       24.0 * inv_dl;
  const double dc = (27.0 * (c(i + 1) - c(i)) - (c(i + 2) - c(i - 1))) /
                    24.0 * inv_dl;
  return 0.5 * (2.0 * dflux - q(i, j, k) * dc) * geom;
}

double TracerAdvection::l2(const util::Array3D<double>& q, int i, int j,
                           int k) const {
  const double inv_2dt = 0.5 / ctx_->mesh->dtheta();
  const double geom = 1.0 / (ctx_->mesh->radius() * ctx_->sin_t(j));
  const double c_n = v_at_v(i, j - 1, k) * ctx_->sin_tv(j - 1);
  const double c_s = v_at_v(i, j, k) * ctx_->sin_tv(j);
  return (c_s * q(i, j + 1, k) - c_n * q(i, j - 1, k)) * inv_2dt * geom;
}

double TracerAdvection::l3(const util::Array3D<double>& q, int i, int j,
                           int k) const {
  return (vert_->sdot(i, j, k + 1) * q(i, j, k + 1) -
          vert_->sdot(i, j, k) * q(i, j, k - 1)) *
         0.5 / ctx_->dsig(k);
}

double TracerAdvection::upwind_tendency(const util::Array3D<double>& q,
                                        int i, int j, int k) const {
  // Donor-cell fluxes through the six cell faces, in the same metric
  // flux form as D(P) so the scheme is conservative.
  const auto& mesh = *ctx_->mesh;
  const double a = mesh.radius();
  const double dl = mesh.dlambda();
  const double dt = mesh.dtheta();
  const double sj = ctx_->sin_t(j);
  auto upw = [](double vel, double q_up, double q_dn) {
    return vel >= 0.0 ? vel * q_up : vel * q_dn;
  };
  const double fw = upw(u_at_u(i, j, k), q(i - 1, j, k), q(i, j, k));
  const double fe = upw(u_at_u(i + 1, j, k), q(i, j, k), q(i + 1, j, k));
  const double fn = upw(v_at_v(i, j - 1, k) * ctx_->sin_tv(j - 1),
                        q(i, j - 1, k), q(i, j, k));
  const double fs = upw(v_at_v(i, j, k) * ctx_->sin_tv(j), q(i, j, k),
                        q(i, j + 1, k));
  const double ft =
      upw(vert_->sdot(i, j, k), q(i, j, k - 1), q(i, j, k));
  const double fb =
      upw(vert_->sdot(i, j, k + 1), q(i, j, k), q(i, j, k + 1));
  return -((fe - fw) / dl + (fs - fn) / dt) / (a * sj) -
         (fb - ft) / ctx_->dsig(k);
}

double TracerAdvection::tendency(const util::Array3D<double>& q, int i,
                                 int j, int k) const {
  if (scheme_ == TracerScheme::kUpwindMonotone)
    return upwind_tendency(q, i, j, k);
  return -(l1(q, i, j, k) + l2(q, i, j, k) + l3(q, i, j, k));
}

void TracerAdvection::apply(const util::Array3D<double>& q,
                            util::Array3D<double>& dq,
                            const mesh::Box& window) const {
  for (int k = window.k0; k < window.k1; ++k)
    for (int j = window.j0; j < window.j1; ++j)
      for (int i = window.i0; i < window.i1; ++i)
        dq(i, j, k) = tendency(q, i, j, k);
}

void fill_tracer_boundaries(const OpContext& ctx,
                            util::Array3D<double>& q) {
  const auto& d = *ctx.decomp;
  if (d.owns_full_x()) mesh::fill_x_periodic(q, q.halo().x);
  if (d.at_north_pole())
    mesh::fill_pole_north(q, q.halo().y, mesh::PoleParity::kSymmetric);
  if (d.at_south_pole())
    mesh::fill_pole_south(q, q.halo().y, mesh::PoleParity::kSymmetric);
  if (d.at_model_top()) mesh::fill_z_top(q, q.halo().z);
  if (d.at_surface()) mesh::fill_z_bottom(q, q.halo().z);
}

void advance_tracer(const OpContext& ctx, const state::State& xi,
                    const LocalDiag& local, const VertDiag& vert,
                    util::Array3D<double>& q, double dt, int steps,
                    TracerScheme scheme) {
  // Heun (2nd-order) steps: predictor + trapezoidal corrector, so the
  // temporal error stays below the 4th-order spatial error in the
  // convergence tests.
  TracerAdvection adv(ctx, xi, local, vert, scheme);
  util::Array3D<double> k1(q.nx(), q.ny(), q.nz(), q.halo());
  util::Array3D<double> k2(q.nx(), q.ny(), q.nz(), q.halo());
  util::Array3D<double> pred(q.nx(), q.ny(), q.nz(), q.halo());
  const mesh::Box window{0, q.nx(), 0, q.ny(), 0, q.nz()};
  for (int s = 0; s < steps; ++s) {
    fill_tracer_boundaries(ctx, q);
    adv.apply(q, k1, window);
    for (int k = 0; k < q.nz(); ++k)
      for (int j = 0; j < q.ny(); ++j)
        for (int i = 0; i < q.nx(); ++i)
          pred(i, j, k) = q(i, j, k) + dt * k1(i, j, k);
    fill_tracer_boundaries(ctx, pred);
    adv.apply(pred, k2, window);
    for (int k = 0; k < q.nz(); ++k)
      for (int j = 0; j < q.ny(); ++j)
        for (int i = 0; i < q.nx(); ++i)
          q(i, j, k) += 0.5 * dt * (k1(i, j, k) + k2(i, j, k));
  }
}

}  // namespace ca::ops
