#include "ops/adaptation.hpp"

#include "util/math.hpp"

namespace ca::ops {
namespace {

/// 4th/2nd-order derivative of a scalar line at the half point i-1/2,
/// given values at {i-2, i-1, i, i+1} (4th) or {i-1, i} (2nd).
inline double dstag_x(int order, double sm2, double sm1, double s0,
                      double sp1, double inv_dl) {
  if (order >= 4)
    return (27.0 * (s0 - sm1) - (sp1 - sm2)) / 24.0 * inv_dl;
  return (s0 - sm1) * inv_dl;
}

/// 4th/2nd-order centered derivative at a full point from values at
/// {i-2, i-1, i+1, i+2}.
inline double dcent_x(int order, double sm2, double sm1, double sp1,
                      double sp2, double inv_dl) {
  if (order >= 4)
    return (8.0 * (sp1 - sm1) - (sp2 - sm2)) / 12.0 * inv_dl;
  return 0.5 * (sp1 - sm1) * inv_dl;
}

}  // namespace

double AdaptationTerms::p_lambda1(int i, int j, int k) const {
  const auto& d = *local_;
  const auto& vd = *vert_;
  const double pu = 0.5 * (d.pfac(i - 1, j) + d.pfac(i, j));
  const double inv_dl = 1.0 / ctx_->mesh->dlambda();
  const double dphi =
      dstag_x(ctx_->params.x_order, vd.phi_geo(i - 2, j, k),
              vd.phi_geo(i - 1, j, k), vd.phi_geo(i, j, k),
              vd.phi_geo(i + 1, j, k), inv_dl);
  return pu * dphi / (ctx_->mesh->radius() * ctx_->sin_t(j));
}

double AdaptationTerms::p_lambda2(int i, int j, int k) const {
  const auto& d = *local_;
  const double phi_u = 0.5 * (xi_->phi()(i - 1, j, k) + xi_->phi()(i, j, k));
  const double pes_u = 0.5 * (d.pes(i - 1, j) + d.pes(i, j));
  const double inv_dl = 1.0 / ctx_->mesh->dlambda();
  const double dpes =
      dstag_x(ctx_->params.x_order, d.pes(i - 2, j), d.pes(i - 1, j),
              d.pes(i, j), d.pes(i + 1, j), inv_dl);
  const double b = util::kGravityWaveSpeed;
  return b * phi_u * (1.0 - ctx_->params.delta_p) / pes_u * dpes /
         (ctx_->mesh->radius() * ctx_->sin_t(j));
}

double AdaptationTerms::coriolis_u(int i, int j, int k) const {
  const auto& d = *local_;
  const double pu = 0.5 * (d.pfac(i - 1, j) + d.pfac(i, j));
  const double u_phys = xi_->u()(i, j, k) / pu;
  const double fstar =
      2.0 * util::kOmega * ctx_->cos_t(j) +
      u_phys * ctx_->cos_t(j) / (ctx_->sin_t(j) * ctx_->mesh->radius());
  const double v4 = 0.25 * (xi_->v()(i - 1, j - 1, k) +
                            xi_->v()(i, j - 1, k) +
                            xi_->v()(i - 1, j, k) + xi_->v()(i, j, k));
  return fstar * v4;
}

double AdaptationTerms::p_theta1(int i, int j, int k) const {
  const auto& d = *local_;
  const double pv = 0.5 * (d.pfac(i, j) + d.pfac(i, j + 1));
  const double dphi = (vert_->phi_geo(i, j + 1, k) -
                       vert_->phi_geo(i, j, k)) /
                      ctx_->mesh->dtheta();
  return pv * dphi / ctx_->mesh->radius();
}

double AdaptationTerms::p_theta2(int i, int j, int k) const {
  const auto& d = *local_;
  const double phi_v = 0.5 * (xi_->phi()(i, j, k) + xi_->phi()(i, j + 1, k));
  const double pes_v = 0.5 * (d.pes(i, j) + d.pes(i, j + 1));
  const double dpes = (d.pes(i, j + 1) - d.pes(i, j)) / ctx_->mesh->dtheta();
  const double b = util::kGravityWaveSpeed;
  return b * phi_v * (1.0 - ctx_->params.delta_p) / pes_v * dpes /
         ctx_->mesh->radius();
}

double AdaptationTerms::coriolis_v(int i, int j, int k) const {
  const auto& d = *local_;
  const double pv = 0.5 * (d.pfac(i, j) + d.pfac(i, j + 1));
  const double u4 = 0.25 * (xi_->u()(i, j, k) + xi_->u()(i + 1, j, k) +
                            xi_->u()(i, j + 1, k) +
                            xi_->u()(i + 1, j + 1, k));
  const double u_phys = u4 / pv;
  const double cos_v = 0.5 * (ctx_->cos_t(j) + ctx_->cos_t(j + 1));
  const double sin_v = ctx_->sin_tv(j);
  // The V rows at the poles are zero-flux; their Coriolis term is never
  // used, but guard the cotangent anyway.
  const double cot_v = sin_v > 1e-12 ? cos_v / sin_v : 0.0;
  const double fstar = 2.0 * util::kOmega * cos_v +
                       u_phys * cot_v / ctx_->mesh->radius();
  return fstar * u4;
}

double AdaptationTerms::omega1(int i, int j, int k) const {
  const auto& d = *local_;
  const auto& vd = *vert_;
  const double wbar = 0.5 * (vd.w(i, j, k) + vd.w(i, j, k + 1));
  const double dpw =
      d.pfac(i, j) * (vd.w(i, j, k + 1) - vd.w(i, j, k)) / ctx_->dsig(k);
  return wbar / ctx_->sig(k) - (d.div(i, j, k) + dpw) / d.pfac(i, j);
}

double AdaptationTerms::omega2_theta(int i, int j, int k) const {
  const auto& d = *local_;
  const double vbar = 0.5 * (xi_->v()(i, j - 1, k) + xi_->v()(i, j, k));
  const double dpes =
      0.5 * (d.pes(i, j + 1) - d.pes(i, j - 1)) / ctx_->mesh->dtheta();
  return vbar / d.pes(i, j) * dpes / ctx_->mesh->radius();
}

double AdaptationTerms::omega2_lambda(int i, int j, int k) const {
  const auto& d = *local_;
  const double ubar = 0.5 * (xi_->u()(i, j, k) + xi_->u()(i + 1, j, k));
  const double inv_dl = 1.0 / ctx_->mesh->dlambda();
  const double dpes =
      dcent_x(ctx_->params.x_order, d.pes(i - 2, j), d.pes(i - 1, j),
              d.pes(i + 1, j), d.pes(i + 2, j), inv_dl);
  return ubar / d.pes(i, j) * dpes /
         (ctx_->mesh->radius() * ctx_->sin_t(j));
}

double AdaptationTerms::d_sa(int i, int j) const {
  const auto& psa = xi_->psa();
  const double a = ctx_->mesh->radius();
  const double dl = ctx_->mesh->dlambda();
  const double dt = ctx_->mesh->dtheta();
  const double sj = ctx_->sin_t(j);
  const double lap_x = (psa(i + 1, j) - 2.0 * psa(i, j) + psa(i - 1, j)) /
                       (dl * dl * sj * sj);
  const double flux_s =
      ctx_->sin_tv(j) * (psa(i, j + 1) - psa(i, j)) / dt;
  const double flux_n =
      ctx_->sin_tv(j - 1) * (psa(i, j) - psa(i, j - 1)) / dt;
  const double lap_y = (flux_s - flux_n) / (dt * sj);
  return util::kDissipationKsa * ctx_->params.dsa_diffusivity /
         util::kPressureRef * (lap_x + lap_y) / (a * a);
}

double AdaptationTerms::tend_u(int i, int j, int k) const {
  // du/dt = -f v (V is positive toward the SOUTH pole in the colatitude
  // convention): the paper's U-equation sign as printed.
  return -p_lambda1(i, j, k) - p_lambda2(i, j, k) - coriolis_u(i, j, k);
}

double AdaptationTerms::tend_v(int i, int j, int k) const {
  // dv/dt = +f u for the antisymmetric (energy-conserving) pair; the
  // paper's printed -f*U makes the pair symmetric (a typo) and is
  // restored by coriolis_paper_sign.
  const double sign = ctx_->params.coriolis_paper_sign ? -1.0 : 1.0;
  return -p_theta1(i, j, k) - p_theta2(i, j, k) +
         sign * coriolis_v(i, j, k);
}

double AdaptationTerms::tend_phi(int i, int j, int k) const {
  const auto& p = ctx_->params;
  const double b = util::kGravityWaveSpeed;
  const double bracket =
      b * (1.0 + p.delta_c) +
      p.delta * util::kKappa * xi_->phi()(i, j, k) / local_->pfac(i, j);
  return (1.0 - p.delta_p) * bracket *
         (omega1(i, j, k) + omega2_theta(i, j, k) + omega2_lambda(i, j, k));
}

double AdaptationTerms::tend_psa(int i, int j) const {
  return util::kPressureRef * ctx_->params.kappa_star * d_sa(i, j);
}

void apply_adaptation(const OpContext& ctx, const state::State& xi,
                      const LocalDiag& local, const VertDiag& vert,
                      state::State& tend, const mesh::Box& window) {
  AdaptationTerms terms(ctx, xi, local, vert);
  for (int k = window.k0; k < window.k1; ++k) {
    for (int j = window.j0; j < window.j1; ++j) {
      for (int i = window.i0; i < window.i1; ++i) {
        tend.u()(i, j, k) = terms.tend_u(i, j, k);
        tend.v()(i, j, k) = terms.tend_v(i, j, k);
        tend.phi()(i, j, k) = terms.tend_phi(i, j, k);
      }
    }
  }
  for (int j = window.j0; j < window.j1; ++j)
    for (int i = window.i0; i < window.i1; ++i)
      tend.psa()(i, j) =
          terms.tend_psa(i, j) - util::kPressureRef * vert.divsum(i, j);
}

}  // namespace ca::ops
