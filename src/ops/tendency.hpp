// Single-rank (or p_z = 1) diagnostic evaluation: computes LocalDiag and
// VertDiag for a window with no cross-rank bases.  Used by the serial
// reference core, the X-Y decomposition executor (where C is z-local), and
// the operator unit tests.  The distributed Y-Z path lives in
// core/exchange (it inserts the two z-line collectives between
// column_partials and column_finish).
#pragma once

#include <array>

#include "mesh/halo.hpp"
#include "ops/context.hpp"
#include "state/state.hpp"

namespace ca::ops {

/// Scratch space for one diagnostic evaluation.
struct DiagWorkspace {
  DiagWorkspace() = default;
  DiagWorkspace(int lnx, int lny, int lnz, const state::StateHalo& halo)
      : local(lnx, lny, lnz, halo),
        vert(lnx, lny, lnz, halo),
        own_div(lnx, lny, halo.hx2, halo.hy2),
        own_phi(lnx, lny, halo.hx2, halo.hy2),
        base_div(lnx, lny, halo.hx2, halo.hy2),
        base_phi(lnx, lny, halo.hx2, halo.hy2),
        total_div(lnx, lny, halo.hx2, halo.hy2),
        total_phi(lnx, lny, halo.hx2, halo.hy2) {}

  LocalDiag local;
  VertDiag vert;
  util::Array2D<double> own_div, own_phi;      ///< per-rank column sums
  util::Array2D<double> base_div, base_phi;    ///< exscan prefixes
  util::Array2D<double> total_div, total_phi;  ///< allreduce totals

  /// The cross-step carry of the communication-avoiding core: the stale C
  /// products (VertDiag) reused by the approximate nonlinear iteration
  /// (paper eq. 13) plus the column anchors of the last fresh evaluation.
  /// LocalDiag is deliberately absent — it is recomputed fresh at every
  /// operator application.  The enumeration order is the on-disk carry
  /// order of checkpoint v3; keep it stable (append-only).  Each field
  /// is serialized with per-field geometry metadata (global extents,
  /// halo depths, block origin — util::kReshardableCarryMagic), which is
  /// what lets a degraded-pool reshard redistribute the carry.  The
  /// own/base/total anchors are z-decomposition-dependent values, but
  /// they are recomputed by the collectives inside every fresh
  /// evaluation before any read, and stale evaluations read only vert —
  /// so geometric redistribution is safe for all of them.
  std::array<const util::Array3D<double>*, 3> carry_fields_3d() const {
    return {&vert.sdot, &vert.w, &vert.phi_geo};
  }
  std::array<util::Array3D<double>*, 3> carry_fields_3d() {
    return {&vert.sdot, &vert.w, &vert.phi_geo};
  }
  std::array<const util::Array2D<double>*, 7> carry_fields_2d() const {
    return {&vert.divsum, &own_div,   &own_phi,  &base_div,
            &base_phi,    &total_div, &total_phi};
  }
  std::array<util::Array2D<double>*, 7> carry_fields_2d() {
    return {&vert.divsum, &own_div,   &own_phi,  &base_div,
            &base_phi,    &total_div, &total_phi};
  }
};

/// Total extra cells (beyond the update window) on which the surface
/// factors pes/pfac are evaluated: the face ring (x +-2, y +-1) plus one
/// more staggering/stencil cell.
inline constexpr int kSurfaceRing = 3;

/// Computes local.pes/pfac/div for the update window `window` (divergence
/// on window expanded by 1 in x and y so column sums and sdot
/// interpolation have their ring).  Inputs must be valid on window +
/// kSurfaceRing + 1.
void compute_local_diag(const OpContext& ctx, const state::State& xi,
                        const mesh::Box& window, DiagWorkspace& ws);

/// Completes VertDiag assuming p_z == 1 (no cross-rank bases): the column
/// sums over owned z ARE the global sums.
void compute_vert_diag_serial(const OpContext& ctx, const state::State& xi,
                              const mesh::Box& window, DiagWorkspace& ws);

/// The face of `window` expanded by 2 cells in x and 1 in y (where the
/// divergence and column quantities are computed; phi' is read up to i-2
/// by the 4th-order pressure gradient).
mesh::Box face_ring(const mesh::Box& window);

}  // namespace ca::ops
