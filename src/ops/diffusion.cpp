#include "ops/diffusion.hpp"

#include <cmath>

namespace ca::ops {

double laplacian_at(const OpContext& ctx, const util::Array3D<double>& f,
                    int i, int j, int k) {
  const double a = ctx.mesh->radius();
  const double dl = ctx.mesh->dlambda();
  const double dt = ctx.mesh->dtheta();
  const double sj = ctx.sin_t(j);
  const double lap_x =
      (f(i + 1, j, k) - 2.0 * f(i, j, k) + f(i - 1, j, k)) /
      (dl * dl * sj * sj);
  const double flux_s = ctx.sin_tv(j) * (f(i, j + 1, k) - f(i, j, k)) / dt;
  const double flux_n =
      ctx.sin_tv(j - 1) * (f(i, j, k) - f(i, j - 1, k)) / dt;
  const double lap_y = (flux_s - flux_n) / (dt * sj);
  return (lap_x + lap_y) / (a * a);
}

void apply_horizontal_diffusion(const OpContext& ctx, state::State& s,
                                double nu, double dt) {
  if (nu <= 0.0) return;
  const auto& d = *ctx.decomp;
  state::State out(d.lnx(), d.lny(), d.lnz(), s.halo());
  const double c = nu * dt;
  for (int k = 0; k < d.lnz(); ++k)
    for (int j = 0; j < d.lny(); ++j)
      for (int i = 0; i < d.lnx(); ++i) {
        out.u()(i, j, k) =
            s.u()(i, j, k) + c * laplacian_at(ctx, s.u(), i, j, k);
        out.v()(i, j, k) =
            s.v()(i, j, k) + c * laplacian_at(ctx, s.v(), i, j, k);
        out.phi()(i, j, k) =
            s.phi()(i, j, k) + c * laplacian_at(ctx, s.phi(), i, j, k);
      }
  s.assign(out, s.interior());
}

double diffusion_stable_dt(const OpContext& ctx, double nu) {
  if (nu <= 0.0) return std::numeric_limits<double>::infinity();
  const double a = ctx.mesh->radius();
  // Smallest effective dx: the most polar scalar row.
  const double sin_min = ctx.mesh->sin_theta(0);
  const double dx_min = a * sin_min * ctx.mesh->dlambda();
  const double dy = a * ctx.mesh->dtheta();
  const double h2 = std::min(dx_min, dy);
  return 0.25 * h2 * h2 / nu;
}

}  // namespace ca::ops
