#include "ops/footprint.hpp"

#include <cmath>

namespace ca::ops {
namespace {

constexpr double kPerturb = 1e-3;

bool changes(const FootprintProbe& probe, double baseline, double& slot) {
  const double saved = slot;
  slot = saved + kPerturb * (std::abs(saved) + 1.0);
  const double perturbed = probe.eval();
  slot = saved;
  // Relative comparison: a dependency shows as a change well above
  // round-off of the baseline magnitude.
  const double scale = std::abs(baseline) + std::abs(perturbed) + 1e-30;
  return std::abs(perturbed - baseline) > 1e-9 * scale;
}

}  // namespace

std::set<Offset> measure_footprint(const FootprintProbe& probe, int i0,
                                   int j0, int k0, int radius) {
  std::set<Offset> result;
  const double baseline = probe.eval();
  for (int dk = -radius; dk <= radius; ++dk) {
    for (int dj = -radius; dj <= radius; ++dj) {
      for (int di = -radius; di <= radius; ++di) {
        bool hit = false;
        for (auto* a : probe.inputs3d) {
          if (!a->in_bounds(i0 + di, j0 + dj, k0 + dk)) continue;
          if (changes(probe, baseline, (*a)(i0 + di, j0 + dj, k0 + dk))) {
            hit = true;
            break;
          }
        }
        if (!hit && dk == 0) {
          for (auto* a : probe.inputs2d) {
            if (!a->in_bounds(i0 + di, j0 + dj)) continue;
            if (changes(probe, baseline, (*a)(i0 + di, j0 + dj))) {
              hit = true;
              break;
            }
          }
        }
        if (hit) result.insert(Offset{di, dj, dk});
      }
    }
  }
  return result;
}

FootprintExtent extent(const std::set<Offset>& offsets) {
  FootprintExtent e;
  for (const auto& o : offsets) {
    e.di_min = std::min(e.di_min, o[0]);
    e.di_max = std::max(e.di_max, o[0]);
    e.dj_min = std::min(e.dj_min, o[1]);
    e.dj_max = std::max(e.dj_max, o[1]);
    e.dk_min = std::min(e.dk_min, o[2]);
    e.dk_max = std::max(e.dk_max, o[2]);
  }
  return e;
}

std::set<int> x_offsets(const std::set<Offset>& offsets) {
  std::set<int> out;
  for (const auto& o : offsets) out.insert(o[0]);
  return out;
}

std::set<int> y_offsets(const std::set<Offset>& offsets) {
  std::set<int> out;
  for (const auto& o : offsets) out.insert(o[1]);
  return out;
}

std::set<int> z_offsets(const std::set<Offset>& offsets) {
  std::set<int> out;
  for (const auto& o : offsets) out.insert(o[2]);
  return out;
}

}  // namespace ca::ops
