// Shared evaluation context of the operator kernels: mesh geometry, sigma
// levels, standard stratification, this rank's block, and the model
// switches of the paper's equations (delta, delta_p, delta_c, kappa*, the
// Coriolis sign convention, and finite-difference orders).
#pragma once

#include "mesh/decomp.hpp"
#include "mesh/latlon.hpp"
#include "mesh/sigma.hpp"
#include "state/state.hpp"
#include "state/stratification.hpp"
#include "util/array3d.hpp"

namespace ca::ops {

struct ModelParams {
  /// delta = p_t/p switch of eq. (2): 0 = standard stratification
  /// approximation (paper default), 1 = primitive equations.
  double delta = 0.0;
  /// delta_p and delta_c switches of the Phi equation.
  double delta_p = 0.0;
  double delta_c = 0.0;
  /// kappa* coefficient of the D_sa surface dissipation term.
  double kappa_star = 1.0;
  /// Horizontal diffusivity scale of D_sa [m^2/s] (the paper's k_sa = 0.1
  /// is the dimensionless dissipation coefficient multiplying it).
  double dsa_diffusivity = 1.0e5;
  /// Smoothing strength beta of P1/P2 (0 disables smoothing).
  double smooth_beta = 0.5;
  /// Colatitude band (from each pole, radians) where the Fourier filter is
  /// evaluated; min(1, ...) damping makes it inactive equatorward anyway.
  double filter_band = 1.0;  // ~57 degrees from the pole
  /// Finite-difference order along x for pressure-gradient and advection
  /// terms (2 or 4).  4 reproduces the Tables 1-2 footprints; 2 is the
  /// exactly skew-symmetric variant used by conservation tests.
  int x_order = 4;
  /// Paper eq. (2) literally writes -f*V in the U equation; the
  /// antisymmetric pair (+f*V, -f*U) conserves kinetic energy and is the
  /// default (see DESIGN.md).
  bool coriolis_paper_sign = false;
};

struct OpContext {
  const mesh::LatLonMesh* mesh = nullptr;
  const mesh::SigmaLevels* levels = nullptr;
  const state::Stratification* strat = nullptr;
  const mesh::DomainDecomp* decomp = nullptr;
  ModelParams params;
  /// Optional terrain: surface geopotential [m^2/s^2] at scalar points,
  /// evaluated (like the initial conditions) from a global analytic
  /// formula over the owned block AND its halos so no exchange is needed.
  /// Null = flat surface (the paper's H-S setting).
  const util::Array2D<double>* phi_surface = nullptr;

  double phi_s(int i, int j) const {
    return phi_surface == nullptr ? 0.0 : (*phi_surface)(i, j);
  }

  /// Global row/level index of local j/k.
  int gj(int j) const { return decomp->gj(j); }
  int gk(int k) const { return decomp->gk(k); }

  double sin_t(int j) const { return mesh->sin_theta(gj(j)); }
  double cos_t(int j) const { return mesh->cos_theta(gj(j)); }
  double sin_tv(int j) const { return mesh->sin_theta_v(gj(j)); }
  double dsig(int k) const { return levels->dsigma(gk(k)); }
  double sig(int k) const { return levels->full(gk(k)); }
  double sig_half(int k) const { return levels->half(gk(k)); }
};

/// Purely local derived quantities, recomputed fresh at every operator
/// application (they belong to the stencil operator A-hat).
struct LocalDiag {
  LocalDiag() = default;
  LocalDiag(int lnx, int lny, int lnz, const state::StateHalo& halo)
      : pes(lnx, lny, halo.hx2, halo.hy2),
        pfac(lnx, lny, halo.hx2, halo.hy2),
        div(lnx, lny, lnz, halo.h3) {}

  util::Array2D<double> pes;   ///< p_es = p~_s + p'_sa - p_t
  util::Array2D<double> pfac;  ///< P = sqrt(p_es/p_0)
  util::Array3D<double> div;   ///< D(P) at scalar points
};

/// Products of the vertical integrals — everything downstream of the
/// z-line collectives, i.e. the output of the operator C.  The
/// communication-avoiding algorithm reuses a stale VertDiag in the first
/// update of each nonlinear iteration (paper eq. 13).  Interface-indexed
/// arrays use index k for the interface at sigma_half(k) (the TOP of full
/// level k); they carry one extra z-halo layer so the bottom interface of
/// the deepest valid level exists.
struct VertDiag {
  VertDiag() = default;
  VertDiag(int lnx, int lny, int lnz, const state::StateHalo& halo)
      : divsum(lnx, lny, halo.hx2, halo.hy2),
        sdot(lnx, lny, lnz,
             util::Halo3{halo.h3.x, halo.h3.y, halo.h3.z + 1}),
        w(lnx, lny, lnz, util::Halo3{halo.h3.x, halo.h3.y, halo.h3.z + 1}),
        phi_geo(lnx, lny, lnz,
                util::Halo3{halo.h3.x, halo.h3.y, halo.h3.z + 1}) {}

  util::Array2D<double> divsum;  ///< sum_k dsigma_k D(P)
  util::Array3D<double> sdot;    ///< sigma-dot at interface sigma_half(k)
  util::Array3D<double> w;       ///< W = P * sigma-dot at the same interfaces
  util::Array3D<double> phi_geo; ///< geopotential deviation phi' at full levels
};

}  // namespace ca::ops
