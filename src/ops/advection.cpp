#include "ops/advection.hpp"

namespace ca::ops {
namespace {

/// Skew-symmetric 1-D advection at point m given the advecting velocity c
/// at the grid's half points and F at full points, 2nd order:
///   L = [c_{m+1/2} F_{m+1} - c_{m-1/2} F_{m-1}] / (2 ds)
/// (the discrete expansion of (2 d(Fc)/ds - F dc/ds)/2 with 2nd-order
/// flux-form differences).
inline double skew2(double c_lo, double c_hi, double f_lo, double f_hi,
                    double inv_2ds) {
  return (c_hi * f_hi - c_lo * f_lo) * inv_2ds;
}

}  // namespace

double AdvectionTerms::u_at_u(int i, int j, int k) const {
  const double pu = 0.5 * (local_->pfac(i - 1, j) + local_->pfac(i, j));
  return xi_->u()(i, j, k) / pu;
}

double AdvectionTerms::v_at_v(int i, int j, int k) const {
  const double pv = 0.5 * (local_->pfac(i, j) + local_->pfac(i, j + 1));
  return xi_->v()(i, j, k) / pv;
}

// ---------------------------------------------------------------------------
// L1: zonal advection.  4th order uses 4th-order interpolated fluxes and a
// 4th-order flux divergence (footprint i±3); 2nd order is exactly
// skew-symmetric.
// ---------------------------------------------------------------------------

double AdvectionTerms::l1_u(int i, int j, int k) const {
  const double inv_dl = 1.0 / ctx_->mesh->dlambda();
  const double geom = 1.0 / (ctx_->mesh->radius() * ctx_->sin_t(j));
  const auto& u = xi_->u();
  // Advecting u at the U-grid half points = scalar columns; half(i) sits
  // between U(i) and U(i+1).
  auto c = [&](int ii) {
    return 0.5 * (u_at_u(ii, j, k) + u_at_u(ii + 1, j, k));
  };
  if (ctx_->params.x_order < 4) {
    return skew2(c(i - 1), c(i), u(i - 1, j, k), u(i + 1, j, k),
                 0.5 * inv_dl) *
           geom;
  }
  auto fhat = [&](int ii) {  // 4th-order U interpolated to half(ii)
    return (9.0 * (u(ii, j, k) + u(ii + 1, j, k)) -
            (u(ii - 1, j, k) + u(ii + 2, j, k))) /
           16.0;
  };
  auto flux = [&](int ii) { return c(ii) * fhat(ii); };
  const double dflux = (27.0 * (flux(i) - flux(i - 1)) -
                        (flux(i + 1) - flux(i - 2))) /
                       24.0 * inv_dl;
  const double dc =
      (27.0 * (c(i) - c(i - 1)) - (c(i + 1) - c(i - 2))) / 24.0 * inv_dl;
  return 0.5 * (2.0 * dflux - u(i, j, k) * dc) * geom;
}

double AdvectionTerms::l1_v(int i, int j, int k) const {
  const double inv_dl = 1.0 / ctx_->mesh->dlambda();
  const double sv = ctx_->sin_tv(j);
  if (sv < 1e-12) return 0.0;  // pole-edge V row is identically zero
  const double geom = 1.0 / (ctx_->mesh->radius() * sv);
  const auto& v = xi_->v();
  // Half points of the V grid in x are the U columns at the V row; the
  // half point WEST of V(i) is U column i.
  auto c = [&](int ii) {  // u interpolated to (U column ii, V row j)
    return 0.5 * (u_at_u(ii, j, k) + u_at_u(ii, j + 1, k));
  };
  if (ctx_->params.x_order < 4) {
    return skew2(c(i), c(i + 1), v(i - 1, j, k), v(i + 1, j, k),
                 0.5 * inv_dl) *
           geom;
  }
  auto fhat = [&](int ii) {  // V interpolated to U column ii at row j+1/2
    return (9.0 * (v(ii - 1, j, k) + v(ii, j, k)) -
            (v(ii - 2, j, k) + v(ii + 1, j, k))) /
           16.0;
  };
  auto flux = [&](int ii) { return c(ii) * fhat(ii); };
  const double dflux = (27.0 * (flux(i + 1) - flux(i)) -
                        (flux(i + 2) - flux(i - 1))) /
                       24.0 * inv_dl;
  const double dc = (27.0 * (c(i + 1) - c(i)) - (c(i + 2) - c(i - 1))) /
                    24.0 * inv_dl;
  return 0.5 * (2.0 * dflux - v(i, j, k) * dc) * geom;
}

double AdvectionTerms::l1_phi(int i, int j, int k) const {
  const double inv_dl = 1.0 / ctx_->mesh->dlambda();
  const double geom = 1.0 / (ctx_->mesh->radius() * ctx_->sin_t(j));
  const auto& f = xi_->phi();
  auto c = [&](int ii) { return u_at_u(ii, j, k); };  // u at U column ii
  if (ctx_->params.x_order < 4) {
    return skew2(c(i), c(i + 1), f(i - 1, j, k), f(i + 1, j, k),
                 0.5 * inv_dl) *
           geom;
  }
  auto fhat = [&](int ii) {  // Phi interpolated to U column ii
    return (9.0 * (f(ii - 1, j, k) + f(ii, j, k)) -
            (f(ii - 2, j, k) + f(ii + 1, j, k))) /
           16.0;
  };
  auto flux = [&](int ii) { return c(ii) * fhat(ii); };
  const double dflux = (27.0 * (flux(i + 1) - flux(i)) -
                        (flux(i + 2) - flux(i - 1))) /
                       24.0 * inv_dl;
  const double dc = (27.0 * (c(i + 1) - c(i)) - (c(i + 2) - c(i - 1))) /
                    24.0 * inv_dl;
  return 0.5 * (2.0 * dflux - f(i, j, k) * dc) * geom;
}

// ---------------------------------------------------------------------------
// L2: meridional advection with advecting velocity v*sin(theta), 2nd-order
// skew-symmetric.
// ---------------------------------------------------------------------------

double AdvectionTerms::l2_u(int i, int j, int k) const {
  const double inv_2dt = 0.5 / ctx_->mesh->dtheta();
  const double geom = 1.0 / (ctx_->mesh->radius() * ctx_->sin_t(j));
  const auto& u = xi_->u();
  // v*sin(theta_v) at the U-grid y-half points (V rows, x-averaged to the
  // U column).
  auto c = [&](int jj) {
    return 0.5 * (v_at_v(i - 1, jj, k) + v_at_v(i, jj, k)) *
           ctx_->sin_tv(jj);
  };
  return skew2(c(j - 1), c(j), u(i, j - 1, k), u(i, j + 1, k), inv_2dt) *
         geom;
}

double AdvectionTerms::l2_v(int i, int j, int k) const {
  const double sv = ctx_->sin_tv(j);
  if (sv < 1e-12) return 0.0;
  const double inv_2dt = 0.5 / ctx_->mesh->dtheta();
  const double geom = 1.0 / (ctx_->mesh->radius() * sv);
  const auto& v = xi_->v();
  // Half points of the V grid in y are the scalar rows; the half point
  // NORTH of V(j) is scalar row j.  Interpolate the transformed flux
  // V*sin(theta_v) first and divide by P at the scalar row, so the
  // footprint stays within {j, j+-1} (Table 2).
  auto c = [&](int jj) {  // v*sin(theta) at scalar row jj
    return 0.5 *
           (v(i, jj - 1, k) * ctx_->sin_tv(jj - 1) +
            v(i, jj, k) * ctx_->sin_tv(jj)) /
           local_->pfac(i, jj);
  };
  return skew2(c(j), c(j + 1), v(i, j - 1, k), v(i, j + 1, k), inv_2dt) *
         geom;
}

double AdvectionTerms::l2_phi(int i, int j, int k) const {
  const double inv_2dt = 0.5 / ctx_->mesh->dtheta();
  const double geom = 1.0 / (ctx_->mesh->radius() * ctx_->sin_t(j));
  const auto& f = xi_->phi();
  auto c = [&](int jj) { return v_at_v(i, jj, k) * ctx_->sin_tv(jj); };
  return skew2(c(j - 1), c(j), f(i, j - 1, k), f(i, j + 1, k), inv_2dt) *
         geom;
}

// ---------------------------------------------------------------------------
// L3: vertical convection with sigma-dot at the interfaces, 2nd-order
// skew-symmetric:  L3(F)_k = [sd_{k+1} F_{k+1} - sd_k F_{k-1}]/(2 dsigma).
// ---------------------------------------------------------------------------

double AdvectionTerms::l3_u(int i, int j, int k) const {
  const auto& u = xi_->u();
  const double sd_top =
      0.5 * (vert_->sdot(i - 1, j, k) + vert_->sdot(i, j, k));
  const double sd_bot =
      0.5 * (vert_->sdot(i - 1, j, k + 1) + vert_->sdot(i, j, k + 1));
  return skew2(sd_top, sd_bot, u(i, j, k - 1), u(i, j, k + 1),
               0.5 / ctx_->dsig(k));
}

double AdvectionTerms::l3_v(int i, int j, int k) const {
  const auto& v = xi_->v();
  const double sd_top =
      0.5 * (vert_->sdot(i, j, k) + vert_->sdot(i, j + 1, k));
  const double sd_bot =
      0.5 * (vert_->sdot(i, j, k + 1) + vert_->sdot(i, j + 1, k + 1));
  return skew2(sd_top, sd_bot, v(i, j, k - 1), v(i, j, k + 1),
               0.5 / ctx_->dsig(k));
}

double AdvectionTerms::l3_phi(int i, int j, int k) const {
  const auto& f = xi_->phi();
  return skew2(vert_->sdot(i, j, k), vert_->sdot(i, j, k + 1),
               f(i, j, k - 1), f(i, j, k + 1), 0.5 / ctx_->dsig(k));
}

void apply_advection(const OpContext& ctx, const state::State& xi,
                     const LocalDiag& local, const VertDiag& vert,
                     state::State& tend, const mesh::Box& window) {
  AdvectionTerms terms(ctx, xi, local, vert);
  for (int k = window.k0; k < window.k1; ++k) {
    for (int j = window.j0; j < window.j1; ++j) {
      for (int i = window.i0; i < window.i1; ++i) {
        tend.u()(i, j, k) = terms.tend_u(i, j, k);
        tend.v()(i, j, k) = terms.tend_v(i, j, k);
        tend.phi()(i, j, k) = terms.tend_phi(i, j, k);
      }
    }
  }
  for (int j = window.j0; j < window.j1; ++j)
    for (int i = window.i0; i < window.i1; ++i) tend.psa()(i, j) = 0.0;
}

}  // namespace ca::ops
