// Stencil footprint measurement by perturbation probing: evaluates a term
// at a fixed point, perturbs one input array cell at a time, and records
// which offsets change the result.  The footprint tests use this to
// verify the dependency patterns of the paper's Tables 1-3 against the
// actual kernels (no hand-maintained offset lists that could drift from
// the code).
#pragma once

#include <array>
#include <functional>
#include <set>
#include <vector>

#include "util/array3d.hpp"

namespace ca::ops {

using Offset = std::array<int, 3>;  // (di, dj, dk)

struct FootprintProbe {
  /// Arrays the term may read; each is perturbed in turn.
  std::vector<util::Array3D<double>*> inputs3d;
  std::vector<util::Array2D<double>*> inputs2d;
  /// Re-evaluates the term at the fixed probe point.
  std::function<double()> eval;
};

/// Offsets (relative to (i0, j0, k0)) whose perturbation changes eval().
/// Probes the cube of radius `radius` around the point.  2-D inputs are
/// probed in the (di, dj) plane and reported with dk = 0.
std::set<Offset> measure_footprint(const FootprintProbe& probe, int i0,
                                   int j0, int k0, int radius);

/// Per-axis extents of a footprint: {min_di, max_di, min_dj, ...}.
struct FootprintExtent {
  int di_min = 0, di_max = 0;
  int dj_min = 0, dj_max = 0;
  int dk_min = 0, dk_max = 0;
};
FootprintExtent extent(const std::set<Offset>& offsets);

/// The set of distinct x offsets (resp. y, z) appearing in the footprint.
std::set<int> x_offsets(const std::set<Offset>& offsets);
std::set<int> y_offsets(const std::set<Offset>& offsets);
std::set<int> z_offsets(const std::set<Offset>& offsets);

}  // namespace ca::ops
