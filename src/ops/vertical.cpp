#include "ops/vertical.hpp"

#include <cmath>

#include "state/transforms.hpp"
#include "util/math.hpp"

namespace ca::ops {

void compute_surface_factors(const OpContext& ctx,
                             const util::Array2D<double>& psa,
                             const mesh::Box& window, int ring,
                             LocalDiag& local) {
  const double ps_ref = ctx.strat->ps_ref();
  for (int j = window.j0 - ring; j < window.j1 + ring; ++j) {
    for (int i = window.i0 - ring; i < window.i1 + ring; ++i) {
      const double pes = ps_ref + psa(i, j) - util::kPressureTop;
      local.pes(i, j) = pes;
      local.pfac(i, j) = std::sqrt(pes / util::kPressureRef);
    }
  }
}

void compute_divergence(const OpContext& ctx, const state::State& xi,
                        const mesh::Box& window, LocalDiag& local) {
  const auto& mesh = *ctx.mesh;
  const double a = mesh.radius();
  const double dl = mesh.dlambda();
  const double dt = mesh.dtheta();
  for (int k = window.k0; k < window.k1; ++k) {
    for (int j = window.j0; j < window.j1; ++j) {
      const double sj = ctx.sin_t(j);
      const double svn = ctx.sin_tv(j - 1);  // north edge of cell j
      const double svs = ctx.sin_tv(j);      // south edge
      for (int i = window.i0; i < window.i1; ++i) {
        // Fluxes P*U at the U points bounding cell i and P*V*sin(theta_v)
        // at the V rows bounding cell j (C-grid divergence).
        const double pu_w =
            0.5 * (local.pfac(i - 1, j) + local.pfac(i, j)) * xi.u()(i, j, k);
        const double pu_e = 0.5 * (local.pfac(i, j) + local.pfac(i + 1, j)) *
                            xi.u()(i + 1, j, k);
        const double pv_n = 0.5 *
                            (local.pfac(i, j - 1) + local.pfac(i, j)) *
                            xi.v()(i, j - 1, k) * svn;
        const double pv_s = 0.5 * (local.pfac(i, j) + local.pfac(i, j + 1)) *
                            xi.v()(i, j, k) * svs;
        local.div(i, j, k) =
            ((pu_e - pu_w) / dl + (pv_s - pv_n) / dt) / (a * sj);
      }
    }
  }
}

double hydrostatic_increment(const OpContext& ctx, const state::State& xi,
                             const LocalDiag& local, int i, int j, int m) {
  const double b = util::kGravityWaveSpeed;
  const double p = local.pfac(i, j);
  const int gm = ctx.gk(m);
  const int nz_global = ctx.levels->nz();
  if (gm >= nz_global) {
    // Surface half-step: from sigma = 1 down to the lowest full level.
    const int kl = m - 1;  // local index of the lowest full level
    const double sig_low = ctx.sig(kl);
    const double sig_mid = 0.5 * (1.0 + sig_low);
    return b * xi.phi()(i, j, kl) / (p * sig_mid) * (1.0 - sig_low);
  }
  // Interface between full levels m-1 and m.
  const double phi_mid = 0.5 * (xi.phi()(i, j, m - 1) + xi.phi()(i, j, m));
  const double sig_if = ctx.sig_half(m);
  return b * phi_mid / (p * sig_if) * (ctx.sig(m) - ctx.sig(m - 1));
}

void column_partials(const OpContext& ctx, const state::State& xi,
                     const mesh::Box& window, const LocalDiag& local,
                     util::Array2D<double>& out_div,
                     util::Array2D<double>& out_phi) {
  const int lnz = ctx.decomp->lnz();
  const bool bottom = ctx.decomp->at_surface();
  for (int j = window.j0; j < window.j1; ++j) {
    for (int i = window.i0; i < window.i1; ++i) {
      double dsum = 0.0;
      for (int k = 0; k < lnz; ++k)
        dsum += ctx.dsig(k) * local.div(i, j, k);
      out_div(i, j) = dsum;
      // Hydrostatic contributions grouped PER LEVEL so each rank reads
      // only levels it owns (interface increments straddle the z-line
      // boundary; splitting each increment's two halves between the
      // owners of its two levels keeps the collective's inputs local —
      // the sum over ranks equals the sum of all interface increments
      // plus the surface half-step exactly, up to reassociation).
      const double b = util::kGravityWaveSpeed;
      const double p = local.pfac(i, j);
      const int nz_global = ctx.levels->nz();
      double psum = 0.0;
      for (int k = 0; k < lnz; ++k) {
        const int gk = ctx.gk(k);
        const double phi = xi.phi()(i, j, k);
        // Half-contribution to the interface ABOVE (gk), if it exists.
        if (gk >= 1)
          psum += 0.5 * b * phi / (p * ctx.sig_half(k)) *
                  (ctx.sig(k) - ctx.sig(k - 1));
        // Half-contribution to the interface BELOW (gk+1), if interior.
        if (gk + 1 <= nz_global - 1)
          psum += 0.5 * b * phi / (p * ctx.sig_half(k + 1)) *
                  (ctx.sig(k + 1) - ctx.sig(k));
      }
      if (bottom)
        psum += hydrostatic_increment(ctx, xi, local, i, j, lnz) +
                ctx.phi_s(i, j);
      out_phi(i, j) = psum;
    }
  }
}

void column_finish(const OpContext& ctx, const state::State& xi,
                   const mesh::Box& window, const LocalDiag& local,
                   const util::Array2D<double>& div_prefix,
                   const util::Array2D<double>& div_total,
                   const util::Array2D<double>& phi_prefix,
                   const util::Array2D<double>& phi_own,
                   const util::Array2D<double>& phi_total,
                   VertDiag& vert) {
  const int lnz = ctx.decomp->lnz();
  const double p0 = util::kPressureRef;
  for (int j = window.j0; j < window.j1; ++j) {
    for (int i = window.i0; i < window.i1; ++i) {
      vert.divsum(i, j) = div_total(i, j);

      // Partial sums PS(m) = sum over global full levels above interface
      // m, anchored at the first owned level (PS = exscan prefix there),
      // integrated down into the below-halo and up into the above-halo.
      const double anchor = div_prefix(i, j);
      double ps = anchor;
      for (int m = 0; m <= window.k1; ++m) {
        // Walking down from the anchor at m=0.
        if (m > 0) ps += ctx.dsig(m - 1) * local.div(i, j, m - 1);
        if (m >= window.k0) {
          const double sig_if = ctx.sig_half(m);
          const double sdot =
              p0 * (sig_if * div_total(i, j) - ps) / local.pes(i, j);
          vert.sdot(i, j, m) = sdot;
          vert.w(i, j, m) = local.pfac(i, j) * sdot;
        }
      }
      if (window.k0 < 0) {
        double ps_up = anchor;
        for (int m = -1; m >= window.k0; --m) {
          ps_up -= ctx.dsig(m) * local.div(i, j, m);
          const double sig_if = ctx.sig_half(m);
          const double sdot =
              p0 * (sig_if * div_total(i, j) - ps_up) / local.pes(i, j);
          vert.sdot(i, j, m) = sdot;
          vert.w(i, j, m) = local.pfac(i, j) * sdot;
        }
      }

      // phi': anchored at the deepest owned level (local lnz-1).  For a
      // non-bottom rank, phi'(lnz-1) equals the suffix of contributions of
      // the ranks below (total - prefix - own); the bottom rank anchors
      // directly at the surface half-step (its own contribution includes
      // that step, so the suffix would be 0 there).
      const bool bottom = ctx.decomp->at_surface();
      // Non-bottom anchor: the suffix of the per-LEVEL contributions of
      // the ranks below covers everything below our deepest level EXCEPT
      // our own level's half-share of the boundary interface — add it
      // back (it is computable from owned data; see column_partials).
      const double boundary_half =
          bottom ? 0.0
                 : 0.5 * util::kGravityWaveSpeed *
                       xi.phi()(i, j, lnz - 1) /
                       (local.pfac(i, j) * ctx.sig_half(lnz)) *
                       (ctx.sig(lnz) - ctx.sig(lnz - 1));
      const double anchor_phi =
          bottom ? hydrostatic_increment(ctx, xi, local, i, j, lnz) +
                       ctx.phi_s(i, j)
                 : phi_total(i, j) - phi_prefix(i, j) - phi_own(i, j) +
                       boundary_half;
      double phi_val = anchor_phi;
      vert.phi_geo(i, j, lnz - 1) = phi_val;
      for (int m = lnz - 2; m >= window.k0; --m) {
        phi_val += hydrostatic_increment(ctx, xi, local, i, j, m + 1);
        vert.phi_geo(i, j, m) = phi_val;
      }
      if (window.k1 > lnz) {
        double phi_dn = anchor_phi;
        for (int m = lnz; m < window.k1; ++m) {
          phi_dn -= hydrostatic_increment(ctx, xi, local, i, j, m);
          vert.phi_geo(i, j, m) = phi_dn;
        }
      }
    }
  }
}

}  // namespace ca::ops
