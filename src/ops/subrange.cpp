#include "ops/subrange.hpp"

namespace ca::ops {

mesh::Box shrink_window(const mesh::Box& w, int sx, int sy, int sz) {
  mesh::Box b{w.i0 + sx, w.i1 - sx, w.j0 + sy, w.j1 - sy, w.k0 + sz,
              w.k1 - sz};
  if (b.empty()) return mesh::Box{w.i0, w.i0, w.j0, w.j0, w.k0, w.k0};
  return b;
}

mesh::Box grow_box(const mesh::Box& b, int gx, int gy, int gz) {
  return mesh::Box{b.i0 - gx, b.i1 + gx, b.j0 - gy, b.j1 + gy, b.k0 - gz,
                   b.k1 + gz};
}

std::vector<mesh::Box> subtract_box(const mesh::Box& window,
                                    const mesh::Box& inner_in) {
  std::vector<mesh::Box> out;
  const mesh::Box inner = mesh::intersect(inner_in, window);
  if (inner.empty()) {
    out.push_back(window);
    return out;
  }
  // y strips span the full x and z extents, x strips the inner y range
  // (full z), z caps the inner x and y ranges — disjoint by construction.
  if (inner.j0 > window.j0)
    out.push_back({window.i0, window.i1, window.j0, inner.j0, window.k0,
                   window.k1});
  if (inner.j1 < window.j1)
    out.push_back({window.i0, window.i1, inner.j1, window.j1, window.k0,
                   window.k1});
  if (inner.i0 > window.i0)
    out.push_back({window.i0, inner.i0, inner.j0, inner.j1, window.k0,
                   window.k1});
  if (inner.i1 < window.i1)
    out.push_back({inner.i1, window.i1, inner.j0, inner.j1, window.k0,
                   window.k1});
  if (inner.k0 > window.k0)
    out.push_back({inner.i0, inner.i1, inner.j0, inner.j1, window.k0,
                   inner.k0});
  if (inner.k1 < window.k1)
    out.push_back({inner.i0, inner.i1, inner.j0, inner.j1, inner.k1,
                   window.k1});
  return out;
}

}  // namespace ca::ops
