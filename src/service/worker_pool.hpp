// Worker pool of the ensemble service: N slot threads multiplex queued
// jobs over a shared rank budget.  Each slot that picks a job spins up a
// comm::Runtime rank group sized to the job's decomposition (via
// service::run_attempt), so the budget bounds the total logical ranks in
// flight, not the number of jobs.
//
// The pool implements the two reliability behaviors on top of the
// Scheduler's policy:
//   - preemption: when the best ready job does not fit the free budget,
//     the pool asks enough lower-priority preemptible running jobs to
//     yield; their campaigns stop at the next checkpoint boundary and the
//     jobs re-enter the queue with a resume offset, so short
//     high-priority work is never starved by long runs;
//   - retry with backoff: a failed attempt (detected fault, timeout, any
//     exception out of the rank group) re-enters the queue gated by an
//     exponentially growing ready_at until the attempt budget is spent,
//     after which the job ends kFailed with its accumulated FaultSummary;
//   - rank health: the budget is tracked per rank.  An attempt that ends
//     with a dead/hung rank (AttemptResult::dead_rank) quarantines that
//     pool rank for quarantine_seconds, and a circuit breaker retires it
//     permanently after max_rank_strikes quarantines.  The job re-queues
//     WITHOUT burning an attempt and resumes from its last checkpoint on
//     healthy ranks — re-factorized to a smaller process grid when its
//     shape can no longer fit the surviving budget.  This covers every
//     distributed core: the CA core's cross-step carry travels in the
//     checkpoint's reshardable carry blocks, so reshard_checkpoints
//     redistributes it geometrically along with the field interiors;
//   - elasticity (opt-in, PoolOptions::elastic): under queue pressure a
//     preemptible job that cannot fit the idle ranks is squeezed to a
//     smaller valid decomposition and runs narrow instead of waiting for
//     preemption to free its full shape; when it is next dispatched with
//     room to spare it re-grows toward its submitted dims.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/job.hpp"
#include "service/replica.hpp"
#include "service/scheduler.hpp"

namespace ca::util {
class Config;
}

namespace ca::service {

struct PoolOptions {
  int slots = 2;                    ///< worker slot threads
  int rank_budget = 4;              ///< total logical ranks in flight
  std::size_t queue_capacity = 16;  ///< backpressure bound on submissions
  /// Directory for the per-job checkpoint files preemption rides on.
  std::string checkpoint_dir = ".";
  /// Quarantines before a rank is retired for good (circuit breaker).
  int max_rank_strikes = 3;
  /// How long a struck rank sits out before rejoining the budget.
  double quarantine_seconds = 0.25;
  /// Scheduler aging rate [priority points per waiting second]; 0 = off.
  double aging_rate = 0.0;
  /// In-memory buddy replication of checkpoint images: every cadence
  /// each rank deposits its image into the pool's ReplicaStore (self +
  /// ring buddy), and resumes prefer the RAM set over the disk files.
  bool replicate = false;
  /// Voluntary rank elasticity (config key service.elastic, env
  /// CA_AGCM_SERVICE_ELASTIC).  On: a preemptible job whose demand does
  /// not fit the idle ranks is squeezed to the largest valid smaller
  /// decomposition and runs narrow instead of waiting for preemption,
  /// re-growing toward its submitted dims when room returns.  Off (the
  /// default): decompositions change only when the usable budget shrinks
  /// permanently (a rank retired).
  bool elastic = false;
  /// Checkpoint delta chaining: > 0 writes at most that many dirty-block
  /// delta files between full bases (0 = full file every cadence).
  int delta_chain = 0;
  /// Dirty-diff granularity for delta checkpoints [bytes].
  std::size_t delta_block_bytes = 4096;
  /// Numerical-health sentinel for every attempt's campaign — ON by
  /// default at the service layer (cadence 1): a production pool must
  /// never complete a blown-up trajectory or persist/replicate a
  /// poisoned state.  Knobs under health.* (env CA_AGCM_HEALTH_*);
  /// cadence 0 turns the sentinel off entirely.
  core::HealthOptions health{.cadence = 1};
  /// Separate retry budget for NUMERIC rollbacks (config key
  /// service.numeric_retry): how many times a job's sentinel trip may
  /// roll it back to its last healthy checkpoint before it fails.
  /// Distinct from JobSpec::max_attempts — comm faults and blowups have
  /// different causes and different bounded budgets.
  int numeric_retry = 2;
  /// Observability knobs forwarded to every attempt's rank group and to
  /// the pool's own scheduler tracer (tid -1 in merged traces).
  obs::TraceOptions obs{};
  /// Non-null receives every job's span stream (pid = job id) plus the
  /// scheduler timeline; must outlive the pool.
  obs::TraceCollector* trace_sink = nullptr;

  /// Reads service.slots / rank_budget / queue_capacity / checkpoint_dir /
  /// max_rank_strikes / quarantine_seconds / aging_rate / replicate /
  /// elastic / delta_chain / delta_block_bytes / numeric_retry plus the
  /// health.* and obs.* keys (each with the usual CA_AGCM_* environment
  /// override).
  static PoolOptions from_config(const util::Config& cfg);
};

/// Reportable health of one pool rank (see WorkerPool::rank_health).
struct RankHealthInfo {
  int id = 0;
  std::string status;  ///< "healthy" | "quarantined" | "retired"
  int strikes = 0;
  int quarantines = 0;
};

class WorkerPool {
 public:
  explicit WorkerPool(const PoolOptions& options);
  ~WorkerPool();  // drains the queue, then stops the slots

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  const PoolOptions& options() const { return options_; }

  /// The pool's replica cache (thread-safe on its own mutex).  Tests use
  /// it to inspect/corrupt deposits; it is populated only when
  /// options().replicate is set.
  ReplicaStore& replicas() { return replicas_; }
  const ReplicaStore& replicas() const { return replicas_; }

  /// Service-level metrics registry (counters/histograms the report's v4
  /// `metrics` section snapshots).  Thread-safe on its own locks.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Enqueues a validated job.  Blocks while the queue is full
  /// (backpressure) when `block`; otherwise returns false immediately.
  /// Returns false after shutdown() as well.
  bool submit(const std::shared_ptr<Job>& job, bool block);

  /// Blocks until the job reaches kCompleted or kFailed.
  void wait(const Job& job);
  /// Locked snapshot of a job's reportable fields; `take_state` moves a
  /// completed job's final state into the result exactly once.  Later
  /// state-taking snapshots come back with `state_already_taken` set (and
  /// an empty final_state) so a caller comparing against the state fails
  /// loudly instead of matching a default-constructed State.
  JobResult snapshot(Job& job, bool take_state);
  JobState state(const Job& job) const;
  /// Blocks until every submitted job is terminal.
  void drain();
  /// Stops accepting submissions, drains what is queued, joins the slots.
  /// Backoff gates are cancelled: pending retries run immediately, so the
  /// drain is never held up by a long exponential backoff.
  void shutdown();

  // --- service-level counters (stable once the pool is drained) ---
  int max_concurrent_jobs() const;
  int max_ranks_in_flight() const;
  std::uint64_t preemptions() const;
  std::uint64_t retries() const;
  /// Elastic refits (options().elastic only): jobs squeezed below their
  /// submitted decomposition to run on idle ranks, and re-grown toward it
  /// when room returned.
  std::uint64_t elastic_shrinks() const;
  std::uint64_t elastic_grows() const;
  /// Integral of ranks-in-use over time [rank-seconds]; utilization is
  /// this over (rank_budget * service wall time).
  double rank_seconds_busy() const;

  // --- rank health (the report's `health` section) ---
  std::vector<RankHealthInfo> rank_health() const;
  /// Attempts abandoned to a dead rank and re-queued for recovery.
  std::uint64_t jobs_recovered() const;
  /// Sentinel-tripped attempts rolled back to a healthy checkpoint
  /// (NumericalError incidents, summed over jobs).
  std::uint64_t numeric_rollbacks() const;
  /// Quarantine events (a rank may contribute several).
  std::uint64_t quarantines() const;
  /// Ranks permanently retired by the circuit breaker.
  int ranks_retired() const;
  /// Integral of impaired (quarantined + retired) ranks over time
  /// [rank-seconds]: how much advertised capacity was lost to faults.
  double degraded_rank_seconds() const;

 private:
  enum class RankStatus { kHealthy, kQuarantined, kRetired };
  struct RankHealth {
    RankStatus status = RankStatus::kHealthy;
    int strikes = 0;
    int quarantines = 0;
    std::chrono::steady_clock::time_point until{};  ///< quarantine expiry
    bool busy = false;  ///< currently backing a running attempt
  };

  void worker_loop();
  /// Runs one attempt of `job` outside the lock and applies the outcome.
  void execute(const std::shared_ptr<Job>& job);
  /// Under lock: ask lower-priority preemptible running jobs to yield
  /// until `needed` ranks will come free for a job of `priority`.
  void request_preemption(int priority, int needed);
  /// Under lock: fold the elapsed busy/impaired time into the integrals.
  void accrue_busy_time();
  /// Under lock: ranks available for assignment (healthy and idle).
  int free_rank_count() const;
  /// Under lock: ranks not permanently retired (the ceiling any job's
  /// demand must fit under, quarantined ranks included — they return).
  int usable_rank_count() const;
  /// Under lock: return expired quarantines to the budget; returns the
  /// earliest pending expiry (TimePoint::max() when none).
  std::chrono::steady_clock::time_point revive_ranks(
      std::chrono::steady_clock::time_point now);
  /// Under lock: strike + quarantine (or retire) a pool rank after a
  /// dead-rank attempt.
  void quarantine_rank(int pool_rank,
                       std::chrono::steady_clock::time_point now);
  /// Under lock: refit `job`'s decomposition to the largest valid process
  /// grid whose rank count fits `target` (capped at the submitted
  /// spec.dims) — shrinking for a degraded budget or an elastic squeeze,
  /// re-growing for an elastic expansion.  Schedules a checkpoint reshard
  /// and drops the stale RAM replicas when the shape actually changes.
  /// Returns empty on success, else the reason no shape fits.
  std::string refit_job(Job& job, int target);
  /// Under lock: fail (or reshape) every queued job whose demand exceeds
  /// the permanently usable budget; called after a rank retires.
  void handle_shrunken_budget();
  /// Under lock: the single queue-entry point.  When ranks have been
  /// permanently retired, a job demanding more than the usable budget is
  /// reshaped (or failed) BEFORE it is queued — otherwise it would wait
  /// forever for capacity that cannot return, wedging drain()/shutdown().
  /// Returns false when the job was terminally failed instead of queued
  /// (fail_job has then already done the in_flight_ bookkeeping).
  bool push_job_checked(const std::shared_ptr<Job>& job);
  /// Under lock: mark a job failed and notify (caller handles in_flight_).
  void fail_job(Job& job, const std::string& error);
  /// Under lock: refresh the live service.queue_depth / service.free_ranks
  /// gauges; called wherever the queue or the rank budget changes.
  void update_gauges();

  PoolOptions options_;
  /// RAM replica cache shared by every job's attempts; own mutex, never
  /// touched under mu_ ordering constraints.
  ReplicaStore replicas_;
  /// Service metrics (own locks) and the scheduler-decision tracer.  The
  /// tracer's ring is only ever touched under mu_ (every instant site
  /// holds the pool lock), flushed once after the slots join.
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers: queue/budget changed
  std::condition_variable space_cv_;  ///< submitters: queue has space
  std::condition_variable done_cv_;   ///< waiters: a job went terminal
  Scheduler scheduler_;
  std::vector<std::shared_ptr<Job>> running_;
  std::vector<std::thread> slots_;
  std::vector<RankHealth> ranks_;  ///< index = pool rank id
  int in_flight_ = 0;  ///< queued + running + gated jobs, for drain()
  bool stopping_ = false;
  /// Slot joining happens exactly once even when shutdown() is called
  /// concurrently (explicit shutdown racing the destructor, or two user
  /// threads); a second join of the same std::thread is UB.
  std::once_flag shutdown_once_;
  int max_concurrent_ = 0;
  int max_ranks_in_flight_ = 0;
  std::uint64_t preemptions_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t elastic_shrinks_ = 0;
  std::uint64_t elastic_grows_ = 0;
  /// Scheduler dispatch counter backing the jobs' dispatches_overtaken
  /// metric (see Job::dispatch_mark).
  std::uint64_t dispatches_ = 0;
  std::uint64_t jobs_recovered_ = 0;
  std::uint64_t numeric_rollbacks_ = 0;
  std::uint64_t quarantines_ = 0;
  int ranks_retired_ = 0;
  double rank_seconds_busy_ = 0.0;
  double degraded_rank_seconds_ = 0.0;
  std::chrono::steady_clock::time_point busy_mark_;
};

}  // namespace ca::service
