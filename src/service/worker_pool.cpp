#include "service/worker_pool.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "service/runner.hpp"

namespace ca::service {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::chrono::steady_clock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
}

void add_summary(comm::FaultSummary& acc, const comm::FaultSummary& s) {
  acc.injected_delay += s.injected_delay;
  acc.injected_duplicate += s.injected_duplicate;
  acc.injected_drop += s.injected_drop;
  acc.injected_corrupt += s.injected_corrupt;
  acc.injected_stall += s.injected_stall;
  acc.detected_checksum += s.detected_checksum;
  acc.detected_timeout += s.detected_timeout;
  acc.recovered_delay += s.recovered_delay;
  acc.recovered_duplicate += s.recovered_duplicate;
  acc.recovered_drop += s.recovered_drop;
}

}  // namespace

WorkerPool::WorkerPool(const PoolOptions& options)
    : options_(options),
      scheduler_(options.queue_capacity),
      free_ranks_(options.rank_budget),
      busy_mark_(Clock::now()) {
  // Checkpoint paths are built under this directory; a missing one would
  // make every preemptible job burn its whole attempt budget on fopen
  // failures, so materialize it (or fail loudly) before any slot starts.
  if (options_.checkpoint_dir.empty()) options_.checkpoint_dir = ".";
  std::filesystem::create_directories(options_.checkpoint_dir);
  slots_.reserve(static_cast<std::size_t>(options_.slots));
  for (int s = 0; s < options_.slots; ++s)
    slots_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() { shutdown(); }

bool WorkerPool::submit(const std::shared_ptr<Job>& job, bool block) {
  std::unique_lock<std::mutex> lk(mu_);
  if (block)
    space_cv_.wait(lk, [&] { return stopping_ || !scheduler_.full(); });
  if (stopping_ || scheduler_.full()) return false;
  const auto now = Clock::now();
  job->state = JobState::kQueued;
  job->submitted_at = now;
  job->last_queued_at = now;
  job->ready_at = now;
  if (job->checkpoint_prefix.empty())
    job->checkpoint_prefix = options_.checkpoint_dir + "/ca_service_job" +
                             std::to_string(job->id);
  ++in_flight_;
  scheduler_.push(job);
  // A high-priority submission that does not fit the free budget starts
  // evicting immediately — an idle worker may never see it otherwise.
  if (const Job* best = scheduler_.peek_ready(now))
    request_preemption(best->spec.priority, best->spec.ranks());
  work_cv_.notify_all();
  return true;
}

void WorkerPool::wait(const Job& job) {
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] {
    return job.state == JobState::kCompleted ||
           job.state == JobState::kFailed;
  });
}

JobResult WorkerPool::snapshot(Job& job, bool take_state) {
  std::lock_guard<std::mutex> lk(mu_);
  JobResult r;
  r.id = job.id;
  r.name = job.spec.name;
  r.state = job.state;
  r.steps_done = job.steps_done;
  r.metrics = job.metrics;
  r.faults = job.faults;
  r.error = job.error;
  if (take_state && job.state == JobState::kCompleted) {
    if (job.final_state_taken) {
      // A previous snapshot already moved the state out; returning the
      // (now empty) member again would let a caller silently compare
      // against a default-constructed State.  Signal it explicitly.
      r.state_already_taken = true;
    } else {
      r.final_state = std::move(job.final_state);
      job.final_state_taken = true;
    }
  }
  return r;
}

JobState WorkerPool::state(const Job& job) const {
  std::lock_guard<std::mutex> lk(mu_);
  return job.state;
}

void WorkerPool::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return in_flight_ == 0; });
}

void WorkerPool::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  // The old `stopping_ && slots_.empty()` early-return raced: a second
  // caller arriving after stopping_ was set but before the first caller
  // cleared slots_ would fall through and join the same std::thread
  // objects (UB).  call_once joins exactly once and makes every other
  // caller block until the joining one finishes, so shutdown() still
  // means "slots are stopped" for all callers.
  std::call_once(shutdown_once_, [this] {
    for (auto& t : slots_)
      if (t.joinable()) t.join();
    slots_.clear();
  });
}

int WorkerPool::max_concurrent_jobs() const {
  std::lock_guard<std::mutex> lk(mu_);
  return max_concurrent_;
}

int WorkerPool::max_ranks_in_flight() const {
  std::lock_guard<std::mutex> lk(mu_);
  return max_ranks_in_flight_;
}

std::uint64_t WorkerPool::preemptions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return preemptions_;
}

std::uint64_t WorkerPool::retries() const {
  std::lock_guard<std::mutex> lk(mu_);
  return retries_;
}

double WorkerPool::rank_seconds_busy() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rank_seconds_busy_ +
         (options_.rank_budget - free_ranks_) *
             seconds_between(busy_mark_, Clock::now());
}

void WorkerPool::accrue_busy_time() {
  const auto now = Clock::now();
  rank_seconds_busy_ += (options_.rank_budget - free_ranks_) *
                        seconds_between(busy_mark_, now);
  busy_mark_ = now;
}

void WorkerPool::request_preemption(int priority, int needed) {
  // Ranks already coming free from in-progress yields count first.
  for (const auto& j : running_)
    if (j->yield_requested.load(std::memory_order_relaxed))
      needed -= j->spec.ranks();
  needed -= free_ranks_;
  if (needed <= 0) return;

  std::vector<Job*> victims;
  for (const auto& j : running_)
    if (j->spec.checkpoint_every > 0 && j->spec.priority < priority &&
        !j->yield_requested.load(std::memory_order_relaxed))
      victims.push_back(j.get());
  // Evict the least important work first.
  std::sort(victims.begin(), victims.end(), [](const Job* a, const Job* b) {
    if (a->spec.priority != b->spec.priority)
      return a->spec.priority < b->spec.priority;
    return a->sequence > b->sequence;
  });
  for (Job* v : victims) {
    if (needed <= 0) break;
    v->yield_requested.store(true, std::memory_order_relaxed);
    needed -= v->spec.ranks();
  }
}

void WorkerPool::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    const auto now = Clock::now();
    // Shutdown cancels backoff gates: the drain still runs every pending
    // retry, just immediately — otherwise an exponential backoff (up to
    // 2^20 x base) could hold shutdown hostage for hours.
    const auto gate = stopping_ ? Scheduler::TimePoint::max() : now;
    if (auto job = scheduler_.pop_ready(gate, free_ranks_)) {
      accrue_busy_time();
      free_ranks_ -= job->spec.ranks();
      max_ranks_in_flight_ = std::max(
          max_ranks_in_flight_, options_.rank_budget - free_ranks_);
      running_.push_back(job);
      max_concurrent_ =
          std::max(max_concurrent_, static_cast<int>(running_.size()));
      job->state = JobState::kRunning;
      job->metrics.queue_wait_seconds +=
          seconds_between(job->last_queued_at, now);
      ++job->metrics.attempts;
      space_cv_.notify_all();
      lk.unlock();
      execute(job);
      lk.lock();
      continue;
    }
    if (stopping_ && in_flight_ == 0) return;
    if (const Job* best = scheduler_.peek_ready(gate))
      if (best->spec.ranks() > free_ranks_)
        request_preemption(best->spec.priority, best->spec.ranks());
    const auto next = scheduler_.next_ready_after(gate);
    if (next == Scheduler::TimePoint::max())
      work_cv_.wait(lk);
    else
      work_cv_.wait_until(lk, next);
  }
}

void WorkerPool::execute(const std::shared_ptr<Job>& job) {
  const int attempt = job->metrics.attempts;
  const int start_step = job->steps_done;
  Job* raw = job.get();
  AttemptResult out = run_attempt(
      job->spec, attempt, start_step, job->checkpoint_prefix,
      [raw] { return raw->yield_requested.load(std::memory_order_relaxed); });

  std::lock_guard<std::mutex> lk(mu_);
  accrue_busy_time();
  free_ranks_ += job->spec.ranks();
  running_.erase(std::find(running_.begin(), running_.end(), job));

  job->metrics.run_seconds += out.run_seconds;
  job->metrics.messages += out.comm.p2p_messages;
  job->metrics.bytes += out.comm.p2p_bytes + out.comm.collective_bytes;
  job->metrics.collective_calls += out.comm.collective_calls;
  add_summary(job->faults, out.faults);

  const auto now = Clock::now();
  bool terminal = false;
  if (!out.error.empty()) {
    job->error = out.error;  // latest failure retained either way
    if (job->metrics.attempts < job->spec.max_attempts) {
      ++retries_;
      const double backoff =
          std::ldexp(job->spec.retry_backoff_seconds,
                     std::min(attempt - 1, 20));
      job->metrics.backoff_seconds += backoff;
      job->state = JobState::kBackoff;
      job->ready_at = now + to_duration(backoff);
      job->last_queued_at = now;
      // The retry passes steps_done (the last yield mark) only as a
      // resume-from-checkpoint signal; run_attempt trusts the checkpoint
      // headers' recorded step, which may be PAST steps_done when the
      // failed attempt checkpointed mid-run before dying.
      scheduler_.push(job);
    } else {
      job->state = JobState::kFailed;
      terminal = true;
    }
  } else if (out.yielded) {
    ++preemptions_;
    ++job->metrics.preemptions;
    job->steps_done = out.end_step;
    job->yield_requested.store(false, std::memory_order_relaxed);
    job->state = JobState::kPreempted;
    job->ready_at = now;
    job->last_queued_at = now;
    scheduler_.push(job);
  } else {
    job->steps_done = out.end_step;
    job->final_state = std::move(out.global);
    job->state = JobState::kCompleted;
    job->error.clear();
    terminal = true;
  }

  if (terminal) {
    if (job->metrics.run_seconds > 0.0)
      job->metrics.steps_per_second =
          job->steps_done / job->metrics.run_seconds;
    if (job->spec.deadline_seconds > 0.0)
      job->metrics.deadline_missed =
          seconds_between(job->submitted_at, now) > job->spec.deadline_seconds;
    --in_flight_;
    done_cv_.notify_all();
  }
  work_cv_.notify_all();
}

}  // namespace ca::service
