#include "service/worker_pool.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <string_view>

#include "service/runner.hpp"
#include "util/checkpoint.hpp"
#include "util/config.hpp"
#include "util/proc_grid.hpp"

namespace ca::service {
namespace {

using Clock = std::chrono::steady_clock;

/// A `*.ckpt.tmp` file younger than this may be a sibling pool's atomic
/// checkpoint write in flight; only older ones are swept at startup.
constexpr std::chrono::seconds kStaleTmpAge{60};

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::chrono::steady_clock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
}

void add_summary(comm::FaultSummary& acc, const comm::FaultSummary& s) {
  acc.injected_delay += s.injected_delay;
  acc.injected_duplicate += s.injected_duplicate;
  acc.injected_drop += s.injected_drop;
  acc.injected_corrupt += s.injected_corrupt;
  acc.injected_stall += s.injected_stall;
  acc.injected_kill += s.injected_kill;
  acc.injected_hang += s.injected_hang;
  acc.injected_state_corrupt += s.injected_state_corrupt;
  acc.detected_checksum += s.detected_checksum;
  acc.detected_timeout += s.detected_timeout;
  acc.detected_peer_dead += s.detected_peer_dead;
  acc.detected_numeric += s.detected_numeric;
  acc.recovered_delay += s.recovered_delay;
  acc.recovered_duplicate += s.recovered_duplicate;
  acc.recovered_drop += s.recovered_drop;
}

}  // namespace

PoolOptions PoolOptions::from_config(const util::Config& cfg) {
  PoolOptions o;
  o.slots = cfg.get_int("service.slots", o.slots);
  o.rank_budget = cfg.get_int("service.rank_budget", o.rank_budget);
  o.queue_capacity = static_cast<std::size_t>(
      cfg.get_long("service.queue_capacity",
                   static_cast<long long>(o.queue_capacity)));
  o.checkpoint_dir =
      cfg.get_string("service.checkpoint_dir", o.checkpoint_dir);
  o.max_rank_strikes =
      cfg.get_int("service.max_rank_strikes", o.max_rank_strikes);
  o.quarantine_seconds =
      cfg.get_double("service.quarantine_seconds", o.quarantine_seconds);
  o.aging_rate = cfg.get_double("service.aging_rate", o.aging_rate);
  o.replicate = cfg.get_bool("service.replicate", o.replicate);
  o.elastic = cfg.get_bool("service.elastic", o.elastic);
  o.delta_chain = cfg.get_int("service.delta_chain", o.delta_chain);
  o.delta_block_bytes = static_cast<std::size_t>(
      cfg.get_long("service.delta_block_bytes",
                   static_cast<long long>(o.delta_block_bytes)));
  o.health = core::HealthOptions::from_config(cfg);
  o.numeric_retry = cfg.get_int("service.numeric_retry", o.numeric_retry);
  o.obs = obs::TraceOptions::from_config(cfg);
  return o;
}

WorkerPool::WorkerPool(const PoolOptions& options)
    : options_(options),
      scheduler_(options.queue_capacity),
      ranks_(static_cast<std::size_t>(std::max(0, options.rank_budget))),
      busy_mark_(Clock::now()) {
  scheduler_.set_aging_rate(options_.aging_rate);
  // Environment-sensitive reliability defaults: CI legs flip replication
  // and delta chaining on for pools constructed DIRECTLY from PoolOptions
  // (most tests), not just from_config ones.  An empty Config resolves
  // only the CA_AGCM_* environment; absent vars keep the passed values.
  {
    const util::Config env;
    options_.replicate = env.get_bool("service.replicate", options_.replicate);
    options_.elastic = env.get_bool("service.elastic", options_.elastic);
    options_.delta_chain =
        env.get_int("service.delta_chain", options_.delta_chain);
    // The sentinel knobs too (CA_AGCM_HEALTH_*): the CI chaos legs flip
    // cadence/bounds for pools built directly from PoolOptions.
    auto& h = options_.health;
    h.cadence = env.get_int("health.cadence", h.cadence);
    h.max_wind = env.get_double("health.max_wind", h.max_wind);
    h.max_phi = env.get_double("health.max_phi", h.max_phi);
    h.max_psa = env.get_double("health.max_psa", h.max_psa);
    h.max_energy_growth =
        env.get_double("health.max_energy_growth", h.max_energy_growth);
    h.max_mass_growth =
        env.get_double("health.max_mass_growth", h.max_mass_growth);
    h.growth_warmup = env.get_int("health.growth_warmup", h.growth_warmup);
    options_.numeric_retry =
        env.get_int("service.numeric_retry", options_.numeric_retry);
  }
  // Same env courtesy for the obs knobs (CA_AGCM_OBS_*): CI flips tracing
  // on for pools constructed directly from PoolOptions, not just
  // from_config ones.  tid -1 marks the scheduler timeline in merged
  // traces and routes flight dumps to obs_dump_service.json.
  options_.obs = options_.obs.env_resolved();
  tracer_.configure(options_.obs, /*tid=*/-1, nullptr, options_.trace_sink);
  if (options_.trace_sink != nullptr)
    options_.trace_sink->set_thread_name(0, -1, "service scheduler");
  // Checkpoint paths are built under this directory; a missing one would
  // make every preemptible job burn its whole attempt budget on fopen
  // failures, so materialize it (or fail loudly) before any slot starts.
  if (options_.checkpoint_dir.empty()) options_.checkpoint_dir = ".";
  std::filesystem::create_directories(options_.checkpoint_dir);
  // Sweep stale atomic-write leftovers: a crash between a checkpoint's
  // tmp-write and its rename leaves a `*.ckpt.tmp` behind.  They are never
  // read (readers only open the renamed path) but accumulate forever.
  // Only files past kStaleTmpAge are removed: another pool sharing this
  // directory may have an atomic write in flight right now, and deleting
  // its tmp file would fail that checkpoint and burn a job attempt.  An
  // in-flight tmp lives milliseconds, so a minute-old one is a dead
  // writer's.
  std::error_code ec;
  const auto oldest_live =
      std::filesystem::file_time_type::clock::now() - kStaleTmpAge;
  for (const auto& e :
       std::filesystem::directory_iterator(options_.checkpoint_dir, ec)) {
    if (!e.is_regular_file(ec)) continue;
    const std::string name = e.path().filename().string();
    const auto ends_with = [&name](std::string_view suffix) {
      return name.size() > suffix.size() &&
             name.compare(name.size() - suffix.size(), suffix.size(),
                          suffix) == 0;
    };
    if (ends_with(".ckpt.tmp")) {
      const auto mtime = std::filesystem::last_write_time(e.path(), ec);
      if (!ec && mtime < oldest_live) std::filesystem::remove(e.path(), ec);
    } else if (ends_with(".reshard")) {
      // A reshard marker is the commit record of a reshard that crashed
      // after committing but before publishing; roll it forward so the
      // checkpoint set is whole before any job resumes from it.  Same age
      // gate as the tmp sweep: a fresh marker may belong to a sibling
      // pool publishing right now.
      const auto mtime = std::filesystem::last_write_time(e.path(), ec);
      if (ec || mtime >= oldest_live) continue;
      const std::string full = e.path().string();
      try {
        util::recover_resharded_checkpoints(
            full.substr(0, full.size() - 8));
      } catch (const std::exception&) {
        // Leave the marker for the owning job's reshard retry to repair.
      }
    }
  }
  slots_.reserve(static_cast<std::size_t>(options_.slots));
  for (int s = 0; s < options_.slots; ++s)
    slots_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() { shutdown(); }

bool WorkerPool::submit(const std::shared_ptr<Job>& job, bool block) {
  std::unique_lock<std::mutex> lk(mu_);
  if (block)
    space_cv_.wait(lk, [&] { return stopping_ || !scheduler_.full(); });
  if (stopping_ || scheduler_.full()) return false;
  const auto now = Clock::now();
  job->state = JobState::kQueued;
  job->submitted_at = now;
  job->last_queued_at = now;
  job->ready_at = now;
  if (job->checkpoint_prefix.empty())
    job->checkpoint_prefix = options_.checkpoint_dir + "/ca_service_job" +
                             std::to_string(job->id);
  ++in_flight_;
  metrics_.counter("service.jobs_submitted").add(1);
  tracer_.instant("admit", "service",
                  "job " + std::to_string(job->id) + " '" +
                      job->spec.name + "' priority " +
                      std::to_string(job->spec.priority));
  if (push_job_checked(job)) {
    // A high-priority submission that does not fit the free budget starts
    // evicting immediately — an idle worker may never see it otherwise.
    if (const Job* best = scheduler_.peek_ready(now))
      request_preemption(best->spec.priority, best->ranks());
    work_cv_.notify_all();
  }
  update_gauges();
  return true;
}

void WorkerPool::wait(const Job& job) {
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] {
    return job.state == JobState::kCompleted ||
           job.state == JobState::kFailed;
  });
}

JobResult WorkerPool::snapshot(Job& job, bool take_state) {
  std::lock_guard<std::mutex> lk(mu_);
  JobResult r;
  r.id = job.id;
  r.name = job.spec.name;
  r.state = job.state;
  r.steps_done = job.steps_done;
  r.active_dims = job.active_dims;
  r.metrics = job.metrics;
  r.faults = job.faults;
  r.error = job.error;
  if (take_state && job.state == JobState::kCompleted) {
    if (job.final_state_taken) {
      // A previous snapshot already moved the state out; returning the
      // (now empty) member again would let a caller silently compare
      // against a default-constructed State.  Signal it explicitly.
      r.state_already_taken = true;
    } else {
      r.final_state = std::move(job.final_state);
      job.final_state_taken = true;
    }
  }
  return r;
}

JobState WorkerPool::state(const Job& job) const {
  std::lock_guard<std::mutex> lk(mu_);
  return job.state;
}

void WorkerPool::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return in_flight_ == 0; });
}

void WorkerPool::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  // The old `stopping_ && slots_.empty()` early-return raced: a second
  // caller arriving after stopping_ was set but before the first caller
  // cleared slots_ would fall through and join the same std::thread
  // objects (UB).  call_once joins exactly once and makes every other
  // caller block until the joining one finishes, so shutdown() still
  // means "slots are stopped" for all callers.
  std::call_once(shutdown_once_, [this] {
    for (auto& t : slots_)
      if (t.joinable()) t.join();
    slots_.clear();
    // Slots are gone: nothing records into the scheduler ring any more,
    // so the remainder can spill to the collector without the pool lock.
    tracer_.flush();
  });
}

int WorkerPool::max_concurrent_jobs() const {
  std::lock_guard<std::mutex> lk(mu_);
  return max_concurrent_;
}

int WorkerPool::max_ranks_in_flight() const {
  std::lock_guard<std::mutex> lk(mu_);
  return max_ranks_in_flight_;
}

std::uint64_t WorkerPool::preemptions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return preemptions_;
}

std::uint64_t WorkerPool::retries() const {
  std::lock_guard<std::mutex> lk(mu_);
  return retries_;
}

std::uint64_t WorkerPool::elastic_shrinks() const {
  std::lock_guard<std::mutex> lk(mu_);
  return elastic_shrinks_;
}

std::uint64_t WorkerPool::elastic_grows() const {
  std::lock_guard<std::mutex> lk(mu_);
  return elastic_grows_;
}

double WorkerPool::rank_seconds_busy() const {
  std::lock_guard<std::mutex> lk(mu_);
  int busy = 0;
  for (const auto& rh : ranks_)
    if (rh.busy) ++busy;
  return rank_seconds_busy_ + busy * seconds_between(busy_mark_, Clock::now());
}

std::vector<RankHealthInfo> WorkerPool::rank_health() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<RankHealthInfo> out;
  out.reserve(ranks_.size());
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    RankHealthInfo info;
    info.id = static_cast<int>(r);
    switch (ranks_[r].status) {
      case RankStatus::kHealthy:
        info.status = "healthy";
        break;
      case RankStatus::kQuarantined:
        info.status = "quarantined";
        break;
      case RankStatus::kRetired:
        info.status = "retired";
        break;
    }
    info.strikes = ranks_[r].strikes;
    info.quarantines = ranks_[r].quarantines;
    out.push_back(std::move(info));
  }
  return out;
}

std::uint64_t WorkerPool::jobs_recovered() const {
  std::lock_guard<std::mutex> lk(mu_);
  return jobs_recovered_;
}

std::uint64_t WorkerPool::numeric_rollbacks() const {
  std::lock_guard<std::mutex> lk(mu_);
  return numeric_rollbacks_;
}

void WorkerPool::update_gauges() {
  metrics_.gauge("service.queue_depth")
      .set(static_cast<double>(scheduler_.size()));
  metrics_.gauge("service.free_ranks")
      .set(static_cast<double>(free_rank_count()));
}

std::uint64_t WorkerPool::quarantines() const {
  std::lock_guard<std::mutex> lk(mu_);
  return quarantines_;
}

int WorkerPool::ranks_retired() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ranks_retired_;
}

double WorkerPool::degraded_rank_seconds() const {
  std::lock_guard<std::mutex> lk(mu_);
  int impaired = 0;
  for (const auto& rh : ranks_)
    if (rh.status != RankStatus::kHealthy) ++impaired;
  return degraded_rank_seconds_ +
         impaired * seconds_between(busy_mark_, Clock::now());
}

void WorkerPool::accrue_busy_time() {
  const auto now = Clock::now();
  int busy = 0, impaired = 0;
  for (const auto& rh : ranks_) {
    if (rh.busy) ++busy;
    if (rh.status != RankStatus::kHealthy) ++impaired;
  }
  const double dt = seconds_between(busy_mark_, now);
  rank_seconds_busy_ += busy * dt;
  degraded_rank_seconds_ += impaired * dt;
  busy_mark_ = now;
}

int WorkerPool::free_rank_count() const {
  int n = 0;
  for (const auto& rh : ranks_)
    if (rh.status == RankStatus::kHealthy && !rh.busy) ++n;
  return n;
}

int WorkerPool::usable_rank_count() const {
  int n = 0;
  for (const auto& rh : ranks_)
    if (rh.status != RankStatus::kRetired) ++n;
  return n;
}

Clock::time_point WorkerPool::revive_ranks(Clock::time_point now) {
  // Charge the degraded integral up to `now` BEFORE any status flips so
  // the quarantine window is accounted at full weight.
  accrue_busy_time();
  auto earliest = Clock::time_point::max();
  for (auto& rh : ranks_) {
    if (rh.status != RankStatus::kQuarantined) continue;
    if (rh.until <= now)
      rh.status = RankStatus::kHealthy;
    else
      earliest = std::min(earliest, rh.until);
  }
  update_gauges();
  return earliest;
}

void WorkerPool::quarantine_rank(int pool_rank, Clock::time_point now) {
  if (pool_rank < 0 || pool_rank >= static_cast<int>(ranks_.size())) return;
  auto& rh = ranks_[pool_rank];
  if (rh.status == RankStatus::kRetired) return;
  ++rh.strikes;
  ++rh.quarantines;
  ++quarantines_;
  metrics_.counter("service.quarantines").add(1);
  if (rh.strikes >= options_.max_rank_strikes) {
    // Circuit breaker: this rank keeps killing attempts — retire it for
    // good and deal with the permanently smaller budget right away.
    rh.status = RankStatus::kRetired;
    ++ranks_retired_;
    metrics_.counter("service.ranks_retired").add(1);
    tracer_.instant("retire", "service",
                    "pool rank " + std::to_string(pool_rank) + " after " +
                        std::to_string(rh.strikes) + " strikes");
    handle_shrunken_budget();
  } else {
    rh.status = RankStatus::kQuarantined;
    rh.until = now + to_duration(std::max(0.0, options_.quarantine_seconds));
    tracer_.instant("quarantine", "service",
                    "pool rank " + std::to_string(pool_rank) + " strike " +
                        std::to_string(rh.strikes));
  }
}

std::string WorkerPool::refit_job(Job& job, int target) {
  if (target <= 0)
    return "rank pool permanently degraded: no usable ranks remain";
  const JobSpec& spec = job.spec;
  // Never exceed the submitted shape: re-growth stops at spec.dims.
  target = std::min(target, spec.ranks());
  // The checkpoint holds plain field state for the serial/original cores
  // and self-describing reshardable carry blocks for the CA core, so ANY
  // job can restart on the largest valid process grid that still fits.
  std::array<int, 3> d{1, 1, 1};
  bool found = spec.core == CoreKind::kSerial;
  for (int p = target; p >= 1 && !found; --p) {
    std::array<int, 3> cand;
    if (p == spec.ranks()) {
      // The submitted shape itself is the preferred fit at full demand
      // (a generated grid of the same rank count may factorize the mesh
      // differently, and swapping shapes for no rank gain would only
      // churn reshards).
      cand = spec.dims;
    } else {
      // pz-preserving preference: keep the submitted vertical split when
      // p divides by it.  The CA core's exact mode is bitwise in the
      // z-line reductions only while pz is unchanged, so an elastic
      // squeeze that narrows py alone stays bit-identical by
      // construction — yz_grid's factorization would only preserve pz by
      // accident.  The probe below still validates the shape, and the
      // generated grid remains the fallback when pz does not divide p.
      const int pz = spec.dims[2];
      if (spec.core == CoreKind::kCA && pz > 0 && p % pz == 0) {
        JobSpec pzprobe = spec;
        pzprobe.dims = {1, p / pz, pz};
        if (validate(pzprobe, options_.rank_budget).empty()) {
          d = pzprobe.dims;
          found = true;
          break;
        }
      }
      try {
        const auto g = spec.core != CoreKind::kCA &&
                               spec.scheme == core::DecompScheme::kXY
                           ? util::xy_grid(p)
                           : util::yz_grid(p, spec.config.nz);
        cand = {g[0], g[1], g[2]};
      } catch (const std::exception&) {
        continue;
      }
    }
    JobSpec probe = spec;
    probe.dims = cand;
    // Validate against the ORIGINAL budget: node_faults may legitimately
    // name a now-retired pool rank id, and p <= target already holds.
    if (!validate(probe, options_.rank_budget).empty()) continue;
    d = cand;
    found = true;
  }
  if (!found)
    return "rank pool permanently degraded: no valid decomposition of the "
           "mesh fits the " +
           std::to_string(target) + " usable rank(s)";
  if (d == job.active_dims) return {};
  // The RAM replicas hold the OLD decomposition's block shapes; after the
  // refit they could only mis-parse, so drop them at the moment the shape
  // changes (the re-written disk set is the sole restore source).
  replicas_.erase_prefix(job.checkpoint_prefix);
  // Only an existing checkpoint set needs resharding; a job that never
  // checkpointed restarts from step 0 under the new shape directly.
  std::error_code ec;
  if (std::filesystem::exists(
          util::checkpoint_path(job.checkpoint_prefix, 0), ec)) {
    if (job.reshard_from == std::array<int, 3>{0, 0, 0})
      job.reshard_from = job.active_dims;
    else if (job.reshard_from == d)
      // Refit back to the shape still on disk: nothing to reshard.
      job.reshard_from = {0, 0, 0};
    // Otherwise keep the ORIGINAL on-disk shape: an earlier refit was
    // scheduled but its reshard has not run yet (chain-safe).
  }
  job.active_dims = d;
  return {};
}

void WorkerPool::fail_job(Job& job, const std::string& error) {
  job.error = error;
  job.state = JobState::kFailed;
  metrics_.counter("service.jobs_failed").add(1);
  if (!job.checkpoint_prefix.empty())
    replicas_.erase_prefix(job.checkpoint_prefix);
  if (job.metrics.run_seconds > 0.0)
    job.metrics.steps_per_second = job.steps_done / job.metrics.run_seconds;
  if (job.spec.deadline_seconds > 0.0)
    job.metrics.deadline_missed =
        seconds_between(job.submitted_at, Clock::now()) >
        job.spec.deadline_seconds;
  --in_flight_;
  done_cv_.notify_all();
}

void WorkerPool::handle_shrunken_budget() {
  const int usable = usable_rank_count();
  auto evicted = scheduler_.remove_over_demand(usable);
  for (auto& j : evicted) {
    const std::string err = refit_job(*j, usable);
    if (err.empty())
      scheduler_.push(std::move(j));
    else
      fail_job(*j, err);
  }
}

bool WorkerPool::push_job_checked(const std::shared_ptr<Job>& job) {
  // handle_shrunken_budget() sweeps the jobs queued at the instant a rank
  // retires; this guard covers every job arriving AFTER it — a fresh
  // submit (validated against the full rank_budget), a yield re-queue, a
  // retry re-queue.  Demand can exceed the usable count only once a rank
  // has retired (quarantined ranks still count as usable: they return).
  if (ranks_retired_ > 0 && job->ranks() > usable_rank_count()) {
    const std::string err = refit_job(*job, usable_rank_count());
    if (!err.empty()) {
      fail_job(*job, err);
      return false;
    }
  }
  // Queue residency starts here: overtakes accrue from this mark when the
  // job is eventually popped.
  job->dispatch_mark = dispatches_;
  scheduler_.push(job);
  return true;
}

void WorkerPool::request_preemption(int priority, int needed) {
  // Ranks already coming free from in-progress yields count first.
  for (const auto& j : running_)
    if (j->yield_requested.load(std::memory_order_relaxed))
      needed -= j->ranks();
  needed -= free_rank_count();
  if (needed <= 0) return;

  std::vector<Job*> victims;
  for (const auto& j : running_)
    if (j->spec.checkpoint_every > 0 && j->spec.priority < priority &&
        !j->yield_requested.load(std::memory_order_relaxed))
      victims.push_back(j.get());
  // Evict the least important work first.
  std::sort(victims.begin(), victims.end(), [](const Job* a, const Job* b) {
    if (a->spec.priority != b->spec.priority)
      return a->spec.priority < b->spec.priority;
    return a->sequence > b->sequence;
  });
  for (Job* v : victims) {
    if (needed <= 0) break;
    v->yield_requested.store(true, std::memory_order_relaxed);
    needed -= v->ranks();
    metrics_.counter("service.preempt_requests").add(1);
    tracer_.instant("preempt_request", "service",
                    "job " + std::to_string(v->id) + " asked to yield " +
                        std::to_string(v->ranks()) + " rank(s) for priority " +
                        std::to_string(priority));
  }
}

void WorkerPool::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    const auto now = Clock::now();
    // Shutdown cancels backoff gates: the drain still runs every pending
    // retry, just immediately — otherwise an exponential backoff (up to
    // 2^20 x base) could hold shutdown hostage for hours.
    const auto gate = stopping_ ? Scheduler::TimePoint::max() : now;
    const auto next_revive = revive_ranks(now);
    if (auto job = scheduler_.pop_ready(gate, free_rank_count())) {
      // Elastic re-growth: a job squeezed (or degraded-reshaped) below
      // its submitted decomposition widens back toward spec.dims when the
      // idle ranks allow it.  pop_ready admitted the job at its CURRENT
      // demand, and free_rank_count() still counts the ranks this job is
      // about to take, so growing up to that bound keeps the assignment
      // below feasible.
      if (options_.elastic && job->active_dims != job->spec.dims) {
        const int room = std::min(free_rank_count(), job->spec.ranks());
        if (room > job->ranks()) {
          const auto narrow = job->active_dims;
          if (refit_job(*job, room).empty() && job->active_dims != narrow) {
            ++elastic_grows_;
            metrics_.counter("service.elastic_grows").add(1);
            tracer_.instant("elastic_grow", "service",
                            "job " + std::to_string(job->id) + " re-grown " +
                                std::to_string(narrow[0] * narrow[1] *
                                               narrow[2]) +
                                " -> " + std::to_string(job->ranks()) +
                                " rank(s)");
          }
        }
      }
      accrue_busy_time();
      // Back the attempt with concrete pool ranks (lowest ids first, so
      // tests can deterministically target a node by id); the runner maps
      // node-resident faults through this assignment.
      job->assigned_ranks.clear();
      const int need = job->ranks();
      for (int r = 0;
           r < static_cast<int>(ranks_.size()) &&
           static_cast<int>(job->assigned_ranks.size()) < need;
           ++r) {
        if (ranks_[r].status != RankStatus::kHealthy || ranks_[r].busy)
          continue;
        ranks_[r].busy = true;
        job->assigned_ranks.push_back(r);
      }
      int busy = 0;
      for (const auto& rh : ranks_)
        if (rh.busy) ++busy;
      max_ranks_in_flight_ = std::max(max_ranks_in_flight_, busy);
      running_.push_back(job);
      max_concurrent_ =
          std::max(max_concurrent_, static_cast<int>(running_.size()));
      job->state = JobState::kRunning;
      const double waited = seconds_between(job->last_queued_at, now);
      job->metrics.queue_wait_seconds += waited;
      // Dispatch-order fairness accounting: how many OTHER dispatches
      // happened while this job sat in the queue.  Wall-clock-free, so
      // the soak tests can bound aging behavior on any machine speed.
      job->metrics.dispatches_overtaken += dispatches_ - job->dispatch_mark;
      ++dispatches_;
      ++job->metrics.attempts;
      metrics_.counter("service.dispatches").add(1);
      metrics_
          .histogram("service.queue_wait_seconds",
                     {0.001, 0.01, 0.1, 1.0, 10.0})
          .observe(waited);
      tracer_.instant("dispatch", "service",
                      "job " + std::to_string(job->id) + " attempt " +
                          std::to_string(job->metrics.attempts) + " on " +
                          std::to_string(job->ranks()) + " rank(s)");
      space_cv_.notify_all();
      update_gauges();
      lk.unlock();
      execute(job);
      lk.lock();
      continue;
    }
    if (stopping_ && in_flight_ == 0) return;
    if (Job* best = scheduler_.peek_ready(gate))
      if (best->ranks() > free_rank_count()) {
        // Elastic squeeze: a preemptible job that cannot fit the idle
        // ranks runs narrow on them NOW instead of waiting for
        // preemption to free its full shape — utilization over width.
        // Only checkpointing jobs are squeezed (the refit rides on the
        // checkpoint reshard); when no smaller valid shape fits the free
        // ranks, fall through to preemption as before.
        if (options_.elastic && free_rank_count() > 0 &&
            best->spec.checkpoint_every > 0) {
          const auto wide = best->active_dims;
          if (refit_job(*best, free_rank_count()).empty() &&
              best->active_dims != wide) {
            ++elastic_shrinks_;
            metrics_.counter("service.elastic_shrinks").add(1);
            tracer_.instant("elastic_shrink", "service",
                            "job " + std::to_string(best->id) +
                                " squeezed " +
                                std::to_string(wide[0] * wide[1] * wide[2]) +
                                " -> " + std::to_string(best->ranks()) +
                                " rank(s) for idle budget");
            continue;  // pop it at its narrow shape right away
          }
        }
        request_preemption(best->spec.priority, best->ranks());
      }
    const auto next =
        std::min(scheduler_.next_ready_after(gate), next_revive);
    if (next == Scheduler::TimePoint::max())
      work_cv_.wait(lk);
    else
      work_cv_.wait_until(lk, next);
  }
}

void WorkerPool::execute(const std::shared_ptr<Job>& job) {
  const int attempt = job->metrics.attempts;
  int start_step = job->steps_done;
  Job* raw = job.get();

  AttemptResult out;
  std::string prep_error;
  // Resharding and the resume probe touch the filesystem; both run
  // outside the pool lock like the attempt itself.
  if (job->reshard_from != std::array<int, 3>{0, 0, 0} &&
      job->reshard_from != job->active_dims) {
    // The RAM replicas hold the OLD decomposition's block shapes; after a
    // reshard they could only mis-parse, so the disk set (re-written at
    // the new shape) is the sole restore source for the next attempt.
    replicas_.erase_prefix(job->checkpoint_prefix);
    try {
      const mesh::LatLonMesh mesh(job->spec.config.nx, job->spec.config.ny,
                                  job->spec.config.nz);
      util::reshard_checkpoints(job->checkpoint_prefix, mesh,
                                job->reshard_from, job->active_dims);
      job->reshard_from = {0, 0, 0};
    } catch (const std::exception& e) {
      prep_error = std::string("checkpoint reshard failed: ") + e.what();
    }
  }
  // Rank-death recovery: the dying attempt may have checkpointed without
  // ever yielding, so steps_done (the last yield mark) still reads 0.
  // Probe for a checkpoint set and let the attempt resume from its
  // headers (the source of truth) instead of recomputing from scratch.
  if (prep_error.empty() && start_step == 0 &&
      job->spec.checkpoint_every > 0 &&
      (job->metrics.rank_recoveries > 0 ||
       job->metrics.numeric_rollbacks > 0)) {
    std::error_code ec;
    if (std::filesystem::exists(
            util::checkpoint_path(job->checkpoint_prefix, 0), ec))
      start_step = 1;
  }
  if (prep_error.empty()) {
    AttemptOptions o;
    o.attempt = attempt;
    o.start_step = start_step;
    o.checkpoint_prefix = job->checkpoint_prefix;
    o.should_yield = [raw] {
      return raw->yield_requested.load(std::memory_order_relaxed);
    };
    o.dims = job->active_dims;
    o.pool_ranks = job->assigned_ranks;
    if (options_.replicate) o.replicas = &replicas_;
    o.delta_chain = options_.delta_chain;
    o.delta_block_bytes = options_.delta_block_bytes;
    o.health = options_.health;
    o.obs = options_.obs;
    o.trace_sink = options_.trace_sink;
    // One trace process per job: its ranks' timelines group under the job
    // id in Perfetto, separate from other jobs sharing the pool.
    o.trace_pid = job->id;
    if (options_.trace_sink != nullptr)
      options_.trace_sink->set_process_name(
          job->id, "job " + std::to_string(job->id) + " '" +
                       job->spec.name + "'");
    out = run_attempt(job->spec, o);
  } else {
    out.error = prep_error;
  }
  if (out.dead_rank >= 0) {
    // The dead rank's RAM died with it (and a hung rank's cannot be
    // trusted): drop every copy it deposited.  Its own state survives as
    // the buddy copy the victim pushed to rank (dead+1) % n.
    replicas_.invalidate_depositor(job->checkpoint_prefix, out.dead_rank);
  }

  std::lock_guard<std::mutex> lk(mu_);
  accrue_busy_time();
  for (int r : job->assigned_ranks)
    if (r >= 0 && r < static_cast<int>(ranks_.size()))
      ranks_[r].busy = false;
  running_.erase(std::find(running_.begin(), running_.end(), job));

  job->metrics.run_seconds += out.run_seconds;
  job->metrics.messages += out.comm.p2p_messages;
  job->metrics.bytes += out.comm.p2p_bytes + out.comm.collective_bytes;
  job->metrics.collective_calls += out.comm.collective_calls;
  if (out.restored_from == RestoreSource::kRam) ++job->metrics.ram_restores;
  if (out.restored_from == RestoreSource::kDisk)
    ++job->metrics.disk_restores;
  job->metrics.restore_seconds += out.restore_seconds;
  add_summary(job->faults, out.faults);

  const auto now = Clock::now();
  bool terminal = false;
  if (out.dead_rank >= 0) {
    // A rank died (killed) or went silent past the heartbeat.  That is
    // the pool's hardware failing, not the job: quarantine the backing
    // pool rank and re-queue the job for checkpoint recovery on healthy
    // ranks without burning one of its attempts.
    const int pool_id =
        out.dead_rank < static_cast<int>(job->assigned_ranks.size())
            ? job->assigned_ranks[static_cast<std::size_t>(out.dead_rank)]
            : -1;
    quarantine_rank(pool_id, now);
    // Recovery cap: every recovery strikes a rank, and the breaker bounds
    // strikes per rank, so exceeding this many means the faults follow
    // the job itself — stop recovering and fail it.
    const int cap = options_.rank_budget *
                        std::max(1, options_.max_rank_strikes) +
                    1;
    job->error = out.error;
    if (job->metrics.rank_recoveries >= cap) {
      job->state = JobState::kFailed;
      terminal = true;
    } else {
      ++jobs_recovered_;
      ++job->metrics.rank_recoveries;
      metrics_.counter("service.rank_recoveries").add(1);
      tracer_.instant("recovery", "service",
                      "job " + std::to_string(job->id) +
                          " re-queued after pool rank " +
                          std::to_string(pool_id) + " died");
      // The pop path will ++attempts again; a rank death must not burn
      // the job's own attempt budget.
      --job->metrics.attempts;
      std::string err;
      if (job->ranks() > usable_rank_count())
        err = refit_job(*job, usable_rank_count());
      if (!err.empty()) {
        job->error = err;
        job->state = JobState::kFailed;
        terminal = true;
      } else {
        job->state = JobState::kBackoff;
        job->ready_at = now;  // no backoff: the faulty rank sits out, not
                              // the job
        job->last_queued_at = now;
        job->dispatch_mark = dispatches_;
        scheduler_.push(job);
      }
    }
  } else if (out.numeric) {
    // The health sentinel aborted the attempt (NaN/Inf, runaway field or
    // integral).  That is the trajectory's failure, not the comm
    // layer's: it is charged against the separate service.numeric_retry
    // budget, and the job rolls straight back to its last healthy
    // checkpoint (sentinel-gated writes never persist a poisoned state,
    // and the restore path re-verifies and rewinds any unverified tip).
    job->error = out.error;
    ++numeric_rollbacks_;
    ++job->metrics.numeric_rollbacks;
    metrics_.counter("service.numeric_rollbacks").add(1);
    // Poison containment: the RAM replicas may hold cadences of the
    // blown-up trajectory; purge them so the rollback restores from the
    // verified disk chain only.
    replicas_.erase_prefix(job->checkpoint_prefix);
    tracer_.instant("numeric_rollback", "service",
                    "job " + std::to_string(job->id) +
                        " sentinel tripped at step " +
                        std::to_string(out.numeric_step) + ": " + out.error);
    // One flight dump per incident: the scheduler-side story of the
    // blowup (dispatches, cadences, the trip) for the postmortem.
    tracer_.dump_flight("numeric incident: job " + std::to_string(job->id) +
                        " '" + job->spec.name + "': " + out.error);
    if (job->metrics.numeric_rollbacks > options_.numeric_retry) {
      job->state = JobState::kFailed;
      terminal = true;
      metrics_.counter("service.numeric_retry_exhausted").add(1);
      tracer_.instant("numeric_retry_exhausted", "service",
                      "job " + std::to_string(job->id) + " failed after " +
                          std::to_string(job->metrics.numeric_rollbacks) +
                          " numeric rollbacks: " + out.error);
    } else {
      // No backoff and NO attempt refund: the attempt number must
      // advance so attempt-scoped fault rules (corrupt_state defaults to
      // attempt 1) become transient, and the reseed perturbs
      // probabilistic ones.  max_attempts is never consulted for
      // numeric failures — the budgets are disjoint by design.
      job->state = JobState::kBackoff;
      job->ready_at = now;
      job->last_queued_at = now;
      job->dispatch_mark = dispatches_;
      push_job_checked(job);
    }
  } else if (!out.error.empty()) {
    job->error = out.error;  // latest failure retained either way
    if (job->metrics.attempts < job->spec.max_attempts) {
      ++retries_;
      metrics_.counter("service.retries").add(1);
      tracer_.instant("retry", "service",
                      "job " + std::to_string(job->id) + " attempt " +
                          std::to_string(job->metrics.attempts) +
                          " failed: " + out.error);
      const double backoff =
          std::ldexp(job->spec.retry_backoff_seconds,
                     std::min(attempt - 1, 20));
      job->metrics.backoff_seconds += backoff;
      job->state = JobState::kBackoff;
      job->ready_at = now + to_duration(backoff);
      job->last_queued_at = now;
      // The retry passes steps_done (the last yield mark) only as a
      // resume-from-checkpoint signal; run_attempt trusts the checkpoint
      // headers' recorded step, which may be PAST steps_done when the
      // failed attempt checkpointed mid-run before dying.
      push_job_checked(job);
    } else {
      job->state = JobState::kFailed;
      terminal = true;
      // Retry budget exhausted: a terminal failure the operator will want
      // a postmortem for.  The scheduler ring holds the service-side story
      // (dispatches, retries, quarantines leading up to it).
      metrics_.counter("service.retry_exhausted").add(1);
      tracer_.instant("retry_exhausted", "service",
                      "job " + std::to_string(job->id) + " failed after " +
                          std::to_string(job->metrics.attempts) +
                          " attempts: " + out.error);
      tracer_.dump_flight("retry budget exhausted for job " +
                          std::to_string(job->id) + " '" + job->spec.name +
                          "': " + out.error);
    }
  } else if (out.yielded) {
    ++preemptions_;
    ++job->metrics.preemptions;
    metrics_.counter("service.preemptions").add(1);
    tracer_.instant("yield", "service",
                    "job " + std::to_string(job->id) + " yielded at step " +
                        std::to_string(out.end_step));
    job->steps_done = out.end_step;
    job->yield_requested.store(false, std::memory_order_relaxed);
    job->state = JobState::kPreempted;
    job->ready_at = now;
    job->last_queued_at = now;
    push_job_checked(job);
  } else {
    job->steps_done = out.end_step;
    job->final_state = std::move(out.global);
    job->state = JobState::kCompleted;
    job->error.clear();
    terminal = true;
  }

  if (terminal) {
    metrics_
        .counter(job->state == JobState::kCompleted ? "service.jobs_completed"
                                                    : "service.jobs_failed")
        .add(1);
    // Terminal jobs never resume; release their RAM images.
    replicas_.erase_prefix(job->checkpoint_prefix);
    if (job->metrics.run_seconds > 0.0)
      job->metrics.steps_per_second =
          job->steps_done / job->metrics.run_seconds;
    if (job->spec.deadline_seconds > 0.0)
      job->metrics.deadline_missed =
          seconds_between(job->submitted_at, now) > job->spec.deadline_seconds;
    --in_flight_;
    done_cv_.notify_all();
  }
  update_gauges();
  work_cv_.notify_all();
}

}  // namespace ca::service
