#include "service/job.hpp"

#include <algorithm>

namespace ca::service {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kPreempted:
      return "preempted";
    case JobState::kBackoff:
      return "backoff";
    case JobState::kCompleted:
      return "completed";
    case JobState::kFailed:
      return "failed";
  }
  return "unknown";
}

const char* to_string(CoreKind k) {
  switch (k) {
    case CoreKind::kSerial:
      return "serial";
    case CoreKind::kOriginal:
      return "original";
    case CoreKind::kCA:
      return "ca";
  }
  return "unknown";
}

std::string validate(const JobSpec& spec, int rank_budget) {
  const auto& c = spec.config;
  if (spec.steps <= 0) return "steps must be positive";
  if (c.nx < 4 || c.ny < 3 || c.nz < 1) return "mesh too small";
  for (int d : spec.dims)
    if (d < 1) return "process grid dims must be positive";
  const int p = spec.ranks();
  if (p > rank_budget)
    return "job needs " + std::to_string(p) + " ranks but the pool owns " +
           std::to_string(rank_budget);
  if (spec.core == CoreKind::kSerial) {
    if (p != 1) return "serial jobs must use dims {1,1,1}";
  } else {
    // Mirror the distributed cores' constructor checks so a bad grid is
    // rejected here instead of killing a worker's rank group.
    const int py = spec.dims[1], pz = spec.dims[2];
    if (c.ny / std::max(1, py) < 1 || c.nz / std::max(1, pz) < 1)
      return "process grid exceeds the mesh";
    if (spec.core == CoreKind::kCA) {
      if (spec.dims[0] != 1) return "CA jobs require px == 1 (Y-Z scheme)";
      if (c.M < 2) return "CA jobs require M >= 2";
      if (py > 1 && c.ny / py < 3 * c.M + 1)
        return "CA jobs need ny/py >= 3M + 1 for the deep y halos";
      if (pz > 1 && c.nz / pz < 3)
        return "CA jobs need nz/pz >= 3 for the advection z halos";
    }
    if (spec.core == CoreKind::kOriginal &&
        spec.scheme == core::DecompScheme::kXY && spec.dims[2] != 1)
      return "X-Y scheme jobs require pz == 1";
  }
  for (const auto& r : spec.node_faults) {
    if (r.kind != comm::FaultKind::kKillRank &&
        r.kind != comm::FaultKind::kHangRank)
      return "node_faults may only carry kill_rank/hang_rank rules";
    if (r.src < 0 || r.src >= rank_budget)
      return "node_faults src must be a pool rank id in [0, " +
             std::to_string(rank_budget) + ")";
  }
  if (spec.max_attempts < 1) return "max_attempts must be >= 1";
  if (spec.retry_backoff_seconds < 0.0)
    return "retry_backoff_seconds must be >= 0";
  if (spec.checkpoint_every < 0) return "checkpoint_every must be >= 0";
  if (spec.deadline_seconds < 0.0) return "deadline_seconds must be >= 0";
  return {};
}

}  // namespace ca::service
