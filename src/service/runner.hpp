// Executes ONE attempt of a job on the calling worker thread: spins up a
// comm::Runtime rank group sized to the job's decomposition (serial jobs
// run in-thread), restores the job's checkpoint when resuming, drives the
// campaign loop, and gathers the final global state plus per-attempt comm
// metrics.  Failure (a detected fault, a timeout, any exception out of
// the rank group) is reported as an error string, never thrown — the
// WorkerPool's retry logic decides what happens next.
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "comm/stats.hpp"
#include "core/health.hpp"
#include "obs/trace.hpp"
#include "service/job.hpp"

namespace ca::service {

class ReplicaStore;

/// Where a resumed attempt's state came from.  Collectively agreed: the
/// ranks either ALL restore from RAM replicas or ALL from disk, never a
/// mix (a mixed set has no consistent trajectory).
enum class RestoreSource { kNone = 0, kDisk = 1, kRam = 2 };

struct AttemptResult {
  /// The campaign yielded at a checkpoint (preemption) — not a failure.
  bool yielded = false;
  /// Absolute step reached (== spec.steps when the job completed).
  int end_step = 0;
  /// Job-local world rank that died (RankKilledError) or went silent past
  /// the heartbeat (PeerDeadError) during this attempt; -1 otherwise.
  /// The pool maps it back to a pool rank id for quarantine.
  int dead_rank = -1;
  /// Nonempty = the attempt failed with this diagnostic.
  std::string error;
  /// The attempt failed NUMERICALLY (core::NumericalError: NaN/Inf,
  /// out-of-bounds field, runaway integral) rather than from an
  /// infrastructure fault.  The pool charges these against the separate
  /// service.numeric_retry budget and rolls the job back to its last
  /// healthy checkpoint instead of quarantining ranks.
  bool numeric = false;
  /// Step at which the sentinel tripped (-1 unless `numeric`).
  int numeric_step = -1;
  double run_seconds = 0.0;
  /// Resume provenance: buddy RAM, disk, or a fresh start.
  RestoreSource restored_from = RestoreSource::kNone;
  /// Wall-clock of the restore section (max over ranks): checkpoint
  /// fetch/read + parse + carry restore + halo refresh — the recovery
  /// latency the RAM path exists to cut.
  double restore_seconds = 0.0;
  /// p2p/collective traffic summed over the attempt's ranks.
  comm::PhaseStats comm;
  /// Fault events injected/detected/recovered during this attempt.
  comm::FaultSummary faults;
  /// Gathered full-domain final state (completed attempts only).
  state::State global;

  bool completed(int target_steps) const {
    return error.empty() && !yielded && end_step == target_steps;
  }
};

struct AttemptOptions {
  /// 1-based attempt number; reseeds the job's FaultPlan
  /// (seed + attempt - 1) so injected faults are transient across
  /// retries.
  int attempt = 1;
  /// start_step > 0 means "resume from the per-rank checkpoints under
  /// checkpoint_prefix" (which a prior attempt wrote); the steps actually
  /// re-run are header.step+1 .. spec.steps — the checkpoint header, not
  /// start_step, is the source of truth, because a failed attempt may
  /// have checkpointed past the caller's mark before dying.  start_step
  /// only bounds it from below: a header behind it (or rank headers that
  /// disagree, for distributed jobs) fails the attempt.
  int start_step = 0;
  std::string checkpoint_prefix;
  /// May be null; polled at checkpoint boundaries.
  std::function<bool()> should_yield;
  /// Decomposition for THIS attempt ({0,0,0} = spec.dims).  Differs from
  /// spec.dims after the pool reshaped the job for a degraded budget.
  std::array<int, 3> dims{0, 0, 0};
  /// spec.node_faults whose `src` is a pool rank id are remapped to
  /// job-local world ranks through this assignment (pool_ranks[i] backs
  /// job rank i); rules whose pool rank is not assigned are dropped —
  /// that is what makes a node fault survivable by reassignment.  Empty =
  /// identity mapping over spec.node_faults' srcs.
  std::vector<int> pool_ranks;
  /// Non-null enables in-memory replication: every checkpoint cadence
  /// deposits each rank's image here (self + ring buddy), and a resume
  /// prefers a CRC-valid, collectively-agreed RAM set over the disk
  /// files.  The store must outlive the attempt (the pool owns it).
  ReplicaStore* replicas = nullptr;
  /// Checkpoint delta chaining (util::DeltaOptions::chain_cap): 0 writes
  /// a full file every cadence (the historical behavior), > 0 writes at
  /// most that many delta files between full bases.
  int delta_chain = 0;
  /// Dirty-diff granularity for delta checkpoints [bytes].
  std::size_t delta_block_bytes = 4096;
  /// Observability of the attempt's rank group: span recording / flight
  /// recorder knobs forwarded into comm::RunOptions (distributed jobs)
  /// or a local Tracer (serial jobs).  Env overrides (CA_AGCM_OBS_*)
  /// still apply on top inside the rank group.
  obs::TraceOptions obs{};
  /// Non-null receives every rank's span stream for a merged Chrome
  /// trace; must outlive the attempt (the pool owns it).
  obs::TraceCollector* trace_sink = nullptr;
  /// Trace process id for this job's rank group (the pool passes the job
  /// id so per-job timelines separate in the merged trace).
  int trace_pid = 0;
  /// Numerical-health sentinel for the attempt's campaign (default OFF;
  /// the pool injects its service-level default here).  When enabled,
  /// restores are also verified: a resumed state that fails the static
  /// bounds check is treated as a poisoned checkpoint — RAM replicas are
  /// rejected in favor of disk, and a poisoned disk tip is rewound along
  /// the delta chain (max_step) until a healthy cadence is found.
  core::HealthOptions health{};
};

/// Runs the job to spec.steps with the given attempt options.
AttemptResult run_attempt(const JobSpec& spec, const AttemptOptions& opts);

/// Back-compat convenience wrapper (spec.dims, identity rank mapping).
AttemptResult run_attempt(const JobSpec& spec, int attempt, int start_step,
                          const std::string& checkpoint_prefix,
                          const std::function<bool()>& should_yield);

}  // namespace ca::service
