// Executes ONE attempt of a job on the calling worker thread: spins up a
// comm::Runtime rank group sized to the job's decomposition (serial jobs
// run in-thread), restores the job's checkpoint when resuming, drives the
// campaign loop, and gathers the final global state plus per-attempt comm
// metrics.  Failure (a detected fault, a timeout, any exception out of
// the rank group) is reported as an error string, never thrown — the
// WorkerPool's retry logic decides what happens next.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "comm/stats.hpp"
#include "service/job.hpp"

namespace ca::service {

struct AttemptResult {
  /// The campaign yielded at a checkpoint (preemption) — not a failure.
  bool yielded = false;
  /// Absolute step reached (== spec.steps when the job completed).
  int end_step = 0;
  /// Job-local world rank that died (RankKilledError) or went silent past
  /// the heartbeat (PeerDeadError) during this attempt; -1 otherwise.
  /// The pool maps it back to a pool rank id for quarantine.
  int dead_rank = -1;
  /// Nonempty = the attempt failed with this diagnostic.
  std::string error;
  double run_seconds = 0.0;
  /// p2p/collective traffic summed over the attempt's ranks.
  comm::PhaseStats comm;
  /// Fault events injected/detected/recovered during this attempt.
  comm::FaultSummary faults;
  /// Gathered full-domain final state (completed attempts only).
  state::State global;

  bool completed(int target_steps) const {
    return error.empty() && !yielded && end_step == target_steps;
  }
};

struct AttemptOptions {
  /// 1-based attempt number; reseeds the job's FaultPlan
  /// (seed + attempt - 1) so injected faults are transient across
  /// retries.
  int attempt = 1;
  /// start_step > 0 means "resume from the per-rank checkpoints under
  /// checkpoint_prefix" (which a prior attempt wrote); the steps actually
  /// re-run are header.step+1 .. spec.steps — the checkpoint header, not
  /// start_step, is the source of truth, because a failed attempt may
  /// have checkpointed past the caller's mark before dying.  start_step
  /// only bounds it from below: a header behind it (or rank headers that
  /// disagree, for distributed jobs) fails the attempt.
  int start_step = 0;
  std::string checkpoint_prefix;
  /// May be null; polled at checkpoint boundaries.
  std::function<bool()> should_yield;
  /// Decomposition for THIS attempt ({0,0,0} = spec.dims).  Differs from
  /// spec.dims after the pool reshaped the job for a degraded budget.
  std::array<int, 3> dims{0, 0, 0};
  /// spec.node_faults whose `src` is a pool rank id are remapped to
  /// job-local world ranks through this assignment (pool_ranks[i] backs
  /// job rank i); rules whose pool rank is not assigned are dropped —
  /// that is what makes a node fault survivable by reassignment.  Empty =
  /// identity mapping over spec.node_faults' srcs.
  std::vector<int> pool_ranks;
};

/// Runs the job to spec.steps with the given attempt options.
AttemptResult run_attempt(const JobSpec& spec, const AttemptOptions& opts);

/// Back-compat convenience wrapper (spec.dims, identity rank mapping).
AttemptResult run_attempt(const JobSpec& spec, int attempt, int start_step,
                          const std::string& checkpoint_prefix,
                          const std::function<bool()>& should_yield);

}  // namespace ca::service
