// Executes ONE attempt of a job on the calling worker thread: spins up a
// comm::Runtime rank group sized to the job's decomposition (serial jobs
// run in-thread), restores the job's checkpoint when resuming, drives the
// campaign loop, and gathers the final global state plus per-attempt comm
// metrics.  Failure (a detected fault, a timeout, any exception out of
// the rank group) is reported as an error string, never thrown — the
// WorkerPool's retry logic decides what happens next.
#pragma once

#include <functional>
#include <string>

#include "comm/stats.hpp"
#include "service/job.hpp"

namespace ca::service {

struct AttemptResult {
  /// The campaign yielded at a checkpoint (preemption) — not a failure.
  bool yielded = false;
  /// Absolute step reached (== spec.steps when the job completed).
  int end_step = 0;
  /// Nonempty = the attempt failed with this diagnostic.
  std::string error;
  double run_seconds = 0.0;
  /// p2p/collective traffic summed over the attempt's ranks.
  comm::PhaseStats comm;
  /// Fault events injected/detected/recovered during this attempt.
  comm::FaultSummary faults;
  /// Gathered full-domain final state (completed attempts only).
  state::State global;

  bool completed(int target_steps) const {
    return error.empty() && !yielded && end_step == target_steps;
  }
};

/// Runs the job to spec.steps.  start_step > 0 means "resume from the
/// per-rank checkpoints under `checkpoint_prefix`" (which a prior attempt
/// wrote); the steps actually re-run are header.step+1 .. spec.steps —
/// the checkpoint header, not start_step, is the source of truth, because
/// a failed attempt may have checkpointed past the caller's mark before
/// dying.  start_step only bounds it from below: a header behind it (or
/// rank headers that disagree, for distributed jobs) fails the attempt.
/// `attempt` is 1-based and reseeds the job's FaultPlan
/// (seed + attempt - 1) so injected faults are transient across retries.
/// `should_yield` may be null; it is polled at checkpoint boundaries.
AttemptResult run_attempt(const JobSpec& spec, int attempt, int start_step,
                          const std::string& checkpoint_prefix,
                          const std::function<bool()>& should_yield);

}  // namespace ca::service
