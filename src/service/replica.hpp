// In-memory checkpoint replication: the RAM half of the recovery path.
//
// Every checkpoint cadence, each rank of a replicated job deposits its
// own full checkpoint image into the pool's ReplicaStore (the node-local
// RAM cache a surviving node keeps across attempts) and streams a copy
// to its ring buddy, rank (r+1) % n, over the job's own comm runtime —
// so rank r's latest state lives in two nodes' memory.  When the pool
// re-runs a job after a rank death, the runner restores from the store
// first and touches the on-disk checkpoint only when the RAM set is
// incomplete (the victim AND its buddy both died), stale, or fails CRC:
// the disk path written every cadence stays the bitwise-identical
// fallback.  A dead rank's deposits are invalidated by the pool (its RAM
// died with it); the buddy copy it pushed to the survivor is what makes
// the victim recoverable without disk I/O.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "comm/context.hpp"

namespace ca::service {

/// One rank's checkpoint image as held in a (surviving) node's RAM.
struct ReplicaImage {
  std::int64_t step = 0;
  double time_seconds = 0.0;
  int depositor = -1;  ///< job-local rank whose RAM holds this copy
  std::uint32_t crc = 0;
  std::vector<std::byte> bytes;  ///< full v3 checkpoint image
};

/// Pool-owned, thread-safe map (job prefix, job-local rank) -> replica
/// copies.  Up to one copy per depositor is kept (self + buddy in the
/// ring scheme); fetch() returns the freshest copy whose CRC still
/// matches, so RAM bit-rot degrades to the disk path instead of feeding
/// a corrupt image to the restore.
class ReplicaStore {
 public:
  void deposit(const std::string& prefix, int rank, int depositor,
               std::int64_t step, double time_seconds,
               std::vector<std::byte> bytes);

  /// The freshest CRC-valid image for (prefix, rank); null when none
  /// survives.  Returns a shared handle, not a copy: restores fetch from
  /// every rank at once and the images can be large.  Deposits never
  /// mutate a published image (they replace the map slot), so the handle
  /// stays valid and stable even if the depositor refreshes its copy.
  std::shared_ptr<const ReplicaImage> fetch(const std::string& prefix,
                                            int rank) const;

  /// Drops every copy `depositor` holds under `prefix` — called when
  /// that rank dies or hangs: memory on a dead node is gone, and memory
  /// on a hung node cannot be trusted.
  void invalidate_depositor(const std::string& prefix, int depositor);

  /// Drops all of a job's images (terminal job, or a reshard that
  /// changes every rank's block shape).
  void erase_prefix(const std::string& prefix);

  std::uint64_t deposits() const;
  std::uint64_t stored_bytes() const;

  /// Test hook: flip one byte of every stored copy for (prefix, rank)
  /// WITHOUT updating the CRC, simulating RAM bit-rot; fetch() must then
  /// reject the copies and recovery must fall back to disk.
  void corrupt_for_test(const std::string& prefix, int rank);

 private:
  mutable std::mutex mu_;
  /// key: prefix, rank, depositor.  Values are immutable once published
  /// (corrupt_for_test excepted); fetch hands out the shared_ptr.
  std::map<std::tuple<std::string, int, int>, std::shared_ptr<ReplicaImage>>
      images_;
  std::uint64_t deposits_ = 0;
};

/// The per-cadence replication exchange, run by every rank of the job
/// right after its checkpoint write (the campaign's yield allreduce has
/// already barriered the cadence): deposit the own image, send it to
/// ring buddy (r+1) % n, and store the image received from ward
/// (r-1+n) % n.  Single-rank worlds only self-deposit.  Traffic is
/// charged to the "replicate" comm phase (stats + wall-clock timer).
/// `ctx` may be null for serial jobs (self-deposit only).
void replicate_checkpoint(comm::Context* ctx, ReplicaStore& store,
                          const std::string& prefix, std::int64_t step,
                          double time_seconds,
                          const std::vector<std::byte>& image);

}  // namespace ca::service
