#include "service/replica.hpp"

#include <algorithm>
#include <climits>
#include <utility>

#include "util/checkpoint.hpp"

namespace ca::service {
namespace {

/// Replication rides the same internal tag space as the collectives.
constexpr int kTagReplicaHeader = comm::kInternalTagBase + 32;
constexpr int kTagReplicaBody = comm::kInternalTagBase + 33;

struct ReplicaWireHeader {
  std::int64_t step = 0;
  double time_seconds = 0.0;
  std::uint64_t bytes = 0;
};
static_assert(sizeof(ReplicaWireHeader) == 24);

}  // namespace

void ReplicaStore::deposit(const std::string& prefix, int rank,
                           int depositor, std::int64_t step,
                           double time_seconds,
                           std::vector<std::byte> bytes) {
  auto img = std::make_shared<ReplicaImage>();
  img->step = step;
  img->time_seconds = time_seconds;
  img->depositor = depositor;
  img->crc = util::crc32(bytes);
  img->bytes = std::move(bytes);
  std::lock_guard<std::mutex> lk(mu_);
  images_[{prefix, rank, depositor}] = std::move(img);
  ++deposits_;
}

std::shared_ptr<const ReplicaImage> ReplicaStore::fetch(
    const std::string& prefix, int rank) const {
  // Restores fetch from every rank at once, so the CRC validation (a
  // full pass over the image) runs OUTSIDE the lock: grab a shared
  // handle to the freshest candidate, verify, and only re-enter the
  // lock for the next one when RAM bit-rot invalidated the copy.
  // Depositors are unique per (prefix, rank) key, so rejection is
  // tracked by depositor.  No image bytes are ever copied.
  std::vector<int> rejected;
  for (;;) {
    std::shared_ptr<const ReplicaImage> candidate;
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (auto it = images_.lower_bound({prefix, rank, INT_MIN});
           it != images_.end() && std::get<0>(it->first) == prefix &&
           std::get<1>(it->first) == rank;
           ++it) {
        const auto& img = it->second;
        if (std::find(rejected.begin(), rejected.end(), img->depositor) !=
            rejected.end())
          continue;  // already failed CRC
        if (candidate == nullptr || img->step > candidate->step)
          candidate = img;
      }
    }
    if (candidate == nullptr) return nullptr;
    if (util::crc32(candidate->bytes) == candidate->crc) return candidate;
    rejected.push_back(candidate->depositor);  // RAM bit rot: next copy
  }
}

void ReplicaStore::invalidate_depositor(const std::string& prefix,
                                        int depositor) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = images_.begin(); it != images_.end();) {
    if (std::get<0>(it->first) == prefix &&
        std::get<2>(it->first) == depositor)
      it = images_.erase(it);
    else
      ++it;
  }
}

void ReplicaStore::erase_prefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = images_.begin(); it != images_.end();) {
    if (std::get<0>(it->first) == prefix)
      it = images_.erase(it);
    else
      ++it;
  }
}

std::uint64_t ReplicaStore::deposits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return deposits_;
}

std::uint64_t ReplicaStore::stored_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t total = 0;
  for (const auto& [key, img] : images_) total += img->bytes.size();
  return total;
}

void ReplicaStore::corrupt_for_test(const std::string& prefix, int rank) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [key, img] : images_) {
    if (std::get<0>(key) != prefix || std::get<1>(key) != rank) continue;
    if (!img->bytes.empty()) img->bytes[0] ^= std::byte{0x01};
  }
}

void replicate_checkpoint(comm::Context* ctx, ReplicaStore& store,
                          const std::string& prefix, std::int64_t step,
                          double time_seconds,
                          const std::vector<std::byte>& image) {
  const int me = ctx != nullptr ? ctx->world_rank() : 0;
  // The node-local self copy: a SURVIVING rank's latest state never has
  // to come back off disk just because a sibling died.
  store.deposit(prefix, me, me, step, time_seconds, image);
  if (ctx == nullptr) return;
  const comm::Communicator& w = ctx->world();
  const int n = w.size();
  if (n < 2) return;
  const int buddy = (me + 1) % n;        // receives my image
  const int ward = (me + n - 1) % n;     // I hold its image
  ctx->stats().set_phase("replicate");
  obs::Span span =
      ctx->tracer().phase_span("replicate", "checkpoint", "replicate");
  const ReplicaWireHeader out{step, time_seconds, image.size()};
  ctx->send(w, buddy, kTagReplicaHeader,
            std::as_bytes(std::span<const ReplicaWireHeader>(&out, 1)));
  ctx->send(w, buddy, kTagReplicaBody, image);
  // Sends are eager (buffered into the buddy's mailbox), so every rank
  // can post both sends before any receive: the ring cannot deadlock.
  ReplicaWireHeader in;
  ctx->recv(w, ward, kTagReplicaHeader,
            std::as_writable_bytes(std::span<ReplicaWireHeader>(&in, 1)));
  std::vector<std::byte> body(in.bytes);
  ctx->recv(w, ward, kTagReplicaBody, body);
  span.finish();
  ctx->stats().set_phase("service");
  store.deposit(prefix, ward, me, in.step, in.time_seconds,
                std::move(body));
}

}  // namespace ca::service
