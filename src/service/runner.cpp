#include "service/runner.hpp"

#include <chrono>
#include <cstddef>
#include <limits>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/error.hpp"
#include "comm/runtime.hpp"
#include "core/ca_core.hpp"
#include "core/campaign.hpp"
#include "core/exchange.hpp"
#include "core/original_core.hpp"
#include "core/serial_core.hpp"
#include "obs/trace.hpp"
#include "physics/held_suarez.hpp"
#include "service/replica.hpp"
#include "util/checkpoint.hpp"
#include "util/timer.hpp"

namespace ca::service {
namespace {

core::CampaignOptions campaign_options(
    const JobSpec& spec, int start_step, double start_time_seconds,
    const std::string& prefix, const physics::HeldSuarezForcing* forcing,
    const std::function<bool()>& should_yield) {
  core::CampaignOptions opt;
  opt.steps = spec.steps;
  opt.start_step = start_step;
  opt.start_time_seconds = start_time_seconds;
  opt.checkpoint_every = spec.checkpoint_every;
  opt.checkpoint_prefix = prefix;
  if (spec.held_suarez) {
    opt.forcing = forcing;
    opt.forcing_dt = spec.forcing_dt;
  }
  if (spec.checkpoint_every > 0) opt.should_yield = should_yield;
  return opt;
}

/// The step/time a resumed attempt actually starts from: the checkpoint
/// header's, not the pool's yield mark.  A failed attempt may have
/// checkpointed PAST the last yield before dying; its files then record a
/// later step than the pool's steps_done, and re-running the gap on top of
/// the later state would silently diverge from the solo run.
struct ResumePoint {
  int step = 0;
  double time_seconds = -1.0;
};

ResumePoint check_resume_step(std::int64_t header_step, int start_step,
                              const JobSpec& spec, double time_seconds) {
  if (header_step < start_step || header_step > spec.steps)
    throw std::runtime_error(
        "checkpoint step " + std::to_string(header_step) +
        " outside the resumable range [" + std::to_string(start_step) +
        ", " + std::to_string(spec.steps) + "] for job '" + spec.name +
        "'");
  return {static_cast<int>(header_step), time_seconds};
}

/// Executes a kCorruptState injection: pokes one owned interior cell of
/// the chosen prognostic field.  Cell (0,0,0) is always inside the
/// region local_diagnostics scans, so the sentinel sees the poison at
/// its next check (<= health.cadence steps later).
void poke_state(state::State& xi, const comm::FaultPlan::StateFault& sf) {
  double v = std::numeric_limits<double>::quiet_NaN();
  if (sf.mode == 1) v = std::numeric_limits<double>::infinity();
  if (sf.mode == 2) v = 1.0e30;  // finite but far past every bound
  switch (sf.field) {
    case 1: xi.v()(0, 0, 0) = v; break;
    case 2: xi.phi()(0, 0, 0) = v; break;
    case 3: xi.psa()(0, 0) = v; break;
    default: xi.u()(0, 0, 0) = v; break;
  }
}

/// Local (unreduced) health verdict on a just-restored state: the static
/// bounds/finiteness check only — growth needs a trajectory, a restore
/// has a single snapshot.  Per-rank: a NaN lives on ONE rank, so callers
/// fold the verdict into their collective source agreement.
bool restore_unhealthy(const core::HealthOptions& health,
                       const ops::OpContext& op_ctx,
                       const state::State& xi) {
  if (!health.enabled()) return false;
  const core::GlobalDiag d = core::local_diagnostics(op_ctx, xi);
  return !core::HealthSentinel::check_static(health, d).empty();
}

}  // namespace

AttemptResult run_attempt(const JobSpec& spec, const AttemptOptions& o) {
  AttemptResult res;
  const int attempt = o.attempt;
  const int start_step = o.start_step;
  const std::string& checkpoint_prefix = o.checkpoint_prefix;
  const std::function<bool()>& should_yield = o.should_yield;
  const std::array<int, 3> dims =
      o.dims == std::array<int, 3>{0, 0, 0} ? spec.dims : o.dims;
  const int nranks = dims[0] * dims[1] * dims[2];

  // Per-attempt plan: same rules, reseeded so the deterministic injector
  // treats retries as a fresh fault environment (transient faults).
  comm::FaultPlan plan(spec.faults.seed() +
                       static_cast<std::uint64_t>(attempt - 1));
  if (spec.faults.enabled())
    for (const auto& rule : spec.faults.rules()) plan.add_rule(rule);
  // Node-resident faults: the spec scopes them to POOL rank ids; only the
  // rules whose node actually backs one of this attempt's ranks apply,
  // remapped to the job-local world rank.  After the pool quarantines the
  // faulty node, the retry's assignment excludes it and the rule drops.
  for (const auto& rule : spec.node_faults) {
    int job_rank = -1;
    if (o.pool_ranks.empty()) {
      job_rank = rule.src;
    } else {
      for (std::size_t i = 0; i < o.pool_ranks.size(); ++i)
        if (o.pool_ranks[i] == rule.src) {
          job_rank = static_cast<int>(i);
          break;
        }
    }
    if (job_rank < 0 || job_rank >= nranks) continue;
    comm::FaultRule r = rule;
    r.src = job_rank;
    plan.add_rule(r);
  }
  // Attempt-scoped rules (corrupt_state defaults to attempt 1) need the
  // plan to know which attempt this is: fixed-step rules are immune to
  // the reseed above, so the scope is what makes them transient.
  plan.set_attempt(attempt);
  const bool inject = plan.enabled();

  util::Timer timer;
  try {
    if (spec.core == CoreKind::kSerial) {
      // Serial attempts have no Context, so the runner owns a tracer
      // directly: same knobs, tid 0, wired to the caller's collector.
      obs::Tracer tracer;
      tracer.configure(o.obs.env_resolved(), 0, nullptr, o.trace_sink,
                       o.trace_pid);
      obs::Span attempt_span = tracer.span("attempt", "service");
      core::SerialCore core(spec.config);
      auto xi = core.make_state();
      ResumePoint resume;
      if (start_step > 0) {
        obs::Span restore_span = tracer.span("restore", "checkpoint");
        util::Timer restore_timer;
        const mesh::LatLonMesh mesh(spec.config.nx, spec.config.ny,
                                    spec.config.nz);
        bool from_ram = false;
        if (o.replicas != nullptr) {
          if (auto img = o.replicas->fetch(checkpoint_prefix, 0)) {
            try {
              const auto hdr = util::parse_checkpoint_image(
                  img->bytes, mesh, core.decomp(), xi, nullptr,
                  "replica of rank 0");
              resume = check_resume_step(hdr.step, start_step, spec,
                                         hdr.time_seconds);
              from_ram = true;
            } catch (const std::exception& e) {
              // Corrupt/mismatched/out-of-range replica: the disk chain
              // below overwrites whatever the failed parse left in xi.
              tracer.instant("ram_restore_fallback", "checkpoint",
                             e.what());
            }
          }
        }
        if (from_ram &&
            restore_unhealthy(o.health, core.op_context(), xi)) {
          // Poisoned replica: never resume from it, and purge the job's
          // whole replica set — every copy records the same poisoned
          // trajectory.  The disk chain below can still rewind past it.
          from_ram = false;
          tracer.instant("ram_restore_unhealthy", "checkpoint",
                         "replica of rank 0 failed the health check");
          o.replicas->erase_prefix(checkpoint_prefix);
        }
        if (!from_ram) {
          const auto chain = util::read_checkpoint_chain(
              util::checkpoint_path(checkpoint_prefix, 0), mesh,
              core.decomp(), xi);
          if (chain.truncated_by_corruption) {
            tracer.instant("checkpoint_chain_fallback", "checkpoint",
                           "chain for job '" + spec.name +
                               "' truncated by corruption at step " +
                               std::to_string(chain.header.step));
            tracer.dump_flight("checkpoint chain truncated by corruption");
          }
          // Poisoned-tip rewind: while the restored snapshot fails the
          // static health check, step the chain back one checkpoint
          // cadence at a time (the delta chain's max_step rewind) until a
          // healthy element is found or the chain runs out.
          std::int64_t tip = chain.header.step;
          double tip_time = chain.header.time_seconds;
          while (restore_unhealthy(o.health, core.op_context(), xi)) {
            const std::int64_t target = tip - spec.checkpoint_every;
            if (spec.checkpoint_every <= 0 || target < start_step ||
                target <= 0)
              throw std::runtime_error(
                  "no healthy checkpoint to resume job '" + spec.name +
                  "': the chain tip at step " + std::to_string(tip) +
                  " and every rewindable element failed the health check");
            tracer.instant("checkpoint_tip_poisoned", "checkpoint",
                           "step " + std::to_string(tip) +
                               " failed the health check; rewinding to " +
                               std::to_string(target));
            const auto rewound = util::read_checkpoint_chain(
                util::checkpoint_path(checkpoint_prefix, 0), mesh,
                core.decomp(), xi, nullptr, {.max_step = target});
            tip = rewound.header.step;
            tip_time = rewound.header.time_seconds;
          }
          resume = check_resume_step(tip, start_step, spec, tip_time);
        }
        core.fill_boundaries(xi);
        res.restored_from =
            from_ram ? RestoreSource::kRam : RestoreSource::kDisk;
        res.restore_seconds = restore_timer.seconds();
      } else {
        core.initialize(xi, spec.initial);
      }
      const physics::HeldSuarezForcing forcing(core.op_context());
      auto opt =
          campaign_options(spec, resume.step, resume.time_seconds,
                           checkpoint_prefix, &forcing, should_yield);
      opt.health = o.health;
      // Session-based writes (delta chains / replication) replace the
      // campaign's plain full-file writer; the session must outlive the
      // campaign loop.
      util::CheckpointSession session(
          util::checkpoint_path(checkpoint_prefix, 0),
          {.chain_cap = o.delta_chain, .block_bytes = o.delta_block_bytes});
      if (o.delta_chain > 0 || o.replicas != nullptr) {
        opt.write_checkpoint =
            [&core, &session, &o, &checkpoint_prefix](
                const mesh::LatLonMesh& m, const state::State& s,
                std::int64_t step, double t,
                std::span<const std::byte> carry, std::uint32_t health) {
              session.write(m, core.decomp(), s, step, t, carry, health);
              if (o.replicas != nullptr)
                replicate_checkpoint(nullptr, *o.replicas,
                                     checkpoint_prefix, step, t,
                                     session.image());
            };
      }
      if (inject) {
        opt.on_step_state = [&plan](int idx, state::State& s) {
          const auto sf =
              plan.state_fault(0, static_cast<std::uint64_t>(idx));
          if (sf.fire) poke_state(s, sf);
        };
        // Serial campaigns have no Context, so the process-level faults
        // (kill/hang) fire through the campaign's step hook instead; the
        // plan's step counter semantics match notify_step's.
        opt.on_step = [&plan](int idx) {
          const auto sf =
              plan.step_fault(0, static_cast<std::uint64_t>(idx));
          if (sf.kill)
            throw comm::RankKilledError(0, static_cast<std::uint64_t>(idx));
          if (sf.hang_ms > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(sf.hang_ms));
        };
      }
      int executed = 0;
      try {
        executed = core::run_campaign(core, nullptr, xi, opt);
      } catch (const comm::CommError& e) {
        // Serial campaigns die through the step hook (injected kills);
        // mirror the rank-thread flight dump the distributed path gets.
        tracer.dump_flight(e.what());
        throw;
      } catch (const core::NumericalError& e) {
        // One flight dump per numeric incident: the recent spans around
        // the blowup are the post-mortem the rollback erases.
        tracer.dump_flight(e.what());
        throw;
      }
      res.end_step = resume.step + executed;
      if (res.end_step == spec.steps)
        res.global = std::move(xi);
      else
        res.yielded = true;
      attempt_span.finish();
      tracer.flush();
    } else {
      comm::RunOptions opts = spec.comm;
      opts.faults = inject ? &plan : nullptr;
      opts.obs = o.obs;
      opts.trace_sink = o.trace_sink;
      opts.trace_pid = o.trace_pid;
      std::mutex mu;
      auto drive = [&](auto& core, comm::Context& ctx) {
        auto xi = core.make_state();
        ResumePoint resume;
        RestoreSource source = RestoreSource::kNone;
        double restore_s = 0.0;
        if (start_step > 0) {
          obs::Span restore_span = ctx.tracer().span("restore", "checkpoint");
          util::Timer restore_timer;
          const mesh::LatLonMesh mesh(spec.config.nx, spec.config.ny,
                                      spec.config.nz);
          std::vector<std::byte> carry;
          const std::string path =
              util::checkpoint_path(checkpoint_prefix, ctx.world_rank());
          // --- RAM replicas first.  Each rank parses its own freshest
          // CRC-valid copy, then the world agrees the set is uniform: a
          // usable RAM restore needs EVERY rank at the SAME step (the
          // survivors' self copies plus the victim's buddy copy).  Any
          // gap, mismatch, or corruption drops the whole world to disk
          // together — never a RAM/disk mix.
          std::int64_t ram_step = -1;
          double ram_time = 0.0;
          if (o.replicas != nullptr) {
            if (auto img =
                    o.replicas->fetch(checkpoint_prefix, ctx.world_rank())) {
              try {
                const auto hdr = util::parse_checkpoint_image(
                    img->bytes, mesh, core.decomp(), xi, &carry,
                    "replica of rank " +
                        std::to_string(ctx.world_rank()));
                if (hdr.step >= start_step && hdr.step <= spec.steps) {
                  ram_step = hdr.step;
                  ram_time = hdr.time_seconds;
                }
              } catch (const std::exception& e) {
                ram_step = -1;
                ctx.tracer().instant("ram_restore_fallback", "checkpoint",
                                     e.what());
              }
            }
            if (ram_step >= 0 &&
                restore_unhealthy(o.health, core.op_context(), xi)) {
              // Poisoned replica: reject it and purge the job's replica
              // set (every copy records the same poisoned trajectory).
              // The agreement below then drops the whole world to disk,
              // where the chain can rewind past the poison.
              ram_step = -1;
              ctx.tracer().instant(
                  "ram_restore_unhealthy", "checkpoint",
                  "replica of rank " + std::to_string(ctx.world_rank()) +
                      " failed the health check");
              o.replicas->erase_prefix(checkpoint_prefix);
            }
            if (ctx.world().size() > 1) {
              const double local[2] = {static_cast<double>(ram_step),
                                       -static_cast<double>(ram_step)};
              double agreed[2] = {local[0], local[1]};
              ctx.stats().set_phase("service");
              comm::allreduce<double>(ctx, ctx.world(),
                                      std::span<const double>(local, 2),
                                      std::span<double>(agreed, 2),
                                      comm::ReduceOp::kMax);
              if (agreed[0] != -agreed[1] || agreed[0] < 0.0)
                ram_step = -1;
            }
          }
          std::int64_t hdr_step = 0;
          double hdr_time = 0.0;
          if (ram_step >= 0) {
            hdr_step = ram_step;
            hdr_time = ram_time;
            source = RestoreSource::kRam;
          } else {
            carry.clear();
            auto chain = util::read_checkpoint_chain(path, mesh,
                                                     core.decomp(), xi,
                                                     &carry);
            hdr_step = chain.header.step;
            hdr_time = chain.header.time_seconds;
            if (chain.truncated_by_corruption) {
              // The chain fell back to its last intact element.  That is
              // a survivable, silent data-loss event — exactly what the
              // flight recorder exists to surface.
              ctx.tracer().instant(
                  "checkpoint_chain_fallback", "checkpoint",
                  "chain for job '" + spec.name +
                      "' truncated by corruption at step " +
                      std::to_string(hdr_step));
              ctx.tracer().dump_flight(
                  "checkpoint chain truncated by corruption");
            }
            if (ctx.world().size() > 1) {
              const double local[2] = {static_cast<double>(hdr_step),
                                       -static_cast<double>(hdr_step)};
              double agreed[2] = {local[0], local[1]};
              ctx.stats().set_phase("service");
              comm::allreduce<double>(ctx, ctx.world(),
                                      std::span<const double>(local, 2),
                                      std::span<double>(agreed, 2),
                                      comm::ReduceOp::kMax);
              const auto min_tip =
                  static_cast<std::int64_t>(-agreed[1]);
              const auto max_tip = static_cast<std::int64_t>(agreed[0]);
              if (min_tip != max_tip) {
                // Mixed tips.  With delta chains this is recoverable:
                // ranks that checkpointed past the minimum rewind their
                // chain to the common step.  The rewind attempt is made
                // on every ahead rank and its success is agreed
                // collectively, so either ALL ranks proceed from min_tip
                // or ALL ranks fail the attempt together (a rank that
                // threw alone would leave its peers hung in the next
                // collective until the heartbeat timeout).
                double fail = 0.0;
                if (hdr_step != min_tip) {
                  try {
                    carry.clear();
                    auto rewound = util::read_checkpoint_chain(
                        path, mesh, core.decomp(), xi, &carry,
                        {.max_step = min_tip});
                    hdr_step = rewound.header.step;
                    hdr_time = rewound.header.time_seconds;
                    if (rewound.truncated_by_corruption) {
                      ctx.tracer().instant(
                          "checkpoint_chain_fallback", "checkpoint",
                          "rewound chain for job '" + spec.name +
                              "' truncated by corruption at step " +
                              std::to_string(hdr_step));
                      ctx.tracer().dump_flight(
                          "checkpoint chain truncated by corruption");
                    }
                  } catch (const std::exception&) {
                    fail = 1.0;
                  }
                }
                double any_fail = 0.0;
                comm::allreduce<double>(
                    ctx, ctx.world(), std::span<const double>(&fail, 1),
                    std::span<double>(&any_fail, 1), comm::ReduceOp::kMax);
                if (any_fail > 0.0)
                  throw std::runtime_error(
                      "inconsistent checkpoint set for job '" + spec.name +
                      "': rank headers record steps " +
                      std::to_string(min_tip) + ".." +
                      std::to_string(max_tip) +
                      "; no common state to resume");
              }
            }
            // Poisoned-tip rewind, collectively agreed: the ranks now
            // hold a uniform-step set, so they run identical iterations
            // of this loop — each round every rank contributes its local
            // health verdict (a NaN lives on ONE rank), and if any is
            // poisoned ALL ranks rewind one checkpoint cadence together.
            // Either all proceed from a healthy common step or all fail
            // the attempt together.
            while (true) {
              double bad = restore_unhealthy(o.health, core.op_context(),
                                             xi)
                               ? 1.0
                               : 0.0;
              double any_bad = bad;
              if (ctx.world().size() > 1) {
                ctx.stats().set_phase("service");
                comm::allreduce<double>(
                    ctx, ctx.world(), std::span<const double>(&bad, 1),
                    std::span<double>(&any_bad, 1), comm::ReduceOp::kMax);
              }
              if (any_bad == 0.0) break;
              const std::int64_t target = hdr_step - spec.checkpoint_every;
              double fail = 0.0;
              if (spec.checkpoint_every <= 0 || target < start_step ||
                  target <= 0) {
                fail = 1.0;
              } else {
                try {
                  carry.clear();
                  const auto rewound = util::read_checkpoint_chain(
                      path, mesh, core.decomp(), xi, &carry,
                      {.max_step = target});
                  hdr_step = rewound.header.step;
                  hdr_time = rewound.header.time_seconds;
                } catch (const std::exception&) {
                  fail = 1.0;
                }
              }
              double any_fail = fail;
              if (ctx.world().size() > 1)
                comm::allreduce<double>(
                    ctx, ctx.world(), std::span<const double>(&fail, 1),
                    std::span<double>(&any_fail, 1), comm::ReduceOp::kMax);
              if (any_fail > 0.0)
                throw std::runtime_error(
                    "no healthy checkpoint to resume job '" + spec.name +
                    "': the chain tip and every rewindable element "
                    "failed the health check");
              ctx.tracer().instant(
                  "checkpoint_tip_poisoned", "checkpoint",
                  "rewound chain for job '" + spec.name + "' to step " +
                      std::to_string(hdr_step) +
                      " past a health-check failure");
            }
            source = RestoreSource::kDisk;
          }
          // Header-step agreement first: the carry is per-rank data tied
          // to the agreed step, so a mixed-step file set fails before any
          // rank restores state from it.
          resume = check_resume_step(hdr_step, start_step, spec,
                                     hdr_time);
          // Cores with cross-step carry state (the CA core) restore it
          // from the checkpoint's CRC-guarded v3 block; a checkpoint
          // without one cannot reproduce the trajectory bitwise, so the
          // attempt fails loudly instead of resuming quietly wrong.
          if constexpr (requires(util::CarryReader& r) {
                          core.restore_carry(r);
                        }) {
            if (carry.empty())
              throw std::runtime_error(
                  "checkpoint for job '" + spec.name +
                  "' has no core-carry block; it was not written by a "
                  "carry-bearing core and cannot resume one bitwise");
            util::CarryReader r(carry);
            core.restore_carry(r);
          }
          if constexpr (requires { core.refresh_halos(xi, "restart"); }) {
            core.refresh_halos(xi, "restart");
          } else {
            throw std::logic_error(
                "resume requested for a core without halo restart");
          }
          restore_s = restore_timer.seconds();
        } else {
          core.initialize(xi, spec.initial);
        }
        const physics::HeldSuarezForcing forcing(core.op_context());
        auto opt =
            campaign_options(spec, resume.step, resume.time_seconds,
                             checkpoint_prefix, &forcing, should_yield);
        opt.health = o.health;
        util::CheckpointSession session(
            util::checkpoint_path(checkpoint_prefix, ctx.world_rank()),
            {.chain_cap = o.delta_chain,
             .block_bytes = o.delta_block_bytes});
        if (o.delta_chain > 0 || o.replicas != nullptr) {
          comm::Context* pctx = &ctx;
          opt.write_checkpoint =
              [&core, &session, &o, &checkpoint_prefix, pctx](
                  const mesh::LatLonMesh& m, const state::State& s,
                  std::int64_t step, double t,
                  std::span<const std::byte> carry, std::uint32_t health) {
                session.write(m, core.decomp(), s, step, t, carry, health);
                if (o.replicas != nullptr)
                  replicate_checkpoint(pctx, *o.replicas,
                                       checkpoint_prefix, step, t,
                                       session.image());
              };
        }
        if (inject) {
          const int my_rank = ctx.world_rank();
          opt.on_step_state = [&plan, my_rank](int idx, state::State& s) {
            const auto sf =
                plan.state_fault(my_rank, static_cast<std::uint64_t>(idx));
            if (sf.fire) poke_state(s, sf);
          };
        }
        const int executed = core::run_campaign(core, &ctx, xi, opt);
        const int end = resume.step + executed;
        const bool completed = end == spec.steps;
        state::State global;
        if (completed) {
          // The CA core defers the last step's final smoothing; apply it
          // before the gather so the result is the finished trajectory.
          if constexpr (requires { core.finalize(xi); }) core.finalize(xi);
          global = core::gather_global(core.op_context(), ctx,
                                       core.topology(), xi);
        }
        std::lock_guard<std::mutex> lock(mu);
        res.comm += ctx.stats().grand_totals();
        if (restore_s > res.restore_seconds) res.restore_seconds = restore_s;
        if (ctx.world_rank() == 0) {
          res.end_step = end;
          res.yielded = !completed;
          if (completed) res.global = std::move(global);
          res.restored_from = source;
        }
      };
      comm::Runtime::run(nranks, opts, [&](comm::Context& ctx) {
        if (spec.core == CoreKind::kOriginal) {
          core::OriginalCore core(spec.config, ctx, spec.scheme, dims);
          drive(core, ctx);
        } else {
          core::CACore core(spec.config, ctx, dims, spec.ca_options);
          drive(core, ctx);
        }
      });
    }
  } catch (const comm::RankKilledError& e) {
    res.error = e.what();
    res.yielded = false;
    res.dead_rank = e.rank;
  } catch (const comm::PeerDeadError& e) {
    // Both the watchdogged survivors and a woken-up hung rank surface
    // PeerDeadError naming the rank that started the collapse.
    res.error = e.what();
    res.yielded = false;
    res.dead_rank = e.rank;
  } catch (const core::NumericalError& e) {
    // Every rank of a distributed run throws this together (the verdict
    // derives from the allreduced diagnostics); the runtime joins them
    // all and rethrows the first, so one catch = one incident.
    res.error = e.what();
    res.yielded = false;
    res.numeric = true;
    res.numeric_step = e.step;
    if (inject)
      plan.counters().detected_numeric.fetch_add(
          1, std::memory_order_relaxed);
  } catch (const std::exception& e) {
    res.error = e.what();
    res.yielded = false;
  }
  res.run_seconds = timer.seconds();
  if (inject) res.faults = plan.summary();
  return res;
}

AttemptResult run_attempt(const JobSpec& spec, int attempt, int start_step,
                          const std::string& checkpoint_prefix,
                          const std::function<bool()>& should_yield) {
  AttemptOptions o;
  o.attempt = attempt;
  o.start_step = start_step;
  o.checkpoint_prefix = checkpoint_prefix;
  o.should_yield = should_yield;
  return run_attempt(spec, o);
}

}  // namespace ca::service
