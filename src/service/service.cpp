#include "service/service.hpp"

#include <chrono>
#include <stdexcept>

namespace ca::service {
namespace {

util::Json fault_json(const comm::FaultSummary& s) {
  util::Json f = util::Json::object();
  f["injected_delay"] = s.injected_delay;
  f["injected_duplicate"] = s.injected_duplicate;
  f["injected_drop"] = s.injected_drop;
  f["injected_corrupt"] = s.injected_corrupt;
  f["injected_stall"] = s.injected_stall;
  f["injected_kill"] = s.injected_kill;
  f["injected_hang"] = s.injected_hang;
  f["injected_state_corrupt"] = s.injected_state_corrupt;
  f["detected_checksum"] = s.detected_checksum;
  f["detected_timeout"] = s.detected_timeout;
  f["detected_peer_dead"] = s.detected_peer_dead;
  f["detected_numeric"] = s.detected_numeric;
  f["recovered_delay"] = s.recovered_delay;
  f["recovered_duplicate"] = s.recovered_duplicate;
  f["recovered_drop"] = s.recovered_drop;
  return f;
}

}  // namespace

EnsembleService::EnsembleService(const ServiceOptions& options)
    : pool_(options), started_at_(std::chrono::steady_clock::now()) {}

EnsembleService::~EnsembleService() { pool_.shutdown(); }

int EnsembleService::submit(const JobSpec& spec, bool block) {
  const std::string problem = validate(spec, pool_.options().rank_budget);
  if (!problem.empty())
    throw std::invalid_argument("job '" + spec.name + "': " + problem);
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lk(jobs_mu_);
    job = std::make_shared<Job>(static_cast<int>(jobs_.size()), spec);
    jobs_.push_back(job);
  }
  if (!pool_.submit(job, block)) {
    // Rejected by backpressure/shutdown; tombstone the reserved id slot
    // (ids are indices, and other submitters may have appended since).
    std::lock_guard<std::mutex> lk(jobs_mu_);
    jobs_[static_cast<std::size_t>(job->id)] = nullptr;
    return -1;
  }
  return job->id;
}

std::shared_ptr<Job> EnsembleService::find(int job_id) const {
  std::lock_guard<std::mutex> lk(jobs_mu_);
  if (job_id < 0 || static_cast<std::size_t>(job_id) >= jobs_.size() ||
      jobs_[static_cast<std::size_t>(job_id)] == nullptr)
    throw std::out_of_range("unknown job id " + std::to_string(job_id));
  return jobs_[static_cast<std::size_t>(job_id)];
}

void EnsembleService::wait(int job_id) { pool_.wait(*find(job_id)); }

void EnsembleService::drain() { pool_.drain(); }

JobResult EnsembleService::result(int job_id) {
  return pool_.snapshot(*find(job_id), /*take_state=*/true);
}

JobState EnsembleService::state(int job_id) const {
  return pool_.state(*find(job_id));
}

util::Json EnsembleService::report() {
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - started_at_)
                          .count();
  std::vector<std::shared_ptr<Job>> jobs;
  {
    std::lock_guard<std::mutex> lk(jobs_mu_);
    for (const auto& j : jobs_)
      if (j != nullptr) jobs.push_back(j);
  }

  util::Json doc = util::Json::object();
  doc["schema"] = kReportSchema;

  util::Json svc = util::Json::object();
  svc["slots"] = pool_.options().slots;
  svc["rank_budget"] = pool_.options().rank_budget;
  svc["queue_capacity"] = static_cast<double>(pool_.options().queue_capacity);
  svc["wall_seconds"] = wall;
  svc["jobs_submitted"] = static_cast<double>(jobs.size());
  std::size_t completed = 0, failed = 0;
  for (const auto& j : jobs) {
    const JobState s = pool_.state(*j);
    completed += s == JobState::kCompleted;
    failed += s == JobState::kFailed;
  }
  svc["jobs_completed"] = static_cast<double>(completed);
  svc["jobs_failed"] = static_cast<double>(failed);
  svc["max_concurrent_jobs"] = pool_.max_concurrent_jobs();
  svc["max_ranks_in_flight"] = pool_.max_ranks_in_flight();
  svc["preemptions"] = static_cast<double>(pool_.preemptions());
  svc["retries"] = static_cast<double>(pool_.retries());
  svc["elastic_shrinks"] = static_cast<double>(pool_.elastic_shrinks());
  svc["elastic_grows"] = static_cast<double>(pool_.elastic_grows());
  svc["rank_seconds_busy"] = pool_.rank_seconds_busy();
  svc["utilization"] =
      wall > 0.0 ? pool_.rank_seconds_busy() /
                       (pool_.options().rank_budget * wall)
                 : 0.0;
  doc["service"] = std::move(svc);

  // The health section (new in v2): per-rank quarantine state plus the
  // recovery counters the rank-failure tests assert on.
  util::Json health = util::Json::object();
  util::Json rank_arr = util::Json::array();
  for (const auto& rh : pool_.rank_health()) {
    util::Json r = util::Json::object();
    r["id"] = rh.id;
    r["status"] = rh.status;
    r["strikes"] = rh.strikes;
    r["quarantines"] = rh.quarantines;
    rank_arr.push_back(std::move(r));
  }
  health["ranks"] = std::move(rank_arr);
  health["jobs_recovered"] = static_cast<double>(pool_.jobs_recovered());
  health["quarantines"] = static_cast<double>(pool_.quarantines());
  health["ranks_retired"] = pool_.ranks_retired();
  health["degraded_rank_seconds"] = pool_.degraded_rank_seconds();
  // Replication counters (new in v3): RAM replica traffic and footprint.
  health["replication_enabled"] = pool_.options().replicate;
  health["replica_deposits"] =
      static_cast<double>(pool_.replicas().deposits());
  health["replica_bytes"] =
      static_cast<double>(pool_.replicas().stored_bytes());
  // Numeric health (new in v5): the sentinel's configuration and the
  // rollback counter the blowup-recovery tests assert on.
  health["sentinel_enabled"] = pool_.options().health.enabled();
  health["sentinel_cadence"] = pool_.options().health.cadence;
  health["numeric_retry"] = pool_.options().numeric_retry;
  health["numeric_rollbacks"] =
      static_cast<double>(pool_.numeric_rollbacks());
  doc["health"] = std::move(health);

  // The metrics snapshot (new in v4): the pool's obs registry, rendered
  // whole so report consumers get every service counter/histogram without
  // a key-by-key schema bump each time one is added.
  doc["metrics"] = pool_.metrics().snapshot();

  util::Json arr = util::Json::array();
  for (const auto& j : jobs) {
    const JobResult r = pool_.snapshot(*j, /*take_state=*/false);
    util::Json e = util::Json::object();
    e["id"] = r.id;
    e["name"] = r.name;
    e["core"] = to_string(j->spec.core);
    util::Json dims = util::Json::array();
    for (int d : j->spec.dims) dims.push_back(d);
    e["dims"] = std::move(dims);
    e["ranks"] = j->spec.ranks();
    // The decomposition the job actually (last) ran with; differs from
    // dims after a degraded-budget reshape.
    util::Json active = util::Json::array();
    for (int d : r.active_dims) active.push_back(d);
    e["active_dims"] = std::move(active);
    e["steps"] = j->spec.steps;
    e["priority"] = j->spec.priority;
    e["state"] = to_string(r.state);
    e["steps_done"] = r.steps_done;
    e["attempts"] = r.metrics.attempts;
    e["preemptions"] = r.metrics.preemptions;
    // Dispatch-order fairness (new in v4): scheduler decisions that
    // overtook this job while it waited — wall-clock-free, so bounds on
    // it hold on any machine speed.
    e["dispatches_overtaken"] =
        static_cast<double>(r.metrics.dispatches_overtaken);
    e["rank_recoveries"] = r.metrics.rank_recoveries;
    // Numeric health (new in v5): sentinel-tripped attempts rolled back
    // to this job's last healthy checkpoint.
    e["numeric_rollbacks"] = r.metrics.numeric_rollbacks;
    // Restore provenance (new in v3): how resumed attempts got their
    // state back, and how long the restores took.
    e["ram_restores"] = r.metrics.ram_restores;
    e["disk_restores"] = r.metrics.disk_restores;
    e["restore_seconds"] = r.metrics.restore_seconds;
    e["queue_wait_seconds"] = r.metrics.queue_wait_seconds;
    e["run_seconds"] = r.metrics.run_seconds;
    e["backoff_seconds"] = r.metrics.backoff_seconds;
    e["steps_per_second"] = r.metrics.steps_per_second;
    e["deadline_seconds"] = j->spec.deadline_seconds;
    e["deadline_missed"] = r.metrics.deadline_missed;
    util::Json comm = util::Json::object();
    comm["messages"] = r.metrics.messages;
    comm["bytes"] = r.metrics.bytes;
    comm["collective_calls"] = r.metrics.collective_calls;
    e["comm"] = std::move(comm);
    e["faults"] = fault_json(r.faults);
    if (!r.error.empty()) e["error"] = r.error;
    arr.push_back(std::move(e));
  }
  doc["jobs"] = std::move(arr);
  return doc;
}

std::string validate_report(const util::Json& doc) {
  if (!doc.is_object()) return "root is not an object";
  const util::Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      (schema->as_string() != kReportSchema &&
       schema->as_string() != kReportSchemaV4 &&
       schema->as_string() != kReportSchemaV3 &&
       schema->as_string() != kReportSchemaV2 &&
       schema->as_string() != kReportSchemaV1))
    return "missing/wrong schema tag";
  // v1 reports predate the health section and the per-job recovery
  // fields, v2 predates the restore-provenance fields, v3 predates the
  // embedded metrics snapshot, and v4 predates the numeric-health
  // fields; each revision only ADDS keys, so requirements are gated per
  // revision.
  const bool v5 = schema->as_string() == kReportSchema;
  const bool v4 = v5 || schema->as_string() == kReportSchemaV4;
  const bool v3 = v4 || schema->as_string() == kReportSchemaV3;
  const bool v2 = v3 || schema->as_string() == kReportSchemaV2;
  const util::Json* svc = doc.find("service");
  if (svc == nullptr || !svc->is_object()) return "missing service object";
  for (const char* key :
       {"slots", "rank_budget", "queue_capacity", "wall_seconds",
        "jobs_submitted", "jobs_completed", "jobs_failed",
        "max_concurrent_jobs", "max_ranks_in_flight", "preemptions",
        "retries", "rank_seconds_busy", "utilization"})
    if (svc->find(key) == nullptr || !svc->find(key)->is_number())
      return std::string("service missing numeric '") + key + "'";
  if (v2) {
    const util::Json* health = doc.find("health");
    if (health == nullptr || !health->is_object())
      return "missing health object";
    for (const char* key : {"jobs_recovered", "quarantines",
                            "ranks_retired", "degraded_rank_seconds"})
      if (health->find(key) == nullptr || !health->find(key)->is_number())
        return std::string("health missing numeric '") + key + "'";
    if (v3)
      for (const char* key : {"replica_deposits", "replica_bytes"})
        if (health->find(key) == nullptr || !health->find(key)->is_number())
          return std::string("health missing numeric '") + key + "'";
    if (v5)
      for (const char* key :
           {"sentinel_cadence", "numeric_retry", "numeric_rollbacks"})
        if (health->find(key) == nullptr || !health->find(key)->is_number())
          return std::string("health missing numeric '") + key + "'";
    const util::Json* ranks = health->find("ranks");
    if (ranks == nullptr || !ranks->is_array())
      return "health missing ranks array";
    for (const auto& r : ranks->items()) {
      if (!r.is_object()) return "health rank entry is not an object";
      if (r.find("id") == nullptr || r.find("status") == nullptr ||
          !r.find("status")->is_string())
        return "health rank entry missing id/status";
      const std::string& st = r.find("status")->as_string();
      if (st != "healthy" && st != "quarantined" && st != "retired")
        return "health rank entry has unknown status '" + st + "'";
    }
  }
  if (v4) {
    const util::Json* metrics = doc.find("metrics");
    if (metrics == nullptr || !metrics->is_object())
      return "missing metrics object";
    for (const char* key : {"counters", "gauges", "histograms"})
      if (metrics->find(key) == nullptr || !metrics->find(key)->is_array())
        return std::string("metrics missing array '") + key + "'";
  }
  const util::Json* jobs = doc.find("jobs");
  if (jobs == nullptr || !jobs->is_array()) return "missing jobs array";
  for (const auto& e : jobs->items()) {
    if (!e.is_object()) return "job entry is not an object";
    for (const char* key : {"id", "name", "core", "state", "steps",
                            "steps_done", "attempts", "preemptions",
                            "queue_wait_seconds", "run_seconds",
                            "steps_per_second"})
      if (e.find(key) == nullptr)
        return std::string("job missing '") + key + "'";
    if (v2)
      for (const char* key : {"rank_recoveries", "active_dims"})
        if (e.find(key) == nullptr)
          return std::string("job missing '") + key + "'";
    if (v3)
      for (const char* key :
           {"ram_restores", "disk_restores", "restore_seconds"})
        if (e.find(key) == nullptr)
          return std::string("job missing '") + key + "'";
    if (v4 && (e.find("dispatches_overtaken") == nullptr ||
               !e.find("dispatches_overtaken")->is_number()))
      return "job missing numeric 'dispatches_overtaken'";
    if (v5 && (e.find("numeric_rollbacks") == nullptr ||
               !e.find("numeric_rollbacks")->is_number()))
      return "job missing numeric 'numeric_rollbacks'";
    const std::string& state = e.find("state")->as_string();
    if (state != "queued" && state != "running" && state != "preempted" &&
        state != "backoff" && state != "completed" && state != "failed")
      return "job has unknown state '" + state + "'";
    if (state == "failed" && e.find("error") == nullptr)
      return "failed job missing 'error'";
    const util::Json* comm = e.find("comm");
    if (comm == nullptr || !comm->is_object())
      return "job missing comm object";
    const util::Json* faults = e.find("faults");
    if (faults == nullptr || !faults->is_object())
      return "job missing faults object";
  }
  return {};
}

}  // namespace ca::service
