// Queue policy of the ensemble service: a bounded priority + FIFO queue.
// Jobs order by (priority desc, submit sequence asc); a job is eligible
// when its backoff gate (ready_at) has passed and its rank demand fits
// the free budget.  Smaller jobs may backfill past a best job that does
// not fit, but only kMaxBypasses times — after that the queue holds
// ranks for it, so backfill cannot starve a wide high-priority job
// (see pop_ready).  The Scheduler is a pure policy object — it owns no
// lock; the WorkerPool serializes every call under its mutex.  Capacity
// bounds only external submissions (backpressure): preempted and
// retrying jobs re-enter past the bound, otherwise a full queue could
// deadlock a yield.
#pragma once

#include <chrono>
#include <cstddef>
#include <memory>
#include <vector>

#include "service/job.hpp"

namespace ca::service {

class Scheduler {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit Scheduler(std::size_t capacity) : capacity_(capacity) {}

  /// Aging (anti-starvation): a queued job's effective priority grows by
  /// `rate` priority points per second spent waiting since it last
  /// entered the queue, so a long-waiting low-priority job eventually
  /// outranks fresh high-priority work.  0 (the default) disables aging
  /// and restores strict (priority, FIFO) order.
  void set_aging_rate(double rate) { aging_rate_ = rate; }
  double aging_rate() const { return aging_rate_; }
  /// spec.priority plus the accumulated aging boost at `now`.
  double effective_priority(const Job& j, TimePoint now) const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }
  /// Whether a NEW submission must wait (backpressure).
  bool full() const { return queue_.size() >= capacity_; }

  /// Enqueues; assigns the FIFO sequence on first entry.  The capacity
  /// bound is advisory (full()): the WorkerPool blocks NEW submissions on
  /// it but re-enters preempted/retrying jobs unconditionally.
  void push(std::shared_ptr<Job> job);

  /// A non-fitting head job tolerates this many backfills before the
  /// scheduler holds ranks for it (see pop_ready).
  static constexpr int kMaxBypasses = 4;

  /// Removes and returns the best ready job (ready_at <= now) that fits
  /// free_ranks; null when none qualifies.  When the BEST ready job does
  /// not fit, smaller lower-precedence jobs may be returned in its place
  /// (backfill keeps the pool busy while preemption frees ranks for it) —
  /// but only kMaxBypasses times: each backfill can steal ranks that
  /// preemption just freed for the head job, so unbounded backfill plus a
  /// steady stream of small jobs would starve it forever.  Once the head
  /// job's bypass budget is spent, pop_ready returns null until it fits,
  /// letting freed ranks accrue to it.
  std::shared_ptr<Job> pop_ready(TimePoint now, int free_ranks);

  /// Best job past its backoff gate regardless of rank fit (what the
  /// pool's preemption logic wants to make room for); null when none.
  const Job* peek_ready(TimePoint now) const;
  /// Mutable peek for the pool's elastic refit: the job stays queued, but
  /// the pool may shrink its active_dims in place so the next pop fits.
  Job* peek_ready(TimePoint now);

  /// Earliest backoff expiry among jobs still gated at `now`
  /// (TimePoint::max() when none are gated) — how long a idle worker may
  /// sleep before a retry becomes eligible.
  TimePoint next_ready_after(TimePoint now) const;

  /// Removes and returns every queued job whose rank demand exceeds
  /// `max_ranks`.  Called when the pool's usable budget shrinks
  /// permanently (a rank retired): the pool reshapes or fails each,
  /// instead of letting it wait forever for capacity that cannot return.
  std::vector<std::shared_ptr<Job>> remove_over_demand(int max_ranks);

 private:
  /// True when a should run before b at `now` (effective priority desc,
  /// FIFO sequence asc).  With aging off this is exactly the static
  /// (priority, sequence) order.
  bool before(const Job& a, const Job& b, TimePoint now) const {
    const double pa = effective_priority(a, now);
    const double pb = effective_priority(b, now);
    if (pa != pb) return pa > pb;
    return a.sequence < b.sequence;
  }

  double aging_rate_ = 0.0;
  std::size_t capacity_;
  std::uint64_t next_sequence_ = 0;
  std::vector<std::shared_ptr<Job>> queue_;  // unordered; scans are tiny
};

}  // namespace ca::service
