#include "service/scheduler.hpp"

#include <algorithm>

namespace ca::service {

double Scheduler::effective_priority(const Job& j, TimePoint now) const {
  if (aging_rate_ <= 0.0) return static_cast<double>(j.spec.priority);
  // The waited span is clamped (the shutdown drain passes
  // TimePoint::max() as `now`): a saturated boost degrades the order to
  // FIFO-by-sequence instead of feeding infinities into the comparison.
  constexpr double kMaxWaitSeconds = 1e6;
  const double waited =
      now == TimePoint::max()
          ? kMaxWaitSeconds
          : std::min(kMaxWaitSeconds,
                     std::chrono::duration<double>(now - j.last_queued_at)
                         .count());
  return static_cast<double>(j.spec.priority) +
         aging_rate_ * std::max(0.0, waited);
}

void Scheduler::push(std::shared_ptr<Job> job) {
  if (job->sequence == 0) job->sequence = ++next_sequence_;
  queue_.push_back(std::move(job));
}

std::shared_ptr<Job> Scheduler::pop_ready(TimePoint now, int free_ranks) {
  const std::size_t none = queue_.size();
  // The head: best ready job regardless of whether it fits.
  std::size_t head = none;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Job& j = *queue_[i];
    if (j.ready_at > now) continue;
    if (head == none || before(j, *queue_[head], now)) head = i;
  }
  std::size_t best = none;
  if (head != none && queue_[head]->ranks() <= free_ranks) {
    best = head;
  } else if (head != none && queue_[head]->bypassed < kMaxBypasses) {
    // Backfill: the best ready job that does fit.  Charged against the
    // head's bypass budget so the ranks preemption frees for the head
    // cannot be grabbed by a stream of small jobs forever.
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const Job& j = *queue_[i];
      if (i == head || j.ready_at > now || j.ranks() > free_ranks)
        continue;
      if (best == none || before(j, *queue_[best], now)) best = i;
    }
    if (best != none) ++queue_[head]->bypassed;
  }
  if (best == none) return nullptr;
  auto job = std::move(queue_[best]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
  job->bypassed = 0;
  return job;
}

const Job* Scheduler::peek_ready(TimePoint now) const {
  const Job* best = nullptr;
  for (const auto& j : queue_) {
    if (j->ready_at > now) continue;
    if (best == nullptr || before(*j, *best, now)) best = j.get();
  }
  return best;
}

Job* Scheduler::peek_ready(TimePoint now) {
  return const_cast<Job*>(
      static_cast<const Scheduler*>(this)->peek_ready(now));
}

std::vector<std::shared_ptr<Job>> Scheduler::remove_over_demand(
    int max_ranks) {
  std::vector<std::shared_ptr<Job>> out;
  auto it = std::partition(
      queue_.begin(), queue_.end(),
      [max_ranks](const std::shared_ptr<Job>& j) {
        return j->ranks() <= max_ranks;
      });
  out.assign(std::make_move_iterator(it),
             std::make_move_iterator(queue_.end()));
  queue_.erase(it, queue_.end());
  return out;
}

Scheduler::TimePoint Scheduler::next_ready_after(TimePoint now) const {
  TimePoint t = TimePoint::max();
  for (const auto& j : queue_)
    if (j->ready_at > now) t = std::min(t, j->ready_at);
  return t;
}

}  // namespace ca::service
