#include "service/scheduler.hpp"

#include <algorithm>

namespace ca::service {

void Scheduler::push(std::shared_ptr<Job> job) {
  if (job->sequence == 0) job->sequence = ++next_sequence_;
  queue_.push_back(std::move(job));
}

std::shared_ptr<Job> Scheduler::pop_ready(TimePoint now, int free_ranks) {
  const std::size_t none = queue_.size();
  // The head: best ready job regardless of whether it fits.
  std::size_t head = none;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Job& j = *queue_[i];
    if (j.ready_at > now) continue;
    if (head == none || before(j, *queue_[head])) head = i;
  }
  std::size_t best = none;
  if (head != none && queue_[head]->spec.ranks() <= free_ranks) {
    best = head;
  } else if (head != none && queue_[head]->bypassed < kMaxBypasses) {
    // Backfill: the best ready job that does fit.  Charged against the
    // head's bypass budget so the ranks preemption frees for the head
    // cannot be grabbed by a stream of small jobs forever.
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const Job& j = *queue_[i];
      if (i == head || j.ready_at > now || j.spec.ranks() > free_ranks)
        continue;
      if (best == none || before(j, *queue_[best])) best = i;
    }
    if (best != none) ++queue_[head]->bypassed;
  }
  if (best == none) return nullptr;
  auto job = std::move(queue_[best]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
  job->bypassed = 0;
  return job;
}

const Job* Scheduler::peek_ready(TimePoint now) const {
  const Job* best = nullptr;
  for (const auto& j : queue_) {
    if (j->ready_at > now) continue;
    if (best == nullptr || before(*j, *best)) best = j.get();
  }
  return best;
}

Scheduler::TimePoint Scheduler::next_ready_after(TimePoint now) const {
  TimePoint t = TimePoint::max();
  for (const auto& j : queue_)
    if (j->ready_at > now) t = std::min(t, j->ready_at);
  return t;
}

}  // namespace ca::service
