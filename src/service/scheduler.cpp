#include "service/scheduler.hpp"

#include <algorithm>

namespace ca::service {

void Scheduler::push(std::shared_ptr<Job> job) {
  if (job->sequence == 0) job->sequence = ++next_sequence_;
  queue_.push_back(std::move(job));
}

std::shared_ptr<Job> Scheduler::pop_ready(TimePoint now, int free_ranks) {
  std::size_t best = queue_.size();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Job& j = *queue_[i];
    if (j.ready_at > now || j.spec.ranks() > free_ranks) continue;
    if (best == queue_.size() || before(j, *queue_[best])) best = i;
  }
  if (best == queue_.size()) return nullptr;
  auto job = std::move(queue_[best]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
  return job;
}

const Job* Scheduler::peek_ready(TimePoint now) const {
  const Job* best = nullptr;
  for (const auto& j : queue_) {
    if (j->ready_at > now) continue;
    if (best == nullptr || before(*j, *best)) best = j.get();
  }
  return best;
}

Scheduler::TimePoint Scheduler::next_ready_after(TimePoint now) const {
  TimePoint t = TimePoint::max();
  for (const auto& j : queue_)
    if (j->ready_at > now) t = std::min(t, j->ready_at);
  return t;
}

}  // namespace ca::service
