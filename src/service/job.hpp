// Job model of the ensemble service: what a simulation request looks
// like (JobSpec), the lifecycle it moves through (JobState), and what the
// service reports back (JobMetrics / JobResult).  Validation happens at
// submit time so malformed requests are rejected before they ever reach a
// worker slot's rank group.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "comm/runtime.hpp"
#include "comm/stats.hpp"
#include "core/dycore_config.hpp"
#include "state/initial.hpp"
#include "state/state.hpp"

namespace ca::service {

enum class CoreKind { kSerial, kOriginal, kCA };

/// One simulation request.  The service copies the spec at submit; later
/// mutation by the caller has no effect on the queued job.
struct JobSpec {
  std::string name = "job";
  CoreKind core = CoreKind::kSerial;
  core::DycoreConfig config;
  /// Decomposition scheme (original core only; CA is always Y-Z).
  core::DecompScheme scheme = core::DecompScheme::kYZ;
  /// Algorithm switches of the CA core (CA jobs only).  Jobs that must
  /// stay bitwise across a degraded-pool reshard or elastic
  /// shrink/re-grow should clear fresh_c_on_block_face — paper mode's
  /// block-face collectives make the trajectory decomposition-dependent
  /// (same error class as the approximate iteration).  Exact mode is
  /// bitwise invariant to the y split; a reshard that changes pz still
  /// regroups the z-collective partial sums and lands in the same
  /// round-off class as the original core's cross-shape resume (1e-8).
  core::CAOptions ca_options{};
  /// Process grid {px, py, pz}; its product is the job's rank demand on
  /// the pool.  Must be {1,1,1} for the serial core.
  std::array<int, 3> dims{1, 1, 1};
  /// Target absolute step count.
  int steps = 1;
  state::InitialOptions initial;
  /// Apply Held-Suarez forcing after every step (forcing_dt <= 0 uses the
  /// core's dt_advect).
  bool held_suarez = false;
  double forcing_dt = 0.0;

  /// Larger runs first; FIFO within a priority level.
  int priority = 0;
  /// Soft wall-clock deadline from submit [s] (0 = none).  Purely an SLO
  /// marker: the report flags jobs that finished late.
  double deadline_seconds = 0.0;

  /// Checkpoint cadence in steps; > 0 makes the job preemptible (it can
  /// yield its ranks at checkpoint boundaries and resume later).  All
  /// three cores support this: the CA core's cross-step carry state
  /// (deferred smoothing, stale C products, step counter) travels in the
  /// checkpoint's v3 core-carry block, so a resumed CA run is bitwise
  /// identical to an uninterrupted one.
  int checkpoint_every = 0;

  /// Fault-injection plan for this job's rank group (enabled() drives
  /// injection).  Every attempt reseeds the plan with seed + attempt - 1:
  /// the deterministic injector would otherwise replay the identical
  /// fault on every retry, which models a hard fault — with reseeding an
  /// injected fault is transient and a retry can succeed.
  comm::FaultPlan faults;
  /// Node-resident process faults (kKillRank / kHangRank rules) whose
  /// `src` is a POOL rank id, not a job rank: the fault lives on the
  /// node, so after the pool quarantines that rank and reassigns the job
  /// to healthy ranks, the rule no longer applies and the retry can
  /// succeed.  (A kill/hang rule in `faults` above would instead follow
  /// the job to every assignment — a job-resident fault.)  The runner
  /// remaps these to job-local ranks per attempt via the pool assignment.
  std::vector<comm::FaultRule> node_faults;
  /// Attempt budget (>= 1).  A failed attempt is retried with exponential
  /// backoff until the budget is exhausted, then the job ends kFailed
  /// with the accumulated FaultSummary.  Rank-death recoveries do NOT
  /// burn attempts (they are the pool's fault, not the job's); they are
  /// bounded separately by the pool's recovery cap.
  int max_attempts = 1;
  /// Base backoff before attempt n+1 [s]; doubles per retry.
  double retry_backoff_seconds = 0.0;

  /// Bounded-wait knobs of the job's rank group (comm.faults is ignored;
  /// the plan above travels separately).  Fault-injected jobs should keep
  /// recv_timeout short: after one rank dies of a detected fault, the
  /// surviving ranks take a full timeout to unwind.
  comm::RunOptions comm;

  int ranks() const { return dims[0] * dims[1] * dims[2]; }
};

/// Lifecycle: kQueued -> kRunning -> kCompleted | kFailed, with kRunning
/// -> kPreempted -> kRunning loops (checkpoint yield) and kRunning ->
/// kBackoff -> kRunning loops (failed attempt awaiting retry).
enum class JobState {
  kQueued,
  kRunning,
  kPreempted,
  kBackoff,
  kCompleted,
  kFailed,
};

const char* to_string(JobState s);
const char* to_string(CoreKind k);

/// Per-job service metrics (all attempts accumulated).
struct JobMetrics {
  double queue_wait_seconds = 0.0;  ///< total time spent waiting in queue
  double run_seconds = 0.0;         ///< total time on a worker slot
  double backoff_seconds = 0.0;     ///< scheduled retry backoff
  double steps_per_second = 0.0;    ///< steps executed / run_seconds
  std::uint64_t messages = 0;       ///< p2p messages, summed over ranks
  std::uint64_t bytes = 0;
  std::uint64_t collective_calls = 0;
  int attempts = 0;
  int preemptions = 0;
  /// Scheduler dispatches of OTHER jobs that happened while this job sat
  /// queued (summed over all of its queue residencies).  A wall-clock-free
  /// fairness measure: aging bounds how many times a low-priority job can
  /// be overtaken, regardless of how slow the machine is.
  std::uint64_t dispatches_overtaken = 0;
  /// Attempts abandoned to a dead/hung rank and re-queued onto healthy
  /// ranks (checkpoint recovery; not counted against max_attempts).
  int rank_recoveries = 0;
  /// Attempts the health sentinel aborted (core::NumericalError) and the
  /// pool rolled back to the last healthy checkpoint.  Charged against
  /// the pool's service.numeric_retry budget, NOT against max_attempts —
  /// a blowup is the trajectory's fault, not the infrastructure's.
  int numeric_rollbacks = 0;
  /// Resumes served from in-memory buddy replicas (no checkpoint file
  /// was read) vs. from the on-disk checkpoint chain.
  int ram_restores = 0;
  int disk_restores = 0;
  /// Total wall-clock spent restoring state across all resumed attempts
  /// (max over ranks per attempt) — the recovery latency replication cuts.
  double restore_seconds = 0.0;
  bool deadline_missed = false;
};

/// Terminal snapshot of a job, returned by EnsembleService::result().
struct JobResult {
  int id = -1;
  std::string name;
  JobState state = JobState::kQueued;
  int steps_done = 0;
  /// Decomposition of the job's last/next attempt; == the spec's dims
  /// unless the pool reshaped the job for a degraded rank budget.
  std::array<int, 3> active_dims{1, 1, 1};
  JobMetrics metrics;
  comm::FaultSummary faults;
  std::string error;  ///< terminal failure message (kFailed only)
  /// Gathered full-domain final state (kCompleted only) — what tests and
  /// the bench compare bitwise against a solo run.
  state::State final_state;
  /// True when an EARLIER state-taking snapshot already moved the final
  /// state out: final_state above is then default-constructed (empty),
  /// and comparing against it would be a silent bug.  Callers that want
  /// the state must check this instead of trusting kCompleted alone.
  bool state_already_taken = false;
};

/// Checks a spec against the pool's rank budget; returns an empty string
/// when valid, otherwise a description of the first problem.  Mirrors the
/// cores' constructor preconditions so bad jobs are rejected at submit,
/// not by an exception inside a worker's rank group.
std::string validate(const JobSpec& spec, int rank_budget);

/// Internal job record shared by scheduler, worker pool, and service.
/// Mutable fields are guarded by the owning WorkerPool's mutex, except
/// yield_requested which workers' rank groups poll lock-free.
struct Job {
  Job(int id, JobSpec s) : id(id), spec(std::move(s)), active_dims(spec.dims) {}

  const int id;
  const JobSpec spec;

  /// Preemption flag: set by the pool, polled (and collectively agreed
  /// on) by the job's campaign at checkpoint boundaries.
  std::atomic<bool> yield_requested{false};

  // --- guarded by the pool mutex ---
  JobState state = JobState::kQueued;
  std::uint64_t sequence = 0;  ///< FIFO order within a priority level
  /// Times a smaller job was popped past this one while it headed the
  /// ready queue without fitting; Scheduler::kMaxBypasses bounds it so
  /// backfill cannot starve the job (reset every time it is popped).
  int bypassed = 0;
  std::chrono::steady_clock::time_point submitted_at{};
  std::chrono::steady_clock::time_point last_queued_at{};
  /// Pool dispatch counter value at this job's latest queue entry; the
  /// pop site accrues metrics.dispatches_overtaken from the difference.
  std::uint64_t dispatch_mark = 0;
  std::chrono::steady_clock::time_point ready_at{};  ///< backoff gate
  int steps_done = 0;       ///< last checkpointed absolute step
  /// Decomposition the NEXT attempt runs with.  Starts as spec.dims;
  /// shrinks when the pool re-factorizes the job for a permanently
  /// degraded rank budget or an elastic squeeze under queue pressure,
  /// and re-grows toward spec.dims when budget returns (distributed
  /// cores only — the CA carry reshards geometrically; serial jobs are
  /// always {1,1,1}).
  std::array<int, 3> active_dims;
  /// Non-zero when the on-disk checkpoint set still has the PREVIOUS
  /// decomposition's shape and must be resharded before the next attempt.
  std::array<int, 3> reshard_from{0, 0, 0};
  /// Pool rank ids backing the current attempt, job world-rank order.
  std::vector<int> assigned_ranks;
  /// Current rank demand (product of active_dims).
  int ranks() const {
    return active_dims[0] * active_dims[1] * active_dims[2];
  }
  JobMetrics metrics;
  comm::FaultSummary faults;
  std::string error;
  state::State final_state;
  /// final_state has been moved out by a take_state snapshot; the member
  /// above is now default-constructed and must not be handed out again.
  bool final_state_taken = false;
  std::string checkpoint_prefix;
};

}  // namespace ca::service
