// EnsembleService: the front door of the multi-run scheduler.  Callers
// submit JobSpecs (validated here), the WorkerPool multiplexes them over
// the shared rank budget, and the service keeps the full job ledger it
// exports as a versioned JSON report ("ca-agcm/service-report/v5") with
// per-job metrics (queue wait, run seconds, steps/sec, comm traffic,
// retries, preemptions, rank recoveries, fault summary), service-level
// utilization, a `health` section covering per-rank quarantine state and
// the capacity lost to faults, and an embedded `metrics` snapshot of the
// pool's obs::MetricsRegistry.  Earlier revisions (v1..v3) still validate
// for consumers replaying archived output.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "service/job.hpp"
#include "service/worker_pool.hpp"
#include "util/json.hpp"

namespace ca::service {

inline constexpr const char* kReportSchema = "ca-agcm/service-report/v5";
/// Previous schema revisions; validate_report still accepts all of them.
/// v4 lacks the numeric-health fields (the health section's
/// numeric_rollbacks / numeric_retry and the per-job numeric_rollbacks);
/// v3 additionally lacks the embedded `metrics` snapshot (the pool's obs
/// registry) and the per-job dispatches_overtaken counter; v2
/// additionally lacks the per-job restore provenance fields
/// (ram_restores / disk_restores / restore_seconds) and the health
/// section's replication counters; v1 additionally lacks the health
/// section and the per-job rank-recovery fields.
inline constexpr const char* kReportSchemaV4 = "ca-agcm/service-report/v4";
inline constexpr const char* kReportSchemaV3 = "ca-agcm/service-report/v3";
inline constexpr const char* kReportSchemaV2 = "ca-agcm/service-report/v2";
inline constexpr const char* kReportSchemaV1 = "ca-agcm/service-report/v1";

using ServiceOptions = PoolOptions;

class EnsembleService {
 public:
  explicit EnsembleService(const ServiceOptions& options);
  ~EnsembleService();  // drains and stops the pool

  const ServiceOptions& options() const { return pool_.options(); }

  /// Validates and enqueues; returns the job id (>= 0).  Throws
  /// std::invalid_argument with the validation message for a bad spec.
  /// Blocks while the queue is full when `block` (backpressure);
  /// otherwise returns -1 immediately on a full queue.
  int submit(const JobSpec& spec, bool block = true);

  /// Blocks until the job is terminal (kCompleted/kFailed).
  void wait(int job_id);
  /// Blocks until every submitted job is terminal.
  void drain();

  /// Terminal (or in-flight) snapshot of one job.  The final state is
  /// MOVED out on the first call for a completed job (it can be large);
  /// later calls return the metrics with an empty state.
  JobResult result(int job_id);
  /// Current lifecycle state (callable any time).
  JobState state(int job_id) const;

  /// Builds the service report over every job submitted so far.
  util::Json report();

  // Pool counters, surfaced for tests/benches.
  int max_concurrent_jobs() const { return pool_.max_concurrent_jobs(); }
  std::uint64_t preemptions() const { return pool_.preemptions(); }
  std::uint64_t retries() const { return pool_.retries(); }
  std::uint64_t elastic_shrinks() const { return pool_.elastic_shrinks(); }
  std::uint64_t elastic_grows() const { return pool_.elastic_grows(); }
  std::uint64_t jobs_recovered() const { return pool_.jobs_recovered(); }
  std::uint64_t quarantines() const { return pool_.quarantines(); }
  int ranks_retired() const { return pool_.ranks_retired(); }
  std::vector<RankHealthInfo> rank_health() const {
    return pool_.rank_health();
  }

 private:
  std::shared_ptr<Job> find(int job_id) const;

  WorkerPool pool_;
  mutable std::mutex jobs_mu_;
  std::vector<std::shared_ptr<Job>> jobs_;  // index == job id
  std::chrono::steady_clock::time_point started_at_;
};

/// Schema check of a service report; returns a description of the first
/// problem, or empty when the document conforms to the v2 schema (or the
/// legacy v1 schema, whose reports lack the health section).  Used by the
/// bench's self-check and tests.
std::string validate_report(const util::Json& doc);

}  // namespace ca::service
