#include "comm/context.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "comm/error.hpp"
#include "comm/fault.hpp"
#include "comm/runtime.hpp"

namespace ca::comm {
namespace {

// Internal protocol tags (>= kInternalTagBase, never visible to users).
constexpr int kTagSplitUp = kInternalTagBase + 1;
constexpr int kTagSplitDown = kInternalTagBase + 2;

}  // namespace

Context::Context(World* world, int world_rank)
    : world_(world), world_rank_(world_rank) {
  std::vector<int> all(static_cast<std::size_t>(world->size()));
  std::iota(all.begin(), all.end(), 0);
  world_comm_ = Communicator(/*id=*/0, std::move(all), world_rank);
  const RunOptions& opts = world_->options();
  tracer_.configure(opts.obs, world_rank_, &timers_, opts.trace_sink,
                    opts.trace_pid);
  // The mailbox's defensive half (retransmit requests, checksum failures,
  // watchdog verdicts) reports incidents through this rank's tracer; all
  // of those paths run on this rank's own thread.
  world_->mailbox(world_rank_).set_tracer(&tracer_);
}

Context::~Context() {
  world_->mailbox(world_rank_).set_tracer(nullptr);
  tracer_.flush();
}

int Context::world_size() const { return world_->size(); }

Mailbox& Context::mailbox_of(int world_rank) {
  return world_->mailbox(world_rank);
}

void Context::send(const Communicator& comm, int dst, int tag,
                   std::span<const std::byte> data) {
  if (dst < 0 || dst >= comm.size())
    throw std::out_of_range("send: destination rank out of range");
  const int dst_world = comm.world_rank_of(dst);
  Message msg;
  msg.comm_id = comm.id();
  msg.src = world_rank_;
  msg.tag = tag;
  msg.payload.assign(data.begin(), data.end());
  stats_.record_send(data.size());
  if (world_->options().heartbeat_timeout.count() > 0)
    world_->health().stamp(world_rank_);

  FaultPlan* plan = world_->fault_plan();
  if (plan == nullptr || !plan->enabled()) {
    mailbox_of(dst_world).deliver(std::move(msg));
    return;
  }

  // Fault layer active: stamp sequence + checksum, then let the plan
  // decide what happens to this message on the "wire".
  msg.seq = ++send_seq_[{dst_world, msg.comm_id, tag}];
  msg.checksum = payload_checksum(msg.payload);
  FaultPlan::Injection inj =
      plan->decide(stats_.phase(), world_rank_, dst_world, tag, msg.seq);
  if (inj.corrupt_bytes > 0 && !msg.payload.empty()) {
    // Flip bytes at seed-determined positions AFTER the checksum was
    // computed, so verification at the receiver fails.
    std::uint64_t pos = msg.seq * 0x9e3779b97f4a7c15ull + plan->seed();
    for (int b = 0; b < inj.corrupt_bytes; ++b) {
      pos = pos * 6364136223846793005ull + 1442695040888963407ull;
      msg.payload[pos % msg.payload.size()] ^= std::byte{0xFF};
    }
  }
  if (inj.any())
    mailbox_of(dst_world).deliver(std::move(msg), inj);
  else
    mailbox_of(dst_world).deliver(std::move(msg));
}

void Context::notify_step() {
  const std::uint64_t step = step_count_++;
  if (world_->options().heartbeat_timeout.count() > 0) {
    world_->health().stamp(world_rank_);
    tracer_.instant("heartbeat", "comm");
  }
  FaultPlan* plan = world_->fault_plan();
  if (plan == nullptr || !plan->enabled()) return;
  const int polls = plan->stall_polls(world_rank_, step);
  if (polls > 0)
    std::this_thread::sleep_for(world_->options().poll_interval * polls);
  const FaultPlan::StepFault sf = plan->step_fault(world_rank_, step);
  if (sf.kill) {
    // Poison the run before unwinding so peers blocked on this rank fail
    // within heartbeat_timeout instead of the receive deadline.
    world_->health().mark_dead(world_rank_);
    throw RankKilledError(world_rank_, step);
  }
  if (sf.hang_ms > 0) {
    // A hang deliberately skips the heartbeat stamp: the rank goes silent
    // for the window and the peers' watchdog decides whether it is dead.
    std::this_thread::sleep_for(std::chrono::milliseconds(sf.hang_ms));
  }
}

void Context::recv(const Communicator& comm, int src, int tag,
                   std::span<std::byte> data) {
  int world_src =
      (src == kAnySource) ? kAnySource : comm.world_rank_of(src);
  Message msg = mailbox_of(world_rank_).receive(comm.id(), world_src, tag);
  if (msg.payload.size() != data.size())
    throw std::runtime_error("recv: message size mismatch");
  std::memcpy(data.data(), msg.payload.data(), data.size());
}

Request Context::isend(const Communicator& comm, int dst, int tag,
                       std::span<const std::byte> data) {
  // Eager protocol: the send buffer is copied immediately, so the request
  // is already complete.
  send(comm, dst, tag, data);
  return Request{};
}

Request Context::irecv(const Communicator& comm, int src, int tag,
                       std::span<std::byte> data) {
  Request req;
  req.comm_id_ = comm.id();
  req.src_ = (src == kAnySource) ? kAnySource : comm.world_rank_of(src);
  req.tag_ = tag;
  req.recv_buffer_ = data;
  req.done_ = false;
  return req;
}

void Context::wait(Request& req) {
  if (req.done_) return;
  Message msg =
      mailbox_of(world_rank_).receive(req.comm_id_, req.src_, req.tag_);
  if (msg.payload.size() != req.recv_buffer_.size())
    throw std::runtime_error("wait: message size mismatch");
  std::memcpy(req.recv_buffer_.data(), msg.payload.data(),
              msg.payload.size());
  req.done_ = true;
}

bool Context::test(Request& req) {
  if (req.done_) return true;
  std::optional<Message> msg =
      mailbox_of(world_rank_).try_receive(req.comm_id_, req.src_, req.tag_);
  if (!msg.has_value()) return false;
  if (msg->payload.size() != req.recv_buffer_.size())
    throw std::runtime_error("test: message size mismatch");
  std::memcpy(req.recv_buffer_.data(), msg->payload.data(),
              msg->payload.size());
  req.done_ = true;
  return true;
}

void Context::waitall(std::span<Request> reqs) {
  for (auto& r : reqs) wait(r);
}

Communicator Context::split(const Communicator& parent, int color, int key) {
  struct Entry {
    int color, key, parent_rank;
  };
  const int p = parent.size();
  const int me = parent.rank();

  // Gather (color, key) at parent rank 0 which computes all subgroups,
  // allocates ids, and scatters each member's result.
  std::array<int, 2> mine{color, key};
  if (me != 0) {
    send_values<int>(parent, 0, kTagSplitUp, mine);
    // Receive: [comm_id_lo, comm_id_hi, my_rank, n, world_ranks...]
    std::array<std::uint64_t, 1> id_buf{};
    recv_values<std::uint64_t>(parent, 0, kTagSplitDown, id_buf);
    std::array<int, 2> head{};
    recv_values<int>(parent, 0, kTagSplitDown, head);
    if (head[1] == 0) return Communicator{};
    std::vector<int> group(static_cast<std::size_t>(head[1]));
    recv_values<int>(parent, 0, kTagSplitDown, group);
    return Communicator(id_buf[0], std::move(group), head[0]);
  }

  std::vector<Entry> entries(static_cast<std::size_t>(p));
  entries[0] = {color, key, 0};
  for (int r = 1; r < p; ++r) {
    std::array<int, 2> buf{};
    recv_values<int>(parent, r, kTagSplitUp, buf);
    entries[static_cast<std::size_t>(r)] = {buf[0], buf[1], r};
  }

  // Distinct non-negative colors, ascending.
  std::vector<int> colors;
  for (const auto& e : entries)
    if (e.color >= 0) colors.push_back(e.color);
  std::sort(colors.begin(), colors.end());
  colors.erase(std::unique(colors.begin(), colors.end()), colors.end());

  std::uint64_t base = 0;
  if (!colors.empty())
    base = world_->allocate_comm_ids(colors.size());

  // For each member compute (id, group, rank) and deliver.
  Communicator my_result;
  for (int r = 0; r < p; ++r) {
    const Entry& e = entries[static_cast<std::size_t>(r)];
    std::uint64_t id = 0;
    std::vector<int> group;
    int rank_in_group = -1;
    if (e.color >= 0) {
      auto cit = std::lower_bound(colors.begin(), colors.end(), e.color);
      id = base + static_cast<std::uint64_t>(cit - colors.begin());
      std::vector<Entry> members;
      for (const auto& m : entries)
        if (m.color == e.color) members.push_back(m);
      std::stable_sort(members.begin(), members.end(),
                       [](const Entry& a, const Entry& b) {
                         return std::tie(a.key, a.parent_rank) <
                                std::tie(b.key, b.parent_rank);
                       });
      for (std::size_t g = 0; g < members.size(); ++g) {
        group.push_back(parent.world_rank_of(members[g].parent_rank));
        if (members[g].parent_rank == r)
          rank_in_group = static_cast<int>(g);
      }
    }
    if (r == 0) {
      my_result = group.empty()
                      ? Communicator{}
                      : Communicator(id, std::move(group), rank_in_group);
    } else {
      std::array<std::uint64_t, 1> id_buf{id};
      send_values<std::uint64_t>(parent, r, kTagSplitDown, id_buf);
      std::array<int, 2> head{rank_in_group, static_cast<int>(group.size())};
      send_values<int>(parent, r, kTagSplitDown, head);
      if (!group.empty())
        send_values<int>(parent, r, kTagSplitDown,
                         std::span<const int>(group));
    }
  }
  return my_result;
}

}  // namespace ca::comm
