// Per-rank mailbox: an unbounded MPSC queue with (comm, src, tag) matching.
// Senders deliver complete messages (eager protocol); receivers block on a
// condition variable until a matching message exists.  FIFO order is
// preserved per (comm, src, tag) triple, which gives the non-overtaking
// guarantee MPI point-to-point requires.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "comm/message.hpp"

namespace ca::comm {

class Mailbox {
 public:
  void deliver(Message msg);

  /// Blocks until a message matching (comm_id, src, tag) is available and
  /// removes it.  src may be kAnySource; tag may be kAnyTag.
  Message receive(std::uint64_t comm_id, int src, int tag);

  /// Non-blocking probe-and-take.
  std::optional<Message> try_receive(std::uint64_t comm_id, int src, int tag);

  /// Number of queued messages (for tests / leak checks).
  std::size_t pending() const;

 private:
  std::optional<Message> match_locked(std::uint64_t comm_id, int src, int tag);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace ca::comm
