// Per-rank mailbox: an unbounded MPSC queue with (comm, src, tag) matching.
// Senders deliver complete messages (eager protocol); receivers block on a
// condition variable until a matching message exists.  FIFO order is
// preserved per (comm, src, tag) triple, which gives the non-overtaking
// guarantee MPI point-to-point requires.
//
// Every blocking receive is bounded: after RunOptions::recv_timeout the
// wait raises TimeoutError instead of spinning forever.  When a FaultPlan
// is active the mailbox also implements the defensive half of the fault
// model: delayed entries become visible after N receive polls, withheld
// ("dropped") entries are retransmitted when the receiver's poll loop asks
// for them, duplicate entries are suppressed via sequence numbers, and
// matched payloads are checksum-verified (ChecksumError on mismatch).
// Entries that are delayed or withheld block later messages of the same
// (comm, src, tag) triple so the non-overtaking guarantee survives
// injection.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <tuple>

#include "comm/fault.hpp"
#include "comm/message.hpp"

namespace ca::obs {
class Tracer;
}

namespace ca::comm {

struct RunOptions;
class HealthBoard;

class Mailbox {
 public:
  /// Installs the run-wide receive options, fault counters, and the
  /// liveness board (with this mailbox's own rank); called by World before
  /// any rank thread starts.  Unconfigured mailboxes use the default
  /// RunOptions and run without a watchdog.
  void configure(const RunOptions* options, FaultCounters* counters,
                 HealthBoard* health = nullptr, int self_rank = -1);

  /// Observability hook: the owning rank's tracer, which receives instant
  /// events for the defensive paths (retransmit requests, checksum
  /// failures, watchdog verdicts).  All of those run on the owner thread,
  /// matching the tracer's threading contract.  Null disables reporting.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  void deliver(Message msg);

  /// Fault-aware delivery: applies the sender-side injection decision
  /// (withhold, duplicate, delay, corrupt-already-applied) to the entry.
  void deliver(Message msg, const FaultPlan::Injection& injection);

  /// Blocks until a message matching (comm_id, src, tag) is available and
  /// removes it.  src may be kAnySource; tag may be kAnyTag.  Raises
  /// TimeoutError after the configured deadline and ChecksumError if the
  /// matched payload fails verification.
  Message receive(std::uint64_t comm_id, int src, int tag);

  /// Non-blocking probe-and-take.  Under an active FaultPlan the probe
  /// doubles as one receive poll (ages delays, requests retransmission of
  /// withheld entries) and verifies the checksum of a matched payload.
  std::optional<Message> try_receive(std::uint64_t comm_id, int src, int tag);

  /// Number of queued messages (for tests / leak checks).
  std::size_t pending() const;

 private:
  struct Entry {
    Message msg;
    int delay_polls = 0;   // visible once this reaches 0
    bool withheld = false; // "dropped": needs retransmission to appear
  };
  using TripleKey = std::tuple<std::uint64_t, int, int>;

  std::optional<Message> match_locked(std::uint64_t comm_id, int src,
                                      int tag);
  /// One receive poll: ages delayed entries and (if retries are enabled)
  /// retransmits withheld entries matching the pending request.
  void poll_locked(std::uint64_t comm_id, int src, int tag);
  /// Checksum verification of a matched message.
  void verify(const Message& msg) const;

  const RunOptions* options_ = nullptr;  // null = defaults
  FaultCounters* counters_ = nullptr;
  HealthBoard* health_ = nullptr;  // null = no watchdog
  obs::Tracer* tracer_ = nullptr;  // null = no incident reporting
  int self_rank_ = -1;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Entry> queue_;
  /// Highest sequence number taken per triple (duplicate suppression).
  std::map<TripleKey, std::uint64_t> taken_seq_;
};

}  // namespace ca::comm
