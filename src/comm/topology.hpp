// 3-D Cartesian process topology over a communicator, with the axis line
// sub-communicators the dynamical core needs (x lines for Fourier
// filtering, z lines for the vertical summation operator C).
//
// Rank layout is x-fastest: rank = cx + cy*px + cz*px*py, matching the
// mesh storage order.
#pragma once

#include <array>

#include "comm/context.hpp"

namespace ca::comm {

struct CartTopology {
  Communicator comm;               ///< all ranks of the grid
  std::array<int, 3> dims{};       ///< {px, py, pz}
  std::array<bool, 3> periodic{};  ///< wraparound per axis
  std::array<int, 3> coords{};     ///< this rank's coordinates

  /// Line communicators: all ranks sharing the other two coordinates.
  Communicator line_x, line_y, line_z;

  /// Rank holding coordinates (cx, cy, cz); applies periodic wrap where
  /// enabled, returns -1 if the coordinate falls outside a non-periodic
  /// axis.
  int rank_of(int cx, int cy, int cz) const;

  /// Neighbor rank displaced by (dx, dy, dz) from this rank (or -1).
  int neighbor(int dx, int dy, int dz) const {
    return rank_of(coords[0] + dx, coords[1] + dy, coords[2] + dz);
  }
};

/// Collective over `comm` (which must have exactly px*py*pz ranks).
CartTopology make_cart(Context& ctx, const Communicator& comm,
                       std::array<int, 3> dims, std::array<bool, 3> periodic);

/// Factors p into {px, py, pz} with px fixed (e.g. 1 for Y-Z decomposition)
/// choosing py >= pz as balanced as possible with py <= max_py, pz <= max_pz.
std::array<int, 3> balanced_dims_yz(int p, int max_py, int max_pz);

/// Factors p into {px, py, 1} for X-Y decomposition.
std::array<int, 3> balanced_dims_xy(int p, int max_px, int max_py);

}  // namespace ca::comm
