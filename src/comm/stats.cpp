#include "comm/stats.hpp"

namespace ca::comm {

void CommStats::enter_collective() { ++collective_depth_; }

void CommStats::leave_collective() {
  if (collective_depth_ > 0) --collective_depth_;
}

void CommStats::record_send(std::size_t bytes) {
  PhaseStats& s = stats_[phase_];
  if (in_collective()) {
    s.collective_bytes += bytes;
  } else {
    ++s.p2p_messages;
    s.p2p_bytes += bytes;
  }
}

void CommStats::record_collective_call() {
  ++stats_[phase_].collective_calls;
}

PhaseStats CommStats::phase_totals(const std::string& phase) const {
  auto it = stats_.find(phase);
  return it == stats_.end() ? PhaseStats{} : it->second;
}

PhaseStats CommStats::grand_totals() const {
  PhaseStats total;
  for (const auto& [name, s] : stats_) total += s;
  return total;
}

void CommStats::clear() { stats_.clear(); }

}  // namespace ca::comm
