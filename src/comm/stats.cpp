#include "comm/stats.hpp"

namespace ca::comm {

std::uint64_t FaultSummary::injected_total() const {
  return injected_delay + injected_duplicate + injected_drop +
         injected_corrupt + injected_stall + injected_kill + injected_hang +
         injected_state_corrupt;
}

std::uint64_t FaultSummary::detected_total() const {
  return detected_checksum + detected_timeout + detected_peer_dead +
         detected_numeric;
}

std::uint64_t FaultSummary::recovered_total() const {
  return recovered_delay + recovered_duplicate + recovered_drop;
}

void CommStats::enter_collective() { ++collective_depth_; }

void CommStats::leave_collective() {
  if (collective_depth_ > 0) --collective_depth_;
}

void CommStats::record_send(std::size_t bytes) {
  PhaseStats& s = stats_[phase_];
  if (in_collective()) {
    s.collective_bytes += bytes;
  } else {
    ++s.p2p_messages;
    s.p2p_bytes += bytes;
  }
}

void CommStats::record_collective_call() {
  ++stats_[phase_].collective_calls;
}

void CommStats::record_pool_acquire(bool grew) {
  if (grew)
    ++pool_.allocations;
  else
    ++pool_.reuses;
}

PhaseStats CommStats::phase_totals(const std::string& phase) const {
  auto it = stats_.find(phase);
  return it == stats_.end() ? PhaseStats{} : it->second;
}

PhaseStats CommStats::grand_totals() const {
  PhaseStats total;
  for (const auto& [name, s] : stats_) total += s;
  return total;
}

void CommStats::clear() {
  stats_.clear();
  pool_ = PoolStats{};
}

}  // namespace ca::comm
