// Wire format of the mini message-passing runtime: an eagerly buffered
// message carrying its communicator id, source (world rank), and tag.
// When the fault-injection layer is active, messages additionally carry a
// per-(sender, comm, tag) sequence number (duplicate suppression and
// in-order retransmission) and an FNV-1a payload checksum (corruption
// detection); both stay zero on the fault-free fast path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ca::comm {

/// Matches any source rank in recv.
inline constexpr int kAnySource = -1;
/// Matches any tag in recv.
inline constexpr int kAnyTag = -1;

/// Tags at or above this value are reserved for internal protocols
/// (collectives, communicator construction).
inline constexpr int kInternalTagBase = 1 << 28;

struct Message {
  std::uint64_t comm_id = 0;
  int src = -1;  // world rank of the sender
  int tag = 0;
  /// 1-based per (src, dst, comm, tag) sequence; 0 = fault layer inactive.
  std::uint64_t seq = 0;
  /// FNV-1a of the payload at send time; 0 = not computed.
  std::uint64_t checksum = 0;
  std::vector<std::byte> payload;
};

/// FNV-1a 64-bit over the payload bytes (never returns 0 so a stored 0
/// can mean "no checksum").
inline std::uint64_t payload_checksum(std::span<const std::byte> data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h == 0 ? 1 : h;
}

}  // namespace ca::comm
