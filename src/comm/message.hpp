// Wire format of the mini message-passing runtime: an eagerly buffered
// message carrying its communicator id, source (world rank), and tag.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ca::comm {

/// Matches any source rank in recv.
inline constexpr int kAnySource = -1;
/// Matches any tag in recv.
inline constexpr int kAnyTag = -1;

/// Tags at or above this value are reserved for internal protocols
/// (collectives, communicator construction).
inline constexpr int kInternalTagBase = 1 << 28;

struct Message {
  std::uint64_t comm_id = 0;
  int src = -1;  // world rank of the sender
  int tag = 0;
  std::vector<std::byte> payload;
};

}  // namespace ca::comm
