// Per-rank handle of the mini message-passing runtime: point-to-point
// messaging (blocking and nonblocking), communicator management, and
// traffic statistics.  One Context exists per logical rank and is only
// touched from that rank's thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <tuple>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/mailbox.hpp"
#include "comm/stats.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace ca::comm {

class World;

/// Handle to an in-flight nonblocking operation.  Sends complete eagerly;
/// receives complete at wait().
class Request {
 public:
  Request() = default;

  bool is_recv() const { return recv_buffer_.data() != nullptr; }

 private:
  friend class Context;
  std::uint64_t comm_id_ = 0;
  int src_ = kAnySource;
  int tag_ = kAnyTag;
  std::span<std::byte> recv_buffer_{};
  bool done_ = true;
};

class Context {
 public:
  Context(World* world, int world_rank);
  ~Context();
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  int world_rank() const { return world_rank_; }
  int world_size() const;

  /// Communicator containing every rank, in world order.
  const Communicator& world() const { return world_comm_; }

  // --- point-to-point -----------------------------------------------------
  /// Eager buffered send: copies the payload into dst's mailbox; never
  /// blocks on the receiver.
  void send(const Communicator& comm, int dst, int tag,
            std::span<const std::byte> data);
  /// Blocking receive into `data`; the matched payload size must equal
  /// data.size().
  void recv(const Communicator& comm, int src, int tag,
            std::span<std::byte> data);

  Request isend(const Communicator& comm, int dst, int tag,
                std::span<const std::byte> data);
  Request irecv(const Communicator& comm, int src, int tag,
                std::span<std::byte> data);
  void wait(Request& req);
  /// Nonblocking completion probe: true when the request is done (a
  /// matching message was consumed into the receive buffer, or the
  /// request was already complete).  Under an active FaultPlan each call
  /// is one receive poll, so a pure test() loop still ages delayed
  /// messages and triggers drop retransmission.
  bool test(Request& req);
  void waitall(std::span<Request> reqs);

  // Typed convenience overloads.
  template <typename T>
  void send_values(const Communicator& comm, int dst, int tag,
                   std::span<const T> values) {
    send(comm, dst, tag, std::as_bytes(values));
  }
  template <typename T>
  void recv_values(const Communicator& comm, int src, int tag,
                   std::span<T> values) {
    recv(comm, src, tag, std::as_writable_bytes(values));
  }
  template <typename T>
  Request isend_values(const Communicator& comm, int dst, int tag,
                       std::span<const T> values) {
    return isend(comm, dst, tag, std::as_bytes(values));
  }
  template <typename T>
  Request irecv_values(const Communicator& comm, int src, int tag,
                       std::span<T> values) {
    return irecv(comm, src, tag, std::as_writable_bytes(values));
  }

  // --- communicator management --------------------------------------------
  /// Collective over `parent`: all members call with their (color, key);
  /// returns the sub-communicator of members sharing this rank's color,
  /// ordered by (key, parent rank).  color < 0 yields an invalid
  /// communicator (the rank opts out) but the call is still collective.
  Communicator split(const Communicator& parent, int color, int key);

  CommStats& stats() { return stats_; }
  const CommStats& stats() const { return stats_; }

  /// Wall-clock phase attribution of this rank's communication: the halo
  /// exchange engine and the collectives charge their real elapsed time
  /// here ("exchange" / "collective"), which the wall-clock bench reads
  /// alongside the message counters.
  util::PhaseTimers& timers() { return timers_; }
  const util::PhaseTimers& timers() const { return timers_; }

  /// This rank's observability tracer: spans for the phase/step timeline,
  /// instants for comm incidents, and the flight-recorder ring dumped on
  /// rank death.  Configured from RunOptions::obs; phase_span() feeds
  /// timers() so bench phase totals and traces share one clock.
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }

  /// Step boundary hook for the fault-injection layer (cores call this
  /// once per time step): a kStall fault scheduled for (rank, step) puts
  /// this rank to sleep for the injected number of poll intervals, a
  /// kKillRank fault throws RankKilledError (the rank never responds
  /// again), and a kHangRank fault sleeps the configured window without
  /// stamping the heartbeat.  Also stamps this rank's liveness when the
  /// watchdog is enabled.  A fault no-op without an active FaultPlan.
  void notify_step();

 private:
  Mailbox& mailbox_of(int world_rank);

  World* world_ = nullptr;
  int world_rank_ = -1;
  Communicator world_comm_;
  CommStats stats_;
  util::PhaseTimers timers_;
  obs::Tracer tracer_;
  /// Next sequence number per (dst world rank, comm, tag); only used (and
  /// only grows) while a FaultPlan is active.
  std::map<std::tuple<int, std::uint64_t, int>, std::uint64_t> send_seq_;
  std::uint64_t step_count_ = 0;
};

}  // namespace ca::comm
