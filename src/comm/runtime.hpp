// SPMD launcher: Runtime::run(p, fn) executes fn(Context&) on p logical
// ranks, each backed by a std::thread with its own mailbox.  Exceptions
// thrown by any rank are captured and the first one is rethrown after all
// ranks have been joined.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "comm/mailbox.hpp"

namespace ca::comm {

class Context;

/// Shared state of one SPMD execution.
class World {
 public:
  explicit World(int nranks);

  int size() const { return static_cast<int>(mailboxes_.size()); }
  Mailbox& mailbox(int rank) { return *mailboxes_[rank]; }

  /// Allocates `count` consecutive communicator ids; returns the first.
  std::uint64_t allocate_comm_ids(std::uint64_t count);

 private:
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<std::uint64_t> next_comm_id_{1};  // 0 = world communicator
};

class Runtime {
 public:
  /// Runs fn on nranks logical ranks and blocks until all finish.
  static void run(int nranks, const std::function<void(Context&)>& fn);
};

}  // namespace ca::comm
