// SPMD launcher: Runtime::run(p, fn) executes fn(Context&) on p logical
// ranks, each backed by a std::thread with its own mailbox.  Exceptions
// thrown by any rank are captured and the first one is rethrown after all
// ranks have been joined.
//
// The RunOptions overload threads a FaultPlan and the bounded-wait
// parameters (receive timeout, poll interval, retry budget) through every
// mailbox of the run; the default overload runs fault-free with the
// default (generous but finite) timeout.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "comm/health.hpp"
#include "comm/mailbox.hpp"
#include "obs/trace.hpp"

namespace ca::util {
class Config;
}

namespace ca::comm {

class Context;
class FaultPlan;

/// Run-wide communication knobs.  Defaults keep the fault-free fast path:
/// no injection, no per-message bookkeeping, one bounded wait per recv.
struct RunOptions {
  /// Fault-injection plan (not owned); null disables injection entirely.
  FaultPlan* faults = nullptr;
  /// Deadline of every blocking receive; beyond it TimeoutError is raised.
  std::chrono::milliseconds recv_timeout{120000};
  /// Receive poll period while a FaultPlan is active (delay aging and
  /// retransmission run on this cadence; also the unit of kStall sleeps).
  std::chrono::microseconds poll_interval{200};
  /// Retransmissions a receiver may request for a withheld ("dropped")
  /// message; 0 turns drop recovery off so drops surface as timeouts.
  int max_resends = 1;
  /// Heartbeat watchdog: a blocked receive fails with PeerDeadError once a
  /// peer's liveness stamp is older than this.  0 (the default) disables
  /// the watchdog and keeps the fault-free single-wait receive path.
  /// Must exceed the longest communication-free compute span of the run,
  /// or healthy-but-busy ranks get flagged.
  std::chrono::milliseconds heartbeat_timeout{0};
  /// Observability knobs for every rank of the run (tracing ring, flight
  /// dumps).  World applies CA_AGCM_OBS_* env overrides on top, so even
  /// call sites passing RunOptions{} honour an operator's obs.trace=1.
  obs::TraceOptions obs{};
  /// Merged-trace sink (not owned); rank rings flush here when obs.trace
  /// is on.  trace_pid labels this run's timeline (the service passes the
  /// job id; standalone runs keep 0).
  obs::TraceCollector* trace_sink = nullptr;
  int trace_pid = 0;

  /// Reads comm.timeout_ms / comm.poll_us / comm.max_resends /
  /// comm.heartbeat_timeout plus the obs.* block (the fault plan itself
  /// comes from FaultPlan::from_config).
  static RunOptions from_config(const util::Config& cfg);
};

/// Shared state of one SPMD execution.
class World {
 public:
  explicit World(int nranks, const RunOptions& options = {});

  int size() const { return static_cast<int>(mailboxes_.size()); }
  Mailbox& mailbox(int rank) { return *mailboxes_[rank]; }
  const RunOptions& options() const { return options_; }
  FaultPlan* fault_plan() const { return options_.faults; }
  HealthBoard& health() { return health_; }

  /// Allocates `count` consecutive communicator ids; returns the first.
  std::uint64_t allocate_comm_ids(std::uint64_t count);

 private:
  RunOptions options_;
  /// Declared before the mailboxes: configure() hands each mailbox a
  /// pointer into this board.
  HealthBoard health_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<std::uint64_t> next_comm_id_{1};  // 0 = world communicator
};

class Runtime {
 public:
  /// Runs fn on nranks logical ranks and blocks until all finish.
  static void run(int nranks, const std::function<void(Context&)>& fn);
  /// As above with explicit communication options (fault plan, timeouts).
  static void run(int nranks, const RunOptions& options,
                  const std::function<void(Context&)>& fn);
};

}  // namespace ca::comm
