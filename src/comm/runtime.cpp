#include "comm/runtime.hpp"

#include <atomic>
#include <cassert>
#include <exception>
#include <mutex>
#include <thread>

#include "comm/context.hpp"
#include "comm/error.hpp"
#include "comm/fault.hpp"
#include "util/config.hpp"

namespace ca::comm {

RunOptions RunOptions::from_config(const util::Config& cfg) {
  RunOptions opts;
  opts.recv_timeout = std::chrono::milliseconds(
      cfg.get_long("comm.timeout_ms", 120000));
  opts.poll_interval =
      std::chrono::microseconds(cfg.get_long("comm.poll_us", 200));
  opts.max_resends = cfg.get_int("comm.max_resends", 1);
  opts.heartbeat_timeout =
      std::chrono::milliseconds(cfg.get_long("comm.heartbeat_timeout", 0));
  opts.obs = obs::TraceOptions::from_config(cfg);
  return opts;
}

World::World(int nranks, const RunOptions& options)
    : options_(options), health_(nranks) {
  assert(nranks > 0);
  // Resolve the observability env overrides once per run so every rank's
  // tracer (and the flight-dump decision on the unwind path) agrees.
  options_.obs = options_.obs.env_resolved();
  FaultCounters* counters =
      options_.faults != nullptr ? &options_.faults->counters() : nullptr;
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    mailboxes_.back()->configure(&options_, counters, &health_, r);
  }
}

std::uint64_t World::allocate_comm_ids(std::uint64_t count) {
  return next_comm_id_.fetch_add(count, std::memory_order_relaxed);
}

void Runtime::run(int nranks, const std::function<void(Context&)>& fn) {
  run(nranks, RunOptions{}, fn);
}

void Runtime::run(int nranks, const RunOptions& options,
                  const std::function<void(Context&)>& fn) {
  World world(nranks, options);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&world, &fn, r, &first_error, &error_mutex] {
      // The Context outlives the try so the unwind path can reach this
      // rank's flight recorder; its destructor flushes the trace ring.
      Context ctx(&world, r);
      try {
        fn(ctx);
        world.health().mark_finished(r);
      } catch (...) {
        // Poison the run before recording the error: peers blocked on this
        // rank must unwind via PeerDeadError, not wait out their deadline.
        world.health().mark_dead(r);
        // Comm-family failures (peer death, checksum, timeout, injected
        // kill) dump the rank's last events as a postmortem.
        try {
          throw;
        } catch (const CommError& e) {
          ctx.tracer().dump_flight(e.what());
        } catch (...) {
        }
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ca::comm
