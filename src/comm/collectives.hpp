// Collective operations over a Communicator, implemented on top of the
// point-to-point layer with the classic algorithms of Thakur, Rabenseifner
// & Gropp (the paper's reference [19] for "optimal" collectives):
//   - barrier: dissemination
//   - bcast: binomial tree
//   - reduce: binomial tree
//   - allreduce: ring (reduce-scatter + allgather) for long vectors,
//     recursive doubling for short ones, plus a linear-ordered variant that
//     reduces contributions in rank order (bitwise deterministic, used by
//     equivalence tests)
//   - allgather: ring
//   - alltoall: pairwise exchange
//   - exscan: linear chain prefix
//
// All calls are collective and must be entered by every member of the
// communicator in the same program order (SPMD discipline); the FIFO
// matching of the mailbox then keeps concurrent collectives separated.
#pragma once

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "comm/context.hpp"

namespace ca::comm {

enum class ReduceOp { kSum, kMax, kMin };

enum class AllreduceAlgorithm {
  kAuto,
  kRing,
  kRecursiveDoubling,
  kLinearOrdered,
  /// Rabenseifner: recursive-halving reduce-scatter + recursive-doubling
  /// allgather — log2(p) rounds AND the ring's bandwidth optimality.
  /// Power-of-two communicators only; others fall back to kRing.
  kRabenseifner,
};

namespace detail {

constexpr int kTagBarrier = kInternalTagBase + 16;
constexpr int kTagBcast = kInternalTagBase + 17;
constexpr int kTagReduce = kInternalTagBase + 18;
constexpr int kTagAllreduce = kInternalTagBase + 19;
constexpr int kTagAllgather = kInternalTagBase + 20;
constexpr int kTagAlltoall = kInternalTagBase + 21;
constexpr int kTagExscan = kInternalTagBase + 22;
constexpr int kTagGather = kInternalTagBase + 23;

template <typename T>
void apply_op(std::span<T> acc, std::span<const T> in, ReduceOp op) {
  const std::size_t n = acc.size();
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < n; ++i) acc[i] += in[i];
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < n; ++i) acc[i] = std::max(acc[i], in[i]);
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < n; ++i) acc[i] = std::min(acc[i], in[i]);
      break;
  }
}

/// RAII marker: traffic inside a collective is attributed separately, and
/// the outermost collective charges its wall-clock time to the context's
/// "collective" phase via an obs span — one clock pair feeds both the
/// bench's phase totals and the trace timeline (nested collectives, e.g.
/// the bcast inside the linear-ordered allreduce, must not double-charge).
class CollectiveScope {
 public:
  explicit CollectiveScope(Context& ctx)
      : ctx_(ctx), outermost_(!ctx.stats().in_collective()) {
    ctx_.stats().record_collective_call();
    ctx_.stats().enter_collective();
    if (outermost_)
      span_ = ctx_.tracer().phase_span("collective", "comm", "collective");
  }
  ~CollectiveScope() { ctx_.stats().leave_collective(); }
  CollectiveScope(const CollectiveScope&) = delete;
  CollectiveScope& operator=(const CollectiveScope&) = delete;

 private:
  Context& ctx_;
  bool outermost_;
  obs::Span span_;
};

}  // namespace detail

void barrier(Context& ctx, const Communicator& comm);

template <typename T>
void bcast(Context& ctx, const Communicator& comm, int root,
           std::span<T> data) {
  detail::CollectiveScope scope(ctx);
  const int p = comm.size();
  if (p == 1) return;
  // Binomial tree rooted at `root`: relative rank vr = (rank - root) mod p.
  const int me = comm.rank();
  const int vr = (me - root % p + p) % p;
  int mask = 1;
  while (mask < p) {
    if (vr < mask) {
      const int child = vr + mask;
      if (child < p)
        ctx.send_values<T>(comm, (child + root) % p, detail::kTagBcast,
                           std::span<const T>(data.data(), data.size()));
    } else if (vr < 2 * mask) {
      const int parent = vr - mask;
      ctx.recv_values<T>(comm, (parent + root) % p, detail::kTagBcast, data);
    }
    mask <<= 1;
  }
}

template <typename T>
void reduce(Context& ctx, const Communicator& comm, int root,
            std::span<const T> in, std::span<T> out, ReduceOp op) {
  detail::CollectiveScope scope(ctx);
  const int p = comm.size();
  const int me = comm.rank();
  std::vector<T> acc(in.begin(), in.end());
  if (p > 1) {
    // Binomial tree: children fold into parents by descending mask.
    const int vr = (me - root % p + p) % p;
    int mask = 1;
    while (mask < p) mask <<= 1;
    std::vector<T> tmp(in.size());
    for (mask >>= 1; mask >= 1; mask >>= 1) {
      if (vr < mask) {
        const int child = vr + mask;
        if (child < p) {
          ctx.recv_values<T>(comm, (child + root) % p, detail::kTagReduce,
                             std::span<T>(tmp));
          detail::apply_op<T>(acc, tmp, op);
        }
      } else if (vr < 2 * mask) {
        const int parent = vr - mask;
        ctx.send_values<T>(comm, (parent + root) % p, detail::kTagReduce,
                           std::span<const T>(acc));
        break;
      }
    }
  }
  if (me == root) std::copy(acc.begin(), acc.end(), out.begin());
}

template <typename T>
void allreduce(Context& ctx, const Communicator& comm, std::span<const T> in,
               std::span<T> out, ReduceOp op,
               AllreduceAlgorithm alg = AllreduceAlgorithm::kAuto) {
  const int p = comm.size();
  const std::size_t n = in.size();
  if (p == 1) {
    std::copy(in.begin(), in.end(), out.begin());
    return;
  }
  if (alg == AllreduceAlgorithm::kAuto) {
    // Ring amortizes bandwidth for long vectors; recursive doubling has
    // fewer rounds for short ones (Thakur et al. crossover heuristic).
    alg = (n >= static_cast<std::size_t>(4 * p))
              ? AllreduceAlgorithm::kRing
              : AllreduceAlgorithm::kRecursiveDoubling;
  }

  detail::CollectiveScope scope(ctx);
  const int me = comm.rank();

  if (alg == AllreduceAlgorithm::kLinearOrdered) {
    // Gather to rank 0, reduce in rank order (bitwise deterministic),
    // broadcast the result.
    if (me == 0) {
      std::vector<T> acc(in.begin(), in.end());
      std::vector<T> tmp(n);
      for (int r = 1; r < p; ++r) {
        ctx.recv_values<T>(comm, r, detail::kTagAllreduce, std::span<T>(tmp));
        detail::apply_op<T>(acc, std::span<const T>(tmp), op);
      }
      std::copy(acc.begin(), acc.end(), out.begin());
    } else {
      ctx.send_values<T>(comm, 0, detail::kTagAllreduce, in);
    }
    bcast<T>(ctx, comm, 0, out);
    return;
  }

  if (alg == AllreduceAlgorithm::kRecursiveDoubling || n == 0) {
    std::vector<T> acc(in.begin(), in.end());
    std::vector<T> tmp(n);
    // Fold ranks beyond the largest power of two into the lower half.
    int pof2 = 1;
    while (pof2 * 2 <= p) pof2 *= 2;
    const int rem = p - pof2;
    int newrank;
    if (me < 2 * rem) {
      if (me % 2 == 1) {
        ctx.recv_values<T>(comm, me - 1, detail::kTagAllreduce,
                           std::span<T>(tmp));
        detail::apply_op<T>(std::span<T>(acc), std::span<const T>(tmp), op);
        newrank = me / 2;
      } else {
        ctx.send_values<T>(comm, me + 1, detail::kTagAllreduce,
                           std::span<const T>(acc));
        newrank = -1;
      }
    } else {
      newrank = me - rem;
    }
    if (newrank >= 0) {
      auto old_of_new = [&](int nr) {
        return nr < rem ? 2 * nr + 1 : nr + rem;
      };
      for (int mask = 1; mask < pof2; mask <<= 1) {
        const int partner = old_of_new(newrank ^ mask);
        ctx.send_values<T>(comm, partner, detail::kTagAllreduce,
                           std::span<const T>(acc));
        ctx.recv_values<T>(comm, partner, detail::kTagAllreduce,
                           std::span<T>(tmp));
        detail::apply_op<T>(std::span<T>(acc), std::span<const T>(tmp), op);
      }
    }
    // Unfold: odd low ranks return results to their even partners.
    if (me < 2 * rem) {
      if (me % 2 == 1) {
        ctx.send_values<T>(comm, me - 1, detail::kTagAllreduce,
                           std::span<const T>(acc));
      } else {
        ctx.recv_values<T>(comm, me + 1, detail::kTagAllreduce,
                           std::span<T>(acc));
      }
    }
    std::copy(acc.begin(), acc.end(), out.begin());
    return;
  }

  if (alg == AllreduceAlgorithm::kRabenseifner &&
      (p & (p - 1)) == 0 && n >= static_cast<std::size_t>(p)) {
    // Recursive-halving reduce-scatter: each round exchanges half of the
    // currently-owned segment with the partner and reduces the retained
    // half; then the mirrored recursive-doubling allgather reassembles.
    std::vector<T> acc(in.begin(), in.end());
    std::vector<T> tmp(n);
    // Segment ownership expressed on the contiguous block partition.
    std::vector<std::size_t> offset(static_cast<std::size_t>(p) + 1, 0);
    for (int ss = 0; ss < p; ++ss)
      offset[static_cast<std::size_t>(ss) + 1] =
          offset[static_cast<std::size_t>(ss)] +
          n / static_cast<std::size_t>(p) +
          (static_cast<std::size_t>(ss) <
                   n % static_cast<std::size_t>(p)
               ? 1
               : 0);
    int lo = 0, hi = p;  // block range this rank still owns
    for (int mask = p / 2; mask >= 1; mask /= 2) {
      const int partner = me ^ mask;
      int keep_lo, keep_hi, send_lo, send_hi;
      const int mid = lo + (hi - lo) / 2;
      if ((me & mask) == 0) {
        keep_lo = lo; keep_hi = mid; send_lo = mid; send_hi = hi;
      } else {
        keep_lo = mid; keep_hi = hi; send_lo = lo; send_hi = mid;
      }
      const std::size_t s0 = offset[static_cast<std::size_t>(send_lo)];
      const std::size_t s1 = offset[static_cast<std::size_t>(send_hi)];
      const std::size_t k0 = offset[static_cast<std::size_t>(keep_lo)];
      const std::size_t k1 = offset[static_cast<std::size_t>(keep_hi)];
      ctx.send_values<T>(comm, partner, detail::kTagAllreduce,
                         std::span<const T>(acc.data() + s0, s1 - s0));
      ctx.recv_values<T>(comm, partner, detail::kTagAllreduce,
                         std::span<T>(tmp.data() + k0, k1 - k0));
      detail::apply_op<T>(std::span<T>(acc.data() + k0, k1 - k0),
                          std::span<const T>(tmp.data() + k0, k1 - k0),
                          op);
      lo = keep_lo;
      hi = keep_hi;
    }
    // Allgather: mirror the halving in reverse.
    for (int mask = 1; mask < p; mask *= 2) {
      const int partner = me ^ mask;
      // The partner owns the sibling block range at this level.
      const int span = hi - lo;
      int plo, phi_;
      if ((me & mask) == 0) {
        plo = lo + span;
        phi_ = hi + span;
      } else {
        plo = lo - span;
        phi_ = hi - span;
      }
      const std::size_t m0 = offset[static_cast<std::size_t>(lo)];
      const std::size_t m1 = offset[static_cast<std::size_t>(hi)];
      const std::size_t q0 = offset[static_cast<std::size_t>(plo)];
      const std::size_t q1 = offset[static_cast<std::size_t>(phi_)];
      ctx.send_values<T>(comm, partner, detail::kTagAllreduce,
                         std::span<const T>(acc.data() + m0, m1 - m0));
      ctx.recv_values<T>(comm, partner, detail::kTagAllreduce,
                         std::span<T>(acc.data() + q0, q1 - q0));
      lo = std::min(lo, plo);
      hi = std::max(hi, phi_);
    }
    std::copy(acc.begin(), acc.end(), out.begin());
    return;
  }

  // Ring allreduce: reduce-scatter then allgather, p-1 steps each (also
  // the fallback for non-power-of-two Rabenseifner requests).
  std::vector<T> acc(in.begin(), in.end());
  std::vector<std::size_t> offset(static_cast<std::size_t>(p) + 1, 0);
  for (int s = 0; s < p; ++s)
    offset[static_cast<std::size_t>(s) + 1] =
        offset[static_cast<std::size_t>(s)] +
        n / static_cast<std::size_t>(p) +
        (static_cast<std::size_t>(s) < n % static_cast<std::size_t>(p) ? 1
                                                                       : 0);
  auto seg = [&](std::vector<T>& v, int s) {
    const int sm = (s % p + p) % p;
    return std::span<T>(v.data() + offset[static_cast<std::size_t>(sm)],
                        offset[static_cast<std::size_t>(sm) + 1] -
                            offset[static_cast<std::size_t>(sm)]);
  };
  const int right = (me + 1) % p;
  const int left = (me - 1 + p) % p;
  std::vector<T> tmp(n / static_cast<std::size_t>(p) + 1);
  for (int step = 0; step < p - 1; ++step) {
    auto send_seg = seg(acc, me - step);
    auto recv_seg = seg(acc, me - step - 1);
    ctx.send_values<T>(comm, right, detail::kTagAllreduce,
                       std::span<const T>(send_seg.data(), send_seg.size()));
    std::span<T> tview(tmp.data(), recv_seg.size());
    ctx.recv_values<T>(comm, left, detail::kTagAllreduce, tview);
    detail::apply_op<T>(recv_seg, std::span<const T>(tview.data(),
                                                     tview.size()),
                        op);
  }
  for (int step = 0; step < p - 1; ++step) {
    auto send_seg = seg(acc, me + 1 - step);
    auto recv_seg = seg(acc, me - step);
    ctx.send_values<T>(comm, right, detail::kTagAllreduce,
                       std::span<const T>(send_seg.data(), send_seg.size()));
    ctx.recv_values<T>(comm, left, detail::kTagAllreduce, recv_seg);
  }
  std::copy(acc.begin(), acc.end(), out.begin());
}

/// Each rank contributes in.size() elements; out receives p*in.size()
/// elements ordered by rank (ring algorithm).
template <typename T>
void allgather(Context& ctx, const Communicator& comm, std::span<const T> in,
               std::span<T> out) {
  detail::CollectiveScope scope(ctx);
  const int p = comm.size();
  const int me = comm.rank();
  const std::size_t n = in.size();
  std::copy(in.begin(), in.end(),
            out.begin() + static_cast<std::ptrdiff_t>(n) * me);
  if (p == 1) return;
  const int right = (me + 1) % p;
  const int left = (me - 1 + p) % p;
  for (int step = 0; step < p - 1; ++step) {
    const int send_block = (me - step + p) % p;
    const int recv_block = (me - step - 1 + p) % p;
    ctx.send_values<T>(
        comm, right, detail::kTagAllgather,
        std::span<const T>(out.data() + n * static_cast<std::size_t>(
                                                send_block),
                           n));
    ctx.recv_values<T>(
        comm, left, detail::kTagAllgather,
        std::span<T>(out.data() + n * static_cast<std::size_t>(recv_block),
                     n));
  }
}

/// Pairwise-exchange all-to-all: block b of `in` goes to rank b; out block
/// b holds the data received from rank b.  Each block has `block` elements.
template <typename T>
void alltoall(Context& ctx, const Communicator& comm, std::span<const T> in,
              std::span<T> out, std::size_t block) {
  detail::CollectiveScope scope(ctx);
  const int p = comm.size();
  const int me = comm.rank();
  std::copy(in.begin() + static_cast<std::ptrdiff_t>(block) * me,
            in.begin() + static_cast<std::ptrdiff_t>(block) * (me + 1),
            out.begin() + static_cast<std::ptrdiff_t>(block) * me);
  for (int step = 1; step < p; ++step) {
    const int dst = (me + step) % p;
    const int src = (me - step + p) % p;
    ctx.send_values<T>(
        comm, dst, detail::kTagAlltoall,
        std::span<const T>(in.data() + block * static_cast<std::size_t>(dst),
                           block));
    ctx.recv_values<T>(
        comm, src, detail::kTagAlltoall,
        std::span<T>(out.data() + block * static_cast<std::size_t>(src),
                     block));
  }
}

/// Exclusive prefix: rank r receives op-fold of ranks [0, r).  Rank 0's out
/// is zero-initialized.  Linear chain (deterministic association).
template <typename T>
void exscan(Context& ctx, const Communicator& comm, std::span<const T> in,
            std::span<T> out, ReduceOp op) {
  detail::CollectiveScope scope(ctx);
  const int p = comm.size();
  const int me = comm.rank();
  std::vector<T> acc(in.size(), T{});
  if (me > 0)
    ctx.recv_values<T>(comm, me - 1, detail::kTagExscan, std::span<T>(acc));
  std::copy(acc.begin(), acc.end(), out.begin());
  if (me < p - 1) {
    std::vector<T> next(acc);
    detail::apply_op<T>(std::span<T>(next), in, op);
    ctx.send_values<T>(comm, me + 1, detail::kTagExscan,
                       std::span<const T>(next));
  }
}

/// Inclusive prefix: rank r receives the op-fold of ranks [0, r].
/// Linear chain (deterministic association).
template <typename T>
void scan(Context& ctx, const Communicator& comm, std::span<const T> in,
          std::span<T> out, ReduceOp op) {
  detail::CollectiveScope scope(ctx);
  const int p = comm.size();
  const int me = comm.rank();
  std::vector<T> acc(in.begin(), in.end());
  if (me > 0) {
    std::vector<T> prev(in.size());
    ctx.recv_values<T>(comm, me - 1, detail::kTagExscan, std::span<T>(prev));
    for (std::size_t i = 0; i < acc.size(); ++i) {
      T tmp = prev[i];
      detail::apply_op<T>(std::span<T>(&tmp, 1),
                          std::span<const T>(&acc[i], 1), op);
      acc[i] = tmp;
    }
  }
  std::copy(acc.begin(), acc.end(), out.begin());
  if (me < p - 1)
    ctx.send_values<T>(comm, me + 1, detail::kTagExscan,
                       std::span<const T>(acc));
}

/// Combined send+receive with distinct peers (deadlock-free under the
/// eager protocol; mirrors MPI_Sendrecv).
template <typename T>
void sendrecv(Context& ctx, const Communicator& comm, int dst, int send_tag,
              std::span<const T> send_data, int src, int recv_tag,
              std::span<T> recv_data) {
  ctx.send_values<T>(comm, dst, send_tag, send_data);
  ctx.recv_values<T>(comm, src, recv_tag, recv_data);
}

/// Root gathers in-order blocks from every rank (linear).
template <typename T>
void gather(Context& ctx, const Communicator& comm, int root,
            std::span<const T> in, std::span<T> out) {
  detail::CollectiveScope scope(ctx);
  const int p = comm.size();
  const int me = comm.rank();
  const std::size_t n = in.size();
  if (me == root) {
    std::copy(in.begin(), in.end(),
              out.begin() + static_cast<std::ptrdiff_t>(n) * me);
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      ctx.recv_values<T>(
          comm, r, detail::kTagGather,
          std::span<T>(out.data() + n * static_cast<std::size_t>(r), n));
    }
  } else {
    ctx.send_values<T>(comm, root, detail::kTagGather, in);
  }
}

}  // namespace ca::comm
