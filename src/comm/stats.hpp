// Per-rank communication statistics, attributed to named phases.  The
// schedule-level performance model is validated against these counters
// (tests/schedule_match_test.cpp): the event simulator must predict exactly
// the message counts and byte volumes the functional runtime incurs.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace ca::comm {

struct PhaseStats {
  std::uint64_t p2p_messages = 0;
  std::uint64_t p2p_bytes = 0;
  std::uint64_t collective_calls = 0;
  /// Bytes this rank sent while inside collective algorithms.
  std::uint64_t collective_bytes = 0;

  PhaseStats& operator+=(const PhaseStats& o) {
    p2p_messages += o.p2p_messages;
    p2p_bytes += o.p2p_bytes;
    collective_calls += o.collective_calls;
    collective_bytes += o.collective_bytes;
    return *this;
  }
};

/// Snapshot of the fault-injection layer's event counters (see
/// comm/fault.hpp).  `injected` events were placed by the FaultPlan,
/// `detected` ones surfaced as typed errors, `recovered` ones were healed
/// transparently (retransmission, duplicate suppression, late delivery).
struct FaultSummary {
  std::uint64_t injected_delay = 0;
  std::uint64_t injected_duplicate = 0;
  std::uint64_t injected_drop = 0;
  std::uint64_t injected_corrupt = 0;
  std::uint64_t injected_stall = 0;
  std::uint64_t injected_kill = 0;
  std::uint64_t injected_hang = 0;
  /// In-memory prognostic-state pokes (kCorruptState numerical faults).
  std::uint64_t injected_state_corrupt = 0;
  std::uint64_t detected_checksum = 0;
  std::uint64_t detected_timeout = 0;
  /// Receives abandoned by the heartbeat watchdog (PeerDeadError).
  std::uint64_t detected_peer_dead = 0;
  /// NumericalError incidents raised by the health sentinel under
  /// injection (the detection side of kCorruptState).
  std::uint64_t detected_numeric = 0;
  std::uint64_t recovered_delay = 0;
  std::uint64_t recovered_duplicate = 0;
  std::uint64_t recovered_drop = 0;

  std::uint64_t injected_total() const;
  std::uint64_t detected_total() const;
  std::uint64_t recovered_total() const;
};

/// Buffer-pool behavior of the hot communication paths (halo pack/recv
/// buffers).  Steady-state tests assert that after warm-up every acquire
/// is a reuse: a growing pool in the step loop is a perf regression.
struct PoolStats {
  /// Pool acquires that had to grow a buffer's heap capacity.
  std::uint64_t allocations = 0;
  /// Pool acquires served entirely from existing capacity.
  std::uint64_t reuses = 0;
};

class CommStats {
 public:
  void set_phase(std::string phase) { phase_ = std::move(phase); }
  const std::string& phase() const { return phase_; }

  /// Marks subsequent sends as part of a collective algorithm.
  void enter_collective();
  void leave_collective();
  bool in_collective() const { return collective_depth_ > 0; }

  void record_send(std::size_t bytes);
  void record_collective_call();

  /// One exchange-pool buffer acquire; `grew` marks a heap allocation.
  void record_pool_acquire(bool grew);
  const PoolStats& pool() const { return pool_; }

  PhaseStats phase_totals(const std::string& phase) const;
  PhaseStats grand_totals() const;
  const std::map<std::string, PhaseStats>& by_phase() const { return stats_; }
  void clear();

 private:
  std::string phase_ = "default";
  int collective_depth_ = 0;
  std::map<std::string, PhaseStats> stats_;
  PoolStats pool_;
};

}  // namespace ca::comm
