// Deterministic, seedable fault injection for the comm runtime.  A
// FaultPlan holds a set of rules scoped by sender phase, tag, and world
// rank pair; every injection decision is a pure hash of (seed, rule,
// message identity), so two runs with the same seed and the same traffic
// inject exactly the same faults regardless of thread interleaving.
//
// Faults are injected at the mailbox boundary:
//   - kDelay:     the message becomes visible only after `param` receive
//                 polls of the destination mailbox.
//   - kDuplicate: a second copy is enqueued; the receiver suppresses it
//                 via the sequence number.
//   - kDrop:      the message is withheld ("dropped once") until the
//                 receiver's poll loop requests retransmission; with
//                 retries disabled the receive times out instead.
//   - kCorrupt:   `param` payload bytes are flipped after the checksum is
//                 computed, so verification fails with ChecksumError.
//   - kStall:     the matching rank sleeps `param` poll intervals at the
//                 step boundary (Context::notify_step).
//
// The plan also owns the injected/detected/recovered counters (shared by
// all ranks of a run) summarized as comm::FaultSummary for perf/report.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "comm/message.hpp"
#include "comm/stats.hpp"

namespace ca::util {
class Config;
}

namespace ca::comm {

enum class FaultKind {
  kDelay,
  kDuplicate,
  kDrop,
  kCorrupt,
  kStall,
  /// Process-level fault: the rank throws RankKilledError at the step
  /// boundary and never responds again (a node loss).  Peers with the
  /// heartbeat watchdog enabled unwind with PeerDeadError.
  kKillRank,
  /// Process-level fault: the rank sleeps `param` milliseconds at the
  /// step boundary without stamping its heartbeat — long enough hangs
  /// trip the peers' watchdog exactly like a kill.
  kHangRank,
  /// Numerical fault: an in-memory poke of one prognostic field cell on
  /// the matching rank right after the step completes (NaN, Inf, or an
  /// out-of-bounds value per `param` — see FaultPlan::state_fault).  The
  /// comm layer never executes this one; the service's runner queries
  /// state_fault() from the campaign's on_step_state hook and performs
  /// the poke, which the numerical-health sentinel must then detect.
  kCorruptState,
};

/// One injection rule.  Unset scopes (empty phase, kAnyTag, kAnySource)
/// match everything; src/dst are world ranks.
struct FaultRule {
  FaultKind kind = FaultKind::kDrop;
  double probability = 0.0;
  std::string phase;       // sender's stats phase; empty = any
  int tag = kAnyTag;       // exact tag; kAnyTag = any
  int src = kAnySource;    // sender world rank (for kStall / kKillRank /
                           // kHangRank: the afflicted rank)
  int dst = kAnySource;    // destination world rank
  /// kDelay: visibility delay in polls; kCorrupt: bytes flipped;
  /// kStall: poll intervals slept per stalled step; kHangRank:
  /// milliseconds the rank hangs.
  int param = 1;
  /// kKillRank / kHangRank / kCorruptState trigger step: >= 0 fires
  /// exactly at that step boundary (0-based count of Context::notify_step
  /// calls within one run); < 0 rolls `probability` at every step instead.
  int step = -1;
  /// Attempt scope: 0 matches every attempt; n > 0 matches only the n-th
  /// attempt (1-based, see FaultPlan::set_attempt).  Fixed-step rules
  /// would otherwise re-fire identically on every retry — the per-attempt
  /// reseed only perturbs probability rolls — so a transient fault that a
  /// rollback must survive is expressed as `attempt = 1`.
  int attempt = 0;
};

/// Shared event counters (atomic: senders inject, receivers detect and
/// recover on different threads).
struct FaultCounters {
  std::atomic<std::uint64_t> injected_delay{0};
  std::atomic<std::uint64_t> injected_duplicate{0};
  std::atomic<std::uint64_t> injected_drop{0};
  std::atomic<std::uint64_t> injected_corrupt{0};
  std::atomic<std::uint64_t> injected_stall{0};
  std::atomic<std::uint64_t> injected_kill{0};
  std::atomic<std::uint64_t> injected_hang{0};
  std::atomic<std::uint64_t> injected_state_corrupt{0};
  std::atomic<std::uint64_t> detected_checksum{0};
  std::atomic<std::uint64_t> detected_timeout{0};
  std::atomic<std::uint64_t> detected_peer_dead{0};
  /// NumericalError incidents the health sentinel raised while injection
  /// was active (stamped by the service's runner, not the comm layer).
  std::atomic<std::uint64_t> detected_numeric{0};
  std::atomic<std::uint64_t> recovered_delay{0};
  std::atomic<std::uint64_t> recovered_duplicate{0};
  std::atomic<std::uint64_t> recovered_drop{0};

  FaultSummary summary() const;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  /// Builds a plan from a `faults.*` config block (see README):
  /// faults.enabled, faults.seed, per-kind probabilities faults.drop /
  /// duplicate / delay / corrupt / stall, the shared scope faults.phase /
  /// tag / src / dst, and the parameters faults.delay_polls /
  /// corrupt_bytes / stall_polls.  Numerical faults read
  /// faults.corrupt_state (probability), corrupt_state_step,
  /// corrupt_state_mode, corrupt_state_field, and corrupt_state_attempt
  /// (default 1: fire on the first attempt only, so the retry is clean).
  static FaultPlan from_config(const util::Config& cfg);

  void add_rule(FaultRule rule) { rules_.push_back(std::move(rule)); }
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_ && !rules_.empty(); }
  std::uint64_t seed() const { return seed_; }
  const std::vector<FaultRule>& rules() const { return rules_; }

  /// Message-level decision, evaluated by the sender.  Independent rules
  /// compose: a message can be both delayed and duplicated.
  struct Injection {
    bool drop = false;
    bool duplicate = false;
    int delay_polls = 0;
    int corrupt_bytes = 0;
    bool any() const {
      return drop || duplicate || delay_polls > 0 || corrupt_bytes > 0;
    }
  };
  Injection decide(std::string_view phase, int src, int dst, int tag,
                   std::uint64_t seq) const;

  /// Poll intervals rank `rank` must sleep at step `step` (0 = no stall).
  int stall_polls(int rank, std::uint64_t step) const;

  /// Process-level fault decision at a step boundary (kKillRank /
  /// kHangRank rules; evaluated by Context::notify_step).
  struct StepFault {
    bool kill = false;
    int hang_ms = 0;
    bool any() const { return kill || hang_ms > 0; }
  };
  StepFault step_fault(int rank, std::uint64_t step) const;

  /// Numerical fault decision right after a step (kCorruptState rules;
  /// evaluated by the service runner's on_step_state hook).  `param`
  /// encodes field * 10 + mode: field 0 = u, 1 = v, 2 = phi, 3 = psa;
  /// mode 0 = NaN, 1 = Inf, 2 = out-of-bounds finite (1e30).
  struct StateFault {
    bool fire = false;
    int field = 0;
    int mode = 0;
    bool any() const { return fire; }
  };
  StateFault state_fault(int rank, std::uint64_t step) const;

  /// 1-based attempt number the next run executes under; rules with an
  /// `attempt` scope match only when it equals this.  The runner calls
  /// this right before each attempt, alongside the per-attempt reseed.
  void set_attempt(int attempt) { attempt_ = attempt; }
  int attempt() const { return attempt_; }

  FaultCounters& counters() const { return *counters_; }
  FaultSummary summary() const { return counters_->summary(); }

 private:
  bool enabled_ = true;
  std::uint64_t seed_ = 0;
  int attempt_ = 1;
  std::vector<FaultRule> rules_;
  /// Shared so FaultPlan stays copyable (copies share the counters).
  std::shared_ptr<FaultCounters> counters_ =
      std::make_shared<FaultCounters>();
};

}  // namespace ca::comm
