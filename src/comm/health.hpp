// Liveness board of one SPMD run: every rank stamps a heartbeat whenever
// it passes through the comm layer (send, receive polls, step boundaries),
// and blocked receives watchdog their peer against it.  A rank whose
// heartbeat is older than RunOptions::heartbeat_timeout — or that died
// with an exception — is marked dead, which "poisons" the run: every
// subsequent watchdogged receive fails promptly with PeerDeadError
// instead of waiting out the full receive deadline.  All state is atomic;
// the board is written from every rank thread concurrently.
//
// The board is passive when heartbeat_timeout == 0 (the default): stamps
// still land but nothing reads them, so the fault-free fast path keeps
// its single bounded wait per receive.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <memory>

namespace ca::comm {

class HealthBoard {
 public:
  using Clock = std::chrono::steady_clock;

  explicit HealthBoard(int nranks)
      : nranks_(nranks), slots_(new Slot[static_cast<std::size_t>(nranks)]) {
    const auto now = now_ns();
    for (int r = 0; r < nranks_; ++r)
      slots_[static_cast<std::size_t>(r)].beat_ns.store(
          now, std::memory_order_relaxed);
  }

  int size() const { return nranks_; }

  /// Records that `rank` is alive right now.
  void stamp(int rank) {
    slot(rank).beat_ns.store(now_ns(), std::memory_order_relaxed);
  }

  /// Marks a rank permanently dead and poisons the run with it (first
  /// death wins; later deaths keep the original culprit so every
  /// PeerDeadError names the rank that actually started the collapse).
  void mark_dead(int rank) {
    slot(rank).dead.store(true, std::memory_order_relaxed);
    int expected = -1;
    poisoned_.compare_exchange_strong(expected, rank,
                                      std::memory_order_relaxed);
  }

  /// Marks a rank as having returned normally: its heartbeat stops, but
  /// that is retirement, not death — watchdogs must not flag it stale.
  void mark_finished(int rank) {
    slot(rank).finished.store(true, std::memory_order_relaxed);
  }

  bool dead(int rank) const {
    return slot(rank).dead.load(std::memory_order_relaxed);
  }
  bool finished(int rank) const {
    return slot(rank).finished.load(std::memory_order_relaxed);
  }
  /// World rank of the first dead rank, or -1 while everyone lives.
  int poisoned() const { return poisoned_.load(std::memory_order_relaxed); }

  /// Age of `rank`'s last heartbeat at `now`.
  std::chrono::nanoseconds age(int rank, Clock::time_point now) const {
    const std::int64_t beat =
        slot(rank).beat_ns.load(std::memory_order_relaxed);
    const std::int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now.time_since_epoch())
            .count();
    return std::chrono::nanoseconds(now_ns > beat ? now_ns - beat : 0);
  }

 private:
  struct Slot {
    std::atomic<std::int64_t> beat_ns{0};
    std::atomic<bool> dead{false};
    std::atomic<bool> finished{false};
  };

  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
  }

  Slot& slot(int rank) {
    assert(rank >= 0 && rank < nranks_);
    return slots_[static_cast<std::size_t>(rank)];
  }
  const Slot& slot(int rank) const {
    assert(rank >= 0 && rank < nranks_);
    return slots_[static_cast<std::size_t>(rank)];
  }

  int nranks_;
  /// Atomics are neither copyable nor movable; a raw array behind a
  /// unique_ptr keeps the board's address stable for every rank thread.
  std::unique_ptr<Slot[]> slots_;
  std::atomic<int> poisoned_{-1};
};

}  // namespace ca::comm
