#include "comm/fault.hpp"

#include <algorithm>

#include "util/config.hpp"

namespace ca::comm {
namespace {

/// splitmix64: the standard 64-bit mixer; statistically uniform output
/// for sequential or hashed inputs.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from (seed, rule index, message identity).
/// Pure function: decisions are reproducible across runs and independent
/// of thread scheduling.
double roll(std::uint64_t seed, std::size_t rule, std::uint64_t a,
            std::uint64_t b, std::uint64_t c, std::uint64_t d) {
  std::uint64_t h = mix64(seed ^ mix64(rule + 1));
  h = mix64(h ^ a);
  h = mix64(h ^ b);
  h = mix64(h ^ c);
  h = mix64(h ^ d);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool scope_matches(const FaultRule& r, std::string_view phase, int src,
                   int dst, int tag) {
  if (!r.phase.empty() && r.phase != phase) return false;
  if (r.tag != kAnyTag && r.tag != tag) return false;
  if (r.src != kAnySource && r.src != src) return false;
  if (r.dst != kAnySource && r.dst != dst) return false;
  return true;
}

}  // namespace

FaultSummary FaultCounters::summary() const {
  FaultSummary s;
  s.injected_state_corrupt = injected_state_corrupt.load();
  s.detected_numeric = detected_numeric.load();
  s.injected_delay = injected_delay.load();
  s.injected_duplicate = injected_duplicate.load();
  s.injected_drop = injected_drop.load();
  s.injected_corrupt = injected_corrupt.load();
  s.injected_stall = injected_stall.load();
  s.injected_kill = injected_kill.load();
  s.injected_hang = injected_hang.load();
  s.detected_checksum = detected_checksum.load();
  s.detected_timeout = detected_timeout.load();
  s.detected_peer_dead = detected_peer_dead.load();
  s.recovered_delay = recovered_delay.load();
  s.recovered_duplicate = recovered_duplicate.load();
  s.recovered_drop = recovered_drop.load();
  return s;
}

FaultPlan::Injection FaultPlan::decide(std::string_view phase, int src,
                                       int dst, int tag,
                                       std::uint64_t seq) const {
  Injection inj;
  if (!enabled()) return inj;
  const auto key_a = static_cast<std::uint64_t>(src) + 1;
  const auto key_b = static_cast<std::uint64_t>(dst) + 1;
  const auto key_c = static_cast<std::uint64_t>(tag) + (1ull << 32);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& r = rules_[i];
    if (r.kind == FaultKind::kStall || r.kind == FaultKind::kKillRank ||
        r.kind == FaultKind::kHangRank ||
        r.kind == FaultKind::kCorruptState)
      continue;
    if (r.probability <= 0.0) continue;
    if (r.attempt > 0 && r.attempt != attempt_) continue;
    if (!scope_matches(r, phase, src, dst, tag)) continue;
    if (roll(seed_, i, key_a, key_b, key_c, seq) >= r.probability) continue;
    switch (r.kind) {
      case FaultKind::kDelay:
        inj.delay_polls = std::max(inj.delay_polls, std::max(1, r.param));
        counters_->injected_delay.fetch_add(1, std::memory_order_relaxed);
        break;
      case FaultKind::kDuplicate:
        if (!inj.duplicate) {
          inj.duplicate = true;
          counters_->injected_duplicate.fetch_add(1,
                                                 std::memory_order_relaxed);
        }
        break;
      case FaultKind::kDrop:
        if (!inj.drop) {
          inj.drop = true;
          counters_->injected_drop.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      case FaultKind::kCorrupt:
        if (inj.corrupt_bytes == 0) {
          inj.corrupt_bytes = std::max(1, r.param);
          counters_->injected_corrupt.fetch_add(1,
                                               std::memory_order_relaxed);
        }
        break;
      case FaultKind::kStall:
      case FaultKind::kKillRank:
      case FaultKind::kHangRank:
      case FaultKind::kCorruptState:
        break;
    }
  }
  return inj;
}

int FaultPlan::stall_polls(int rank, std::uint64_t step) const {
  if (!enabled()) return 0;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& r = rules_[i];
    if (r.kind != FaultKind::kStall || r.probability <= 0.0) continue;
    if (r.attempt > 0 && r.attempt != attempt_) continue;
    if (r.src != kAnySource && r.src != rank) continue;
    if (roll(seed_, i, static_cast<std::uint64_t>(rank) + 1, step,
             0x5741ull, 0) >= r.probability)
      continue;
    counters_->injected_stall.fetch_add(1, std::memory_order_relaxed);
    return std::max(1, r.param);
  }
  return 0;
}

FaultPlan::StepFault FaultPlan::step_fault(int rank,
                                           std::uint64_t step) const {
  StepFault sf;
  if (!enabled()) return sf;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& r = rules_[i];
    if (r.kind != FaultKind::kKillRank && r.kind != FaultKind::kHangRank)
      continue;
    if (r.attempt > 0 && r.attempt != attempt_) continue;
    if (r.src != kAnySource && r.src != rank) continue;
    if (r.step >= 0) {
      if (step != static_cast<std::uint64_t>(r.step)) continue;
    } else {
      if (r.probability <= 0.0) continue;
      if (roll(seed_, i, static_cast<std::uint64_t>(rank) + 1, step,
               0xdeadull, 0) >= r.probability)
        continue;
    }
    if (r.kind == FaultKind::kKillRank) {
      if (!sf.kill)
        counters_->injected_kill.fetch_add(1, std::memory_order_relaxed);
      sf.kill = true;
    } else {
      if (sf.hang_ms == 0)
        counters_->injected_hang.fetch_add(1, std::memory_order_relaxed);
      sf.hang_ms = std::max(sf.hang_ms, std::max(1, r.param));
    }
  }
  return sf;
}

FaultPlan::StateFault FaultPlan::state_fault(int rank,
                                             std::uint64_t step) const {
  StateFault sf;
  if (!enabled()) return sf;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& r = rules_[i];
    if (r.kind != FaultKind::kCorruptState) continue;
    if (r.attempt > 0 && r.attempt != attempt_) continue;
    if (r.src != kAnySource && r.src != rank) continue;
    if (r.step >= 0) {
      if (step != static_cast<std::uint64_t>(r.step)) continue;
    } else {
      if (r.probability <= 0.0) continue;
      if (roll(seed_, i, static_cast<std::uint64_t>(rank) + 1, step,
               0xbadfull, 0) >= r.probability)
        continue;
    }
    if (!sf.fire) {
      sf.fire = true;
      sf.field = std::clamp(r.param / 10, 0, 3);
      sf.mode = std::clamp(r.param % 10, 0, 2);
      counters_->injected_state_corrupt.fetch_add(1,
                                                  std::memory_order_relaxed);
    }
  }
  return sf;
}

FaultPlan FaultPlan::from_config(const util::Config& cfg) {
  const util::Config f = cfg.subset("faults.");
  FaultPlan plan(static_cast<std::uint64_t>(f.get_long("seed", 0)));
  plan.set_enabled(f.get_bool("enabled", true));

  FaultRule scope;
  scope.phase = f.get_string("phase", "");
  scope.tag = f.get_int("tag", kAnyTag);
  scope.src = f.get_int("src", kAnySource);
  scope.dst = f.get_int("dst", kAnySource);

  auto add = [&](FaultKind kind, const char* key, int param) {
    const double p = f.get_double(key, 0.0);
    if (p <= 0.0) return;
    FaultRule r = scope;
    r.kind = kind;
    r.probability = p;
    r.param = param;
    plan.add_rule(r);
  };
  add(FaultKind::kDelay, "delay", f.get_int("delay_polls", 3));
  add(FaultKind::kDuplicate, "duplicate", 1);
  add(FaultKind::kDrop, "drop", 1);
  add(FaultKind::kCorrupt, "corrupt", f.get_int("corrupt_bytes", 1));
  add(FaultKind::kStall, "stall", f.get_int("stall_polls", 50));

  // Process-level faults: probability rolled per step unless a fixed
  // trigger step is given (faults.kill_step / faults.hang_step).
  auto add_step = [&](FaultKind kind, const char* key, const char* step_key,
                      int param) {
    const double p = f.get_double(key, 0.0);
    const int step = f.get_int(step_key, -1);
    if (p <= 0.0 && step < 0) return;
    FaultRule r = scope;
    r.kind = kind;
    r.probability = p;
    r.param = param;
    r.step = step;
    plan.add_rule(r);
  };
  add_step(FaultKind::kKillRank, "kill_rank", "kill_step", 1);
  add_step(FaultKind::kHangRank, "hang_rank", "hang_step",
           f.get_int("hang_ms", 500));

  // Numerical fault: poke one prognostic cell on the scoped rank.  Fires
  // on attempt 1 only by default — the point of the chaos suite is to
  // prove the ROLLBACK completes clean, so the retry must not re-poke.
  {
    const double p = f.get_double("corrupt_state", 0.0);
    const int step = f.get_int("corrupt_state_step", -1);
    if (p > 0.0 || step >= 0) {
      FaultRule r = scope;
      r.kind = FaultKind::kCorruptState;
      r.probability = p;
      r.step = step;
      r.param = f.get_int("corrupt_state_field", 0) * 10 +
                f.get_int("corrupt_state_mode", 0);
      r.attempt = f.get_int("corrupt_state_attempt", 1);
      plan.add_rule(r);
    }
  }
  return plan;
}

}  // namespace ca::comm
