#include "comm/mailbox.hpp"

namespace ca::comm {

void Mailbox::deliver(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

std::optional<Message> Mailbox::match_locked(std::uint64_t comm_id, int src,
                                             int tag) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->comm_id != comm_id) continue;
    if (src != kAnySource && it->src != src) continue;
    if (tag != kAnyTag && it->tag != tag) continue;
    Message out = std::move(*it);
    queue_.erase(it);
    return out;
  }
  return std::nullopt;
}

Message Mailbox::receive(std::uint64_t comm_id, int src, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (auto m = match_locked(comm_id, src, tag)) return std::move(*m);
    cv_.wait(lock);
  }
}

std::optional<Message> Mailbox::try_receive(std::uint64_t comm_id, int src,
                                            int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  return match_locked(comm_id, src, tag);
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace ca::comm
