#include "comm/mailbox.hpp"

#include <algorithm>

#include "comm/error.hpp"
#include "comm/health.hpp"
#include "comm/runtime.hpp"
#include "obs/trace.hpp"

namespace ca::comm {
namespace {

const RunOptions& default_options() {
  static const RunOptions opts{};
  return opts;
}

bool matches(const Message& m, std::uint64_t comm_id, int src, int tag) {
  if (m.comm_id != comm_id) return false;
  if (src != kAnySource && m.src != src) return false;
  if (tag != kAnyTag && m.tag != tag) return false;
  return true;
}

}  // namespace

void Mailbox::configure(const RunOptions* options, FaultCounters* counters,
                        HealthBoard* health, int self_rank) {
  options_ = options;
  counters_ = counters;
  health_ = health;
  self_rank_ = self_rank;
}

void Mailbox::deliver(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(Entry{std::move(msg), 0, false});
  }
  cv_.notify_all();
}

void Mailbox::deliver(Message msg, const FaultPlan::Injection& injection) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (injection.duplicate) {
      // The copy is enqueued first and visible immediately; the receiver
      // suppresses whichever of the two arrives second via the sequence
      // number.  (If the original is withheld, the copy stands in for it
      // exactly like a real network duplicate would.)
      queue_.push_back(Entry{msg, 0, false});
    }
    Entry e{std::move(msg), std::max(0, injection.delay_polls),
            injection.drop};
    queue_.push_back(std::move(e));
  }
  cv_.notify_all();
}

std::optional<Message> Mailbox::match_locked(std::uint64_t comm_id, int src,
                                             int tag) {
  // Triples that have an earlier invisible (delayed/withheld) entry are
  // blocked for this scan: taking a later message of the same triple
  // would break the per-sender FIFO guarantee.
  std::vector<TripleKey> blocked;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (!matches(it->msg, comm_id, src, tag)) {
      ++it;
      continue;
    }
    TripleKey key{it->msg.comm_id, it->msg.src, it->msg.tag};
    if (std::find(blocked.begin(), blocked.end(), key) != blocked.end()) {
      ++it;
      continue;
    }
    if (it->delay_polls > 0 || it->withheld) {
      blocked.push_back(key);
      ++it;
      continue;
    }
    if (it->msg.seq != 0) {
      std::uint64_t& last = taken_seq_[key];
      if (it->msg.seq <= last) {
        // Duplicate of an already-taken message: suppress transparently.
        if (counters_ != nullptr)
          counters_->recovered_duplicate.fetch_add(
              1, std::memory_order_relaxed);
        it = queue_.erase(it);
        continue;
      }
      last = it->msg.seq;
    }
    Message out = std::move(it->msg);
    queue_.erase(it);
    return out;
  }
  return std::nullopt;
}

void Mailbox::poll_locked(std::uint64_t comm_id, int src, int tag) {
  const RunOptions& opts = options_ != nullptr ? *options_ : default_options();
  for (Entry& e : queue_) {
    if (e.delay_polls > 0) {
      if (--e.delay_polls == 0 && counters_ != nullptr)
        counters_->recovered_delay.fetch_add(1, std::memory_order_relaxed);
    }
    // The receiver's poll doubles as the retransmission request of the
    // eager protocol: a withheld entry the receiver is waiting for is
    // redelivered from the sender-side copy (which this entry models).
    if (e.withheld && opts.max_resends > 0 &&
        matches(e.msg, comm_id, src, tag)) {
      e.withheld = false;
      if (counters_ != nullptr)
        counters_->recovered_drop.fetch_add(1, std::memory_order_relaxed);
      if (tracer_ != nullptr)
        tracer_->instant("retransmit", "comm",
                         "src=" + std::to_string(e.msg.src) +
                             " tag=" + std::to_string(e.msg.tag));
    }
  }
}

void Mailbox::verify(const Message& msg) const {
  if (msg.checksum == 0) return;
  if (payload_checksum(msg.payload) == msg.checksum) return;
  if (counters_ != nullptr)
    counters_->detected_checksum.fetch_add(1, std::memory_order_relaxed);
  if (tracer_ != nullptr)
    tracer_->instant("checksum_fail", "comm",
                     "src=" + std::to_string(msg.src) +
                         " tag=" + std::to_string(msg.tag));
  throw ChecksumError(msg.comm_id, msg.src, msg.tag);
}

Message Mailbox::receive(std::uint64_t comm_id, int src, int tag) {
  const RunOptions& opts = options_ != nullptr ? *options_ : default_options();
  const bool faulty = opts.faults != nullptr && opts.faults->enabled();
  // Watchdog: while blocked, keep stamping our own heartbeat and check the
  // awaited peer's.  Only active when comm.heartbeat_timeout > 0, so the
  // fault-free fast path keeps its single bounded wait.
  const bool watch = health_ != nullptr && self_rank_ >= 0 &&
                     opts.heartbeat_timeout.count() > 0;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + opts.recv_timeout;

  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (auto m = match_locked(comm_id, src, tag)) {
      verify(*m);
      return std::move(*m);
    }
    const auto now = std::chrono::steady_clock::now();
    if (watch) {
      health_->stamp(self_rank_);
      // A dead rank anywhere poisons the run: even receives from other
      // (healthy) ranks cannot complete the collective schedule, so fail
      // them all promptly and let the caller tear the attempt down.
      const int poisoned = health_->poisoned();
      if (poisoned >= 0) {
        if (counters_ != nullptr)
          counters_->detected_peer_dead.fetch_add(1,
                                                  std::memory_order_relaxed);
        if (tracer_ != nullptr)
          tracer_->instant("peer_dead", "comm",
                           "rank=" + std::to_string(poisoned));
        throw PeerDeadError(poisoned,
                            poisoned == self_rank_
                                ? "this rank was declared dead by its peers"
                                : "peer rank died");
      }
      if (src != kAnySource && !health_->finished(src) &&
          health_->age(src, now) > opts.heartbeat_timeout) {
        health_->mark_dead(src);
        if (counters_ != nullptr)
          counters_->detected_peer_dead.fetch_add(1,
                                                  std::memory_order_relaxed);
        if (tracer_ != nullptr)
          tracer_->instant("peer_dead", "comm",
                           "rank=" + std::to_string(src) + " heartbeat stale");
        throw PeerDeadError(src, "heartbeat older than heartbeat_timeout");
      }
    }
    if (now >= deadline) {
      if (counters_ != nullptr)
        counters_->detected_timeout.fetch_add(1, std::memory_order_relaxed);
      if (tracer_ != nullptr)
        tracer_->instant("recv_timeout", "comm",
                         "src=" + std::to_string(src) +
                             " tag=" + std::to_string(tag));
      const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
          now - start);
      throw TimeoutError(comm_id, src, tag, waited.count());
    }
    if (faulty || watch) {
      // Poll cadence: age delayed entries, request retransmissions, and
      // re-evaluate the watchdog well before the receive deadline.
      cv_.wait_until(lock, std::min(deadline, now + opts.poll_interval));
      if (faulty) poll_locked(comm_id, src, tag);
    } else {
      cv_.wait_until(lock, deadline);
    }
  }
}

std::optional<Message> Mailbox::try_receive(std::uint64_t comm_id, int src,
                                            int tag) {
  const RunOptions& opts = options_ != nullptr ? *options_ : default_options();
  const bool faulty = opts.faults != nullptr && opts.faults->enabled();
  std::lock_guard<std::mutex> lock(mutex_);
  // Each probe counts as one receive poll so a nonblocking test() loop
  // makes the same recovery progress a blocking receive would: delayed
  // entries age toward visibility and withheld ("dropped") entries are
  // retransmitted.
  if (faulty) poll_locked(comm_id, src, tag);
  auto m = match_locked(comm_id, src, tag);
  if (m) verify(*m);
  return m;
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace ca::comm
