// A communicator is an ordered group of world ranks plus a unique id that
// isolates its message traffic (the id participates in mailbox matching,
// so identical tags on different communicators never collide).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace ca::comm {

class Communicator {
 public:
  Communicator() = default;

  Communicator(std::uint64_t id, std::vector<int> world_ranks, int my_rank)
      : id_(id), world_ranks_(std::move(world_ranks)), my_rank_(my_rank) {
    assert(my_rank_ >= 0 &&
           my_rank_ < static_cast<int>(world_ranks_.size()));
  }

  std::uint64_t id() const { return id_; }
  int rank() const { return my_rank_; }
  int size() const { return static_cast<int>(world_ranks_.size()); }

  /// World rank of communicator-rank r.
  int world_rank_of(int r) const {
    assert(r >= 0 && r < size());
    return world_ranks_[r];
  }

  /// Communicator rank of a world rank, or -1 if not a member.
  int rank_of_world(int wr) const {
    for (int r = 0; r < size(); ++r)
      if (world_ranks_[r] == wr) return r;
    return -1;
  }

  const std::vector<int>& world_ranks() const { return world_ranks_; }

  bool valid() const { return !world_ranks_.empty(); }

 private:
  std::uint64_t id_ = 0;
  std::vector<int> world_ranks_;
  int my_rank_ = -1;
};

}  // namespace ca::comm
