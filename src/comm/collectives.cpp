#include "comm/collectives.hpp"

namespace ca::comm {

void barrier(Context& ctx, const Communicator& comm) {
  detail::CollectiveScope scope(ctx);
  const int p = comm.size();
  if (p == 1) return;
  const int me = comm.rank();
  // Dissemination barrier: ceil(log2 p) rounds.
  std::byte token{0};
  std::span<std::byte> token_span(&token, 1);
  for (int dist = 1; dist < p; dist <<= 1) {
    const int dst = (me + dist) % p;
    const int src = (me - dist % p + p) % p;
    ctx.send(comm, dst, detail::kTagBarrier,
             std::span<const std::byte>(&token, 1));
    ctx.recv(comm, src, detail::kTagBarrier, token_span);
  }
}

}  // namespace ca::comm
