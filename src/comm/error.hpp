// Typed errors of the message-passing runtime.  Every blocking wait in the
// comm layer is bounded: instead of spinning forever on a message that will
// never arrive, receives raise TimeoutError after the configured deadline,
// and corrupted payloads (detected via the Message checksum) raise
// ChecksumError.  Both derive from CommError so callers can catch the
// whole family.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace ca::comm {

struct CommError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A blocking receive exceeded its deadline (dropped message without
/// retransmission, stalled peer, or a genuine deadlock).
struct TimeoutError : CommError {
  TimeoutError(std::uint64_t comm_id, int src, int tag, long waited_ms)
      : CommError("recv timeout after " + std::to_string(waited_ms) +
                  " ms (comm " + std::to_string(comm_id) + ", src " +
                  std::to_string(src) + ", tag " + std::to_string(tag) + ")"),
        comm_id(comm_id),
        src(src),
        tag(tag),
        waited_ms(waited_ms) {}

  std::uint64_t comm_id;
  int src;
  int tag;
  long waited_ms;
};

/// A received payload failed checksum verification (corrupted in flight).
struct ChecksumError : CommError {
  ChecksumError(std::uint64_t comm_id, int src, int tag)
      : CommError("payload checksum mismatch (comm " +
                  std::to_string(comm_id) + ", src " + std::to_string(src) +
                  ", tag " + std::to_string(tag) + ")"),
        comm_id(comm_id),
        src(src),
        tag(tag) {}

  std::uint64_t comm_id;
  int src;
  int tag;
};

}  // namespace ca::comm
