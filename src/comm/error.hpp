// Typed errors of the message-passing runtime.  Every blocking wait in the
// comm layer is bounded: instead of spinning forever on a message that will
// never arrive, receives raise TimeoutError after the configured deadline,
// and corrupted payloads (detected via the Message checksum) raise
// ChecksumError.  Both derive from CommError so callers can catch the
// whole family.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace ca::comm {

struct CommError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A blocking receive exceeded its deadline (dropped message without
/// retransmission, stalled peer, or a genuine deadlock).
struct TimeoutError : CommError {
  TimeoutError(std::uint64_t comm_id, int src, int tag, long waited_ms)
      : CommError("recv timeout after " + std::to_string(waited_ms) +
                  " ms (comm " + std::to_string(comm_id) + ", src " +
                  std::to_string(src) + ", tag " + std::to_string(tag) + ")"),
        comm_id(comm_id),
        src(src),
        tag(tag),
        waited_ms(waited_ms) {}

  std::uint64_t comm_id;
  int src;
  int tag;
  long waited_ms;
};

/// A blocking receive was abandoned because a peer rank is dead: its
/// heartbeat went stale past RunOptions::heartbeat_timeout, or it left the
/// run with an exception.  `rank` is the dead peer's world rank.  Raised
/// by the mailbox watchdog well before the receive deadline, so survivors
/// unwind in O(heartbeat_timeout) instead of O(recv_timeout).
struct PeerDeadError : CommError {
  PeerDeadError(int rank, const std::string& reason)
      : CommError("peer rank " + std::to_string(rank) + " is dead (" +
                  reason + ")"),
        rank(rank) {}

  int rank;
};

/// This rank was killed by an injected kill_rank fault at a step boundary
/// (process-level fault model: the rank stops responding permanently).
struct RankKilledError : CommError {
  RankKilledError(int rank, std::uint64_t step)
      : CommError("rank " + std::to_string(rank) +
                  " killed by injected fault at step " +
                  std::to_string(step)),
        rank(rank),
        step(step) {}

  int rank;
  std::uint64_t step;
};

/// A received payload failed checksum verification (corrupted in flight).
struct ChecksumError : CommError {
  ChecksumError(std::uint64_t comm_id, int src, int tag)
      : CommError("payload checksum mismatch (comm " +
                  std::to_string(comm_id) + ", src " + std::to_string(src) +
                  ", tag " + std::to_string(tag) + ")"),
        comm_id(comm_id),
        src(src),
        tag(tag) {}

  std::uint64_t comm_id;
  int src;
  int tag;
};

}  // namespace ca::comm
