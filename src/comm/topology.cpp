#include "comm/topology.hpp"

#include <stdexcept>

#include "util/math.hpp"

namespace ca::comm {

int CartTopology::rank_of(int cx, int cy, int cz) const {
  std::array<int, 3> c{cx, cy, cz};
  for (int a = 0; a < 3; ++a) {
    if (periodic[static_cast<std::size_t>(a)]) {
      c[static_cast<std::size_t>(a)] =
          util::pos_mod(c[static_cast<std::size_t>(a)],
                        dims[static_cast<std::size_t>(a)]);
    } else if (c[static_cast<std::size_t>(a)] < 0 ||
               c[static_cast<std::size_t>(a)] >=
                   dims[static_cast<std::size_t>(a)]) {
      return -1;
    }
  }
  return c[0] + c[1] * dims[0] + c[2] * dims[0] * dims[1];
}

CartTopology make_cart(Context& ctx, const Communicator& comm,
                       std::array<int, 3> dims,
                       std::array<bool, 3> periodic) {
  if (dims[0] * dims[1] * dims[2] != comm.size())
    throw std::invalid_argument("make_cart: dims do not match comm size");
  CartTopology topo;
  topo.comm = comm;
  topo.dims = dims;
  topo.periodic = periodic;
  const int me = comm.rank();
  topo.coords = {me % dims[0], (me / dims[0]) % dims[1],
                 me / (dims[0] * dims[1])};

  const int cx = topo.coords[0], cy = topo.coords[1], cz = topo.coords[2];
  // Line along x: fixed (cy, cz).  Key = coordinate along the line so the
  // sub-communicator rank equals the coordinate.
  topo.line_x = ctx.split(comm, cy + cz * dims[1], cx);
  topo.line_y = ctx.split(comm, cx + cz * dims[0], cy);
  topo.line_z = ctx.split(comm, cx + cy * dims[0], cz);
  return topo;
}

namespace {

std::array<int, 2> balanced_pair(int p, int max_a, int max_b) {
  // Largest factor a of p with a <= max_a and p/a <= max_b, preferring the
  // most square split.
  int best_a = -1;
  for (int a = 1; a <= p; ++a) {
    if (p % a != 0) continue;
    const int b = p / a;
    if (a > max_a || b > max_b) continue;
    if (best_a < 0 ||
        std::abs(a - b) < std::abs(best_a - p / best_a))
      best_a = a;
  }
  if (best_a < 0)
    throw std::invalid_argument("no valid factorization of p under limits");
  return {best_a, p / best_a};
}

}  // namespace

std::array<int, 3> balanced_dims_yz(int p, int max_py, int max_pz) {
  auto [py, pz] = balanced_pair(p, max_py, max_pz);
  // Prefer more ranks along y (ny is larger than nz in practice).
  if (py < pz && pz <= max_py && py <= max_pz) std::swap(py, pz);
  return {1, py, pz};
}

std::array<int, 3> balanced_dims_xy(int p, int max_px, int max_py) {
  auto [px, py] = balanced_pair(p, max_px, max_py);
  if (px < py && py <= max_px && px <= max_py) std::swap(px, py);
  return {px, py, 1};
}

}  // namespace ca::comm
