// Fast Fourier transform for arbitrary length n: iterative radix-2 with
// precomputed twiddles for powers of two, Bluestein's chirp-z algorithm
// otherwise (n_x = 720 in the 50 km model is 2^4 * 3^2 * 5).  A Plan
// precomputes everything for a fixed n and is reused across latitude
// circles and time steps.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace ca::fft {

using cplx = std::complex<double>;

class Plan {
 public:
  explicit Plan(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward transform (unnormalized).
  void forward(std::span<cplx> data) const;
  /// In-place inverse transform (normalized by 1/n).
  void inverse(std::span<cplx> data) const;

  /// Scratch elements one transform needs (Bluestein working buffer;
  /// zero for power-of-two lengths).  The scratch overloads below are
  /// allocation-free when given a caller-owned buffer of this size.
  std::size_t scratch_size() const { return pow2_ ? 0 : m_; }
  void forward(std::span<cplx> data, std::span<cplx> scratch) const;
  void inverse(std::span<cplx> data, std::span<cplx> scratch) const;

 private:
  void transform(std::span<cplx> data, bool inv,
                 std::span<cplx> scratch) const;

  std::size_t n_ = 0;
  bool pow2_ = false;

  // Radix-2 machinery (for n_ or the Bluestein convolution length m_).
  std::size_t m_ = 0;  // power-of-two working length
  std::vector<std::size_t> bitrev_;
  std::vector<cplx> twiddles_;  // forward twiddles for length m_

  // Bluestein chirp data (empty when n_ is a power of two).
  std::vector<cplx> chirp_;      // exp(-i*pi*k^2/n)
  std::vector<cplx> b_forward_;  // FFT_m of the chirp kernel

  void radix2(std::span<cplx> data, bool inv) const;
};

/// Convenience one-shot transforms (allocate a Plan internally).
void fft(std::span<cplx> data, bool inverse = false);

/// Real-input transform via the N/2 complex-FFT trick (even n only):
/// packs adjacent real pairs into complex values, transforms, and
/// unpacks with the split formula.  spectrum has n/2+1 bins (DC..Nyquist).
class RealPlan {
 public:
  explicit RealPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// spectrum[k] for k in [0, n/2]; bins 1..n/2-1 represent conjugate
  /// pairs.
  void forward(std::span<const double> input, std::span<cplx> spectrum) const;
  /// Inverse of forward (exactly; output scaled by 1/n internally).
  void inverse(std::span<const cplx> spectrum,
               std::span<double> output) const;

  /// Scratch elements one real transform needs (pair-packing buffer plus
  /// the half-length plan's own scratch).
  std::size_t scratch_size() const { return n_ / 2 + half_.scratch_size(); }
  /// Allocation-free variants: scratch must hold scratch_size() elements.
  void forward(std::span<const double> input, std::span<cplx> spectrum,
               std::span<cplx> scratch) const;
  void inverse(std::span<const cplx> spectrum, std::span<double> output,
               std::span<cplx> scratch) const;

 private:
  std::size_t n_ = 0;
  Plan half_;
};

}  // namespace ca::fft
