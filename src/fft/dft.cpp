#include "fft/dft.hpp"

#include <cassert>

#include "util/math.hpp"

namespace ca::fft {

void dft(std::span<const cplx> in, std::span<cplx> out, bool inverse) {
  const std::size_t n = in.size();
  assert(out.size() == n);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{0.0, 0.0};
    for (std::size_t m = 0; m < n; ++m) {
      const double angle = sign * 2.0 * util::kPi *
                           static_cast<double>(k * m % n) /
                           static_cast<double>(n);
      acc += in[m] * cplx{std::cos(angle), std::sin(angle)};
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
}

}  // namespace ca::fft
