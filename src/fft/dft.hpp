// O(n^2) discrete Fourier transform — the correctness reference for the
// fast transforms and the fallback for tiny sizes.
#pragma once

#include <complex>
#include <span>

namespace ca::fft {

using cplx = std::complex<double>;

/// out[k] = sum_n in[n] * exp(-+ 2*pi*i*k*n / N); inverse applies 1/N.
void dft(std::span<const cplx> in, std::span<cplx> out, bool inverse);

}  // namespace ca::fft
