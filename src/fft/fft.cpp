#include "fft/fft.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <vector>

#include "util/math.hpp"

namespace ca::fft {
namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_pow2(std::size_t n) {
  std::size_t m = 1;
  while (m < n) m <<= 1;
  return m;
}

}  // namespace

Plan::Plan(std::size_t n) : n_(n) {
  if (n == 0) throw std::invalid_argument("fft::Plan: n must be positive");
  pow2_ = is_pow2(n);
  m_ = pow2_ ? n : next_pow2(2 * n - 1);

  // Bit-reversal permutation for length m_.
  bitrev_.resize(m_);
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < m_) ++bits;
  for (std::size_t i = 0; i < m_; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < bits; ++b)
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (bits - 1 - b);
    bitrev_[i] = r;
  }

  // Forward twiddles W_m^k = exp(-2*pi*i*k/m) for k < m/2.
  twiddles_.resize(m_ / 2);
  for (std::size_t k = 0; k < m_ / 2; ++k) {
    const double angle =
        -2.0 * util::kPi * static_cast<double>(k) / static_cast<double>(m_);
    twiddles_[k] = cplx{std::cos(angle), std::sin(angle)};
  }

  if (!pow2_) {
    // Bluestein: x_k * chirp_k convolved with conj(chirp) kernel.
    chirp_.resize(n_);
    for (std::size_t k = 0; k < n_; ++k) {
      // k^2 mod 2n keeps the angle argument small and exact.
      const std::size_t k2 = (k * k) % (2 * n_);
      const double angle =
          -util::kPi * static_cast<double>(k2) / static_cast<double>(n_);
      chirp_[k] = cplx{std::cos(angle), std::sin(angle)};
    }
    std::vector<cplx> b(m_, cplx{0.0, 0.0});
    b[0] = std::conj(chirp_[0]);
    for (std::size_t k = 1; k < n_; ++k) {
      b[k] = std::conj(chirp_[k]);
      b[m_ - k] = std::conj(chirp_[k]);
    }
    radix2(b, /*inv=*/false);
    b_forward_ = std::move(b);
  }
}

void Plan::radix2(std::span<cplx> data, bool inv) const {
  const std::size_t m = m_;
  assert(data.size() == m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t r = bitrev_[i];
    if (i < r) std::swap(data[i], data[r]);
  }
  for (std::size_t len = 2; len <= m; len <<= 1) {
    const std::size_t stride = m / len;
    for (std::size_t base = 0; base < m; base += len) {
      for (std::size_t off = 0; off < len / 2; ++off) {
        cplx w = twiddles_[off * stride];
        if (inv) w = std::conj(w);
        const cplx u = data[base + off];
        const cplx t = data[base + off + len / 2] * w;
        data[base + off] = u + t;
        data[base + off + len / 2] = u - t;
      }
    }
  }
}

void Plan::transform(std::span<cplx> data, bool inv,
                     std::span<cplx> scratch) const {
  assert(data.size() == n_);
  if (pow2_) {
    radix2(data, inv);
    return;
  }
  // Bluestein.  The inverse transform of length n is the forward transform
  // with conjugated inputs/outputs: F^-1(x) = conj(F(conj(x)))/n, with the
  // 1/n applied by the caller (inverse()).
  assert(scratch.size() == m_);
  std::span<cplx> a = scratch;
  std::fill(a.begin(), a.end(), cplx{0.0, 0.0});
  if (inv) {
    for (std::size_t k = 0; k < n_; ++k)
      a[k] = std::conj(data[k]) * chirp_[k];
  } else {
    for (std::size_t k = 0; k < n_; ++k) a[k] = data[k] * chirp_[k];
  }
  radix2(a, /*inv=*/false);
  for (std::size_t k = 0; k < m_; ++k) a[k] *= b_forward_[k];
  radix2(a, /*inv=*/true);
  const double scale = 1.0 / static_cast<double>(m_);
  if (inv) {
    for (std::size_t k = 0; k < n_; ++k)
      data[k] = std::conj(a[k] * chirp_[k] * scale);
  } else {
    for (std::size_t k = 0; k < n_; ++k) data[k] = a[k] * chirp_[k] * scale;
  }
}

void Plan::forward(std::span<cplx> data) const {
  std::vector<cplx> scratch(scratch_size());
  transform(data, false, scratch);
}

void Plan::inverse(std::span<cplx> data) const {
  std::vector<cplx> scratch(scratch_size());
  inverse(data, scratch);
}

void Plan::forward(std::span<cplx> data, std::span<cplx> scratch) const {
  transform(data, false, scratch);
}

void Plan::inverse(std::span<cplx> data, std::span<cplx> scratch) const {
  transform(data, true, scratch);
  const double scale = 1.0 / static_cast<double>(n_);
  for (auto& v : data) v *= scale;
}

RealPlan::RealPlan(std::size_t n) : n_(n), half_(n / 2) {
  if (n < 2 || n % 2 != 0)
    throw std::invalid_argument("fft::RealPlan: n must be even and >= 2");
}

void RealPlan::forward(std::span<const double> input,
                       std::span<cplx> spectrum) const {
  std::vector<cplx> scratch(scratch_size());
  forward(input, spectrum, scratch);
}

void RealPlan::forward(std::span<const double> input,
                       std::span<cplx> spectrum,
                       std::span<cplx> scratch) const {
  assert(input.size() == n_);
  assert(spectrum.size() == n_ / 2 + 1);
  assert(scratch.size() == scratch_size());
  const std::size_t h = n_ / 2;
  std::span<cplx> z = scratch.first(h);
  for (std::size_t m = 0; m < h; ++m)
    z[m] = cplx{input[2 * m], input[2 * m + 1]};
  half_.forward(z, scratch.subspan(h));
  // Split: X[k] = E[k] + W^k O[k] with E/O recovered from Z and its
  // reflected conjugate.
  for (std::size_t k = 0; k <= h; ++k) {
    const cplx zk = z[k % h];
    const cplx zr = std::conj(z[(h - k) % h]);
    const cplx even = 0.5 * (zk + zr);
    const cplx odd = cplx{0.0, -0.5} * (zk - zr);
    const double angle =
        -2.0 * util::kPi * static_cast<double>(k) / static_cast<double>(n_);
    const cplx w{std::cos(angle), std::sin(angle)};
    spectrum[k] = even + w * odd;
  }
}

void RealPlan::inverse(std::span<const cplx> spectrum,
                       std::span<double> output) const {
  std::vector<cplx> scratch(scratch_size());
  inverse(spectrum, output, scratch);
}

void RealPlan::inverse(std::span<const cplx> spectrum,
                       std::span<double> output,
                       std::span<cplx> scratch) const {
  assert(spectrum.size() == n_ / 2 + 1);
  assert(output.size() == n_);
  assert(scratch.size() == scratch_size());
  const std::size_t h = n_ / 2;
  std::span<cplx> z = scratch.first(h);
  for (std::size_t k = 0; k < h; ++k) {
    const cplx xk = spectrum[k];
    const cplx xr = std::conj(spectrum[h - k]);
    const cplx even = 0.5 * (xk + xr);
    const double angle =
        2.0 * util::kPi * static_cast<double>(k) / static_cast<double>(n_);
    const cplx winv{std::cos(angle), std::sin(angle)};
    const cplx odd = 0.5 * winv * (xk - xr);
    z[k] = even + cplx{0.0, 1.0} * odd;
  }
  half_.inverse(z, scratch.subspan(h));
  for (std::size_t m = 0; m < h; ++m) {
    output[2 * m] = z[m].real();
    output[2 * m + 1] = z[m].imag();
  }
}

void fft(std::span<cplx> data, bool inverse) {
  Plan plan(data.size());
  if (inverse) {
    plan.inverse(data);
  } else {
    plan.forward(data);
  }
}

}  // namespace ca::fft
