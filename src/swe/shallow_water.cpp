#include "swe/shallow_water.hpp"

#include <cmath>
#include <stdexcept>

#include "core/exchange.hpp"
#include "fft/fft.hpp"
#include "util/math.hpp"

namespace ca::swe {
namespace {

constexpr int kHalo = 2;

/// Wrap/reflect boundary fills for one 2-D field.
void fill_boundaries_2d(const mesh::DomainDecomp& d,
                        util::Array2D<double>& f, bool antisymmetric) {
  const int nx = f.nx(), ny = f.ny();
  // Periodic x (the y decomposition keeps full circles).
  for (int j = -f.hy(); j < ny + f.hy(); ++j) {
    for (int dx = 1; dx <= f.hx(); ++dx) {
      f(-dx, j) = f(nx - dx, j);
      f(nx - 1 + dx, j) = f(dx - 1, j);
    }
  }
  if (d.at_north_pole()) {
    for (int dd = 1; dd <= f.hy(); ++dd)
      for (int i = -f.hx(); i < nx + f.hx(); ++i)
        f(i, -dd) = antisymmetric ? (dd == 1 ? 0.0 : -f(i, dd - 2))
                                  : f(i, dd - 1);
  }
  if (d.at_south_pole()) {
    if (antisymmetric)
      for (int i = -f.hx(); i < nx + f.hx(); ++i) f(i, ny - 1) = 0.0;
    for (int dd = 1; dd <= f.hy(); ++dd)
      for (int i = -f.hx(); i < nx + f.hx(); ++i)
        f(i, ny - 1 + dd) =
            antisymmetric ? -f(i, ny - 1 - dd) : f(i, ny - dd);
  }
}

}  // namespace

ShallowWaterCore::ShallowWaterCore(const SweConfig& config)
    : config_(config),
      mesh_(config.nx, config.ny, /*nz=*/1),
      decomp_(mesh_, {1, 1, 1}, {0, 0, 0}),
      tend_(make_state()),
      eta_(make_state()),
      mid_(make_state()) {}

ShallowWaterCore::ShallowWaterCore(const SweConfig& config,
                                   comm::Context& ctx, int py)
    : config_(config),
      mesh_(config.nx, config.ny, /*nz=*/1),
      decomp_(mesh_,
              {1, py, 1},
              [&] {
                if (ctx.world_size() != py)
                  throw std::invalid_argument(
                      "ShallowWaterCore: world size must equal py");
                return std::array<int, 3>{0, ctx.world_rank(), 0};
              }()),
      comm_ctx_(&ctx),
      topo_(comm::make_cart(ctx, ctx.world(), {1, py, 1},
                            {true, false, false})),
      tend_(make_state()),
      eta_(make_state()),
      mid_(make_state()) {}

SweState ShallowWaterCore::make_state() const {
  return SweState(decomp_.lnx(), decomp_.lny(), kHalo, kHalo);
}

void ShallowWaterCore::initialize(SweState& s, SweInitial kind) const {
  const double g = util::kGravity;
  const double H = config_.mean_depth;
  const double a = mesh_.radius();
  const double u0 = 25.0;
  for (int j = -kHalo; j < decomp_.lny() + kHalo; ++j) {
    const int gj = decomp_.gj(j);
    if (gj < -kHalo || gj >= mesh_.ny() + kHalo) continue;
    const double theta =
        std::min(std::max(mesh_.theta(gj), 0.0), util::kPi);
    for (int i = 0; i < decomp_.lnx(); ++i) {
      const double lambda = mesh_.lambda(i);
      switch (kind) {
        case SweInitial::kRest:
          s.h(i, j) = H;
          s.u(i, j) = 0.0;
          s.v(i, j) = 0.0;
          break;
        case SweInitial::kGeostrophicJet: {
          // u = u0 sin^2(theta); the balanced height satisfies
          // g dh/d(theta) = +(2 Omega cos(theta) u + u^2 cot(theta)/a) a
          // (colatitude convention); integrate analytically for the
          // 2*Omega term and approximate the metric term (small).
          const double st = std::sin(theta);
          s.u(i, j) = u0 * st * st;
          // Steady v-momentum: g dh/dtheta = -2 Omega cos(theta) u a
          // (v positive southward); integral of cos sin^2 = sin^3/3.
          const double omega_a = 2.0 * util::kOmega * a * u0;
          s.h(i, j) = H - (omega_a / g) * (st * st * st / 3.0);
          s.v(i, j) = 0.0;
          break;
        }
        case SweInitial::kRossbyHaurwitz: {
          // Williamson et al. (1992) test 6, wavenumber R = 4, in
          // colatitude convention (phi = pi/2 - theta, cos(phi) =
          // sin(theta)).
          const int R = 4;
          const double w = 7.848e-6, K = 7.848e-6;
          const double A2 = util::kOmega;
          const double cphi = std::sin(theta);   // cos(latitude)
          const double sphi = std::cos(theta);   // sin(latitude)
          const double cR = std::pow(cphi, R);
          s.u(i, j) = a * w * cphi +
                      a * K * cR / std::max(cphi, 1e-12) *
                          (R * sphi * sphi - cphi * cphi) *
                          std::cos(R * lambda);
          // v = -a K R cos^{R-1} sin(phi) sin(R lambda); our v is positive
          // TOWARD THE SOUTH POLE (increasing theta), i.e. -d(phi)/dt.
          s.v(i, j) = a * K * R * std::pow(cphi, R - 1) * sphi *
                      std::sin(R * lambda);
          // Height: full Williamson A/B/C coefficients (a^2 folded in).
          const double gA =
              a * a * (0.5 * w * (2.0 * A2 + w) * cphi * cphi +
                       0.25 * K * K * std::pow(cphi, 2 * R) *
                           ((R + 1.0) * cphi * cphi +
                            (2.0 * R * R - R - 2.0) -
                            2.0 * R * R / std::max(cphi * cphi, 1e-12)));
          const double gB = 2.0 * (A2 + w) * K / ((R + 1.0) * (R + 2.0)) *
                            a * a * cR *
                            ((R * R + 2.0 * R + 2.0) -
                             std::pow(R + 1.0, 2) * cphi * cphi);
          const double gC = 0.25 * K * K * a * a * std::pow(cphi, 2 * R) *
                            ((R + 1.0) * cphi * cphi - (R + 2.0));
          s.h(i, j) = H + (gA + gB * std::cos(R * lambda) +
                           gC * std::cos(2.0 * R * lambda)) /
                              util::kGravity;
          break;
        }
        case SweInitial::kGravityWave: {
          const double dl = std::cos(lambda) * std::sin(theta);
          const double bump =
              200.0 * std::exp(-20.0 * (1.0 - dl) - 4.0 *
                               std::pow(std::cos(theta), 2));
          s.h(i, j) = H + bump;
          s.u(i, j) = 0.0;
          s.v(i, j) = 0.0;
          break;
        }
      }
    }
  }
}

void ShallowWaterCore::refresh_halos(SweState& s) {
  if (comm_ctx_ != nullptr && decomp_.dims()[1] > 1) {
    core::HaloExchanger ex(*comm_ctx_, topo_, decomp_);
    std::vector<core::ExchangeItem> items{
        {nullptr, &s.h, 0, kHalo, 0},
        {nullptr, &s.u, 0, kHalo, 0},
        {nullptr, &s.v, 0, kHalo, 0}};
    ex.exchange(items, "swe");
  }
  fill_boundaries_2d(decomp_, s.h, false);
  fill_boundaries_2d(decomp_, s.u, false);
  fill_boundaries_2d(decomp_, s.v, true);
}

void ShallowWaterCore::tendency(SweState& s, SweState& tend) {
  refresh_halos(s);
  const double g = util::kGravity;
  const double a = mesh_.radius();
  const double dl = mesh_.dlambda();
  const double dt = mesh_.dtheta();
  const int lnx = decomp_.lnx(), lny = decomp_.lny();

  for (int j = 0; j < lny; ++j) {
    const int gj = decomp_.gj(j);
    const double st = mesh_.sin_theta(gj);
    const double svn = mesh_.sin_theta_v(gj - 1);
    const double svs = mesh_.sin_theta_v(gj);
    const double f_u = 2.0 * util::kOmega * mesh_.cos_theta(gj);
    for (int i = 0; i < lnx; ++i) {
      // --- continuity: dh/dt = -div(h v) (C-grid flux form) ---
      const double flux_w = s.u(i, j) * 0.5 * (s.h(i - 1, j) + s.h(i, j));
      const double flux_e =
          s.u(i + 1, j) * 0.5 * (s.h(i, j) + s.h(i + 1, j));
      const double flux_n = s.v(i, j - 1) * svn * 0.5 *
                            (s.h(i, j - 1) + s.h(i, j));
      const double flux_s =
          s.v(i, j) * svs * 0.5 * (s.h(i, j) + s.h(i, j + 1));
      tend.h(i, j) =
          -((flux_e - flux_w) / dl + (flux_s - flux_n) / dt) / (a * st);

      // --- u momentum at (i-1/2, j) ---
      const double dhdx = (s.h(i, j) - s.h(i - 1, j)) / (a * st * dl);
      const double v_at_u = 0.25 * (s.v(i - 1, j - 1) + s.v(i, j - 1) +
                                    s.v(i - 1, j) + s.v(i, j));
      const double dudx =
          (s.u(i + 1, j) - s.u(i - 1, j)) / (2.0 * a * st * dl);
      const double dudy = (s.u(i, j + 1) - s.u(i, j - 1)) / (2.0 * a * dt);
      const double u_adv = s.u(i, j) * dudx + v_at_u * dudy;
      // du/dt = -f v (v positive southward).
      tend.u(i, j) = -f_u * v_at_u - g * dhdx - u_adv;

      // --- v momentum at (i, j+1/2) ---
      const double sv = mesh_.sin_theta_v(gj);
      if (sv < 1e-12) {
        tend.v(i, j) = 0.0;  // pole edge: flux pinned to zero
      } else {
        const double dhdy = (s.h(i, j + 1) - s.h(i, j)) / (a * dt);
        const double u_at_v = 0.25 * (s.u(i, j) + s.u(i + 1, j) +
                                      s.u(i, j + 1) + s.u(i + 1, j + 1));
        const double f_v =
            util::kOmega * (mesh_.cos_theta(gj) + mesh_.cos_theta(gj + 1));
        const double dvdx =
            (s.v(i + 1, j) - s.v(i - 1, j)) / (2.0 * a * sv * dl);
        const double dvdy = (s.v(i, j + 1) - s.v(i, j - 1)) / (2.0 * a * dt);
        const double v_adv = u_at_v * dvdx + s.v(i, j) * dvdy;
        // dv/dt = +f u in the southward-v convention.
        tend.v(i, j) = f_v * u_at_v - g * dhdy - v_adv;
      }
    }
  }
  apply_polar_filter(tend);
}

void ShallowWaterCore::apply_polar_filter(SweState& tend) {
  const int nx = mesh_.nx();
  const double aspect = static_cast<double>(nx) / (2.0 * mesh_.ny());
  fft::Plan plan(static_cast<std::size_t>(nx));
  std::vector<fft::cplx> line(static_cast<std::size_t>(nx));
  auto filter_row = [&](util::Array2D<double>& f, int j, double st) {
    for (int i = 0; i < nx; ++i)
      line[static_cast<std::size_t>(i)] = fft::cplx{f(i, j), 0.0};
    plan.forward(line);
    for (int m = 1; m < nx; ++m) {
      const int m_eff = std::min(m, nx - m);
      const double smn = std::sin(util::kPi * m_eff / nx);
      const double damp = std::min(1.0, st * aspect / smn);
      line[static_cast<std::size_t>(m)] *= damp;
    }
    plan.inverse(line);
    for (int i = 0; i < nx; ++i)
      f(i, j) = line[static_cast<std::size_t>(i)].real();
  };
  for (int j = 0; j < decomp_.lny(); ++j) {
    const int gj = decomp_.gj(j);
    const double theta = mesh_.theta(gj);
    if (theta > config_.filter_band &&
        theta < util::kPi - config_.filter_band)
      continue;
    const double st = mesh_.sin_theta(gj);
    filter_row(tend.h, j, st);
    filter_row(tend.u, j, st);
    filter_row(tend.v, j, st);
  }
}

void ShallowWaterCore::lincomb(SweState& out, const SweState& a, double c,
                               const SweState& b) const {
  for (int j = 0; j < decomp_.lny(); ++j)
    for (int i = 0; i < decomp_.lnx(); ++i) {
      out.h(i, j) = a.h(i, j) + c * b.h(i, j);
      out.u(i, j) = a.u(i, j) + c * b.u(i, j);
      out.v(i, j) = a.v(i, j) + c * b.v(i, j);
    }
}

void ShallowWaterCore::step(SweState& s) {
  const double dt = config_.dt;
  tendency(s, tend_);
  lincomb(eta_, s, dt, tend_);
  tendency(eta_, tend_);
  lincomb(eta_, s, dt, tend_);
  for (int j = 0; j < decomp_.lny(); ++j)
    for (int i = 0; i < decomp_.lnx(); ++i) {
      mid_.h(i, j) = 0.5 * (s.h(i, j) + eta_.h(i, j));
      mid_.u(i, j) = 0.5 * (s.u(i, j) + eta_.u(i, j));
      mid_.v(i, j) = 0.5 * (s.v(i, j) + eta_.v(i, j));
    }
  tendency(mid_, tend_);
  lincomb(s, s, dt, tend_);
}

void ShallowWaterCore::run(SweState& s, int steps) {
  for (int n = 0; n < steps; ++n) step(s);
}

double ShallowWaterCore::local_mass(const SweState& s) const {
  double mass = 0.0;
  for (int j = 0; j < decomp_.lny(); ++j) {
    const double area = mesh_.cell_area(decomp_.gj(j));
    for (int i = 0; i < decomp_.lnx(); ++i) mass += s.h(i, j) * area;
  }
  return mass;
}

double ShallowWaterCore::local_energy(const SweState& s) const {
  double e = 0.0;
  for (int j = 0; j < decomp_.lny(); ++j) {
    const double area = mesh_.cell_area(decomp_.gj(j));
    for (int i = 0; i < decomp_.lnx(); ++i) {
      const double ke = 0.5 * s.h(i, j) *
                        (s.u(i, j) * s.u(i, j) + s.v(i, j) * s.v(i, j));
      const double pe = 0.5 * util::kGravity * s.h(i, j) * s.h(i, j);
      e += (ke + pe) * area;
    }
  }
  return e;
}

double ShallowWaterCore::zonal_phase(const SweState& s, int j, int m) const {
  double cs = 0.0, sn = 0.0;
  const int nx = mesh_.nx();
  for (int i = 0; i < nx; ++i) {
    const double ang = 2.0 * util::kPi * m * i / nx;
    cs += s.h(i, j) * std::cos(ang);
    sn += s.h(i, j) * std::sin(ang);
  }
  return std::atan2(sn, cs);
}

double ShallowWaterCore::max_abs_velocity(const SweState& s) const {
  double m = 0.0;
  for (int j = 0; j < decomp_.lny(); ++j)
    for (int i = 0; i < decomp_.lnx(); ++i)
      m = std::max({m, std::abs(s.u(i, j)), std::abs(s.v(i, j))});
  return m;
}

}  // namespace ca::swe
