// Shallow-water equations on the rotating sphere — the "standard
// atmosphere model with a simple form" the paper's related work uses as a
// scalability test bed (Section 2.2).  Built entirely on this library's
// substrates (lat-lon mesh, C-grid staggering, halo exchange, Fourier
// polar filtering), it doubles as an end-to-end exercise of the public
// API with independent physics.
//
// Flux-form equations (h: fluid depth, u/v: velocities; colatitude theta):
//   dh/dt = -div(h v)
//   du/dt = +f v - g d(h)/dx_eff - advection(u)
//   dv/dt = -f u - g d(h)/dy     - advection(v)
// with f = 2 Omega cos(theta), C-grid staggering (h at centers, u west,
// v south), 2nd-order differences, zero meridional flux at the poles,
// Fourier filtering of the tendencies near the poles, and the same
// 3-sub-step nonlinear integrator as the dynamical core.
#pragma once

#include <functional>

#include "comm/topology.hpp"
#include "mesh/decomp.hpp"
#include "mesh/latlon.hpp"
#include "util/array3d.hpp"

namespace ca::swe {

struct SweConfig {
  int nx = 64;
  int ny = 32;
  double dt = 120.0;          ///< time step [s]
  double mean_depth = 8000.0; ///< resting depth H [m]
  double filter_band = 1.0;   ///< polar filter band [rad from pole]
};

/// The prognostic fields of one rank's block (2-D, with halos).
struct SweState {
  util::Array2D<double> h, u, v;

  SweState() = default;
  SweState(int lnx, int lny, int halo_x, int halo_y)
      : h(lnx, lny, halo_x, halo_y),
        u(lnx, lny, halo_x, halo_y),
        v(lnx, lny, halo_x, halo_y) {}
};

enum class SweInitial {
  kRest,             ///< h = H, no flow (exact fixed point)
  kGeostrophicJet,   ///< zonal jet balanced by a height gradient
  kGravityWave,      ///< localized height bump (radiating waves)
  kRossbyHaurwitz,   ///< wavenumber-4 Rossby-Haurwitz wave (Williamson
                     ///< test 6): the pattern propagates eastward at a
                     ///< known angular speed without changing shape
};

class ShallowWaterCore {
 public:
  /// Serial construction (single block).
  explicit ShallowWaterCore(const SweConfig& config);
  /// Distributed construction over a y decomposition ({1, py, 1}).
  ShallowWaterCore(const SweConfig& config, comm::Context& ctx, int py);

  SweState make_state() const;
  void initialize(SweState& s, SweInitial kind) const;
  void step(SweState& s);
  void run(SweState& s, int steps);

  const mesh::LatLonMesh& mesh() const { return mesh_; }
  const mesh::DomainDecomp& decomp() const { return decomp_; }

  /// Global area integral of h (total mass / density) — conserved by the
  /// flux form.  Local contribution; sum across ranks for the global.
  double local_mass(const SweState& s) const;
  /// Phase [rad] of the zonal wavenumber-m height component on the local
  /// row j (full circles required): tracks Rossby-Haurwitz propagation.
  double zonal_phase(const SweState& s, int j, int m) const;
  /// Local contribution to the total energy 0.5 h (u^2+v^2) + 0.5 g h^2.
  double local_energy(const SweState& s) const;
  double max_abs_velocity(const SweState& s) const;

  /// Exchanges/refills every halo of s (public so tests can prepare
  /// states).
  void refresh_halos(SweState& s);

 private:
  void tendency(SweState& s, SweState& tend);
  void apply_polar_filter(SweState& tend);
  void lincomb(SweState& out, const SweState& a, double c,
               const SweState& b) const;

  SweConfig config_;
  mesh::LatLonMesh mesh_;
  mesh::DomainDecomp decomp_;
  comm::Context* comm_ctx_ = nullptr;
  comm::CartTopology topo_;
  SweState tend_, eta_, mid_;
};

}  // namespace ca::swe
