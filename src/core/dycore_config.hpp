// Run configuration shared by the serial, original, and
// communication-avoiding dynamical-core drivers.
#pragma once

#include "comm/collectives.hpp"
#include "ops/context.hpp"

namespace ca::core {

enum class DecompScheme {
  kXY,   ///< dims {px, py, 1}: F distributed along x, C local
  kYZ,   ///< dims {1, py, pz}: F local, C collective along z
  k3D,   ///< dims {px, py, pz}: both F and C distributed (the scheme the
         ///< paper notes is "always less efficient" than 2-D in practice)
};

struct DycoreConfig {
  int nx = 36;
  int ny = 18;
  int nz = 8;
  /// Number of nonlinear iterations of the adaptation process per step.
  int M = 3;
  /// Adaptation sub-step dt1 [s] (dt1 << dt2).
  double dt_adapt = 60.0;
  /// Advection step dt2 [s].
  double dt_advect = 360.0;
  /// Vertically stretched sigma levels instead of uniform.
  bool stretched_levels = false;
  ops::ModelParams params;
  /// Allreduce algorithm for the z-line collectives (kLinearOrdered gives
  /// bitwise-deterministic sums for equivalence tests).
  comm::AllreduceAlgorithm z_allreduce = comm::AllreduceAlgorithm::kAuto;
  /// Coalesce all halo-exchange items bound for one neighbor into a single
  /// message (config key comm.coalesce_exchange).  Off by default: the
  /// per-(neighbor, item) granularity is what the paper's message counts
  /// describe.  Both modes produce bitwise-identical halos.
  bool coalesce_exchange = false;
  /// Overlap halo communication with computation (config key
  /// comm.overlap_exchange, env CA_AGCM_COMM_OVERLAP_EXCHANGE): posts the
  /// exchange at the start of a stencil pass, evaluates the halo-independent
  /// interior while messages are in flight, then completes only the faces
  /// each boundary sub-range reads.  Off by default so the paper's message
  /// counts and the bitwise baselines stay the reference; on and off
  /// produce bitwise-identical states (the interior/boundary split is an
  /// exact partition of every update window).  Composes with
  /// coalesce_exchange and with fault plans.
  bool overlap_exchange = false;
};

/// Algorithm switches of the communication-avoiding core (see
/// core/ca_core.hpp).  Lives here, beside DycoreConfig, so the service's
/// JobSpec can carry per-job CA options without pulling in the whole
/// core.
struct CAOptions {
  /// Reuse the previous C products in the first update of each iteration
  /// (off = fresh C everywhere: 3 collectives per iteration, for the
  /// ablation benchmarks).
  bool approximate_iteration = true;
  /// Split the exchange around the inner computation (off = blocking
  /// exchange before any computation).
  bool overlap = true;
  /// Fuse the split smoothing into the adaptation exchange (off = a
  /// separate exchange for the smoothing, like the original algorithm).
  bool fuse_smoothing = true;
  /// Evaluate the fresh C collectives on the BLOCK face only (the paper's
  /// scheme: collective volume exactly 2/3 of the original; the extended
  /// windows' halo rows keep the exchanged stale C products, an error of
  /// the same class as the approximate iteration).  Off = collectives on
  /// the full extended faces: larger volume, but the algorithm becomes
  /// bitwise invariant to the y split (used by the equivalence tests and
  /// by jobs that must stay bitwise across a degraded-pool reshard; a
  /// pz change still regroups the z-collective sums — round-off class).
  bool fresh_c_on_block_face = true;
};

/// Halo layout for a core whose exchange covers D stencil updates
/// (D = 1 for the original per-update exchange, D = 3M for the
/// communication-avoiding adaptation phase).
inline state::StateHalo halos_for_depth(int depth) {
  state::StateHalo h;
  // y needs one extra layer beyond the exchange-covered updates: the
  // divergence on the face ring reads V one row past the deepest window.
  h.h3 = util::Halo3{3, std::max(depth + 1, 2), std::max(depth, 1)};
  h.hx2 = 3;
  h.hy2 = depth + 2;
  return h;
}

}  // namespace ca::core
