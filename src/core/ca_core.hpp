// The communication-avoiding algorithm (Algorithm 2) under the Y-Z
// decomposition:
//   - F~ is communication-free (p_x = 1, Theorem 4.1's eta_x = 0 choice);
//   - ONE deep halo exchange covers all 3M adaptation stencil updates
//     (redundant computation on shrinking extended windows) and carries
//     the fused smoothing data: post-S1 rows for the stencils plus the
//     pre-smoothing boundary rows the neighbor's later smoothing S2 needs;
//   - the exchange is split into begin/compute-inner/finish/compute-outer
//     to overlap communication with computation;
//   - the approximate nonlinear iteration (eq. 13) reuses the previous C
//     products in the first update of every iteration, cutting the z-line
//     collectives from 3 to 2 per iteration;
//   - ONE more exchange covers the 3 advection updates.
// Total: 2 neighbor communications per step instead of 3M + 4.
#pragma once

#include <functional>
#include <string>

#include "comm/topology.hpp"
#include "core/dycore_config.hpp"
#include "core/exchange.hpp"
#include "mesh/decomp.hpp"
#include "mesh/latlon.hpp"
#include "mesh/sigma.hpp"
#include "ops/filter.hpp"
#include "ops/tendency.hpp"
#include "state/initial.hpp"
#include "state/state.hpp"
#include "state/stratification.hpp"
#include "util/checkpoint.hpp"

namespace ca::core {

// CAOptions lives in core/dycore_config.hpp (so the service's JobSpec
// can carry it without this header's comm/ops dependencies).

class CACore {
 public:
  /// Collective over ctx.world(); dims must be {1, py, pz}.
  CACore(const DycoreConfig& config, comm::Context& ctx,
         std::array<int, 3> dims, const CAOptions& options = {});

  void step(state::State& xi);
  void run(state::State& xi, int n);

  state::State make_state() const;
  void initialize(state::State& xi, const state::InitialOptions& options);

  const DycoreConfig& config() const { return config_; }
  const state::Stratification& strat() const { return strat_; }
  const mesh::DomainDecomp& decomp() const { return decomp_; }
  const ops::OpContext& op_context() const { return opctx_; }
  /// Installs a terrain field (see state::make_terrain); the caller keeps
  /// it alive for the core's lifetime.  Null restores a flat surface.
  void set_terrain(const util::Array2D<double>* phi_surface) {
    opctx_.phi_surface = phi_surface;
  }
  const comm::CartTopology& topology() const { return topo_; }
  const CAOptions& options() const { return options_; }
  /// Halo-exchange engine and polar filter (read-only; exposed so tests
  /// and the wall-clock bench can inspect message counts and workspace
  /// reuse counters).
  const HaloExchanger& exchanger() const { return exchanger_; }
  const ops::FourierFilter& filter() const { return filter_; }

  /// Halo depth of the adaptation exchange (y direction).
  int adaptation_depth() const { return 3 * config_.M + 1; }

  /// Diagnostic workspace (read-only; exposed for tests).
  const ops::DiagWorkspace& workspace() const { return ws_; }

  /// Applies the deferred smoothing of the last step (Algorithm 2 line
  /// 30); run() calls this automatically after its steps.
  void finalize(state::State& xi);

  /// Restart halo refresh (same hook the runner probes on OriginalCore).
  /// The CA step's own deep exchanges re-send every neighbor halo row it
  /// reads, so a restart only needs the physical/periodic boundary fill;
  /// `phase` is accepted for signature parity and ignored.
  void refresh_halos(state::State& s, const std::string& phase);

  // --- checkpoint v3 core-carry (see util/checkpoint.hpp) -------------
  // Algorithm 2's whole point is cross-step state: the final smoothing of
  // a step is deferred into the next one (line 30), and the approximate
  // nonlinear iteration (eq. 13) reuses the previous step's C products.
  // That state lives outside the prognostic fields, so a bitwise resume
  // must carry it alongside the checkpointed interiors:
  //   - step_count_ (gates the deferred smoothing of the resumed step)
  //     and have_stale_c_ (gates the stale-C fast path),
  //   - the stale C products and column anchors in the DiagWorkspace
  //     (full arrays, halos included: the resumed step's overlapped inner
  //     update reads them before any exchange refreshes them),
  //   - the pre-smoothing rows of pre_ (phi and p'_sa — the components
  //     the later smoothing S2 reads).
  // run_campaign detects these hooks with `requires` (like finalize /
  // refresh_halos) and saves/restores the blob with each checkpoint.
  //
  // The carry is written in the self-describing *reshardable* layout of
  // util::kReshardableCarryMagic: every field travels with its global
  // extents, halo depths, and block origin, so a degraded-pool
  // util::reshard_checkpoints can redistribute it across a new Y-Z
  // decomposition without knowing this core.  The column anchors
  // (own/base/total) are decomposition-dependent values, but every
  // stale evaluation reads only ws_.vert, and every fresh evaluation
  // recomputes the anchors through the z-line collectives before any
  // read — so geometric redistribution preserves the resumed
  // trajectory (bitwise for same-pz reshards with fresh_c_on_block_face
  // off; a pz change regroups the z-collective partial sums).  The
  // declared minimum block extents (3M + 1 in y, 3 in z) make a
  // genuinely unrepresentable reshard fail loudly in util::.

  /// Serializes the cross-step carry state into `w`.
  void save_carry(util::CarryWriter& w) const;
  /// Restores state saved by save_carry on an identically configured
  /// core.  Throws std::runtime_error on a magic/version/shape mismatch.
  void restore_carry(util::CarryReader& r);

  /// Test/debug hook: called after every internal update with a label and
  /// the state holding that update's result.
  std::function<void(const char*, const state::State&)> debug_observer;

 private:
  enum class Operator { kAdaptation, kAdvection };

  /// Extended update window: the interior grown by ey/ez toward sides
  /// that have actual neighbors (physical boundaries are handled by BC
  /// fills instead).
  mesh::Box extended_window(int ey, int ez) const;
  void fill_boundaries(state::State& s);
  /// Evaluates the filtered tendency of `op` at `input` on `window` into
  /// tend_.  fresh_c runs the two z-line collectives and records the
  /// column anchors; otherwise the stale anchors are reused (eq. 13).
  void eval_tendency(state::State& input, const mesh::Box& window,
                     Operator op, bool fresh_c);

  DycoreConfig config_;
  CAOptions options_;
  comm::Context* comm_ctx_;
  mesh::LatLonMesh mesh_;
  mesh::SigmaLevels levels_;
  state::Stratification strat_;
  comm::CartTopology topo_;
  mesh::DomainDecomp decomp_;
  ops::OpContext opctx_;
  ops::FourierFilter filter_;
  ops::DiagWorkspace ws_;
  HaloExchanger exchanger_;
  state::State tend_, eta_, mid_, pre_;
  bool have_stale_c_ = false;
  int step_count_ = 0;
};

}  // namespace ca::core
