#include "core/serial_core.hpp"

#include "core/exchange.hpp"
#include "ops/adaptation.hpp"
#include "ops/advection.hpp"
#include "ops/smoothing.hpp"
#include "ops/subrange.hpp"

namespace ca::core {
namespace {

mesh::SigmaLevels make_levels(const DycoreConfig& c) {
  return c.stretched_levels ? mesh::SigmaLevels::stretched(c.nz)
                            : mesh::SigmaLevels::uniform(c.nz);
}

}  // namespace

SerialCore::SerialCore(const DycoreConfig& config)
    : config_(config),
      mesh_(config.nx, config.ny, config.nz),
      levels_(make_levels(config)),
      strat_(levels_),
      decomp_(mesh_, {1, 1, 1}, {0, 0, 0}),
      opctx_{&mesh_, &levels_, &strat_, &decomp_, config.params},
      filter_(opctx_),
      ws_(config.nx, config.ny, config.nz, halos_for_depth(1)),
      tend_(make_state()),
      eta_(make_state()),
      mid_(make_state()) {}

state::State SerialCore::make_state() const {
  return state::State(config_.nx, config_.ny, config_.nz,
                      halos_for_depth(1));
}

void SerialCore::initialize(state::State& xi,
                            const state::InitialOptions& options) {
  state::initialize(xi, mesh_, levels_, strat_, decomp_, options);
  fill_boundaries(xi);
}

void SerialCore::fill_boundaries(state::State& s) const {
  apply_physical_boundaries(opctx_, s, s.u().halo().x, s.u().halo().y,
                            s.u().halo().z);
}

void SerialCore::adaptation_tendency(state::State& xi, state::State& tend) {
  const mesh::Box window = xi.interior();
  if (config_.overlap_exchange) {
    // Serial analogue of the interior/boundary split: there is no message
    // to hide, but the flag routes every core through the same split
    // passes so overlap-on vs off equivalence pins the geometry itself.
    // The interior LocalDiag runs before the boundary fill (it reads
    // owned cells only, which the fill never writes), boundary sub-ranges
    // after it.
    const mesh::Box inner = ops::shrink_window(window, 4, 4, 0);
    ops::compute_local_diag(opctx_, xi, inner, ws_);
    fill_boundaries(xi);
    for (const mesh::Box& b : ops::subtract_box(window, inner))
      ops::compute_local_diag(opctx_, xi, b, ws_);
    compute_vert_diagnostics(opctx_, nullptr, nullptr, xi, window, ws_,
                             config_.z_allreduce, "serial");
  } else {
    fill_boundaries(xi);
    compute_diagnostics(opctx_, nullptr, nullptr, xi, window, ws_,
                        /*stale_vert=*/false, config_.z_allreduce, "serial");
  }
  ops::apply_adaptation(opctx_, xi, ws_.local, ws_.vert, tend, window);
  filter_.apply_local(opctx_, tend, window);
}

void SerialCore::advection_tendency(state::State& xi, state::State& tend) {
  const mesh::Box window = xi.interior();
  // L~ is a pure stencil operator (paper Section 3): pes/pfac refresh
  // locally, sigma-dot is the field the adaptation process's C produced.
  if (config_.overlap_exchange) {
    const mesh::Box inner = ops::shrink_window(window, 4, 4, 2);
    ops::compute_local_diag(opctx_, xi, inner, ws_);
    ops::apply_advection(opctx_, xi, ws_.local, ws_.vert, tend, inner);
    fill_boundaries(xi);
    for (const mesh::Box& b : ops::subtract_box(window, inner)) {
      ops::compute_local_diag(opctx_, xi, b, ws_);
      ops::apply_advection(opctx_, xi, ws_.local, ws_.vert, tend, b);
    }
  } else {
    fill_boundaries(xi);
    compute_diagnostics(opctx_, nullptr, nullptr, xi, window, ws_,
                        /*stale_vert=*/true, config_.z_allreduce, "serial");
    ops::apply_advection(opctx_, xi, ws_.local, ws_.vert, tend, window);
  }
  filter_.apply_local(opctx_, tend, window);
}

void SerialCore::step(state::State& xi) {
  const mesh::Box interior = xi.interior();
  const double dt1 = config_.dt_adapt;
  const double dt2 = config_.dt_advect;

  // Adaptation process: M nonlinear iterations of 3 internal updates.
  for (int iter = 0; iter < config_.M; ++iter) {
    adaptation_tendency(xi, tend_);
    eta_.add_scaled(xi, dt1, tend_, interior);  // eta1

    adaptation_tendency(eta_, tend_);
    eta_.add_scaled(xi, dt1, tend_, interior);  // eta2

    mid_.average(xi, eta_, interior);
    adaptation_tendency(mid_, tend_);
    xi.add_scaled(xi, dt1, tend_, interior);  // psi^i = eta3
  }

  // Advection process: one nonlinear iteration.
  advection_tendency(xi, tend_);
  eta_.add_scaled(xi, dt2, tend_, interior);  // zeta1

  advection_tendency(eta_, tend_);
  eta_.add_scaled(xi, dt2, tend_, interior);  // zeta2

  mid_.average(xi, eta_, interior);
  advection_tendency(mid_, tend_);
  xi.add_scaled(xi, dt2, tend_, interior);  // zeta3

  // Smoothing.
  if (config_.overlap_exchange) {
    const mesh::Box inner = ops::shrink_window(interior, 2, 2, 0);
    ops::apply_smoothing(opctx_, xi, eta_, inner);
    fill_boundaries(xi);
    for (const mesh::Box& b : ops::subtract_box(interior, inner))
      ops::apply_smoothing(opctx_, xi, eta_, b);
  } else {
    fill_boundaries(xi);
    ops::apply_smoothing(opctx_, xi, eta_, interior);
  }
  xi.assign(eta_, interior);
  fill_boundaries(xi);
}

void SerialCore::run(state::State& xi, int n) {
  for (int s = 0; s < n; ++s) step(xi);
}

}  // namespace ca::core
