// Campaign driver: the operational loop long runs need — time stepping
// with optional Held-Suarez forcing, periodic global diagnostics, and
// periodic checkpointing — factored out of the examples into a reusable,
// core-agnostic template (works with SerialCore, OriginalCore, CACore).
#pragma once

#include <functional>
#include <string>

#include "comm/context.hpp"
#include "core/diagnostics.hpp"
#include "mesh/latlon.hpp"
#include "physics/held_suarez.hpp"
#include "util/checkpoint.hpp"

namespace ca::core {

struct CampaignOptions {
  int steps = 0;
  /// Emit diagnostics every N steps (0 = never); delivered through
  /// on_diagnostics on every rank (rank 0 carries the global values when
  /// a comm context is present).
  int diag_every = 0;
  std::function<void(int step, const GlobalDiag&)> on_diagnostics;
  /// Write a checkpoint every N steps (0 = never) under this prefix.
  int checkpoint_every = 0;
  std::string checkpoint_prefix = "campaign";
  /// Optional physics applied after each dynamical step.
  const physics::HeldSuarezForcing* forcing = nullptr;
  double forcing_dt = 0.0;  ///< defaults to the core's dt_advect
};

/// Runs the campaign; returns the number of steps executed.  `comm_ctx`
/// may be null for serial cores (diagnostics are then block-local).
/// Checkpoints record the raw prognostic state; for the CA core that
/// state still carries the deferred final smoothing, which a restarted
/// CA run applies on its next step — restart transparency holds as long
/// as the same core type resumes the run.
template <typename Core>
int run_campaign(Core& core, comm::Context* comm_ctx, state::State& xi,
                 const CampaignOptions& options) {
  const mesh::LatLonMesh mesh(core.config().nx, core.config().ny,
                              core.config().nz);
  const double fdt = options.forcing_dt > 0.0 ? options.forcing_dt
                                              : core.config().dt_advect;
  for (int step = 1; step <= options.steps; ++step) {
    core.step(xi);
    if (options.forcing != nullptr) options.forcing->apply(xi, fdt);

    if (options.diag_every > 0 && step % options.diag_every == 0 &&
        options.on_diagnostics) {
      GlobalDiag d = local_diagnostics(core.op_context(), xi);
      if (comm_ctx != nullptr)
        d = reduce_diagnostics(*comm_ctx, comm_ctx->world(), d);
      options.on_diagnostics(step, d);
    }

    if (options.checkpoint_every > 0 &&
        step % options.checkpoint_every == 0) {
      const int rank = comm_ctx != nullptr ? comm_ctx->world_rank() : 0;
      util::write_checkpoint(
          util::checkpoint_path(options.checkpoint_prefix, rank), mesh,
          core.decomp(), xi, step, step * core.config().dt_advect);
    }
  }
  return options.steps;
}

}  // namespace ca::core
