// Campaign driver: the operational loop long runs need — time stepping
// with optional Held-Suarez forcing, periodic global diagnostics, and
// periodic checkpointing — factored out of the examples into a reusable,
// core-agnostic template (works with SerialCore, OriginalCore, CACore).
//
// A campaign can resume a checkpointed run (start_step / start time
// forwarding) and can yield cooperatively at checkpoint boundaries, which
// is what the ensemble service's preemption rides on: a preempted job
// stops at its last checkpoint and a later campaign continues from it
// with identical step numbering and checkpoint cadence.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/context.hpp"
#include "core/diagnostics.hpp"
#include "core/health.hpp"
#include "mesh/latlon.hpp"
#include "physics/held_suarez.hpp"
#include "util/checkpoint.hpp"

namespace ca::core {

struct CampaignOptions {
  /// Target absolute step count: the campaign runs steps
  /// start_step + 1 .. steps (inclusive).
  int steps = 0;
  /// Resume offset: the number of steps an earlier campaign already
  /// executed (a restarted run passes the checkpoint header's `step`).
  /// Step numbering, diagnostics cadence, and checkpoint cadence all use
  /// the absolute step, so a resumed run is indistinguishable from an
  /// uninterrupted one.
  int start_step = 0;
  /// Model time at start_step [s]; negative derives it as
  /// start_step * dt_advect (a restarted run passes the header's
  /// `time_seconds` so forwarded time survives dt changes).
  double start_time_seconds = -1.0;
  /// Emit diagnostics every N steps (0 = never); delivered through
  /// on_diagnostics on every rank (rank 0 carries the global values when
  /// a comm context is present).
  int diag_every = 0;
  std::function<void(int step, const GlobalDiag&)> on_diagnostics;
  /// Write a checkpoint every N steps (0 = never) under this prefix.
  int checkpoint_every = 0;
  std::string checkpoint_prefix = "campaign";
  /// Optional physics applied after each dynamical step.
  const physics::HeldSuarezForcing* forcing = nullptr;
  double forcing_dt = 0.0;  ///< defaults to the core's dt_advect
  /// Cooperative preemption: polled right after every checkpoint write;
  /// returning true ends the campaign at that checkpoint so a later
  /// campaign can resume from it.  Distributed runs agree on the decision
  /// with a world allreduce (any rank's yield preempts all), so ranks
  /// never part ways mid-exchange.  Ignored when checkpoint_every == 0:
  /// without a checkpoint there is nothing to resume from.
  std::function<bool()> should_yield;
  /// Called before each step with the attempt-local 0-based step index
  /// (the same counter Context::notify_step keeps for distributed runs).
  /// Serial cores have no Context, so this is where the service's runner
  /// injects process-level faults (kill/hang) into serial campaigns.
  std::function<void(int step_index)> on_step;
  /// Called right after each step (and its forcing) with the same
  /// attempt-local index and MUTABLE state: the hook the service's runner
  /// uses to inject corrupt_state faults (an in-memory poke of a
  /// prognostic field) without the core layer knowing about fault plans.
  /// Runs before the health check of the same step, so an injected
  /// corruption is detectable within one sentinel cadence.
  std::function<void(int step_index, state::State& xi)> on_step_state;
  /// Numerical-health sentinel (default OFF here; the ensemble service
  /// defaults it ON — see core/health.hpp).  Checked every
  /// health.cadence steps, before every checkpoint write, and at the
  /// final step; a tripped check throws NumericalError at the step
  /// boundary on every rank together (the verdict derives from the
  /// allreduced diagnostics, so ranks cannot disagree).  Because the
  /// pre-write check gates every checkpoint, a sentinel-on campaign
  /// never persists (or replicates) an unhealthy state.
  HealthOptions health{};
  /// Optional override of the checkpoint write itself.  Null (the
  /// default) writes a full v3 file via util::write_checkpoint; the
  /// service's runner installs a hook here to route the cadence through
  /// a delta-chaining util::CheckpointSession and to replicate the image
  /// to a buddy rank.  The hook runs at exactly the point the default
  /// write would — after the collective yield barrier — so the
  /// consistency argument for the per-rank checkpoint set is unchanged.
  /// `health_verdict` is the header flag the write must record
  /// (util::CheckpointHeader::health): 1 when the sentinel verified the
  /// state this step, 0 for unverified (sentinel off).
  std::function<void(const mesh::LatLonMesh& mesh, const state::State& xi,
                     std::int64_t step, double t,
                     std::span<const std::byte> carry,
                     std::uint32_t health_verdict)>
      write_checkpoint;
};

/// Runs the campaign; returns the number of steps executed by THIS call
/// (steps - start_step when it runs to completion, fewer after a yield;
/// the absolute step reached is start_step + the return value).
/// `comm_ctx` may be null for serial cores (diagnostics are then
/// block-local).  Checkpoints record the raw prognostic state; for the CA
/// core that state still carries the deferred final smoothing, and the
/// cross-step carry (step counter, stale C products, pre-smoothing rows)
/// rides in the checkpoint's v3 core-carry block via the core's
/// save_carry hook — a restarted CA run restores it and applies the
/// pending smoothing on its next step.  Restart transparency holds as
/// long as the same core type resumes the run.
template <typename Core>
int run_campaign(Core& core, comm::Context* comm_ctx, state::State& xi,
                 const CampaignOptions& options) {
  const mesh::LatLonMesh mesh(core.config().nx, core.config().ny,
                              core.config().nz);
  const double fdt = options.forcing_dt > 0.0 ? options.forcing_dt
                                              : core.config().dt_advect;
  const double t0 = options.start_time_seconds >= 0.0
                        ? options.start_time_seconds
                        : options.start_step * core.config().dt_advect;
  int executed = 0;
  HealthSentinel sentinel(options.health);
  // One span per campaign (= per attempt) frames this rank's timeline in
  // the merged trace: everything the step loop does — steps, forcing,
  // diagnostics, yield barriers, checkpoint writes — nests inside it.
  obs::Span campaign_span;
  if (comm_ctx != nullptr)
    campaign_span = comm_ctx->tracer().span("campaign", "core");
  for (int step = options.start_step + 1; step <= options.steps; ++step) {
    if (options.on_step) options.on_step(step - options.start_step - 1);
    core.step(xi);
    if (options.forcing != nullptr) {
      obs::Span fsp;
      if (comm_ctx != nullptr)
        fsp = comm_ctx->tracer().span("forcing", "compute");
      options.forcing->apply(xi, fdt);
    }
    ++executed;
    if (options.on_step_state)
      options.on_step_state(step - options.start_step - 1, xi);

    const bool checkpoint_due = options.checkpoint_every > 0 &&
                                step % options.checkpoint_every == 0;
    // Sentinel check: at the cadence, before EVERY checkpoint write (so
    // an unhealthy state is never persisted or replicated — containment,
    // not just detection), and at the final step (a completed job's
    // gathered state is verified).  Absolute-step cadence, like the
    // diagnostics/checkpoint cadences: a resumed run checks at exactly
    // the steps an uninterrupted one would.  The throw happens BEFORE
    // the yield allreduce below, and on every rank of the same step
    // (identical reduced verdict), so no rank is stranded mid-collective.
    if (options.health.enabled() &&
        (step % options.health.cadence == 0 || checkpoint_due ||
         step == options.steps)) {
      obs::Span hs;
      if (comm_ctx != nullptr) {
        hs = comm_ctx->tracer().span("health_check", "core");
        comm_ctx->stats().set_phase("health");
      }
      GlobalDiag d = local_diagnostics(core.op_context(), xi);
      if (comm_ctx != nullptr)
        d = reduce_diagnostics(*comm_ctx, comm_ctx->world(), d);
      const std::string verdict = sentinel.check(d);
      if (!verdict.empty()) {
        if (comm_ctx != nullptr)
          comm_ctx->tracer().instant("health_trip", "core", verdict);
        throw NumericalError(step, verdict);
      }
    }

    if (options.diag_every > 0 && step % options.diag_every == 0 &&
        options.on_diagnostics) {
      GlobalDiag d = local_diagnostics(core.op_context(), xi);
      if (comm_ctx != nullptr)
        d = reduce_diagnostics(*comm_ctx, comm_ctx->world(), d);
      options.on_diagnostics(step, d);
    }

    if (checkpoint_due) {
      const int rank = comm_ctx != nullptr ? comm_ctx->world_rank() : 0;
      const double t =
          t0 + (step - options.start_step) * core.config().dt_advect;
      // The collective yield decision runs BEFORE the checkpoint write:
      // the allreduce doubles as a barrier, so if a rank died this step
      // the survivors unwind here (PeerDeadError) without ever writing a
      // checkpoint one step ahead of the dead rank's last file — resume
      // always finds a consistent per-rank checkpoint set.  The barrier
      // therefore runs at EVERY multi-rank checkpoint, including the
      // final step and when no yield callback is installed: skipping it
      // there would let a rank death at the last checkpointed step leave
      // a mixed-step file set that can never resume.
      // Every rank contributes its local flag and all stop together iff
      // any rank wants to (a yield past the last step is meaningless, so
      // those checkpoints contribute 0 and only keep the barrier).
      const bool may_yield =
          options.should_yield != nullptr && step < options.steps;
      double want = may_yield && options.should_yield() ? 1.0 : 0.0;
      if (comm_ctx != nullptr && comm_ctx->world().size() > 1) {
        double agreed = 0.0;
        comm_ctx->stats().set_phase("service");
        comm::allreduce<double>(*comm_ctx, comm_ctx->world(),
                                std::span<const double>(&want, 1),
                                std::span<double>(&agreed, 1),
                                comm::ReduceOp::kMax);
        want = agreed;
      }
      const bool yield_now = want > 0.0 && step < options.steps;
      // Cores with cross-step carry state (the CA core's deferred
      // smoothing and stale C products) provide save_carry; the blob
      // rides in the checkpoint's v3 extension block, CRC-guarded, so a
      // resumed run restores the full algorithmic state, not just the
      // prognostic fields.  Detected with `requires` like the finalize /
      // refresh_halos hooks.
      std::vector<std::byte> carry;
      if constexpr (requires(util::CarryWriter& w) { core.save_carry(w); }) {
        util::CarryWriter w;
        core.save_carry(w);
        carry = w.take();
      }
      {
        obs::Span ck;
        if (comm_ctx != nullptr)
          ck = comm_ctx->tracer().span("checkpoint_write", "checkpoint");
        // The sentinel check above gated this write, so a sentinel-on
        // checkpoint is verified-healthy by construction.
        const std::uint32_t verdict = options.health.enabled() ? 1u : 0u;
        if (options.write_checkpoint)
          options.write_checkpoint(mesh, xi, step, t, carry, verdict);
        else
          util::write_checkpoint(
              util::checkpoint_path(options.checkpoint_prefix, rank), mesh,
              core.decomp(), xi, step, t, carry, verdict);
      }
      if (yield_now) break;
    }
  }
  return executed;
}

}  // namespace ca::core
