#include "core/schedule_builders.hpp"

#include <algorithm>
#include <cmath>

#include "mesh/decomp.hpp"
#include "perf/cost.hpp"

namespace ca::core {
namespace {

using perf::MachineModel;
using perf::Schedule;

/// Geometry of one rank in the process grid (mirrors DomainDecomp +
/// CartTopology without needing a mesh object).
struct RankGeom {
  int rank = 0;
  std::array<int, 3> coords{};
  std::array<int, 3> dims{};
  mesh::Range xr, yr, zr;

  int lnx() const { return xr.count; }
  int lny() const { return yr.count; }
  int lnz() const { return zr.count; }

  int neighbor(int dx, int dy, int dz) const {
    int cx = coords[0] + dx;
    int cy = coords[1] + dy;
    int cz = coords[2] + dz;
    cx = ((cx % dims[0]) + dims[0]) % dims[0];  // x periodic
    if (cy < 0 || cy >= dims[1] || cz < 0 || cz >= dims[2]) return -1;
    const int nbr = cx + cy * dims[0] + cz * dims[0] * dims[1];
    return nbr == rank ? -1 : nbr;
  }
};

RankGeom geom_of(const ScheduleParams& p, int rank) {
  RankGeom g;
  g.rank = rank;
  g.dims = {p.grid.px, p.grid.py, p.grid.pz};
  g.coords = {rank % p.grid.px, (rank / p.grid.px) % p.grid.py,
              rank / (p.grid.px * p.grid.py)};
  g.xr = mesh::block_range(static_cast<int>(p.mesh.nx), p.grid.px,
                           g.coords[0]);
  g.yr = mesh::block_range(static_cast<int>(p.mesh.ny), p.grid.py,
                           g.coords[1]);
  g.zr = mesh::block_range(static_cast<int>(p.mesh.nz), p.grid.pz,
                           g.coords[2]);
  return g;
}

/// One field in a modeled exchange: widths per axis; is2d skips dz != 0.
struct Item {
  int wx = 0, wy = 0, wz = 0;
  bool is2d = false;
};

/// Message size (doubles) for item `it` toward offset (dx,dy,dz), matching
/// mesh::send_box volumes.
long long message_doubles(const RankGeom& g, const Item& it, int dx, int dy,
                          int dz) {
  auto span = [](int n, int d, int w) { return d == 0 ? n : w; };
  const long long vx = span(g.lnx(), dx, it.wx);
  const long long vy = span(g.lny(), dy, it.wy);
  const long long vz = it.is2d ? 1 : span(g.lnz(), dz, it.wz);
  return vx * vy * vz;
}

/// Emits the exchange's irecvs + isends (mirroring HaloExchanger::begin).
/// Returns true if anything was posted (so waitall can be emitted).
bool emit_exchange_begin(Schedule& s, const RankGeom& g,
                         const std::vector<Item>& items) {
  bool any = false;
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const int nbr = g.neighbor(dx, dy, dz);
        if (nbr < 0) continue;
        for (const Item& it : items) {
          if ((dx != 0 && it.wx == 0) || (dy != 0 && it.wy == 0) ||
              (dz != 0 && (it.wz == 0 || it.is2d)))
            continue;
          const std::size_t bytes =
              static_cast<std::size_t>(message_doubles(g, it, dx, dy, dz)) *
              sizeof(double);
          s.add_isend(g.rank, nbr, bytes, kPhaseStencil);
          s.add_irecv(g.rank, nbr, kPhaseStencil);
          any = true;
        }
      }
    }
  }
  return any;
}

void emit_exchange(Schedule& s, const RankGeom& g,
                   const std::vector<Item>& items) {
  if (emit_exchange_begin(s, g, items)) s.add_waitall(g.rank, kPhaseStencil);
}

/// Filter work: number of active (row, field-level) lines in [j0, j1).
struct FilterWork {
  long long lines = 0;
};

FilterWork filter_lines(const ScheduleParams& p, const RankGeom& g) {
  // filter_fraction of all rows are active, split evenly at both poles.
  const long long band =
      static_cast<long long>(p.filter_fraction * p.mesh.ny / 2.0);
  auto overlap = [&](long long lo, long long hi) {
    return std::max<long long>(
        0, std::min<long long>(hi, g.yr.end()) -
               std::max<long long>(lo, g.yr.begin));
  };
  const long long rows = overlap(0, band) + overlap(p.mesh.ny - band,
                                                    p.mesh.ny);
  FilterWork w;
  w.lines = rows * (p.fields3d * g.lnz() + 1);
  return w;
}

double fft_flops(long long nx, long long lines) {
  return 5.0 * static_cast<double>(nx) *
         std::max(1.0, std::log2(static_cast<double>(nx))) *
         static_cast<double>(lines) * 2.0;  // forward + inverse
}

/// Emits the Fourier filter of one update.
void emit_filter(Schedule& s, const ScheduleParams& p, const RankGeom& g,
                 DecompScheme scheme, const MachineModel& m,
                 const std::vector<int>& xline_groups) {
  const FilterWork w = filter_lines(p, g);
  (void)scheme;
  if (p.grid.px == 1) {
    s.add_compute(g.rank, fft_flops(p.mesh.nx, w.lines), kPhaseCompute);
    return;
  }
  // X-Y: the distributed FFT is priced as the butterfly algorithm the
  // paper's W_XY formula assumes — log2(px) rounds each moving the local
  // slab of active lines.  (The functional reference implementation uses
  // a simpler allgather; see DESIGN.md.)
  const std::size_t local_bytes = static_cast<std::size_t>(w.lines) *
                                  static_cast<std::size_t>(g.lnx()) *
                                  sizeof(double);
  const double rounds = std::ceil(std::log2(static_cast<double>(p.grid.px)));
  const double cost =
      rounds * (m.alpha + m.collective_round_overhead +
                m.beta * static_cast<double>(local_bytes));
  const int group =
      xline_groups[static_cast<std::size_t>(g.coords[1] +
                                            g.coords[2] * p.grid.py)];
  s.add_collective(g.rank, group, cost,
                   static_cast<std::size_t>(rounds) * local_bytes,
                   kPhaseCollective);
  s.add_compute(g.rank, fft_flops(p.mesh.nx, w.lines), kPhaseCompute);
}

/// Emits the two z-line collectives of one fresh C execution; `face` is
/// the (i,j) face point count the column sums cover.
void emit_c_collectives(Schedule& s, const ScheduleParams& p,
                        const RankGeom& g, const MachineModel& m,
                        const std::vector<int>& zline_groups,
                        long long face) {
  if (p.grid.pz <= 1) return;
  const std::size_t bytes =
      static_cast<std::size_t>(2 * face) * sizeof(double);
  const int group =
      zline_groups[static_cast<std::size_t>(g.coords[0] +
                                            g.coords[1] * p.grid.px)];
  s.add_collective(g.rank, group,
                   perf::allreduce_time(m, p.grid.pz, bytes),
                   perf::ring_allreduce_bytes(p.grid.pz, bytes),
                   kPhaseCollective);
  // Exclusive scan: a (pz-1)-stage chain; every rank but the last sends
  // its vector once.
  const double exscan_cost =
      (p.grid.pz - 1) *
      (m.alpha + m.collective_round_overhead +
       m.beta * static_cast<double>(bytes));
  s.add_collective(g.rank, group, exscan_cost,
                   g.coords[2] == p.grid.pz - 1 ? 0 : bytes,
                   kPhaseCollective);
}

/// Extended-window volume for the CA redundant computation: the interior
/// grown by e toward sides with neighbors.
long long window_volume(const RankGeom& g, int ey, int ez) {
  const int lo_y = g.coords[1] > 0 ? ey : 0;
  const int hi_y = g.coords[1] < g.dims[1] - 1 ? ey : 0;
  const int lo_z = g.coords[2] > 0 ? ez : 0;
  const int hi_z = g.coords[2] < g.dims[2] - 1 ? ez : 0;
  return static_cast<long long>(g.lnx()) * (g.lny() + lo_y + hi_y) *
         (g.lnz() + lo_z + hi_z);
}

long long window_face(const RankGeom& g, int ey) {
  const int lo_y = g.coords[1] > 0 ? ey : 0;
  const int hi_y = g.coords[1] < g.dims[1] - 1 ? ey : 0;
  return static_cast<long long>(g.lnx() + 4) * (g.lny() + lo_y + hi_y + 2);
}

std::vector<int> make_line_groups(Schedule& s, const ScheduleParams& p,
                                  bool z_lines) {
  std::vector<int> groups;
  if (z_lines) {
    groups.resize(static_cast<std::size_t>(p.grid.px) * p.grid.py);
    for (int cy = 0; cy < p.grid.py; ++cy)
      for (int cx = 0; cx < p.grid.px; ++cx) {
        std::vector<int> members;
        for (int cz = 0; cz < p.grid.pz; ++cz)
          members.push_back(cx + cy * p.grid.px +
                            cz * p.grid.px * p.grid.py);
        groups[static_cast<std::size_t>(cx + cy * p.grid.px)] =
            s.add_group(std::move(members));
      }
  } else {
    groups.resize(static_cast<std::size_t>(p.grid.py) * p.grid.pz);
    for (int cz = 0; cz < p.grid.pz; ++cz)
      for (int cy = 0; cy < p.grid.py; ++cy) {
        std::vector<int> members;
        for (int cx = 0; cx < p.grid.px; ++cx)
          members.push_back(cx + cy * p.grid.px +
                            cz * p.grid.px * p.grid.py);
        groups[static_cast<std::size_t>(cy + cz * p.grid.py)] =
            s.add_group(std::move(members));
      }
  }
  return groups;
}

}  // namespace

perf::Schedule build_original_schedule(const ScheduleParams& p,
                                       DecompScheme scheme,
                                       const MachineModel& m) {
  const int nranks = p.grid.total();
  Schedule s(nranks);
  const auto zgroups = make_line_groups(s, p, /*z_lines=*/true);
  const auto xgroups = make_line_groups(s, p, /*z_lines=*/false);

  for (int r = 0; r < nranks; ++r) {
    const RankGeom g = geom_of(p, r);
    // Per-update halo items: the functional core exchanges full widths
    // (3-D: wy=2, wz=1; 2-D psa: wy=4) each refresh; X-Y adds x widths.
    const int wx3 = p.grid.px > 1 ? 3 : 0;
    std::vector<Item> items;
    for (int f = 0; f < p.fields3d; ++f)
      items.push_back(Item{wx3, 2, 1, false});
    items.push_back(Item{p.grid.px > 1 ? 3 : 0, 3, 0, true});  // psa hy2

    const long long vol =
        static_cast<long long>(g.lnx()) * g.lny() * g.lnz();
    const long long face =
        static_cast<long long>(g.lnx() + 4) * (g.lny() + 2);

    for (int step = 0; step < p.steps; ++step) {
      for (int u = 0; u < 3 * p.M; ++u) {
        emit_exchange(s, g, items);
        s.add_compute(g.rank,
                      p.flops_adapt * static_cast<double>(vol) +
                          p.flops_column * static_cast<double>(vol),
                      kPhaseCompute);
        if (p.grid.pz > 1) emit_c_collectives(s, p, g, m, zgroups, face);
        emit_filter(s, p, g, scheme, m, xgroups);
      }
      for (int u = 0; u < 3; ++u) {
        emit_exchange(s, g, items);
        s.add_compute(g.rank, p.flops_advect * static_cast<double>(vol),
                      kPhaseCompute);
        emit_filter(s, p, g, scheme, m, xgroups);
      }
      emit_exchange(s, g, items);
      s.add_compute(g.rank, p.flops_smooth * static_cast<double>(vol),
                    kPhaseCompute);
    }
  }
  return s;
}

perf::Schedule build_ca_schedule(const ScheduleParams& p,
                                 const MachineModel& m) {
  const int nranks = p.grid.total();
  Schedule s(nranks);
  const auto zgroups = make_line_groups(s, p, /*z_lines=*/true);
  const auto xgroups = make_line_groups(s, p, /*z_lines=*/false);
  const int M = p.M;
  const int depth_y = 3 * M + 1;
  const int depth_z = 3 * M;

  for (int r = 0; r < nranks; ++r) {
    const RankGeom g = geom_of(p, r);

    // Adaptation exchange items: xi (3-D x3 + psa) + the C products
    // (divsum, sdot, w, phi_geo) + fused pre-smoothing rows.
    std::vector<Item> aitems;
    for (int f = 0; f < p.fields3d; ++f)
      aitems.push_back(Item{0, depth_y, 0, false});
    aitems.push_back(Item{0, depth_z + 2, 0, true});  // psa (hy2 = 3M+2)
    aitems.push_back(Item{0, depth_z + 2, 0, true});  // divsum
    aitems.push_back(Item{0, depth_y, 0, false});     // sdot
    aitems.push_back(Item{0, depth_y, 0, false});     // w
    aitems.push_back(Item{0, depth_y, 0, false});     // phi_geo
    if (p.ca.fuse_smoothing) {
      // Depth 4: S2 recomputes the +-2 halo rows as complete canonical
      // folds, which read pre-smoothing rows out to +-4.
      aitems.push_back(Item{0, 4, 0, false});  // pre Phi (y only)
      aitems.push_back(Item{0, 4, 0, true});   // pre psa
    }
    // Advection exchange items: xi + sdot.
    std::vector<Item> vitems;
    for (int f = 0; f < p.fields3d; ++f)
      vitems.push_back(Item{0, 4, 3, false});
    vitems.push_back(Item{0, depth_z + 2, 0, true});  // psa full width
    vitems.push_back(Item{0, 4, 3, false});          // sdot

    const long long inner_vol = window_volume(g, -4, 0);

    for (int step = 0; step < p.steps; ++step) {
      // Former smoothing (S1), then the single deep exchange with the
      // inner eta1 computation overlapped.
      if (p.ca.fuse_smoothing)
        s.add_compute(g.rank,
                      p.flops_smooth * static_cast<double>(
                                           window_volume(g, 0, 0)),
                      kPhaseCompute);
      const bool posted = emit_exchange_begin(s, g, aitems);
      if (p.ca.overlap && inner_vol > 0)
        s.add_compute(g.rank,
                      (p.flops_adapt + p.flops_column) *
                          static_cast<double>(inner_vol),
                      kPhaseCompute);
      if (posted) s.add_waitall(g.rank, kPhaseStencil);

      int u = 0;
      for (int iter = 0; iter < M; ++iter) {
        for (int sub = 0; sub < 3; ++sub, ++u) {
          const int e = 3 * M - 1 - u;
          long long vol = window_volume(g, e, 0);
          if (iter == 0 && sub == 0 && p.ca.overlap)
            vol = std::max<long long>(0, vol - inner_vol);
          s.add_compute(g.rank,
                        (p.flops_adapt + p.flops_column) *
                            static_cast<double>(vol),
                        kPhaseCompute);
          const bool fresh =
              sub > 0 || !p.ca.approximate_iteration;
          if (fresh)
            emit_c_collectives(s, p, g, m, zgroups,
                               p.ca.fresh_c_on_block_face
                                   ? window_face(g, 1)
                                   : window_face(g, e + 1));
          emit_filter(s, p, g, DecompScheme::kYZ, m, xgroups);
        }
      }

      // Advection: one exchange, three updates on shrinking windows.
      const bool aposted = emit_exchange_begin(s, g, vitems);
      const long long adv_inner = window_volume(g, -4, -2);
      if (p.ca.overlap && adv_inner > 0)
        s.add_compute(g.rank,
                      p.flops_advect * static_cast<double>(adv_inner),
                      kPhaseCompute);
      if (aposted) s.add_waitall(g.rank, kPhaseStencil);
      for (int sub = 0; sub < 3; ++sub) {
        const int e = 2 - sub;
        long long vol = window_volume(g, e, e);
        if (sub == 0 && p.ca.overlap)
          vol = std::max<long long>(0, vol - adv_inner);
        s.add_compute(g.rank, p.flops_advect * static_cast<double>(vol),
                      kPhaseCompute);
        emit_filter(s, p, g, DecompScheme::kYZ, m, xgroups);
      }
    }
  }
  return s;
}

}  // namespace ca::core
