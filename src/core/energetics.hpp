// Energy budget of the operator decomposition: the rate at which each
// operator of S (F L)^3 (F C A)^{3M} changes the quadratic invariant
// E = integral of (U^2 + V^2 + Phi^2).  The IAP transform is built so the
// skew-symmetric advection L conserves E exactly (discretely, in the
// 2nd-order variant), the adaptation A exchanges E between components with
// a bounded residual, and S and F are strictly dissipative — this module
// measures all of it, turning the paper's design claims into observable
// numbers.
#pragma once

#include "core/serial_core.hpp"

namespace ca::core {

struct EnergyBudget {
  /// dE/dt under the advection operator alone [energy/s]; ~0 for the
  /// exactly skew-symmetric scheme.
  double advection_rate = 0.0;
  /// dE/dt under the adaptation operator (pressure-gradient/Coriolis
  /// energy exchange; bounded, sign-indefinite).
  double adaptation_rate = 0.0;
  /// E(S(xi)) - E(xi): the smoothing's one-application energy change
  /// (<= 0 for beta in (0, 1]).
  double smoothing_delta = 0.0;
  /// E(F(xi)) - E(xi) applying the polar filter to the state (<= 0).
  double filter_delta = 0.0;
  /// The invariant itself.
  double energy = 0.0;

  /// |advection_rate| normalized by a typical |<xi, L xi>| magnitude —
  /// the conservation quality metric (0 = exact).
  double advection_residual = 0.0;
};

/// Evaluates the budget at state xi using the serial reference core
/// (the state is copied; xi is not modified).
EnergyBudget diagnose_energetics(SerialCore& core, const state::State& xi);

}  // namespace ca::core
