#include "core/energetics.hpp"

#include <cmath>

#include "ops/smoothing.hpp"

namespace ca::core {
namespace {

/// Metric-weighted quadratic energy and inner products.  U and Phi sit on
/// scalar rows (weight sin(theta_j)); V on the staggered rows
/// (sin(theta_v)).
double weighted_energy(const ops::OpContext& ctx, const state::State& xi) {
  double e = 0.0;
  const auto& d = *ctx.decomp;
  for (int k = 0; k < d.lnz(); ++k) {
    for (int j = 0; j < d.lny(); ++j) {
      const double wu = ctx.sin_t(j) * ctx.dsig(k);
      const double wv = ctx.sin_tv(j) * ctx.dsig(k);
      for (int i = 0; i < d.lnx(); ++i) {
        e += wu * (xi.u()(i, j, k) * xi.u()(i, j, k) +
                   xi.phi()(i, j, k) * xi.phi()(i, j, k));
        e += wv * xi.v()(i, j, k) * xi.v()(i, j, k);
      }
    }
  }
  return e;
}

/// 2 <xi, tend> with the same weights: the dE/dt induced by `tend`.
void weighted_rate(const ops::OpContext& ctx, const state::State& xi,
                   const state::State& tend, double& rate, double& scale) {
  rate = 0.0;
  scale = 0.0;
  const auto& d = *ctx.decomp;
  for (int k = 0; k < d.lnz(); ++k) {
    for (int j = 0; j < d.lny(); ++j) {
      const double wu = ctx.sin_t(j) * ctx.dsig(k);
      const double wv = ctx.sin_tv(j) * ctx.dsig(k);
      for (int i = 0; i < d.lnx(); ++i) {
        const double cu = wu * xi.u()(i, j, k) * tend.u()(i, j, k);
        const double cv = wv * xi.v()(i, j, k) * tend.v()(i, j, k);
        const double cp = wu * xi.phi()(i, j, k) * tend.phi()(i, j, k);
        rate += 2.0 * (cu + cv + cp);
        scale += 2.0 * (std::abs(cu) + std::abs(cv) + std::abs(cp));
      }
    }
  }
}

}  // namespace

EnergyBudget diagnose_energetics(SerialCore& core, const state::State& xi) {
  const auto& ctx = core.op_context();
  EnergyBudget budget;

  state::State work = core.make_state();
  work.assign(xi, work.extended(work.u().halo().x, work.u().halo().y,
                                work.u().halo().z));
  core.fill_boundaries(work);
  budget.energy = weighted_energy(ctx, work);

  state::State tend = core.make_state();
  double scale = 0.0;

  core.advection_tendency(work, tend);
  weighted_rate(ctx, work, tend, budget.advection_rate, scale);
  budget.advection_residual =
      scale > 0.0 ? std::abs(budget.advection_rate) / scale : 0.0;

  core.adaptation_tendency(work, tend);
  double ascale = 0.0;
  weighted_rate(ctx, work, tend, budget.adaptation_rate, ascale);

  // Smoothing: one full application.
  state::State smoothed = core.make_state();
  ops::apply_smoothing(ctx, work, smoothed, work.interior());
  budget.smoothing_delta = weighted_energy(ctx, smoothed) - budget.energy;

  // Filter applied to the STATE (in the algorithm it filters tendencies;
  // the dissipativity property is the same).
  state::State filtered = core.make_state();
  filtered.assign(work, filtered.extended(3, 2, 1));
  core.filter().apply_local(ctx, filtered, filtered.interior());
  budget.filter_delta = weighted_energy(ctx, filtered) - budget.energy;

  return budget;
}

}  // namespace ca::core
