#include "core/diagnostics.hpp"

#include <cmath>

#include "fft/fft.hpp"
#include "state/transforms.hpp"
#include "util/math.hpp"

namespace ca::core {

GlobalDiag local_diagnostics(const ops::OpContext& ctx,
                             const state::State& xi) {
  GlobalDiag d;
  const auto& decomp = *ctx.decomp;
  const double b = util::kGravityWaveSpeed;
  // NaN-sticky max so a blown-up field reports NaN instead of silently
  // keeping the running maximum (std::max drops NaN in second position).
  auto maxabs = [](double cur, double v) {
    return std::isnan(v) ? v : std::max(cur, std::abs(v));
  };
  for (int k = 0; k < decomp.lnz(); ++k) {
    const double dsig = ctx.dsig(k);
    for (int j = 0; j < decomp.lny(); ++j) {
      const double area = ctx.mesh->cell_area(ctx.gj(j));
      for (int i = 0; i < decomp.lnx(); ++i) {
        const double u = xi.u()(i, j, k);
        const double v = xi.v()(i, j, k);
        const double phi = xi.phi()(i, j, k);
        d.quad_energy += (u * u + v * v + phi * phi) * area * dsig;
        d.max_abs_u = maxabs(d.max_abs_u, u);
        d.max_abs_v = maxabs(d.max_abs_v, v);
        d.max_abs_phi = maxabs(d.max_abs_phi, phi);
      }
    }
  }
  for (int j = 0; j < decomp.lny(); ++j) {
    const double area = ctx.mesh->cell_area(ctx.gj(j));
    for (int i = 0; i < decomp.lnx(); ++i) {
      const double psa = xi.psa()(i, j);
      const double scaled = psa / util::kPressureRef;
      // Surface terms are z-integrals of a 2-D quantity: count them once
      // (on the rank owning the model top) so the z-line reduction does
      // not multiply them.
      if (decomp.at_model_top()) {
        d.surface_energy += b * b * scaled * scaled * area;
        d.mass_anomaly += psa * area;
      }
      d.max_abs_psa = maxabs(d.max_abs_psa, psa);
    }
  }
  return d;
}

GlobalDiag reduce_diagnostics(comm::Context& comm_ctx,
                              const comm::Communicator& comm,
                              const GlobalDiag& mine) {
  std::vector<double> sums{mine.quad_energy, mine.surface_energy,
                           mine.mass_anomaly};
  std::vector<double> sums_out(3);
  comm::allreduce<double>(comm_ctx, comm, sums, sums_out,
                          comm::ReduceOp::kSum);
  std::vector<double> maxs{mine.max_abs_u, mine.max_abs_v, mine.max_abs_phi,
                           mine.max_abs_psa};
  std::vector<double> maxs_out(4);
  comm::allreduce<double>(comm_ctx, comm, maxs, maxs_out,
                          comm::ReduceOp::kMax);
  GlobalDiag out;
  out.quad_energy = sums_out[0];
  out.surface_energy = sums_out[1];
  out.mass_anomaly = sums_out[2];
  out.max_abs_u = maxs_out[0];
  out.max_abs_v = maxs_out[1];
  out.max_abs_phi = maxs_out[2];
  out.max_abs_psa = maxs_out[3];
  return out;
}

std::vector<double> zonal_mean_u(const ops::OpContext& ctx,
                                 const state::State& xi, int k) {
  const auto& decomp = *ctx.decomp;
  std::vector<double> out(static_cast<std::size_t>(decomp.lny()), 0.0);
  for (int j = 0; j < decomp.lny(); ++j) {
    double sum = 0.0;
    for (int i = 0; i < decomp.lnx(); ++i) {
      const double pu = state::p_factor_u(xi.psa(), *ctx.strat, i, j);
      sum += xi.u()(i, j, k) / pu;
    }
    out[static_cast<std::size_t>(j)] = sum / decomp.lnx();
  }
  return out;
}

std::vector<double> zonal_mean_t(const ops::OpContext& ctx,
                                 const state::State& xi, int k) {
  const auto& decomp = *ctx.decomp;
  std::vector<double> out(static_cast<std::size_t>(decomp.lny()), 0.0);
  const double t_ref = ctx.strat->t_ref(ctx.gk(k));
  for (int j = 0; j < decomp.lny(); ++j) {
    double sum = 0.0;
    for (int i = 0; i < decomp.lnx(); ++i) {
      const double pc = state::p_factor_s(xi.psa(), *ctx.strat, i, j);
      sum += t_ref + util::kGravityWaveSpeed * xi.phi()(i, j, k) /
                         (pc * util::kRd);
    }
    out[static_cast<std::size_t>(j)] = sum / decomp.lnx();
  }
  return out;
}

double cfl_estimate(const ops::OpContext& ctx, const state::State& xi,
                    double dt) {
  const auto& decomp = *ctx.decomp;
  const double a = ctx.mesh->radius();
  double cfl = 0.0;
  for (int k = 0; k < decomp.lnz(); ++k) {
    for (int j = 0; j < decomp.lny(); ++j) {
      const double dx_eff = a * ctx.sin_t(j) * ctx.mesh->dlambda();
      const double dy = a * ctx.mesh->dtheta();
      for (int i = 0; i < decomp.lnx(); ++i) {
        const double pu = state::p_factor_u(xi.psa(), *ctx.strat, i, j);
        const double pv = state::p_factor_v(xi.psa(), *ctx.strat, i, j);
        cfl = std::max(cfl, std::abs(xi.u()(i, j, k) / pu) * dt / dx_eff);
        cfl = std::max(cfl, std::abs(xi.v()(i, j, k) / pv) * dt / dy);
      }
    }
  }
  return cfl;
}

std::vector<double> zonal_spectrum(const ops::OpContext& ctx,
                                   const util::Array3D<double>& f, int j,
                                   int k) {
  const int nx = ctx.mesh->nx();
  std::vector<fft::cplx> line(static_cast<std::size_t>(nx));
  for (int i = 0; i < nx; ++i)
    line[static_cast<std::size_t>(i)] = fft::cplx{f(i, j, k), 0.0};
  fft::Plan plan(static_cast<std::size_t>(nx));
  plan.forward(line);
  std::vector<double> power(static_cast<std::size_t>(nx / 2) + 1, 0.0);
  for (int m = 0; m <= nx / 2; ++m) {
    double p = std::norm(line[static_cast<std::size_t>(m)]);
    if (m > 0 && m < nx - m)
      p += std::norm(line[static_cast<std::size_t>(nx - m)]);
    power[static_cast<std::size_t>(m)] = p / (static_cast<double>(nx) *
                                              static_cast<double>(nx));
  }
  return power;
}

}  // namespace ca::core
