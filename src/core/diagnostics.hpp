// Global model diagnostics: the quadratic invariant the IAP transform is
// designed to conserve (sum of kinetic + available potential + available
// surface potential energy in transformed variables), mass, extrema, and
// zonal means for the Held-Suarez climatology.
#pragma once

#include <vector>

#include "comm/collectives.hpp"
#include "ops/context.hpp"
#include "state/state.hpp"

namespace ca::core {

struct GlobalDiag {
  /// Volume integral of (U^2 + V^2 + Phi^2) (kinetic + available potential
  /// energy density in transformed variables).
  double quad_energy = 0.0;
  /// Area integral of b^2 (p'_sa / p_0)^2 (available surface potential).
  double surface_energy = 0.0;
  /// Area integral of p'_sa (mass anomaly).
  double mass_anomaly = 0.0;
  double max_abs_u = 0.0;
  double max_abs_v = 0.0;
  double max_abs_phi = 0.0;
  double max_abs_psa = 0.0;

  double total_energy() const { return quad_energy + surface_energy; }
};

/// Diagnostics of this rank's block (no communication).
GlobalDiag local_diagnostics(const ops::OpContext& ctx,
                             const state::State& xi);

/// Combines per-rank diagnostics over a communicator (sum the integrals,
/// max the extrema).
GlobalDiag reduce_diagnostics(comm::Context& comm_ctx,
                              const comm::Communicator& comm,
                              const GlobalDiag& mine);

/// Zonal (x) mean of the physical u at each owned row, at level k.
std::vector<double> zonal_mean_u(const ops::OpContext& ctx,
                                 const state::State& xi, int k);

/// Zonal mean temperature [K] at each owned row, at level k.
std::vector<double> zonal_mean_t(const ops::OpContext& ctx,
                                 const state::State& xi, int k);

/// Largest advective CFL number max(|u| dt/dx_eff, |v| dt/dy) over the
/// block (dx_eff shrinks with sin(theta) toward the poles).
double cfl_estimate(const ops::OpContext& ctx, const state::State& xi,
                    double dt);

/// Zonal power spectrum |F_m|^2 of a field's latitude circle (local row
/// j, level k), for wavenumbers m = 0..nx/2.  Requires the rank to own
/// full circles (Y-Z decomposition).  Used to verify the polar filter's
/// damping and to diagnose grid-scale noise.
std::vector<double> zonal_spectrum(const ops::OpContext& ctx,
                                   const util::Array3D<double>& f, int j,
                                   int k);

}  // namespace ca::core
