// Numerical-health sentinel: cheap blowup detection over the prognostic
// state, run by the campaign loop at a configurable step cadence.  The
// verdict derives ONLY from the allreduced GlobalDiag — every rank of a
// distributed run computes the identical reduced values, so every rank
// reaches the identical verdict without a second agreement round, and a
// tripped check throws NumericalError on all ranks together at the same
// step boundary (no rank is left hanging in a collective).
//
// Three detector families, cheapest first:
//   - non-finite: any NaN/Inf in the diagnostics integrals or the
//     NaN-sticky field maxima (a NaN anywhere in an owned interior
//     poisons the energy sums, so this catches single-cell corruption);
//   - physical bounds: the field maxima against loose configurable caps
//     (transformed wind, geopotential/temperature proxy, surface
//     pressure anomaly) — a runaway field trips these long before the
//     floats saturate;
//   - growth: the |energy|/|mass| integrals against the RUNNING MAXIMUM
//     of the healthy checks seen so far; a value beyond the cap times
//     that scale flags a blowup that is still finite and in bounds.  The
//     scale is a running max (not the previous check) because the mass
//     anomaly is a signed integral that starts near zero by cancellation
//     — step-to-step ratios during spin-up are meaningless — and a short
//     warmup of healthy checks establishes the trajectory's natural
//     magnitude before the detector engages.
#pragma once

#include <stdexcept>
#include <string>

#include "core/diagnostics.hpp"

namespace ca::util {
class Config;
}

namespace ca::core {

/// The model state went numerically bad (NaN/Inf, out-of-bounds field,
/// runaway integral).  Deliberately NOT a comm::CommError: the comm layer
/// is healthy, the trajectory is poisoned — the service rolls the job
/// back to its last healthy checkpoint under a separate retry budget
/// instead of treating it as an infrastructure fault.
struct NumericalError : std::runtime_error {
  NumericalError(int step, const std::string& reason)
      : std::runtime_error("numerical health check failed at step " +
                           std::to_string(step) + ": " + reason),
        step(step),
        reason(reason) {}

  int step;
  std::string reason;
};

/// Sentinel knobs (config block `health.*`, env CA_AGCM_HEALTH_*).  The
/// default-constructed options are OFF (cadence 0) so plain campaigns
/// keep their exact message counts; the ensemble service turns the
/// sentinel ON by default (cadence 1, see PoolOptions).  The bounds are
/// deliberately loose — an order of magnitude past anything a sane
/// integration produces — so a healthy run never trips them.
struct HealthOptions {
  /// Check every N steps (absolute step numbering, like the diagnostics
  /// and checkpoint cadences, so a resumed run checks at the same steps
  /// as an uninterrupted one).  0 disables the sentinel entirely.
  int cadence = 0;
  /// Cap on the transformed wind maxima |U|, |V| [m/s-equivalent].
  double max_wind = 1.0e4;
  /// Cap on |Phi| (the transformed geopotential deviation; the
  /// temperature proxy — see core::zonal_mean_t).
  double max_phi = 1.0e6;
  /// Cap on the surface pressure anomaly |p'_sa| [Pa].
  double max_psa = 1.0e6;
  /// Max factor |total energy| may exceed the running maximum over all
  /// previous healthy checks (a conserved quantity in a healthy run).
  double max_energy_growth = 100.0;
  /// Same for the |mass anomaly| integral.
  double max_mass_growth = 100.0;
  /// Healthy checks that must pass before the growth detectors engage:
  /// integrals spin up from (near) zero on a cold start, so the first
  /// few checks only establish the trajectory's natural scale.  The
  /// non-finite and bounds detectors are active from the first check
  /// regardless.
  int growth_warmup = 2;

  bool enabled() const { return cadence > 0; }

  /// Reads health.cadence / max_wind / max_phi / max_psa /
  /// max_energy_growth / max_mass_growth / growth_warmup (each with the
  /// usual CA_AGCM_* environment override).  The cadence default here is
  /// 1 — "on" — the service-facing default; campaign users opt in
  /// explicitly.
  static HealthOptions from_config(const util::Config& cfg);
};

/// Stateful checker: holds the running-max integral scales for the growth
/// detector.  One instance per campaign (per attempt) — a fresh attempt
/// re-baselines, so a restore never diffs against a stale trajectory.
class HealthSentinel {
 public:
  explicit HealthSentinel(const HealthOptions& opts) : opts_(opts) {}

  /// Verdict on an (allreduced) diagnostics snapshot: empty = healthy,
  /// otherwise the first violation.  Pure function of (opts, history, d),
  /// so ranks feeding it the same reduced GlobalDiag agree byte-for-byte.
  std::string check(const GlobalDiag& d);

  /// Bounds/finiteness-only verdict (no growth baseline, none recorded):
  /// what a restore verification needs — a single state, no trajectory.
  static std::string check_static(const HealthOptions& opts,
                                  const GlobalDiag& d);

 private:
  HealthOptions opts_;
  int healthy_checks_ = 0;
  double energy_scale_ = 0.0;  // running max |total energy| over healthy checks
  double mass_scale_ = 0.0;    // running max |mass anomaly| over healthy checks
};

}  // namespace ca::core
