// Distributed original algorithm (Algorithm 1): a halo exchange before
// EVERY stencil update — 3M adaptation updates + 3 advection updates + 1
// smoothing exchange = 3M + 4 communications per step (13 for M = 3, the
// count the paper reduces to 2) — plus the per-update collective
// communications of C (z line, Y-Z scheme) or F (x line, X-Y scheme).
#pragma once

#include "comm/topology.hpp"
#include "core/dycore_config.hpp"
#include "core/exchange.hpp"
#include "mesh/decomp.hpp"
#include "mesh/latlon.hpp"
#include "mesh/sigma.hpp"
#include "ops/filter.hpp"
#include "ops/tendency.hpp"
#include "state/initial.hpp"
#include "state/state.hpp"
#include "state/stratification.hpp"

namespace ca::core {

class OriginalCore {
 public:
  /// Collective over ctx.world(): builds the Cartesian topology for
  /// `scheme` with `dims` ranks ({px, py, 1} or {1, py, pz}).
  OriginalCore(const DycoreConfig& config, comm::Context& ctx,
               DecompScheme scheme, std::array<int, 3> dims);

  void step(state::State& xi);
  void run(state::State& xi, int n);

  state::State make_state() const;
  void initialize(state::State& xi, const state::InitialOptions& options);

  const DycoreConfig& config() const { return config_; }
  const state::Stratification& strat() const { return strat_; }
  const mesh::DomainDecomp& decomp() const { return decomp_; }
  const ops::OpContext& op_context() const { return opctx_; }
  /// Installs a terrain field (see state::make_terrain); the caller keeps
  /// it alive for the core's lifetime.  Null restores a flat surface.
  void set_terrain(const util::Array2D<double>* phi_surface) {
    opctx_.phi_surface = phi_surface;
  }
  const comm::CartTopology& topology() const { return topo_; }
  DecompScheme scheme() const { return scheme_; }
  /// Halo-exchange engine and polar filter (read-only; exposed so tests
  /// and the wall-clock bench can inspect message counts and workspace
  /// reuse counters).
  const HaloExchanger& exchanger() const { return exchanger_; }
  const ops::FourierFilter& filter() const { return filter_; }

  /// Exchange + physical boundary fill of every halo this core uses.
  void refresh_halos(state::State& s, const std::string& phase);

  /// tend = F~(C + A-hat)(psi); exchanges psi's halos first.  Exposed for
  /// operator-level tests.
  void adaptation_tendency(state::State& psi, state::State& tend);
  /// tend = F~(L~)(psi); exchanges first; sigma-dot is re-derived from the
  /// last C's column anchors without communication.
  void advection_tendency(state::State& psi, state::State& tend);

 private:
  void apply_filter(state::State& tend, const mesh::Box& window);
  /// The exchange item list of refresh_halos (every halo this core uses).
  std::vector<ExchangeItem> halo_items(state::State& s) const;
  /// Physical boundary fill at full halo width.  Deterministic in the
  /// owned + already-arrived halo cells and idempotent, so the overlap
  /// path re-runs it after each finish_region: any cell it derives from a
  /// still-in-flight face lies outside the current sub-range's read
  /// footprint and is rewritten by a later fill before anything reads it.
  void fill_physical(state::State& s);

  DycoreConfig config_;
  DecompScheme scheme_;
  comm::Context* comm_ctx_;
  mesh::LatLonMesh mesh_;
  mesh::SigmaLevels levels_;
  state::Stratification strat_;
  comm::CartTopology topo_;
  mesh::DomainDecomp decomp_;
  ops::OpContext opctx_;
  ops::FourierFilter filter_;
  ops::DiagWorkspace ws_;
  HaloExchanger exchanger_;
  state::State tend_, eta_, mid_;
};

}  // namespace ca::core
