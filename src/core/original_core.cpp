#include "core/original_core.hpp"

#include <stdexcept>

#include "ops/adaptation.hpp"
#include "ops/advection.hpp"
#include "ops/smoothing.hpp"
#include "ops/subrange.hpp"

namespace ca::core {
namespace {

mesh::SigmaLevels make_levels(const DycoreConfig& c) {
  return c.stretched_levels ? mesh::SigmaLevels::stretched(c.nz)
                            : mesh::SigmaLevels::uniform(c.nz);
}

std::array<int, 3> my_coords(const comm::CartTopology& topo) {
  return topo.coords;
}

}  // namespace

OriginalCore::OriginalCore(const DycoreConfig& config, comm::Context& ctx,
                           DecompScheme scheme, std::array<int, 3> dims)
    : config_(config),
      scheme_(scheme),
      comm_ctx_(&ctx),
      mesh_(config.nx, config.ny, config.nz),
      levels_(make_levels(config)),
      strat_(levels_),
      topo_(comm::make_cart(ctx, ctx.world(), dims,
                            {/*x periodic=*/true, false, false})),
      decomp_(mesh_, dims, my_coords(topo_)),
      opctx_{&mesh_, &levels_, &strat_, &decomp_, config.params},
      filter_(opctx_),
      ws_(decomp_.lnx(), decomp_.lny(), decomp_.lnz(), halos_for_depth(1)),
      exchanger_(ctx, topo_, decomp_, config.coalesce_exchange),
      tend_(make_state()),
      eta_(make_state()),
      mid_(make_state()) {
  if (scheme == DecompScheme::kXY && dims[2] != 1)
    throw std::invalid_argument("X-Y scheme requires pz == 1");
  if (scheme == DecompScheme::kYZ && dims[0] != 1)
    throw std::invalid_argument("Y-Z scheme requires px == 1");
  if (dims[0] > 1 && config.nx % dims[0] != 0)
    throw std::invalid_argument(
        "distributed Fourier filtering requires nx divisible by px");
}

state::State OriginalCore::make_state() const {
  return state::State(decomp_.lnx(), decomp_.lny(), decomp_.lnz(),
                      halos_for_depth(1));
}

void OriginalCore::initialize(state::State& xi,
                              const state::InitialOptions& options) {
  state::initialize(xi, mesh_, levels_, strat_, decomp_, options);
  refresh_halos(xi, "init");
}

std::vector<ExchangeItem> OriginalCore::halo_items(state::State& s) const {
  const auto h = s.u().halo();
  std::vector<ExchangeItem> items;
  const int wx = decomp_.owns_full_x() ? 0 : h.x;
  items.push_back({&s.u(), nullptr, wx, h.y, h.z});
  items.push_back({&s.v(), nullptr, wx, h.y, h.z});
  items.push_back({&s.phi(), nullptr, wx, h.y, h.z});
  const int wx2 = decomp_.owns_full_x() ? 0 : s.psa().hx();
  items.push_back({nullptr, &s.psa(), wx2, s.psa().hy(), 0});
  return items;
}

void OriginalCore::fill_physical(state::State& s) {
  const auto h = s.u().halo();
  apply_physical_boundaries(opctx_, s, h.x, std::max(h.y, s.psa().hy()),
                            h.z);
}

void OriginalCore::refresh_halos(state::State& s, const std::string& phase) {
  exchanger_.exchange(halo_items(s), phase);
  fill_physical(s);
}

void OriginalCore::apply_filter(state::State& tend, const mesh::Box& window) {
  if (decomp_.owns_full_x()) {
    filter_.apply_local(opctx_, tend, window);
  } else {
    comm_ctx_->stats().set_phase("collective");
    filter_.apply_distributed(opctx_, *comm_ctx_, topo_.line_x, tend,
                              window);
  }
}

void OriginalCore::adaptation_tendency(state::State& psi,
                                       state::State& tend) {
  const mesh::Box window = psi.interior();
  const comm::Communicator* line_z =
      decomp_.dims()[2] > 1 ? &topo_.line_z : nullptr;
  if (config_.overlap_exchange) {
    // Post the refresh, run the halo-independent LocalDiag interior while
    // the messages are in flight, then complete each boundary sub-range as
    // the faces it reads arrive.  The interior shrink (4, 4, 0) dominates
    // the LocalDiag read footprint (psa/U/V/Phi up to +-3 in x, +-2 in y
    // via the face ring; no z reads), so the interior pass touches owned
    // cells only and matches the off-path result bitwise.  The z-line
    // collectives of C stay a single full-window call after the drain.
    exchanger_.post(halo_items(psi), "stencil");
    const mesh::Box inner = ops::shrink_window(window, 4, 4, 0);
    {
      obs::Span sp = comm_ctx_->tracer().span("interior", "compute");
      ops::compute_local_diag(opctx_, psi, inner, ws_);
    }
    obs::Span bsp = comm_ctx_->tracer().span("boundary", "compute");
    for (const mesh::Box& b : ops::subtract_box(window, inner)) {
      exchanger_.finish_region(ops::grow_box(b, 4, 4, 3));
      fill_physical(psi);
      ops::compute_local_diag(opctx_, psi, b, ws_);
    }
    exchanger_.finish();
    bsp.finish();
    fill_physical(psi);
    compute_vert_diagnostics(opctx_, comm_ctx_, line_z, psi, window, ws_,
                             config_.z_allreduce, "collective");
  } else {
    refresh_halos(psi, "stencil");
    compute_diagnostics(opctx_, comm_ctx_, line_z, psi, window, ws_,
                        /*stale_vert=*/false, config_.z_allreduce,
                        "collective");
  }
  ops::apply_adaptation(opctx_, psi, ws_.local, ws_.vert, tend, window);
  apply_filter(tend, window);
}

void OriginalCore::advection_tendency(state::State& psi,
                                      state::State& tend) {
  const mesh::Box window = psi.interior();
  // L~ is a pure stencil operator: pes/pfac/div refresh locally and the
  // sigma-dot field is re-derived from the adaptation C's column anchors
  // without communication.
  if (config_.overlap_exchange) {
    // No collective here, so both the diagnostics and the stencil apply
    // run sub-range by sub-range: the interior (shrink (4, 4, 2) covers
    // the LocalDiag + advection footprint, which adds +-1 in z) while the
    // exchange is in flight, each boundary box once its faces landed.
    exchanger_.post(halo_items(psi), "stencil");
    const mesh::Box inner = ops::shrink_window(window, 4, 4, 2);
    {
      obs::Span sp = comm_ctx_->tracer().span("interior", "compute");
      ops::compute_local_diag(opctx_, psi, inner, ws_);
      ops::apply_advection(opctx_, psi, ws_.local, ws_.vert, tend, inner);
    }
    obs::Span bsp = comm_ctx_->tracer().span("boundary", "compute");
    for (const mesh::Box& b : ops::subtract_box(window, inner)) {
      exchanger_.finish_region(ops::grow_box(b, 4, 4, 3));
      fill_physical(psi);
      ops::compute_local_diag(opctx_, psi, b, ws_);
      ops::apply_advection(opctx_, psi, ws_.local, ws_.vert, tend, b);
    }
    exchanger_.finish();
    bsp.finish();
    fill_physical(psi);
  } else {
    refresh_halos(psi, "stencil");
    compute_diagnostics(opctx_, comm_ctx_, nullptr, psi, window, ws_,
                        /*stale_vert=*/true, config_.z_allreduce,
                        "collective");
    ops::apply_advection(opctx_, psi, ws_.local, ws_.vert, tend, window);
  }
  apply_filter(tend, window);
}

void OriginalCore::step(state::State& xi) {
  // Step boundary of the fault-injection layer (kStall faults).
  comm_ctx_->notify_step();
  obs::Span step_span = comm_ctx_->tracer().span("step", "core");
  const mesh::Box interior = xi.interior();
  const double dt1 = config_.dt_adapt;
  const double dt2 = config_.dt_advect;

  for (int iter = 0; iter < config_.M; ++iter) {
    adaptation_tendency(xi, tend_);
    eta_.add_scaled(xi, dt1, tend_, interior);

    adaptation_tendency(eta_, tend_);
    eta_.add_scaled(xi, dt1, tend_, interior);

    mid_.average(xi, eta_, interior);
    adaptation_tendency(mid_, tend_);
    xi.add_scaled(xi, dt1, tend_, interior);
  }

  advection_tendency(xi, tend_);
  eta_.add_scaled(xi, dt2, tend_, interior);

  advection_tendency(eta_, tend_);
  eta_.add_scaled(xi, dt2, tend_, interior);

  mid_.average(xi, eta_, interior);
  advection_tendency(mid_, tend_);
  xi.add_scaled(xi, dt2, tend_, interior);

  // Smoothing: one more exchange for the +-2 stencil.
  if (config_.overlap_exchange) {
    exchanger_.post(halo_items(xi), "stencil");
    const mesh::Box inner = ops::shrink_window(interior, 2, 2, 0);
    {
      obs::Span sp = comm_ctx_->tracer().span("interior", "compute");
      ops::apply_smoothing(opctx_, xi, eta_, inner);
    }
    obs::Span bsp = comm_ctx_->tracer().span("boundary", "compute");
    for (const mesh::Box& b : ops::subtract_box(interior, inner)) {
      exchanger_.finish_region(ops::grow_box(b, 4, 4, 3));
      fill_physical(xi);
      ops::apply_smoothing(opctx_, xi, eta_, b);
    }
    exchanger_.finish();
    bsp.finish();
    fill_physical(xi);
  } else {
    refresh_halos(xi, "stencil");
    ops::apply_smoothing(opctx_, xi, eta_, interior);
  }
  xi.assign(eta_, interior);
}

void OriginalCore::run(state::State& xi, int n) {
  for (int s = 0; s < n; ++s) step(xi);
}

}  // namespace ca::core
