#include "core/exchange.hpp"

#include "core/dycore_config.hpp"

#include <stdexcept>
#include <string>

#include "comm/collectives.hpp"
#include "comm/error.hpp"
#include "ops/vertical.hpp"

namespace ca::core {
namespace {

constexpr int kTagExchangeBase = 1 << 20;
/// Coalesced messages get their own tag block, clear of the per-item tags
/// (base + item*27 + dir) and of gather_global's base + (1 << 18).
constexpr int kTagCoalescedBase = kTagExchangeBase + (1 << 19);

/// Direction index of offset (dx, dy, dz) in {-1,0,1}^3.
int dir_index(int dx, int dy, int dz) {
  return (dx + 1) + 3 * (dy + 1) + 9 * (dz + 1);
}

int item_tag(int item, int dx, int dy, int dz) {
  return kTagExchangeBase + item * 27 + dir_index(dx, dy, dz);
}

int coalesced_tag(int dx, int dy, int dz) {
  return kTagCoalescedBase + dir_index(dx, dy, dz);
}

/// 2-D send/recv spans along one axis.
struct Span2 {
  int lo, hi;
};

Span2 send_span(int n, int d, int w) {
  if (d == 0) return {0, n};
  return d < 0 ? Span2{0, w} : Span2{n - w, n};
}

Span2 recv_span(int n, int d, int w) {
  if (d == 0) return {0, n};
  return d < 0 ? Span2{-w, 0} : Span2{n, n + w};
}

/// Whether `item` exchanges data with the neighbor at offset (dx, dy, dz):
/// every nonzero offset axis must carry a nonzero halo width, and 2-D
/// fields never exchange along z.  Identical on the send and receive
/// sides, which is what keeps the coalesced message layout in agreement
/// between peers.
bool participates(const ExchangeItem& item, int dx, int dy, int dz) {
  if ((dx != 0 && item.wx == 0) || (dy != 0 && item.wy == 0)) return false;
  if (dz != 0 && (item.wz == 0 || item.f2 != nullptr)) return false;
  return true;
}

/// Doubles `item` sends toward offset (dx, dy, dz).  Neighbor blocks share
/// local extents along zero-offset axes, so this is also the neighbor's
/// matching receive volume.
std::size_t send_volume(const ExchangeItem& item, int dx, int dy, int dz) {
  if (item.f3 != nullptr) {
    const auto& f = *item.f3;
    return static_cast<std::size_t>(
        mesh::send_box(f.nx(), f.ny(), f.nz(), dx, dy, dz, item.wx, item.wy,
                       item.wz)
            .volume());
  }
  const auto& f = *item.f2;
  const Span2 sx = send_span(f.nx(), dx, item.wx);
  const Span2 sy = send_span(f.ny(), dy, item.wy);
  return static_cast<std::size_t>(sx.hi - sx.lo) *
         static_cast<std::size_t>(sy.hi - sy.lo);
}

/// Packs `item`'s send region toward (dx, dy, dz) into dst (exactly
/// send_volume doubles, x-fastest).
void pack_item(const ExchangeItem& item, int dx, int dy, int dz,
               std::span<double> dst) {
  if (item.f3 != nullptr) {
    const auto& f = *item.f3;
    const mesh::Box sb = mesh::send_box(f.nx(), f.ny(), f.nz(), dx, dy, dz,
                                        item.wx, item.wy, item.wz);
    mesh::pack_box(f, sb, dst);
    return;
  }
  const auto& f = *item.f2;
  const Span2 sx = send_span(f.nx(), dx, item.wx);
  const Span2 sy = send_span(f.ny(), dy, item.wy);
  std::size_t idx = 0;
  for (int j = sy.lo; j < sy.hi; ++j)
    for (int i = sx.lo; i < sx.hi; ++i) dst[idx++] = f(i, j);
}

}  // namespace

void apply_physical_boundaries(const ops::OpContext& ctx, state::State& s,
                               int wx, int wy, int wz) {
  const auto& d = *ctx.decomp;
  auto clamp3 = [](int w, int h) { return std::min(w, h); };
  if (d.owns_full_x() && wx > 0) {
    mesh::fill_x_periodic(s.u(), clamp3(wx, s.u().halo().x));
    mesh::fill_x_periodic(s.v(), clamp3(wx, s.v().halo().x));
    mesh::fill_x_periodic(s.phi(), clamp3(wx, s.phi().halo().x));
    // 2-D field: wrap through a thin 3-D view equivalent.
    auto& psa = s.psa();
    const int hw = std::min(wx + ops::kSurfaceRing, psa.hx());
    for (int j = -psa.hy(); j < psa.ny() + psa.hy(); ++j) {
      for (int dx = 1; dx <= hw; ++dx) {
        psa(-dx, j) = psa(psa.nx() - dx, j);
        psa(psa.nx() - 1 + dx, j) = psa(dx - 1, j);
      }
    }
  }
  if (wy > 0) {
    if (d.at_north_pole()) {
      mesh::fill_pole_north(s.u(), clamp3(wy, s.u().halo().y),
                            mesh::PoleParity::kSymmetric);
      mesh::fill_pole_north(s.v(), clamp3(wy, s.v().halo().y),
                            mesh::PoleParity::kAntisymmetric);
      mesh::fill_pole_north(s.phi(), clamp3(wy, s.phi().halo().y),
                            mesh::PoleParity::kSymmetric);
      auto& psa = s.psa();
      const int hw = std::min(wy + ops::kSurfaceRing, psa.hy());
      for (int dd = 1; dd <= hw; ++dd)
        for (int i = -psa.hx(); i < psa.nx() + psa.hx(); ++i)
          psa(i, -dd) = psa(i, dd - 1);
    }
    if (d.at_south_pole()) {
      mesh::fill_pole_south(s.u(), clamp3(wy, s.u().halo().y),
                            mesh::PoleParity::kSymmetric);
      mesh::fill_pole_south(s.v(), clamp3(wy, s.v().halo().y),
                            mesh::PoleParity::kAntisymmetric);
      mesh::fill_pole_south(s.phi(), clamp3(wy, s.phi().halo().y),
                            mesh::PoleParity::kSymmetric);
      auto& psa = s.psa();
      const int hw = std::min(wy + ops::kSurfaceRing, psa.hy());
      const int ny = psa.ny();
      for (int dd = 1; dd <= hw; ++dd)
        for (int i = -psa.hx(); i < psa.nx() + psa.hx(); ++i)
          psa(i, ny - 1 + dd) = psa(i, ny - dd);
    }
  }
  if (wz > 0) {
    if (d.at_model_top()) {
      mesh::fill_z_top(s.u(), clamp3(wz, s.u().halo().z));
      mesh::fill_z_top(s.v(), clamp3(wz, s.v().halo().z));
      mesh::fill_z_top(s.phi(), clamp3(wz, s.phi().halo().z));
    }
    if (d.at_surface()) {
      mesh::fill_z_bottom(s.u(), clamp3(wz, s.u().halo().z));
      mesh::fill_z_bottom(s.v(), clamp3(wz, s.v().halo().z));
      mesh::fill_z_bottom(s.phi(), clamp3(wz, s.phi().halo().z));
    }
  }
}

std::span<double> HaloExchanger::acquire(
    std::vector<std::vector<double>>& pool, std::size_t& cursor,
    std::size_t n) {
  if (cursor == pool.size()) pool.emplace_back();
  std::vector<double>& buf = pool[cursor++];
  // resize() within capacity touches no heap; steady state means every
  // slot has already seen its largest message.
  const bool grew = n > buf.capacity();
  buf.resize(n);
  ctx_->stats().record_pool_acquire(grew);
  return {buf.data(), n};
}

HaloExchanger::UnpackSeg HaloExchanger::recv_seg(const ExchangeItem& item,
                                                 int it, int dx, int dy,
                                                 int dz) const {
  UnpackSeg seg;
  seg.item = it;
  if (item.f3 != nullptr) {
    const auto& f = *item.f3;
    seg.box3 = mesh::recv_box(f.nx(), f.ny(), f.nz(), dx, dy, dz, item.wx,
                              item.wy, item.wz);
    seg.count = static_cast<std::size_t>(seg.box3.volume());
  } else {
    const auto& f = *item.f2;
    const Span2 rx = recv_span(f.nx(), dx, item.wx);
    const Span2 ry = recv_span(f.ny(), dy, item.wy);
    seg.is2d = true;
    seg.i0 = rx.lo;
    seg.i1 = rx.hi;
    seg.j0 = ry.lo;
    seg.j1 = ry.hi;
    seg.count = static_cast<std::size_t>(rx.hi - rx.lo) *
                static_cast<std::size_t>(ry.hi - ry.lo);
  }
  return seg;
}

void HaloExchanger::post_per_item(int nbr, int dx, int dy, int dz) {
  const auto& topo = *topo_;
  for (std::size_t it = 0; it < items_.size(); ++it) {
    const ExchangeItem& item = items_[it];
    if (!participates(item, dx, dy, dz)) continue;

    auto sbuf = acquire(send_pool_, send_cursor_,
                        send_volume(item, dx, dy, dz));
    pack_item(item, dx, dy, dz, sbuf);
    ctx_->send_values<double>(topo.comm, nbr,
                              item_tag(static_cast<int>(it), dx, dy, dz),
                              sbuf);
    ++last_message_count_;

    PendingRecv pr;
    pr.nbr = nbr;
    pr.seg_begin = segs_.size();
    segs_.push_back(recv_seg(item, static_cast<int>(it), dx, dy, dz));
    pr.seg_end = segs_.size();
    pr.buffer = acquire(recv_pool_, recv_cursor_, segs_.back().count);
    pr.request = ctx_->irecv_values<double>(
        topo.comm, nbr, item_tag(static_cast<int>(it), -dx, -dy, -dz),
        pr.buffer);
    recvs_.push_back(std::move(pr));
  }
}

void HaloExchanger::post_coalesced(int nbr, int dx, int dy, int dz) {
  const auto& topo = *topo_;
  // Send: concatenate every participating item's pack region, item order.
  std::size_t total = 0;
  for (const ExchangeItem& item : items_)
    if (participates(item, dx, dy, dz)) total += send_volume(item, dx, dy, dz);
  if (total == 0) return;

  auto sbuf = acquire(send_pool_, send_cursor_, total);
  std::size_t offset = 0;
  for (const ExchangeItem& item : items_) {
    if (!participates(item, dx, dy, dz)) continue;
    const std::size_t n = send_volume(item, dx, dy, dz);
    pack_item(item, dx, dy, dz, sbuf.subspan(offset, n));
    offset += n;
  }
  ctx_->send_values<double>(topo.comm, nbr, coalesced_tag(dx, dy, dz), sbuf);
  ++last_message_count_;

  // Receive: the neighbor's message toward us uses the mirrored layout
  // (participation and volumes agree by construction).
  PendingRecv pr;
  pr.nbr = nbr;
  pr.seg_begin = segs_.size();
  std::size_t rtotal = 0;
  for (std::size_t it = 0; it < items_.size(); ++it) {
    const ExchangeItem& item = items_[it];
    if (!participates(item, dx, dy, dz)) continue;
    UnpackSeg seg = recv_seg(item, static_cast<int>(it), dx, dy, dz);
    seg.offset = rtotal;
    rtotal += seg.count;
    segs_.push_back(seg);
  }
  pr.seg_end = segs_.size();
  pr.buffer = acquire(recv_pool_, recv_cursor_, rtotal);
  pr.request = ctx_->irecv_values<double>(
      topo.comm, nbr, coalesced_tag(-dx, -dy, -dz), pr.buffer);
  recvs_.push_back(std::move(pr));
}

void HaloExchanger::begin(const std::vector<ExchangeItem>& items,
                          const std::string& phase) {
  // Leftover in-flight receives (a post() whose finish() never ran) must
  // drain before re-posting: the new round reuses the same (neighbor, tag)
  // triples and FIFO matching would pair old messages with new requests.
  if (!recvs_.empty()) finish();
  ctx_->stats().set_phase(phase);
  obs::Span span =
      ctx_->tracer().phase_span("exchange_post", "exchange", "exchange");
  items_ = items;
  recvs_.clear();
  segs_.clear();
  send_cursor_ = 0;
  recv_cursor_ = 0;
  last_message_count_ = 0;
  const auto& topo = *topo_;
  const int self = topo.comm.rank();

  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const int nbr = topo.neighbor(dx, dy, dz);
        if (nbr < 0 || nbr == self) continue;
        if (coalesce_)
          post_coalesced(nbr, dx, dy, dz);
        else
          post_per_item(nbr, dx, dy, dz);
      }
    }
  }
}

void HaloExchanger::unpack(const PendingRecv& pr) {
  for (std::size_t s = pr.seg_begin; s < pr.seg_end; ++s) {
    const UnpackSeg& seg = segs_[s];
    const std::span<const double> data =
        pr.buffer.subspan(seg.offset, seg.count);
    if (seg.is2d) {
      auto& f = *items_[static_cast<std::size_t>(seg.item)].f2;
      std::size_t idx = 0;
      for (int j = seg.j0; j < seg.j1; ++j)
        for (int i = seg.i0; i < seg.i1; ++i) f(i, j) = data[idx++];
    } else {
      auto& f = *items_[static_cast<std::size_t>(seg.item)].f3;
      mesh::unpack_box(f, seg.box3, data);
    }
  }
}

void HaloExchanger::complete(PendingRecv& pr) {
  if (pr.done) return;
  // The wait is bounded by the runtime's receive timeout (see
  // comm::RunOptions): a lost neighbor message surfaces as a typed
  // TimeoutError annotated with the exchange item instead of an infinite
  // spin on the request.  Blocked time is charged to "exchange_wait" —
  // the quantity the overlap hides — while unpacking stays in "exchange".
  // Both windows are obs spans, so the trace timeline shows the same
  // seconds the bench's phase totals report.
  {
    obs::Span wait_span = ctx_->tracer().phase_span("exchange_wait",
                                                    "exchange",
                                                    "exchange_wait");
    try {
      ctx_->wait(pr.request);
    } catch (const comm::TimeoutError& e) {
      const UnpackSeg& first = segs_[pr.seg_begin];
      throw comm::CommError(
          std::string("halo exchange item ") + std::to_string(first.item) +
          (coalesce_ ? " (coalesced message)" : "") + " from rank " +
          std::to_string(pr.nbr) + " timed out: " + e.what());
    }
  }
  obs::Span unpack_span =
      ctx_->tracer().phase_span("exchange_unpack", "exchange", "exchange");
  unpack(pr);
  pr.done = true;
}

bool HaloExchanger::seg_intersects(const UnpackSeg& seg,
                                   const mesh::Box& region) const {
  if (seg.is2d) {
    return seg.i0 < region.i1 && region.i0 < seg.i1 && seg.j0 < region.j1 &&
           region.j0 < seg.j1;
  }
  return mesh::intersects(seg.box3, region);
}

void HaloExchanger::finish() {
  for (auto& pr : recvs_) complete(pr);
  recvs_.clear();
  segs_.clear();
}

void HaloExchanger::finish_region(const mesh::Box& region) {
  for (auto& pr : recvs_) {
    if (pr.done) continue;
    for (std::size_t s = pr.seg_begin; s < pr.seg_end; ++s) {
      if (seg_intersects(segs_[s], region)) {
        complete(pr);
        break;
      }
    }
  }
}

bool HaloExchanger::test() {
  bool all = true;
  for (auto& pr : recvs_) {
    if (pr.done) continue;
    if (ctx_->test(pr.request)) {
      obs::Span span =
          ctx_->tracer().phase_span("exchange_unpack", "exchange", "exchange");
      unpack(pr);
      pr.done = true;
    } else {
      all = false;
    }
  }
  return all;
}

std::size_t HaloExchanger::pending_count() const {
  std::size_t n = 0;
  for (const auto& pr : recvs_)
    if (!pr.done) ++n;
  return n;
}

void HaloExchanger::exchange(const std::vector<ExchangeItem>& items,
                             const std::string& phase) {
  begin(items, phase);
  finish();
}

void compute_diagnostics(const ops::OpContext& ctx, comm::Context* comm_ctx,
                         const comm::Communicator* line_z,
                         const state::State& xi, const mesh::Box& window,
                         ops::DiagWorkspace& ws, bool stale_vert,
                         comm::AllreduceAlgorithm alg,
                         const std::string& phase) {
  ops::compute_local_diag(ctx, xi, window, ws);
  if (stale_vert) return;  // ws.vert keeps the last C's products
  compute_vert_diagnostics(ctx, comm_ctx, line_z, xi, window, ws, alg, phase);
}

void compute_vert_diagnostics(const ops::OpContext& ctx,
                              comm::Context* comm_ctx,
                              const comm::Communicator* line_z,
                              const state::State& xi, const mesh::Box& window,
                              ops::DiagWorkspace& ws,
                              comm::AllreduceAlgorithm alg,
                              const std::string& phase) {
  const bool distributed = line_z != nullptr && line_z->size() > 1;
  if (!distributed) {
    ops::compute_vert_diag_serial(ctx, xi, window, ws);
    return;
  }

  const mesh::Box ring = ops::face_ring(window);
  ops::column_partials(ctx, xi, ring, ws.local, ws.own_div, ws.own_phi);

  // Pack [own_div | own_phi] over the ring face and run the two z-line
  // collectives (the operator C's communication).
  const int fi = ring.i1 - ring.i0;
  const int fj = ring.j1 - ring.j0;
  const std::size_t face = static_cast<std::size_t>(fi) * fj;
  std::vector<double> own(2 * face), total(2 * face), prefix(2 * face);
  std::size_t idx = 0;
  for (int j = ring.j0; j < ring.j1; ++j) {
    for (int i = ring.i0; i < ring.i1; ++i) {
      own[idx] = ws.own_div(i, j);
      own[idx + face] = ws.own_phi(i, j);
      ++idx;
    }
  }
  if (comm_ctx == nullptr)
    throw std::invalid_argument(
        "compute_diagnostics: distributed path needs a comm context");
  comm_ctx->stats().set_phase(phase);
  comm::allreduce<double>(*comm_ctx, *line_z, own, total,
                          comm::ReduceOp::kSum, alg);
  comm::exscan<double>(*comm_ctx, *line_z, own, prefix,
                       comm::ReduceOp::kSum);
  idx = 0;
  for (int j = ring.j0; j < ring.j1; ++j) {
    for (int i = ring.i0; i < ring.i1; ++i) {
      ws.total_div(i, j) = total[idx];
      ws.total_phi(i, j) = total[idx + face];
      ws.base_div(i, j) = prefix[idx];
      ws.base_phi(i, j) = prefix[idx + face];
      ++idx;
    }
  }
  ops::column_finish(ctx, xi, ring, ws.local, ws.base_div, ws.total_div,
                     ws.base_phi, ws.own_phi, ws.total_phi, ws.vert);
}

state::State gather_global(const ops::OpContext& ctx, comm::Context& cc,
                           const comm::CartTopology& topo,
                           const state::State& xi) {
  constexpr int kTagGatherState = (1 << 20) + (1 << 18);
  const auto& mesh = *ctx.mesh;
  const auto& d = *ctx.decomp;

  // Pack this rank's interior: U, V, Phi (x-fastest), then psa.
  std::vector<double> buf;
  buf.reserve(static_cast<std::size_t>(d.lnx()) * d.lny() *
                  (3 * d.lnz()) +
              static_cast<std::size_t>(d.lnx()) * d.lny());
  auto pack3 = [&](const util::Array3D<double>& f) {
    for (int k = 0; k < d.lnz(); ++k)
      for (int j = 0; j < d.lny(); ++j)
        for (int i = 0; i < d.lnx(); ++i) buf.push_back(f(i, j, k));
  };
  pack3(xi.u());
  pack3(xi.v());
  pack3(xi.phi());
  for (int j = 0; j < d.lny(); ++j)
    for (int i = 0; i < d.lnx(); ++i) buf.push_back(xi.psa()(i, j));

  if (topo.comm.rank() != 0) {
    cc.send_values<double>(topo.comm, 0, kTagGatherState, buf);
    return state::State{};
  }

  state::State global(mesh.nx(), mesh.ny(), mesh.nz(), halos_for_depth(1));
  for (int r = 0; r < topo.comm.size(); ++r) {
    std::array<int, 3> coords{r % topo.dims[0],
                              (r / topo.dims[0]) % topo.dims[1],
                              r / (topo.dims[0] * topo.dims[1])};
    mesh::DomainDecomp rd(mesh, topo.dims, coords);
    std::vector<double> rbuf;
    if (r == 0) {
      rbuf = std::move(buf);
    } else {
      rbuf.resize(static_cast<std::size_t>(rd.lnx()) * rd.lny() *
                      (3 * rd.lnz()) +
                  static_cast<std::size_t>(rd.lnx()) * rd.lny());
      cc.recv_values<double>(topo.comm, r, kTagGatherState, rbuf);
    }
    std::size_t idx = 0;
    auto unpack3 = [&](util::Array3D<double>& f) {
      for (int k = 0; k < rd.lnz(); ++k)
        for (int j = 0; j < rd.lny(); ++j)
          for (int i = 0; i < rd.lnx(); ++i)
            f(rd.gi(i), rd.gj(j), rd.gk(k)) = rbuf[idx++];
    };
    unpack3(global.u());
    unpack3(global.v());
    unpack3(global.phi());
    for (int j = 0; j < rd.lny(); ++j)
      for (int i = 0; i < rd.lnx(); ++i)
        global.psa()(rd.gi(i), rd.gj(j)) = rbuf[idx++];
  }
  return global;
}

}  // namespace ca::core
