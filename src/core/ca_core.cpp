#include "core/ca_core.hpp"

#include <array>
#include <stdexcept>

#include "ops/adaptation.hpp"
#include "ops/advection.hpp"
#include "ops/smoothing.hpp"
#include "ops/subrange.hpp"
#include "ops/vertical.hpp"

namespace ca::core {
namespace {

mesh::SigmaLevels make_levels(const DycoreConfig& c) {
  return c.stretched_levels ? mesh::SigmaLevels::stretched(c.nz)
                            : mesh::SigmaLevels::uniform(c.nz);
}

}  // namespace


namespace {

/// The exchanged C-product halo rows span the owned x extent; refresh
/// their periodic x halos so x-stencils (phi' at i-2, sigma-dot at i-1)
/// read consistent values at the wrap seam.
void wrap_vert_x(ops::DiagWorkspace& ws) {
  mesh::fill_x_periodic(ws.vert.sdot, ws.vert.sdot.halo().x);
  mesh::fill_x_periodic(ws.vert.w, ws.vert.w.halo().x);
  mesh::fill_x_periodic(ws.vert.phi_geo, ws.vert.phi_geo.halo().x);
  auto& dv = ws.vert.divsum;
  for (int j = -dv.hy(); j < dv.ny() + dv.hy(); ++j)
    for (int dx = 1; dx <= dv.hx(); ++dx) {
      dv(-dx, j) = dv(dv.nx() - dx, j);
      dv(dv.nx() - 1 + dx, j) = dv(dx - 1, j);
    }
}

}  // namespace

CACore::CACore(const DycoreConfig& config, comm::Context& ctx,
               std::array<int, 3> dims, const CAOptions& options)
    : config_(config),
      options_(options),
      comm_ctx_(&ctx),
      mesh_(config.nx, config.ny, config.nz),
      levels_(make_levels(config)),
      strat_(levels_),
      topo_(comm::make_cart(ctx, ctx.world(), dims, {true, false, false})),
      decomp_(mesh_, dims, topo_.coords),
      opctx_{&mesh_, &levels_, &strat_, &decomp_, config.params},
      filter_(opctx_),
      ws_(decomp_.lnx(), decomp_.lny(), decomp_.lnz(),
          halos_for_depth(3 * config.M)),
      exchanger_(ctx, topo_, decomp_, config.coalesce_exchange),
      tend_(make_state()),
      eta_(make_state()),
      mid_(make_state()),
      pre_(make_state()) {
  if (dims[0] != 1)
    throw std::invalid_argument("CACore requires the Y-Z scheme (px == 1)");
  if (config.M < 2)
    throw std::invalid_argument("CACore requires M >= 2");
  if (dims[1] > 1 && decomp_.lny() < 3 * config.M + 1)
    throw std::invalid_argument(
        "CACore: ny/py too small for the 3M-deep y halos");
  if (dims[2] > 1 && decomp_.lnz() < 3)
    throw std::invalid_argument(
        "CACore: nz/pz too small for the advection z halos (need >= 3)");
}

state::State CACore::make_state() const {
  return state::State(decomp_.lnx(), decomp_.lny(), decomp_.lnz(),
                      halos_for_depth(3 * config_.M));
}

void CACore::initialize(state::State& xi,
                        const state::InitialOptions& options) {
  state::initialize(xi, mesh_, levels_, strat_, decomp_, options);
  fill_boundaries(xi);
  have_stale_c_ = false;
  step_count_ = 0;
}

mesh::Box CACore::extended_window(int ey, int ez) const {
  mesh::Box b{0, decomp_.lnx(), 0, decomp_.lny(), 0, decomp_.lnz()};
  if (!decomp_.at_north_pole()) b.j0 -= ey;
  if (!decomp_.at_south_pole()) b.j1 += ey;
  if (!decomp_.at_model_top()) b.k0 -= ez;
  if (!decomp_.at_surface()) b.k1 += ez;
  return b;
}

void CACore::fill_boundaries(state::State& s) {
  const auto h = s.u().halo();
  apply_physical_boundaries(opctx_, s, h.x, std::max(h.y, s.psa().hy()),
                            h.z);
}

void CACore::eval_tendency(state::State& input, const mesh::Box& window,
                           Operator op, bool fresh_c) {
  // Paper mode: the collective columns cover only the block face; the
  // extended windows' halo rows keep the stale (exchanged) C products.
  const mesh::Box c_window =
      options_.fresh_c_on_block_face
          ? mesh::Box{0, decomp_.lnx(), 0, decomp_.lny(), 0, decomp_.lnz()}
          : window;
  const mesh::Box ring = ops::face_ring(c_window);
  ops::compute_local_diag(opctx_, input, window, ws_);

  if (fresh_c) {
    ops::column_partials(opctx_, input, ring, ws_.local, ws_.own_div,
                         ws_.own_phi);
    if (topo_.line_z.size() > 1) {
      const std::size_t face = static_cast<std::size_t>(ring.i1 - ring.i0) *
                               static_cast<std::size_t>(ring.j1 - ring.j0);
      std::vector<double> own(2 * face), total(2 * face), prefix(2 * face);
      std::size_t idx = 0;
      for (int j = ring.j0; j < ring.j1; ++j)
        for (int i = ring.i0; i < ring.i1; ++i) {
          own[idx] = ws_.own_div(i, j);
          own[idx + face] = ws_.own_phi(i, j);
          ++idx;
        }
      comm_ctx_->stats().set_phase("collective");
      comm::allreduce<double>(*comm_ctx_, topo_.line_z, own, total,
                              comm::ReduceOp::kSum, config_.z_allreduce);
      comm::exscan<double>(*comm_ctx_, topo_.line_z, own, prefix,
                           comm::ReduceOp::kSum);
      idx = 0;
      for (int j = ring.j0; j < ring.j1; ++j)
        for (int i = ring.i0; i < ring.i1; ++i) {
          ws_.total_div(i, j) = total[idx];
          ws_.total_phi(i, j) = total[idx + face];
          ws_.base_div(i, j) = prefix[idx];
          ws_.base_phi(i, j) = prefix[idx + face];
          ++idx;
        }
    } else {
      for (int j = ring.j0; j < ring.j1; ++j)
        for (int i = ring.i0; i < ring.i1; ++i) {
          ws_.total_div(i, j) = ws_.own_div(i, j);
          ws_.total_phi(i, j) = ws_.own_phi(i, j);
          ws_.base_div(i, j) = 0.0;
          ws_.base_phi(i, j) = 0.0;
        }
    }
    ops::column_finish(opctx_, input, ring, ws_.local, ws_.base_div,
                       ws_.total_div, ws_.base_phi, ws_.own_phi,
                       ws_.total_phi, ws_.vert);
    have_stale_c_ = true;
  }
  // Stale evaluations reuse ws_.vert as-is: the last C's products are
  // globally consistent fields that traveled with the deep halo exchange
  // (paper eq. 13's C(psi^{i-2}) replacement).

  if (op == Operator::kAdaptation) {
    ops::apply_adaptation(opctx_, input, ws_.local, ws_.vert, tend_,
                          window);
  } else {
    ops::apply_advection(opctx_, input, ws_.local, ws_.vert, tend_,
                         window);
  }
  filter_.apply_local(opctx_, tend_, window);
}


namespace {

/// The advection operator leaves p'_sa unchanged, but its L2(V) term reads
/// the surface factors one row beyond the update window (pfac at j+2 via
/// the advecting velocity at j+1).  Copy the base state's full psa array
/// (halos included) so the next update's surface factors are valid
/// everywhere they are read.
void carry_psa(const state::State& base, state::State& out) {
  auto src = base.psa().raw();
  auto dst = out.psa().raw();
  std::copy(src.begin(), src.end(), dst.begin());
}

}  // namespace

void CACore::step(state::State& xi) {
  // Step boundary of the fault-injection layer: a scheduled kStall fault
  // pauses this rank here, before the step's exchanges.
  comm_ctx_->notify_step();
  obs::Span step_span = comm_ctx_->tracer().span("step", "core");
  const int M = config_.M;
  const int depth_y = 3 * M + 1;
  const double dt1 = config_.dt_adapt;
  const double dt2 = config_.dt_advect;
  const bool split_north = !decomp_.at_north_pole() && topo_.dims[1] > 1;
  const bool split_south = !decomp_.at_south_pole() && topo_.dims[1] > 1;
  const bool do_smooth = step_count_ > 0;

  // --- former smoothing (S1) ------------------------------------------------
  if (do_smooth) {
    if (options_.fuse_smoothing) {
      pre_.assign(xi, pre_.extended(2, 2, 0));
      ops::apply_smoothing_former(opctx_, xi, xi.interior(), split_north,
                                  split_south);
    } else {
      // Ablation: separate smoothing exchange, as in the original scheme.
      std::vector<ExchangeItem> sitems;
      sitems.push_back({&xi.u(), nullptr, 0, 2, 0});
      sitems.push_back({&xi.v(), nullptr, 0, 2, 0});
      sitems.push_back({&xi.phi(), nullptr, 0, 2, 0});
      sitems.push_back({nullptr, &xi.psa(), 0, 2, 0});
      exchanger_.exchange(sitems, "stencil");
      fill_boundaries(xi);
      ops::apply_smoothing(opctx_, xi, eta_, xi.interior());
      xi.assign(eta_, xi.interior());
    }
    fill_boundaries(xi);
  }

  // --- the ONE adaptation exchange: deep halos + fused smoothing data +
  // the stale column anchors ------------------------------------------------
  std::vector<ExchangeItem> items;
  items.push_back({&xi.u(), nullptr, 0, depth_y, 0});
  items.push_back({&xi.v(), nullptr, 0, depth_y, 0});
  items.push_back({&xi.phi(), nullptr, 0, depth_y, 0});
  items.push_back({nullptr, &xi.psa(), 0, xi.psa().hy(), 0});
  // The C products travel with the state (this is why the paper's xi has
  // "length ten"): the stale evaluations of the approximate iteration and
  // the advection process read them on the extended windows.  The
  // adaptation process has no z-halo reads at all (its vertical coupling
  // routes through C's collectives), so this exchange is y-only.
  items.push_back({nullptr, &ws_.vert.divsum, 0, ws_.vert.divsum.hy(), 0});
  items.push_back({&ws_.vert.sdot, nullptr, 0, depth_y, 0});
  items.push_back({&ws_.vert.w, nullptr, 0, depth_y, 0});
  items.push_back({&ws_.vert.phi_geo, nullptr, 0, depth_y, 0});
  if (do_smooth && options_.fuse_smoothing) {
    // Depth 4: S2 recomputes the +-2 halo rows as complete canonical
    // folds, which read pre-smoothing rows out to +-4.
    items.push_back({&pre_.phi(), nullptr, 0, 4, 0});
    items.push_back({nullptr, &pre_.psa(), 0, 4, 0});
  }
  exchanger_.begin(items, "stencil");

  // --- overlapped inner eta1 (stale C: communication-free) ------------------
  const bool use_approx = options_.approximate_iteration;
  const bool can_overlap = options_.overlap && have_stale_c_ && use_approx;
  mesh::Box inner{0, 0, 0, 0, 0, 0};
  if (can_overlap) {
    inner = mesh::Box{0,
                      decomp_.lnx(),
                      split_north ? 4 : 0,
                      split_south ? decomp_.lny() - 4 : decomp_.lny(),
                      0,
                      decomp_.lnz()};
    if (!inner.empty()) {
      obs::Span sp = comm_ctx_->tracer().span("interior", "compute");
      eval_tendency(xi, inner, Operator::kAdaptation, /*fresh_c=*/false);
      eta_.add_scaled(xi, dt1, tend_, inner);
    }
  }

  exchanger_.finish();
  wrap_vert_x(ws_);

  // --- later smoothing (S2) --------------------------------------------------
  if (do_smooth && options_.fuse_smoothing) {
    // The received pre-smoothing halo rows span the owned x extent only;
    // refresh their periodic x halos before S2's x-quartic reads them.
    mesh::fill_x_periodic(pre_.phi(), 2);
    auto& ppsa = pre_.psa();
    for (int j = -ppsa.hy(); j < ppsa.ny() + ppsa.hy(); ++j)
      for (int dx = 1; dx <= 2; ++dx) {
        ppsa(-dx, j) = ppsa(ppsa.nx() - dx, j);
        ppsa(ppsa.nx() - 1 + dx, j) = ppsa(dx - 1, j);
      }
    ops::apply_smoothing_later(opctx_, pre_, xi, xi.interior(), split_north,
                               split_south);
  }
  fill_boundaries(xi);

  // --- adaptation: M iterations, 3 updates each ------------------------------
  int u = 0;
  for (int iter = 0; iter < M; ++iter) {
    const int e1 = 3 * M - 1 - u;
    const mesh::Box w1 = extended_window(e1, 0);
    const bool fresh1 = !(use_approx && have_stale_c_);
    if (iter == 0 && can_overlap) {
      for (const mesh::Box& b : ops::subtract_box(w1, inner)) {
        eval_tendency(xi, b, Operator::kAdaptation, /*fresh_c=*/false);
        eta_.add_scaled(xi, dt1, tend_, b);
      }
    } else {
      eval_tendency(xi, w1, Operator::kAdaptation, fresh1);
      eta_.add_scaled(xi, dt1, tend_, w1);
    }
    ++u;
    fill_boundaries(eta_);
    if (debug_observer) debug_observer("eta1", eta_);

    const int e2 = 3 * M - 1 - u;
    const mesh::Box w2 = extended_window(e2, 0);
    eval_tendency(eta_, w2, Operator::kAdaptation, /*fresh_c=*/true);
    eta_.add_scaled(xi, dt1, tend_, w2);
    ++u;
    fill_boundaries(eta_);
    if (debug_observer) debug_observer("eta2", eta_);

    const int e3 = 3 * M - 1 - u;
    const mesh::Box w3 = extended_window(e3, 0);
    mid_.average(xi, eta_, w2);
    fill_boundaries(mid_);
    eval_tendency(mid_, w3, Operator::kAdaptation, /*fresh_c=*/true);
    xi.add_scaled(xi, dt1, tend_, w3);
    ++u;
    fill_boundaries(xi);
    if (debug_observer) debug_observer("eta3", xi);
  }

  // --- the ONE advection exchange --------------------------------------------
  std::vector<ExchangeItem> aitems;
  aitems.push_back({&xi.u(), nullptr, 0, 4, 3});
  aitems.push_back({&xi.v(), nullptr, 0, 4, 3});
  aitems.push_back({&xi.phi(), nullptr, 0, 4, 3});
  aitems.push_back({nullptr, &xi.psa(), 0, xi.psa().hy(), 0});
  aitems.push_back({&ws_.vert.sdot, nullptr, 0, 4, 3});
  exchanger_.begin(aitems, "stencil");

  mesh::Box adv_inner{0, 0, 0, 0, 0, 0};
  if (options_.overlap) {
    adv_inner = mesh::Box{0,
                          decomp_.lnx(),
                          split_north ? 4 : 0,
                          split_south ? decomp_.lny() - 4 : decomp_.lny(),
                          decomp_.at_model_top() ? 0 : 2,
                          decomp_.at_surface() ? decomp_.lnz()
                                               : decomp_.lnz() - 2};
    if (!adv_inner.empty()) {
      obs::Span sp = comm_ctx_->tracer().span("interior", "compute");
      eval_tendency(xi, adv_inner, Operator::kAdvection, false);
      eta_.add_scaled(xi, dt2, tend_, adv_inner);
    }
  }
  const mesh::Box aw1 = extended_window(2, 2);
  if (options_.overlap && config_.overlap_exchange) {
    // Per-face drain (comm.overlap_exchange): each boundary sub-range
    // completes only the in-flight faces its grown read footprint covers,
    // re-wraps the vert-product x halos and re-fills the physical
    // boundaries from the rows that just landed, then evaluates.  Any
    // fill-derived cell still based on an unfinished face lies outside
    // this sub-range's footprint and is rewritten by a later pass before
    // being read, so the result is bitwise the drain-all path's.
    obs::Span bsp = comm_ctx_->tracer().span("boundary", "compute");
    for (const mesh::Box& b : ops::subtract_box(aw1, adv_inner)) {
      exchanger_.finish_region(ops::grow_box(b, 4, 4, 3));
      wrap_vert_x(ws_);
      fill_boundaries(xi);
      eval_tendency(xi, b, Operator::kAdvection, false);
      eta_.add_scaled(xi, dt2, tend_, b);
    }
    exchanger_.finish();
    wrap_vert_x(ws_);
    fill_boundaries(xi);
    bsp.finish();
  } else {
    exchanger_.finish();
    wrap_vert_x(ws_);
    fill_boundaries(xi);
    if (options_.overlap) {
      for (const mesh::Box& b : ops::subtract_box(aw1, adv_inner)) {
        eval_tendency(xi, b, Operator::kAdvection, false);
        eta_.add_scaled(xi, dt2, tend_, b);
      }
    } else {
      eval_tendency(xi, aw1, Operator::kAdvection, false);
      eta_.add_scaled(xi, dt2, tend_, aw1);
    }
  }
  carry_psa(xi, eta_);
  fill_boundaries(eta_);
  if (debug_observer) debug_observer("zeta1", eta_);

  const mesh::Box aw2 = extended_window(1, 1);
  eval_tendency(eta_, aw2, Operator::kAdvection, false);
  eta_.add_scaled(xi, dt2, tend_, aw2);
  carry_psa(xi, eta_);
  fill_boundaries(eta_);
  if (debug_observer) debug_observer("zeta2", eta_);

  const mesh::Box aw3 = extended_window(0, 0);
  mid_.average(xi, eta_, aw2);
  carry_psa(xi, mid_);
  fill_boundaries(mid_);
  eval_tendency(mid_, aw3, Operator::kAdvection, false);
  xi.add_scaled(xi, dt2, tend_, aw3);
  fill_boundaries(xi);
  if (debug_observer) debug_observer("zeta3", xi);

  ++step_count_;
}

void CACore::run(state::State& xi, int n) {
  for (int s = 0; s < n; ++s) step(xi);
  finalize(xi);
}

void CACore::refresh_halos(state::State& s, const std::string& /*phase*/) {
  fill_boundaries(s);
}

namespace {

/// The CA carry is written in the self-describing reshardable layout of
/// util::kReshardableCarryMagic ("CACARRY" + format version 2): each
/// field travels with its global extents, halo depths, and block origin
/// so util::reshard_checkpoints can redistribute the set across a new
/// Y-Z decomposition without knowing this core.  These helpers emit and
/// validate the 13-word geometry prefix of one field.

void put_field_geom(util::CarryWriter& w, bool is3d,
                    std::array<std::uint64_t, 3> gn,
                    std::array<std::uint64_t, 3> ln,
                    std::array<std::uint64_t, 3> halo,
                    std::array<std::uint64_t, 3> origin) {
  w.put_u64(is3d ? 1 : 0);
  for (const auto& trio : {gn, ln, halo, origin})
    for (std::uint64_t v : trio) w.put_u64(v);
}

void expect_field_geom(util::CarryReader& r, bool is3d,
                       std::array<std::uint64_t, 3> gn,
                       std::array<std::uint64_t, 3> ln,
                       std::array<std::uint64_t, 3> halo,
                       std::array<std::uint64_t, 3> origin) {
  bool ok = r.get_u64() == (is3d ? 1u : 0u);
  for (const auto& trio : {gn, ln, halo, origin})
    for (std::uint64_t v : trio) ok = r.get_u64() == v && ok;
  if (!ok)
    throw std::runtime_error(
        "CA carry field geometry does not match this core's block "
        "(carry written by a differently-configured or differently-"
        "decomposed core?)");
}

std::array<std::uint64_t, 3> u3(int a, int b, int c) {
  return {static_cast<std::uint64_t>(a), static_cast<std::uint64_t>(b),
          static_cast<std::uint64_t>(c)};
}

}  // namespace

void CACore::save_carry(util::CarryWriter& w) const {
  w.put_u64(util::kReshardableCarryMagic);
  // Minimum legal block extents under a split dimension — the
  // constructor's own guards, declared so a reshard to an
  // unrepresentable shape fails loudly inside util::.
  w.put_u64(static_cast<std::uint64_t>(3 * config_.M + 1));
  w.put_u64(3);
  w.put_u64(2);  // scalars
  w.put_i64(step_count_);
  w.put_i64(have_stale_c_ ? 1 : 0);
  const auto f3 = ws_.carry_fields_3d();
  const auto f2 = ws_.carry_fields_2d();
  w.put_u64(f3.size() + f2.size() + 2);
  const std::array<std::uint64_t, 3> gn3 =
      u3(mesh_.nx(), mesh_.ny(), mesh_.nz());
  const std::array<std::uint64_t, 3> gn2 = u3(mesh_.nx(), mesh_.ny(), 1);
  const std::array<std::uint64_t, 3> o3 =
      u3(decomp_.xr().begin, decomp_.yr().begin, decomp_.zr().begin);
  const std::array<std::uint64_t, 3> o2 =
      u3(decomp_.xr().begin, decomp_.yr().begin, 0);
  for (const auto* f : f3) {
    put_field_geom(w, true, gn3, u3(f->nx(), f->ny(), f->nz()),
                   u3(f->halo().x, f->halo().y, f->halo().z), o3);
    w.put_doubles(f->raw());
  }
  for (const auto* f : f2) {
    put_field_geom(w, false, gn2, u3(f->nx(), f->ny(), 1),
                   u3(f->hx(), f->hy(), 0), o2);
    w.put_doubles(f->raw());
  }
  const auto& pphi = pre_.phi();
  put_field_geom(w, true, gn3, u3(pphi.nx(), pphi.ny(), pphi.nz()),
                 u3(pphi.halo().x, pphi.halo().y, pphi.halo().z), o3);
  w.put_doubles(pphi.raw());
  const auto& ppsa = pre_.psa();
  put_field_geom(w, false, gn2, u3(ppsa.nx(), ppsa.ny(), 1),
                 u3(ppsa.hx(), ppsa.hy(), 0), o2);
  w.put_doubles(ppsa.raw());
}

void CACore::restore_carry(util::CarryReader& r) {
  if (r.get_u64() != util::kReshardableCarryMagic)
    throw std::runtime_error(
        "checkpoint carry block is not a CA-core carry (wrong magic/"
        "version)");
  if (r.get_u64() != static_cast<std::uint64_t>(3 * config_.M + 1) ||
      r.get_u64() != 3)
    throw std::runtime_error(
        "CA carry declares different minimum block extents (written by a "
        "differently-configured core?)");
  if (r.get_u64() != 2)
    throw std::runtime_error("CA carry has a malformed scalar count");
  const std::int64_t steps = r.get_i64();
  if (steps < 0)
    throw std::runtime_error("CA carry records a negative step count");
  const std::int64_t stale = r.get_i64();
  if (stale < 0 || stale > 1)
    throw std::runtime_error("CA carry has a malformed stale-C flag");
  const auto f3 = ws_.carry_fields_3d();
  const auto f2 = ws_.carry_fields_2d();
  if (r.get_u64() != f3.size() + f2.size() + 2)
    throw std::runtime_error("CA carry has a malformed field count");
  // Full raw spans (halos included): the resumed step's overlapped inner
  // update and its outgoing exchange rows read these arrays before any
  // exchange refreshes them.  The geometry prefix pins every field to
  // this core's exact block, and get_doubles rejects any size mismatch.
  const std::array<std::uint64_t, 3> gn3 =
      u3(mesh_.nx(), mesh_.ny(), mesh_.nz());
  const std::array<std::uint64_t, 3> gn2 = u3(mesh_.nx(), mesh_.ny(), 1);
  const std::array<std::uint64_t, 3> o3 =
      u3(decomp_.xr().begin, decomp_.yr().begin, decomp_.zr().begin);
  const std::array<std::uint64_t, 3> o2 =
      u3(decomp_.xr().begin, decomp_.yr().begin, 0);
  for (auto* f : f3) {
    expect_field_geom(r, true, gn3, u3(f->nx(), f->ny(), f->nz()),
                      u3(f->halo().x, f->halo().y, f->halo().z), o3);
    r.get_doubles(f->raw());
  }
  for (auto* f : f2) {
    expect_field_geom(r, false, gn2, u3(f->nx(), f->ny(), 1),
                      u3(f->hx(), f->hy(), 0), o2);
    r.get_doubles(f->raw());
  }
  auto& pphi = pre_.phi();
  expect_field_geom(r, true, gn3, u3(pphi.nx(), pphi.ny(), pphi.nz()),
                    u3(pphi.halo().x, pphi.halo().y, pphi.halo().z), o3);
  r.get_doubles(pphi.raw());
  auto& ppsa = pre_.psa();
  expect_field_geom(r, false, gn2, u3(ppsa.nx(), ppsa.ny(), 1),
                    u3(ppsa.hx(), ppsa.hy(), 0), o2);
  r.get_doubles(ppsa.raw());
  r.expect_end();
  step_count_ = static_cast<int>(steps);
  have_stale_c_ = stale == 1;
}

void CACore::finalize(state::State& xi) {
  if (step_count_ == 0) return;
  // The last step's smoothing is still pending (Algorithm 2 line 30).
  std::vector<ExchangeItem> sitems;
  sitems.push_back({&xi.u(), nullptr, 0, 2, 0});
  sitems.push_back({&xi.v(), nullptr, 0, 2, 0});
  sitems.push_back({&xi.phi(), nullptr, 0, 2, 0});
  sitems.push_back({nullptr, &xi.psa(), 0, 2, 0});
  exchanger_.exchange(sitems, "stencil");
  fill_boundaries(xi);
  ops::apply_smoothing(opctx_, xi, eta_, xi.interior());
  xi.assign(eta_, xi.interior());
  fill_boundaries(xi);
  step_count_ = 0;
  have_stale_c_ = false;
}

}  // namespace ca::core
