// Single-rank reference integrator: Algorithm 1 exactly as printed —
// M nonlinear adaptation iterations of 3 internal updates with dt1, one
// advection iteration of 3 updates with dt2, then the smoothing S~.
// Every distributed variant is validated against this core.
#pragma once

#include <memory>

#include "core/dycore_config.hpp"
#include "mesh/decomp.hpp"
#include "mesh/latlon.hpp"
#include "mesh/sigma.hpp"
#include "ops/filter.hpp"
#include "ops/tendency.hpp"
#include "state/initial.hpp"
#include "state/state.hpp"
#include "state/stratification.hpp"

namespace ca::core {

class SerialCore {
 public:
  explicit SerialCore(const DycoreConfig& config);

  /// Advances xi by one full time step.
  void step(state::State& xi);

  /// Runs `n` steps.
  void run(state::State& xi, int n);

  /// A correctly sized/haloed state for this core.
  state::State make_state() const;

  /// Initializes a state from an analytic initial condition.
  void initialize(state::State& xi, const state::InitialOptions& options);

  const DycoreConfig& config() const { return config_; }
  const mesh::LatLonMesh& mesh() const { return mesh_; }
  const mesh::SigmaLevels& levels() const { return levels_; }
  const state::Stratification& strat() const { return strat_; }
  const mesh::DomainDecomp& decomp() const { return decomp_; }
  const ops::OpContext& op_context() const { return opctx_; }
  /// Installs a terrain field (see state::make_terrain); the caller keeps
  /// it alive for the core's lifetime.  Null restores a flat surface.
  void set_terrain(const util::Array2D<double>* phi_surface) {
    opctx_.phi_surface = phi_surface;
  }
  const ops::FourierFilter& filter() const { return filter_; }

  /// Fills every physical boundary halo of a state (periodic x, poles, z).
  void fill_boundaries(state::State& s) const;

  /// tend = F~(C + A-hat)(xi), the filtered adaptation tendency
  /// (boundaries of xi are filled here).  Exposed for tests.
  void adaptation_tendency(state::State& xi, state::State& tend);
  /// tend = F~(L~)(xi), the filtered advection tendency.
  void advection_tendency(state::State& xi, state::State& tend);

 private:
  DycoreConfig config_;
  mesh::LatLonMesh mesh_;
  mesh::SigmaLevels levels_;
  state::Stratification strat_;
  mesh::DomainDecomp decomp_;
  ops::OpContext opctx_;
  ops::FourierFilter filter_;
  ops::DiagWorkspace ws_;
  // Scratch states of the 3-update integrator.
  state::State tend_, eta_, mid_;
};

}  // namespace ca::core
