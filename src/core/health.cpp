#include "core/health.hpp"

#include <cmath>
#include <cstdio>

#include "util/config.hpp"

namespace ca::core {
namespace {

/// Growth scales below this magnitude are treated as "no baseline":
/// relative growth against a near-zero integral is meaningless (the mass
/// anomaly legitimately crosses zero), and skipping keeps a zero-energy
/// test state from tripping the sentinel on its first spin-up.
constexpr double kGrowthFloor = 1.0e-12;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

HealthOptions HealthOptions::from_config(const util::Config& cfg) {
  // Full keys, not cfg.subset("health."): the CA_AGCM_HEALTH_* env
  // overrides resolve against the full dotted name.
  HealthOptions o;
  o.cadence = cfg.get_int("health.cadence", 1);
  o.max_wind = cfg.get_double("health.max_wind", o.max_wind);
  o.max_phi = cfg.get_double("health.max_phi", o.max_phi);
  o.max_psa = cfg.get_double("health.max_psa", o.max_psa);
  o.max_energy_growth =
      cfg.get_double("health.max_energy_growth", o.max_energy_growth);
  o.max_mass_growth =
      cfg.get_double("health.max_mass_growth", o.max_mass_growth);
  o.growth_warmup = cfg.get_int("health.growth_warmup", o.growth_warmup);
  return o;
}

std::string HealthSentinel::check_static(const HealthOptions& opts,
                                         const GlobalDiag& d) {
  // Non-finite first: the energy sums are NaN/Inf the moment ANY owned
  // interior cell is (sums propagate where a max could mask), and the
  // maxima are NaN-sticky by construction.
  if (!std::isfinite(d.quad_energy) || !std::isfinite(d.surface_energy) ||
      !std::isfinite(d.mass_anomaly))
    return "non-finite energy/mass integral (quad_energy " +
           fmt(d.quad_energy) + ", surface_energy " + fmt(d.surface_energy) +
           ", mass_anomaly " + fmt(d.mass_anomaly) + ")";
  if (!std::isfinite(d.max_abs_u) || !std::isfinite(d.max_abs_v) ||
      !std::isfinite(d.max_abs_phi) || !std::isfinite(d.max_abs_psa))
    return "non-finite prognostic field (max |U| " + fmt(d.max_abs_u) +
           ", |V| " + fmt(d.max_abs_v) + ", |Phi| " + fmt(d.max_abs_phi) +
           ", |psa| " + fmt(d.max_abs_psa) + ")";
  if (d.max_abs_u > opts.max_wind || d.max_abs_v > opts.max_wind)
    return "wind bound exceeded: max |U| " + fmt(d.max_abs_u) + ", |V| " +
           fmt(d.max_abs_v) + " > " + fmt(opts.max_wind);
  if (d.max_abs_phi > opts.max_phi)
    return "geopotential bound exceeded: max |Phi| " + fmt(d.max_abs_phi) +
           " > " + fmt(opts.max_phi);
  if (d.max_abs_psa > opts.max_psa)
    return "surface-pressure bound exceeded: max |psa| " +
           fmt(d.max_abs_psa) + " > " + fmt(opts.max_psa);
  return {};
}

std::string HealthSentinel::check(const GlobalDiag& d) {
  std::string verdict = check_static(opts_, d);
  // Growth detection compares against the running max over healthy
  // checks, never the previous check alone: the mass anomaly is a signed
  // integral that starts near zero by cancellation, so its step-to-step
  // ratio during spin-up is arbitrary.  The warmup lets the trajectory
  // reach its natural magnitude before the caps mean anything.
  if (verdict.empty() && healthy_checks_ >= opts_.growth_warmup) {
    const double energy = std::abs(d.total_energy());
    const double mass = std::abs(d.mass_anomaly);
    if (energy_scale_ > kGrowthFloor &&
        energy > opts_.max_energy_growth * energy_scale_)
      verdict = "energy runaway: |total energy| " + fmt(energy) +
                " exceeds " + fmt(opts_.max_energy_growth) +
                "x the healthy running scale (" + fmt(energy_scale_) + ")";
    else if (mass_scale_ > kGrowthFloor &&
             mass > opts_.max_mass_growth * mass_scale_)
      verdict = "mass runaway: |mass anomaly| " + fmt(mass) + " exceeds " +
                fmt(opts_.max_mass_growth) +
                "x the healthy running scale (" + fmt(mass_scale_) + ")";
  }
  if (verdict.empty()) {
    // Only a healthy snapshot feeds the scales: a poisoned one must not
    // normalize further growth while the error unwinds.
    ++healthy_checks_;
    energy_scale_ = std::max(energy_scale_, std::abs(d.total_energy()));
    mass_scale_ = std::max(mass_scale_, std::abs(d.mass_anomaly));
  }
  return verdict;
}

}  // namespace ca::core
