// Schedule builders: emit the per-rank communication/computation program
// of one time step of each algorithm variant (original X-Y, original Y-Z,
// communication-avoiding) for the perf event simulator.  The emitted op
// stream mirrors the functional cores op-for-op — message counts and byte
// volumes are asserted equal to the runtime's traffic statistics by
// tests/schedule_match_test.cpp — which is what makes the full-scale
// (p = 128..1024) simulated figures trustworthy.
#pragma once

#include "core/ca_core.hpp"
#include "core/dycore_config.hpp"
#include "perf/lower_bounds.hpp"
#include "perf/machine.hpp"
#include "perf/schedule.hpp"

namespace ca::core {

struct ScheduleParams {
  perf::MeshShape mesh{720, 360, 30};
  perf::ProcGrid grid{1, 128, 8};
  int M = 3;
  /// Steps to emit (the schedule is periodic; results scale linearly).
  int steps = 1;
  /// Number of 3-D prognostic fields exchanged (U, V, Phi).
  int fields3d = 3;
  /// Colatitude band of active Fourier-filter rows (fraction of ny rows
  /// filtered, both poles combined).
  double filter_fraction = 0.35;
  /// Calibrated computation densities [flops per mesh point per update].
  double flops_adapt = 160.0;
  double flops_advect = 200.0;
  double flops_smooth = 70.0;
  double flops_column = 25.0;
  /// Emit the fused-smoothing / steady-state shape of the CA step.
  CAOptions ca;
};

/// Phase labels used by the builders (matched by the figure benches).
inline constexpr const char* kPhaseStencil = "stencil";
inline constexpr const char* kPhaseCollective = "collective";
inline constexpr const char* kPhaseCompute = "compute";

perf::Schedule build_original_schedule(const ScheduleParams& params,
                                       DecompScheme scheme,
                                       const perf::MachineModel& machine);

perf::Schedule build_ca_schedule(const ScheduleParams& params,
                                 const perf::MachineModel& machine);

}  // namespace ca::core
