// Communication engines of the distributed dynamical core:
//   - physical boundary fills (periodic x, pole reflection, zero-gradient z)
//   - the neighbor halo exchange (blocking, and split begin/finish for the
//     communication/computation overlap of Algorithm 2)
//   - the distributed C operator: column partials + the two z-line
//     collectives (allreduce + exscan) + column finish
#pragma once

#include <span>
#include <string>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/topology.hpp"
#include "mesh/halo.hpp"
#include "ops/context.hpp"
#include "ops/tendency.hpp"
#include "state/state.hpp"

namespace ca::core {

/// Fills the halo sides that have no neighboring rank: x periodic wrap
/// when the rank owns full circles, pole reflection in y (U/Phi/psa
/// symmetric, V antisymmetric), zero-gradient in z.  Widths select how
/// deep to fill (clamped to the allocated halos).
void apply_physical_boundaries(const ops::OpContext& ctx, state::State& s,
                               int wx, int wy, int wz);

/// One field (3-D or 2-D) participating in a halo exchange, with
/// per-axis halo widths.
struct ExchangeItem {
  util::Array3D<double>* f3 = nullptr;
  util::Array2D<double>* f2 = nullptr;
  int wx = 0, wy = 0, wz = 0;
};

/// Neighbor halo exchange over the Cartesian topology.
///
/// Two message granularities:
///   - per-item (default): one message per (neighbor, item) pair — the
///     granularity the paper counts ("about 20 MPI_Isend and MPI_Recv
///     operations ... due to the length of xi being ten");
///   - coalesced (comm.coalesce_exchange): every item bound for one
///     neighbor packs into a single message, cutting messages per round
///     from ~items x neighbors to ~neighbors.  Both modes deliver
///     bitwise-identical halos.
///
/// Pack and receive buffers come from persistent per-exchanger pools:
/// after a warm-up step every acquire reuses existing capacity, so the
/// steady-state step loop performs no heap allocation here (asserted via
/// CommStats::pool()).
class HaloExchanger {
 public:
  HaloExchanger(comm::Context& ctx, const comm::CartTopology& topo,
                const mesh::DomainDecomp& decomp, bool coalesce = false)
      : ctx_(&ctx), topo_(&topo), decomp_(&decomp), coalesce_(coalesce) {}

  /// Switches message granularity (takes effect at the next begin()).
  void set_coalesce(bool on) { coalesce_ = on; }
  bool coalesce() const { return coalesce_; }

  /// Posts receives and sends for all items; returns immediately.
  void begin(const std::vector<ExchangeItem>& items,
             const std::string& phase);
  /// Waits for all receives and unpacks them into the halos.
  void finish();
  /// begin + finish.
  void exchange(const std::vector<ExchangeItem>& items,
                const std::string& phase);

  /// Messages sent by the last begin() (for schedule validation).
  std::size_t last_message_count() const { return last_message_count_; }

 private:
  /// One contiguous slice of a received message, destined for one item's
  /// halo region.  Per-item messages have exactly one segment; coalesced
  /// messages carry one per participating item.
  struct UnpackSeg {
    int item = 0;
    mesh::Box box3{};
    bool is2d = false;
    int i0 = 0, i1 = 0, j0 = 0, j1 = 0;  // 2-D box
    std::size_t offset = 0;              // doubles into the message
    std::size_t count = 0;
  };

  struct PendingRecv {
    comm::Request request;
    std::span<double> buffer;  // view into recv_pool_
    std::size_t seg_begin = 0, seg_end = 0;  // range in segs_
    int nbr = -1;
  };

  /// Grabs the next pool slot resized to n doubles, recording whether the
  /// acquire had to grow the slot's heap capacity.
  std::span<double> acquire(std::vector<std::vector<double>>& pool,
                            std::size_t& cursor, std::size_t n);

  /// Receive-side geometry of item `it` from the neighbor at (dx, dy, dz).
  UnpackSeg recv_seg(const ExchangeItem& item, int it, int dx, int dy,
                     int dz) const;

  void post_per_item(int nbr, int dx, int dy, int dz);
  void post_coalesced(int nbr, int dx, int dy, int dz);

  comm::Context* ctx_;
  const comm::CartTopology* topo_;
  const mesh::DomainDecomp* decomp_;
  bool coalesce_ = false;
  std::vector<ExchangeItem> items_;
  std::vector<UnpackSeg> segs_;
  std::vector<PendingRecv> recvs_;
  std::vector<std::vector<double>> send_pool_, recv_pool_;
  std::size_t send_cursor_ = 0, recv_cursor_ = 0;
  std::size_t last_message_count_ = 0;
};

/// Computes the full diagnostics (LocalDiag + VertDiag) for an update
/// window, inserting the two z-line collectives when line_z has more than
/// one rank.  `stale_vert == true` refreshes only the local part and
/// leaves ws.vert untouched — the previous C products are reused (the
/// paper's C(psi^{i-2}) replacement, eq. 13), which is also how the
/// advection process obtains its sigma-dot without communication.
void compute_diagnostics(const ops::OpContext& ctx, comm::Context* comm_ctx,
                         const comm::Communicator* line_z,
                         const state::State& xi, const mesh::Box& window,
                         ops::DiagWorkspace& ws, bool stale_vert,
                         comm::AllreduceAlgorithm alg,
                         const std::string& phase);

/// Gathers every rank's owned interior into one full-domain state on rank
/// 0 of the topology's communicator (returned state is empty elsewhere).
/// Used by the equivalence tests and the examples' global diagnostics.
state::State gather_global(const ops::OpContext& ctx, comm::Context& cc,
                           const comm::CartTopology& topo,
                           const state::State& xi);

}  // namespace ca::core
