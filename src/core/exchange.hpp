// Communication engines of the distributed dynamical core:
//   - physical boundary fills (periodic x, pole reflection, zero-gradient z)
//   - the neighbor halo exchange (blocking, and split begin/finish for the
//     communication/computation overlap of Algorithm 2)
//   - the distributed C operator: column partials + the two z-line
//     collectives (allreduce + exscan) + column finish
#pragma once

#include <span>
#include <string>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/topology.hpp"
#include "mesh/halo.hpp"
#include "ops/context.hpp"
#include "ops/tendency.hpp"
#include "state/state.hpp"

namespace ca::core {

/// Fills the halo sides that have no neighboring rank: x periodic wrap
/// when the rank owns full circles, pole reflection in y (U/Phi/psa
/// symmetric, V antisymmetric), zero-gradient in z.  Widths select how
/// deep to fill (clamped to the allocated halos).
void apply_physical_boundaries(const ops::OpContext& ctx, state::State& s,
                               int wx, int wy, int wz);

/// One field (3-D or 2-D) participating in a halo exchange, with
/// per-axis halo widths.
struct ExchangeItem {
  util::Array3D<double>* f3 = nullptr;
  util::Array2D<double>* f2 = nullptr;
  int wx = 0, wy = 0, wz = 0;
};

/// Neighbor halo exchange over the Cartesian topology.
///
/// Two message granularities:
///   - per-item (default): one message per (neighbor, item) pair — the
///     granularity the paper counts ("about 20 MPI_Isend and MPI_Recv
///     operations ... due to the length of xi being ten");
///   - coalesced (comm.coalesce_exchange): every item bound for one
///     neighbor packs into a single message, cutting messages per round
///     from ~items x neighbors to ~neighbors.  Both modes deliver
///     bitwise-identical halos.
///
/// Pack and receive buffers come from persistent per-exchanger pools:
/// after a warm-up step every acquire reuses existing capacity, so the
/// steady-state step loop performs no heap allocation here (asserted via
/// CommStats::pool()).
class HaloExchanger {
 public:
  HaloExchanger(comm::Context& ctx, const comm::CartTopology& topo,
                const mesh::DomainDecomp& decomp, bool coalesce = false)
      : ctx_(&ctx), topo_(&topo), decomp_(&decomp), coalesce_(coalesce) {}

  /// Switches message granularity (takes effect at the next begin()).
  void set_coalesce(bool on) { coalesce_ = on; }
  bool coalesce() const { return coalesce_; }

  /// Posts receives and sends for all items; returns immediately.  If a
  /// previous post still has receives in flight they are drained first
  /// (re-posting onto the same (neighbor, tag) triples would break FIFO
  /// matching).
  void begin(const std::vector<ExchangeItem>& items,
             const std::string& phase);
  /// Alias of begin() under the async post/test/finish vocabulary: posts
  /// the round's sends and receives up front so later passes can complete
  /// only the faces they consume.
  void post(const std::vector<ExchangeItem>& items,
            const std::string& phase) {
    begin(items, phase);
  }
  /// Waits for every still-pending receive and unpacks it into the halos.
  /// Receives already completed by test()/finish_region() are skipped, so
  /// finish() after any interleaving — including a second finish(), which
  /// is a no-op — is safe.
  void finish();
  /// Completes (waits for + unpacks) only the pending receives whose halo
  /// destination intersects `region` (local index coordinates, halo cells
  /// included).  A boundary pass blocks only on the faces its read
  /// footprint covers; everything else stays in flight.
  void finish_region(const mesh::Box& region);
  /// Nonblocking progress probe: unpacks every receive that has already
  /// arrived and returns true when none remain in flight.  Under an
  /// active FaultPlan each probe is one receive poll, so a test() loop
  /// ages delayed messages and requests retransmission of dropped ones.
  bool test();
  /// Receives posted but not yet completed by test/finish_region/finish.
  std::size_t pending_count() const;
  /// begin + finish.
  void exchange(const std::vector<ExchangeItem>& items,
                const std::string& phase);

  /// Messages sent by the last begin() (for schedule validation).
  std::size_t last_message_count() const { return last_message_count_; }

 private:
  /// One contiguous slice of a received message, destined for one item's
  /// halo region.  Per-item messages have exactly one segment; coalesced
  /// messages carry one per participating item.
  struct UnpackSeg {
    int item = 0;
    mesh::Box box3{};
    bool is2d = false;
    int i0 = 0, i1 = 0, j0 = 0, j1 = 0;  // 2-D box
    std::size_t offset = 0;              // doubles into the message
    std::size_t count = 0;
  };

  struct PendingRecv {
    comm::Request request;
    std::span<double> buffer;  // view into recv_pool_
    std::size_t seg_begin = 0, seg_end = 0;  // range in segs_
    int nbr = -1;
    bool done = false;  // completed (waited + unpacked) this round
  };

  /// Grabs the next pool slot resized to n doubles, recording whether the
  /// acquire had to grow the slot's heap capacity.
  std::span<double> acquire(std::vector<std::vector<double>>& pool,
                            std::size_t& cursor, std::size_t n);

  /// Receive-side geometry of item `it` from the neighbor at (dx, dy, dz).
  UnpackSeg recv_seg(const ExchangeItem& item, int it, int dx, int dy,
                     int dz) const;

  void post_per_item(int nbr, int dx, int dy, int dz);
  void post_coalesced(int nbr, int dx, int dy, int dz);

  /// Blocks on pr's message ("exchange_wait" phase) and unpacks it
  /// ("exchange" phase); no-op when already done.
  void complete(PendingRecv& pr);
  /// Copies pr's message into the destination halo regions.
  void unpack(const PendingRecv& pr);
  /// Whether any of pr's destination halo cells lie inside `region`
  /// (2-D segments intersect on i/j only).
  bool seg_intersects(const UnpackSeg& seg, const mesh::Box& region) const;

  comm::Context* ctx_;
  const comm::CartTopology* topo_;
  const mesh::DomainDecomp* decomp_;
  bool coalesce_ = false;
  std::vector<ExchangeItem> items_;
  std::vector<UnpackSeg> segs_;
  std::vector<PendingRecv> recvs_;
  std::vector<std::vector<double>> send_pool_, recv_pool_;
  std::size_t send_cursor_ = 0, recv_cursor_ = 0;
  std::size_t last_message_count_ = 0;
};

/// Computes the full diagnostics (LocalDiag + VertDiag) for an update
/// window, inserting the two z-line collectives when line_z has more than
/// one rank.  `stale_vert == true` refreshes only the local part and
/// leaves ws.vert untouched — the previous C products are reused (the
/// paper's C(psi^{i-2}) replacement, eq. 13), which is also how the
/// advection process obtains its sigma-dot without communication.
void compute_diagnostics(const ops::OpContext& ctx, comm::Context* comm_ctx,
                         const comm::Communicator* line_z,
                         const state::State& xi, const mesh::Box& window,
                         ops::DiagWorkspace& ws, bool stale_vert,
                         comm::AllreduceAlgorithm alg,
                         const std::string& phase);

/// The vertical (C operator) half of compute_diagnostics on its own: the
/// column partials plus the z-line allreduce + exscan and column finish.
/// The overlap path uses this split — the pointwise LocalDiag part runs
/// tile by tile as halo faces arrive, while the collectives MUST run
/// exactly once per refresh on the full update window (every rank of
/// line_z participates with the same ring).
void compute_vert_diagnostics(const ops::OpContext& ctx,
                              comm::Context* comm_ctx,
                              const comm::Communicator* line_z,
                              const state::State& xi, const mesh::Box& window,
                              ops::DiagWorkspace& ws,
                              comm::AllreduceAlgorithm alg,
                              const std::string& phase);

/// Gathers every rank's owned interior into one full-domain state on rank
/// 0 of the topology's communicator (returned state is empty elsewhere).
/// Used by the equivalence tests and the examples' global diagnostics.
state::State gather_global(const ops::OpContext& ctx, comm::Context& cc,
                           const comm::CartTopology& topo,
                           const state::State& xi);

}  // namespace ca::core
