// Latitude-longitude mesh geometry with Arakawa C-grid staggering.
//
// Conventions (paper Section 2.2):
//   - x: longitude (lambda), periodic, n_x points, dlambda = 2*pi/n_x
//   - y: colatitude (theta) from north pole (theta = 0) to south pole
//     (theta = pi), n_y scalar rows
//   - z: terrain-following sigma coordinate, n_z levels
//
// Scalar points (Phi, p'_sa, P) sit at cell centers theta_j =
// (j + 1/2) * dtheta, so sin(theta) > 0 at every scalar row and no grid
// point lies exactly on a pole.  C-grid staggering:
//   - U at (i - 1/2, j):      longitudes lambda_u(i) = i * dlambda
//   - V at (i, j + 1/2):      colatitudes theta_v(j) = (j + 1) * dtheta
// V rows at the pole edges (theta = 0, pi) carry zero meridional flux.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/math.hpp"

namespace ca::mesh {

class LatLonMesh {
 public:
  LatLonMesh(int nx, int ny, int nz);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }

  double dlambda() const { return dlambda_; }
  double dtheta() const { return dtheta_; }

  /// Colatitude of scalar row j (cell center), j in [0, ny).
  double theta(int j) const { return (j + 0.5) * dtheta_; }
  /// Colatitude of V row j (cell south edge), j in [-1, ny); theta_v(-1)=0
  /// (north pole) and theta_v(ny-1)=pi (south pole).
  double theta_v(int j) const { return (j + 1.0) * dtheta_; }

  /// Longitude of scalar column i (cell center).
  double lambda(int i) const { return (i + 0.5) * dlambda_; }
  /// Longitude of U column i (cell west edge).
  double lambda_u(int i) const { return i * dlambda_; }

  double sin_theta(int j) const { return sin_theta_[row_cache_index(j)]; }
  double sin_theta_v(int j) const { return sin_theta_v_[row_cache_index(j)]; }
  double cos_theta(int j) const { return cos_theta_[row_cache_index(j)]; }
  double cot_theta(int j) const { return cos_theta(j) / sin_theta(j); }

  /// Earth radius used in metric terms [m].
  double radius() const { return util::kEarthRadius; }

  /// Approximate grid resolution at the equator [m].
  double equatorial_dx() const { return radius() * dlambda_; }
  double dy() const { return radius() * dtheta_; }

  /// Spherical cell "area weight" sin(theta_j) * dlambda * dtheta * a^2 of
  /// scalar cell (i, j) — independent of i.
  double cell_area(int j) const {
    return radius() * radius() * sin_theta(j) * dlambda_ * dtheta_;
  }

 private:
  /// Deep-halo stencil kernels evaluate metric factors in redundant rows
  /// that can reach beyond the pole ghost rows; those rows carry no
  /// physical flux, so clamp them to the cached pole values instead of
  /// reading past the cache.
  std::size_t row_cache_index(int j) const {
    return static_cast<std::size_t>(std::clamp(j, -1, ny_) + 1);
  }

  int nx_, ny_, nz_;
  double dlambda_, dtheta_;
  // Cached per-row trigonometry with one ghost row on each side (j = -1 and
  // j = ny) so stencil kernels can evaluate metric factors in halo rows.
  std::vector<double> sin_theta_, cos_theta_, sin_theta_v_;
};

}  // namespace ca::mesh
