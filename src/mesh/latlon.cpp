#include "mesh/latlon.hpp"

#include <stdexcept>

namespace ca::mesh {

LatLonMesh::LatLonMesh(int nx, int ny, int nz) : nx_(nx), ny_(ny), nz_(nz) {
  if (nx < 4 || ny < 4 || nz < 1)
    throw std::invalid_argument("LatLonMesh: mesh too small");
  dlambda_ = 2.0 * util::kPi / nx;
  dtheta_ = util::kPi / ny;
  sin_theta_.resize(static_cast<std::size_t>(ny) + 2);
  cos_theta_.resize(static_cast<std::size_t>(ny) + 2);
  sin_theta_v_.resize(static_cast<std::size_t>(ny) + 2);
  for (int j = -1; j <= ny; ++j) {
    // Ghost rows (j = -1, ny) reflect across the pole: use the interior
    // row's metric factors so halo-row evaluations stay positive and
    // finite (the reflection boundary condition pairs them with interior
    // data anyway).
    const double th_clamped =
        j < 0 ? theta(0) : (j >= ny ? theta(ny - 1) : theta(j));
    sin_theta_[static_cast<std::size_t>(j + 1)] = std::sin(th_clamped);
    cos_theta_[static_cast<std::size_t>(j + 1)] = std::cos(th_clamped);
    // V rows: theta_v(-1) = 0 and theta_v(ny-1) = pi are the true poles
    // (sin = 0 kills the meridional flux there); clamp the ghost row.
    const double thv_clamped =
        std::min(std::max(theta_v(j), 0.0), util::kPi);
    sin_theta_v_[static_cast<std::size_t>(j + 1)] = std::sin(thv_clamped);
  }
}

}  // namespace ca::mesh
