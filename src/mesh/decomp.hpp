// Block domain decomposition of the latitude-longitude mesh over a
// Cartesian process grid.  The paper's three schemes are instances:
//   X-Y: dims = {px, py, 1}   (F distributed, C local)
//   Y-Z: dims = {1, py, pz}   (F local, C distributed along z)
//   3-D: dims = {px, py, pz}
#pragma once

#include <array>

#include "mesh/latlon.hpp"

namespace ca::mesh {

struct Range {
  int begin = 0;
  int count = 0;

  int end() const { return begin + count; }
  bool contains(int g) const { return g >= begin && g < end(); }

  friend bool operator==(const Range&, const Range&) = default;
};

/// Contiguous balanced partition of [0, n) into p blocks; the first
/// (n mod p) blocks get one extra element.
Range block_range(int n, int p, int idx);

class DomainDecomp {
 public:
  DomainDecomp(const LatLonMesh& mesh, std::array<int, 3> dims,
               std::array<int, 3> coords);

  const std::array<int, 3>& dims() const { return dims_; }
  const std::array<int, 3>& coords() const { return coords_; }

  Range xr() const { return xr_; }
  Range yr() const { return yr_; }
  Range zr() const { return zr_; }

  int lnx() const { return xr_.count; }
  int lny() const { return yr_.count; }
  int lnz() const { return zr_.count; }

  /// Global index of a local index.
  int gi(int i) const { return xr_.begin + i; }
  int gj(int j) const { return yr_.begin + j; }
  int gk(int k) const { return zr_.begin + k; }

  /// True if this rank's block touches the given physical boundary.
  bool at_north_pole() const { return coords_[1] == 0; }
  bool at_south_pole() const { return coords_[1] == dims_[1] - 1; }
  bool at_model_top() const { return coords_[2] == 0; }
  bool at_surface() const { return coords_[2] == dims_[2] - 1; }
  /// x is periodic: a rank owning the whole x extent has no x neighbors.
  bool owns_full_x() const { return dims_[0] == 1; }

 private:
  std::array<int, 3> dims_{};
  std::array<int, 3> coords_{};
  Range xr_{}, yr_{}, zr_{};
};

}  // namespace ca::mesh
