// Halo geometry and packing: sub-box extraction/insertion on Array3D plus
// the physical boundary fills (periodic x wrap, pole reflection in y,
// zero-gradient in z).  The exchange engines in src/core compose these
// into the neighbor communication patterns of the original and
// communication-avoiding algorithms.
#pragma once

#include <span>
#include <vector>

#include "util/array3d.hpp"

namespace ca::mesh {

/// Half-open logical index box [i0,i1) x [j0,j1) x [k0,k1); indices may be
/// negative / beyond the owned extent (halo cells).
struct Box {
  int i0 = 0, i1 = 0, j0 = 0, j1 = 0, k0 = 0, k1 = 0;

  long long volume() const {
    return static_cast<long long>(i1 - i0) * (j1 - j0) * (k1 - k0);
  }
  bool empty() const { return i1 <= i0 || j1 <= j0 || k1 <= k0; }

  friend bool operator==(const Box&, const Box&) = default;
};

/// Whether two boxes share at least one cell.
inline bool intersects(const Box& a, const Box& b) {
  return a.i0 < b.i1 && b.i0 < a.i1 && a.j0 < b.j1 && b.j0 < a.j1 &&
         a.k0 < b.k1 && b.k0 < a.k1;
}

/// Cellwise intersection (an empty box when the inputs are disjoint).
inline Box intersect(const Box& a, const Box& b) {
  Box r;
  r.i0 = a.i0 > b.i0 ? a.i0 : b.i0;
  r.i1 = a.i1 < b.i1 ? a.i1 : b.i1;
  r.j0 = a.j0 > b.j0 ? a.j0 : b.j0;
  r.j1 = a.j1 < b.j1 ? a.j1 : b.j1;
  r.k0 = a.k0 > b.k0 ? a.k0 : b.k0;
  r.k1 = a.k1 < b.k1 ? a.k1 : b.k1;
  return r;
}

/// Box of interior data to SEND toward the neighbor at offset
/// (dx, dy, dz) in {-1,0,1}^3 \ {0}, for halo widths (wx, wy, wz).  The
/// box along an axis with offset 0 spans the full owned extent; with
/// offset -1 it is the first w layers; with +1 the last w layers.
Box send_box(int lnx, int lny, int lnz, int dx, int dy, int dz, int wx,
             int wy, int wz);

/// Box of halo cells to RECEIVE from the neighbor at offset (dx, dy, dz).
Box recv_box(int lnx, int lny, int lnz, int dx, int dy, int dz, int wx,
             int wy, int wz);

/// Copies box contents into out (x-fastest order); out is resized.
void pack_box(const util::Array3D<double>& a, const Box& box,
              std::vector<double>& out);

/// Same into a caller-owned buffer of exactly box.volume() doubles — the
/// allocation-free variant the pooled halo exchange uses.
void pack_box(const util::Array3D<double>& a, const Box& box,
              std::span<double> out);

/// Writes buffer contents into the box (must match pack order/volume).
void unpack_box(util::Array3D<double>& a, const Box& box,
                std::span<const double> in);

/// Field parity across the pole-reflection boundary.
enum class PoleParity {
  kSymmetric,      ///< scalars, U: f(-1-d) = f(d)
  kAntisymmetric,  ///< V (C-grid edge values): v(-1) = 0, v(-1-d) = -v(d-1)
};

/// Fills the y halo rows beyond the north (j < 0) pole by reflection.
/// Covers the full allocated x and z extents (including halos) so corner
/// cells are consistent.
void fill_pole_north(util::Array3D<double>& a, int wy, PoleParity parity);
/// Same beyond the south pole (j >= ny).
void fill_pole_south(util::Array3D<double>& a, int wy, PoleParity parity);

/// Fills x halos by periodic wrap from the owned extent (valid only when
/// the rank owns the whole x direction, i.e. px = 1).
void fill_x_periodic(util::Array3D<double>& a, int wx);

/// Zero-gradient fill of z halos above the model top (k < 0) and/or below
/// the surface (k >= nz).
void fill_z_top(util::Array3D<double>& a, int wz);
void fill_z_bottom(util::Array3D<double>& a, int wz);

}  // namespace ca::mesh
