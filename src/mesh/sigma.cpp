#include "mesh/sigma.hpp"

#include <cmath>
#include <stdexcept>

namespace ca::mesh {

SigmaLevels::SigmaLevels(std::vector<double> half) : half_(std::move(half)) {
  const int nz = static_cast<int>(half_.size()) - 1;
  if (nz < 1) throw std::invalid_argument("SigmaLevels: need nz >= 1");
  full_.resize(static_cast<std::size_t>(nz));
  dsigma_.resize(static_cast<std::size_t>(nz));
  for (int k = 0; k < nz; ++k) {
    const double lo = half_[static_cast<std::size_t>(k)];
    const double hi = half_[static_cast<std::size_t>(k) + 1];
    if (hi <= lo)
      throw std::invalid_argument("SigmaLevels: non-monotone interfaces");
    full_[static_cast<std::size_t>(k)] = 0.5 * (lo + hi);
    dsigma_[static_cast<std::size_t>(k)] = hi - lo;
  }
}

SigmaLevels SigmaLevels::uniform(int nz) {
  if (nz < 1) throw std::invalid_argument("SigmaLevels: need nz >= 1");
  std::vector<double> half(static_cast<std::size_t>(nz) + 1);
  for (int k = 0; k <= nz; ++k)
    half[static_cast<std::size_t>(k)] =
        static_cast<double>(k) / static_cast<double>(nz);
  return SigmaLevels(std::move(half));
}

SigmaLevels SigmaLevels::stretched(int nz, double stretch) {
  if (nz < 1) throw std::invalid_argument("SigmaLevels: need nz >= 1");
  if (stretch <= 0.0)
    throw std::invalid_argument("SigmaLevels: stretch must be positive");
  std::vector<double> half(static_cast<std::size_t>(nz) + 1);
  for (int k = 0; k <= nz; ++k) {
    const double s = static_cast<double>(k) / static_cast<double>(nz);
    // tanh stretching: thin layers near sigma = 1 (the surface).
    half[static_cast<std::size_t>(k)] =
        std::tanh(stretch * s) / std::tanh(stretch);
  }
  half[0] = 0.0;
  half[static_cast<std::size_t>(nz)] = 1.0;
  return SigmaLevels(std::move(half));
}

}  // namespace ca::mesh
