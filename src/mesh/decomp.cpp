#include "mesh/decomp.hpp"

#include <stdexcept>

namespace ca::mesh {

Range block_range(int n, int p, int idx) {
  if (p < 1 || idx < 0 || idx >= p)
    throw std::invalid_argument("block_range: bad partition index");
  const int base = n / p;
  const int extra = n % p;
  Range r;
  r.begin = idx * base + (idx < extra ? idx : extra);
  r.count = base + (idx < extra ? 1 : 0);
  return r;
}

DomainDecomp::DomainDecomp(const LatLonMesh& mesh, std::array<int, 3> dims,
                           std::array<int, 3> coords)
    : dims_(dims), coords_(coords) {
  for (int a = 0; a < 3; ++a) {
    const auto ia = static_cast<std::size_t>(a);
    if (dims[ia] < 1 || coords[ia] < 0 || coords[ia] >= dims[ia])
      throw std::invalid_argument("DomainDecomp: bad dims/coords");
  }
  xr_ = block_range(mesh.nx(), dims[0], coords[0]);
  yr_ = block_range(mesh.ny(), dims[1], coords[1]);
  zr_ = block_range(mesh.nz(), dims[2], coords[2]);
  if (xr_.count == 0 || yr_.count == 0 || zr_.count == 0)
    throw std::invalid_argument(
        "DomainDecomp: more ranks than mesh points along an axis");
}

}  // namespace ca::mesh
