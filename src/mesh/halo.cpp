#include "mesh/halo.hpp"

#include <cassert>
#include <stdexcept>

namespace ca::mesh {
namespace {

struct AxisSpan {
  int lo, hi;  // half-open
};

AxisSpan send_span(int n, int d, int w) {
  if (d == 0) return {0, n};
  return d < 0 ? AxisSpan{0, w} : AxisSpan{n - w, n};
}

AxisSpan recv_span(int n, int d, int w) {
  if (d == 0) return {0, n};
  return d < 0 ? AxisSpan{-w, 0} : AxisSpan{n, n + w};
}

}  // namespace

Box send_box(int lnx, int lny, int lnz, int dx, int dy, int dz, int wx,
             int wy, int wz) {
  const auto x = send_span(lnx, dx, wx);
  const auto y = send_span(lny, dy, wy);
  const auto z = send_span(lnz, dz, wz);
  return Box{x.lo, x.hi, y.lo, y.hi, z.lo, z.hi};
}

Box recv_box(int lnx, int lny, int lnz, int dx, int dy, int dz, int wx,
             int wy, int wz) {
  const auto x = recv_span(lnx, dx, wx);
  const auto y = recv_span(lny, dy, wy);
  const auto z = recv_span(lnz, dz, wz);
  return Box{x.lo, x.hi, y.lo, y.hi, z.lo, z.hi};
}

void pack_box(const util::Array3D<double>& a, const Box& box,
              std::vector<double>& out) {
  out.resize(static_cast<std::size_t>(box.volume()));
  std::size_t idx = 0;
  for (int k = box.k0; k < box.k1; ++k)
    for (int j = box.j0; j < box.j1; ++j)
      for (int i = box.i0; i < box.i1; ++i) out[idx++] = a(i, j, k);
}

void pack_box(const util::Array3D<double>& a, const Box& box,
              std::span<double> out) {
  if (out.size() != static_cast<std::size_t>(box.volume()))
    throw std::invalid_argument("pack_box: buffer/box size mismatch");
  std::size_t idx = 0;
  for (int k = box.k0; k < box.k1; ++k)
    for (int j = box.j0; j < box.j1; ++j)
      for (int i = box.i0; i < box.i1; ++i) out[idx++] = a(i, j, k);
}

void unpack_box(util::Array3D<double>& a, const Box& box,
                std::span<const double> in) {
  if (in.size() != static_cast<std::size_t>(box.volume()))
    throw std::invalid_argument("unpack_box: buffer/box size mismatch");
  std::size_t idx = 0;
  for (int k = box.k0; k < box.k1; ++k)
    for (int j = box.j0; j < box.j1; ++j)
      for (int i = box.i0; i < box.i1; ++i) a(i, j, k) = in[idx++];
}

void fill_pole_north(util::Array3D<double>& a, int wy, PoleParity parity) {
  assert(wy <= a.halo().y);
  const int hx = a.halo().x;
  const int hz = a.halo().z;
  for (int k = -hz; k < a.nz() + hz; ++k) {
    for (int d = 1; d <= wy; ++d) {
      for (int i = -hx; i < a.nx() + hx; ++i) {
        if (parity == PoleParity::kSymmetric) {
          a(i, -d, k) = a(i, d - 1, k);
        } else {
          // V rows are staggered: row j is the edge at theta_v(j); the
          // north pole edge is j = -1 (zero flux), deeper halo rows mirror
          // interior edges with a sign flip.
          a(i, -d, k) = (d == 1) ? 0.0 : -a(i, d - 2, k);
        }
      }
    }
  }
}

void fill_pole_south(util::Array3D<double>& a, int wy, PoleParity parity) {
  assert(wy <= a.halo().y);
  const int hx = a.halo().x;
  const int hz = a.halo().z;
  const int ny = a.ny();
  for (int k = -hz; k < a.nz() + hz; ++k) {
    if (parity == PoleParity::kAntisymmetric) {
      // The owned row ny-1 is itself the south pole edge: zero flux.
      for (int i = -hx; i < a.nx() + hx; ++i) a(i, ny - 1, k) = 0.0;
    }
    for (int d = 1; d <= wy; ++d) {
      for (int i = -hx; i < a.nx() + hx; ++i) {
        if (parity == PoleParity::kSymmetric) {
          a(i, ny - 1 + d, k) = a(i, ny - d, k);
        } else {
          a(i, ny - 1 + d, k) = -a(i, ny - 1 - d, k);
        }
      }
    }
  }
}

void fill_x_periodic(util::Array3D<double>& a, int wx) {
  assert(wx <= a.halo().x);
  const int nx = a.nx();
  const int hy = a.halo().y;
  const int hz = a.halo().z;
  for (int k = -hz; k < a.nz() + hz; ++k) {
    for (int j = -hy; j < a.ny() + hy; ++j) {
      for (int d = 1; d <= wx; ++d) {
        a(-d, j, k) = a(nx - d, j, k);
        a(nx - 1 + d, j, k) = a(d - 1, j, k);
      }
    }
  }
}

void fill_z_top(util::Array3D<double>& a, int wz) {
  assert(wz <= a.halo().z);
  const int hx = a.halo().x;
  const int hy = a.halo().y;
  for (int d = 1; d <= wz; ++d)
    for (int j = -hy; j < a.ny() + hy; ++j)
      for (int i = -hx; i < a.nx() + hx; ++i) a(i, j, -d) = a(i, j, 0);
}

void fill_z_bottom(util::Array3D<double>& a, int wz) {
  assert(wz <= a.halo().z);
  const int hx = a.halo().x;
  const int hy = a.halo().y;
  const int nz = a.nz();
  for (int d = 1; d <= wz; ++d)
    for (int j = -hy; j < a.ny() + hy; ++j)
      for (int i = -hx; i < a.nx() + hx; ++i)
        a(i, j, nz - 1 + d) = a(i, j, nz - 1);
}

}  // namespace ca::mesh
