// Terrain-following sigma vertical coordinate: sigma = (p - p_t)/p_es in
// (0, 1], discretized into n_z full (mid) levels with n_z + 1 half-level
// interfaces, sigma_half[0] = 0 (model top) and sigma_half[nz] = 1
// (surface).
#pragma once

#include <vector>

namespace ca::mesh {

class SigmaLevels {
 public:
  /// Uniformly spaced levels.
  static SigmaLevels uniform(int nz);
  /// Levels refined toward the surface (hyperbolic stretching), as
  /// production AGCMs use for the boundary layer.
  static SigmaLevels stretched(int nz, double stretch = 2.0);

  int nz() const { return static_cast<int>(full_.size()); }

  /// Mid-level sigma of layer k, k in [0, nz).
  double full(int k) const { return full_[static_cast<std::size_t>(k)]; }
  /// Interface sigma, k in [0, nz]; half(0) = 0, half(nz) = 1.
  double half(int k) const { return half_[static_cast<std::size_t>(k)]; }
  /// Layer thickness dsigma_k = half(k+1) - half(k).
  double dsigma(int k) const { return dsigma_[static_cast<std::size_t>(k)]; }

  const std::vector<double>& full_levels() const { return full_; }
  const std::vector<double>& half_levels() const { return half_; }
  const std::vector<double>& thicknesses() const { return dsigma_; }

 private:
  SigmaLevels(std::vector<double> half);

  std::vector<double> full_, half_, dsigma_;
};

}  // namespace ca::mesh
