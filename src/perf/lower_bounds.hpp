// The paper's communication lower bounds and asymptotic cost formulas.
//
//   Theorem 4.1 — Fourier filtering of an n_x-input line over p_x ranks
//   moves W = Omega(2 n_x log n_x / (p_x log(n_x/p_x)) * eta_x) words,
//   eta_x = 0 iff p_x = 1 (the observation behind choosing the Y-Z
//   decomposition: one rank per latitude circle makes F communication-free).
//
//   Theorem 4.2 — the vertical summation C moves W = Omega(2 (p_z-1) n_x
//   n_y) words in total, attained by ring algorithms.
//
//   Section 5.3 — per-rank data movement W and synchronization count S of
//   the three algorithm variants over K steps with M adaptation iterations:
//     W_CA = Theta(2 M K (n_x * n_y/p_y * n_z/p_z * log p_z))
//     W_YZ = Theta(3 M K (n_x * n_y/p_y * n_z/p_z * log p_z))
//     W_XY = Theta(6 M K (n_z * n_y/p_y * n_x/p_x * log p_x))
//     S_CA = Theta((2M + 2) K), S_YZ = Theta((6M + 4) K),
//     S_XY = Theta((9M + 10) K)
#pragma once

namespace ca::perf {

struct MeshShape {
  long long nx = 0;
  long long ny = 0;
  long long nz = 0;
};

struct ProcGrid {
  int px = 1;
  int py = 1;
  int pz = 1;

  int total() const { return px * py * pz; }
};

/// Theorem 4.1 lower bound in words per rank (0 when px == 1).
double fourier_filter_lower_bound_words(long long nx, int px);

/// Theorem 4.2 lower bound in words (total data movement of one C).
double summation_lower_bound_words(const MeshShape& mesh, int pz);

/// Section 5.3 per-rank word counts over a K-step run.
double w_ca(const MeshShape& mesh, const ProcGrid& grid, int M, long long K);
double w_yz(const MeshShape& mesh, const ProcGrid& grid, int M, long long K);
double w_xy(const MeshShape& mesh, const ProcGrid& grid, int M, long long K);

/// Section 5.3 synchronization counts over a K-step run.
double s_ca(int M, long long K);
double s_yz(int M, long long K);
double s_xy(int M, long long K);

}  // namespace ca::perf
