#include "perf/event_sim.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <stdexcept>
#include <unordered_map>

namespace ca::perf {
namespace {

struct PendingRecv {
  int src = -1;
};

struct CollectiveSite {
  int arrived = 0;
  double max_entry = 0.0;
  bool done = false;
  double finish = 0.0;
};

struct RankState {
  std::size_t pc = 0;
  double clock = 0.0;
  std::vector<PendingRecv> pending;
  /// Occurrence counter per group for collective matching.
  std::unordered_map<int, int> group_occurrence;
  /// Collective sites this rank has already registered its entry with
  /// (prevents double-counting when re-visiting a blocked op).
  std::set<std::uint64_t> registered;
  RankResult result;
};

std::uint64_t channel_key(int src, int dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(dst);
}

std::uint64_t site_key(int group, int occurrence) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(group))
          << 32) |
         static_cast<std::uint32_t>(occurrence);
}

}  // namespace

double SimResult::phase_max_seconds(const std::string& phase) const {
  double mx = 0.0;
  for (const auto& r : ranks) {
    auto it = r.phases.find(phase);
    if (it != r.phases.end()) mx = std::max(mx, it->second.seconds);
  }
  return mx;
}

double SimResult::phase_avg_seconds(const std::string& phase) const {
  if (ranks.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : ranks) {
    auto it = r.phases.find(phase);
    if (it != r.phases.end()) sum += it->second.seconds;
  }
  return sum / static_cast<double>(ranks.size());
}

std::uint64_t SimResult::phase_total_messages(const std::string& phase) const {
  std::uint64_t n = 0;
  for (const auto& r : ranks) {
    auto it = r.phases.find(phase);
    if (it != r.phases.end()) n += it->second.messages;
  }
  return n;
}

std::uint64_t SimResult::phase_total_bytes(const std::string& phase) const {
  std::uint64_t n = 0;
  for (const auto& r : ranks) {
    auto it = r.phases.find(phase);
    if (it != r.phases.end()) n += it->second.bytes;
  }
  return n;
}

std::uint64_t SimResult::phase_total_collective_bytes(
    const std::string& phase) const {
  std::uint64_t n = 0;
  for (const auto& r : ranks) {
    auto it = r.phases.find(phase);
    if (it != r.phases.end()) n += it->second.collective_bytes;
  }
  return n;
}

std::vector<std::string> SimResult::phase_names() const {
  std::set<std::string> names;
  for (const auto& r : ranks)
    for (const auto& [name, acct] : r.phases) names.insert(name);
  return {names.begin(), names.end()};
}

SimResult simulate(const Schedule& schedule, const MachineModel& machine) {
  const int p = schedule.nranks();
  std::vector<RankState> ranks(static_cast<std::size_t>(p));
  // Message arrival times per directed channel, FIFO.
  std::unordered_map<std::uint64_t, std::deque<double>> channels;
  std::unordered_map<std::uint64_t, CollectiveSite> sites;

  bool progressed = true;
  bool all_done = false;
  while (progressed && !all_done) {
    progressed = false;
    all_done = true;
    for (int r = 0; r < p; ++r) {
      RankState& st = ranks[static_cast<std::size_t>(r)];
      const auto& prog = schedule.program(r);
      while (st.pc < prog.size()) {
        const Op& op = prog[st.pc];
        PhaseAccount& acct = st.result.phases[op.phase];
        if (op.kind == OpKind::kCompute) {
          const double dt = op.flops * machine.flop_time;
          st.clock += dt;
          acct.seconds += dt;
        } else if (op.kind == OpKind::kIsend) {
          st.clock += machine.alpha;
          acct.seconds += machine.alpha;
          acct.messages += 1;
          acct.bytes += op.bytes;
          channels[channel_key(r, op.peer)].push_back(
              st.clock + machine.beta * static_cast<double>(op.bytes));
        } else if (op.kind == OpKind::kIrecv) {
          st.pending.push_back(PendingRecv{op.peer});
        } else if (op.kind == OpKind::kWaitAll) {
          // All pending receives must have a known arrival time.
          double latest = st.clock;
          bool ready = true;
          // Peek arrivals without consuming until all are present.
          std::unordered_map<std::uint64_t, std::size_t> need;
          for (const auto& pr : st.pending)
            ++need[channel_key(pr.src, r)];
          for (const auto& [key, count] : need) {
            auto it = channels.find(key);
            if (it == channels.end() || it->second.size() < count) {
              ready = false;
              break;
            }
            for (std::size_t q = 0; q < count; ++q)
              latest = std::max(latest, it->second[q]);
          }
          if (!ready) break;  // blocked: retry on a later sweep
          std::size_t consumed = 0;
          for (const auto& [key, count] : need) {
            auto& queue = channels[key];
            for (std::size_t q = 0; q < count; ++q) queue.pop_front();
            consumed += count;
          }
          // Receiver-side software overhead per consumed message (LogGP o).
          const double overhead =
              machine.recv_overhead * static_cast<double>(consumed);
          acct.seconds += latest - st.clock + overhead;
          st.clock = latest + overhead;
          st.pending.clear();
        } else {  // kCollective
          const int occurrence = st.group_occurrence[op.group];
          const std::uint64_t key = site_key(op.group, occurrence);
          CollectiveSite& site = sites[key];
          const int group_size =
              static_cast<int>(schedule.groups()[static_cast<std::size_t>(
                                                     op.group)]
                                   .size());
          if (st.registered.insert(key).second) {
            ++site.arrived;
            site.max_entry = std::max(site.max_entry, st.clock);
            if (site.arrived == group_size) {
              site.done = true;
              site.finish = site.max_entry + op.collective_seconds;
            }
          }
          if (!site.done) break;  // blocked until the group completes
          acct.seconds += site.finish - st.clock;
          acct.collectives += 1;
          acct.collective_bytes += op.bytes;
          st.clock = site.finish;
          st.registered.erase(key);
          ++st.group_occurrence[op.group];
        }
        ++st.pc;
        progressed = true;
      }
      if (st.pc < prog.size()) all_done = false;
    }
  }

  if (!all_done) {
    // Re-entering a blocked collective must not double-count its entry:
    // detect deadlock instead.
    throw std::runtime_error(
        "perf::simulate: deadlock (mismatched messages or collectives)");
  }

  SimResult out;
  out.ranks.reserve(static_cast<std::size_t>(p));
  for (auto& st : ranks) {
    st.result.total_seconds = st.clock;
    out.makespan = std::max(out.makespan, st.clock);
    out.ranks.push_back(std::move(st.result));
  }
  return out;
}

}  // namespace ca::perf
