#include "perf/report.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <ostream>

namespace ca::perf {

std::vector<PhaseSummary> summarize(const SimResult& result) {
  std::vector<PhaseSummary> rows;
  for (const auto& name : result.phase_names()) {
    PhaseSummary row;
    row.phase = name;
    row.min_seconds = std::numeric_limits<double>::infinity();
    double sum = 0.0;
    for (const auto& r : result.ranks) {
      const auto it = r.phases.find(name);
      const double s = it == r.phases.end() ? 0.0 : it->second.seconds;
      row.max_seconds = std::max(row.max_seconds, s);
      row.min_seconds = std::min(row.min_seconds, s);
      sum += s;
      if (it != r.phases.end()) {
        row.messages += it->second.messages;
        row.bytes += it->second.bytes;
        row.collective_bytes += it->second.collective_bytes;
      }
    }
    row.avg_seconds =
        result.ranks.empty() ? 0.0 : sum / static_cast<double>(result.ranks.size());
    row.imbalance =
        row.avg_seconds > 0.0 ? row.max_seconds / row.avg_seconds : 0.0;
    rows.push_back(row);
  }
  return rows;
}

void print_summary(std::ostream& out, const SimResult& result,
                   const std::string& title) {
  out << title << " (makespan " << std::scientific << std::setprecision(3)
      << result.makespan << " s, critical rank " << critical_rank(result)
      << ")\n";
  out << std::left << std::setw(14) << "phase" << std::right
      << std::setw(12) << "max [s]" << std::setw(12) << "avg [s]"
      << std::setw(8) << "imb" << std::setw(12) << "messages"
      << std::setw(12) << "MB" << std::setw(12) << "coll MB" << "\n";
  for (const auto& row : summarize(result)) {
    out << std::left << std::setw(14) << row.phase << std::right
        << std::scientific << std::setprecision(3) << std::setw(12)
        << row.max_seconds << std::setw(12) << row.avg_seconds
        << std::fixed << std::setprecision(2) << std::setw(8)
        << row.imbalance << std::setw(12) << row.messages
        << std::setprecision(1) << std::setw(12)
        << static_cast<double>(row.bytes) / 1e6 << std::setw(12)
        << static_cast<double>(row.collective_bytes) / 1e6 << "\n";
  }
}

void append_csv(std::ostream& out, const std::string& label,
                const SimResult& result) {
  if (out.tellp() == std::streampos(0)) {
    out << "label,phase,max_seconds,avg_seconds,imbalance,messages,bytes,"
           "collective_bytes\n";
  }
  for (const auto& row : summarize(result)) {
    out << label << ',' << row.phase << ',' << std::scientific
        << std::setprecision(6) << row.max_seconds << ','
        << row.avg_seconds << ',' << std::fixed << std::setprecision(4)
        << row.imbalance << ',' << row.messages << ',' << row.bytes << ','
        << row.collective_bytes << "\n";
  }
}

void print_fault_summary(std::ostream& out, const comm::FaultSummary& s,
                         const std::string& title) {
  out << title << " (injected " << s.injected_total() << ", detected "
      << s.detected_total() << ", recovered " << s.recovered_total()
      << ")\n";
  out << std::left << std::setw(12) << "fault" << std::right
      << std::setw(10) << "injected" << std::setw(10) << "detected"
      << std::setw(10) << "recovered" << "\n";
  auto row = [&](const char* name, std::uint64_t injected,
                 std::uint64_t detected, std::uint64_t recovered) {
    out << std::left << std::setw(12) << name << std::right << std::setw(10)
        << injected << std::setw(10) << detected << std::setw(10)
        << recovered << "\n";
  };
  row("delay", s.injected_delay, 0, s.recovered_delay);
  row("duplicate", s.injected_duplicate, 0, s.recovered_duplicate);
  row("drop", s.injected_drop, s.detected_timeout, s.recovered_drop);
  row("corrupt", s.injected_corrupt, s.detected_checksum, 0);
  row("stall", s.injected_stall, 0, 0);
  // Process-level faults: detection is shared (any peer-dead event may
  // stem from either a kill or a hang), so the count rides the kill row.
  row("kill", s.injected_kill, s.detected_peer_dead, 0);
  row("hang", s.injected_hang, 0, 0);
  // Numerical faults: in-memory state pokes detected by the health
  // sentinel (NumericalError incidents).  "Recovery" for these is the
  // service's rollback, counted per job, not per message — hence 0 here.
  row("state", s.injected_state_corrupt, s.detected_numeric, 0);
}

int critical_rank(const SimResult& result) {
  int best = -1;
  double t = -1.0;
  for (std::size_t r = 0; r < result.ranks.size(); ++r) {
    if (result.ranks[r].total_seconds > t) {
      t = result.ranks[r].total_seconds;
      best = static_cast<int>(r);
    }
  }
  return best;
}

}  // namespace ca::perf
