#include "perf/cost.hpp"

#include <algorithm>
#include <cmath>

namespace ca::perf {
namespace {

double ceil_log2(int p) {
  int rounds = 0;
  int span = 1;
  while (span < p) {
    span <<= 1;
    ++rounds;
  }
  return static_cast<double>(rounds);
}

}  // namespace

double p2p_time(const MachineModel& m, std::size_t bytes) {
  return m.alpha + m.beta * static_cast<double>(bytes);
}

double ring_allreduce_time(const MachineModel& m, int p, std::size_t bytes) {
  if (p <= 1) return 0.0;
  const double rounds = 2.0 * (p - 1);
  const double volume =
      2.0 * static_cast<double>(p - 1) / p * static_cast<double>(bytes);
  return rounds * (m.alpha + m.collective_round_overhead) + m.beta * volume;
}

double recursive_doubling_allreduce_time(const MachineModel& m, int p,
                                         std::size_t bytes) {
  if (p <= 1) return 0.0;
  const double rounds = ceil_log2(p);
  return rounds * (m.alpha + m.collective_round_overhead +
                   m.beta * static_cast<double>(bytes));
}

double allreduce_time(const MachineModel& m, int p, std::size_t bytes) {
  if (p <= 1) return 0.0;
  return std::min(ring_allreduce_time(m, p, bytes),
                  recursive_doubling_allreduce_time(m, p, bytes));
}

double bcast_time(const MachineModel& m, int p, std::size_t bytes) {
  if (p <= 1) return 0.0;
  return ceil_log2(p) * (m.alpha + m.collective_round_overhead +
                         m.beta * static_cast<double>(bytes));
}

double distributed_fft_time(const MachineModel& m, int p, std::size_t n,
                            std::size_t lines) {
  const double local = static_cast<double>(n) / std::max(p, 1) *
                       std::max(1.0, std::log2(static_cast<double>(n))) *
                       5.0 /* flops per butterfly point */ *
                       static_cast<double>(lines) * m.flop_time;
  if (p <= 1) return local;
  const double slab_bytes = static_cast<double>(n) / p *
                            static_cast<double>(lines) * sizeof(double) * 2;
  const double rounds = ceil_log2(p);
  return local + rounds * (m.alpha + m.collective_round_overhead +
                           m.beta * slab_bytes);
}

std::size_t ring_allreduce_bytes(int p, std::size_t bytes) {
  if (p <= 1) return 0;
  return 2 * static_cast<std::size_t>(p - 1) * bytes /
         static_cast<std::size_t>(p);
}

}  // namespace ca::perf
