#include "perf/machine.hpp"

namespace ca::perf {

MachineModel MachineModel::tianhe2() {
  // Calibrated against the paper's measured speedups (EXPERIMENTS.md):
  // alpha is the EFFECTIVE per-message cost at scale — MPI software
  // overhead plus the synchronization noise of 24 ranks per node on the
  // 2013-era system — and beta the effective per-rank bandwidth when all
  // ranks of a node drive the shared NIC simultaneously.
  MachineModel m;
  m.alpha = 1.5e-4;
  m.beta = 1.0 / 2.5e8;
  m.flop_time = 1.0 / 4.0e9;
  m.collective_round_overhead = 2.0e-5;
  m.recv_overhead = 1.0e-5;
  return m;
}

MachineModel MachineModel::modern_cluster() {
  MachineModel m;
  m.alpha = 1.0e-6;
  m.beta = 1.0 / 10.0e9;
  m.flop_time = 1.0 / 4.0e9;
  m.collective_round_overhead = 1.0e-6;
  return m;
}

}  // namespace ca::perf
