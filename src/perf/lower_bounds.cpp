#include "perf/lower_bounds.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ca::perf {

double fourier_filter_lower_bound_words(long long nx, int px) {
  if (nx <= 1 || px < 1) throw std::invalid_argument("bad nx/px");
  if (px == 1) return 0.0;  // eta_x = 0
  const double n = static_cast<double>(nx);
  const double p = static_cast<double>(std::min<long long>(px, nx));
  const double denom = std::log2(std::max(2.0, n / p));
  return 2.0 * n * std::log2(n) / (p * denom);
}

double summation_lower_bound_words(const MeshShape& mesh, int pz) {
  if (pz < 1) throw std::invalid_argument("bad pz");
  return 2.0 * static_cast<double>(pz - 1) * static_cast<double>(mesh.nx) *
         static_cast<double>(mesh.ny);
}

namespace {

double log2_clamped(int p) {
  return std::log2(std::max(2.0, static_cast<double>(p)));
}

}  // namespace

double w_ca(const MeshShape& mesh, const ProcGrid& grid, int M, long long K) {
  return 2.0 * M * static_cast<double>(K) * static_cast<double>(mesh.nx) *
         (static_cast<double>(mesh.ny) / grid.py) *
         (static_cast<double>(mesh.nz) / grid.pz) * log2_clamped(grid.pz);
}

double w_yz(const MeshShape& mesh, const ProcGrid& grid, int M, long long K) {
  return 3.0 * M * static_cast<double>(K) * static_cast<double>(mesh.nx) *
         (static_cast<double>(mesh.ny) / grid.py) *
         (static_cast<double>(mesh.nz) / grid.pz) * log2_clamped(grid.pz);
}

double w_xy(const MeshShape& mesh, const ProcGrid& grid, int M, long long K) {
  return 6.0 * M * static_cast<double>(K) * static_cast<double>(mesh.nz) *
         (static_cast<double>(mesh.ny) / grid.py) *
         (static_cast<double>(mesh.nx) / grid.px) * log2_clamped(grid.px);
}

double s_ca(int M, long long K) {
  return (2.0 * M + 2.0) * static_cast<double>(K);
}

double s_yz(int M, long long K) {
  return (6.0 * M + 4.0) * static_cast<double>(K);
}

double s_xy(int M, long long K) {
  return (9.0 * M + 10.0) * static_cast<double>(K);
}

}  // namespace ca::perf
