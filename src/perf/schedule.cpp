#include "perf/schedule.hpp"

#include <cassert>
#include <stdexcept>

namespace ca::perf {

void Schedule::add_compute(int rank, double flops, std::string phase) {
  Op op;
  op.kind = OpKind::kCompute;
  op.flops = flops;
  op.phase = std::move(phase);
  programs_[static_cast<std::size_t>(rank)].push_back(std::move(op));
}

void Schedule::add_isend(int rank, int dst, std::size_t bytes,
                         std::string phase) {
  if (dst < 0 || dst >= nranks())
    throw std::out_of_range("Schedule::add_isend: bad destination");
  Op op;
  op.kind = OpKind::kIsend;
  op.peer = dst;
  op.bytes = bytes;
  op.phase = std::move(phase);
  programs_[static_cast<std::size_t>(rank)].push_back(std::move(op));
}

void Schedule::add_irecv(int rank, int src, std::string phase) {
  if (src < 0 || src >= nranks())
    throw std::out_of_range("Schedule::add_irecv: bad source");
  Op op;
  op.kind = OpKind::kIrecv;
  op.peer = src;
  op.phase = std::move(phase);
  programs_[static_cast<std::size_t>(rank)].push_back(std::move(op));
}

void Schedule::add_waitall(int rank, std::string phase) {
  Op op;
  op.kind = OpKind::kWaitAll;
  op.phase = std::move(phase);
  programs_[static_cast<std::size_t>(rank)].push_back(std::move(op));
}

int Schedule::add_group(std::vector<int> members) {
  for (int m : members)
    if (m < 0 || m >= nranks())
      throw std::out_of_range("Schedule::add_group: bad member rank");
  groups_.push_back(std::move(members));
  return static_cast<int>(groups_.size()) - 1;
}

void Schedule::add_collective(int rank, int group, double seconds,
                              std::size_t bytes, std::string phase) {
  if (group < 0 || group >= static_cast<int>(groups_.size()))
    throw std::out_of_range("Schedule::add_collective: bad group id");
  Op op;
  op.kind = OpKind::kCollective;
  op.group = group;
  op.collective_seconds = seconds;
  op.bytes = bytes;
  op.phase = std::move(phase);
  programs_[static_cast<std::size_t>(rank)].push_back(std::move(op));
}

void Schedule::add_exchange(int rank, const std::vector<int>& peers,
                            const std::vector<std::size_t>& bytes_per_peer,
                            const std::string& phase) {
  assert(peers.size() == bytes_per_peer.size());
  for (int p : peers) add_irecv(rank, p, phase);
  for (std::size_t i = 0; i < peers.size(); ++i)
    add_isend(rank, peers[i], bytes_per_peer[i], phase);
  add_waitall(rank, phase);
}

std::size_t Schedule::total_ops() const {
  std::size_t n = 0;
  for (const auto& prog : programs_) n += prog.size();
  return n;
}

}  // namespace ca::perf
