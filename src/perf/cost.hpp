// Closed-form communication costs of the primitives the dynamical core
// uses, in the alpha-beta model.  These are the per-call costs the event
// simulator charges for collective operations, and they follow the
// algorithms of Thakur, Rabenseifner & Gropp [19] that src/comm implements.
#pragma once

#include <cstddef>

#include "perf/machine.hpp"

namespace ca::perf {

/// One point-to-point message of `bytes` bytes.
double p2p_time(const MachineModel& m, std::size_t bytes);

/// Ring allreduce over p ranks of a `bytes`-byte vector:
/// 2(p-1) rounds, 2*(p-1)/p*bytes moved per rank.
double ring_allreduce_time(const MachineModel& m, int p, std::size_t bytes);

/// Recursive-doubling allreduce: ceil(log2 p) rounds of full-vector
/// exchange.
double recursive_doubling_allreduce_time(const MachineModel& m, int p,
                                         std::size_t bytes);

/// Cost-optimal allreduce choice (mirrors comm::allreduce kAuto).
double allreduce_time(const MachineModel& m, int p, std::size_t bytes);

/// Binomial broadcast.
double bcast_time(const MachineModel& m, int p, std::size_t bytes);

/// Distributed 1-D FFT of an n-point line spread over p ranks using
/// butterfly exchanges: log2(p) rounds each moving the local slab, plus
/// the local n/p log2(n) butterfly work.  `lines` independent transforms
/// share the rounds (messages are aggregated per round).
double distributed_fft_time(const MachineModel& m, int p, std::size_t n,
                            std::size_t lines);

/// Bytes a rank sends during a ring allreduce (for volume accounting).
std::size_t ring_allreduce_bytes(int p, std::size_t bytes);

}  // namespace ca::perf
