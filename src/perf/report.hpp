// Human-readable and machine-readable reporting of simulation results:
// per-phase breakdowns, imbalance statistics, and CSV emission for the
// figure benches and downstream plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "comm/stats.hpp"
#include "perf/event_sim.hpp"

namespace ca::perf {

struct PhaseSummary {
  std::string phase;
  double max_seconds = 0.0;
  double avg_seconds = 0.0;
  double min_seconds = 0.0;
  /// Imbalance ratio max/avg (1 = perfectly balanced).
  double imbalance = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t collective_bytes = 0;
};

/// Per-phase summary rows (sorted by phase name) of a simulation result.
std::vector<PhaseSummary> summarize(const SimResult& result);

/// Pretty-prints the summary table: phase | max | avg | imb | msgs | MB.
void print_summary(std::ostream& out, const SimResult& result,
                   const std::string& title);

/// Appends one CSV row per phase: label,phase,max_s,avg_s,imbalance,
/// messages,bytes,collective_bytes.  Writes a header if the stream is at
/// position zero.
void append_csv(std::ostream& out, const std::string& label,
                const SimResult& result);

/// The rank whose completion time defines the makespan (critical rank).
int critical_rank(const SimResult& result);

/// Pretty-prints the fault-injection counters of a run: one row per fault
/// kind with injected / detected / recovered columns, plus totals.  Used
/// by the chaos suite and the examples to make recovery observable.
void print_fault_summary(std::ostream& out, const comm::FaultSummary& s,
                         const std::string& title);

}  // namespace ca::perf
