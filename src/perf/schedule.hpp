// Schedule intermediate representation: the per-rank communication and
// computation program of one algorithm variant (original X-Y, original
// Y-Z, communication-avoiding), expressed as explicit ops.  The event
// simulator (event_sim.hpp) executes a Schedule under a MachineModel; the
// schedule builders (core/schedule_builders.hpp) emit exactly the op
// sequence the functional runtime performs, which tests cross-check via
// the runtime's traffic statistics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ca::perf {

enum class OpKind : std::uint8_t {
  kCompute,     ///< local work: advances the rank clock by flops*flop_time
  kIsend,       ///< nonblocking send: alpha at sender, arrival after beta*bytes
  kIrecv,       ///< posts a receive (matched FIFO per source channel)
  kWaitAll,     ///< blocks until every posted receive has arrived
  kCollective,  ///< synchronizing group operation with a closed-form cost
};

struct Op {
  OpKind kind = OpKind::kCompute;
  /// kCompute: floating point operations.
  double flops = 0.0;
  /// kIsend: destination rank; kIrecv: source rank.
  int peer = -1;
  /// kIsend: message size; kCollective: per-rank bytes moved (accounting).
  std::size_t bytes = 0;
  /// kCollective: group index into Schedule::groups.
  int group = -1;
  /// kCollective: wall-clock cost once all members have entered [s].
  double collective_seconds = 0.0;
  /// Accounting label ("collective", "stencil", "compute", "filter", ...).
  std::string phase;
};

class Schedule {
 public:
  explicit Schedule(int nranks) : programs_(static_cast<std::size_t>(nranks)) {}

  int nranks() const { return static_cast<int>(programs_.size()); }

  void add_compute(int rank, double flops, std::string phase);
  void add_isend(int rank, int dst, std::size_t bytes, std::string phase);
  void add_irecv(int rank, int src, std::string phase);
  void add_waitall(int rank, std::string phase);

  /// Registers a group (e.g. a z line); returns its id.
  int add_group(std::vector<int> members);
  /// Adds the collective op for ONE member; every member of the group must
  /// add a matching op (in the same per-group order).
  void add_collective(int rank, int group, double seconds, std::size_t bytes,
                      std::string phase);

  /// Convenience: a blocking halo exchange with peer list — posts all
  /// irecvs, all isends, then waits (the original algorithm's pattern).
  void add_exchange(int rank, const std::vector<int>& peers,
                    const std::vector<std::size_t>& bytes_per_peer,
                    const std::string& phase);

  const std::vector<Op>& program(int rank) const {
    return programs_[static_cast<std::size_t>(rank)];
  }
  const std::vector<std::vector<int>>& groups() const { return groups_; }

  /// Total op count across ranks (size guard for tests).
  std::size_t total_ops() const;

 private:
  std::vector<std::vector<Op>> programs_;
  std::vector<std::vector<int>> groups_;
};

}  // namespace ca::perf
