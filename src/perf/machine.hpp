// Alpha-beta machine model used by the schedule-level performance
// simulator.  The paper's evaluation platform is Tianhe-2 (Intel Ivy
// Bridge nodes, TH Express-2 interconnect, customized MPICH 3.1); the
// tianhe2() preset is calibrated so the full-scale simulated runs land in
// the regime the paper reports (see EXPERIMENTS.md).
#pragma once

namespace ca::perf {

struct MachineModel {
  /// Point-to-point message latency [s] (software + network injection).
  double alpha = 2.0e-6;
  /// Transfer time per byte [s/B] (inverse effective bandwidth).
  double beta = 1.0e-9;
  /// Time per double-precision floating-point operation [s] per rank.
  double flop_time = 1.0e-10;
  /// Extra per-round latency of collectives relative to p2p (software
  /// overhead of the collective algorithm's phases).
  double collective_round_overhead = 1.0e-6;
  /// Receiver-side software overhead per message (the LogGP 'o' at the
  /// receiving end; charged when a waitall consumes messages).
  double recv_overhead = 0.0;

  /// Tianhe-2-like EFFECTIVE parameters calibrated against the paper's
  /// measured speedups (EXPERIMENTS.md): 150 us per message (MPI software
  /// cost + synchronization noise with 24 ranks per node), 250 MB/s
  /// effective per-rank bandwidth under full-node load, 4 Gflop/s per
  /// rank on the stencil code.
  static MachineModel tianhe2();

  /// A lower-latency, higher-bandwidth machine for what-if sweeps.
  static MachineModel modern_cluster();
};

}  // namespace ca::perf
