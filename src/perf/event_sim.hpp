// Discrete-event execution of a Schedule under a MachineModel.
//
// Timeline semantics (the "maximum over any execution path" accounting of
// Solomonik et al., the model the paper's Section 5.3 analysis uses):
//   - kCompute     : clock += flops * flop_time
//   - kIsend       : clock += alpha (injection); the message arrives at the
//                    receiver at clock + beta*bytes
//   - kIrecv       : posts a pending receive (free)
//   - kWaitAll     : clock = max(clock, latest pending arrival) plus the
//                    receiver-side overhead per consumed message
//   - kCollective  : all members rendezvous; everyone leaves at
//                    max(entry clocks) + collective_seconds
//
// Per-phase accounting: every clock advancement is attributed to the
// active op's phase label, and message/byte counters are kept per phase so
// the schedule can be validated against the functional runtime's
// comm::CommStats.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "perf/machine.hpp"
#include "perf/schedule.hpp"

namespace ca::perf {

struct PhaseAccount {
  double seconds = 0.0;
  std::uint64_t messages = 0;      ///< p2p messages sent
  std::uint64_t bytes = 0;         ///< p2p bytes sent
  std::uint64_t collectives = 0;   ///< collective calls entered
  std::uint64_t collective_bytes = 0;
};

struct RankResult {
  double total_seconds = 0.0;
  std::map<std::string, PhaseAccount> phases;
};

struct SimResult {
  std::vector<RankResult> ranks;
  /// Latest rank completion time (the quantity the paper's runtime plots
  /// report).
  double makespan = 0.0;

  /// Max across ranks of the per-phase time (0 if the phase never ran).
  double phase_max_seconds(const std::string& phase) const;
  /// Mean across ranks of the per-phase time.
  double phase_avg_seconds(const std::string& phase) const;
  /// Sum across ranks of per-phase p2p messages / bytes.
  std::uint64_t phase_total_messages(const std::string& phase) const;
  std::uint64_t phase_total_bytes(const std::string& phase) const;
  std::uint64_t phase_total_collective_bytes(const std::string& phase) const;
  /// All phase labels seen.
  std::vector<std::string> phase_names() const;
};

/// Runs the schedule to completion.  Throws std::runtime_error on deadlock
/// (a rank blocked forever — mismatched sends/receives or collectives).
SimResult simulate(const Schedule& schedule, const MachineModel& machine);

}  // namespace ca::perf
