// Held & Suarez (1994) idealized dry forcing — the benchmark the paper's
// evaluation runs ("idealized dry-model experiments proposed by Held and
// Suarez, referred to as H-S"): Rayleigh friction on the low-level winds
// and Newtonian relaxation of temperature toward a prescribed radiative
// equilibrium, applied as a physics step between dynamical-core steps.
#pragma once

#include "ops/context.hpp"
#include "state/state.hpp"

namespace ca::physics {

struct HeldSuarezParams {
  double sigma_b = 0.7;           ///< boundary-layer top
  double k_f = 1.0 / 86400.0;     ///< friction rate [1/s] (1/day)
  double k_a = 1.0 / (40 * 86400.0);  ///< free-atmosphere relaxation
  double k_s = 1.0 / (4 * 86400.0);   ///< surface relaxation
  double delta_t_y = 60.0;        ///< equator-pole T_eq contrast [K]
  double delta_theta_z = 10.0;    ///< vertical potential-T contrast [K]
  double t_floor = 200.0;         ///< stratospheric floor [K]
  double t_peak = 315.0;          ///< equatorial surface T_eq [K]
};

class HeldSuarezForcing {
 public:
  HeldSuarezForcing(const ops::OpContext& ctx,
                    const HeldSuarezParams& params = {})
      : ctx_(&ctx), params_(params) {}

  /// Rayleigh friction coefficient k_v(sigma) [1/s].
  double k_v(double sigma) const;
  /// Thermal relaxation coefficient k_T(latitude via global row, sigma).
  double k_t(int gj, double sigma) const;
  /// Radiative equilibrium temperature at global row gj and pressure p.
  double t_eq(int gj, double p) const;

  /// Applies one forcing step of length dt to the owned interior of xi
  /// (analytic exponential relaxation, unconditionally stable).
  void apply(state::State& xi, double dt) const;

  const HeldSuarezParams& params() const { return params_; }

 private:
  const ops::OpContext* ctx_;
  HeldSuarezParams params_;
};

}  // namespace ca::physics
