#include "physics/held_suarez.hpp"

#include <cmath>

#include "state/transforms.hpp"
#include "util/math.hpp"

namespace ca::physics {

double HeldSuarezForcing::k_v(double sigma) const {
  const double w =
      std::max(0.0, (sigma - params_.sigma_b) / (1.0 - params_.sigma_b));
  return params_.k_f * w;
}

double HeldSuarezForcing::k_t(int gj, double sigma) const {
  // Latitude phi = pi/2 - theta, so cos(phi) = sin(theta).
  const double cos_phi = ctx_->mesh->sin_theta(gj);
  const double w =
      std::max(0.0, (sigma - params_.sigma_b) / (1.0 - params_.sigma_b));
  return params_.k_a +
         (params_.k_s - params_.k_a) * w * std::pow(cos_phi, 4);
}

double HeldSuarezForcing::t_eq(int gj, double p) const {
  const double cos_phi = ctx_->mesh->sin_theta(gj);
  const double sin_phi = ctx_->mesh->cos_theta(gj);  // sin(phi) = cos(theta)
  const double pr = p / util::kPressureRef;
  const double t = (params_.t_peak - params_.delta_t_y * sin_phi * sin_phi -
                    params_.delta_theta_z * std::log(pr) * cos_phi *
                        cos_phi) *
                   std::pow(pr, util::kKappa);
  return std::max(params_.t_floor, t);
}

void HeldSuarezForcing::apply(state::State& xi, double dt) const {
  const auto& decomp = *ctx_->decomp;
  const auto& strat = *ctx_->strat;
  const double b = util::kGravityWaveSpeed;
  for (int k = 0; k < decomp.lnz(); ++k) {
    const double sigma = ctx_->sig(k);
    const double friction = std::exp(-k_v(sigma) * dt);
    for (int j = 0; j < decomp.lny(); ++j) {
      const int gj = decomp.gj(j);
      const double relax = std::exp(-k_t(gj, sigma) * dt);
      for (int i = 0; i < decomp.lnx(); ++i) {
        // Friction acts on the physical u, v; U = P u with P unchanged by
        // the forcing, so the transformed fields damp identically.
        xi.u()(i, j, k) *= friction;
        xi.v()(i, j, k) *= friction;
        // Newtonian relaxation of T, expressed in Phi = P R (T - T~)/b.
        const double pc = state::p_factor_s(xi.psa(), strat, i, j);
        const double p =
            util::kPressureTop +
            sigma * (strat.ps_ref() + xi.psa()(i, j) - util::kPressureTop);
        const double t_now =
            strat.t_ref(ctx_->gk(k)) + b * xi.phi()(i, j, k) /
                                           (pc * util::kRd);
        const double t_new =
            t_eq(gj, p) + (t_now - t_eq(gj, p)) * relax;
        xi.phi()(i, j, k) =
            pc * util::kRd * (t_new - strat.t_ref(ctx_->gk(k))) / b;
      }
    }
  }
}

}  // namespace ca::physics
