// Plain-text field dumps loadable by gnuplot/numpy: one whitespace-
// separated value grid per file with a comment header.  Used by the
// examples to leave plottable artifacts behind.
#pragma once

#include <string>

#include "util/array3d.hpp"

namespace ca::util {

/// Writes a 2-D field (owned interior) as ny rows of nx values, with a
/// '#'-comment header carrying the label and dimensions.
void write_text_field(const std::string& path, const std::string& label,
                      const Array2D<double>& f);

/// Writes one level of a 3-D field.
void write_text_level(const std::string& path, const std::string& label,
                      const Array3D<double>& f, int k);

/// Reads a field written by write_text_field back (dimensions from the
/// header).  Throws std::runtime_error on malformed input.
Array2D<double> read_text_field(const std::string& path);

}  // namespace ca::util
