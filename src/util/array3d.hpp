// Dense 3-D field container with halo (ghost) storage.
//
// The dynamical core stores every prognostic/diagnostic field on a local
// block of the latitude-longitude mesh plus a halo frame whose width is a
// per-direction property of the array.  Indexing is logical: the owned block
// is [0, nx) x [0, ny) x [0, nz); halo cells carry negative / >= n indices.
// Storage is x-fastest so latitude circles (FFT lines, x-stencils) are
// contiguous.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ca::util {

/// Halo widths per direction (symmetric low/high).
struct Halo3 {
  int x = 0;
  int y = 0;
  int z = 0;

  friend bool operator==(const Halo3&, const Halo3&) = default;
};

template <typename T>
class Array3D {
 public:
  Array3D() = default;

  Array3D(int nx, int ny, int nz, Halo3 halo = {})
      : nx_(nx),
        ny_(ny),
        nz_(nz),
        halo_(halo),
        sx_(1),
        sy_(static_cast<std::ptrdiff_t>(nx + 2 * halo.x)),
        sz_(static_cast<std::ptrdiff_t>(nx + 2 * halo.x) *
            (ny + 2 * halo.y)),
        data_(static_cast<std::size_t>(nx + 2 * halo.x) *
                  (ny + 2 * halo.y) * (nz + 2 * halo.z),
              T{}) {
    assert(nx > 0 && ny > 0 && nz > 0);
    assert(halo.x >= 0 && halo.y >= 0 && halo.z >= 0);
  }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  Halo3 halo() const { return halo_; }

  /// Total allocated extent per direction (owned + both halos).
  int ex() const { return nx_ + 2 * halo_.x; }
  int ey() const { return ny_ + 2 * halo_.y; }
  int ez() const { return nz_ + 2 * halo_.z; }

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& operator()(int i, int j, int k) {
    assert(in_bounds(i, j, k));
    return data_[index(i, j, k)];
  }
  const T& operator()(int i, int j, int k) const {
    assert(in_bounds(i, j, k));
    return data_[index(i, j, k)];
  }

  /// Raw storage (halo-inclusive), x-fastest.
  std::span<T> raw() { return data_; }
  std::span<const T> raw() const { return data_; }

  /// Contiguous latitude line: all owned x at fixed (j, k) (halo-exclusive).
  std::span<T> line(int j, int k) {
    return std::span<T>(&data_[index(0, j, k)], static_cast<std::size_t>(nx_));
  }
  std::span<const T> line(int j, int k) const {
    return std::span<const T>(&data_[index(0, j, k)],
                              static_cast<std::size_t>(nx_));
  }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  /// Copies the owned block (not halos) from another array of the same
  /// owned shape; halo widths may differ.
  void copy_interior_from(const Array3D& o) {
    assert(o.nx_ == nx_ && o.ny_ == ny_ && o.nz_ == nz_);
    for (int k = 0; k < nz_; ++k)
      for (int j = 0; j < ny_; ++j)
        for (int i = 0; i < nx_; ++i) (*this)(i, j, k) = o(i, j, k);
  }

  friend bool operator==(const Array3D& a, const Array3D& b) {
    return a.nx_ == b.nx_ && a.ny_ == b.ny_ && a.nz_ == b.nz_ &&
           a.halo_ == b.halo_ && a.data_ == b.data_;
  }

  std::size_t index(int i, int j, int k) const {
    return static_cast<std::size_t>((i + halo_.x) * sx_ +
                                    (j + halo_.y) * sy_ +
                                    (k + halo_.z) * sz_);
  }

  bool in_bounds(int i, int j, int k) const {
    return i >= -halo_.x && i < nx_ + halo_.x && j >= -halo_.y &&
           j < ny_ + halo_.y && k >= -halo_.z && k < nz_ + halo_.z;
  }

 private:
  int nx_ = 0, ny_ = 0, nz_ = 0;
  Halo3 halo_{};
  std::ptrdiff_t sx_ = 0, sy_ = 0, sz_ = 0;
  std::vector<T> data_;
};

template <typename T>
class Array2D {
 public:
  Array2D() = default;

  Array2D(int nx, int ny, int hx = 0, int hy = 0)
      : nx_(nx),
        ny_(ny),
        hx_(hx),
        hy_(hy),
        sy_(static_cast<std::ptrdiff_t>(nx + 2 * hx)),
        data_(static_cast<std::size_t>(nx + 2 * hx) * (ny + 2 * hy), T{}) {
    assert(nx > 0 && ny > 0 && hx >= 0 && hy >= 0);
  }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int hx() const { return hx_; }
  int hy() const { return hy_; }
  std::size_t size() const { return data_.size(); }

  T& operator()(int i, int j) {
    assert(in_bounds(i, j));
    return data_[index(i, j)];
  }
  const T& operator()(int i, int j) const {
    assert(in_bounds(i, j));
    return data_[index(i, j)];
  }

  std::span<T> raw() { return data_; }
  std::span<const T> raw() const { return data_; }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  friend bool operator==(const Array2D& a, const Array2D& b) {
    return a.nx_ == b.nx_ && a.ny_ == b.ny_ && a.hx_ == b.hx_ &&
           a.hy_ == b.hy_ && a.data_ == b.data_;
  }

  std::size_t index(int i, int j) const {
    return static_cast<std::size_t>((i + hx_) + (j + hy_) * sy_);
  }

  bool in_bounds(int i, int j) const {
    return i >= -hx_ && i < nx_ + hx_ && j >= -hy_ && j < ny_ + hy_;
  }

 private:
  int nx_ = 0, ny_ = 0, hx_ = 0, hy_ = 0;
  std::ptrdiff_t sy_ = 0;
  std::vector<T> data_;
};

}  // namespace ca::util
