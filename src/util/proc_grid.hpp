// Process-grid factorization shared by the evaluation benches
// (EvalSetup::yz_grid / xy_grid) and the service's degraded-pool reshaping:
// when a job loses ranks to quarantine, the worker pool re-factorizes its
// decomposition for the shrunken budget with exactly the same rules the
// benches use, so a reshaped job lands on a shape the perf model and the
// validation layer already understand.
#pragma once

#include <array>
#include <stdexcept>
#include <string>

namespace ca::util {

/// Y-Z process grid {px=1, py, pz} for p ranks over nz vertical levels.
/// Prefers pz = 8 (nz = 30 practice); when 8 does not divide p (or
/// nz < 8) it falls back to the largest divisor of p that is
/// <= min(nz, 8), so py * pz == p always holds.
inline std::array<int, 3> yz_grid(int p, int nz) {
  if (p <= 0)
    throw std::invalid_argument("yz_grid: rank count must be positive");
  const int pz_cap = nz < 8 ? nz : 8;
  int pz = 1;
  for (int d = pz_cap; d >= 1; --d) {
    if (p % d == 0) {
      pz = d;
      break;
    }
  }
  const std::array<int, 3> g{1, p / pz, pz};
  if (g[1] * g[2] != p)
    throw std::logic_error("yz_grid: py * pz != p for p = " +
                           std::to_string(p));
  return g;
}

/// X-Y grid {px, py, pz=1}: most-square factorization with px a power of
/// two, halved until it divides p so px * py == p always holds.
inline std::array<int, 3> xy_grid(int p) {
  if (p <= 0)
    throw std::invalid_argument("xy_grid: rank count must be positive");
  int px = 1;
  while (px * px < p) px *= 2;
  while (px > 1 && p % px != 0) px /= 2;
  const std::array<int, 3> g{px, p / px, 1};
  if (g[0] * g[1] != p)
    throw std::logic_error("xy_grid: px * py != p for p = " +
                           std::to_string(p));
  return g;
}

}  // namespace ca::util
