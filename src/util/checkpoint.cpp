#include "util/checkpoint.hpp"

#include <array>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <vector>

namespace ca::util {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_all(std::FILE* f, const void* data, std::size_t bytes,
               const std::string& path) {
  if (std::fwrite(data, 1, bytes, f) != bytes)
    throw std::runtime_error("checkpoint write failed: " + path);
}

void read_all(std::FILE* f, void* data, std::size_t bytes,
              const std::string& path) {
  if (std::fread(data, 1, bytes, f) != bytes)
    throw std::runtime_error("checkpoint read failed (truncated?): " +
                             path);
}

std::vector<double> pack_state(const mesh::DomainDecomp& d,
                               const state::State& xi) {
  std::vector<double> buf;
  buf.reserve(static_cast<std::size_t>(d.lnx()) * d.lny() *
              (3 * d.lnz() + 1));
  auto pack3 = [&](const util::Array3D<double>& f) {
    for (int k = 0; k < d.lnz(); ++k)
      for (int j = 0; j < d.lny(); ++j)
        for (int i = 0; i < d.lnx(); ++i) buf.push_back(f(i, j, k));
  };
  pack3(xi.u());
  pack3(xi.v());
  pack3(xi.phi());
  for (int j = 0; j < d.lny(); ++j)
    for (int i = 0; i < d.lnx(); ++i) buf.push_back(xi.psa()(i, j));
  return buf;
}

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::byte b : data)
    crc = table[(crc ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::string checkpoint_path(const std::string& prefix, int rank) {
  return prefix + ".rank" + std::to_string(rank) + ".ckpt";
}

void write_checkpoint(const std::string& path,
                      const mesh::LatLonMesh& mesh,
                      const mesh::DomainDecomp& decomp,
                      const state::State& xi, std::int64_t step,
                      double time_seconds) {
  CheckpointHeader hdr;
  hdr.nx = mesh.nx();
  hdr.ny = mesh.ny();
  hdr.nz = mesh.nz();
  hdr.lnx = decomp.lnx();
  hdr.lny = decomp.lny();
  hdr.lnz = decomp.lnz();
  hdr.x0 = decomp.xr().begin;
  hdr.y0 = decomp.yr().begin;
  hdr.z0 = decomp.zr().begin;
  hdr.step = step;
  hdr.time_seconds = time_seconds;

  const auto buf = pack_state(decomp, xi);
  hdr.payload_crc = crc32(std::as_bytes(std::span<const double>(buf)));

  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("cannot open checkpoint: " + path);
  write_all(f.get(), &hdr, sizeof(hdr), path);
  write_all(f.get(), buf.data(), buf.size() * sizeof(double), path);
}

CheckpointHeader read_checkpoint(const std::string& path,
                                 const mesh::LatLonMesh& mesh,
                                 const mesh::DomainDecomp& decomp,
                                 state::State& xi) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cannot open checkpoint: " + path);
  CheckpointHeader hdr;
  // The v1 header is a strict prefix of v2: read it first, then the CRC
  // trailer only when the file declares version >= 2.
  read_all(f.get(), &hdr, kCheckpointHeaderV1Bytes, path);

  CheckpointHeader expect;
  if (hdr.magic != expect.magic)
    throw std::runtime_error("not a ca-agcm checkpoint: " + path);
  if (hdr.version < 1 || hdr.version > expect.version)
    throw std::runtime_error("unsupported checkpoint version: " + path);
  if (hdr.version >= 2)
    read_all(f.get(), &hdr.payload_crc,
             sizeof(hdr) - kCheckpointHeaderV1Bytes, path);
  if (hdr.nx != mesh.nx() || hdr.ny != mesh.ny() || hdr.nz != mesh.nz())
    throw std::runtime_error("checkpoint mesh mismatch: " + path);
  if (hdr.lnx != decomp.lnx() || hdr.lny != decomp.lny() ||
      hdr.lnz != decomp.lnz() || hdr.x0 != decomp.xr().begin ||
      hdr.y0 != decomp.yr().begin || hdr.z0 != decomp.zr().begin)
    throw std::runtime_error(
        "checkpoint block/decomposition mismatch: " + path);

  const std::size_t count = static_cast<std::size_t>(hdr.lnx) * hdr.lny *
                                (3 * static_cast<std::size_t>(hdr.lnz)) +
                            static_cast<std::size_t>(hdr.lnx) * hdr.lny;
  std::vector<double> buf(count);
  read_all(f.get(), buf.data(), buf.size() * sizeof(double), path);

  if (hdr.version >= 2) {
    const std::uint32_t crc =
        crc32(std::as_bytes(std::span<const double>(buf)));
    if (crc != hdr.payload_crc)
      throw std::runtime_error(
          "checkpoint payload CRC mismatch (bit rot?): " + path);
  }

  std::size_t idx = 0;
  auto unpack3 = [&](util::Array3D<double>& fld) {
    for (int k = 0; k < decomp.lnz(); ++k)
      for (int j = 0; j < decomp.lny(); ++j)
        for (int i = 0; i < decomp.lnx(); ++i) fld(i, j, k) = buf[idx++];
  };
  unpack3(xi.u());
  unpack3(xi.v());
  unpack3(xi.phi());
  for (int j = 0; j < decomp.lny(); ++j)
    for (int i = 0; i < decomp.lnx(); ++i) xi.psa()(i, j) = buf[idx++];
  return hdr;
}

}  // namespace ca::util
