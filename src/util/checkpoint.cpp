#include "util/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ca::util {
namespace {

std::atomic<std::uint64_t> g_files_written{0};
std::atomic<std::uint64_t> g_bytes_written{0};
std::atomic<std::uint64_t> g_files_read{0};
std::atomic<std::uint64_t> g_bytes_read{0};
std::atomic<std::uint64_t> g_fsyncs{0};

/// Test-only reshard crash injection (see set_checkpoint_test_hook).
std::function<void(const std::string&)> g_test_hook;

void fire_hook(const std::string& event) {
  if (g_test_hook) g_test_hook(event);
}

/// Closes on scope exit without error reporting — the READ path and
/// error-unwind cleanup only.  The write path closes explicitly and
/// checks the result: fclose flushes the stdio buffer, and a failed
/// final flush must not report a successful checkpoint.
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_all(std::FILE* f, const void* data, std::size_t bytes,
               const std::string& path) {
  if (std::fwrite(data, 1, bytes, f) != bytes)
    throw std::runtime_error("checkpoint write failed: " + path);
}

/// Durability half of the rename dance: rename() only orders the
/// directory entry, not the directory itself — fsync the parent so the
/// committed name survives a power loss too.  Best-effort: some
/// filesystems reject directory fsync, and by this point the data fsync
/// already succeeded.
void fsync_parent_dir(const std::string& path) {
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

/// Atomic + durable file publish: assemble at `<path>.tmp`, flush,
/// fsync, close (checked), rename over `path`, fsync the directory.  A
/// crash anywhere before the rename leaves the previous file intact; a
/// power loss after return cannot surface an empty or torn file.
void atomic_write_file(const std::string& path,
                       std::span<const std::byte> bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* raw = std::fopen(tmp.c_str(), "wb");
  if (raw == nullptr)
    throw std::runtime_error("cannot open checkpoint: " + tmp);
  try {
    if (!bytes.empty()) write_all(raw, bytes.data(), bytes.size(), tmp);
    if (std::fflush(raw) != 0)
      throw std::runtime_error("checkpoint flush failed: " + tmp);
    if (::fsync(::fileno(raw)) != 0)
      throw std::runtime_error("checkpoint fsync failed: " + tmp);
    g_fsyncs.fetch_add(1, std::memory_order_relaxed);
  } catch (...) {
    std::fclose(raw);
    std::remove(tmp.c_str());
    throw;
  }
  if (std::fclose(raw) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint close failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint rename failed: " + tmp + " -> " +
                             path + ": " + std::strerror(err));
  }
  fsync_parent_dir(path);
  g_files_written.fetch_add(1, std::memory_order_relaxed);
  g_bytes_written.fetch_add(bytes.size(), std::memory_order_relaxed);
}

/// Reads the whole file; throws on a missing file ("cannot open") only —
/// callers that probe optional chain elements use slurp_if_exists.
std::vector<std::byte> slurp_file(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cannot open checkpoint: " + path);
  std::vector<std::byte> bytes;
  std::array<std::byte, 1 << 16> chunk;
  for (;;) {
    const std::size_t got =
        std::fread(chunk.data(), 1, chunk.size(), f.get());
    bytes.insert(bytes.end(), chunk.begin(), chunk.begin() + got);
    if (got < chunk.size()) break;
  }
  g_files_read.fetch_add(1, std::memory_order_relaxed);
  g_bytes_read.fetch_add(bytes.size(), std::memory_order_relaxed);
  return bytes;
}

bool slurp_if_exists(const std::string& path, std::vector<std::byte>* out) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return false;
  *out = slurp_file(path);
  return true;
}

std::vector<double> pack_state(const mesh::DomainDecomp& d,
                               const state::State& xi) {
  std::vector<double> buf;
  buf.reserve(static_cast<std::size_t>(d.lnx()) * d.lny() *
              (3 * d.lnz() + 1));
  auto pack3 = [&](const util::Array3D<double>& f) {
    for (int k = 0; k < d.lnz(); ++k)
      for (int j = 0; j < d.lny(); ++j)
        for (int i = 0; i < d.lnx(); ++i) buf.push_back(f(i, j, k));
  };
  pack3(xi.u());
  pack3(xi.v());
  pack3(xi.phi());
  for (int j = 0; j < d.lny(); ++j)
    for (int i = 0; i < d.lnx(); ++i) buf.push_back(xi.psa()(i, j));
  return buf;
}

/// Slice-by-8 CRC-32 tables: table[0] is the classic byte-at-a-time
/// table; table[t][b] extends it so eight bytes fold per iteration.
/// Same polynomial (0xEDB88320), bit-for-bit the same digests as the
/// one-table loop — only faster, which matters because every checkpoint
/// write, chain read, and replica fetch runs a full pass over the image.
std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    tables[0][n] = c;
  }
  for (std::uint32_t n = 0; n < 256; ++n)
    for (int t = 1; t < 8; ++t)
      tables[t][n] =
          tables[0][tables[t - 1][n] & 0xFFu] ^ (tables[t - 1][n] >> 8);
  return tables;
}

/// Identity hash of a base file: the chain's deltas record it so a delta
/// from an older chain never applies to a freshly rewritten base.  The
/// header prefix (step, time, payload/carry CRCs) pins the base's exact
/// content without the base format having to store anything new.
std::uint64_t base_identity(std::span<const std::byte> image) {
  return crc32(image.first(std::min(sizeof(CheckpointHeader), image.size())));
}

/// Removes every delta sidecar of `base_path` (`<base>.d<seq>` for any
/// seq) by a bounded directory scan rather than sequential probing: a
/// hole in the sequence — a delta deleted by hand, or lost to a crash —
/// must not shield the orphans behind it from the sweep forever.
void remove_stale_deltas(const std::string& base_path) {
  const std::filesystem::path base(base_path);
  std::filesystem::path dir = base.parent_path();
  if (dir.empty()) dir = ".";
  const std::string want = base.filename().string() + ".d";
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec), end;
  std::vector<std::string> victims;
  for (; !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.size() <= want.size() ||
        name.compare(0, want.size(), want) != 0)
      continue;
    const std::string tail = name.substr(want.size());
    if (!std::all_of(tail.begin(), tail.end(), [](unsigned char c) {
          return std::isdigit(c) != 0;
        }))
      continue;
    victims.push_back(it->path().string());
  }
  for (const std::string& v : victims) std::remove(v.c_str());
}

}  // namespace

CheckpointIoCounters checkpoint_io() {
  CheckpointIoCounters c;
  c.files_written = g_files_written.load(std::memory_order_relaxed);
  c.bytes_written = g_bytes_written.load(std::memory_order_relaxed);
  c.files_read = g_files_read.load(std::memory_order_relaxed);
  c.bytes_read = g_bytes_read.load(std::memory_order_relaxed);
  c.fsyncs = g_fsyncs.load(std::memory_order_relaxed);
  return c;
}

void reset_checkpoint_io() {
  g_files_written.store(0, std::memory_order_relaxed);
  g_bytes_written.store(0, std::memory_order_relaxed);
  g_files_read.store(0, std::memory_order_relaxed);
  g_bytes_read.store(0, std::memory_order_relaxed);
  g_fsyncs.store(0, std::memory_order_relaxed);
}

void set_checkpoint_test_hook(
    std::function<void(const std::string&)> hook) {
  g_test_hook = std::move(hook);
}

std::uint32_t crc32(std::span<const std::byte> data) {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables =
      make_crc_tables();
  const auto& t = tables;
  std::uint32_t crc = 0xFFFFFFFFu;
  const std::byte* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    // Little-endian word composition by construction (endian-agnostic).
    std::uint32_t lo = static_cast<std::uint32_t>(p[0]) |
                       static_cast<std::uint32_t>(p[1]) << 8 |
                       static_cast<std::uint32_t>(p[2]) << 16 |
                       static_cast<std::uint32_t>(p[3]) << 24;
    const std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                             static_cast<std::uint32_t>(p[5]) << 8 |
                             static_cast<std::uint32_t>(p[6]) << 16 |
                             static_cast<std::uint32_t>(p[7]) << 24;
    lo ^= crc;
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
          t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^
          t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n > 0; ++p, --n)
    crc = t[0][(crc ^ static_cast<std::uint32_t>(*p)) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

void CarryWriter::put_u64(std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  buf_.insert(buf_.end(), p, p + sizeof(v));
}

void CarryWriter::put_i64(std::int64_t v) {
  put_u64(static_cast<std::uint64_t>(v));
}

void CarryWriter::put_doubles(std::span<const double> v) {
  put_u64(v.size());
  const auto bytes = std::as_bytes(v);
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void CarryReader::take(void* dst, std::size_t bytes) {
  if (bytes > data_.size() - pos_)
    throw std::runtime_error(
        "checkpoint carry block truncated: wanted " + std::to_string(bytes) +
        " bytes, " + std::to_string(data_.size() - pos_) + " left");
  std::memcpy(dst, data_.data() + pos_, bytes);
  pos_ += bytes;
}

std::uint64_t CarryReader::get_u64() {
  std::uint64_t v = 0;
  take(&v, sizeof(v));
  return v;
}

std::int64_t CarryReader::get_i64() {
  return static_cast<std::int64_t>(get_u64());
}

void CarryReader::get_doubles(std::span<double> out) {
  const std::uint64_t count = get_u64();
  if (count != out.size())
    throw std::runtime_error(
        "checkpoint carry field size mismatch: stored " +
        std::to_string(count) + " doubles, core expects " +
        std::to_string(out.size()) +
        " (carry written by a differently-configured core?)");
  take(out.data(), out.size() * sizeof(double));
}

void CarryReader::expect_end() const {
  if (pos_ != data_.size())
    throw std::runtime_error(
        "checkpoint carry block has " + std::to_string(data_.size() - pos_) +
        " unread trailing bytes (format mismatch)");
}

std::string checkpoint_path(const std::string& prefix, int rank) {
  return prefix + ".rank" + std::to_string(rank) + ".ckpt";
}

std::string delta_path(const std::string& path, int seq) {
  return path + ".d" + std::to_string(seq);
}

std::vector<std::byte> build_checkpoint_image(
    const mesh::LatLonMesh& mesh, const mesh::DomainDecomp& decomp,
    const state::State& xi, std::int64_t step, double time_seconds,
    std::span<const std::byte> carry, std::uint32_t health) {
  CheckpointHeader hdr;
  hdr.health = health;
  hdr.nx = mesh.nx();
  hdr.ny = mesh.ny();
  hdr.nz = mesh.nz();
  hdr.lnx = decomp.lnx();
  hdr.lny = decomp.lny();
  hdr.lnz = decomp.lnz();
  hdr.x0 = decomp.xr().begin;
  hdr.y0 = decomp.yr().begin;
  hdr.z0 = decomp.zr().begin;
  hdr.step = step;
  hdr.time_seconds = time_seconds;

  const auto buf = pack_state(decomp, xi);
  hdr.payload_crc = crc32(std::as_bytes(std::span<const double>(buf)));
  hdr.carry_bytes = carry.size();
  hdr.carry_crc = crc32(carry);

  std::vector<std::byte> image;
  image.reserve(sizeof(hdr) + buf.size() * sizeof(double) + carry.size());
  const auto* hp = reinterpret_cast<const std::byte*>(&hdr);
  image.insert(image.end(), hp, hp + sizeof(hdr));
  const auto payload = std::as_bytes(std::span<const double>(buf));
  image.insert(image.end(), payload.begin(), payload.end());
  image.insert(image.end(), carry.begin(), carry.end());
  return image;
}

CheckpointHeader parse_checkpoint_image(std::span<const std::byte> image,
                                        const mesh::LatLonMesh& mesh,
                                        const mesh::DomainDecomp& decomp,
                                        state::State& xi,
                                        std::vector<std::byte>* carry,
                                        const std::string& what) {
  if (carry != nullptr) carry->clear();
  std::size_t pos = 0;
  auto take = [&](void* dst, std::size_t bytes) {
    if (bytes > image.size() - pos)
      throw std::runtime_error("checkpoint read failed (truncated?): " +
                               what);
    std::memcpy(dst, image.data() + pos, bytes);
    pos += bytes;
  };

  CheckpointHeader hdr;
  // The v1 header is a strict prefix of v2, which is a strict prefix of
  // v3: read the v1 prefix first, then the version-gated trailers field
  // by field (exact sizes; the offsets are pinned by static_asserts in
  // the header).
  take(&hdr, kCheckpointHeaderV1Bytes);

  CheckpointHeader expect;
  if (hdr.magic != expect.magic)
    throw std::runtime_error("not a ca-agcm checkpoint: " + what);
  if (hdr.version < 1 || hdr.version > expect.version)
    throw std::runtime_error("unsupported checkpoint version: " + what);
  if (hdr.version >= 2) {
    take(&hdr.payload_crc, sizeof(hdr.payload_crc));
    take(&hdr.reserved, sizeof(hdr.reserved));
  }
  if (hdr.version >= 3) {
    take(&hdr.carry_bytes, sizeof(hdr.carry_bytes));
    take(&hdr.carry_crc, sizeof(hdr.carry_crc));
    take(&hdr.health, sizeof(hdr.health));
  }
  if (hdr.nx != mesh.nx() || hdr.ny != mesh.ny() || hdr.nz != mesh.nz())
    throw std::runtime_error("checkpoint mesh mismatch: " + what);
  if (hdr.lnx != decomp.lnx() || hdr.lny != decomp.lny() ||
      hdr.lnz != decomp.lnz() || hdr.x0 != decomp.xr().begin ||
      hdr.y0 != decomp.yr().begin || hdr.z0 != decomp.zr().begin)
    throw std::runtime_error(
        "checkpoint block/decomposition mismatch: " + what);

  const std::size_t count = static_cast<std::size_t>(hdr.lnx) * hdr.lny *
                                (3 * static_cast<std::size_t>(hdr.lnz)) +
                            static_cast<std::size_t>(hdr.lnx) * hdr.lny;
  std::vector<double> buf(count);
  take(buf.data(), buf.size() * sizeof(double));

  if (hdr.version >= 2) {
    const std::uint32_t crc =
        crc32(std::as_bytes(std::span<const double>(buf)));
    if (crc != hdr.payload_crc)
      throw std::runtime_error(
          "checkpoint payload CRC mismatch (bit rot?): " + what);
  }

  if (carry != nullptr && hdr.carry_bytes > 0) {
    carry->resize(hdr.carry_bytes);
    take(carry->data(), carry->size());
    if (crc32(*carry) != hdr.carry_crc)
      throw std::runtime_error(
          "checkpoint carry CRC mismatch (bit rot?): " + what);
  }

  std::size_t idx = 0;
  auto unpack3 = [&](util::Array3D<double>& fld) {
    for (int k = 0; k < decomp.lnz(); ++k)
      for (int j = 0; j < decomp.lny(); ++j)
        for (int i = 0; i < decomp.lnx(); ++i) fld(i, j, k) = buf[idx++];
  };
  unpack3(xi.u());
  unpack3(xi.v());
  unpack3(xi.phi());
  for (int j = 0; j < decomp.lny(); ++j)
    for (int i = 0; i < decomp.lnx(); ++i) xi.psa()(i, j) = buf[idx++];
  return hdr;
}

void write_checkpoint(const std::string& path,
                      const mesh::LatLonMesh& mesh,
                      const mesh::DomainDecomp& decomp,
                      const state::State& xi, std::int64_t step,
                      double time_seconds,
                      std::span<const std::byte> carry,
                      std::uint32_t health) {
  atomic_write_file(
      path, build_checkpoint_image(mesh, decomp, xi, step, time_seconds,
                                   carry, health));
}

CheckpointHeader read_checkpoint(const std::string& path,
                                 const mesh::LatLonMesh& mesh,
                                 const mesh::DomainDecomp& decomp,
                                 state::State& xi,
                                 std::vector<std::byte>* carry) {
  const std::vector<std::byte> image = slurp_file(path);
  return parse_checkpoint_image(image, mesh, decomp, xi, carry, path);
}

ChainReadResult read_checkpoint_chain(const std::string& path,
                                      const mesh::LatLonMesh& mesh,
                                      const mesh::DomainDecomp& decomp,
                                      state::State& xi,
                                      std::vector<std::byte>* carry,
                                      const ChainReadOptions& opts) {
  std::vector<std::byte> image = slurp_file(path);
  if (image.size() < kCheckpointHeaderV1Bytes)
    throw std::runtime_error("checkpoint read failed (truncated?): " + path);
  CheckpointHeader peek;
  // void* cast: the header has default member initializers (so it is not
  // "trivial" for -Wclass-memaccess) but is trivially copyable, and only
  // the v1 prefix is overwritten on purpose — the rest keeps defaults.
  std::memcpy(static_cast<void*>(&peek), image.data(),
              kCheckpointHeaderV1Bytes);
  CheckpointHeader expect;
  if (peek.magic != expect.magic)
    throw std::runtime_error("not a ca-agcm checkpoint: " + path);
  if (opts.max_step >= 0 && peek.step > opts.max_step)
    throw std::runtime_error(
        "checkpoint chain under " + path + " starts at step " +
        std::to_string(peek.step) + ", past the requested step " +
        std::to_string(opts.max_step));

  const std::uint64_t base_id = base_identity(image);
  ChainReadResult res;
  std::int64_t tip_step = peek.step;
  const DeltaHeader dexpect;
  for (int seq = 1; !(opts.max_step >= 0 && tip_step == opts.max_step);
       ++seq) {
    std::vector<std::byte> dbytes;
    if (!slurp_if_exists(delta_path(path, seq), &dbytes)) break;
    // Any integrity failure from here on ends the chain at the last
    // intact element — a torn or bit-rotted delta must degrade recovery,
    // never poison it.
    if (dbytes.size() < sizeof(DeltaHeader)) {
      res.truncated_by_corruption = true;
      break;
    }
    DeltaHeader dh;
    std::memcpy(&dh, dbytes.data(), sizeof(dh));
    if (dh.magic != dexpect.magic || dh.version != 4) {
      res.truncated_by_corruption = true;
      break;
    }
    // A stale delta from a chain whose base was since rewritten: not
    // corruption, just no longer reachable — the fresh base is the tip.
    if (dh.base_id != base_id ||
        dh.seq != static_cast<std::uint32_t>(seq))
      break;
    if (opts.max_step >= 0 && dh.step > opts.max_step) break;
    const std::span<const std::byte> payload =
        std::span<const std::byte>(dbytes).subspan(sizeof(DeltaHeader));
    if (dh.block_bytes == 0 || dh.image_bytes != image.size() ||
        crc32(payload) != dh.delta_crc) {
      res.truncated_by_corruption = true;
      break;
    }
    const std::size_t bb = dh.block_bytes;
    const std::size_t nblocks = (image.size() + bb - 1) / bb;
    const std::size_t index_bytes =
        static_cast<std::size_t>(dh.ndirty) * sizeof(std::uint32_t);
    if (payload.size() < index_bytes) {
      res.truncated_by_corruption = true;
      break;
    }
    std::vector<std::uint32_t> dirty(dh.ndirty);
    if (!dirty.empty())
      std::memcpy(dirty.data(), payload.data(), index_bytes);
    std::size_t data_bytes = 0;
    bool bad = false;
    for (std::uint32_t b : dirty) {
      if (b >= nblocks) {
        bad = true;
        break;
      }
      data_bytes += std::min(bb, image.size() - b * bb);
    }
    if (bad || payload.size() != index_bytes + data_bytes) {
      res.truncated_by_corruption = true;
      break;
    }
    // Patch a scratch copy so a failed end-to-end CRC leaves the intact
    // prefix's image untouched.
    std::vector<std::byte> next = image;
    std::size_t cursor = index_bytes;
    for (std::uint32_t b : dirty) {
      const std::size_t len = std::min(bb, next.size() - b * bb);
      std::memcpy(next.data() + b * bb, payload.data() + cursor, len);
      cursor += len;
    }
    if (crc32(next) != dh.image_crc) {
      res.truncated_by_corruption = true;
      break;
    }
    image = std::move(next);
    tip_step = dh.step;
    ++res.deltas_applied;
  }
  if (opts.max_step >= 0 && tip_step != opts.max_step)
    throw std::runtime_error(
        "checkpoint chain under " + path + " has no element at step " +
        std::to_string(opts.max_step) + " (intact tip is step " +
        std::to_string(tip_step) + ")");
  res.header = parse_checkpoint_image(image, mesh, decomp, xi, carry, path);
  return res;
}

CheckpointSession::CheckpointSession(std::string path, DeltaOptions opts)
    : path_(std::move(path)), opts_(opts) {}

void CheckpointSession::write(const mesh::LatLonMesh& mesh,
                              const mesh::DomainDecomp& decomp,
                              const state::State& xi, std::int64_t step,
                              double time_seconds,
                              std::span<const std::byte> carry,
                              std::uint32_t health) {
  std::vector<std::byte> img = build_checkpoint_image(
      mesh, decomp, xi, step, time_seconds, carry, health);
  ++stats_.cadences;
  stats_.full_equivalent_bytes += img.size();
  bool full = image_.empty() || opts_.chain_cap <= 0 ||
              chain_len_ >= opts_.chain_cap ||
              img.size() != image_.size();
  const std::size_t bb = std::max<std::size_t>(1, opts_.block_bytes);
  std::vector<std::uint32_t> dirty;
  if (!full) {
    const std::size_t nblocks = (img.size() + bb - 1) / bb;
    for (std::size_t b = 0; b < nblocks; ++b) {
      const std::size_t len = std::min(bb, img.size() - b * bb);
      if (std::memcmp(img.data() + b * bb, image_.data() + b * bb, len) !=
          0)
        dirty.push_back(static_cast<std::uint32_t>(b));
    }
    // A delta touching (nearly) every block costs more than the full
    // file it encodes; write a fresh base instead, which also re-anchors
    // the chain.  Delta mode is therefore never worse than full mode —
    // an all-active workload just degenerates to it.
    std::size_t delta_bytes = sizeof(DeltaHeader) +
                              dirty.size() * sizeof(std::uint32_t);
    for (std::uint32_t b : dirty)
      delta_bytes += std::min(bb, img.size() - b * bb);
    if (delta_bytes >= img.size()) full = true;
  }
  if (full) {
    atomic_write_file(path_, img);
    base_id_ = base_identity(img);
    // Retire the old chain.  Correctness does not depend on this — the
    // deltas already fail the new base_id — but leaving them would grow
    // the directory forever.
    remove_stale_deltas(path_);
    chain_len_ = 0;
    ++stats_.full_writes;
    stats_.bytes_written += img.size();
  } else {
    DeltaHeader dh;
    dh.block_bytes = static_cast<std::uint32_t>(bb);
    dh.nx = mesh.nx();
    dh.ny = mesh.ny();
    dh.nz = mesh.nz();
    dh.lnx = decomp.lnx();
    dh.lny = decomp.lny();
    dh.lnz = decomp.lnz();
    dh.x0 = decomp.xr().begin;
    dh.y0 = decomp.yr().begin;
    dh.z0 = decomp.zr().begin;
    dh.seq = static_cast<std::uint32_t>(chain_len_ + 1);
    dh.step = step;
    dh.time_seconds = time_seconds;
    dh.base_id = base_id_;
    dh.image_bytes = img.size();
    dh.ndirty = static_cast<std::uint32_t>(dirty.size());
    dh.image_crc = crc32(img);

    std::vector<std::byte> payload;
    payload.reserve(dirty.size() * (sizeof(std::uint32_t) + bb));
    const auto* ip = reinterpret_cast<const std::byte*>(dirty.data());
    payload.insert(payload.end(), ip,
                   ip + dirty.size() * sizeof(std::uint32_t));
    for (std::uint32_t b : dirty) {
      const std::size_t len = std::min(bb, img.size() - b * bb);
      payload.insert(payload.end(), img.data() + b * bb,
                     img.data() + b * bb + len);
    }
    dh.delta_crc = crc32(payload);

    std::vector<std::byte> file;
    file.reserve(sizeof(dh) + payload.size());
    const auto* hp = reinterpret_cast<const std::byte*>(&dh);
    file.insert(file.end(), hp, hp + sizeof(dh));
    file.insert(file.end(), payload.begin(), payload.end());
    atomic_write_file(delta_path(path_, chain_len_ + 1), file);
    ++chain_len_;
    ++stats_.delta_writes;
    stats_.bytes_written += file.size();
  }
  image_ = std::move(img);
}

namespace {

std::string reshard_marker_path(const std::string& prefix) {
  return prefix + ".reshard";
}

/// x-fastest rank layout shared by every reshard path.
mesh::DomainDecomp reshard_rank_decomp(const mesh::LatLonMesh& mesh,
                                       std::array<int, 3> dims, int r) {
  const std::array<int, 3> coords{r % dims[0], (r / dims[0]) % dims[1],
                                  r / (dims[0] * dims[1])};
  return mesh::DomainDecomp(mesh, dims, coords);
}

std::string dims_str(std::array<int, 3> d) {
  return "{" + std::to_string(d[0]) + "," + std::to_string(d[1]) + "," +
         std::to_string(d[2]) + "}";
}

/// One field of a reshardable core-carry block (see the format doc at
/// kReshardableCarryMagic).  Extent order is {x, y, z}; 2-D fields are
/// pinned to one z layer with no z halo.
struct CarryFieldGeom {
  bool is3d = false;
  std::array<std::uint64_t, 3> gn{}, ln{}, halo{}, origin{};
  std::vector<double> data;
};

struct ParsedCarry {
  std::uint64_t min_lny = 1, min_lnz = 1;
  std::vector<std::int64_t> scalars;
  std::vector<CarryFieldGeom> fields;
};

ParsedCarry parse_reshardable_carry(std::span<const std::byte> blob,
                                    const std::string& what) {
  CarryReader r(blob);
  if (r.get_u64() != kReshardableCarryMagic)
    throw std::runtime_error(
        "reshard_checkpoints: " + what +
        " carries a decomposition-opaque core-carry block (not the "
        "reshardable format), so the set cannot be resharded");
  ParsedCarry pc;
  pc.min_lny = r.get_u64();
  pc.min_lnz = r.get_u64();
  const std::uint64_t nscalars = r.get_u64();
  if (pc.min_lny == 0 || pc.min_lnz == 0 || nscalars > 1024)
    throw std::runtime_error("reshard_checkpoints: malformed carry: " + what);
  pc.scalars.reserve(nscalars);
  for (std::uint64_t i = 0; i < nscalars; ++i)
    pc.scalars.push_back(r.get_i64());
  const std::uint64_t nfields = r.get_u64();
  if (nfields > 4096)
    throw std::runtime_error("reshard_checkpoints: malformed carry: " + what);
  pc.fields.resize(nfields);
  for (CarryFieldGeom& f : pc.fields) {
    const std::uint64_t is3d = r.get_u64();
    if (is3d > 1)
      throw std::runtime_error(
          "reshard_checkpoints: malformed carry field tag: " + what);
    f.is3d = is3d == 1;
    for (auto* trio : {&f.gn, &f.ln, &f.halo, &f.origin})
      for (std::uint64_t& v : *trio) v = r.get_u64();
    std::uint64_t count = 1;
    for (int d = 0; d < 3; ++d) {
      if (f.ln[d] == 0 || f.gn[d] == 0 || f.gn[d] > (1u << 24) ||
          f.halo[d] > (1u << 24) || f.origin[d] + f.ln[d] > f.gn[d] ||
          (!f.is3d && d == 2 &&
           (f.gn[2] != 1 || f.ln[2] != 1 || f.halo[2] != 0)))
        throw std::runtime_error(
            "reshard_checkpoints: malformed carry field geometry: " + what);
      count *= f.ln[d] + 2 * f.halo[d];
    }
    f.data.resize(count);
    r.get_doubles(f.data);
  }
  r.expect_end();
  return pc;
}

/// Redistributes a full set of reshardable carry blobs (one per old
/// rank) onto the new decomposition.  Each field is assembled on a
/// halo-padded global grid — owned interiors everywhere, plus the
/// physical-boundary halo extensions from the edge blocks — and cut
/// into the new blocks with unchanged halo depths, so internal-seam
/// halos come out holding the owning block's values, exactly what a
/// halo exchange would deliver.  Rows that map 1:1 are preserved
/// bitwise.  Throws on opaque/inconsistent carries or a new shape below
/// the carry's declared minimum block extents.
std::vector<std::vector<std::byte>> reshard_carries(
    const std::string& prefix, const mesh::LatLonMesh& mesh,
    std::array<int, 3> old_dims, std::array<int, 3> new_dims,
    const std::vector<std::vector<std::byte>>& blobs) {
  const int old_count = old_dims[0] * old_dims[1] * old_dims[2];
  const int new_count = new_dims[0] * new_dims[1] * new_dims[2];
  if (old_dims[0] != 1 || new_dims[0] != 1)
    throw std::runtime_error(
        "reshard_checkpoints: core carries under " + prefix +
        " can only be resharded across Y-Z process grids (px == 1), got " +
        dims_str(old_dims) + " -> " + dims_str(new_dims));

  std::vector<ParsedCarry> parsed;
  parsed.reserve(static_cast<std::size_t>(old_count));
  for (int r = 0; r < old_count; ++r)
    parsed.push_back(parse_reshardable_carry(
        blobs[static_cast<std::size_t>(r)],
        "rank " + std::to_string(r) + " of " + prefix));
  const ParsedCarry& ref = parsed[0];
  for (int r = 1; r < old_count; ++r)
    if (parsed[r].scalars != ref.scalars ||
        parsed[r].fields.size() != ref.fields.size() ||
        parsed[r].min_lny != ref.min_lny ||
        parsed[r].min_lnz != ref.min_lnz)
      throw std::runtime_error(
          "reshard_checkpoints: inconsistent core-carry set under " +
          prefix);

  // Representability, loudly and before any work: a block smaller than
  // the carry's declared minimum cannot hold the carried halo rows (for
  // the CA core this is the ny/py >= 3M + 1 deep-halo bound).
  for (int r = 0; r < new_count; ++r) {
    const mesh::DomainDecomp d = reshard_rank_decomp(mesh, new_dims, r);
    if ((new_dims[1] > 1 &&
         static_cast<std::uint64_t>(d.lny()) < ref.min_lny) ||
        (new_dims[2] > 1 &&
         static_cast<std::uint64_t>(d.lnz()) < ref.min_lnz))
      throw std::runtime_error(
          "reshard_checkpoints: core carry under " + prefix +
          " cannot be resharded to " + dims_str(new_dims) + ": block of "
          "rank " + std::to_string(r) + " (" + std::to_string(d.lny()) +
          " x " + std::to_string(d.lnz()) +
          " in y x z) is below the carry's minimum block extents (" +
          std::to_string(ref.min_lny) + " x " +
          std::to_string(ref.min_lnz) + ")");
  }

  std::vector<std::vector<CarryFieldGeom>> cut(
      static_cast<std::size_t>(new_count));
  for (auto& v : cut) v.reserve(ref.fields.size());
  for (std::size_t fi = 0; fi < ref.fields.size(); ++fi) {
    const CarryFieldGeom& f0 = ref.fields[fi];
    const std::int64_t hx = static_cast<std::int64_t>(f0.halo[0]);
    const std::int64_t hy = static_cast<std::int64_t>(f0.halo[1]);
    const std::int64_t hz = static_cast<std::int64_t>(f0.halo[2]);
    const std::int64_t gnx = static_cast<std::int64_t>(f0.gn[0]);
    const std::int64_t gny = static_cast<std::int64_t>(f0.gn[1]);
    const std::int64_t gnz = static_cast<std::int64_t>(f0.gn[2]);
    const std::int64_t gex = gnx + 2 * hx, gey = gny + 2 * hy;
    std::vector<double> global(
        static_cast<std::size_t>(gex) * gey * (gnz + 2 * hz), 0.0);
    auto gat = [&](std::int64_t gi, std::int64_t gj,
                   std::int64_t gk) -> double& {
      return global[static_cast<std::size_t>(
          ((gk + hz) * gey + (gj + hy)) * gex + (gi + hx))];
    };

    for (int r = 0; r < old_count; ++r) {
      const CarryFieldGeom& fr = parsed[r].fields[fi];
      if (fr.is3d != f0.is3d || fr.gn != f0.gn || fr.halo != f0.halo)
        throw std::runtime_error(
            "reshard_checkpoints: inconsistent carry field " +
            std::to_string(fi) + " under " + prefix);
      const std::array<int, 3> coords{r % old_dims[0],
                                      (r / old_dims[0]) % old_dims[1],
                                      r / (old_dims[0] * old_dims[1])};
      const mesh::Range yb =
          mesh::block_range(static_cast<int>(gny), old_dims[1], coords[1]);
      const mesh::Range zb =
          f0.is3d ? mesh::block_range(static_cast<int>(gnz), old_dims[2],
                                      coords[2])
                  : mesh::Range{0, 1};
      if (fr.ln[0] != f0.gn[0] || fr.origin[0] != 0 ||
          fr.ln[1] != static_cast<std::uint64_t>(yb.count) ||
          fr.origin[1] != static_cast<std::uint64_t>(yb.begin) ||
          fr.ln[2] != static_cast<std::uint64_t>(zb.count) ||
          fr.origin[2] != static_cast<std::uint64_t>(zb.begin))
        throw std::runtime_error(
            "reshard_checkpoints: carry field " + std::to_string(fi) +
            " of rank " + std::to_string(r) +
            " does not match its checkpoint block under " + prefix);
      const std::int64_t lny = yb.count, lnz = zb.count;
      const std::int64_t y0 = yb.begin, z0 = zb.begin;
      const std::int64_t lex = gnx + 2 * hx, ley = lny + 2 * hy;
      const std::int64_t j_lo = y0 == 0 ? -hy : 0;
      const std::int64_t j_hi = y0 + lny == gny ? lny + hy : lny;
      const std::int64_t k_lo = z0 == 0 ? -hz : 0;
      const std::int64_t k_hi = z0 + lnz == gnz ? lnz + hz : lnz;
      for (std::int64_t k = k_lo; k < k_hi; ++k)
        for (std::int64_t j = j_lo; j < j_hi; ++j)
          for (std::int64_t i = -hx; i < gnx + hx; ++i)
            gat(i, y0 + j, z0 + k) = fr.data[static_cast<std::size_t>(
                ((k + hz) * ley + (j + hy)) * lex + (i + hx))];
    }

    for (int r = 0; r < new_count; ++r) {
      const std::array<int, 3> coords{r % new_dims[0],
                                      (r / new_dims[0]) % new_dims[1],
                                      r / (new_dims[0] * new_dims[1])};
      const mesh::Range yb =
          mesh::block_range(static_cast<int>(gny), new_dims[1], coords[1]);
      const mesh::Range zb =
          f0.is3d ? mesh::block_range(static_cast<int>(gnz), new_dims[2],
                                      coords[2])
                  : mesh::Range{0, 1};
      CarryFieldGeom nf;
      nf.is3d = f0.is3d;
      nf.gn = f0.gn;
      nf.halo = f0.halo;
      nf.ln = {f0.gn[0], static_cast<std::uint64_t>(yb.count),
               static_cast<std::uint64_t>(zb.count)};
      nf.origin = {0, static_cast<std::uint64_t>(yb.begin),
                   static_cast<std::uint64_t>(zb.begin)};
      const std::int64_t lny = yb.count, lnz = zb.count;
      const std::int64_t lex = gnx + 2 * hx, ley = lny + 2 * hy;
      nf.data.resize(static_cast<std::size_t>(lex) * ley * (lnz + 2 * hz));
      for (std::int64_t k = -hz; k < lnz + hz; ++k)
        for (std::int64_t j = -hy; j < lny + hy; ++j)
          for (std::int64_t i = -hx; i < gnx + hx; ++i)
            nf.data[static_cast<std::size_t>(((k + hz) * ley + (j + hy)) *
                                                 lex +
                                             (i + hx))] =
                gat(i, yb.begin + j, zb.begin + k);
      cut[static_cast<std::size_t>(r)].push_back(std::move(nf));
    }
  }

  std::vector<std::vector<std::byte>> out(
      static_cast<std::size_t>(new_count));
  for (int r = 0; r < new_count; ++r) {
    CarryWriter w;
    w.put_u64(kReshardableCarryMagic);
    w.put_u64(ref.min_lny);
    w.put_u64(ref.min_lnz);
    w.put_u64(ref.scalars.size());
    for (std::int64_t s : ref.scalars) w.put_i64(s);
    w.put_u64(ref.fields.size());
    for (const CarryFieldGeom& f : cut[static_cast<std::size_t>(r)]) {
      w.put_u64(f.is3d ? 1 : 0);
      for (const auto* trio : {&f.gn, &f.ln, &f.halo, &f.origin})
        for (std::uint64_t v : *trio) w.put_u64(v);
      w.put_doubles(f.data);
    }
    out[static_cast<std::size_t>(r)] = w.take();
  }
  return out;
}

/// Post-commit half of the reshard protocol, shared by the fresh path
/// and crash recovery: rename every still-staged file over its final
/// path (a rank already published keeps its final file), drop stale
/// old-rank files and every delta file, and retire the marker.
/// Idempotent — safe to re-run from any crash point after the marker.
void publish_reshard(const std::string& prefix, int old_count,
                     int new_count) {
  for (int r = 0; r < new_count; ++r) {
    fire_hook("published:" + std::to_string(r));
    const std::string final_path = checkpoint_path(prefix, r);
    const std::string staged = final_path + ".new";
    std::error_code ec;
    if (std::filesystem::exists(staged, ec)) {
      if (std::rename(staged.c_str(), final_path.c_str()) != 0)
        throw std::runtime_error("reshard publish rename failed: " +
                                 staged + " -> " + final_path + ": " +
                                 std::strerror(errno));
    } else if (!std::filesystem::exists(final_path, ec)) {
      throw std::runtime_error(
          "reshard recovery: rank " + std::to_string(r) +
          " has neither a staged nor a published file under " + prefix);
    }
  }
  const int max_count = std::max(old_count, new_count);
  for (int r = new_count; r < max_count; ++r)
    std::remove(checkpoint_path(prefix, r).c_str());
  // The old decomposition's delta chains are meaningless against the
  // resharded bases (their base_id no longer matches anyway).
  for (int r = 0; r < max_count; ++r)
    remove_stale_deltas(checkpoint_path(prefix, r));
  std::remove(reshard_marker_path(prefix).c_str());
  fsync_parent_dir(reshard_marker_path(prefix));
}

}  // namespace

bool recover_resharded_checkpoints(const std::string& prefix) {
  const std::string marker = reshard_marker_path(prefix);
  std::error_code ec;
  if (std::filesystem::exists(marker, ec)) {
    const std::vector<std::byte> bytes = slurp_file(marker);
    const std::string text(reinterpret_cast<const char*>(bytes.data()),
                           bytes.size());
    int old_count = -1, new_count = -1;
    if (std::sscanf(text.c_str(), "old=%d new=%d", &old_count,
                    &new_count) != 2 ||
        old_count <= 0 || new_count <= 0)
      throw std::runtime_error("malformed reshard marker: " + marker);
    publish_reshard(prefix, old_count, new_count);
    return true;
  }
  // No marker: any staged files are from a reshard that died before its
  // commit point.  The old set is still the truth — sweep the stage.
  for (int r = 0;; ++r) {
    const std::string staged = checkpoint_path(prefix, r) + ".new";
    const bool a = std::remove(staged.c_str()) == 0;
    const bool b = std::remove((staged + ".tmp").c_str()) == 0;
    if (!a && !b) break;
  }
  return false;
}

void reshard_checkpoints(const std::string& prefix,
                         const mesh::LatLonMesh& mesh,
                         std::array<int, 3> old_dims,
                         std::array<int, 3> new_dims) {
  const int old_count = old_dims[0] * old_dims[1] * old_dims[2];
  const int new_count = new_dims[0] * new_dims[1] * new_dims[2];
  if (old_count <= 0 || new_count <= 0)
    throw std::runtime_error("reshard_checkpoints: empty process grid");

  // A previous invocation that crashed after its commit marker already
  // decided the reshard; roll it forward and the set IS the new shape.
  // (A pre-commit crash leaves no marker: the stage is swept and the
  // full reshard runs below against the intact old set.)
  if (recover_resharded_checkpoints(prefix)) return;

  // Copies the owned interior of `local` (block `d`) into/out of the
  // whole-mesh assembly state at the block's global origin.
  state::State global(mesh.nx(), mesh.ny(), mesh.nz(), state::StateHalo{});
  auto transfer = [&](const mesh::DomainDecomp& d, state::State& local,
                      bool to_global) {
    auto move3 = [&](util::Array3D<double>& gf, util::Array3D<double>& lf) {
      for (int k = 0; k < d.lnz(); ++k)
        for (int j = 0; j < d.lny(); ++j)
          for (int i = 0; i < d.lnx(); ++i) {
            double& g = gf(d.gi(i), d.gj(j), d.gk(k));
            double& l = lf(i, j, k);
            (to_global ? g : l) = (to_global ? l : g);
          }
    };
    move3(global.u(), local.u());
    move3(global.v(), local.v());
    move3(global.phi(), local.phi());
    for (int j = 0; j < d.lny(); ++j)
      for (int i = 0; i < d.lnx(); ++i) {
        double& g = global.psa()(d.gi(i), d.gj(j));
        double& l = local.psa()(i, j);
        (to_global ? g : l) = (to_global ? l : g);
      }
  };
  auto rank_decomp = [&](std::array<int, 3> dims, int r) {
    return reshard_rank_decomp(mesh, dims, r);
  };

  // Load every old rank's intact chain tip; a dead-rank set can have
  // ranks one cadence apart, so the common resumable step is the MINIMUM
  // tip and ahead ranks rewind their chains to it.  A rank that cannot
  // reconstruct the minimum (full-file sets have single-element chains)
  // makes the set genuinely inconsistent.
  std::vector<state::State> locals;
  std::vector<CheckpointHeader> headers;
  std::vector<std::vector<std::byte>> carries(
      static_cast<std::size_t>(old_count));
  locals.reserve(static_cast<std::size_t>(old_count));
  std::int64_t min_tip = 0;
  for (int r = 0; r < old_count; ++r) {
    const mesh::DomainDecomp d = rank_decomp(old_dims, r);
    locals.emplace_back(d.lnx(), d.lny(), d.lnz(), state::StateHalo{});
    const ChainReadResult cr =
        read_checkpoint_chain(checkpoint_path(prefix, r), mesh, d,
                              locals.back(), &carries[r]);
    headers.push_back(cr.header);
    min_tip = r == 0 ? cr.header.step : std::min(min_tip, cr.header.step);
  }
  for (int r = 0; r < old_count; ++r) {
    if (headers[r].step != min_tip) {
      const mesh::DomainDecomp d = rank_decomp(old_dims, r);
      try {
        headers[r] = read_checkpoint_chain(checkpoint_path(prefix, r),
                                           mesh, d, locals[r], &carries[r],
                                           {.max_step = min_tip})
                         .header;
      } catch (const std::exception& e) {
        throw std::runtime_error(
            "reshard_checkpoints: inconsistent checkpoint set under " +
            prefix + ": " + e.what());
      }
    }
    if (headers[r].time_seconds != headers[0].time_seconds)
      throw std::runtime_error(
          "reshard_checkpoints: inconsistent checkpoint set under " +
          prefix);
    transfer(rank_decomp(old_dims, r), locals[r], /*to_global=*/true);
  }
  const std::int64_t step = min_tip;
  const double time_seconds = headers[0].time_seconds;
  // The resharded set is healthy only if EVERY source rank's file was
  // verified healthy — a single unverified shard taints the merged state.
  std::uint32_t health = 1;
  for (const auto& h : headers) health = std::min(health, h.health);
  locals.clear();

  // A set whose ranks all carry cross-step core state gets the carries
  // redistributed alongside the prognostic fields; an all-empty set
  // stays carry-free.  A mix means the ranks checkpointed differently
  // configured cores — refuse rather than resume half a carry.
  int with_carry = 0;
  for (const auto& c : carries) with_carry += c.empty() ? 0 : 1;
  std::vector<std::vector<std::byte>> new_carries(
      static_cast<std::size_t>(new_count));
  if (with_carry == old_count) {
    new_carries = reshard_carries(prefix, mesh, old_dims, new_dims, carries);
  } else if (with_carry != 0) {
    throw std::runtime_error(
        "reshard_checkpoints: inconsistent checkpoint set under " + prefix +
        ": " + std::to_string(with_carry) + " of " +
        std::to_string(old_count) + " ranks carry core state");
  }

  // Stage the new set beside the old one; nothing the resume path reads
  // is touched until every staged file is durably on disk.
  for (int r = 0; r < new_count; ++r) {
    const mesh::DomainDecomp d = rank_decomp(new_dims, r);
    state::State local(d.lnx(), d.lny(), d.lnz(), state::StateHalo{});
    transfer(d, local, /*to_global=*/false);
    atomic_write_file(checkpoint_path(prefix, r) + ".new",
                      build_checkpoint_image(mesh, d, local, step,
                                             time_seconds, new_carries[r],
                                             health));
    fire_hook("staged:" + std::to_string(r));
  }
  // The commit point: one atomic rename publishes the marker.  Crash
  // before it -> the sweep discards the stage and the old set resumes;
  // crash after it -> recovery rolls the publish forward.
  const std::string marker_text = "old=" + std::to_string(old_count) +
                                  " new=" + std::to_string(new_count) +
                                  "\n";
  atomic_write_file(
      reshard_marker_path(prefix),
      std::as_bytes(std::span<const char>(marker_text.data(),
                                          marker_text.size())));
  fire_hook("committed");
  publish_reshard(prefix, old_count, new_count);
}

}  // namespace ca::util
