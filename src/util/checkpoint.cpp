#include "util/checkpoint.hpp"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

namespace ca::util {
namespace {

/// Closes on scope exit without error reporting — the READ path and
/// error-unwind cleanup only.  The write path closes explicitly and
/// checks the result: fclose flushes the stdio buffer, and a failed
/// final flush must not report a successful checkpoint.
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_all(std::FILE* f, const void* data, std::size_t bytes,
               const std::string& path) {
  if (std::fwrite(data, 1, bytes, f) != bytes)
    throw std::runtime_error("checkpoint write failed: " + path);
}

void read_all(std::FILE* f, void* data, std::size_t bytes,
              const std::string& path) {
  if (std::fread(data, 1, bytes, f) != bytes)
    throw std::runtime_error("checkpoint read failed (truncated?): " +
                             path);
}

std::vector<double> pack_state(const mesh::DomainDecomp& d,
                               const state::State& xi) {
  std::vector<double> buf;
  buf.reserve(static_cast<std::size_t>(d.lnx()) * d.lny() *
              (3 * d.lnz() + 1));
  auto pack3 = [&](const util::Array3D<double>& f) {
    for (int k = 0; k < d.lnz(); ++k)
      for (int j = 0; j < d.lny(); ++j)
        for (int i = 0; i < d.lnx(); ++i) buf.push_back(f(i, j, k));
  };
  pack3(xi.u());
  pack3(xi.v());
  pack3(xi.phi());
  for (int j = 0; j < d.lny(); ++j)
    for (int i = 0; i < d.lnx(); ++i) buf.push_back(xi.psa()(i, j));
  return buf;
}

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::byte b : data)
    crc = table[(crc ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

void CarryWriter::put_u64(std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  buf_.insert(buf_.end(), p, p + sizeof(v));
}

void CarryWriter::put_i64(std::int64_t v) {
  put_u64(static_cast<std::uint64_t>(v));
}

void CarryWriter::put_doubles(std::span<const double> v) {
  put_u64(v.size());
  const auto bytes = std::as_bytes(v);
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void CarryReader::take(void* dst, std::size_t bytes) {
  if (bytes > data_.size() - pos_)
    throw std::runtime_error(
        "checkpoint carry block truncated: wanted " + std::to_string(bytes) +
        " bytes, " + std::to_string(data_.size() - pos_) + " left");
  std::memcpy(dst, data_.data() + pos_, bytes);
  pos_ += bytes;
}

std::uint64_t CarryReader::get_u64() {
  std::uint64_t v = 0;
  take(&v, sizeof(v));
  return v;
}

std::int64_t CarryReader::get_i64() {
  return static_cast<std::int64_t>(get_u64());
}

void CarryReader::get_doubles(std::span<double> out) {
  const std::uint64_t count = get_u64();
  if (count != out.size())
    throw std::runtime_error(
        "checkpoint carry field size mismatch: stored " +
        std::to_string(count) + " doubles, core expects " +
        std::to_string(out.size()) +
        " (carry written by a differently-configured core?)");
  take(out.data(), out.size() * sizeof(double));
}

void CarryReader::expect_end() const {
  if (pos_ != data_.size())
    throw std::runtime_error(
        "checkpoint carry block has " + std::to_string(data_.size() - pos_) +
        " unread trailing bytes (format mismatch)");
}

std::string checkpoint_path(const std::string& prefix, int rank) {
  return prefix + ".rank" + std::to_string(rank) + ".ckpt";
}

void write_checkpoint(const std::string& path,
                      const mesh::LatLonMesh& mesh,
                      const mesh::DomainDecomp& decomp,
                      const state::State& xi, std::int64_t step,
                      double time_seconds,
                      std::span<const std::byte> carry) {
  CheckpointHeader hdr;
  hdr.nx = mesh.nx();
  hdr.ny = mesh.ny();
  hdr.nz = mesh.nz();
  hdr.lnx = decomp.lnx();
  hdr.lny = decomp.lny();
  hdr.lnz = decomp.lnz();
  hdr.x0 = decomp.xr().begin;
  hdr.y0 = decomp.yr().begin;
  hdr.z0 = decomp.zr().begin;
  hdr.step = step;
  hdr.time_seconds = time_seconds;

  const auto buf = pack_state(decomp, xi);
  hdr.payload_crc = crc32(std::as_bytes(std::span<const double>(buf)));
  hdr.carry_bytes = carry.size();
  hdr.carry_crc = crc32(carry);

  // Torn-write defense: assemble the new checkpoint beside the old one
  // and only replace it with an atomic rename once every byte (including
  // the stdio buffer flushed by fclose) is on disk.  A crash or injected
  // fault anywhere before the rename leaves the previous checkpoint —
  // the job's only resumable state — untouched.
  const std::string tmp = path + ".tmp";
  std::FILE* raw = std::fopen(tmp.c_str(), "wb");
  if (raw == nullptr)
    throw std::runtime_error("cannot open checkpoint: " + tmp);
  try {
    write_all(raw, &hdr, sizeof(hdr), tmp);
    write_all(raw, buf.data(), buf.size() * sizeof(double), tmp);
    if (!carry.empty()) write_all(raw, carry.data(), carry.size(), tmp);
    if (std::fflush(raw) != 0)
      throw std::runtime_error("checkpoint flush failed: " + tmp);
  } catch (...) {
    std::fclose(raw);
    std::remove(tmp.c_str());
    throw;
  }
  if (std::fclose(raw) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint close failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint rename failed: " + tmp + " -> " +
                             path + ": " + std::strerror(err));
  }
}

CheckpointHeader read_checkpoint(const std::string& path,
                                 const mesh::LatLonMesh& mesh,
                                 const mesh::DomainDecomp& decomp,
                                 state::State& xi,
                                 std::vector<std::byte>* carry) {
  if (carry != nullptr) carry->clear();
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cannot open checkpoint: " + path);
  CheckpointHeader hdr;
  // The v1 header is a strict prefix of v2, which is a strict prefix of
  // v3: read the v1 prefix first, then the version-gated trailers field
  // by field (exact sizes; the offsets are pinned by static_asserts in
  // the header).
  read_all(f.get(), &hdr, kCheckpointHeaderV1Bytes, path);

  CheckpointHeader expect;
  if (hdr.magic != expect.magic)
    throw std::runtime_error("not a ca-agcm checkpoint: " + path);
  if (hdr.version < 1 || hdr.version > expect.version)
    throw std::runtime_error("unsupported checkpoint version: " + path);
  if (hdr.version >= 2) {
    read_all(f.get(), &hdr.payload_crc, sizeof(hdr.payload_crc), path);
    read_all(f.get(), &hdr.reserved, sizeof(hdr.reserved), path);
  }
  if (hdr.version >= 3) {
    read_all(f.get(), &hdr.carry_bytes, sizeof(hdr.carry_bytes), path);
    read_all(f.get(), &hdr.carry_crc, sizeof(hdr.carry_crc), path);
    read_all(f.get(), &hdr.carry_reserved, sizeof(hdr.carry_reserved),
             path);
  }
  if (hdr.nx != mesh.nx() || hdr.ny != mesh.ny() || hdr.nz != mesh.nz())
    throw std::runtime_error("checkpoint mesh mismatch: " + path);
  if (hdr.lnx != decomp.lnx() || hdr.lny != decomp.lny() ||
      hdr.lnz != decomp.lnz() || hdr.x0 != decomp.xr().begin ||
      hdr.y0 != decomp.yr().begin || hdr.z0 != decomp.zr().begin)
    throw std::runtime_error(
        "checkpoint block/decomposition mismatch: " + path);

  const std::size_t count = static_cast<std::size_t>(hdr.lnx) * hdr.lny *
                                (3 * static_cast<std::size_t>(hdr.lnz)) +
                            static_cast<std::size_t>(hdr.lnx) * hdr.lny;
  std::vector<double> buf(count);
  read_all(f.get(), buf.data(), buf.size() * sizeof(double), path);

  if (hdr.version >= 2) {
    const std::uint32_t crc =
        crc32(std::as_bytes(std::span<const double>(buf)));
    if (crc != hdr.payload_crc)
      throw std::runtime_error(
          "checkpoint payload CRC mismatch (bit rot?): " + path);
  }

  if (carry != nullptr && hdr.carry_bytes > 0) {
    carry->resize(hdr.carry_bytes);
    read_all(f.get(), carry->data(), carry->size(), path);
    if (crc32(*carry) != hdr.carry_crc)
      throw std::runtime_error(
          "checkpoint carry CRC mismatch (bit rot?): " + path);
  }

  std::size_t idx = 0;
  auto unpack3 = [&](util::Array3D<double>& fld) {
    for (int k = 0; k < decomp.lnz(); ++k)
      for (int j = 0; j < decomp.lny(); ++j)
        for (int i = 0; i < decomp.lnx(); ++i) fld(i, j, k) = buf[idx++];
  };
  unpack3(xi.u());
  unpack3(xi.v());
  unpack3(xi.phi());
  for (int j = 0; j < decomp.lny(); ++j)
    for (int i = 0; i < decomp.lnx(); ++i) xi.psa()(i, j) = buf[idx++];
  return hdr;
}

void reshard_checkpoints(const std::string& prefix,
                         const mesh::LatLonMesh& mesh,
                         std::array<int, 3> old_dims,
                         std::array<int, 3> new_dims) {
  const int old_count = old_dims[0] * old_dims[1] * old_dims[2];
  const int new_count = new_dims[0] * new_dims[1] * new_dims[2];
  if (old_count <= 0 || new_count <= 0)
    throw std::runtime_error("reshard_checkpoints: empty process grid");

  // Copies the owned interior of `local` (block `d`) into/out of the
  // whole-mesh assembly state at the block's global origin.
  state::State global(mesh.nx(), mesh.ny(), mesh.nz(), state::StateHalo{});
  auto transfer = [&](const mesh::DomainDecomp& d, state::State& local,
                      bool to_global) {
    auto move3 = [&](util::Array3D<double>& gf, util::Array3D<double>& lf) {
      for (int k = 0; k < d.lnz(); ++k)
        for (int j = 0; j < d.lny(); ++j)
          for (int i = 0; i < d.lnx(); ++i) {
            double& g = gf(d.gi(i), d.gj(j), d.gk(k));
            double& l = lf(i, j, k);
            (to_global ? g : l) = (to_global ? l : g);
          }
    };
    move3(global.u(), local.u());
    move3(global.v(), local.v());
    move3(global.phi(), local.phi());
    for (int j = 0; j < d.lny(); ++j)
      for (int i = 0; i < d.lnx(); ++i) {
        double& g = global.psa()(d.gi(i), d.gj(j));
        double& l = local.psa()(i, j);
        (to_global ? g : l) = (to_global ? l : g);
      }
  };
  auto rank_decomp = [&](std::array<int, 3> dims, int r) {
    const std::array<int, 3> coords{r % dims[0], (r / dims[0]) % dims[1],
                                    r / (dims[0] * dims[1])};
    return mesh::DomainDecomp(mesh, dims, coords);
  };

  std::int64_t step = 0;
  double time_seconds = 0.0;
  for (int r = 0; r < old_count; ++r) {
    const mesh::DomainDecomp d = rank_decomp(old_dims, r);
    state::State local(d.lnx(), d.lny(), d.lnz(), state::StateHalo{});
    const CheckpointHeader hdr =
        read_checkpoint(checkpoint_path(prefix, r), mesh, d, local);
    if (r == 0) {
      step = hdr.step;
      time_seconds = hdr.time_seconds;
    } else if (hdr.step != step || hdr.time_seconds != time_seconds) {
      throw std::runtime_error(
          "reshard_checkpoints: inconsistent checkpoint set under " +
          prefix);
    }
    transfer(d, local, /*to_global=*/true);
  }

  for (int r = 0; r < new_count; ++r) {
    const mesh::DomainDecomp d = rank_decomp(new_dims, r);
    state::State local(d.lnx(), d.lny(), d.lnz(), state::StateHalo{});
    transfer(d, local, /*to_global=*/false);
    write_checkpoint(checkpoint_path(prefix, r), mesh, d, local, step,
                     time_seconds);
  }
  for (int r = new_count; r < old_count; ++r)
    std::remove(checkpoint_path(prefix, r).c_str());
}

}  // namespace ca::util
