#include "util/field_io.hpp"

#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>

namespace ca::util {
namespace {

void write_grid(std::ostream& out, const std::string& label, int nx,
                int ny, const std::function<double(int, int)>& value) {
  out << "# " << label << "\n# nx " << nx << " ny " << ny << "\n";
  out.precision(12);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      if (i > 0) out << ' ';
      out << value(i, j);
    }
    out << '\n';
  }
}

}  // namespace

void write_text_field(const std::string& path, const std::string& label,
                      const Array2D<double>& f) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_grid(out, label, f.nx(), f.ny(),
             [&](int i, int j) { return f(i, j); });
  if (!out) throw std::runtime_error("write failed: " + path);
}

void write_text_level(const std::string& path, const std::string& label,
                      const Array3D<double>& f, int k) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_grid(out, label, f.nx(), f.ny(),
             [&](int i, int j) { return f(i, j, k); });
  if (!out) throw std::runtime_error("write failed: " + path);
}

Array2D<double> read_text_field(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::string line;
  int nx = -1, ny = -1;
  // Header: skip the label comment, parse the dimension comment.
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] != '#') break;
    std::istringstream hdr(line);
    std::string hash, key;
    hdr >> hash >> key;
    if (key == "nx") {
      hdr >> nx >> key >> ny;
      if (key != "ny" || nx <= 0 || ny <= 0)
        throw std::runtime_error("malformed field header: " + path);
    }
  }
  if (nx <= 0 || ny <= 0)
    throw std::runtime_error("missing dimension header: " + path);
  Array2D<double> f(nx, ny);
  // `line` currently holds the first data row.
  for (int j = 0; j < ny; ++j) {
    if (j > 0 && !std::getline(in, line))
      throw std::runtime_error("truncated field file: " + path);
    std::istringstream row(line);
    for (int i = 0; i < nx; ++i) {
      if (!(row >> f(i, j)))
        throw std::runtime_error("malformed field row: " + path);
    }
  }
  return f;
}

}  // namespace ca::util
