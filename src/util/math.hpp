// Physical and numerical constants of the IAP-AGCM dynamical core.
#pragma once

#include <cmath>
#include <numbers>

namespace ca::util {

inline constexpr double kPi = std::numbers::pi;

/// Earth radius [m].
inline constexpr double kEarthRadius = 6.371e6;
/// Earth rotation angular velocity [rad/s].
inline constexpr double kOmega = 7.292e-5;
/// Gas constant for dry air [J/(kg K)].
inline constexpr double kRd = 287.04;
/// Specific heat at constant pressure [J/(kg K)].
inline constexpr double kCp = 1004.64;
/// kappa = R/cp.
inline constexpr double kKappa = kRd / kCp;
/// Gravity [m/s^2].
inline constexpr double kGravity = 9.80616;
/// Characteristic gravity-wave speed of the standard atmosphere [m/s]
/// (paper: b = 87.8 m/s).
inline constexpr double kGravityWaveSpeed = 87.8;
/// Model-top pressure p_t [Pa] (paper: 2.2 hPa).
inline constexpr double kPressureTop = 220.0;
/// Reference pressure p_0 [Pa] (paper: 1000 hPa).
inline constexpr double kPressureRef = 1.0e5;
/// Surface dissipation coefficient k_sa (paper: 0.1).
inline constexpr double kDissipationKsa = 0.1;

/// True if |a-b| <= atol + rtol*max(|a|,|b|).
inline bool close(double a, double b, double rtol = 1e-12,
                  double atol = 1e-14) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

/// Floor division for possibly negative numerators.
inline int floor_div(int a, int b) {
  int q = a / b;
  int r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}

/// Positive modulo.
inline int pos_mod(int a, int b) {
  int r = a % b;
  return r < 0 ? r + b : r;
}

}  // namespace ca::util
