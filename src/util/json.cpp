#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ca::util {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no inf/nan
    return;
  }
  // Integers (the common case: counts, byte totals) print without exponent.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError(what, pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char ch) {
    if (peek() != ch) fail(std::string("expected '") + ch + "'");
    ++pos_;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return Json(string());
      case 't':
        if (!consume_word("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_word("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_word("null")) fail("bad literal");
        return Json();
      default:
        return number();
    }
  }

  Json object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      obj[key] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char ch = text_[pos_++];
      if (ch == '"') return out;
      if (ch != '\\') {
        out += ch;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9')
              cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      char ch = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(ch)) || ch == '-' ||
          ch == '+' || ch == '.' || ch == 'e' || ch == 'E')
        ++pos_;
      else
        break;
    }
    if (pos_ == start) fail("expected value");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("bad number");
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json& Json::operator[](const std::string& key) {
  type_ = Type::kObject;
  for (auto& [k, v] : members_)
    if (k == key) return v;
  members_.emplace_back(key, Json());
  return members_.back().second;
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent) * depth, ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      append_number(out, num_);
      break;
    case Type::kString:
      append_escaped(out, str_);
      break;
    case Type::kArray:
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (indent > 0) out += pad;
        items_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += nl;
      }
      if (indent > 0) out += close_pad;
      out += ']';
      break;
    case Type::kObject:
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (indent > 0) out += pad;
        append_escaped(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += nl;
      }
      if (indent > 0) out += close_pad;
      out += '}';
      break;
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace ca::util
