// Minimal key=value configuration with typed getters and environment
// overrides (CA_AGCM_<KEY>).  Used by examples and benches so full-scale
// parameters can be adjusted without recompiling.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace ca::util {

class Config {
 public:
  Config() = default;

  /// Parses "key=value" lines; '#' starts a comment; blank lines ignored.
  static Config from_text(std::string_view text);

  /// Parses argv-style "key=value" tokens (skips tokens without '=').
  static Config from_args(int argc, const char* const* argv);

  void set(std::string key, std::string value);
  bool has(const std::string& key) const;

  /// New Config holding every entry whose key starts with `prefix`, with
  /// the prefix stripped ("faults.drop" -> "drop" for prefix "faults.").
  /// Used to hand sub-systems their own config block.
  Config subset(const std::string& prefix) const;

  std::string get_string(const std::string& key,
                         std::string fallback = "") const;
  int get_int(const std::string& key, int fallback) const;
  long long get_long(const std::string& key, long long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  /// Env var CA_AGCM_<KEY> (uppercased) wins over the stored entry.
  std::optional<std::string> lookup(const std::string& key) const;

  std::map<std::string, std::string> entries_;
};

}  // namespace ca::util
