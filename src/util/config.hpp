// Minimal key=value configuration with typed getters and environment
// overrides (CA_AGCM_<KEY>).  Used by examples and benches so full-scale
// parameters can be adjusted without recompiling.
//
// Env override naming: the key is uppercased and every '.' or '-' becomes
// '_' so namespaced keys stay exportable from a POSIX shell
// ("comm.max_resends" -> CA_AGCM_COMM_MAX_RESENDS).
#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ca::util {

/// A present config value failed to parse as the requested type.  Missing
/// keys still yield the fallback; only malformed values raise (a typo in
/// "comm.max_resends = 1O" must not silently become the default).
struct ConfigError : std::runtime_error {
  ConfigError(const std::string& key, const std::string& value,
              const std::string& expected)
      : std::runtime_error("config key '" + key + "': cannot parse '" +
                           value + "' as " + expected),
        key(key),
        value(value) {}

  std::string key;
  std::string value;
};

class Config {
 public:
  Config() = default;

  /// Parses "key=value" lines; '#' starts a comment; blank lines ignored.
  static Config from_text(std::string_view text);

  /// Parses argv-style "key=value" tokens (skips tokens without '=').
  static Config from_args(int argc, const char* const* argv);

  void set(std::string key, std::string value);
  bool has(const std::string& key) const;

  /// New Config holding every entry whose key starts with `prefix`, with
  /// the prefix stripped ("faults.drop" -> "drop" for prefix "faults.").
  /// Used to hand sub-systems their own config block.
  Config subset(const std::string& prefix) const;

  std::string get_string(const std::string& key,
                         std::string fallback = "") const;
  /// Typed getters: a missing key returns the fallback; a present value
  /// must parse as ONE full token of the requested type (surrounding
  /// whitespace allowed, trailing garbage is not) or ConfigError is
  /// raised.  "10x" and "3.5" are errors for get_int, not 10 and 3.
  int get_int(const std::string& key, int fallback) const;
  long long get_long(const std::string& key, long long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

  /// Env override name of `key`: "CA_AGCM_" + uppercase(key) with '.'
  /// and '-' mapped to '_'.  Exposed so docs/tests state the rule once.
  static std::string env_name(const std::string& key);

 private:
  /// Env var env_name(key) wins over the stored entry.
  std::optional<std::string> lookup(const std::string& key) const;

  std::map<std::string, std::string> entries_;
};

}  // namespace ca::util
