#include "util/timer.hpp"

namespace ca::util {

void PhaseTimers::start(const std::string& phase) {
  stop();
  active_ = phase;
  running_ = true;
  timer_.reset();
}

void PhaseTimers::stop() {
  if (!running_) return;
  totals_[active_] += timer_.seconds();
  running_ = false;
}

void PhaseTimers::add(const std::string& phase, double seconds) {
  totals_[phase] += seconds;
}

double PhaseTimers::total(const std::string& phase) const {
  auto it = totals_.find(phase);
  return it == totals_.end() ? 0.0 : it->second;
}

void PhaseTimers::clear() {
  totals_.clear();
  running_ = false;
}

}  // namespace ca::util
