// Wall-clock timers and a named stopwatch set used by the functional runs
// to attribute time to the phases the paper reports (collective, stencil
// communication, computation).
#pragma once

#include <chrono>
#include <map>
#include <string>

namespace ca::util {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates elapsed seconds under string keys.  Not thread-safe; each
/// logical rank keeps its own.
class PhaseTimers {
 public:
  void start(const std::string& phase);
  /// Stops the currently running phase (no-op if none).
  void stop();
  /// Adds an externally measured duration (obs:: spans charge their elapsed
  /// time here so trace timelines and phase totals share one clock pair).
  void add(const std::string& phase, double seconds);
  double total(const std::string& phase) const;
  const std::map<std::string, double>& totals() const { return totals_; }
  void clear();

 private:
  std::map<std::string, double> totals_;
  std::string active_;
  Timer timer_;
  bool running_ = false;
};

}  // namespace ca::util
