#include "util/config.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace ca::util {
namespace {

std::string trim(std::string_view s) {
  const char* ws = " \t\r\n";
  auto b = s.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  auto e = s.find_last_not_of(ws);
  return std::string(s.substr(b, e - b + 1));
}

/// Full-token integer parse: the trimmed value must be exactly one
/// integer (no trailing garbage, no "3.5" truncation, no overflow).
std::optional<long long> parse_long(const std::string& raw) {
  const std::string tok = trim(raw);
  if (tok.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  if (errno == ERANGE || end != tok.c_str() + tok.size()) return std::nullopt;
  return v;
}

std::optional<double> parse_double(const std::string& raw) {
  const std::string tok = trim(raw);
  if (tok.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (errno == ERANGE || end != tok.c_str() + tok.size()) return std::nullopt;
  return v;
}

}  // namespace

Config Config::from_text(std::string_view text) {
  Config c;
  std::istringstream in{std::string(text)};
  std::string raw;
  while (std::getline(in, raw)) {
    std::string line = raw.substr(0, raw.find('#'));
    auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    if (!key.empty()) c.set(std::move(key), std::move(value));
  }
  return c;
}

Config Config::from_args(int argc, const char* const* argv) {
  Config c;
  for (int a = 1; a < argc; ++a) {
    std::string_view tok = argv[a];
    auto eq = tok.find('=');
    if (eq == std::string_view::npos) continue;
    c.set(trim(tok.substr(0, eq)), trim(tok.substr(eq + 1)));
  }
  return c;
}

void Config::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool Config::has(const std::string& key) const {
  return lookup(key).has_value();
}

Config Config::subset(const std::string& prefix) const {
  Config sub;
  for (const auto& [key, value] : entries_)
    if (key.size() > prefix.size() && key.compare(0, prefix.size(), prefix) == 0)
      sub.set(key.substr(prefix.size()), value);
  return sub;
}

std::string Config::env_name(const std::string& key) {
  std::string name = "CA_AGCM_";
  for (char ch : key) {
    // '.' and '-' are common in namespaced keys but illegal in POSIX
    // environment names; fold both to '_' so every key stays exportable.
    if (ch == '.' || ch == '-')
      name += '_';
    else
      name +=
          static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
  }
  return name;
}

std::optional<std::string> Config::lookup(const std::string& key) const {
  if (const char* env = std::getenv(env_name(key).c_str()))
    return std::string(env);
  auto it = entries_.find(key);
  if (it != entries_.end()) return it->second;
  return std::nullopt;
}

std::string Config::get_string(const std::string& key,
                               std::string fallback) const {
  auto v = lookup(key);
  return v ? *v : fallback;
}

int Config::get_int(const std::string& key, int fallback) const {
  auto v = lookup(key);
  if (!v) return fallback;
  auto parsed = parse_long(*v);
  if (!parsed || *parsed < std::numeric_limits<int>::min() ||
      *parsed > std::numeric_limits<int>::max())
    throw ConfigError(key, *v, "int");
  return static_cast<int>(*parsed);
}

long long Config::get_long(const std::string& key, long long fallback) const {
  auto v = lookup(key);
  if (!v) return fallback;
  auto parsed = parse_long(*v);
  if (!parsed) throw ConfigError(key, *v, "integer");
  return *parsed;
}

double Config::get_double(const std::string& key, double fallback) const {
  auto v = lookup(key);
  if (!v) return fallback;
  auto parsed = parse_double(*v);
  if (!parsed) throw ConfigError(key, *v, "double");
  return *parsed;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  auto v = lookup(key);
  if (!v) return fallback;
  if (*v == "1" || *v == "true" || *v == "yes" || *v == "on") return true;
  if (*v == "0" || *v == "false" || *v == "no" || *v == "off") return false;
  return fallback;
}

}  // namespace ca::util
