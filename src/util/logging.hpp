// Tiny leveled logger.  Thread-safe line-at-a-time output; level settable
// at runtime (default warn so tests stay quiet).
#pragma once

#include <sstream>
#include <string>

namespace ca::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);

void log_line(LogLevel level, const std::string& msg);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, out_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};

}  // namespace detail

inline detail::LogStream log_debug() {
  return detail::LogStream(LogLevel::kDebug);
}
inline detail::LogStream log_info() {
  return detail::LogStream(LogLevel::kInfo);
}
inline detail::LogStream log_warn() {
  return detail::LogStream(LogLevel::kWarn);
}
inline detail::LogStream log_error() {
  return detail::LogStream(LogLevel::kError);
}

}  // namespace ca::util
