// Binary checkpoint/restart of the model state: a versioned header with
// the mesh shape and this rank's block coordinates, followed by the four
// prognostic fields' owned interiors.  Each rank writes its own file
// (the standard file-per-rank pattern); restart validates every header
// field so a mismatched configuration fails loudly instead of silently
// reading garbage.
//
// Version 2 appends a CRC-32 of the payload to the header: comm messages
// carry checksums since the fault-injection work, and the checkpoint path
// gets the same defense against silent bit-rot on disk.
//
// Version 3 appends an optional, CRC-guarded *core-carry* extension block
// after the payload: an opaque byte blob a core serializes through
// CarryWriter/CarryReader for whatever cross-step state lives outside the
// prognostic fields (the CA core's deferred smoothing and stale C
// products — see core/ca_core.hpp).  Cores without carry state write an
// empty block.  Version 1 and 2 files are still readable; writes always
// emit version 3.
//
// Writes are crash-safe: the file is assembled at `<path>.tmp`, flushed,
// closed with the close result checked, and renamed over `path` in one
// atomic step — a writer killed mid-checkpoint leaves the previous
// checkpoint intact instead of a torn file.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mesh/decomp.hpp"
#include "state/state.hpp"

namespace ca::util {

struct CheckpointHeader {
  std::uint64_t magic = 0x434141474D435031ull;  // "CAAGMCP1"
  std::uint32_t version = 3;
  std::int32_t nx = 0, ny = 0, nz = 0;        ///< global mesh
  std::int32_t lnx = 0, lny = 0, lnz = 0;     ///< this block
  std::int32_t x0 = 0, y0 = 0, z0 = 0;        ///< block origin
  std::int64_t step = 0;                       ///< model step count
  double time_seconds = 0.0;                   ///< model time
  // --- version >= 2 only (not present in v1 files) ---
  std::uint32_t payload_crc = 0;  ///< CRC-32 of the payload bytes
  std::uint32_t reserved = 0;     ///< keeps the header 8-byte aligned
  // --- version >= 3 only (not present in v1/v2 files) ---
  std::uint64_t carry_bytes = 0;  ///< size of the core-carry block
  std::uint32_t carry_crc = 0;    ///< CRC-32 of the core-carry block
  std::uint32_t carry_reserved = 0;
};

/// Size of the on-disk header prefix shared by every version (v1 files
/// end their header here).
inline constexpr std::size_t kCheckpointHeaderV1Bytes =
    offsetof(CheckpointHeader, payload_crc);
/// End of the v2 header (v2 files end their header here).
inline constexpr std::size_t kCheckpointHeaderV2Bytes =
    offsetof(CheckpointHeader, carry_bytes);

// Pin the on-disk layout: the version-gated trailer reads depend on the
// exact field offsets, so any accidental reordering/padding change must
// fail the build instead of silently shifting the format.
static_assert(offsetof(CheckpointHeader, step) == 48);
static_assert(offsetof(CheckpointHeader, time_seconds) == 56);
static_assert(kCheckpointHeaderV1Bytes == 64);
static_assert(offsetof(CheckpointHeader, reserved) == 68);
static_assert(kCheckpointHeaderV2Bytes == 72);
static_assert(offsetof(CheckpointHeader, carry_crc) == 80);
static_assert(sizeof(CheckpointHeader) == 88);

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`; the
/// checkpoint payload checksum.  Exposed for tests.
std::uint32_t crc32(std::span<const std::byte> data);

/// Serializer for the v3 core-carry block.  Fields are length-prefixed so
/// the reader can verify every span count against what the restoring core
/// expects — a carry written by a differently-configured core fails
/// loudly instead of shearing doubles across fields.
class CarryWriter {
 public:
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  /// Writes a u64 element count followed by the raw doubles.
  void put_doubles(std::span<const double> v);

  std::span<const std::byte> bytes() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

/// Deserializer for the v3 core-carry block.  Every accessor throws
/// std::runtime_error on overrun or count mismatch.
class CarryReader {
 public:
  explicit CarryReader(std::span<const std::byte> data) : data_(data) {}

  std::uint64_t get_u64();
  std::int64_t get_i64();
  /// Reads a span written by put_doubles; the stored element count must
  /// equal out.size().
  void get_doubles(std::span<double> out);

  std::size_t remaining() const { return data_.size() - pos_; }
  /// Throws unless the block was consumed exactly.
  void expect_end() const;

 private:
  void take(void* dst, std::size_t bytes);

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Writes the owned interior of xi to `path` (always version 3, with the
/// payload CRC), atomically: the bytes land in `<path>.tmp` and are
/// renamed over `path` only after a checked flush+close, so a crash
/// mid-write cannot destroy the previous checkpoint.  `carry` is the
/// optional core-carry block (CRC-guarded; empty for cores without
/// cross-step state).  Throws std::runtime_error on any I/O failure.
void write_checkpoint(const std::string& path,
                      const mesh::LatLonMesh& mesh,
                      const mesh::DomainDecomp& decomp,
                      const state::State& xi, std::int64_t step,
                      double time_seconds,
                      std::span<const std::byte> carry = {});

/// Reads a checkpoint into xi (halos untouched; callers re-exchange or
/// restore them via the core's carry).  Returns the header.  When `carry`
/// is non-null it receives the core-carry block (empty for v1/v2 files
/// and for v3 files written without one), CRC-validated.  Throws
/// std::runtime_error on I/O failure, any mesh/block mismatch, or a
/// payload/carry CRC mismatch.
CheckpointHeader read_checkpoint(const std::string& path,
                                 const mesh::LatLonMesh& mesh,
                                 const mesh::DomainDecomp& decomp,
                                 state::State& xi,
                                 std::vector<std::byte>* carry = nullptr);

/// Conventional per-rank file name: <prefix>.rank<r>.ckpt
std::string checkpoint_path(const std::string& prefix, int rank);

/// Rewrites a per-rank checkpoint set from `old_dims` blocks to
/// `new_dims` blocks (rank layout x-fastest in both): every old rank's
/// file is read into the global mesh, header consistency (step and model
/// time identical across ranks) is verified, and the set is rewritten for
/// the new decomposition under the same prefix.  Stale old-rank files
/// beyond the new rank count are removed.  This is the degraded-pool
/// recovery path: a job that lost ranks to quarantine resumes from the
/// resharded set on a smaller process grid.  Core-carry blocks are NOT
/// preserved (they are decomposition-specific); callers must only reshard
/// jobs whose core carries no cross-step state.  Throws std::runtime_error
/// on I/O failure, a mixed-step set, or any header mismatch.
void reshard_checkpoints(const std::string& prefix,
                         const mesh::LatLonMesh& mesh,
                         std::array<int, 3> old_dims,
                         std::array<int, 3> new_dims);

}  // namespace ca::util
