// Binary checkpoint/restart of the model state: a versioned header with
// the mesh shape and this rank's block coordinates, followed by the four
// prognostic fields' owned interiors.  Each rank writes its own file
// (the standard file-per-rank pattern); restart validates every header
// field so a mismatched configuration fails loudly instead of silently
// reading garbage.
//
// Version 2 appends a CRC-32 of the payload to the header: comm messages
// carry checksums since the fault-injection work, and the checkpoint path
// gets the same defense against silent bit-rot on disk.
//
// Version 3 appends an optional, CRC-guarded *core-carry* extension block
// after the payload: an opaque byte blob a core serializes through
// CarryWriter/CarryReader for whatever cross-step state lives outside the
// prognostic fields (the CA core's deferred smoothing and stale C
// products — see core/ca_core.hpp).  Cores without carry state write an
// empty block.  Version 1 and 2 files are still readable; writes always
// emit version 3.
//
// Version 4 is a *delta* sidecar format, not a new base layout: the base
// file at `<path>` is still a plain v3 checkpoint (bitwise identical to
// what write_checkpoint emits), and each subsequent cadence may write
// only the dirty blocks of the full file image to `<path>.d<seq>`.  A
// delta file carries the base's identity hash, its position in the
// chain, a CRC over its own records AND a CRC over the reconstructed
// full image, so bit rot anywhere is detected and recovery falls back
// to the longest intact prefix of the chain.  CheckpointSession caps
// the chain length and rewrites a fresh full base when it is reached,
// which both bounds recovery cost and crash-atomically invalidates the
// old chain (stale deltas no longer match the new base's identity).
//
// Writes are crash-safe AND durable: the file is assembled at
// `<path>.tmp`, flushed, fsynced, closed with the close result checked,
// and renamed over `path` in one atomic step, after which the
// containing directory is fsynced — a writer killed mid-checkpoint
// leaves the previous checkpoint intact, and a power loss after
// write_checkpoint returns cannot surface an empty or torn "committed"
// file.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "mesh/decomp.hpp"
#include "state/state.hpp"

namespace ca::util {

/// Process-wide counters over every checkpoint file the process touched.
/// The service's RAM-first recovery asserts on these ("recovered without
/// reading a checkpoint from disk") and the benches report them.
struct CheckpointIoCounters {
  std::uint64_t files_written = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t files_read = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t fsyncs = 0;  ///< file fsyncs (directory fsyncs excluded)
};

/// Snapshot of the global counters (atomically maintained, so safe to
/// call while service worker threads checkpoint concurrently).
CheckpointIoCounters checkpoint_io();
void reset_checkpoint_io();

struct CheckpointHeader {
  std::uint64_t magic = 0x434141474D435031ull;  // "CAAGMCP1"
  std::uint32_t version = 3;
  std::int32_t nx = 0, ny = 0, nz = 0;        ///< global mesh
  std::int32_t lnx = 0, lny = 0, lnz = 0;     ///< this block
  std::int32_t x0 = 0, y0 = 0, z0 = 0;        ///< block origin
  std::int64_t step = 0;                       ///< model step count
  double time_seconds = 0.0;                   ///< model time
  // --- version >= 2 only (not present in v1 files) ---
  std::uint32_t payload_crc = 0;  ///< CRC-32 of the payload bytes
  std::uint32_t reserved = 0;     ///< keeps the header 8-byte aligned
  // --- version >= 3 only (not present in v1/v2 files) ---
  std::uint64_t carry_bytes = 0;  ///< size of the core-carry block
  std::uint32_t carry_crc = 0;    ///< CRC-32 of the core-carry block
  /// Numerical-health verdict of the checkpointed state: 1 = verified
  /// healthy by the campaign's HealthSentinel immediately before the
  /// write, 0 = unverified (sentinel off, or a file from before the
  /// sentinel existed — this reuses the v3 header's spare field, so the
  /// on-disk layout is unchanged and old files read as "unverified").
  std::uint32_t health = 0;
};

/// Size of the on-disk header prefix shared by every version (v1 files
/// end their header here).
inline constexpr std::size_t kCheckpointHeaderV1Bytes =
    offsetof(CheckpointHeader, payload_crc);
/// End of the v2 header (v2 files end their header here).
inline constexpr std::size_t kCheckpointHeaderV2Bytes =
    offsetof(CheckpointHeader, carry_bytes);

// Pin the on-disk layout: the version-gated trailer reads depend on the
// exact field offsets, so any accidental reordering/padding change must
// fail the build instead of silently shifting the format.
static_assert(offsetof(CheckpointHeader, step) == 48);
static_assert(offsetof(CheckpointHeader, time_seconds) == 56);
static_assert(kCheckpointHeaderV1Bytes == 64);
static_assert(offsetof(CheckpointHeader, reserved) == 68);
static_assert(kCheckpointHeaderV2Bytes == 72);
static_assert(offsetof(CheckpointHeader, carry_crc) == 80);
static_assert(offsetof(CheckpointHeader, health) == 84);
static_assert(sizeof(CheckpointHeader) == 88);

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`; the
/// checkpoint payload checksum.  Exposed for tests.
std::uint32_t crc32(std::span<const std::byte> data);

/// Serializer for the v3 core-carry block.  Fields are length-prefixed so
/// the reader can verify every span count against what the restoring core
/// expects — a carry written by a differently-configured core fails
/// loudly instead of shearing doubles across fields.
class CarryWriter {
 public:
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  /// Writes a u64 element count followed by the raw doubles.
  void put_doubles(std::span<const double> v);

  std::span<const std::byte> bytes() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

/// Magic prefix of a *reshardable* core-carry block ("CACARRY" + format
/// version 2).  A carry whose first 8 bytes are this value is fully
/// self-describing, so reshard_checkpoints can redistribute it across a
/// new Y-Z decomposition without knowing anything about the core that
/// wrote it:
///   u64 magic            = kReshardableCarryMagic
///   u64 min_lny, min_lnz minimum legal block extents when the y/z
///                        dimension is split (1 = unconstrained); a
///                        reshard to smaller blocks fails loudly
///   u64 n_scalars        then n_scalars i64 values, opaque to the
///                        resharder but required identical on every rank
///   u64 n_fields         then per field:
///     u64 is3d           1 = 3-D field, 0 = 2-D (z extents forced to 1)
///     u64 gnx, gny, gnz  global interior extents
///     u64 lnx, lny, lnz  this rank's interior block
///     u64 hx, hy, hz     halo depths (kept across a reshard)
///     u64 x0, y0, z0     block origin in the global interior
///     put_doubles(raw)   the full halo-inclusive x-fastest raw span,
///                        (lnx+2hx)*(lny+2hy)*(lnz+2hz) doubles
/// Resharding assembles each field on a halo-padded global grid from the
/// owned interiors plus the physical-boundary halo extensions (interior
/// rows win at internal block seams — exactly what a halo exchange would
/// deliver), then cuts the new blocks with unchanged halo depths.  Rows
/// that map 1:1 between the decompositions are preserved bitwise.  A
/// carry with any other magic is decomposition-opaque and makes the
/// whole set un-reshardable (loud failure).
inline constexpr std::uint64_t kReshardableCarryMagic = 0x4341434152525902ull;

/// Deserializer for the v3 core-carry block.  Every accessor throws
/// std::runtime_error on overrun or count mismatch.
class CarryReader {
 public:
  explicit CarryReader(std::span<const std::byte> data) : data_(data) {}

  std::uint64_t get_u64();
  std::int64_t get_i64();
  /// Reads a span written by put_doubles; the stored element count must
  /// equal out.size().
  void get_doubles(std::span<double> out);

  std::size_t remaining() const { return data_.size() - pos_; }
  /// Throws unless the block was consumed exactly.
  void expect_end() const;

 private:
  void take(void* dst, std::size_t bytes);

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Writes the owned interior of xi to `path` (always version 3, with the
/// payload CRC), atomically: the bytes land in `<path>.tmp` and are
/// renamed over `path` only after a checked flush+close, so a crash
/// mid-write cannot destroy the previous checkpoint.  `carry` is the
/// optional core-carry block (CRC-guarded; empty for cores without
/// cross-step state).  `health` is the header's numerical-health verdict
/// (see CheckpointHeader::health; 0 = unverified).  Throws
/// std::runtime_error on any I/O failure.
void write_checkpoint(const std::string& path,
                      const mesh::LatLonMesh& mesh,
                      const mesh::DomainDecomp& decomp,
                      const state::State& xi, std::int64_t step,
                      double time_seconds,
                      std::span<const std::byte> carry = {},
                      std::uint32_t health = 0);

/// Reads a checkpoint into xi (halos untouched; callers re-exchange or
/// restore them via the core's carry).  Returns the header.  When `carry`
/// is non-null it receives the core-carry block (empty for v1/v2 files
/// and for v3 files written without one), CRC-validated.  Throws
/// std::runtime_error on I/O failure, any mesh/block mismatch, or a
/// payload/carry CRC mismatch.
CheckpointHeader read_checkpoint(const std::string& path,
                                 const mesh::LatLonMesh& mesh,
                                 const mesh::DomainDecomp& decomp,
                                 state::State& xi,
                                 std::vector<std::byte>* carry = nullptr);

/// Conventional per-rank file name: <prefix>.rank<r>.ckpt
std::string checkpoint_path(const std::string& prefix, int rank);

/// Name of the seq-th delta file of the chain rooted at `path`
/// (1-based): `<path>.d<seq>`.
std::string delta_path(const std::string& path, int seq);

/// Serializes a full checkpoint (v3 header + payload + carry) into one
/// contiguous byte image — exactly the bytes write_checkpoint puts on
/// disk.  The delta codec diffs these images, and the service's buddy
/// replication streams them between ranks.
std::vector<std::byte> build_checkpoint_image(
    const mesh::LatLonMesh& mesh, const mesh::DomainDecomp& decomp,
    const state::State& xi, std::int64_t step, double time_seconds,
    std::span<const std::byte> carry = {}, std::uint32_t health = 0);

/// Parses a checkpoint image (any readable version) into xi — the
/// in-memory twin of read_checkpoint, with identical validation (magic,
/// version, mesh/block match, payload + carry CRC) and identical error
/// messages.  `what` names the image in diagnostics (a path, or e.g.
/// "buddy replica of rank 3").
CheckpointHeader parse_checkpoint_image(std::span<const std::byte> image,
                                        const mesh::LatLonMesh& mesh,
                                        const mesh::DomainDecomp& decomp,
                                        state::State& xi,
                                        std::vector<std::byte>* carry,
                                        const std::string& what);

// --- v4 delta chain ------------------------------------------------------

/// On-disk header of a `<path>.d<seq>` delta file.  The payload after it
/// is `ndirty` u32 block indices followed by the blocks' raw bytes (each
/// block_bytes long except a short final block), together covered by
/// delta_crc.  base_id ties the delta to one specific base file (a hash
/// of the base's header bytes): a delta left over from an older chain
/// never matches a freshly rewritten base and is simply ignored, which
/// is what makes the chain-cap base rewrite crash-atomic without any
/// ordered deletes.
struct DeltaHeader {
  std::uint64_t magic = 0x434141474D435044ull;  // "CAAGMCPD"
  std::uint32_t version = 4;
  std::uint32_t block_bytes = 0;
  std::int32_t nx = 0, ny = 0, nz = 0;
  std::int32_t lnx = 0, lny = 0, lnz = 0;
  std::int32_t x0 = 0, y0 = 0, z0 = 0;
  std::uint32_t seq = 0;  ///< 1-based position in the chain
  std::int64_t step = 0;
  double time_seconds = 0.0;
  std::uint64_t base_id = 0;    ///< identity hash of the chain's base file
  std::uint64_t image_bytes = 0;  ///< size of the reconstructed image
  std::uint32_t ndirty = 0;     ///< dirty blocks in this delta
  std::uint32_t image_crc = 0;  ///< CRC-32 of the reconstructed image
  std::uint32_t delta_crc = 0;  ///< CRC-32 of the index+block payload
  std::uint32_t reserved = 0;
};
// Pin the on-disk layout like CheckpointHeader's: field order above is
// chosen so the struct has no padding.
static_assert(offsetof(DeltaHeader, seq) == 52);
static_assert(offsetof(DeltaHeader, step) == 56);
static_assert(offsetof(DeltaHeader, base_id) == 72);
static_assert(offsetof(DeltaHeader, delta_crc) == 96);
static_assert(sizeof(DeltaHeader) == 104);

struct ChainReadOptions {
  /// Reconstruct exactly this step (-1 = the furthest intact tip).  Used
  /// by the cross-rank min-tip agreement: a rank whose chain runs past
  /// the agreed step rewinds to it.  Throws when the chain has no
  /// element at this step.
  std::int64_t max_step = -1;
};

struct ChainReadResult {
  CheckpointHeader header;  ///< header of the reconstructed state
  int deltas_applied = 0;   ///< chain elements applied after the base
  /// True when the chain ended at a corrupt/torn delta instead of a
  /// missing one — the state is the last INTACT element (the documented
  /// fallback), but callers may want to surface the detection.
  bool truncated_by_corruption = false;
};

/// Reads the delta chain rooted at `path`: the full base file, then
/// `<path>.d1`, `<path>.d2`, ... applied in order while each delta is
/// present, intact (header + delta CRC + reconstructed-image CRC), tied
/// to this base (base_id), contiguous (seq), and within max_step.  The
/// first failing delta ends the chain and the state reconstructed so
/// far wins — a corrupt delta therefore falls back to the last intact
/// element, never garbage.  A plain full checkpoint (no `.d1`) behaves
/// exactly like read_checkpoint.  Throws on a missing/corrupt BASE or
/// when max_step >= 0 cannot be reconstructed exactly.
ChainReadResult read_checkpoint_chain(const std::string& path,
                                      const mesh::LatLonMesh& mesh,
                                      const mesh::DomainDecomp& decomp,
                                      state::State& xi,
                                      std::vector<std::byte>* carry = nullptr,
                                      const ChainReadOptions& opts = {});

struct DeltaOptions {
  /// Max delta files after a full base before the session rewrites a
  /// fresh base (bounds recovery cost).  0 disables deltas entirely:
  /// every cadence writes a full v3 file, bitwise identical to
  /// write_checkpoint.
  int chain_cap = 0;
  /// Dirty-diff granularity [bytes].
  std::size_t block_bytes = 4096;
};

struct CheckpointWriteStats {
  std::uint64_t cadences = 0;      ///< write() calls
  std::uint64_t full_writes = 0;   ///< cadences that wrote a full base
  std::uint64_t delta_writes = 0;  ///< cadences that wrote a delta
  std::uint64_t bytes_written = 0;  ///< actual file bytes
  /// What writing a full file every cadence would have cost — the
  /// bench's "steady-state checkpoint bytes" baseline.
  std::uint64_t full_equivalent_bytes = 0;
};

/// Per-rank checkpoint writer with optional delta chaining.  The first
/// write (and every write after chain_cap deltas) emits a full v3 base
/// at `path`; in between, only the blocks that changed since the
/// previous cadence go to `<path>.d<seq>`.  All writes are atomic and
/// fsynced.  The session keeps the current full image in memory, which
/// doubles as the buddy-replication payload.  A fresh session always
/// starts with a full base, so a resumed attempt re-anchors the chain
/// instead of extending one it never saw.
class CheckpointSession {
 public:
  explicit CheckpointSession(std::string path, DeltaOptions opts = {});

  /// Writes this cadence's checkpoint (full or delta per the chain
  /// policy).  `health` lands in the image's header (and so in the
  /// replication payload).  Throws std::runtime_error on any I/O failure.
  void write(const mesh::LatLonMesh& mesh, const mesh::DomainDecomp& decomp,
             const state::State& xi, std::int64_t step, double time_seconds,
             std::span<const std::byte> carry = {},
             std::uint32_t health = 0);

  /// The full v3 image of the last write() — what a buddy rank stores.
  const std::vector<std::byte>& image() const { return image_; }
  const CheckpointWriteStats& stats() const { return stats_; }

 private:
  std::string path_;
  DeltaOptions opts_;
  std::vector<std::byte> image_;
  std::uint64_t base_id_ = 0;
  int chain_len_ = 0;
  CheckpointWriteStats stats_;
};

/// Rewrites a per-rank checkpoint set from `old_dims` blocks to
/// `new_dims` blocks (rank layout x-fastest in both): every old rank's
/// delta chain is read into the global mesh at the set's common step
/// (the minimum intact tip when ranks' chains disagree, as a dead-rank
/// set can), and the set is rewritten for the new decomposition under
/// the same prefix.  The rewrite is crash-atomic: the new set is staged
/// at `<rank-path>.new`, a `<prefix>.reshard` commit marker is
/// published atomically, and only then are the staged files renamed
/// over the old set — a crash before the marker leaves the old set
/// resumable (stage files are swept), a crash after it is rolled
/// forward by recover_resharded_checkpoints (which this function also
/// runs first, so a pool retry self-heals).  Stale old-rank files
/// beyond the new rank count and all delta files are removed at
/// publish.  This is the degraded-pool recovery path: a job that lost
/// ranks to quarantine resumes from the resharded set on a smaller
/// process grid.  Core-carry blocks ARE preserved when every rank wrote
/// a reshardable carry (kReshardableCarryMagic): the carried fields are
/// redistributed geometrically across the new blocks, bitwise where
/// rows map 1:1.  A set whose carries are all empty reshards as before
/// (no carry in the new set); a set with opaque (non-reshardable) or
/// mixed carries, or a new shape below the carry's declared minimum
/// block extents, fails loudly.  Throws std::runtime_error on I/O
/// failure, an unrecoverable set, or any header mismatch.
void reshard_checkpoints(const std::string& prefix,
                         const mesh::LatLonMesh& mesh,
                         std::array<int, 3> old_dims,
                         std::array<int, 3> new_dims);

/// Completes a reshard interrupted after its commit marker: renames any
/// still-staged `<rank-path>.new` files over the final paths, removes
/// stale old-rank and delta files, and deletes the marker.  Without a
/// marker, sweeps pre-commit stage leftovers (the old set stays the
/// truth).  Idempotent.  Returns true when a committed reshard was
/// rolled forward.  The WorkerPool runs this over its checkpoint_dir at
/// startup (age-gated, like the `*.ckpt.tmp` sweep).
bool recover_resharded_checkpoints(const std::string& prefix);

/// Test-only crash injection for the reshard protocol: when set, the
/// hook is invoked at named protocol points ("staged:<r>", "committed",
/// "published:<r>") and may throw to simulate a crash there.  Null (the
/// default) costs nothing.
void set_checkpoint_test_hook(std::function<void(const std::string&)> hook);

}  // namespace ca::util
