// Binary checkpoint/restart of the model state: a versioned header with
// the mesh shape and this rank's block coordinates, followed by the four
// prognostic fields' owned interiors.  Each rank writes its own file
// (the standard file-per-rank pattern); restart validates every header
// field so a mismatched configuration fails loudly instead of silently
// reading garbage.
#pragma once

#include <string>

#include "mesh/decomp.hpp"
#include "state/state.hpp"

namespace ca::util {

struct CheckpointHeader {
  std::uint64_t magic = 0x434141474D435031ull;  // "CAAGMCP1"
  std::uint32_t version = 1;
  std::int32_t nx = 0, ny = 0, nz = 0;        ///< global mesh
  std::int32_t lnx = 0, lny = 0, lnz = 0;     ///< this block
  std::int32_t x0 = 0, y0 = 0, z0 = 0;        ///< block origin
  std::int64_t step = 0;                       ///< model step count
  double time_seconds = 0.0;                   ///< model time
};

/// Writes the owned interior of xi to `path`.  Throws std::runtime_error
/// on I/O failure.
void write_checkpoint(const std::string& path,
                      const mesh::LatLonMesh& mesh,
                      const mesh::DomainDecomp& decomp,
                      const state::State& xi, std::int64_t step,
                      double time_seconds);

/// Reads a checkpoint into xi (halos untouched; callers re-exchange).
/// Returns the header.  Throws std::runtime_error on I/O failure or any
/// mesh/block mismatch.
CheckpointHeader read_checkpoint(const std::string& path,
                                 const mesh::LatLonMesh& mesh,
                                 const mesh::DomainDecomp& decomp,
                                 state::State& xi);

/// Conventional per-rank file name: <prefix>.rank<r>.ckpt
std::string checkpoint_path(const std::string& prefix, int rank);

}  // namespace ca::util
