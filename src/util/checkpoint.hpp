// Binary checkpoint/restart of the model state: a versioned header with
// the mesh shape and this rank's block coordinates, followed by the four
// prognostic fields' owned interiors.  Each rank writes its own file
// (the standard file-per-rank pattern); restart validates every header
// field so a mismatched configuration fails loudly instead of silently
// reading garbage.
//
// Version 2 appends a CRC-32 of the payload to the header: comm messages
// carry checksums since the fault-injection work, and the checkpoint path
// gets the same defense against silent bit-rot on disk.  Version 1 files
// (no CRC) are still readable; writes always emit version 2.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "mesh/decomp.hpp"
#include "state/state.hpp"

namespace ca::util {

struct CheckpointHeader {
  std::uint64_t magic = 0x434141474D435031ull;  // "CAAGMCP1"
  std::uint32_t version = 2;
  std::int32_t nx = 0, ny = 0, nz = 0;        ///< global mesh
  std::int32_t lnx = 0, lny = 0, lnz = 0;     ///< this block
  std::int32_t x0 = 0, y0 = 0, z0 = 0;        ///< block origin
  std::int64_t step = 0;                       ///< model step count
  double time_seconds = 0.0;                   ///< model time
  // --- version >= 2 only (not present in v1 files) ---
  std::uint32_t payload_crc = 0;  ///< CRC-32 of the payload bytes
  std::uint32_t reserved = 0;     ///< keeps the header 8-byte aligned
};

/// Size of the on-disk header prefix shared by every version (v1 files
/// end their header here).
inline constexpr std::size_t kCheckpointHeaderV1Bytes =
    offsetof(CheckpointHeader, payload_crc);

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`; the
/// checkpoint payload checksum.  Exposed for tests.
std::uint32_t crc32(std::span<const std::byte> data);

/// Writes the owned interior of xi to `path` (always version 2, with the
/// payload CRC).  Throws std::runtime_error on I/O failure.
void write_checkpoint(const std::string& path,
                      const mesh::LatLonMesh& mesh,
                      const mesh::DomainDecomp& decomp,
                      const state::State& xi, std::int64_t step,
                      double time_seconds);

/// Reads a checkpoint into xi (halos untouched; callers re-exchange).
/// Returns the header.  Throws std::runtime_error on I/O failure, any
/// mesh/block mismatch, or (version >= 2) a payload CRC mismatch.
CheckpointHeader read_checkpoint(const std::string& path,
                                 const mesh::LatLonMesh& mesh,
                                 const mesh::DomainDecomp& decomp,
                                 state::State& xi);

/// Conventional per-rank file name: <prefix>.rank<r>.ckpt
std::string checkpoint_path(const std::string& prefix, int rank);

}  // namespace ca::util
