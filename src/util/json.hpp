// Minimal JSON value: build, serialize, and parse the small documents the
// benches emit (BENCH_*.json).  Objects preserve insertion order so the
// emitted files diff cleanly run to run.  Not a general-purpose library:
// numbers are doubles, strings are assumed UTF-8, and parse errors raise
// JsonError with a byte offset.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace ca::util {

struct JsonError : std::runtime_error {
  JsonError(const std::string& what, std::size_t offset)
      : std::runtime_error("json: " + what + " at byte " +
                           std::to_string(offset)),
        offset(offset) {}
  std::size_t offset;
};

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  /// Any arithmetic type (counts, seconds) stores as a double.
  template <typename T, std::enable_if_t<std::is_arithmetic_v<T> &&
                                             !std::is_same_v<T, bool>,
                                         int> = 0>
  Json(T v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(const char* s) : Json(std::string(s)) {}

  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  double as_double() const { return num_; }
  bool as_bool() const { return bool_; }
  const std::string& as_string() const { return str_; }

  /// Object access; inserts a null member when the key is absent.
  Json& operator[](const std::string& key);
  /// Pointer to the member, or nullptr when absent / not an object.
  const Json* find(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  void push_back(Json v) {
    type_ = Type::kArray;
    items_.push_back(std::move(v));
  }
  const std::vector<Json>& items() const { return items_; }
  std::size_t size() const {
    return is_object() ? members_.size() : items_.size();
  }

  /// Serializes with `indent` spaces per level (0 = compact single line).
  std::string dump(int indent = 2) const;

  /// Parses one JSON document (throws JsonError on malformed input or
  /// trailing garbage).
  static Json parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace ca::util
