#include "state/stratification.hpp"

#include <cmath>

namespace ca::state {
namespace {

constexpr double kT0 = 288.15;       // surface temperature [K]
constexpr double kLapse = 6.5e-3;    // tropospheric lapse rate [K/m]
constexpr double kTStrat = 216.65;   // isothermal stratosphere [K]

}  // namespace

double Stratification::t_standard(double p) {
  // Inverting the hydrostatic relation of the constant-lapse layer:
  // T = T0 * (p/p0)^(R*Gamma/g), floored by the stratosphere temperature.
  const double exponent = util::kRd * kLapse / util::kGravity;
  const double t =
      kT0 * std::pow(std::max(p, 1.0) / util::kPressureRef, exponent);
  return std::max(t, kTStrat);
}

Stratification::Stratification(const mesh::SigmaLevels& levels) {
  p_factor_ref_ = std::sqrt(pes_ref() / util::kPressureRef);
  t_surface_ = t_standard(ps_ref_);
  t_ref_.resize(static_cast<std::size_t>(levels.nz()));
  for (int k = 0; k < levels.nz(); ++k) {
    const double p = util::kPressureTop + levels.full(k) * pes_ref();
    t_ref_[static_cast<std::size_t>(k)] = t_standard(p);
  }
}

}  // namespace ca::state
