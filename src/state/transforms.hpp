// The IAP variable substitution (paper eq. 1):
//   U = P u,  V = P v,  Phi = P R (T - T~)/b,  p'_sa = p_s - p~_s
// with P = sqrt(p_es/p_0), p_es = p_s - p_t, evaluated at the C-grid
// position of each field (P is averaged to the U and V points).
//
// Conversions assume the p'_sa halos needed for the staggered averages
// are already filled (periodic x, pole reflection, or exchanged).
#pragma once

#include "state/state.hpp"
#include "state/stratification.hpp"
#include "util/array3d.hpp"

namespace ca::state {

/// Untransformed (physical) fields on the same block/staggering.
struct PhysicalState {
  util::Array3D<double> u, v, t;  ///< velocities [m/s], temperature [K]
  util::Array2D<double> ps;       ///< surface pressure [Pa]

  PhysicalState() = default;
  PhysicalState(int lnx, int lny, int lnz, const StateHalo& halo)
      : u(lnx, lny, lnz, halo.h3),
        v(lnx, lny, lnz, halo.h3),
        t(lnx, lny, lnz, halo.h3),
        ps(lnx, lny, halo.hx2, halo.hy2) {}
};

/// P = sqrt((p_s - p_t)/p_0) at the scalar point (i, j).
double p_factor(double ps);

/// P averaged to the U point (i-1/2, j): needs psa(i-1, j).
double p_factor_u(const util::Array2D<double>& psa,
                  const Stratification& strat, int i, int j);
/// P averaged to the V point (i, j+1/2): needs psa(i, j+1).
double p_factor_v(const util::Array2D<double>& psa,
                  const Stratification& strat, int i, int j);
/// P at the scalar point (i, j).
double p_factor_s(const util::Array2D<double>& psa,
                  const Stratification& strat, int i, int j);

/// Physical -> transformed over the owned interior.
void to_transformed(const PhysicalState& phys, const Stratification& strat,
                    State& xi);

/// Transformed -> physical over the owned interior.
void to_physical(const State& xi, const Stratification& strat,
                 PhysicalState& phys);

}  // namespace ca::state
