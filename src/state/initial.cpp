#include "state/initial.hpp"

#include <cmath>
#include <cstdint>

#include "state/transforms.hpp"
#include "util/math.hpp"

namespace ca::state {
namespace {

/// Deterministic double in [-1, 1] from global coordinates (splitmix64).
double hash_noise(unsigned seed, int gi, int gj, int gk) {
  std::uint64_t x = static_cast<std::uint64_t>(seed) * 0x9E3779B97F4A7C15ull;
  x ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(gi)) *
       0xBF58476D1CE4E5B9ull;
  x ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(gj)) *
       0x94D049BB133111EBull;
  x ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(gk)) *
       0xD6E8FEB86659FD93ull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return 2.0 * (static_cast<double>(x >> 11) * 0x1.0p-53) - 1.0;
}

/// Zonal jet profile: peak at mid-latitudes of both hemispheres, vanishing
/// at the poles, concentrated in the upper troposphere.
double jet_u(double theta, double sigma, double u0) {
  const double lat_shape = std::pow(std::sin(2.0 * theta), 2);
  const double vert_shape =
      std::exp(-std::pow((sigma - 0.25) / 0.35, 2));
  return u0 * lat_shape * vert_shape;
}

}  // namespace

void initialize(State& xi, const mesh::LatLonMesh& mesh,
                const mesh::SigmaLevels& levels, const Stratification& strat,
                const mesh::DomainDecomp& decomp,
                const InitialOptions& options) {
  xi.fill(0.0);
  if (options.kind == InitialCondition::kRestIsothermal) return;

  const double p_ref = strat.p_factor_ref();
  const int lnx = decomp.lnx(), lny = decomp.lny(), lnz = decomp.lnz();

  if (options.kind == InitialCondition::kRandomPerturbation) {
    for (int j = 0; j < lny; ++j)
      for (int i = 0; i < lnx; ++i)
        xi.psa()(i, j) = options.random_amplitude * util::kPressureRef *
                         1e-3 *
                         hash_noise(options.seed, decomp.gi(i),
                                    decomp.gj(j), -1);
    for (int k = 0; k < lnz; ++k)
      for (int j = 0; j < lny; ++j)
        for (int i = 0; i < lnx; ++i)
          xi.phi()(i, j, k) =
              options.random_amplitude * util::kGravityWaveSpeed *
              hash_noise(options.seed, decomp.gi(i), decomp.gj(j),
                         decomp.gk(k));
    return;
  }

  // Jet (and optional wave): p_s = p~_s everywhere, so P is uniform and
  // the transform reduces to multiplication by p_ref.
  const bool wave = options.kind == InitialCondition::kPlanetaryWave;
  constexpr int kWavenumber = 4;
  for (int k = 0; k < lnz; ++k) {
    const double sigma = levels.full(decomp.gk(k));
    for (int j = 0; j < lny; ++j) {
      const int gj = decomp.gj(j);
      const double theta_u = mesh.theta(gj);
      const double theta_vv = mesh.theta_v(gj);
      for (int i = 0; i < lnx; ++i) {
        const int gi = decomp.gi(i);
        double u_phys = jet_u(theta_u, sigma, options.jet_speed);
        double v_phys = 0.0;
        double t_anom =
            -2.0 * std::cos(2.0 * theta_u);  // warm equator, cold poles
        if (wave) {
          const double lam_u = mesh.lambda_u(gi);
          const double lam_c = mesh.lambda(gi);
          const double s3 = std::pow(std::sin(theta_u), 3);
          u_phys += options.wave_amplitude * options.jet_speed * s3 *
                    std::cos(kWavenumber * lam_u);
          v_phys = -options.wave_amplitude * options.jet_speed *
                   std::pow(std::sin(theta_vv), 3) *
                   std::sin(kWavenumber * lam_c);
          t_anom += 0.5 * std::sin(theta_u) * std::cos(kWavenumber * lam_c);
        }
        xi.u()(i, j, k) = p_ref * u_phys;
        xi.v()(i, j, k) = p_ref * v_phys;
        xi.phi()(i, j, k) =
            p_ref * util::kRd * t_anom / util::kGravityWaveSpeed;
      }
    }
  }
}

util::Array2D<double> make_terrain(
    const mesh::LatLonMesh& mesh, const mesh::DomainDecomp& decomp, int hx,
    int hy, const std::function<double(double, double)>& phi_s) {
  util::Array2D<double> out(decomp.lnx(), decomp.lny(), hx, hy);
  for (int j = -hy; j < decomp.lny() + hy; ++j) {
    // Reflect across the poles like the scalar boundary fill so halo rows
    // carry the values the owner-side reflection would produce.
    int gj = decomp.gj(j);
    if (gj < 0) gj = -gj - 1;
    if (gj >= mesh.ny()) gj = 2 * mesh.ny() - 1 - gj;
    const double theta = mesh.theta(gj);
    for (int i = -hx; i < decomp.lnx() + hx; ++i) {
      const int gi =
          ((decomp.gi(i) % mesh.nx()) + mesh.nx()) % mesh.nx();
      out(i, j) = phi_s(mesh.lambda(gi), theta);
    }
  }
  return out;
}

std::function<double(double, double)> gaussian_mountain(double height_m,
                                                        double lambda0,
                                                        double theta0,
                                                        double width) {
  return [=](double lambda, double theta) {
    // Great-circle-ish angular distance via the chord on the unit sphere.
    const double x0 = std::sin(theta0) * std::cos(lambda0);
    const double y0 = std::sin(theta0) * std::sin(lambda0);
    const double z0 = std::cos(theta0);
    const double x = std::sin(theta) * std::cos(lambda);
    const double y = std::sin(theta) * std::sin(lambda);
    const double z = std::cos(theta);
    const double dot =
        std::min(1.0, std::max(-1.0, x * x0 + y * y0 + z * z0));
    const double dist = std::acos(dot);
    return util::kGravity * height_m *
           std::exp(-(dist * dist) / (width * width));
  };
}

void apply_terrain_surface_pressure(State& xi, const Stratification& strat,
                                    const util::Array2D<double>& phi_s,
                                    const mesh::DomainDecomp& decomp) {
  const double rt = util::kRd * strat.t_surface();
  for (int j = 0; j < decomp.lny(); ++j)
    for (int i = 0; i < decomp.lnx(); ++i)
      xi.psa()(i, j) =
          strat.ps_ref() * (std::exp(-phi_s(i, j) / rt) - 1.0);
}

}  // namespace ca::state
