#include "state/vertical_interp.hpp"

#include <cmath>

#include "util/math.hpp"

namespace ca::state {

double level_pressure(const ops::OpContext& ctx,
                      const util::Array2D<double>& psa, int i, int j,
                      int k) {
  const double pes =
      ctx.strat->ps_ref() + psa(i, j) - util::kPressureTop;
  return util::kPressureTop + ctx.sig(k) * pes;
}

util::Array2D<double> interpolate_to_pressure(
    const ops::OpContext& ctx, const util::Array2D<double>& psa,
    const util::Array3D<double>& field, double pressure) {
  const auto& d = *ctx.decomp;
  util::Array2D<double> out(d.lnx(), d.lny());
  const double logp = std::log(pressure);
  for (int j = 0; j < d.lny(); ++j) {
    for (int i = 0; i < d.lnx(); ++i) {
      // Model-level pressures increase with k.
      const double p_top = level_pressure(ctx, psa, i, j, 0);
      const double p_bot = level_pressure(ctx, psa, i, j, d.lnz() - 1);
      if (pressure <= p_top) {
        out(i, j) = field(i, j, 0);
        continue;
      }
      if (pressure >= p_bot) {
        out(i, j) = field(i, j, d.lnz() - 1);
        continue;
      }
      int k = 0;
      while (level_pressure(ctx, psa, i, j, k + 1) < pressure) ++k;
      const double lp0 = std::log(level_pressure(ctx, psa, i, j, k));
      const double lp1 = std::log(level_pressure(ctx, psa, i, j, k + 1));
      const double w = (logp - lp0) / (lp1 - lp0);
      out(i, j) = (1.0 - w) * field(i, j, k) + w * field(i, j, k + 1);
    }
  }
  return out;
}

}  // namespace ca::state
