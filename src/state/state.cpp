#include "state/state.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ca::state {

State::State(int lnx, int lny, int lnz, const StateHalo& halo)
    : u_(lnx, lny, lnz, halo.h3),
      v_(lnx, lny, lnz, halo.h3),
      phi_(lnx, lny, lnz, halo.h3),
      psa_(lnx, lny, halo.hx2, halo.hy2) {}

StateHalo State::halo() const {
  return StateHalo{u_.halo(), psa_.hx(), psa_.hy()};
}

void State::fill(double value) {
  u_.fill(value);
  v_.fill(value);
  phi_.fill(value);
  psa_.fill(value);
}

namespace {

/// Clips the box to the allocated extents of a 3-D array.
mesh::Box clip3(const util::Array3D<double>& a, const mesh::Box& b) {
  return mesh::Box{std::max(b.i0, -a.halo().x),
                   std::min(b.i1, a.nx() + a.halo().x),
                   std::max(b.j0, -a.halo().y),
                   std::min(b.j1, a.ny() + a.halo().y),
                   std::max(b.k0, -a.halo().z),
                   std::min(b.k1, a.nz() + a.halo().z)};
}

struct Face {
  int i0, i1, j0, j1;
};

Face clip2(const util::Array2D<double>& a, const mesh::Box& b) {
  return Face{std::max(b.i0, -a.hx()), std::min(b.i1, a.nx() + a.hx()),
              std::max(b.j0, -a.hy()), std::min(b.j1, a.ny() + a.hy())};
}

}  // namespace

void State::assign(const State& x, const mesh::Box& region) {
  const mesh::Box b = clip3(u_, region);
  for (int k = b.k0; k < b.k1; ++k)
    for (int j = b.j0; j < b.j1; ++j)
      for (int i = b.i0; i < b.i1; ++i) {
        u_(i, j, k) = x.u_(i, j, k);
        v_(i, j, k) = x.v_(i, j, k);
        phi_(i, j, k) = x.phi_(i, j, k);
      }
  const Face f = clip2(psa_, region);
  for (int j = f.j0; j < f.j1; ++j)
    for (int i = f.i0; i < f.i1; ++i) psa_(i, j) = x.psa_(i, j);
}

void State::add_scaled(const State& x, double c, const State& y,
                       const mesh::Box& region) {
  const mesh::Box b = clip3(u_, region);
  for (int k = b.k0; k < b.k1; ++k)
    for (int j = b.j0; j < b.j1; ++j)
      for (int i = b.i0; i < b.i1; ++i) {
        u_(i, j, k) = x.u_(i, j, k) + c * y.u_(i, j, k);
        v_(i, j, k) = x.v_(i, j, k) + c * y.v_(i, j, k);
        phi_(i, j, k) = x.phi_(i, j, k) + c * y.phi_(i, j, k);
      }
  const Face f = clip2(psa_, region);
  for (int j = f.j0; j < f.j1; ++j)
    for (int i = f.i0; i < f.i1; ++i)
      psa_(i, j) = x.psa_(i, j) + c * y.psa_(i, j);
}

void State::average(const State& x, const State& y, const mesh::Box& region) {
  const mesh::Box b = clip3(u_, region);
  for (int k = b.k0; k < b.k1; ++k)
    for (int j = b.j0; j < b.j1; ++j)
      for (int i = b.i0; i < b.i1; ++i) {
        u_(i, j, k) = 0.5 * (x.u_(i, j, k) + y.u_(i, j, k));
        v_(i, j, k) = 0.5 * (x.v_(i, j, k) + y.v_(i, j, k));
        phi_(i, j, k) = 0.5 * (x.phi_(i, j, k) + y.phi_(i, j, k));
      }
  const Face f = clip2(psa_, region);
  for (int j = f.j0; j < f.j1; ++j)
    for (int i = f.i0; i < f.i1; ++i)
      psa_(i, j) = 0.5 * (x.psa_(i, j) + y.psa_(i, j));
}

double State::max_abs_diff(const State& a, const State& b,
                           const mesh::Box& region) {
  const mesh::Box r = clip3(a.u_, region);
  double mx = 0.0;
  for (int k = r.k0; k < r.k1; ++k)
    for (int j = r.j0; j < r.j1; ++j)
      for (int i = r.i0; i < r.i1; ++i) {
        mx = std::max(mx, std::abs(a.u_(i, j, k) - b.u_(i, j, k)));
        mx = std::max(mx, std::abs(a.v_(i, j, k) - b.v_(i, j, k)));
        mx = std::max(mx, std::abs(a.phi_(i, j, k) - b.phi_(i, j, k)));
      }
  const Face f = clip2(a.psa_, region);
  for (int j = f.j0; j < f.j1; ++j)
    for (int i = f.i0; i < f.i1; ++i)
      mx = std::max(mx, std::abs(a.psa_(i, j) - b.psa_(i, j)));
  return mx;
}

}  // namespace ca::state
