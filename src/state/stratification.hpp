// Standard stratification of the IAP model: the reference temperature
// T~(p) and surface pressure p~_s subtracted from the full fields by the
// transform (1).  We use the ICAO-like standard atmosphere: a linear-lapse
// troposphere over an isothermal stratosphere, flat terrain.
#pragma once

#include <vector>

#include "mesh/sigma.hpp"
#include "util/math.hpp"

namespace ca::state {

class Stratification {
 public:
  explicit Stratification(const mesh::SigmaLevels& levels);

  /// Reference surface pressure p~_s [Pa] (flat terrain).
  double ps_ref() const { return ps_ref_; }
  /// p_es = p~_s - p_t of the reference state.
  double pes_ref() const { return ps_ref_ - util::kPressureTop; }
  /// Reference P = sqrt(p_es / p_0).
  double p_factor_ref() const { return p_factor_ref_; }

  /// Reference temperature at full level k [K].
  double t_ref(int k) const { return t_ref_[static_cast<std::size_t>(k)]; }
  /// Reference temperature at the surface [K].
  double t_surface() const { return t_surface_; }

  /// Standard-atmosphere temperature at pressure p [Pa].
  static double t_standard(double p);

  /// Surface air density of the standard atmosphere rho~_sa = p~_s/(R T~_s).
  double rho_sa() const { return ps_ref_ / (util::kRd * t_surface_); }

  int nz() const { return static_cast<int>(t_ref_.size()); }

 private:
  double ps_ref_ = util::kPressureRef;
  double p_factor_ref_ = 0.0;
  double t_surface_ = 0.0;
  std::vector<double> t_ref_;
};

}  // namespace ca::state
