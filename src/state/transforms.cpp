#include "state/transforms.hpp"

#include <cmath>

#include "util/math.hpp"

namespace ca::state {

double p_factor(double ps) {
  return std::sqrt((ps - util::kPressureTop) / util::kPressureRef);
}

double p_factor_s(const util::Array2D<double>& psa,
                  const Stratification& strat, int i, int j) {
  return p_factor(strat.ps_ref() + psa(i, j));
}

double p_factor_u(const util::Array2D<double>& psa,
                  const Stratification& strat, int i, int j) {
  return 0.5 * (p_factor_s(psa, strat, i - 1, j) +
                p_factor_s(psa, strat, i, j));
}

double p_factor_v(const util::Array2D<double>& psa,
                  const Stratification& strat, int i, int j) {
  return 0.5 * (p_factor_s(psa, strat, i, j) +
                p_factor_s(psa, strat, i, j + 1));
}

void to_transformed(const PhysicalState& phys, const Stratification& strat,
                    State& xi) {
  const int lnx = xi.lnx(), lny = xi.lny(), lnz = xi.lnz();
  // p'_sa first: the staggered P averages read it.
  for (int j = 0; j < lny; ++j)
    for (int i = 0; i < lnx; ++i)
      xi.psa()(i, j) = phys.ps(i, j) - strat.ps_ref();
  // The staggered averages at i = 0 / j = lny-1 read the psa halo, which
  // the caller maintains; to keep this conversion self-contained we read
  // phys.ps through the same halo cells (assumed filled consistently).
  for (int k = 0; k < lnz; ++k) {
    for (int j = 0; j < lny; ++j) {
      for (int i = 0; i < lnx; ++i) {
        const double pu =
            0.5 * (p_factor(phys.ps(i - 1, j)) + p_factor(phys.ps(i, j)));
        const double pv =
            0.5 * (p_factor(phys.ps(i, j)) + p_factor(phys.ps(i, j + 1)));
        const double pc = p_factor(phys.ps(i, j));
        xi.u()(i, j, k) = pu * phys.u(i, j, k);
        xi.v()(i, j, k) = pv * phys.v(i, j, k);
        xi.phi()(i, j, k) = pc * util::kRd *
                            (phys.t(i, j, k) - strat.t_ref(k)) /
                            util::kGravityWaveSpeed;
      }
    }
  }
}

void to_physical(const State& xi, const Stratification& strat,
                 PhysicalState& phys) {
  const int lnx = xi.lnx(), lny = xi.lny(), lnz = xi.lnz();
  for (int j = 0; j < lny; ++j)
    for (int i = 0; i < lnx; ++i)
      phys.ps(i, j) = strat.ps_ref() + xi.psa()(i, j);
  for (int k = 0; k < lnz; ++k) {
    for (int j = 0; j < lny; ++j) {
      for (int i = 0; i < lnx; ++i) {
        const double pu = p_factor_u(xi.psa(), strat, i, j);
        const double pv = p_factor_v(xi.psa(), strat, i, j);
        const double pc = p_factor_s(xi.psa(), strat, i, j);
        phys.u(i, j, k) = xi.u()(i, j, k) / pu;
        phys.v(i, j, k) = xi.v()(i, j, k) / pv;
        phys.t(i, j, k) = strat.t_ref(k) + util::kGravityWaveSpeed *
                                               xi.phi()(i, j, k) /
                                               (pc * util::kRd);
      }
    }
  }
}

}  // namespace ca::state
