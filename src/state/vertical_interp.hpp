// Sigma-to-pressure interpolation of model fields: the standard
// post-processing step for AGCM diagnostics (the classic "u at 500 hPa"
// maps).  Each column's sigma levels map to pressures p = p_t + sigma *
// p_es(i, j), so the target pressure falls between two model levels that
// vary with the surface pressure; values are interpolated linearly in
// log(p) (the conventional choice for smooth thermodynamic profiles).
#pragma once

#include <vector>

#include "ops/context.hpp"
#include "state/state.hpp"

namespace ca::state {

/// Interpolates a 3-D field at scalar columns to the given pressure
/// level [Pa].  Columns whose surface pressure is below the target (the
/// level is "underground") or whose top is above it get the nearest model
/// level's value (constant extrapolation).  Returns an (lnx x lny) array.
util::Array2D<double> interpolate_to_pressure(
    const ops::OpContext& ctx, const util::Array2D<double>& psa,
    const util::Array3D<double>& field, double pressure);

/// Pressure of full level k in column (i, j) [Pa].
double level_pressure(const ops::OpContext& ctx,
                      const util::Array2D<double>& psa, int i, int j,
                      int k);

}  // namespace ca::state
