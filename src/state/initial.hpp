// Initial conditions, all defined by analytic formulas of the GLOBAL
// coordinates so every decomposition produces the identical global state
// (the parallel-equivalence tests depend on this).
#pragma once

#include <functional>

#include "mesh/decomp.hpp"
#include "mesh/latlon.hpp"
#include "mesh/sigma.hpp"
#include "state/state.hpp"
#include "state/stratification.hpp"

namespace ca::state {

enum class InitialCondition {
  /// u = v = 0, T = T~, p_s = p~_s: an exact rest state of the continuous
  /// equations (all transformed fields vanish).
  kRestIsothermal,
  /// A balanced-ish mid-latitude zonal jet with a weak thermal anomaly.
  kZonalJet,
  /// A wavenumber-4 planetary-wave pattern superposed on the jet
  /// (Rossby-Haurwitz-like) to exercise all stencil directions.
  kPlanetaryWave,
  /// The rest state plus small deterministic pseudo-random perturbations
  /// of Phi and p'_sa.
  kRandomPerturbation,
};

struct InitialOptions {
  InitialCondition kind = InitialCondition::kZonalJet;
  double jet_speed = 30.0;          ///< peak zonal wind [m/s]
  double wave_amplitude = 0.3;      ///< relative wave amplitude
  double random_amplitude = 1e-3;   ///< perturbation scale (transformed units)
  unsigned seed = 12345;
};

/// Fills the owned interior of xi from the analytic initial condition.
/// Halos are NOT filled (exchange/boundary fill is the caller's job).
void initialize(State& xi, const mesh::LatLonMesh& mesh,
                const mesh::SigmaLevels& levels, const Stratification& strat,
                const mesh::DomainDecomp& decomp,
                const InitialOptions& options);

/// Builds a terrain field (surface geopotential, m^2/s^2) by evaluating a
/// global analytic function phi_s(lambda, theta) over the owned block AND
/// its halos — every rank sees consistent values without communication.
/// hx/hy should match the state's 2-D halo sizes (halos_for_depth).
util::Array2D<double> make_terrain(
    const mesh::LatLonMesh& mesh, const mesh::DomainDecomp& decomp, int hx,
    int hy, const std::function<double(double, double)>& phi_s);

/// A Gaussian mountain of the given peak height [m] centered at
/// (lambda0, theta0) with angular half-width `width` [rad].
std::function<double(double, double)> gaussian_mountain(double height_m,
                                                        double lambda0,
                                                        double theta0,
                                                        double width);

/// The hydrostatically balanced surface pressure over terrain:
/// p_s = p~_s exp(-phi_s / (R T~_s)); writes the corresponding p'_sa into
/// xi (interior + nothing else) so a resting isothermal state over
/// mountains starts near balance.
void apply_terrain_surface_pressure(State& xi, const Stratification& strat,
                                    const util::Array2D<double>& phi_s,
                                    const mesh::DomainDecomp& decomp);

}  // namespace ca::state
