// The prognostic state xi = (U, V, Phi, p'_sa) of the transformed dynamic
// evolution equations (paper eq. 1-2) on one rank's block, with halo
// storage sized for the algorithm variant (1-wide for the original
// per-update exchange, 3M-wide for the communication-avoiding deep halos).
//
// Linear combinations are region-scoped: the CA algorithm evaluates
// updates on shrinking extended regions (block + remaining halo), so every
// arithmetic helper takes an explicit Box.
#pragma once

#include "mesh/halo.hpp"
#include "util/array3d.hpp"

namespace ca::state {

struct StateHalo {
  util::Halo3 h3;  ///< halo of the 3-D fields (U, V, Phi)
  int hx2 = 0;     ///< x halo of the 2-D field p'_sa
  int hy2 = 0;     ///< y halo of the 2-D field p'_sa
};

class State {
 public:
  State() = default;
  State(int lnx, int lny, int lnz, const StateHalo& halo);

  util::Array3D<double>& u() { return u_; }
  util::Array3D<double>& v() { return v_; }
  util::Array3D<double>& phi() { return phi_; }
  util::Array2D<double>& psa() { return psa_; }
  const util::Array3D<double>& u() const { return u_; }
  const util::Array3D<double>& v() const { return v_; }
  const util::Array3D<double>& phi() const { return phi_; }
  const util::Array2D<double>& psa() const { return psa_; }

  int lnx() const { return u_.nx(); }
  int lny() const { return u_.ny(); }
  int lnz() const { return u_.nz(); }
  StateHalo halo() const;

  void fill(double value);

  /// this = x over `region` (3-D box; the 2-D field uses its (i, j) face).
  void assign(const State& x, const mesh::Box& region);
  /// this = x + c*y over region.
  void add_scaled(const State& x, double c, const State& y,
                  const mesh::Box& region);
  /// this = 0.5*(x + y) over region.
  void average(const State& x, const State& y, const mesh::Box& region);

  /// Owned-interior box (no halos).
  mesh::Box interior() const {
    return mesh::Box{0, lnx(), 0, lny(), 0, lnz()};
  }
  /// Interior extended by (ex, ey, ez) halo layers on each side.
  mesh::Box extended(int ex, int ey, int ez) const {
    return mesh::Box{-ex, lnx() + ex, -ey, lny() + ey, -ez, lnz() + ez};
  }

  /// Max |difference| over the region across all four components.
  static double max_abs_diff(const State& a, const State& b,
                             const mesh::Box& region);

 private:
  util::Array3D<double> u_, v_, phi_;
  util::Array2D<double> psa_;
};

}  // namespace ca::state
