// HONEST local measurements (wall time, not the model): the functional
// cores on this machine at small rank counts, reporting per-step time and
// the real message statistics.  Complements the modeled figures: the
// trends here (CA trades messages for redundant flops) are measured, not
// simulated.  Note: logical ranks are threads, so on a single hardware
// core the times show overhead structure rather than parallel speedup.
#include <cstdio>

#include "comm/runtime.hpp"
#include "core/ca_core.hpp"
#include "core/original_core.hpp"
#include "util/config.hpp"
#include "util/timer.hpp"

int main() {
  using namespace ca;
  util::Config cfg_in;
  core::DycoreConfig cfg;
  cfg.nx = cfg_in.get_int("nx", 64);
  cfg.ny = cfg_in.get_int("ny", 44);
  cfg.nz = cfg_in.get_int("nz", 8);
  cfg.M = 3;
  const int steps = cfg_in.get_int("steps", 3);

  std::printf(
      "Functional cores, measured on this host: %dx%dx%d, M = %d, %d "
      "steps\n\n",
      cfg.nx, cfg.ny, cfg.nz, cfg.M, steps);
  std::printf("%6s %10s | %12s %12s %12s | %12s %12s\n", "ranks", "algo",
              "wall [ms]", "msgs/rank", "MB/rank", "colls/rank",
              "ms/step");

  for (int p : {1, 2, 4}) {
    for (int variant = 0; variant < 2; ++variant) {
      double wall = 0.0;
      unsigned long long msgs = 0, bytes = 0, colls = 0;
      comm::Runtime::run(p, [&](comm::Context& ctx) {
        state::InitialOptions ic;
        ic.kind = state::InitialCondition::kPlanetaryWave;
        util::Timer timer;
        if (variant == 0) {
          core::OriginalCore core(cfg, ctx, core::DecompScheme::kYZ,
                                  {1, p, 1});
          auto xi = core.make_state();
          core.initialize(xi, ic);
          timer.reset();
          core.run(xi, steps);
        } else {
          core::CACore core(cfg, ctx, {1, p, 1});
          auto xi = core.make_state();
          core.initialize(xi, ic);
          timer.reset();
          core.run(xi, steps);
        }
        if (ctx.world_rank() == 0) {
          wall = timer.seconds();
          const auto t = ctx.stats().grand_totals();
          msgs = t.p2p_messages;
          bytes = t.p2p_bytes;
          colls = t.collective_calls;
        }
      });
      std::printf("%6d %10s | %12.1f %12llu %12.2f | %12llu %12.1f\n", p,
                  variant == 0 ? "original" : "CA", 1e3 * wall, msgs,
                  static_cast<double>(bytes) / 1e6, colls,
                  1e3 * wall / steps);
    }
  }
  std::printf(
      "\nThe measured message-count collapse (original -> CA) is the\n"
      "paper's mechanism; wall-clock gains appear on machines where those\n"
      "messages cost real latency (see bench_machine_sensitivity).\n");
  return 0;
}
