// Section 5.3 + Theorems 4.1/4.2: the paper's asymptotic cost formulas
// evaluated against the event-simulated per-rank traffic, and the lower
// bounds that drive the decomposition choice.
#include <cstdio>

#include "bench_common.hpp"
#include "perf/lower_bounds.hpp"

int main() {
  using namespace ca;
  using namespace ca::bench;
  const EvalSetup setup = setup_from_env();
  const auto machine = perf::MachineModel::tianhe2();
  const long long K = setup.steps();

  std::printf("Theorem 4.1 (F lower bound) and 4.2 (C lower bound)\n");
  std::printf("%6s %22s %22s\n", "px/pz", "W_F [words/rank]",
              "W_C [words total]");
  for (int q : {1, 2, 4, 8}) {
    std::printf("%6d %22.0f %22.0f\n", q,
                perf::fourier_filter_lower_bound_words(setup.mesh.nx, q) *
                    static_cast<double>(setup.mesh.ny * setup.mesh.nz),
                perf::summation_lower_bound_words(setup.mesh, q));
  }
  std::printf(
      "-> eta_x = 0 at px = 1 cancels the dominant term: the Y-Z\n"
      "   decomposition makes Fourier filtering communication-free.\n\n");

  std::printf(
      "Section 5.3: per-rank words W and synchronizations S over K = %lld "
      "steps (M = %d)\n\n",
      K, setup.M);
  std::printf("%6s | %12s %12s %12s | %12s %12s %12s\n", "p", "W_XY",
              "W_YZ", "W_CA", "S_XY", "S_YZ", "S_CA");
  for (int p : setup.procs) {
    const auto yz = setup.yz_grid(p);
    const auto xy = setup.xy_grid(p);
    std::printf("%6d | %12.3e %12.3e %12.3e | %12.3e %12.3e %12.3e\n", p,
                perf::w_xy(setup.mesh, xy, setup.M, K),
                perf::w_yz(setup.mesh, yz, setup.M, K),
                perf::w_ca(setup.mesh, yz, setup.M, K),
                perf::s_xy(setup.M, K), perf::s_yz(setup.M, K),
                perf::s_ca(setup.M, K));
  }
  std::printf(
      "-> W_XY >> W_YZ > W_CA and S_XY > S_YZ > S_CA, with W_CA/W_YZ = 2/3\n"
      "   exactly (the approximate nonlinear iteration).\n\n");

  // Cross-check the W ordering against the event-simulated volumes of one
  // step at p = 512.
  const int p = 512;
  auto count = [&](const perf::Schedule& s) {
    const auto r = perf::simulate(s, machine);
    return static_cast<double>(
        r.phase_total_bytes(core::kPhaseStencil) +
        [&] {
          std::uint64_t cb = 0;
          for (const auto& rr : r.ranks) {
            auto it = rr.phases.find(core::kPhaseCollective);
            if (it != rr.phases.end()) cb += it->second.collective_bytes;
          }
          return cb;
        }());
  };
  const double v_xy = count(core::build_original_schedule(
      setup.params(setup.xy_grid(p)), core::DecompScheme::kXY, machine));
  const double v_yz = count(core::build_original_schedule(
      setup.params(setup.yz_grid(p)), core::DecompScheme::kYZ, machine));
  const double v_ca = count(
      core::build_ca_schedule(setup.params(setup.yz_grid(p)), machine));
  std::printf(
      "Simulated one-step communication volume at p = %d [MB]:\n"
      "  XY %.1f   YZ %.1f   CA %.1f  (ordering matches Section 5.3: "
      "%s)\n",
      p, v_xy / 1e6, v_yz / 1e6, v_ca / 1e6,
      (v_xy > v_yz && v_yz > v_ca) ? "yes" : "NO");
  return 0;
}
