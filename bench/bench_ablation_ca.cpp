// Ablation of the communication-avoiding algorithm's four design choices
// (Section 4's optimization strategies), each toggled independently at
// the paper's scale: communication/computation overlap, the approximate
// nonlinear iteration, the fused split smoothing, and block-face vs
// extended-face C collectives.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace ca;
  using namespace ca::bench;
  const EvalSetup setup = setup_from_env();
  const auto machine = perf::MachineModel::tianhe2();

  struct Variant {
    const char* name;
    core::CAOptions opts;
  };
  core::CAOptions base;
  core::CAOptions no_overlap = base;
  no_overlap.overlap = false;
  core::CAOptions no_approx = base;
  no_approx.approximate_iteration = false;
  core::CAOptions no_fuse = base;
  no_fuse.fuse_smoothing = false;
  core::CAOptions ext_faces = base;
  ext_faces.fresh_c_on_block_face = false;
  const Variant variants[] = {
      {"CA (all optimizations)", base},
      {"  - overlap off", no_overlap},
      {"  - approximate iteration off", no_approx},
      {"  - smoothing fusion off", no_fuse},
      {"  - C on extended faces (exact mode)", ext_faces},
  };

  std::printf(
      "CA design-choice ablation, 10 model years, Y-Z grids (pz = 8)\n\n");
  std::printf("%-38s", "variant");
  for (int p : setup.procs) std::printf(" %11s", ("p=" + std::to_string(p)).c_str());
  std::printf("\n");

  for (const auto& v : variants) {
    std::printf("%-38s", v.name);
    for (int p : setup.procs) {
      auto sp = setup.params(setup.yz_grid(p));
      sp.ca = v.opts;
      const auto t =
          run_scaled(setup, core::build_ca_schedule(sp, machine), machine);
      std::printf(" %11.0f", t.total);
    }
    std::printf("\n");
  }

  // Reference: the original Y-Z algorithm.
  std::printf("%-38s", "original Y-Z (for reference)");
  for (int p : setup.procs) {
    const auto t = run_scaled(
        setup,
        core::build_original_schedule(setup.params(setup.yz_grid(p)),
                                      core::DecompScheme::kYZ, machine),
        machine);
    std::printf(" %11.0f", t.total);
  }
  std::printf(
      "\n\nEach row is the total modeled runtime [s]; the gap between a "
      "row\nand the first row is that optimization's contribution.\n");
  return 0;
}
