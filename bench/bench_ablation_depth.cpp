// Halo-depth ablation: the number of adaptation iterations M sets the
// deep-halo width (3M) and therefore the redundant-computation /
// communication-frequency trade.  Sweeps M for both algorithms (the
// original's cost also scales with M: 3M exchanges and collectives).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace ca;
  using namespace ca::bench;
  EvalSetup setup = setup_from_env();
  const auto machine = perf::MachineModel::tianhe2();
  const int p = 512;

  std::printf(
      "Halo-depth ablation at p = %d (Y-Z, pz = 8): per-STEP modeled cost "
      "[ms]\n\n",
      p);
  std::printf("%4s | %12s %12s %10s | %14s %14s\n", "M", "original [ms]",
              "CA [ms]", "speedup", "CA stencil MB", "CA redundant");
  std::printf("-----+-------------------------------------+------------"
              "------------------\n");

  for (int M : {1, 2, 3, 4, 5, 6}) {
    auto sp = setup.params(setup.yz_grid(p));
    sp.M = M;
    const auto yz = perf::simulate(
        core::build_original_schedule(sp, core::DecompScheme::kYZ, machine),
        machine);
    const auto ca =
        perf::simulate(core::build_ca_schedule(sp, machine), machine);
    // Redundant-computation factor: CA compute / original compute.
    const double comp_ratio =
        ca.phase_avg_seconds(core::kPhaseCompute) /
        yz.phase_avg_seconds(core::kPhaseCompute);
    std::printf("%4d | %12.2f %12.2f %9.2fx | %14.1f %13.2fx\n", M,
                1e3 * yz.makespan, 1e3 * ca.makespan,
                yz.makespan / ca.makespan,
                static_cast<double>(ca.phase_total_bytes(
                    core::kPhaseStencil)) /
                    1e6,
                comp_ratio);
  }
  std::printf(
      "\nLarger M amortizes the original's per-update exchanges over more\n"
      "work but deepens the CA halos (wider messages, more redundant\n"
      "computation): the CA advantage persists across the paper's M = 3\n"
      "neighborhood.  (M = 1 is modeled only: the functional CA core\n"
      "requires M >= 2.)\n");
  return 0;
}
