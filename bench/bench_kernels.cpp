// Micro-benchmarks of the operator kernels (google-benchmark): the
// adaptation and advection stencils, smoothing, vertical integrals,
// Fourier filtering, and the FFT sizes the model uses.
#include <benchmark/benchmark.h>

#include "core/exchange.hpp"
#include "core/serial_core.hpp"
#include "fft/fft.hpp"
#include "ops/adaptation.hpp"
#include "ops/advection.hpp"
#include "ops/filter.hpp"
#include "ops/smoothing.hpp"
#include "ops/tendency.hpp"
#include "ops/tracer.hpp"
#include "swe/shallow_water.hpp"

namespace {

using namespace ca;

struct KernelFixture {
  KernelFixture(int nx, int ny, int nz)
      : core([&] {
          core::DycoreConfig c;
          c.nx = nx;
          c.ny = ny;
          c.nz = nz;
          return c;
        }()),
        xi(core.make_state()),
        tend(core.make_state()),
        ws(nx, ny, nz, core::halos_for_depth(1)) {
    state::InitialOptions opt;
    opt.kind = state::InitialCondition::kPlanetaryWave;
    core.initialize(xi, opt);
    core.fill_boundaries(xi);
    core::compute_diagnostics(core.op_context(), nullptr, nullptr, xi,
                              xi.interior(), ws, false,
                              comm::AllreduceAlgorithm::kAuto, "bench");
  }
  core::SerialCore core;
  state::State xi, tend;
  ops::DiagWorkspace ws;
};

KernelFixture& fixture() {
  static KernelFixture f(96, 48, 16);
  return f;
}

void BM_AdaptationStencil(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    ops::apply_adaptation(f.core.op_context(), f.xi, f.ws.local, f.ws.vert,
                          f.tend, f.xi.interior());
    benchmark::DoNotOptimize(f.tend.u()(0, 0, 0));
  }
  state.SetItemsProcessed(state.iterations() * 96 * 48 * 16);
}
BENCHMARK(BM_AdaptationStencil);

void BM_AdvectionStencil(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    ops::apply_advection(f.core.op_context(), f.xi, f.ws.local, f.ws.vert,
                         f.tend, f.xi.interior());
    benchmark::DoNotOptimize(f.tend.u()(0, 0, 0));
  }
  state.SetItemsProcessed(state.iterations() * 96 * 48 * 16);
}
BENCHMARK(BM_AdvectionStencil);

void BM_AdvectionStencilSecondOrder(benchmark::State& state) {
  core::DycoreConfig c;
  c.nx = 96;
  c.ny = 48;
  c.nz = 16;
  c.params.x_order = 2;
  static KernelFixture f2 = [] {
    KernelFixture f(96, 48, 16);
    return f;
  }();
  auto ctx = f2.core.op_context();
  ctx.params.x_order = 2;
  for (auto _ : state) {
    ops::apply_advection(ctx, f2.xi, f2.ws.local, f2.ws.vert, f2.tend,
                         f2.xi.interior());
    benchmark::DoNotOptimize(f2.tend.u()(0, 0, 0));
  }
  state.SetItemsProcessed(state.iterations() * 96 * 48 * 16);
}
BENCHMARK(BM_AdvectionStencilSecondOrder);

void BM_Smoothing(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    ops::apply_smoothing(f.core.op_context(), f.xi, f.tend,
                         f.xi.interior());
    benchmark::DoNotOptimize(f.tend.phi()(0, 0, 0));
  }
  state.SetItemsProcessed(state.iterations() * 96 * 48 * 16);
}
BENCHMARK(BM_Smoothing);

void BM_VerticalIntegrals(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    core::compute_diagnostics(f.core.op_context(), nullptr, nullptr, f.xi,
                              f.xi.interior(), f.ws, false,
                              comm::AllreduceAlgorithm::kAuto, "bench");
    benchmark::DoNotOptimize(f.ws.vert.sdot(0, 0, 0));
  }
  state.SetItemsProcessed(state.iterations() * 96 * 48 * 16);
}
BENCHMARK(BM_VerticalIntegrals);

void BM_FourierFilterStep(benchmark::State& state) {
  auto& f = fixture();
  ops::FourierFilter filt(f.core.op_context());
  for (auto _ : state) {
    filt.apply_local(f.core.op_context(), f.xi, f.xi.interior());
    benchmark::DoNotOptimize(f.xi.u()(0, 0, 0));
  }
}
BENCHMARK(BM_FourierFilterStep);

void BM_FftForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  fft::Plan plan(n);
  std::vector<fft::cplx> data(n);
  for (std::size_t i = 0; i < n; ++i)
    data[i] = fft::cplx{std::sin(0.1 * static_cast<double>(i)), 0.0};
  for (auto _ : state) {
    plan.forward(data);
    benchmark::DoNotOptimize(data[0]);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_FftForward)->Arg(256)->Arg(720)->Arg(1024)->Arg(1440);

void BM_SerialStep(benchmark::State& state) {
  core::DycoreConfig c;
  c.nx = 48;
  c.ny = 24;
  c.nz = 8;
  c.M = 3;
  core::SerialCore core(c);
  auto xi = core.make_state();
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kZonalJet;
  core.initialize(xi, opt);
  for (auto _ : state) {
    core.step(xi);
    benchmark::DoNotOptimize(xi.u()(0, 0, 0));
  }
}
BENCHMARK(BM_SerialStep);

void BM_TracerAdvection(benchmark::State& state) {
  auto& f = fixture();
  const bool upwind = state.range(0) == 1;
  ops::TracerAdvection adv(f.core.op_context(), f.xi, f.ws.local,
                           f.ws.vert,
                           upwind ? ops::TracerScheme::kUpwindMonotone
                                  : ops::TracerScheme::kSkewSymmetric);
  util::Array3D<double> q(96, 48, 16, f.xi.u().halo());
  util::Array3D<double> dq(96, 48, 16, f.xi.u().halo());
  for (int k = 0; k < 16; ++k)
    for (int j = 0; j < 48; ++j)
      for (int i = 0; i < 96; ++i) q(i, j, k) = std::sin(0.1 * i * j + k);
  ops::fill_tracer_boundaries(f.core.op_context(), q);
  const mesh::Box window{0, 96, 0, 48, 0, 16};
  for (auto _ : state) {
    adv.apply(q, dq, window);
    benchmark::DoNotOptimize(dq(0, 0, 0));
  }
  state.SetItemsProcessed(state.iterations() * 96 * 48 * 16);
}
BENCHMARK(BM_TracerAdvection)->Arg(0)->Arg(1);

void BM_ShallowWaterStep(benchmark::State& state) {
  swe::SweConfig cfg;
  cfg.nx = 96;
  cfg.ny = 48;
  swe::ShallowWaterCore core(cfg);
  auto s = core.make_state();
  core.initialize(s, swe::SweInitial::kGravityWave);
  for (auto _ : state) {
    core.step(s);
    benchmark::DoNotOptimize(s.h(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * 96 * 48);
}
BENCHMARK(BM_ShallowWaterStep);

void BM_RealFftVsComplex(benchmark::State& state) {
  const std::size_t n = 720;
  const bool real = state.range(0) == 1;
  fft::Plan cplan(n);
  fft::RealPlan rplan(n);
  std::vector<double> line(n);
  std::vector<fft::cplx> cbuf(n), spec(n / 2 + 1);
  for (std::size_t i = 0; i < n; ++i)
    line[i] = std::sin(0.01 * static_cast<double>(i));
  for (auto _ : state) {
    if (real) {
      rplan.forward(line, spec);
      rplan.inverse(spec, line);
      benchmark::DoNotOptimize(line[0]);
    } else {
      for (std::size_t i = 0; i < n; ++i) cbuf[i] = fft::cplx{line[i], 0.0};
      cplan.forward(cbuf);
      cplan.inverse(cbuf);
      benchmark::DoNotOptimize(cbuf[0]);
    }
  }
}
BENCHMARK(BM_RealFftVsComplex)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
