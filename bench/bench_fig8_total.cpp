// Figure 8: total runtime of the dynamical core over the 10-model-year
// run for the three algorithms, with the paper's headline numbers: -54%
// vs X-Y at p = 512; ~113,500 s / ~46,300 s saved at p = 1024 vs X-Y and
// Y-Z respectively; 1.4x average speedup over Y-Z.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace ca;
  using namespace ca::bench;
  const EvalSetup setup = setup_from_env();
  const auto machine = perf::MachineModel::tianhe2();

  std::printf("Figure 8: total dynamical-core runtime, 10 model years [s]\n\n");
  std::printf("%6s %14s %14s %14s %10s %10s\n", "p", "XY", "YZ", "CA",
              "vs XY", "vs YZ");
  std::printf("%.6s-%.14s-%.14s-%.14s-%.10s-%.10s\n", "------",
              "--------------", "--------------", "--------------",
              "----------", "----------");

  double speedup_sum = 0.0;
  for (int p : setup.procs) {
    const auto xy = run_scaled(
        setup,
        core::build_original_schedule(setup.params(setup.xy_grid(p)),
                                      core::DecompScheme::kXY, machine),
        machine, "fig8_xy_p" + std::to_string(p));
    const auto yz = run_scaled(
        setup,
        core::build_original_schedule(setup.params(setup.yz_grid(p)),
                                      core::DecompScheme::kYZ, machine),
        machine, "fig8_yz_p" + std::to_string(p));
    const auto ca = run_scaled(
        setup, core::build_ca_schedule(setup.params(setup.yz_grid(p)),
                                       machine),
        machine, "fig8_ca_p" + std::to_string(p));
    speedup_sum += yz.total / ca.total;
    std::printf("%6d %14.0f %14.0f %14.0f %9.1f%% %9.1f%%\n", p, xy.total,
                yz.total, ca.total, 100.0 * (1.0 - ca.total / xy.total),
                100.0 * (1.0 - ca.total / yz.total));
    if (p == 512)
      std::printf(
          "        -> reduction vs X-Y at p=512: %.0f%% "
          "(paper: 54%% at most)\n",
          100.0 * (1.0 - ca.total / xy.total));
    if (p == 1024)
      std::printf(
          "        -> saved at p=1024: %.0f s vs X-Y, %.0f s vs Y-Z "
          "(paper: ~113,500 s and ~46,300 s)\n",
          xy.total - ca.total, yz.total - ca.total);
  }
  std::printf(
      "\nAverage CA speedup over Y-Z original: %.2fx (paper: 1.4x)\n",
      speedup_sum / setup.procs.size());
  return 0;
}
