// Sensitivity of the CA-vs-original verdict to the machine balance:
// sweeps the per-message cost (alpha) and the per-rank effective
// bandwidth, reporting the CA/YZ runtime ratio — where the
// communication-avoiding reorganization wins, where it loses to its own
// redundant computation, and where the crossover falls.  (The paper's
// Section 5.3 asserts the win persists at larger p; this bench maps the
// machine-parameter region where that holds.)
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace ca;
  using namespace ca::bench;
  const EvalSetup setup = setup_from_env();
  const int p = 512;

  const double alphas[] = {1e-6, 1e-5, 5e-5, 1.5e-4, 5e-4};
  const double bandwidths[] = {5e7, 2.5e8, 1e9, 5e9};

  std::printf(
      "CA/YZ total-runtime ratio at p = %d (values < 1: CA wins)\n\n", p);
  std::printf("%12s |", "alpha \\ BW");
  for (double bw : bandwidths) std::printf(" %9.0e", bw);
  std::printf("\n");

  for (double a : alphas) {
    std::printf("%12.0e |", a);
    for (double bw : bandwidths) {
      perf::MachineModel m = perf::MachineModel::tianhe2();
      m.alpha = a;
      m.beta = 1.0 / bw;
      const auto yz = perf::simulate(
          core::build_original_schedule(setup.params(setup.yz_grid(p)),
                                        core::DecompScheme::kYZ, m),
          m);
      const auto ca = perf::simulate(
          core::build_ca_schedule(setup.params(setup.yz_grid(p)), m), m);
      std::printf(" %9.2f", ca.makespan / yz.makespan);
    }
    std::printf("\n");
  }
  std::printf(
      "\nLatency-dominated machines (large alpha) reward the frequency\n"
      "reduction most; on very fat networks the redundant computation\n"
      "makes the original scheme competitive again — the crossover the\n"
      "communication-avoiding literature predicts.\n");
  return 0;
}
