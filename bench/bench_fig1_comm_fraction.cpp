// Figure 1: percentage of time spent in communication vs computation in
// the (original) dynamical core, mesh 720x360x30, one MPI process per
// core.  The paper's bars show communication dominating and growing with
// the process count.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace ca;
  using namespace ca::bench;
  const EvalSetup setup = setup_from_env();
  const auto machine = perf::MachineModel::tianhe2();

  std::printf(
      "Figure 1: communication vs computation share of the dynamical core\n"
      "mesh %lldx%lldx%lld, M = %d, original algorithm (Y-Z and X-Y)\n\n",
      setup.mesh.nx, setup.mesh.ny, setup.mesh.nz, setup.M);
  std::printf("%6s | %-22s | %-22s\n", "", "Y-Z decomposition",
              "X-Y decomposition");
  std::printf("%6s | %10s %10s | %10s %10s\n", "p", "comm %", "comp %",
              "comm %", "comp %");
  std::printf("-------+-----------------------+----------------------\n");

  for (int p : setup.procs) {
    double share[2][2];
    int col = 0;
    for (auto scheme : {core::DecompScheme::kYZ, core::DecompScheme::kXY}) {
      const auto grid = scheme == core::DecompScheme::kYZ
                            ? setup.yz_grid(p)
                            : setup.xy_grid(p);
      const auto sched = core::build_original_schedule(setup.params(grid),
                                                       scheme, machine);
      const auto result = perf::simulate(sched, machine);
      // Average per-rank shares (the paper's bars are per-run fractions).
      double comm = 0.0, comp = 0.0;
      for (const auto& r : result.ranks) {
        double c = 0.0, w = 0.0;
        for (const auto& [name, acct] : r.phases) {
          if (name == core::kPhaseCompute) {
            w += acct.seconds;
          } else {
            c += acct.seconds;
          }
        }
        comm += c;
        comp += w;
      }
      share[col][0] = 100.0 * comm / (comm + comp);
      share[col][1] = 100.0 * comp / (comm + comp);
      ++col;
    }
    std::printf("%6d | %9.1f%% %9.1f%% | %9.1f%% %9.1f%%\n", p, share[0][0],
                share[0][1], share[1][0], share[1][1]);
  }
  std::printf(
      "\nPaper reference: communication time dominates the dynamical core\n"
      "runtime and its share grows with p (Fig. 1 shows ~55-85%%).\n");
  return 0;
}
