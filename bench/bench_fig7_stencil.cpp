// Figure 7: communication time of the stencil updates over the
// 10-model-year run — X-Y vs Y-Z original (13 exchanges per step) vs the
// communication-avoiding algorithm (2 deep exchanges per step, overlapped
// with computation).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace ca;
  using namespace ca::bench;
  const EvalSetup setup = setup_from_env();
  const auto machine = perf::MachineModel::tianhe2();

  std::printf("Figure 7: stencil-communication time, 10 model years [s]\n\n");
  std::printf("%6s %14s %14s %14s %12s\n", "p", "XY", "YZ", "CA", "YZ/CA");
  std::printf("%.6s-%.14s-%.14s-%.14s-%.12s\n", "------", "--------------",
              "--------------", "--------------", "------------");

  double speedup_sum = 0.0;
  double yz1024 = 0.0, ca1024 = 0.0;
  for (int p : setup.procs) {
    const auto xy = run_scaled(
        setup,
        core::build_original_schedule(setup.params(setup.xy_grid(p)),
                                      core::DecompScheme::kXY, machine),
        machine);
    const auto yz = run_scaled(
        setup,
        core::build_original_schedule(setup.params(setup.yz_grid(p)),
                                      core::DecompScheme::kYZ, machine),
        machine);
    const auto ca = run_scaled(
        setup, core::build_ca_schedule(setup.params(setup.yz_grid(p)),
                                       machine),
        machine);
    const double speedup = yz.stencil / ca.stencil;
    speedup_sum += speedup;
    if (p == 1024) {
      yz1024 = yz.stencil;
      ca1024 = ca.stencil;
    }
    std::printf("%6d %14.0f %14.0f %14.0f %11.2fx\n", p, xy.stencil,
                yz.stencil, ca.stencil, speedup);
  }
  std::printf(
      "\nAverage YZ->CA stencil speedup: %.2fx (paper: 3x-6x, avg 3.9x)\n",
      speedup_sum / setup.procs.size());
  if (yz1024 > 0.0)
    std::printf(
        "At p = 1024: YZ %.0f s -> CA %.0f s "
        "(paper: 17,400 s -> 2,800 s)\n",
        yz1024, ca1024);
  std::printf(
      "Paper reference: the communication frequency drops from 13 to 2\n"
      "per step; the CA variant sends slightly MORE volume (corner halos,\n"
      "deep layers) but far fewer, overlapped messages.\n");
  return 0;
}
