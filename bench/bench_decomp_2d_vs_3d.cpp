// Section 2.2 / 4.2 claim: "although the 2-dimensional decomposition
// strategies impact the parallelism of atmospheric models, they are
// always more efficient than 3-dimensional decomposition in real-world
// applications."  This bench compares the modeled runtime of the original
// algorithm under Y-Z, X-Y, and full 3-D decompositions at equal p.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace ca;
  using namespace ca::bench;
  const EvalSetup setup = setup_from_env();
  const auto machine = perf::MachineModel::tianhe2();

  std::printf(
      "2-D vs 3-D decomposition, original algorithm, 10 model years [s]\n\n");
  std::printf("%6s %14s %14s %14s | %12s\n", "p", "YZ (2-D)", "XY (2-D)",
              "3-D", "best 2-D/3-D");
  std::printf("%.6s-%.14s-%.14s-%.14s-+-%.12s\n", "------",
              "--------------", "--------------", "--------------",
              "------------");

  struct Grid3D {
    int p;
    perf::ProcGrid grid;
  };
  // 3-D grids with px a small power of two and pz = 4 (nx % px == 0).
  const Grid3D grids[] = {
      {128, {4, 8, 4}},
      {256, {4, 16, 4}},
      {512, {8, 16, 4}},
      {1024, {8, 32, 4}},
  };

  for (const auto& g : grids) {
    const auto yz = run_scaled(
        setup,
        core::build_original_schedule(setup.params(setup.yz_grid(g.p)),
                                      core::DecompScheme::kYZ, machine),
        machine);
    const auto xy = run_scaled(
        setup,
        core::build_original_schedule(setup.params(setup.xy_grid(g.p)),
                                      core::DecompScheme::kXY, machine),
        machine);
    const auto d3 = run_scaled(
        setup,
        core::build_original_schedule(setup.params(g.grid),
                                      core::DecompScheme::k3D, machine),
        machine);
    const double best2d = std::min(yz.total, xy.total);
    std::printf("%6d %14.0f %14.0f %14.0f | %11.2fx\n", g.p, yz.total,
                xy.total, d3.total, d3.total / best2d);
  }
  std::printf(
      "\nThe 3-D scheme pays BOTH collective families (F along x and C\n"
      "along z) plus 26-neighbor halos; the best 2-D scheme (Y-Z) avoids\n"
      "the dominant one — the paper's argument for ruling 3-D out.\n");
  return 0;
}
