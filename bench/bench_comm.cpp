// Micro-benchmarks of the message-passing runtime (google-benchmark):
// point-to-point latency/bandwidth, the allreduce algorithm variants, and
// the halo exchange engine.
#include <benchmark/benchmark.h>

#include "comm/collectives.hpp"
#include "comm/fault.hpp"
#include "comm/runtime.hpp"
#include "comm/topology.hpp"
#include "core/dycore_config.hpp"
#include "core/exchange.hpp"
#include "mesh/decomp.hpp"

namespace {

using namespace ca;

void BM_PingPong(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    comm::Runtime::run(2, [n](comm::Context& ctx) {
      std::vector<double> buf(n, 1.0);
      const auto& w = ctx.world();
      for (int round = 0; round < 8; ++round) {
        if (ctx.world_rank() == 0) {
          ctx.send_values<double>(w, 1, 0, buf);
          ctx.recv_values<double>(w, 1, 1, buf);
        } else {
          ctx.recv_values<double>(w, 0, 0, buf);
          ctx.send_values<double>(w, 0, 1, buf);
        }
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * 16 *
                          static_cast<long>(n * sizeof(double)));
}
BENCHMARK(BM_PingPong)->Arg(16)->Arg(1024)->Arg(65536);

void BM_AllreduceRing(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t n = 4096;
  for (auto _ : state) {
    comm::Runtime::run(p, [n](comm::Context& ctx) {
      std::vector<double> in(n, 1.0), out(n);
      comm::allreduce<double>(ctx, ctx.world(), in, out,
                              comm::ReduceOp::kSum,
                              comm::AllreduceAlgorithm::kRing);
    });
  }
}
BENCHMARK(BM_AllreduceRing)->Arg(2)->Arg(4)->Arg(8);

void BM_AllreduceRecursiveDoubling(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t n = 4096;
  for (auto _ : state) {
    comm::Runtime::run(p, [n](comm::Context& ctx) {
      std::vector<double> in(n, 1.0), out(n);
      comm::allreduce<double>(ctx, ctx.world(), in, out,
                              comm::ReduceOp::kSum,
                              comm::AllreduceAlgorithm::kRecursiveDoubling);
    });
  }
}
BENCHMARK(BM_AllreduceRecursiveDoubling)->Arg(2)->Arg(4)->Arg(8);

void BM_HaloExchangeShallow(benchmark::State& state) {
  for (auto _ : state) {
    comm::Runtime::run(4, [](comm::Context& ctx) {
      mesh::LatLonMesh mesh(48, 32, 8);
      auto topo = comm::make_cart(ctx, ctx.world(), {1, 2, 2},
                                  {true, false, false});
      mesh::DomainDecomp d(mesh, {1, 2, 2}, topo.coords);
      state::State s(d.lnx(), d.lny(), d.lnz(), core::halos_for_depth(1));
      s.fill(1.0);
      core::HaloExchanger ex(ctx, topo, d);
      std::vector<core::ExchangeItem> items{
          {&s.u(), nullptr, 0, 2, 1},
          {&s.v(), nullptr, 0, 2, 1},
          {&s.phi(), nullptr, 0, 2, 1},
          {nullptr, &s.psa(), 0, 3, 0}};
      for (int round = 0; round < 4; ++round) ex.exchange(items, "bench");
    });
  }
}
BENCHMARK(BM_HaloExchangeShallow);

void BM_HaloExchangeDeep(benchmark::State& state) {
  // The CA deep exchange: 3M+1-wide halos in one round.
  for (auto _ : state) {
    comm::Runtime::run(2, [](comm::Context& ctx) {
      mesh::LatLonMesh mesh(48, 32, 8);
      auto topo = comm::make_cart(ctx, ctx.world(), {1, 2, 1},
                                  {true, false, false});
      mesh::DomainDecomp d(mesh, {1, 2, 1}, topo.coords);
      state::State s(d.lnx(), d.lny(), d.lnz(), core::halos_for_depth(9));
      s.fill(1.0);
      core::HaloExchanger ex(ctx, topo, d);
      std::vector<core::ExchangeItem> items{
          {&s.u(), nullptr, 0, 10, 0},
          {&s.v(), nullptr, 0, 10, 0},
          {&s.phi(), nullptr, 0, 10, 0},
          {nullptr, &s.psa(), 0, 11, 0}};
      for (int round = 0; round < 4; ++round) ex.exchange(items, "bench");
    });
  }
}
BENCHMARK(BM_HaloExchangeDeep);

// Fault-injection overhead probes: compare BM_PingPong (no RunOptions at
// all) against the same traffic with (a) a null/disabled plan — this must
// be indistinguishable from the baseline — and (b) an active plan with
// zero-probability rules, which pays the per-message stamping (seq,
// checksum) and the receiver poll bookkeeping but injects nothing.
void pingpong_under(benchmark::State& state, const comm::RunOptions& opts) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    comm::Runtime::run(2, opts, [n](comm::Context& ctx) {
      std::vector<double> buf(n, 1.0);
      const auto& w = ctx.world();
      for (int round = 0; round < 8; ++round) {
        if (ctx.world_rank() == 0) {
          ctx.send_values<double>(w, 1, 0, buf);
          ctx.recv_values<double>(w, 1, 1, buf);
        } else {
          ctx.recv_values<double>(w, 0, 0, buf);
          ctx.send_values<double>(w, 0, 1, buf);
        }
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * 16 *
                          static_cast<long>(n * sizeof(double)));
}

void BM_PingPongFaultLayerDisabled(benchmark::State& state) {
  pingpong_under(state, comm::RunOptions{});
}
BENCHMARK(BM_PingPongFaultLayerDisabled)->Arg(16)->Arg(1024)->Arg(65536);

void BM_PingPongFaultLayerArmedZeroProb(benchmark::State& state) {
  comm::FaultPlan plan(1);
  comm::FaultRule r;
  r.kind = comm::FaultKind::kDrop;
  r.probability = 0.0;  // armed but never fires
  plan.add_rule(r);
  comm::RunOptions opts;
  opts.faults = &plan;
  pingpong_under(state, opts);
}
BENCHMARK(BM_PingPongFaultLayerArmedZeroProb)->Arg(16)->Arg(1024)->Arg(65536);

void BM_CommunicatorSplit(benchmark::State& state) {
  for (auto _ : state) {
    comm::Runtime::run(8, [](comm::Context& ctx) {
      auto sub = ctx.split(ctx.world(), ctx.world_rank() % 2,
                           ctx.world_rank());
      benchmark::DoNotOptimize(sub.size());
    });
  }
}
BENCHMARK(BM_CommunicatorSplit);

}  // namespace

BENCHMARK_MAIN();
