// Shared setup of the figure-reproduction benches: the paper's evaluation
// configuration (Section 5.1) — 720x360x30 mesh (50 km), M = 3, 10 model
// years on Tianhe-2 — and the process grids for p = 128..1024.
#pragma once

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include <fstream>

#include "core/schedule_builders.hpp"
#include "perf/report.hpp"
#include "perf/event_sim.hpp"
#include "util/config.hpp"
#include "util/proc_grid.hpp"

namespace ca::bench {

struct EvalSetup {
  perf::MeshShape mesh{720, 360, 30};
  int M = 3;
  /// Advection (outer) time step [s]; 10 model years of steps.
  double dt_step = 600.0;
  double model_years = 10.0;
  std::vector<int> procs{128, 256, 512, 1024};

  long long steps() const {
    return static_cast<long long>(model_years * 365.0 * 86400.0 / dt_step);
  }

  /// Y-Z process grid for p ranks.  Prefers pz = 8 (nz = 30 practice);
  /// when 8 does not divide p (or nz < 8) it falls back to the largest
  /// divisor of p that is <= min(nz, 8), so py * pz == p always holds.
  /// (Shared with the service's degraded-pool reshaping: util/proc_grid.)
  perf::ProcGrid yz_grid(int p) const {
    const auto g = util::yz_grid(p, mesh.nz);
    return perf::ProcGrid{g[0], g[1], g[2]};
  }
  /// X-Y grid: most-square factorization with px a power of two, halved
  /// until it divides p so px * py == p always holds.
  perf::ProcGrid xy_grid(int p) const {
    const auto g = util::xy_grid(p);
    return perf::ProcGrid{g[0], g[1], g[2]};
  }

  core::ScheduleParams params(perf::ProcGrid grid) const {
    core::ScheduleParams sp;
    sp.mesh = mesh;
    sp.grid = grid;
    sp.M = M;
    sp.steps = 1;  // one periodic step, scaled to the full run
    return sp;
  }

  /// Scale a one-step time to the full 10-model-year run.
  double full_run(double per_step) const {
    return per_step * static_cast<double>(steps());
  }
};

/// Reads overrides from the environment (CA_AGCM_YEARS, CA_AGCM_DT, ...).
inline EvalSetup setup_from_env() {
  util::Config cfg;
  EvalSetup s;
  s.model_years = cfg.get_double("years", s.model_years);
  s.dt_step = cfg.get_double("dt", s.dt_step);
  s.M = cfg.get_int("m", s.M);
  return s;
}

struct PhaseTimes {
  double collective = 0.0;
  double stencil = 0.0;
  double compute = 0.0;
  double total = 0.0;
};

/// When CA_AGCM_CSV names a file, every simulated configuration appends
/// its per-phase summary rows there (for external plotting).
inline void maybe_dump_csv(const std::string& label,
                           const perf::SimResult& result) {
  static const char* path = std::getenv("CA_AGCM_CSV");
  if (path == nullptr) return;
  static std::ofstream out(path, std::ios::app);
  perf::append_csv(out, label, result);
}

/// Simulates one step of `schedule` and scales every phase to the full run.
inline PhaseTimes run_scaled(const EvalSetup& setup,
                             const perf::Schedule& schedule,
                             const perf::MachineModel& machine,
                             const std::string& csv_label = "") {
  const auto result = perf::simulate(schedule, machine);
  if (!csv_label.empty()) maybe_dump_csv(csv_label, result);
  PhaseTimes t;
  t.collective =
      setup.full_run(result.phase_max_seconds(core::kPhaseCollective));
  t.stencil = setup.full_run(result.phase_max_seconds(core::kPhaseStencil));
  t.compute = setup.full_run(result.phase_max_seconds(core::kPhaseCompute));
  t.total = setup.full_run(result.makespan);
  return t;
}

}  // namespace ca::bench
