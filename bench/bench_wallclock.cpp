// Real-time (wall-clock) benchmark of the functional cores: steps the
// serial, original, and communication-avoiding dynamical cores on a small
// mesh across 1xN / Nx1 / NxM process grids, in both halo-exchange
// granularities (per-item and coalesced) and with the fault-injection
// layer off and on, then emits BENCH_wallclock.json.
//
// Unlike the figure benches this measures THIS machine, not the event
// simulator: per-phase seconds come from each rank's util::PhaseTimers,
// message/byte counts from comm::CommStats, and buffer-pool behavior from
// CommStats::pool().  Every coalesced run is checked bitwise against its
// per-item twin, and the steady-state window (after warm-up) must perform
// zero pool-growing acquires.
//
// A final section measures checkpoint bytes per cadence: delta sidecar
// chains (util::CheckpointSession) against full-every-cadence writes, on
// a steady state (kRestIsothermal, where the chain must cut bytes >= 3x)
// and an active planetary wave (the degenerate end: every block dirty).
// Both modes must reconstruct the writer's final state bitwise from disk.
//
// Configuration (key=value args, or CA_AGCM_* env — see README):
//   nx, ny, nz, m   mesh and iteration count     (default 32x32x8, M=2;
//                   ny/py must stay >= 3M + 1 for the CA core's halos)
//   steps           measured steps               (default 2)
//   warmup          warm-up steps before measure (default 2)
//   ranks           logical ranks of the parallel runs (default 4)
//   out             output path                  (default BENCH_wallclock.json)
// The emitted file is re-parsed and schema-checked before exit, so a
// nonzero status means the bench (or its JSON) is broken — this is what
// the bench-smoke ctest target runs.
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "comm/runtime.hpp"
#include "obs/trace.hpp"
#include "core/ca_core.hpp"
#include "core/diagnostics.hpp"
#include "core/exchange.hpp"
#include "core/health.hpp"
#include "core/original_core.hpp"
#include "core/serial_core.hpp"
#include "util/checkpoint.hpp"
#include "util/config.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace {

using namespace ca;

constexpr const char* kSchema = "ca-agcm/bench-wallclock/v1";

enum class CoreKind { kSerial, kOriginal, kCA };

struct BenchCase {
  std::string label;
  CoreKind core = CoreKind::kSerial;
  core::DecompScheme scheme = core::DecompScheme::kYZ;
  std::array<int, 3> dims{1, 1, 1};
  bool coalesce = false;
  bool faults = false;
  bool overlap = false;  // comm.overlap_exchange: async post + sub-ranges
};

struct RunResult {
  double wall = 0.0;       // slowest rank's measured-step seconds
  double exchange = 0.0;   // pack/unpack seconds, max over ranks
  double exchange_wait = 0.0;  // blocked-on-message seconds, max over ranks
  double collective = 0.0; // max over ranks
  std::uint64_t messages = 0, bytes = 0, collectives = 0;  // summed
  std::uint64_t pool_allocations = 0, pool_reuses = 0;     // summed
  std::uint64_t steady_allocations = 0;  // pool growth after warm-up
  std::uint64_t exchange_messages = 0;   // one begin()'s sends, summed
  state::State global;  // gathered final state (parallel runs)
};

RunResult run_case(const core::DycoreConfig& cfg, const BenchCase& bc,
                   int warmup, int steps, comm::FaultPlan* plan) {
  RunResult res;
  state::InitialOptions ic;
  ic.kind = state::InitialCondition::kPlanetaryWave;

  if (bc.core == CoreKind::kSerial) {
    core::SerialCore core(cfg);
    auto xi = core.make_state();
    core.initialize(xi, ic);
    core.run(xi, warmup);
    util::Timer timer;
    core.run(xi, steps);
    res.wall = timer.seconds();
    res.global = std::move(xi);
    return res;
  }

  const int p = bc.dims[0] * bc.dims[1] * bc.dims[2];
  comm::RunOptions opts;
  opts.faults = plan;
  std::mutex mu;
  comm::Runtime::run(p, opts, [&](comm::Context& ctx) {
    core::DycoreConfig c = cfg;
    c.coalesce_exchange = bc.coalesce;
    c.overlap_exchange = bc.overlap;
    auto drive = [&](auto& core) {
      auto xi = core.make_state();
      core.initialize(xi, ic);
      core.run(xi, warmup);
      // Steady-state window: pool growth beyond this point is a
      // regression (capacities converged during warm-up).
      const std::uint64_t allocs_after_warmup =
          ctx.stats().pool().allocations;
      ctx.timers().clear();
      util::Timer timer;
      core.run(xi, steps);
      const double wall = timer.seconds();
      state::State global =
          core::gather_global(core.op_context(), ctx, core.topology(), xi);
      const auto totals = ctx.stats().grand_totals();
      const auto& pool = ctx.stats().pool();
      std::lock_guard<std::mutex> lock(mu);
      res.wall = std::max(res.wall, wall);
      res.exchange = std::max(res.exchange, ctx.timers().total("exchange"));
      res.exchange_wait =
          std::max(res.exchange_wait, ctx.timers().total("exchange_wait"));
      res.collective =
          std::max(res.collective, ctx.timers().total("collective"));
      res.messages += totals.p2p_messages;
      res.bytes += totals.p2p_bytes;
      res.collectives += totals.collective_calls;
      res.pool_allocations += pool.allocations;
      res.pool_reuses += pool.reuses;
      res.steady_allocations += pool.allocations - allocs_after_warmup;
      res.exchange_messages += core.exchanger().last_message_count();
      if (ctx.world_rank() == 0) res.global = std::move(global);
    };
    if (bc.core == CoreKind::kOriginal) {
      core::OriginalCore core(c, ctx, bc.scheme, bc.dims);
      drive(core);
    } else {
      core::CACore core(c, ctx, bc.dims);
      drive(core);
    }
  });
  return res;
}

const char* core_name(CoreKind k) {
  switch (k) {
    case CoreKind::kSerial:
      return "serial";
    case CoreKind::kOriginal:
      return "original";
    default:
      return "ca";
  }
}

const char* scheme_name(const BenchCase& bc) {
  if (bc.core == CoreKind::kSerial) return "serial";
  if (bc.core == CoreKind::kCA) return "yz";
  switch (bc.scheme) {
    case core::DecompScheme::kXY:
      return "xy";
    case core::DecompScheme::kYZ:
      return "yz";
    default:
      return "3d";
  }
}

/// Schema check of an emitted document; returns a description of the
/// first problem, or empty on success.
std::string validate(const util::Json& doc) {
  if (!doc.is_object()) return "root is not an object";
  const util::Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kSchema)
    return "missing/wrong schema tag";
  const util::Json* configs = doc.find("configs");
  if (configs == nullptr || !configs->is_array() || configs->size() == 0)
    return "missing configs array";
  for (const auto& c : configs->items()) {
    for (const char* key : {"label", "core", "scheme", "wall_seconds"})
      if (c.find(key) == nullptr)
        return std::string("config missing '") + key + "'";
    const util::Json* phases = c.find("phases");
    if (phases == nullptr || !phases->is_object())
      return "config missing phases object";
    for (const char* key :
         {"exchange", "exchange_wait", "collective", "compute"})
      if (phases->find(key) == nullptr)
        return std::string("phases missing '") + key + "'";
  }
  const util::Json* ckpt = doc.find("checkpoint");
  if (ckpt == nullptr || !ckpt->is_array() || ckpt->size() == 0)
    return "missing checkpoint array";
  for (const auto& c : ckpt->items())
    for (const char* key :
         {"label", "chain_cap", "cadences", "bytes_written",
          "full_equivalent_bytes", "bytes_ratio_full_over_actual",
          "bitwise_resume"})
      if (c.find(key) == nullptr)
        return std::string("checkpoint entry missing '") + key + "'";
  const util::Json* obs = doc.find("obs");
  if (obs == nullptr || !obs->is_object()) return "missing obs object";
  for (const char* key :
       {"disabled_span_seconds", "spans_per_step", "overhead_fraction"})
    if (obs->find(key) == nullptr)
      return std::string("obs missing '") + key + "'";
  const util::Json* health = doc.find("health");
  if (health == nullptr || !health->is_object())
    return "missing health object";
  for (const char* key :
       {"check_seconds", "reference_step_seconds", "overhead_fraction"})
    if (health->find(key) == nullptr)
      return std::string("health missing '") + key + "'";
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  util::Config cfg_in = util::Config::from_args(argc, argv);
  core::DycoreConfig cfg;
  cfg.nx = cfg_in.get_int("nx", 32);
  cfg.ny = cfg_in.get_int("ny", 32);
  cfg.nz = cfg_in.get_int("nz", 8);
  cfg.M = cfg_in.get_int("m", 2);
  // Ordered z reduction keeps the per-item/coalesced comparison bitwise.
  cfg.z_allreduce = comm::AllreduceAlgorithm::kLinearOrdered;
  const int steps = cfg_in.get_int("steps", 2);
  // Two warm-up steps: the CA core's first step exchanges a smaller item
  // set (no previous state yet), so pool capacities converge at step 2.
  const int warmup = cfg_in.get_int("warmup", 2);
  const int ranks = cfg_in.get_int("ranks", 4);
  const std::string out_path =
      cfg_in.get_string("out", "BENCH_wallclock.json");

  if (ranks < 2 || ranks % 2 != 0) {
    std::fprintf(stderr, "ranks must be even and >= 2 (got %d)\n", ranks);
    return 1;
  }

  // 1xN, Nx1, and NxM grids (the CA core requires px == 1, so the Nx1
  // x-decomposition runs on the original core).  Labels carry the full
  // px x py x pz so per-item/coalesced twins pair up unambiguously.
  auto dims_tag = [](std::array<int, 3> d) {
    return std::to_string(d[0]) + "x" + std::to_string(d[1]) + "x" +
           std::to_string(d[2]);
  };
  std::vector<BenchCase> cases;
  cases.push_back({"serial", CoreKind::kSerial});
  for (bool coalesce : {false, true}) {
    const char* tag = coalesce ? "_coalesced" : "";
    const std::array<int, 3> yz1{1, ranks, 1};
    const std::array<int, 3> xy{ranks, 1, 1};
    const std::array<int, 3> yz2{1, ranks / 2, 2};
    cases.push_back({"original_yz_" + dims_tag(yz1) + tag,
                     CoreKind::kOriginal, core::DecompScheme::kYZ, yz1,
                     coalesce});
    cases.push_back({"original_xy_" + dims_tag(xy) + tag,
                     CoreKind::kOriginal, core::DecompScheme::kXY, xy,
                     coalesce});
    cases.push_back({"original_yz_" + dims_tag(yz2) + tag,
                     CoreKind::kOriginal, core::DecompScheme::kYZ, yz2,
                     coalesce});
    cases.push_back({"ca_yz_" + dims_tag(yz1) + tag, CoreKind::kCA,
                     core::DecompScheme::kYZ, yz1, coalesce});
  }
  // Overlap (comm.overlap_exchange): the same grids with the exchange
  // posted at pass start and drained per boundary sub-range, so the wait
  // for each message hides behind the interior compute.  Counts and the
  // final state must match the off twin exactly; only the split between
  // exchange_wait and compute may move.
  {
    const std::array<int, 3> yz1{1, ranks, 1};
    const std::array<int, 3> xy{ranks, 1, 1};
    const std::array<int, 3> yz2{1, ranks / 2, 2};
    cases.push_back({"original_yz_" + dims_tag(yz1) + "_overlap",
                     CoreKind::kOriginal, core::DecompScheme::kYZ, yz1,
                     false, false, /*overlap=*/true});
    cases.push_back({"original_xy_" + dims_tag(xy) + "_overlap",
                     CoreKind::kOriginal, core::DecompScheme::kXY, xy,
                     false, false, /*overlap=*/true});
    cases.push_back({"original_yz_" + dims_tag(yz2) + "_overlap",
                     CoreKind::kOriginal, core::DecompScheme::kYZ, yz2,
                     false, false, /*overlap=*/true});
    cases.push_back({"ca_yz_" + dims_tag(yz1) + "_overlap", CoreKind::kCA,
                     core::DecompScheme::kYZ, yz1, false, false,
                     /*overlap=*/true});
    cases.push_back({"ca_yz_" + dims_tag(yz1) + "_coalesced_overlap",
                     CoreKind::kCA, core::DecompScheme::kYZ, yz1, true,
                     false, /*overlap=*/true});
  }
  // Fault-layer overhead: recoverable delay + duplicate injection on the
  // CA core, both granularities (recovery must preserve the answer).
  for (bool coalesce : {false, true}) {
    cases.push_back({"ca_yz_" + dims_tag({1, ranks, 1}) +
                         (coalesce ? "_coalesced" : "") + "_faults",
                     CoreKind::kCA, core::DecompScheme::kYZ, {1, ranks, 1},
                     coalesce, /*faults=*/true});
  }

  std::printf("wall-clock bench: %dx%dx%d, M=%d, %d+%d steps, %d ranks\n\n",
              cfg.nx, cfg.ny, cfg.nz, cfg.M, warmup, steps, ranks);
  std::printf("%-34s %9s %9s %9s %9s %9s %7s\n", "config", "wall[ms]",
              "exch[ms]", "wait[ms]", "coll[ms]", "msgs", "pool+");

  util::Json doc = util::Json::object();
  doc["schema"] = kSchema;
  util::Json mesh = util::Json::object();
  mesh["nx"] = cfg.nx;
  mesh["ny"] = cfg.ny;
  mesh["nz"] = cfg.nz;
  doc["mesh"] = std::move(mesh);
  doc["M"] = cfg.M;
  doc["steps"] = steps;
  doc["warmup"] = warmup;
  doc["ranks"] = ranks;
  util::Json configs = util::Json::array();

  // Per-item twins of each coalesced case, for the bitwise check.
  std::vector<std::pair<std::string, const state::State*>> references;
  std::vector<RunResult> results(cases.size());
  bool ok = true;

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const BenchCase& bc = cases[i];
    comm::FaultPlan plan(/*seed=*/42);
    if (bc.faults) {
      comm::FaultRule delay;
      delay.kind = comm::FaultKind::kDelay;
      delay.probability = 0.05;
      delay.param = 2;
      plan.add_rule(delay);
      comm::FaultRule dup;
      dup.kind = comm::FaultKind::kDuplicate;
      dup.probability = 0.05;
      plan.add_rule(dup);
    }
    results[i] =
        run_case(cfg, bc, warmup, steps, bc.faults ? &plan : nullptr);
    RunResult& r = results[i];

    // Compare against the per-item twin: same case label minus the
    // "_coalesced" / "_faults" decorations.
    double diff_vs_per_item = -1.0;
    if (bc.core != CoreKind::kSerial) {
      std::string base = bc.label;
      auto strip = [&](const std::string& suffix) {
        const auto at = base.find(suffix);
        if (at != std::string::npos) base.erase(at, suffix.size());
      };
      strip("_faults");
      strip("_overlap");
      strip("_coalesced");
      if (base == bc.label) {
        references.emplace_back(base, &r.global);
      } else {
        for (const auto& [label, ref] : references) {
          if (label != base) continue;
          diff_vs_per_item = state::State::max_abs_diff(
              r.global, *ref, ref->interior());
          if (diff_vs_per_item != 0.0) {
            std::fprintf(stderr,
                         "FAIL: %s differs from %s (max |diff| = %g)\n",
                         bc.label.c_str(), base.c_str(), diff_vs_per_item);
            ok = false;
          }
          break;
        }
      }
    }

    const double compute = std::max(
        0.0, r.wall - r.exchange - r.exchange_wait - r.collective);
    std::printf("%-34s %9.2f %9.2f %9.2f %9.2f %9llu %7llu\n",
                bc.label.c_str(), 1e3 * r.wall, 1e3 * r.exchange,
                1e3 * r.exchange_wait, 1e3 * r.collective,
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.steady_allocations));

    util::Json entry = util::Json::object();
    entry["label"] = bc.label;
    entry["core"] = core_name(bc.core);
    entry["scheme"] = scheme_name(bc);
    util::Json dims = util::Json::array();
    for (int d : bc.dims) dims.push_back(d);
    entry["dims"] = std::move(dims);
    entry["coalesce"] = bc.coalesce;
    entry["faults"] = bc.faults;
    entry["overlap"] = bc.overlap;
    entry["wall_seconds"] = r.wall;
    entry["per_step_seconds"] = r.wall / steps;
    util::Json phases = util::Json::object();
    phases["exchange"] = r.exchange;
    phases["exchange_wait"] = r.exchange_wait;
    phases["collective"] = r.collective;
    phases["compute"] = compute;
    entry["phases"] = std::move(phases);
    util::Json comm = util::Json::object();
    comm["messages"] = r.messages;
    comm["bytes"] = r.bytes;
    comm["collective_calls"] = r.collectives;
    comm["exchange_messages_last_round"] = r.exchange_messages;
    entry["comm"] = std::move(comm);
    util::Json pool = util::Json::object();
    pool["allocations"] = r.pool_allocations;
    pool["reuses"] = r.pool_reuses;
    pool["steady_state_allocations"] = r.steady_allocations;
    entry["pool"] = std::move(pool);
    if (diff_vs_per_item >= 0.0) {
      entry["max_abs_diff_vs_per_item"] = diff_vs_per_item;
      entry["bitwise_identical"] = diff_vs_per_item == 0.0;
    }
    configs.push_back(std::move(entry));
  }
  doc["configs"] = std::move(configs);

  // Cross-mode invariants beyond the bitwise check: coalescing must cut
  // messages per exchange round, and the steady-state window must not
  // grow any pool.
  for (std::size_t i = 0; i < cases.size(); ++i) {
    if (cases[i].core == CoreKind::kSerial || cases[i].faults) continue;
    if (results[i].steady_allocations != 0) {
      std::fprintf(stderr,
                   "FAIL: %s grew exchange pools after warm-up (%llu)\n",
                   cases[i].label.c_str(),
                   static_cast<unsigned long long>(
                       results[i].steady_allocations));
      ok = false;
    }
    if (!cases[i].coalesce) continue;
    for (std::size_t j = 0; j < cases.size(); ++j) {
      if (cases[j].faults || cases[j].coalesce) continue;
      if (cases[j].core != cases[i].core ||
          cases[j].dims != cases[i].dims ||
          cases[j].scheme != cases[i].scheme ||
          cases[j].overlap != cases[i].overlap)
        continue;
      if (results[j].exchange_messages > 0 &&
          results[i].exchange_messages >= results[j].exchange_messages) {
        std::fprintf(
            stderr, "FAIL: %s did not reduce messages (%llu vs %llu)\n",
            cases[i].label.c_str(),
            static_cast<unsigned long long>(results[i].exchange_messages),
            static_cast<unsigned long long>(results[j].exchange_messages));
        ok = false;
      }
    }
  }

  // Overlap hiding report (informational — wall-clock on a shared machine
  // is too noisy for a hard gate): each overlap case against its off twin.
  for (std::size_t i = 0; i < cases.size(); ++i) {
    if (!cases[i].overlap || cases[i].faults) continue;
    for (std::size_t j = 0; j < cases.size(); ++j) {
      if (cases[j].overlap || cases[j].faults ||
          cases[j].core != cases[i].core || cases[j].dims != cases[i].dims ||
          cases[j].scheme != cases[i].scheme ||
          cases[j].coalesce != cases[i].coalesce)
        continue;
      std::printf(
          "overlap %-30s wait %7.2f ms (off twin %7.2f ms)%s\n",
          cases[i].label.c_str(), 1e3 * results[i].exchange_wait,
          1e3 * results[j].exchange_wait,
          results[i].exchange_wait < results[j].exchange_wait
              ? "  [hidden behind interior compute]"
              : "");
      break;
    }
  }

  // Checkpoint bytes per cadence: delta sidecar chains against
  // full-every-cadence writes, on the serial core so each case is one
  // deterministic file.  kRestIsothermal is an exact rest state the
  // dycore preserves, so almost no block goes dirty between cadences —
  // the chain must cut checkpoint bytes by at least 3x there.  The
  // planetary wave is the degenerate end (every block moves every step,
  // deltas carry the whole image plus index overhead) and is reported
  // for parity, not gated.  Either way the reconstructed tip must be
  // bitwise identical to the writer's state AND to the full-write
  // twin's, or the byte savings are meaningless.
  {
    namespace fs = std::filesystem;
    const std::string ckpt_dir =
        (fs::temp_directory_path() /
         ("bench_wallclock_ckpt." + std::to_string(::getpid())))
            .string();
    fs::create_directories(ckpt_dir);
    const int cadences = 8;
    struct CkptCase {
      const char* label;
      state::InitialCondition ic;
      int chain_cap;
    };
    const CkptCase ckpt_cases[] = {
        {"steady_full", state::InitialCondition::kRestIsothermal, 0},
        {"steady_delta", state::InitialCondition::kRestIsothermal, 8},
        {"wave_full", state::InitialCondition::kPlanetaryWave, 0},
        {"wave_delta", state::InitialCondition::kPlanetaryWave, 8},
    };
    std::printf("\n%-16s %11s %11s %7s %5s %6s %8s\n", "checkpoint",
                "bytes", "full-eq", "ratio", "full", "delta", "bitwise");
    util::Json ckpts = util::Json::array();
    state::State full_tip;  // the preceding *_full twin's reconstructed tip
    for (const CkptCase& cc : ckpt_cases) {
      core::SerialCore core(cfg);
      auto xi = core.make_state();
      state::InitialOptions ic;
      ic.kind = cc.ic;
      core.initialize(xi, ic);
      core.run(xi, warmup);
      const std::string path =
          ckpt_dir + "/" + std::string(cc.label) + ".ckpt";
      util::CheckpointSession session(
          path, {.chain_cap = cc.chain_cap, .block_bytes = 4096});
      for (int cad = 1; cad <= cadences; ++cad) {
        core.run(xi, 1);
        session.write(core.mesh(), core.decomp(), xi, warmup + cad,
                      120.0 * (warmup + cad));
      }
      const util::CheckpointWriteStats& st = session.stats();

      // Resume gate: the chain (or plain file) must rebuild the exact
      // bytes the writer last held.
      state::State r = core.make_state();
      const auto tip =
          util::read_checkpoint_chain(path, core.mesh(), core.decomp(), r);
      const double diff = state::State::max_abs_diff(xi, r, xi.interior());
      if (diff != 0.0 || tip.header.step != warmup + cadences) {
        std::fprintf(stderr,
                     "FAIL: %s resume not bitwise (step %lld, |diff| %g)\n",
                     cc.label, static_cast<long long>(tip.header.step),
                     diff);
        ok = false;
      }
      if (cc.chain_cap == 0) {
        if (st.delta_writes != 0) {
          std::fprintf(stderr, "FAIL: %s wrote deltas with the chain off\n",
                       cc.label);
          ok = false;
        }
        full_tip = std::move(r);
      } else {
        // Delta mode is never worse than full mode: a cadence whose
        // delta would cost >= the full file writes a fresh base instead,
        // so the active case degenerates to full writes (delta_writes
        // may be 0) but can never overshoot the full-equivalent bytes.
        if (st.bytes_written > st.full_equivalent_bytes) {
          std::fprintf(stderr,
                       "FAIL: %s wrote more bytes than full mode "
                       "(%llu vs %llu)\n",
                       cc.label,
                       static_cast<unsigned long long>(st.bytes_written),
                       static_cast<unsigned long long>(
                           st.full_equivalent_bytes));
          ok = false;
        }
        // Same core, same steps: the delta chain must land on the same
        // bytes the full-every-cadence twin put on disk.
        const double dvf =
            state::State::max_abs_diff(full_tip, r, full_tip.interior());
        if (dvf != 0.0) {
          std::fprintf(stderr,
                       "FAIL: %s diverges from its full-write twin "
                       "(max |diff| = %g)\n",
                       cc.label, dvf);
          ok = false;
        }
      }
      const double ratio = static_cast<double>(st.full_equivalent_bytes) /
                           static_cast<double>(st.bytes_written);
      if (std::string(cc.label) == "steady_delta" && ratio < 3.0) {
        std::fprintf(stderr,
                     "FAIL: steady-state delta chain saved only %.2fx "
                     "(>= 3x required)\n",
                     ratio);
        ok = false;
      }
      std::printf("%-16s %11llu %11llu %6.1fx %5llu %6llu %8s\n", cc.label,
                  static_cast<unsigned long long>(st.bytes_written),
                  static_cast<unsigned long long>(st.full_equivalent_bytes),
                  ratio, static_cast<unsigned long long>(st.full_writes),
                  static_cast<unsigned long long>(st.delta_writes),
                  diff == 0.0 ? "yes" : "NO");

      util::Json e = util::Json::object();
      e["label"] = cc.label;
      e["initial"] = cc.ic == state::InitialCondition::kRestIsothermal
                         ? "rest_isothermal"
                         : "planetary_wave";
      e["chain_cap"] = cc.chain_cap;
      e["cadences"] = cadences;
      e["block_bytes"] = 4096;
      e["bytes_written"] = st.bytes_written;
      e["full_equivalent_bytes"] = st.full_equivalent_bytes;
      e["bytes_ratio_full_over_actual"] = ratio;
      e["full_writes"] = st.full_writes;
      e["delta_writes"] = st.delta_writes;
      e["bitwise_resume"] = diff == 0.0;
      ckpts.push_back(std::move(e));
    }
    doc["checkpoint"] = std::move(ckpts);
    fs::remove_all(ckpt_dir);
  }

  // Observability overhead gate: the tracing hooks stay in the build even
  // with obs.trace off, so their residual cost — one branch per span —
  // must be invisible next to a dynamics step.  Measure (a) the micro
  // cost of a disabled span and (b) how many spans one step of the 1xN
  // original core actually opens (counted on a traced twin run), and
  // require (a) x (b) < 1% of that case's tracing-off per-step wall.
  {
    obs::TraceOptions off_opts;
    off_opts.trace = false;
    off_opts.dump_on_failure = false;
    obs::Tracer off_tracer;
    off_tracer.configure(off_opts, /*tid=*/0);
    constexpr int kSpanIters = 1 << 21;
    util::Timer span_timer;
    for (int i = 0; i < kSpanIters; ++i) {
      obs::Span s = off_tracer.span("noop", "bench");
    }
    const double disabled_span_seconds = span_timer.seconds() / kSpanIters;

    // Traced twin: same mesh, same step count, trace on with a ring big
    // enough that nothing drops; the busiest rank's recorded-event count
    // bounds the spans any one critical path opens per step.
    obs::TraceCollector collector;
    comm::RunOptions topts;
    topts.obs.trace = true;
    topts.obs.dump_on_failure = false;
    topts.obs.ring_events = 1 << 16;
    topts.trace_sink = &collector;
    std::uint64_t max_rank_events = 0;
    std::mutex obs_mu;
    comm::Runtime::run(ranks, topts, [&](comm::Context& ctx) {
      core::OriginalCore core(cfg, ctx, core::DecompScheme::kYZ,
                              {1, ranks, 1});
      auto xi = core.make_state();
      state::InitialOptions ic;
      ic.kind = state::InitialCondition::kPlanetaryWave;
      core.initialize(xi, ic);
      core.run(xi, steps);
      std::lock_guard<std::mutex> lock(obs_mu);
      max_rank_events =
          std::max<std::uint64_t>(max_rank_events, ctx.tracer().recorded());
    });
    const double spans_per_step =
        static_cast<double>(max_rank_events) / steps;

    // Tracing-off reference: the matching case measured above.
    const std::string ref_label =
        "original_yz_" + dims_tag({1, ranks, 1});
    double ref_step_seconds = 0.0;
    for (std::size_t i = 0; i < cases.size(); ++i)
      if (cases[i].label == ref_label)
        ref_step_seconds = results[i].wall / steps;
    const double overhead_seconds = disabled_span_seconds * spans_per_step;
    const double overhead_fraction =
        ref_step_seconds > 0.0 ? overhead_seconds / ref_step_seconds : 0.0;
    std::printf(
        "\nobs overhead: %.1f ns/disabled span x %.0f spans/step = "
        "%.3f us/step (%.4f%% of %s's %.2f ms step)\n",
        1e9 * disabled_span_seconds, spans_per_step, 1e6 * overhead_seconds,
        1e2 * overhead_fraction, ref_label.c_str(), 1e3 * ref_step_seconds);
    if (ref_step_seconds <= 0.0) {
      std::fprintf(stderr, "FAIL: obs gate found no tracing-off twin %s\n",
                   ref_label.c_str());
      ok = false;
    } else if (overhead_fraction >= 0.01) {
      std::fprintf(stderr,
                   "FAIL: disabled-tracing overhead %.4f%% of a step "
                   "(< 1%% required)\n",
                   1e2 * overhead_fraction);
      ok = false;
    }
    if (collector.event_count() == 0) {
      std::fprintf(stderr, "FAIL: traced twin flushed no events\n");
      ok = false;
    }

    util::Json obs = util::Json::object();
    obs["disabled_span_seconds"] = disabled_span_seconds;
    obs["spans_per_step"] = spans_per_step;
    obs["overhead_seconds_per_step"] = overhead_seconds;
    obs["reference_case"] = ref_label;
    obs["reference_step_seconds"] = ref_step_seconds;
    obs["overhead_fraction"] = overhead_fraction;
    obs["traced_twin_events"] = collector.event_count();
    doc["obs"] = std::move(obs);
  }

  // Numerical-health sentinel overhead gate: at the service's default
  // cadence (a check every step) the sentinel's whole per-step cost — one
  // local_diagnostics sweep plus the verdict logic — must stay under 1%
  // of a dynamics step.  At cadence 0 the campaign loop never evaluates
  // any of it (the entire block sits behind health.enabled()), so the
  // disabled overhead is zero by construction and is reported as such.
  {
    core::SerialCore score(cfg);
    auto xi = score.make_state();
    state::InitialOptions ic;
    ic.kind = state::InitialCondition::kPlanetaryWave;
    score.initialize(xi, ic);
    score.run(xi, 1);  // measure on a physical state, not the IC
    core::HealthOptions hopts;
    hopts.cadence = 1;
    core::HealthSentinel sentinel(hopts);
    constexpr int kCheckIters = 200;
    util::Timer check_timer;
    for (int i = 0; i < kCheckIters; ++i) {
      const core::GlobalDiag d =
          core::local_diagnostics(score.op_context(), xi);
      if (!sentinel.check(d).empty()) {
        std::fprintf(stderr,
                     "FAIL: sentinel tripped on a healthy bench state\n");
        ok = false;
        break;
      }
    }
    const double check_seconds = check_timer.seconds() / kCheckIters;

    // Reference: the serial case's per-step wall measured above (the
    // sentinel check is rank-local up to one small allreduce, so the
    // serial step is the honest denominator).
    double ref_step_seconds = 0.0;
    for (std::size_t i = 0; i < cases.size(); ++i)
      if (cases[i].label == "serial") ref_step_seconds = results[i].wall / steps;
    const double overhead_fraction =
        ref_step_seconds > 0.0 ? check_seconds / ref_step_seconds : 0.0;
    std::printf(
        "health sentinel: %.2f us/check at cadence 1 (%.4f%% of the serial "
        "%.2f ms step; exactly 0 at cadence 0)\n",
        1e6 * check_seconds, 1e2 * overhead_fraction, 1e3 * ref_step_seconds);
    if (ref_step_seconds <= 0.0) {
      std::fprintf(stderr, "FAIL: health gate found no serial reference\n");
      ok = false;
    } else if (overhead_fraction >= 0.01) {
      std::fprintf(stderr,
                   "FAIL: sentinel overhead %.4f%% of a step at cadence 1 "
                   "(< 1%% required)\n",
                   1e2 * overhead_fraction);
      ok = false;
    }

    util::Json health = util::Json::object();
    health["check_seconds"] = check_seconds;
    health["reference_case"] = "serial";
    health["reference_step_seconds"] = ref_step_seconds;
    health["overhead_fraction"] = overhead_fraction;
    health["disabled_overhead_fraction"] = 0.0;  // cadence 0: nothing runs
    doc["health"] = std::move(health);
  }

  {
    std::ofstream out(out_path);
    out << doc.dump(2) << "\n";
  }
  std::printf("\nwrote %s\n", out_path.c_str());

  // Self-check: the file must re-parse and satisfy the schema.
  std::ifstream in(out_path);
  std::stringstream buf;
  buf << in.rdbuf();
  try {
    const util::Json parsed = util::Json::parse(buf.str());
    const std::string problem = validate(parsed);
    if (!problem.empty()) {
      std::fprintf(stderr, "FAIL: emitted JSON invalid: %s\n",
                   problem.c_str());
      ok = false;
    }
  } catch (const util::JsonError& e) {
    std::fprintf(stderr, "FAIL: emitted JSON does not parse: %s\n",
                 e.what());
    ok = false;
  }
  return ok ? 0 : 1;
}
