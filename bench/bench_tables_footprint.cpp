// Tables 1-3: prints the measured stencil footprint of every term, in the
// paper's layout (term | x offsets | y offsets | z offsets), from the
// same perturbation probing the tests assert.
#include <cstdio>

#include <functional>
#include <sstream>

#include "core/exchange.hpp"
#include "core/serial_core.hpp"
#include "ops/adaptation.hpp"
#include "ops/advection.hpp"
#include "ops/footprint.hpp"
#include "ops/smoothing.hpp"
#include "ops/tendency.hpp"

namespace {

using namespace ca;

std::string fmt_offsets(const std::set<int>& offs) {
  std::ostringstream out;
  bool first = true;
  for (int o : offs) {
    if (!first) out << ", ";
    first = false;
    if (o == 0) {
      out << "0";
    } else {
      out << (o > 0 ? "+" : "") << o;
    }
  }
  return out.str();
}

}  // namespace

int main() {
  core::DycoreConfig c;
  c.nx = 16;
  c.ny = 12;
  c.nz = 6;
  core::SerialCore core(c);
  auto xi = core.make_state();
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kPlanetaryWave;
  core.initialize(xi, opt);
  for (int j = 0; j < xi.lny(); ++j)
    for (int i = 0; i < xi.lnx(); ++i)
      xi.psa()(i, j) = 300.0 * std::sin(0.7 * i + 0.3 * j);
  core.fill_boundaries(xi);
  ops::DiagWorkspace ws(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  core::compute_diagnostics(core.op_context(), nullptr, nullptr, xi,
                            xi.interior(), ws, false,
                            comm::AllreduceAlgorithm::kAuto, "bench");

  ops::AdaptationTerms a(core.op_context(), xi, ws.local, ws.vert);
  ops::AdvectionTerms l(core.op_context(), xi, ws.local, ws.vert);
  constexpr int kI = 7, kJ = 5, kK = 2;

  auto probe = [&](std::function<double()> eval) {
    ops::FootprintProbe p;
    p.inputs3d = {&xi.u(), &xi.v(), &xi.phi(), &ws.vert.phi_geo,
                  &ws.vert.sdot, &ws.vert.w, &ws.local.div};
    p.inputs2d = {&xi.psa(), &ws.local.pes, &ws.local.pfac,
                  &ws.vert.divsum};
    p.eval = std::move(eval);
    return ops::measure_footprint(p, kI, kJ, kK, 4);
  };

  struct Row {
    const char* name;
    std::function<double()> eval;
  };
  const Row table1[] = {
      {"P_lambda^(1)", [&] { return a.p_lambda1(kI, kJ, kK); }},
      {"P_lambda^(2)", [&] { return a.p_lambda2(kI, kJ, kK); }},
      {"f*V", [&] { return a.coriolis_u(kI, kJ, kK); }},
      {"P_theta^(1)", [&] { return a.p_theta1(kI, kJ, kK); }},
      {"P_theta^(2)", [&] { return a.p_theta2(kI, kJ, kK); }},
      {"f*U", [&] { return a.coriolis_v(kI, kJ, kK); }},
      {"Omega^(1)", [&] { return a.omega1(kI, kJ, kK); }},
      {"Omega_theta^(2)", [&] { return a.omega2_theta(kI, kJ, kK); }},
      {"Omega_lambda^(2)", [&] { return a.omega2_lambda(kI, kJ, kK); }},
      {"D_sa", [&] { return a.d_sa(kI, kJ); }},
  };
  const Row table2[] = {
      {"L1(U)", [&] { return l.l1_u(kI, kJ, kK); }},
      {"L2(U)", [&] { return l.l2_u(kI, kJ, kK); }},
      {"L3(U)", [&] { return l.l3_u(kI, kJ, kK); }},
      {"L1(V)", [&] { return l.l1_v(kI, kJ, kK); }},
      {"L2(V)", [&] { return l.l2_v(kI, kJ, kK); }},
      {"L3(V)", [&] { return l.l3_v(kI, kJ, kK); }},
      {"L1(Phi)", [&] { return l.l1_phi(kI, kJ, kK); }},
      {"L2(Phi)", [&] { return l.l2_phi(kI, kJ, kK); }},
      {"L3(Phi)", [&] { return l.l3_phi(kI, kJ, kK); }},
  };

  std::printf("Table 1: measured stencil footprints, adaptation process\n");
  std::printf("%-18s | %-22s | %-14s | %-10s\n", "term", "x", "y", "z");
  for (const auto& row : table1) {
    auto fp = probe(row.eval);
    std::printf("%-18s | %-22s | %-14s | %-10s\n", row.name,
                fmt_offsets(ops::x_offsets(fp)).c_str(),
                fmt_offsets(ops::y_offsets(fp)).c_str(),
                fmt_offsets(ops::z_offsets(fp)).c_str());
  }
  std::printf("\nTable 2: measured stencil footprints, advection process\n");
  std::printf("%-18s | %-22s | %-14s | %-10s\n", "term", "x", "y", "z");
  for (const auto& row : table2) {
    auto fp = probe(row.eval);
    std::printf("%-18s | %-22s | %-14s | %-10s\n", row.name,
                fmt_offsets(ops::x_offsets(fp)).c_str(),
                fmt_offsets(ops::y_offsets(fp)).c_str(),
                fmt_offsets(ops::z_offsets(fp)).c_str());
  }

  std::printf("\nTable 3: measured stencil footprints, smoothing\n");
  auto out = core.make_state();
  {
    ops::FootprintProbe p;
    p.inputs3d = {&xi.u()};
    p.eval = [&] {
      ops::apply_smoothing(core.op_context(), xi, out,
                           mesh::Box{kI, kI + 1, kJ, kJ + 1, kK, kK + 1});
      return out.u()(kI, kJ, kK);
    };
    auto fp = ops::measure_footprint(p, kI, kJ, kK, 3);
    std::printf("%-18s | %-22s | %-14s | %-10s\n", "P1 (U, V)",
                fmt_offsets(ops::x_offsets(fp)).c_str(),
                fmt_offsets(ops::y_offsets(fp)).c_str(),
                fmt_offsets(ops::z_offsets(fp)).c_str());
  }
  {
    ops::FootprintProbe p;
    p.inputs3d = {&xi.phi()};
    p.eval = [&] {
      ops::apply_smoothing(core.op_context(), xi, out,
                           mesh::Box{kI, kI + 1, kJ, kJ + 1, kK, kK + 1});
      return out.phi()(kI, kJ, kK);
    };
    auto fp = ops::measure_footprint(p, kI, kJ, kK, 3);
    std::printf("%-18s | %-22s | %-14s | %-10s\n", "P2 (Phi, p'_sa)",
                fmt_offsets(ops::x_offsets(fp)).c_str(),
                fmt_offsets(ops::y_offsets(fp)).c_str(),
                fmt_offsets(ops::z_offsets(fp)).c_str());
  }
  std::printf(
      "\nNote: z couplings of P^(1)/Omega^(1) (paper: k, k+1) appear here\n"
      "through the C operator's vertical integrals (phi', W), not as\n"
      "direct state reads — see DESIGN.md.\n");
  return 0;
}
