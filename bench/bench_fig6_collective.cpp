// Figure 6: time for collective communication over the 10-model-year run —
// F under X-Y decomposition vs C under Y-Z vs the communication-avoiding
// algorithm (approximate nonlinear iteration: 2M instead of 3M executions
// of C, ~30% of the collective volume removed).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace ca;
  using namespace ca::bench;
  const EvalSetup setup = setup_from_env();
  const auto machine = perf::MachineModel::tianhe2();

  std::printf(
      "Figure 6: collective-communication time, 10 model years [s]\n\n");
  std::printf("%6s %14s %14s %14s %12s\n", "p", "XY (F)", "YZ (C)",
              "CA", "YZ/CA");
  std::printf("%.6s-%.14s-%.14s-%.14s-%.12s\n", "------",
              "--------------", "--------------", "--------------",
              "------------");

  double speedup_sum = 0.0;
  for (int p : setup.procs) {
    const auto xy = run_scaled(
        setup,
        core::build_original_schedule(setup.params(setup.xy_grid(p)),
                                      core::DecompScheme::kXY, machine),
        machine);
    const auto yz = run_scaled(
        setup,
        core::build_original_schedule(setup.params(setup.yz_grid(p)),
                                      core::DecompScheme::kYZ, machine),
        machine);
    const auto ca = run_scaled(
        setup, core::build_ca_schedule(setup.params(setup.yz_grid(p)),
                                       machine),
        machine);
    const double speedup = yz.collective / ca.collective;
    speedup_sum += speedup;
    std::printf("%6d %14.0f %14.0f %14.0f %11.2fx\n", p, xy.collective,
                yz.collective, ca.collective, speedup);
  }
  std::printf(
      "\nAverage YZ->CA collective speedup: %.2fx "
      "(paper: 1.4x on average)\n",
      speedup_sum / setup.procs.size());
  std::printf(
      "Paper reference: F under X-Y costs far more than C under Y-Z\n"
      "(n_x >> n_z); the approximate iteration removes one third of the\n"
      "summations along z.\n");
  return 0;
}
