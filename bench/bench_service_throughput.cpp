// Wall-clock benchmark of the ensemble service: seven job mixes over one
// rank pool, emitting BENCH_service.json.
//
//   uniform        identical medium jobs; measures raw multiplexing
//                  throughput and must keep >= 2 jobs in flight at once
//   bimodal        one long, preemptible, low-priority run plus a stream
//                  of short high-priority jobs; the long job must be
//                  preempted at least once, resume from its checkpoint,
//                  and still finish bit-for-bit identical to a solo
//                  (uninterrupted) run of the same spec
//   fault_injected a transient-fault job that must fail once and complete
//                  on the reseeded retry, plus a doomed probability-1
//                  corruption job that must exhaust its attempt budget
//                  and end terminally failed
//   rank_failure   a node-resident kill takes out one pool rank mid-run;
//                  the heartbeat watchdog detects it, the pool
//                  quarantines the rank and resumes the victim from its
//                  checkpoint on healthy ranks — while the service keeps
//                  >= 2 jobs in flight (scheduling never pauses for the
//                  recovery), and the victim still lands bit-for-bit on
//                  the fault-free trajectory
//   overlap        a stream of comm.overlap_exchange jobs (async halo
//                  posts drained per boundary sub-range); the probe job
//                  must land bit-for-bit on an overlap-off solo run of
//                  the same spec — overlap changes the schedule, never
//                  the answer
//   replicated_failover
//                  the rank_failure scenario with in-memory buddy
//                  replication on: the victim must recover from buddy
//                  RAM (ram_restores >= 1, zero disk restores) and land
//                  bitwise; a runner-level twin then times the SAME
//                  resume from buddy RAM vs from the on-disk chain and
//                  reports both latencies (hard assert on provenance and
//                  I/O counters, soft on the latency ordering — timing)
//   bursty_elastic the same bursty workload run with service.elastic off
//                  and on: a high-priority burst pins half the pool while
//                  a wide preemptible CA job waits; with elasticity the
//                  job is squeezed onto the idle ranks (bitwise, exact
//                  mode keeps pz) and measured utilization must be
//                  strictly higher than the baseline leg's
//
// Each mix runs through a fresh EnsembleService; the per-mix service
// report (schema ca-agcm/service-report/v2) is embedded verbatim in the
// output and re-validated after the emitted file is parsed back, so a
// nonzero exit status means the service, the invariants above, or the
// JSON are broken — this is what the bench-service-smoke ctest runs.
//
// Configuration (key=value args, or CA_AGCM_* env — see README):
//   nx, ny, nz, m   mesh                        (default 24x16x8, M=2)
//   slots           worker slots                (default 3)
//   budget          rank budget of the pool     (default 4)
//   jobs            uniform-mix job count       (default 6)
//   steps           steps per uniform job       (default 6)
//   long_steps      steps of the bimodal long job (default 20)
//   out             output path                 (default BENCH_service.json)
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "comm/fault.hpp"
#include "obs/trace.hpp"
#include "service/replica.hpp"
#include "service/runner.hpp"
#include "service/service.hpp"
#include "util/checkpoint.hpp"
#include "util/config.hpp"
#include "util/json.hpp"

namespace {

using namespace ca;
using Clock = std::chrono::steady_clock;

constexpr const char* kSchema = "ca-agcm/bench-service/v1";

/// Seed shared with tests/service_soak_test.cpp: with a corrupt rule of
/// p = 0.02 scoped src 0 -> dst 1 on the original {1,2,1} core, attempt 1
/// (seed 11) injects one corruption and dies, attempt 2 (seed 12) is
/// clean.  Found by scanning; stable while the cores' traffic pattern is.
constexpr std::uint64_t kTransientSeed = 11;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

core::DycoreConfig base_config(const util::Config& in) {
  core::DycoreConfig c;
  c.nx = in.get_int("nx", 24);
  c.ny = in.get_int("ny", 16);
  c.nz = in.get_int("nz", 8);
  c.M = in.get_int("m", 2);
  c.z_allreduce = comm::AllreduceAlgorithm::kLinearOrdered;
  return c;
}

service::JobSpec original_job(const core::DycoreConfig& cfg,
                              const std::string& name, int steps,
                              std::array<int, 3> dims, int priority) {
  service::JobSpec j;
  j.name = name;
  j.core = service::CoreKind::kOriginal;
  j.config = cfg;
  j.dims = dims;
  j.steps = steps;
  j.priority = priority;
  return j;
}

/// Solo reference through the identical attempt machinery, fault-free
/// and uninterrupted.
state::State solo_state(service::JobSpec spec, const std::string& prefix) {
  spec.faults = comm::FaultPlan();
  spec.node_faults.clear();
  spec.checkpoint_every = 0;
  spec.comm = comm::RunOptions{};
  auto r = service::run_attempt(spec, 1, 0, prefix, {});
  if (!r.completed(spec.steps)) {
    std::fprintf(stderr, "FAIL: solo reference '%s' broke: %s\n",
                 spec.name.c_str(), r.error.c_str());
    std::exit(1);
  }
  return std::move(r.global);
}

bool await_running(service::EnsembleService& svc, int id) {
  const auto start = Clock::now();
  while (svc.state(id) == service::JobState::kQueued) {
    if (seconds_since(start) > 30.0) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return svc.state(id) == service::JobState::kRunning;
}

struct MixOutcome {
  std::string name;
  double wall = 0.0;
  int submitted = 0;
  int completed = 0;
  int failed = 0;
  std::int64_t steps_done = 0;
  util::Json report = util::Json::object();
  /// Mix-specific extra numeric columns (e.g. the failover mix's
  /// recovery latencies), emitted verbatim into the mix's JSON entry.
  std::vector<std::pair<std::string, double>> extra;
  bool ok = true;
};

void summarize(MixOutcome& mix, service::EnsembleService& svc,
               const std::vector<int>& ids) {
  for (int id : ids) {
    const auto st = svc.state(id);
    mix.completed += st == service::JobState::kCompleted;
    mix.failed += st == service::JobState::kFailed;
  }
  mix.submitted = static_cast<int>(ids.size());
  mix.report = svc.report();
  const std::string problem = service::validate_report(mix.report);
  if (!problem.empty()) {
    std::fprintf(stderr, "FAIL: %s report invalid: %s\n", mix.name.c_str(),
                 problem.c_str());
    mix.ok = false;
  }
  for (const auto& e : mix.report.find("jobs")->items())
    mix.steps_done +=
        static_cast<std::int64_t>(e.find("steps_done")->as_double());
}

double service_metric(const MixOutcome& mix, const char* key) {
  return mix.report.find("service")->find(key)->as_double();
}

std::string validate_bench(const util::Json& doc) {
  if (!doc.is_object()) return "root is not an object";
  const util::Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kSchema)
    return "missing/wrong schema tag";
  const util::Json* mixes = doc.find("mixes");
  if (mixes == nullptr || !mixes->is_array() || mixes->size() != 7)
    return "expected exactly seven mixes";
  for (const auto& m : mixes->items()) {
    const util::Json* name = m.find("name");
    if (name == nullptr || !name->is_string()) return "mix missing name";
    for (const char* key :
         {"wall_seconds", "jobs_submitted", "jobs_completed", "jobs_failed",
          "jobs_per_second", "steps_per_second", "max_concurrent_jobs",
          "preemptions", "retries", "utilization"})
      if (m.find(key) == nullptr || !m.find(key)->is_number())
        return name->as_string() + " missing numeric '" + key + "'";
    if (name->as_string() == "replicated_failover")
      for (const char* key : {"ram_restore_seconds", "disk_restore_seconds",
                              "ram_restores", "disk_restores"})
        if (m.find(key) == nullptr || !m.find(key)->is_number())
          return name->as_string() + " missing numeric '" + key + "'";
    if (name->as_string() == "bursty_elastic")
      for (const char* key :
           {"utilization_elastic_off", "utilization_elastic_on",
            "elastic_shrinks", "elastic_grows"})
        if (m.find(key) == nullptr || !m.find(key)->is_number())
          return name->as_string() + " missing numeric '" + key + "'";
    const util::Json* report = m.find("report");
    if (report == nullptr) return "mix missing embedded service report";
    const std::string problem = service::validate_report(*report);
    if (!problem.empty())
      return name->as_string() + " embedded report: " + problem;
  }
  const util::Json* trace = doc.find("trace");
  if (trace == nullptr || !trace->is_object())
    return "missing trace object";
  for (const char* key : {"path", "events", "span_coverage"})
    if (trace->find(key) == nullptr)
      return std::string("trace missing '") + key + "'";
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  util::Config in = util::Config::from_args(argc, argv);
  const core::DycoreConfig cfg = base_config(in);
  const int slots = in.get_int("slots", 3);
  const int budget = in.get_int("budget", 4);
  const int uniform_jobs = in.get_int("jobs", 6);
  const int uniform_steps = in.get_int("steps", 6);
  const int long_steps = in.get_int("long_steps", 20);
  const std::string out_path = in.get_string("out", "BENCH_service.json");

  const std::string dir =
      (std::filesystem::temp_directory_path() / "ca_bench_service").string();
  std::filesystem::create_directories(dir);

  std::printf(
      "service bench: %dx%dx%d M=%d, %d slots, %d-rank budget\n\n",
      cfg.nx, cfg.ny, cfg.nz, cfg.M, slots, budget);

  service::ServiceOptions opt;
  opt.slots = slots;
  opt.rank_budget = budget;
  opt.queue_capacity = 64;
  opt.checkpoint_dir = dir;

  bool ok = true;
  std::vector<MixOutcome> mixes;

  // --- mix 1: uniform -------------------------------------------------
  {
    MixOutcome mix;
    mix.name = "uniform";
    service::EnsembleService svc(opt);
    const auto start = Clock::now();
    std::vector<int> ids;
    for (int i = 0; i < uniform_jobs; ++i)
      ids.push_back(svc.submit(original_job(
          cfg, "uniform" + std::to_string(i), uniform_steps, {1, 2, 1}, 0)));
    svc.drain();
    mix.wall = seconds_since(start);
    summarize(mix, svc, ids);
    if (mix.completed != uniform_jobs) {
      std::fprintf(stderr, "FAIL: uniform completed %d/%d jobs\n",
                   mix.completed, uniform_jobs);
      mix.ok = false;
    }
    if (service_metric(mix, "max_concurrent_jobs") < 2.0) {
      std::fprintf(stderr,
                   "FAIL: uniform never had >= 2 jobs in flight\n");
      mix.ok = false;
    }
    mixes.push_back(std::move(mix));
  }

  // --- mix 2: bimodal (long preemptible + short high-priority) --------
  {
    MixOutcome mix;
    mix.name = "bimodal";
    service::JobSpec longj =
        original_job(cfg, "long", long_steps, {1, 2, 2}, 0);
    longj.checkpoint_every = 1;
    const state::State solo = solo_state(longj, dir + "/solo_long");

    service::EnsembleService svc(opt);
    const auto start = Clock::now();
    std::vector<int> ids;
    ids.push_back(svc.submit(longj));
    // Let the long job own the whole budget before the short stream
    // arrives, so the first high-priority submission must preempt it.
    if (!await_running(svc, ids.front())) {
      std::fprintf(stderr, "FAIL: bimodal long job never started\n");
      mix.ok = false;
    }
    for (int i = 0; i < 4; ++i)
      ids.push_back(svc.submit(
          original_job(cfg, "short" + std::to_string(i), 2, {1, 2, 1}, 10)));
    svc.drain();
    mix.wall = seconds_since(start);
    summarize(mix, svc, ids);

    const service::JobResult r = svc.result(ids.front());
    if (r.state != service::JobState::kCompleted) {
      std::fprintf(stderr, "FAIL: bimodal long job did not complete: %s\n",
                   r.error.c_str());
      mix.ok = false;
    } else {
      if (r.metrics.preemptions < 1) {
        std::fprintf(stderr,
                     "FAIL: bimodal long job was never preempted\n");
        mix.ok = false;
      }
      const double diff = state::State::max_abs_diff(r.final_state, solo,
                                                     solo.interior());
      if (diff != 0.0) {
        std::fprintf(stderr,
                     "FAIL: preempt/resume diverged (max |diff| = %g)\n",
                     diff);
        mix.ok = false;
      }
    }
    if (mix.completed != static_cast<int>(ids.size())) {
      std::fprintf(stderr, "FAIL: bimodal completed %d/%zu jobs\n",
                   mix.completed, ids.size());
      mix.ok = false;
    }
    mixes.push_back(std::move(mix));
  }

  // --- mix 3: fault_injected ------------------------------------------
  {
    MixOutcome mix;
    mix.name = "fault_injected";
    service::JobSpec transient =
        original_job(cfg, "transient", 2, {1, 2, 1}, 0);
    {
      comm::FaultPlan plan(kTransientSeed);
      comm::FaultRule r;
      r.kind = comm::FaultKind::kCorrupt;
      r.probability = 0.02;
      r.src = 0;
      r.dst = 1;
      plan.add_rule(r);
      transient.faults = plan;
    }
    transient.max_attempts = 3;
    transient.retry_backoff_seconds = 0.001;
    transient.comm.recv_timeout = std::chrono::milliseconds(400);
    const state::State solo = solo_state(transient, dir + "/solo_transient");

    service::JobSpec doomed = original_job(cfg, "doomed", 2, {1, 2, 1}, 0);
    {
      comm::FaultPlan plan(7u);
      comm::FaultRule r;
      r.kind = comm::FaultKind::kCorrupt;
      r.probability = 1.0;
      plan.add_rule(r);
      doomed.faults = plan;
    }
    doomed.max_attempts = 2;
    doomed.retry_backoff_seconds = 0.001;
    doomed.comm.recv_timeout = std::chrono::milliseconds(400);

    service::EnsembleService svc(opt);
    const auto start = Clock::now();
    std::vector<int> ids;
    ids.push_back(svc.submit(transient));
    ids.push_back(svc.submit(doomed));
    for (int i = 0; i < 2; ++i)
      ids.push_back(svc.submit(
          original_job(cfg, "clean" + std::to_string(i), 3, {1, 2, 1}, 0)));
    svc.drain();
    mix.wall = seconds_since(start);
    summarize(mix, svc, ids);

    const service::JobResult rt = svc.result(ids[0]);
    if (rt.state != service::JobState::kCompleted ||
        rt.metrics.attempts < 2 || rt.faults.injected_corrupt < 1) {
      std::fprintf(stderr,
                   "FAIL: transient job must complete via retry "
                   "(state=%s attempts=%d injected=%llu): %s\n",
                   service::to_string(rt.state), rt.metrics.attempts,
                   static_cast<unsigned long long>(
                       rt.faults.injected_corrupt),
                   rt.error.c_str());
      mix.ok = false;
    } else {
      const double diff = state::State::max_abs_diff(rt.final_state, solo,
                                                     solo.interior());
      if (diff != 0.0) {
        std::fprintf(stderr,
                     "FAIL: retried job diverged (max |diff| = %g)\n", diff);
        mix.ok = false;
      }
    }
    const service::JobResult rd = svc.result(ids[1]);
    if (rd.state != service::JobState::kFailed ||
        rd.metrics.attempts != doomed.max_attempts ||
        rd.faults.injected_corrupt < 1) {
      std::fprintf(stderr,
                   "FAIL: doomed job must exhaust its attempts and fail "
                   "(state=%s attempts=%d)\n",
                   service::to_string(rd.state), rd.metrics.attempts);
      mix.ok = false;
    }
    mixes.push_back(std::move(mix));
  }

  // --- mix 4: rank_failure --------------------------------------------
  {
    MixOutcome mix;
    mix.name = "rank_failure";
    service::JobSpec victim =
        original_job(cfg, "victim", 6, {1, 2, 1}, 0);
    victim.checkpoint_every = 1;
    {
      // Node-resident kill: pool rank 0 dies at the victim's second step
      // (a step-1 checkpoint exists by then).  The rule stays with the
      // NODE, so the recovery attempt on healthy ranks runs clean.
      comm::FaultRule r;
      r.kind = comm::FaultKind::kKillRank;
      r.src = 0;  // pool rank id
      r.step = 1;
      victim.node_faults.push_back(r);
    }
    victim.comm.recv_timeout = std::chrono::seconds(10);
    victim.comm.heartbeat_timeout = std::chrono::milliseconds(250);
    const state::State solo = solo_state(victim, dir + "/solo_victim");

    service::EnsembleService svc(opt);
    const auto start = Clock::now();
    std::vector<int> ids;
    ids.push_back(svc.submit(victim));
    // The victim must own pool ranks {0, 1} (lowest free ids) before the
    // bystanders arrive, so the kill rule lands on its assignment.
    if (!await_running(svc, ids.front())) {
      std::fprintf(stderr, "FAIL: rank_failure victim never started\n");
      mix.ok = false;
    }
    service::JobSpec bystander;
    bystander.core = service::CoreKind::kSerial;
    bystander.config = cfg;
    bystander.steps = 8;
    for (int i = 0; i < 2; ++i) {
      bystander.name = "bystander" + std::to_string(i);
      ids.push_back(svc.submit(bystander));
    }
    svc.drain();
    mix.wall = seconds_since(start);
    summarize(mix, svc, ids);

    const service::JobResult rv = svc.result(ids.front());
    if (rv.state != service::JobState::kCompleted ||
        rv.metrics.rank_recoveries < 1) {
      std::fprintf(stderr,
                   "FAIL: victim must recover from the rank kill "
                   "(state=%s recoveries=%d): %s\n",
                   service::to_string(rv.state),
                   rv.metrics.rank_recoveries, rv.error.c_str());
      mix.ok = false;
    } else {
      const double diff = state::State::max_abs_diff(rv.final_state, solo,
                                                     solo.interior());
      if (diff != 0.0) {
        std::fprintf(stderr,
                     "FAIL: rank-kill recovery diverged (max |diff| = %g)\n",
                     diff);
        mix.ok = false;
      }
    }
    if (mix.completed != static_cast<int>(ids.size())) {
      std::fprintf(stderr, "FAIL: rank_failure completed %d/%zu jobs\n",
                   mix.completed, ids.size());
      mix.ok = false;
    }
    // Scheduling must not pause for the recovery: the bystanders overlap
    // the victim's detection + re-queue window.
    if (service_metric(mix, "max_concurrent_jobs") < 2.0) {
      std::fprintf(stderr,
                   "FAIL: rank_failure never had >= 2 jobs in flight "
                   "during the kill/recovery\n");
      mix.ok = false;
    }
    const util::Json* health = mix.report.find("health");
    if (health == nullptr ||
        health->find("jobs_recovered")->as_double() < 1.0 ||
        health->find("quarantines")->as_double() < 1.0) {
      std::fprintf(stderr,
                   "FAIL: rank_failure report health lacks the "
                   "recovery evidence\n");
      mix.ok = false;
    }
    mixes.push_back(std::move(mix));
  }

  // --- mix 5: overlap --------------------------------------------------
  {
    MixOutcome mix;
    mix.name = "overlap";
    core::DycoreConfig ocfg = cfg;
    ocfg.overlap_exchange = true;
    service::JobSpec probe =
        original_job(ocfg, "overlap0", uniform_steps, {1, 2, 1}, 0);
    // Bitwise reference: the SAME spec with overlap off, run solo.  The
    // async posts and per-face drains must be invisible to the numerics.
    service::JobSpec ref = probe;
    ref.config.overlap_exchange = false;
    const state::State solo = solo_state(ref, dir + "/solo_overlap");

    service::EnsembleService svc(opt);
    const auto start = Clock::now();
    std::vector<int> ids;
    for (int i = 0; i < 4; ++i)
      ids.push_back(svc.submit(original_job(
          ocfg, "overlap" + std::to_string(i), uniform_steps, {1, 2, 1}, 0)));
    svc.drain();
    mix.wall = seconds_since(start);
    summarize(mix, svc, ids);
    if (mix.completed != static_cast<int>(ids.size())) {
      std::fprintf(stderr, "FAIL: overlap completed %d/%zu jobs\n",
                   mix.completed, ids.size());
      mix.ok = false;
    }
    const service::JobResult r = svc.result(ids.front());
    if (r.state == service::JobState::kCompleted) {
      const double diff = state::State::max_abs_diff(r.final_state, solo,
                                                     solo.interior());
      if (diff != 0.0) {
        std::fprintf(stderr,
                     "FAIL: overlap-on job diverged from the overlap-off "
                     "solo (max |diff| = %g)\n",
                     diff);
        mix.ok = false;
      }
    }
    if (service_metric(mix, "max_concurrent_jobs") < 2.0) {
      std::fprintf(stderr, "FAIL: overlap never had >= 2 jobs in flight\n");
      mix.ok = false;
    }
    mixes.push_back(std::move(mix));
  }

  // --- mix 6: replicated_failover --------------------------------------
  {
    MixOutcome mix;
    mix.name = "replicated_failover";
    // This mix pins replication per leg; the CI replication leg's env
    // override would otherwise turn the disk leg into a second RAM leg.
    ::unsetenv("CA_AGCM_SERVICE_REPLICATE");
    ::unsetenv("CA_AGCM_SERVICE_DELTA_CHAIN");

    // The kill lands at step 5 with checkpoint_every=1 and a chain cap
    // of 4, so the on-disk state is a full base plus four deltas: the
    // disk resume pays five file reads plus chain reconstruction, while
    // the buddy holds the step-5 image ready in RAM.
    service::JobSpec victim =
        original_job(cfg, "victim_rep", 6, {1, 2, 1}, 0);
    victim.checkpoint_every = 1;
    {
      comm::FaultRule r;
      r.kind = comm::FaultKind::kKillRank;
      r.src = 0;  // pool rank id
      r.step = 5;
      victim.node_faults.push_back(r);
    }
    victim.comm.recv_timeout = std::chrono::seconds(10);
    victim.comm.heartbeat_timeout = std::chrono::milliseconds(250);
    const state::State solo = solo_state(victim, dir + "/solo_rep");

    // Service leg: the full kill -> watchdog -> quarantine -> resume
    // path, with the resume coming from buddy RAM.
    service::ServiceOptions ropt = opt;
    ropt.replicate = true;
    ropt.delta_chain = 4;
    service::EnsembleService svc(ropt);
    const auto start = Clock::now();
    std::vector<int> ids;
    ids.push_back(svc.submit(victim));
    svc.drain();
    mix.wall = seconds_since(start);
    summarize(mix, svc, ids);

    const service::JobResult rv = svc.result(ids.front());
    if (rv.state != service::JobState::kCompleted ||
        rv.metrics.rank_recoveries < 1 || rv.metrics.ram_restores < 1 ||
        rv.metrics.disk_restores != 0) {
      std::fprintf(stderr,
                   "FAIL: replicated victim must recover from buddy RAM "
                   "(state=%s recoveries=%d ram=%d disk=%d): %s\n",
                   service::to_string(rv.state), rv.metrics.rank_recoveries,
                   rv.metrics.ram_restores, rv.metrics.disk_restores,
                   rv.error.c_str());
      mix.ok = false;
    } else if (state::State::max_abs_diff(rv.final_state, solo,
                                          solo.interior()) != 0.0) {
      std::fprintf(stderr, "FAIL: buddy-RAM recovery diverged\n");
      mix.ok = false;
    }
    const util::Json* health = mix.report.find("health");
    if (health == nullptr ||
        health->find("replica_deposits")->as_double() < 1.0) {
      std::fprintf(stderr,
                   "FAIL: replicated_failover report shows no deposits\n");
      mix.ok = false;
    }

    // Latency twin at the runner level: one killed attempt populates
    // both the disk chain and the replica store, then the IDENTICAL
    // resume is timed from each source (min of 5, restore section only).
    // checkpoint_every=0 on the resumes keeps both sources frozen at the
    // step-5 image across repeats.  The twin runs a 2x-per-dim mesh so
    // the restore cost is dominated by checkpoint data, not fixed
    // per-attempt overhead.
    const std::string rdir = dir + "/failover_twin";
    std::filesystem::create_directories(rdir);
    core::DycoreConfig tcfg = cfg;
    tcfg.nx *= 2;
    tcfg.ny *= 2;
    tcfg.nz *= 2;
    service::JobSpec twin = victim;
    twin.name = "victim_twin";
    twin.config = tcfg;
    twin.node_faults.front().src = 0;  // identity map: job rank 0
    const state::State twin_solo = solo_state(twin, dir + "/solo_twin");
    service::ReplicaStore store;
    service::AttemptOptions o1;
    o1.attempt = 1;
    o1.checkpoint_prefix = rdir + "/job";
    o1.replicas = &store;
    o1.delta_chain = 4;
    const service::AttemptResult a1 = service::run_attempt(twin, o1);
    if (a1.dead_rank != 0 || store.deposits() == 0u) {
      std::fprintf(stderr,
                   "FAIL: failover twin seed attempt (dead_rank=%d "
                   "deposits=%zu): %s\n",
                   a1.dead_rank, store.deposits(), a1.error.c_str());
      mix.ok = false;
    }
    store.invalidate_depositor(o1.checkpoint_prefix, 0);

    service::JobSpec clean = twin;
    clean.node_faults.clear();
    clean.checkpoint_every = 0;
    double ram_s = 0.0, disk_s = 0.0;
    for (const bool ram : {true, false}) {
      double best = 0.0;
      for (int rep = 0; rep < 5; ++rep) {
        util::reset_checkpoint_io();
        service::AttemptOptions o = o1;
        o.attempt = 2 + rep;
        o.start_step = 5;
        o.replicas = ram ? &store : nullptr;
        const service::AttemptResult a = service::run_attempt(clean, o);
        const auto want = ram ? service::RestoreSource::kRam
                              : service::RestoreSource::kDisk;
        if (!a.completed(clean.steps) || a.restored_from != want ||
            (ram ? util::checkpoint_io().files_read != 0u
                 : util::checkpoint_io().files_read == 0u)) {
          std::fprintf(stderr,
                       "FAIL: %s resume (completed=%d source=%d "
                       "files_read=%llu): %s\n",
                       ram ? "buddy-RAM" : "disk", a.completed(clean.steps),
                       static_cast<int>(a.restored_from),
                       static_cast<unsigned long long>(
                           util::checkpoint_io().files_read),
                       a.error.c_str());
          mix.ok = false;
          break;
        }
        if (state::State::max_abs_diff(a.global, twin_solo,
                                       twin_solo.interior()) != 0.0) {
          std::fprintf(stderr, "FAIL: %s resume diverged\n",
                       ram ? "buddy-RAM" : "disk");
          mix.ok = false;
          break;
        }
        best = rep == 0 ? a.restore_seconds
                        : std::min(best, a.restore_seconds);
      }
      (ram ? ram_s : disk_s) = best;
    }
    std::printf(
        "recovery latency: buddy RAM %.3f ms, disk chain %.3f ms "
        "(restore section, min of 5)\n",
        1e3 * ram_s, 1e3 * disk_s);
    if (mix.ok && ram_s >= disk_s)
      std::fprintf(stderr,
                   "note: buddy-RAM restore was not faster this run "
                   "(%.3f ms vs %.3f ms) — timing, not correctness\n",
                   1e3 * ram_s, 1e3 * disk_s);
    mix.extra.emplace_back("ram_restore_seconds", ram_s);
    mix.extra.emplace_back("disk_restore_seconds", disk_s);
    mix.extra.emplace_back("ram_restores",
                           static_cast<double>(rv.metrics.ram_restores));
    mix.extra.emplace_back("disk_restores",
                           static_cast<double>(rv.metrics.disk_restores));
    mixes.push_back(std::move(mix));
  }

  // --- mix 7: bursty_elastic -------------------------------------------
  {
    MixOutcome mix;
    mix.name = "bursty_elastic";
    // This mix pins elasticity per leg; the CI elastic leg's env override
    // would otherwise turn the baseline leg into a second elastic leg.
    ::unsetenv("CA_AGCM_SERVICE_ELASTIC");

    // A high-priority burst pins half the pool while a wide, preemptible,
    // checkpointing CA job waits for its full shape.  Without elasticity
    // the other half of the budget idles for the whole burst (the CA job
    // cannot preempt higher-priority work); with service.elastic=1 the
    // scheduler squeezes the CA job onto the idle ranks (yz_grid keeps
    // pz, so exact-mode CA stays bitwise through the reshard) and the
    // measured utilization must be strictly higher.
    service::JobSpec burst =
        original_job(cfg, "burst", long_steps, {1, 2, 1}, 10);
    service::JobSpec caj;
    caj.name = "ca_wide";
    caj.core = service::CoreKind::kCA;
    caj.config = cfg;
    caj.ca_options.fresh_c_on_block_face = false;   // exact mode: bitwise
    caj.ca_options.approximate_iteration = false;   // under the y split
    caj.dims = {1, 2, 2};
    caj.steps = 3;
    caj.priority = 0;
    caj.checkpoint_every = 1;
    const state::State solo = solo_state(caj, dir + "/solo_ca_wide");

    double util_off = 0.0, util_on = 0.0;
    std::uint64_t shrinks = 0, grows = 0;
    const auto start = Clock::now();
    for (const bool elastic : {false, true}) {
      service::ServiceOptions eopt = opt;
      eopt.elastic = elastic;
      service::EnsembleService svc(eopt);
      std::vector<int> ids;
      ids.push_back(svc.submit(burst));
      // The burst must hold its ranks before the wide job arrives, so
      // the baseline leg really strands the other half of the budget.
      if (!await_running(svc, ids.front())) {
        std::fprintf(stderr, "FAIL: bursty_elastic burst never started\n");
        mix.ok = false;
      }
      ids.push_back(svc.submit(caj));
      svc.drain();

      const service::JobResult rc = svc.result(ids.back());
      if (rc.state != service::JobState::kCompleted) {
        std::fprintf(stderr, "FAIL: bursty_elastic CA job (elastic=%d): %s\n",
                     elastic, rc.error.c_str());
        mix.ok = false;
      } else if (state::State::max_abs_diff(rc.final_state, solo,
                                            solo.interior()) != 0.0) {
        std::fprintf(stderr,
                     "FAIL: bursty_elastic CA job diverged (elastic=%d)\n",
                     elastic);
        mix.ok = false;
      }
      if (elastic) {
        mix.wall = seconds_since(start);
        summarize(mix, svc, ids);
        util_on = service_metric(mix, "utilization");
        shrinks = svc.elastic_shrinks();
        grows = svc.elastic_grows();
      } else {
        const util::Json rep = svc.report();
        util_off =
            rep.find("service")->find("utilization")->as_double();
      }
    }
    if (shrinks < 1) {
      std::fprintf(stderr,
                   "FAIL: bursty_elastic never squeezed the wide job\n");
      mix.ok = false;
    }
    if (util_on <= util_off) {
      std::fprintf(stderr,
                   "FAIL: elasticity must raise utilization under the "
                   "burst (%.3f with, %.3f without)\n",
                   util_on, util_off);
      mix.ok = false;
    }
    std::printf(
        "bursty_elastic: utilization %.3f -> %.3f (%llu squeeze(s), "
        "%llu re-grow(s))\n",
        util_off, util_on, static_cast<unsigned long long>(shrinks),
        static_cast<unsigned long long>(grows));
    mix.extra.emplace_back("utilization_elastic_off", util_off);
    mix.extra.emplace_back("utilization_elastic_on", util_on);
    mix.extra.emplace_back("elastic_shrinks", static_cast<double>(shrinks));
    mix.extra.emplace_back("elastic_grows", static_cast<double>(grows));
    mixes.push_back(std::move(mix));
  }

  // --- traced failover: merged timeline + span-coverage gate -----------
  // Re-run the rank_failure scenario with obs.trace on and every rank's
  // ring flushing into one collector.  The merged Chrome trace must be
  // structurally valid, and on every rank timeline the union of the
  // spans INSIDE each "campaign" span (steps, exchanges, waits,
  // collectives, checkpoint writes) must cover >= 95% of the campaign's
  // wall-clock — untraced step time means the timeline lies about where
  // a failover run actually went.
  double span_coverage = 0.0;
  std::size_t trace_events = 0;
  const std::string trace_path =
      in.get_string("trace_out", "BENCH_service_trace.json");
  {
    obs::TraceCollector collector;
    service::ServiceOptions topt = opt;
    topt.obs.trace = true;
    topt.obs.ring_events = 1 << 14;
    topt.obs.dump_dir = dir;
    topt.trace_sink = &collector;

    service::JobSpec victim =
        original_job(cfg, "victim_traced", 6, {1, 2, 1}, 0);
    victim.checkpoint_every = 1;
    {
      comm::FaultRule r;
      r.kind = comm::FaultKind::kKillRank;
      r.src = 0;  // pool rank id
      r.step = 1;
      victim.node_faults.push_back(r);
    }
    victim.comm.recv_timeout = std::chrono::seconds(10);
    victim.comm.heartbeat_timeout = std::chrono::milliseconds(250);

    {
      service::EnsembleService svc(topt);
      const int id = svc.submit(victim);
      svc.drain();
      if (svc.state(id) != service::JobState::kCompleted) {
        std::fprintf(stderr,
                     "FAIL: traced failover victim did not complete\n");
        ok = false;
      }
    }  // service dtor stops the pool, flushing the scheduler's ring

    trace_events = collector.event_count();
    const util::Json trace_doc = collector.chrome_trace();
    const std::string trace_problem = obs::validate_chrome_trace(trace_doc);
    if (!trace_problem.empty()) {
      std::fprintf(stderr, "FAIL: merged trace invalid: %s\n",
                   trace_problem.c_str());
      ok = false;
    }
    if (!collector.write(trace_path)) {
      std::fprintf(stderr, "FAIL: could not write %s\n", trace_path.c_str());
      ok = false;
    }

    // Interval-union coverage per (pid, tid) timeline, min over ranks.
    const util::Json* events = trace_doc.find("traceEvents");
    std::vector<std::pair<int, int>> lines;
    for (const auto& e : events->items()) {
      if (e.find("ph")->as_string() != "X") continue;
      const std::pair<int, int> key{
          static_cast<int>(e.find("pid")->as_double()),
          static_cast<int>(e.find("tid")->as_double())};
      if (std::find(lines.begin(), lines.end(), key) == lines.end())
        lines.push_back(key);
    }
    double min_cov = 1.0;
    bool any_campaign = false;
    for (const auto& [pid, tid] : lines) {
      std::vector<std::array<double, 2>> wins, spans;
      for (const auto& e : events->items()) {
        if (e.find("ph")->as_string() != "X") continue;
        if (static_cast<int>(e.find("pid")->as_double()) != pid ||
            static_cast<int>(e.find("tid")->as_double()) != tid)
          continue;
        const double ts = e.find("ts")->as_double();
        const double dur = e.find("dur")->as_double();
        if (e.find("name")->as_string() == "campaign")
          wins.push_back({ts, ts + dur});
        else
          spans.push_back({ts, ts + dur});
      }
      if (wins.empty()) continue;  // e.g. the scheduler's instant-only line
      any_campaign = true;
      double total = 0.0, covered = 0.0;
      for (const auto& w : wins) {
        total += w[1] - w[0];
        std::vector<std::array<double, 2>> clipped;
        for (const auto& s : spans) {
          const double b = std::max(s[0], w[0]);
          const double e2 = std::min(s[1], w[1]);
          if (e2 > b) clipped.push_back({b, e2});
        }
        std::sort(clipped.begin(), clipped.end());
        double cursor = w[0];
        for (const auto& c : clipped) {
          if (c[1] <= cursor) continue;
          covered += c[1] - std::max(c[0], cursor);
          cursor = c[1];
        }
      }
      if (total > 0.0) min_cov = std::min(min_cov, covered / total);
    }
    span_coverage = any_campaign ? min_cov : 0.0;
    std::printf(
        "\ntraced failover: %zu events -> %s, span coverage %.2f%% "
        "(min over rank timelines)\n",
        trace_events, trace_path.c_str(), 1e2 * span_coverage);
    if (!any_campaign || span_coverage < 0.95) {
      std::fprintf(stderr,
                   "FAIL: campaign span coverage %.2f%% (>= 95%% of step "
                   "wall-clock required)\n",
                   1e2 * span_coverage);
      ok = false;
    }
  }

  // --- emit ------------------------------------------------------------
  util::Json doc = util::Json::object();
  doc["schema"] = kSchema;
  util::Json mesh = util::Json::object();
  mesh["nx"] = cfg.nx;
  mesh["ny"] = cfg.ny;
  mesh["nz"] = cfg.nz;
  doc["mesh"] = std::move(mesh);
  doc["M"] = cfg.M;
  doc["slots"] = slots;
  doc["rank_budget"] = budget;
  util::Json arr = util::Json::array();

  std::printf("%-16s %10s %6s %6s %8s %8s %8s %8s\n", "mix", "wall[ms]",
              "done", "fail", "jobs/s", "steps/s", "preempt", "util");
  for (const MixOutcome& mix : mixes) {
    ok = ok && mix.ok;
    const double jps = mix.wall > 0.0 ? mix.completed / mix.wall : 0.0;
    const double sps = mix.wall > 0.0 ? mix.steps_done / mix.wall : 0.0;
    std::printf("%-16s %10.1f %6d %6d %8.2f %8.1f %8.0f %8.2f\n",
                mix.name.c_str(), 1e3 * mix.wall, mix.completed, mix.failed,
                jps, sps, service_metric(mix, "preemptions"),
                service_metric(mix, "utilization"));
    util::Json e = util::Json::object();
    e["name"] = mix.name;
    e["wall_seconds"] = mix.wall;
    e["jobs_submitted"] = mix.submitted;
    e["jobs_completed"] = mix.completed;
    e["jobs_failed"] = mix.failed;
    e["jobs_per_second"] = jps;
    e["steps_per_second"] = sps;
    e["max_concurrent_jobs"] = service_metric(mix, "max_concurrent_jobs");
    e["preemptions"] = service_metric(mix, "preemptions");
    e["retries"] = service_metric(mix, "retries");
    e["utilization"] = service_metric(mix, "utilization");
    for (const auto& [key, value] : mix.extra) e[key] = value;
    e["report"] = mix.report;
    arr.push_back(std::move(e));
  }
  doc["mixes"] = std::move(arr);
  {
    util::Json trace = util::Json::object();
    trace["path"] = trace_path;
    trace["events"] = static_cast<double>(trace_events);
    trace["span_coverage"] = span_coverage;
    doc["trace"] = std::move(trace);
  }

  {
    std::ofstream out(out_path);
    out << doc.dump(2) << "\n";
  }
  std::printf("\nwrote %s\n", out_path.c_str());

  // Self-check: the emitted file must re-parse, match the bench schema,
  // and every embedded service report must satisfy ITS schema too.
  std::ifstream fin(out_path);
  std::stringstream buf;
  buf << fin.rdbuf();
  try {
    const std::string problem = validate_bench(util::Json::parse(buf.str()));
    if (!problem.empty()) {
      std::fprintf(stderr, "FAIL: emitted JSON invalid: %s\n",
                   problem.c_str());
      ok = false;
    }
  } catch (const util::JsonError& e) {
    std::fprintf(stderr, "FAIL: emitted JSON does not parse: %s\n",
                 e.what());
    ok = false;
  }
  return ok ? 0 : 1;
}
