// Restart demo: run the Held-Suarez configuration through the campaign
// driver, checkpoint mid-run, then resume with CampaignOptions::start_step
// into fresh cores and verify the continuation is bitwise transparent —
// the operational pattern long climate runs (and the ensemble service's
// preemption) ride on.  Exits nonzero on any divergence.
//
//   ./restart_demo [steps=6] [ranks=2]
#include <cstdio>
#include <filesystem>

#include "comm/runtime.hpp"
#include "core/campaign.hpp"
#include "core/exchange.hpp"
#include "core/original_core.hpp"
#include "physics/held_suarez.hpp"
#include "util/checkpoint.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace ca;
  const auto cfg_in = util::Config::from_args(argc, argv);
  const int steps = cfg_in.get_int("steps", 6);
  const int ranks = cfg_in.get_int("ranks", 2);
  const int half = steps / 2;

  core::DycoreConfig cfg;
  cfg.nx = 36;
  cfg.ny = 24;
  cfg.nz = 10;
  cfg.M = 3;
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "ca_agcm_restart_demo")
          .string();

  std::printf("Restart demo: %d + %d steps vs %d straight steps, %d ranks\n",
              half, steps - half, steps, ranks);

  // Reference: one uninterrupted campaign.
  state::State straight;
  comm::Runtime::run(ranks, [&](comm::Context& ctx) {
    core::OriginalCore core(cfg, ctx, core::DecompScheme::kYZ,
                            {1, ranks, 1});
    physics::HeldSuarezForcing forcing(core.op_context());
    auto xi = core.make_state();
    core.initialize(xi, {.kind = state::InitialCondition::kZonalJet});
    core::CampaignOptions opt;
    opt.steps = steps;
    opt.forcing = &forcing;
    core::run_campaign(core, &ctx, xi, opt);
    auto g = core::gather_global(core.op_context(), ctx, core.topology(),
                                 xi);
    if (ctx.world_rank() == 0) straight = std::move(g);
  });

  // Interrupted run: the first campaign checkpoints at `half` and ends
  // (a preempted service job stops exactly like this).
  comm::Runtime::run(ranks, [&](comm::Context& ctx) {
    core::OriginalCore core(cfg, ctx, core::DecompScheme::kYZ,
                            {1, ranks, 1});
    physics::HeldSuarezForcing forcing(core.op_context());
    auto xi = core.make_state();
    core.initialize(xi, {.kind = state::InitialCondition::kZonalJet});
    core::CampaignOptions opt;
    opt.steps = half;
    opt.forcing = &forcing;
    opt.checkpoint_every = half;
    opt.checkpoint_prefix = prefix;
    core::run_campaign(core, &ctx, xi, opt);
    if (ctx.world_rank() == 0)
      std::printf("  checkpointed at step %d -> %s.rank*.ckpt\n", half,
                  prefix.c_str());
  });

  // A "new job": restore, then resume the SAME campaign via start_step —
  // absolute step numbering and forwarded model time come straight from
  // the checkpoint header.
  state::State restarted;
  bool resumed_ok = true;
  comm::Runtime::run(ranks, [&](comm::Context& ctx) {
    core::OriginalCore core(cfg, ctx, core::DecompScheme::kYZ,
                            {1, ranks, 1});
    physics::HeldSuarezForcing forcing(core.op_context());
    auto xi = core.make_state();
    mesh::LatLonMesh mesh(cfg.nx, cfg.ny, cfg.nz);
    const auto hdr = util::read_checkpoint(
        util::checkpoint_path(prefix, ctx.world_rank()), mesh,
        core.decomp(), xi);
    core.refresh_halos(xi, "restart");
    core::CampaignOptions opt;
    opt.steps = steps;
    opt.start_step = static_cast<int>(hdr.step);
    opt.start_time_seconds = hdr.time_seconds;
    opt.forcing = &forcing;
    const int executed = core::run_campaign(core, &ctx, xi, opt);
    if (executed != steps - half) resumed_ok = false;
    auto g = core::gather_global(core.op_context(), ctx, core.topology(),
                                 xi);
    if (ctx.world_rank() == 0) restarted = std::move(g);
    std::remove(util::checkpoint_path(prefix, ctx.world_rank()).c_str());
  });

  if (!resumed_ok) {
    std::fprintf(stderr,
                 "FAIL: resumed campaign executed the wrong step count\n");
    return 1;
  }
  const double diff = state::State::max_abs_diff(straight, restarted,
                                                 straight.interior());
  std::printf("  max |straight - restarted| = %.3e %s\n", diff,
              diff == 0.0 ? "(bitwise transparent)" : "(NOT transparent!)");
  if (diff != 0.0) {
    std::fprintf(stderr,
                 "FAIL: a start_step resume must be bitwise transparent\n");
    return 1;
  }
  return 0;
}
