// Restart demo: run the Held-Suarez configuration, checkpoint every rank,
// reload into fresh cores, and verify the continuation is bitwise
// transparent — the operational pattern long climate runs need.
//
//   ./restart_demo [steps=6] [ranks=2]
#include <cstdio>
#include <filesystem>

#include "comm/runtime.hpp"
#include "core/exchange.hpp"
#include "core/original_core.hpp"
#include "physics/held_suarez.hpp"
#include "util/checkpoint.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace ca;
  const auto cfg_in = util::Config::from_args(argc, argv);
  const int steps = cfg_in.get_int("steps", 6);
  const int ranks = cfg_in.get_int("ranks", 2);

  core::DycoreConfig cfg;
  cfg.nx = 36;
  cfg.ny = 24;
  cfg.nz = 10;
  cfg.M = 3;
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "ca_agcm_restart_demo")
          .string();

  std::printf("Restart demo: %d + %d steps vs %d straight steps, %d ranks\n",
              steps / 2, steps - steps / 2, steps, ranks);

  // Reference: one uninterrupted run.
  state::State straight;
  comm::Runtime::run(ranks, [&](comm::Context& ctx) {
    core::OriginalCore core(cfg, ctx, core::DecompScheme::kYZ,
                            {1, ranks, 1});
    physics::HeldSuarezForcing forcing(core.op_context());
    auto xi = core.make_state();
    core.initialize(xi, {.kind = state::InitialCondition::kZonalJet});
    for (int s = 0; s < steps; ++s) {
      core.step(xi);
      forcing.apply(xi, cfg.dt_advect);
    }
    auto g = core::gather_global(core.op_context(), ctx, core.topology(),
                                 xi);
    if (ctx.world_rank() == 0) straight = std::move(g);
  });

  // Interrupted run: first half, checkpoint, exit the "job".
  comm::Runtime::run(ranks, [&](comm::Context& ctx) {
    core::OriginalCore core(cfg, ctx, core::DecompScheme::kYZ,
                            {1, ranks, 1});
    physics::HeldSuarezForcing forcing(core.op_context());
    auto xi = core.make_state();
    core.initialize(xi, {.kind = state::InitialCondition::kZonalJet});
    for (int s = 0; s < steps / 2; ++s) {
      core.step(xi);
      forcing.apply(xi, cfg.dt_advect);
    }
    util::write_checkpoint(
        util::checkpoint_path(prefix, ctx.world_rank()),
        mesh::LatLonMesh(cfg.nx, cfg.ny, cfg.nz), core.decomp(), xi,
        steps / 2, steps / 2 * cfg.dt_advect);
    if (ctx.world_rank() == 0)
      std::printf("  checkpointed at step %d -> %s.rank*.ckpt\n",
                  steps / 2, prefix.c_str());
  });

  // A "new job": restore and continue.
  state::State restarted;
  comm::Runtime::run(ranks, [&](comm::Context& ctx) {
    core::OriginalCore core(cfg, ctx, core::DecompScheme::kYZ,
                            {1, ranks, 1});
    physics::HeldSuarezForcing forcing(core.op_context());
    auto xi = core.make_state();
    mesh::LatLonMesh mesh(cfg.nx, cfg.ny, cfg.nz);
    const auto hdr = util::read_checkpoint(
        util::checkpoint_path(prefix, ctx.world_rank()), mesh,
        core.decomp(), xi);
    core.refresh_halos(xi, "restart");
    for (int s = static_cast<int>(hdr.step); s < steps; ++s) {
      core.step(xi);
      forcing.apply(xi, cfg.dt_advect);
    }
    auto g = core::gather_global(core.op_context(), ctx, core.topology(),
                                 xi);
    if (ctx.world_rank() == 0) restarted = std::move(g);
    std::remove(util::checkpoint_path(prefix, ctx.world_rank()).c_str());
  });

  const double diff = state::State::max_abs_diff(straight, restarted,
                                                 straight.interior());
  std::printf("  max |straight - restarted| = %.3e %s\n", diff,
              diff == 0.0 ? "(bitwise transparent)" : "(NOT transparent!)");
  return diff == 0.0 ? 0 : 1;
}
