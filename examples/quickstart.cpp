// Quickstart: build a small dynamical core, initialize a planetary-wave
// state, run a few steps with each algorithm, and print global
// diagnostics.  Everything here is the public API a downstream user
// would touch first.
//
//   ./quickstart [nx=48] [ny=24] [nz=8] [steps=10]
#include <cstdio>

#include "comm/runtime.hpp"
#include "core/ca_core.hpp"
#include "core/diagnostics.hpp"
#include "core/exchange.hpp"
#include "core/original_core.hpp"
#include "core/serial_core.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace ca;
  const auto cfg_in = util::Config::from_args(argc, argv);

  core::DycoreConfig cfg;
  cfg.nx = cfg_in.get_int("nx", 48);
  cfg.ny = cfg_in.get_int("ny", 24);
  cfg.nz = cfg_in.get_int("nz", 8);
  cfg.M = cfg_in.get_int("m", 3);
  cfg.dt_adapt = cfg_in.get_double("dt_adapt", 60.0);
  cfg.dt_advect = cfg_in.get_double("dt_advect", 300.0);
  const int steps = cfg_in.get_int("steps", 10);

  state::InitialOptions ic;
  ic.kind = state::InitialCondition::kPlanetaryWave;

  std::printf("ca-agcm quickstart: %dx%dx%d mesh, M = %d, %d steps\n\n",
              cfg.nx, cfg.ny, cfg.nz, cfg.M, steps);

  // 1. Serial reference core.
  {
    core::SerialCore core(cfg);
    auto xi = core.make_state();
    core.initialize(xi, ic);
    const auto before = core::local_diagnostics(core.op_context(), xi);
    core.run(xi, steps);
    const auto after = core::local_diagnostics(core.op_context(), xi);
    std::printf("serial reference   : energy %10.3e -> %10.3e,  "
                "max|u*| %6.2f -> %6.2f\n",
                before.total_energy(), after.total_energy(),
                before.max_abs_u, after.max_abs_u);
  }

  // 2. Distributed original algorithm (Y-Z decomposition, 2 ranks).
  comm::Runtime::run(2, [&](comm::Context& ctx) {
    core::OriginalCore core(cfg, ctx, core::DecompScheme::kYZ, {1, 2, 1});
    auto xi = core.make_state();
    core.initialize(xi, ic);
    core.run(xi, steps);
    auto mine = core::local_diagnostics(core.op_context(), xi);
    auto global = core::reduce_diagnostics(ctx, ctx.world(), mine);
    auto stats = ctx.stats().phase_totals("stencil");
    if (ctx.world_rank() == 0)
      std::printf("original (2 ranks) : energy %10.3e, "
                  "%llu halo messages sent per rank\n",
                  global.total_energy(),
                  static_cast<unsigned long long>(stats.p2p_messages));
  });

  // 3. Communication-avoiding algorithm (Algorithm 2, 2 ranks).
  comm::Runtime::run(2, [&](comm::Context& ctx) {
    core::CACore core(cfg, ctx, {1, 2, 1});
    auto xi = core.make_state();
    core.initialize(xi, ic);
    core.run(xi, steps);
    auto mine = core::local_diagnostics(core.op_context(), xi);
    auto global = core::reduce_diagnostics(ctx, ctx.world(), mine);
    auto stats = ctx.stats().phase_totals("stencil");
    if (ctx.world_rank() == 0)
      std::printf("comm-avoiding      : energy %10.3e, "
                  "%llu halo messages sent per rank\n",
                  global.total_energy(),
                  static_cast<unsigned long long>(stats.p2p_messages));
  });

  std::printf(
      "\nThe CA core reaches the same state (up to its high-order\n"
      "approximation) with a fraction of the messages: 2 exchanges per\n"
      "step instead of 3M + 4, and 2M instead of 3M vertical collectives.\n");
  return 0;
}
