// Tracer transport demo: a plume released in the mid-latitude jet,
// advected by the dynamical core's own velocity fields with both tracer
// schemes side by side; writes plottable text fields and prints transport
// diagnostics.
//
//   ./tracer_transport [nx=64] [ny=32] [nz=8] [hours=48]
#include <cstdio>
#include <filesystem>

#include "core/exchange.hpp"
#include "core/serial_core.hpp"
#include "ops/tracer.hpp"
#include "util/config.hpp"
#include "util/field_io.hpp"

int main(int argc, char** argv) {
  using namespace ca;
  const auto cfg_in = util::Config::from_args(argc, argv);
  core::DycoreConfig cfg;
  cfg.nx = cfg_in.get_int("nx", 64);
  cfg.ny = cfg_in.get_int("ny", 32);
  cfg.nz = cfg_in.get_int("nz", 8);
  const double hours = cfg_in.get_double("hours", 48.0);

  core::SerialCore core(cfg);
  const auto& ctx = core.op_context();
  auto xi = core.make_state();
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kZonalJet;
  opt.jet_speed = 35.0;
  core.initialize(xi, opt);
  core.fill_boundaries(xi);
  ops::DiagWorkspace ws(cfg.nx, cfg.ny, cfg.nz, core::halos_for_depth(1));
  core::compute_diagnostics(ctx, nullptr, nullptr, xi, xi.interior(), ws,
                            false, comm::AllreduceAlgorithm::kAuto, "t");

  const double dt = 300.0;
  const int steps = static_cast<int>(hours * 3600.0 / dt);
  std::printf(
      "Tracer transport in the zonal jet: %dx%dx%d, %.0f h (%d steps)\n\n",
      cfg.nx, cfg.ny, cfg.nz, hours, steps);

  auto plume = [&] {
    util::Array3D<double> q(cfg.nx, cfg.ny, cfg.nz,
                            core::halos_for_depth(1).h3);
    const int i0 = cfg.nx / 8, j0 = cfg.ny / 4, k0 = cfg.nz / 3;
    for (int k = 0; k < cfg.nz; ++k)
      for (int j = 0; j < cfg.ny; ++j)
        for (int i = 0; i < cfg.nx; ++i)
          q(i, j, k) = std::exp(-0.5 * (std::pow((i - i0) / 3.0, 2) +
                                        std::pow((j - j0) / 2.0, 2) +
                                        std::pow((k - k0) / 1.5, 2)));
    return q;
  };

  const auto out_dir = std::filesystem::temp_directory_path();
  for (auto scheme : {ops::TracerScheme::kSkewSymmetric,
                      ops::TracerScheme::kUpwindMonotone}) {
    const bool upwind = scheme == ops::TracerScheme::kUpwindMonotone;
    auto q = plume();
    ops::advance_tracer(ctx, xi, ws.local, ws.vert, q, dt, steps, scheme);
    double mn = 1e30, mx = -1e30, total = 0.0;
    for (int k = 0; k < cfg.nz; ++k)
      for (int j = 0; j < cfg.ny; ++j)
        for (int i = 0; i < cfg.nx; ++i) {
          mn = std::min(mn, q(i, j, k));
          mx = std::max(mx, q(i, j, k));
          total += ctx.sin_t(j) * ctx.dsig(k) * q(i, j, k);
        }
    const std::string path =
        (out_dir / (std::string("ca_agcm_plume_") +
                    (upwind ? "upwind" : "centered") + ".txt"))
            .string();
    util::write_text_level(path, upwind ? "upwind plume" : "centered plume",
                           q, cfg.nz / 3);
    std::printf("%-10s: min %+.4f  max %.4f  weighted total %.4f  -> %s\n",
                upwind ? "upwind" : "centered", mn, mx, total,
                path.c_str());
  }
  std::printf(
      "\nThe centered (skew-symmetric) scheme ripples around the plume\n"
      "(negative minima); the monotone upwind scheme stays in [0, 1] at\n"
      "the cost of spreading.  Load the .txt files with numpy.loadtxt or\n"
      "gnuplot's 'plot ... matrix' to see the plume.\n");
  return 0;
}
