// Held-Suarez dry benchmark (the paper's evaluation workload): run the
// dynamical core with H-S forcing and print the zonal-mean climatology —
// the westerly mid-latitude jets and the equator-pole temperature
// gradient the benchmark is defined by.
//
//   ./held_suarez [nx=48] [ny=24] [nz=10] [days=20] [ranks=2]
#include <cstdio>
#include <filesystem>
#include <vector>

#include "comm/runtime.hpp"
#include "core/ca_core.hpp"
#include "core/diagnostics.hpp"
#include "physics/held_suarez.hpp"
#include "state/transforms.hpp"
#include "state/vertical_interp.hpp"
#include "util/field_io.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace ca;
  const auto cfg_in = util::Config::from_args(argc, argv);

  core::DycoreConfig cfg;
  cfg.nx = cfg_in.get_int("nx", 48);
  cfg.ny = cfg_in.get_int("ny", 24);
  cfg.nz = cfg_in.get_int("nz", 10);
  cfg.M = cfg_in.get_int("m", 3);
  cfg.dt_adapt = cfg_in.get_double("dt_adapt", 60.0);
  cfg.dt_advect = cfg_in.get_double("dt_advect", 300.0);
  const double days = cfg_in.get_double("days", 20.0);
  const int ranks = cfg_in.get_int("ranks", 2);
  const int steps =
      static_cast<int>(days * 86400.0 / cfg.dt_advect);

  std::printf(
      "Held-Suarez dry benchmark: %dx%dx%d, %g simulated days "
      "(%d steps), %d ranks, CA core\n\n",
      cfg.nx, cfg.ny, cfg.nz, days, steps, ranks);

  comm::Runtime::run(ranks, [&](comm::Context& ctx) {
    core::CACore core(cfg, ctx, {1, ranks, 1});
    physics::HeldSuarezForcing forcing(core.op_context());
    auto xi = core.make_state();
    state::InitialOptions ic;
    ic.kind = state::InitialCondition::kRandomPerturbation;
    ic.random_amplitude = 1e-2;
    core.initialize(xi, ic);

    for (int s = 0; s < steps; ++s) {
      core.step(xi);
      forcing.apply(xi, cfg.dt_advect);
      if ((s + 1) % std::max(1, steps / 4) == 0) {
        auto d = core::reduce_diagnostics(
            ctx, ctx.world(),
            core::local_diagnostics(core.op_context(), xi));
        if (ctx.world_rank() == 0)
          std::printf("  day %5.1f: max|u*| %6.2f m/s, max|p'_sa| %7.1f Pa\n",
                      (s + 1) * cfg.dt_advect / 86400.0, d.max_abs_u,
                      d.max_abs_psa);
      }
    }
    core.finalize(xi);

    // Zonal-mean climatology at a mid-tropospheric level, gathered by row.
    const int k_mid = core.decomp().lnz() / 2;
    auto u_mean = core::zonal_mean_u(core.op_context(), xi, k_mid);
    auto t_surf = core::zonal_mean_t(core.op_context(), xi,
                                     core.decomp().lnz() - 1);
    // Print each rank's rows in order.
    for (int r = 0; r < ctx.world_size(); ++r) {
      comm::barrier(ctx, ctx.world());
      if (r != ctx.world_rank()) continue;
      if (r == 0)
        std::printf("\n%8s %12s %14s\n", "lat [deg]", "ubar [m/s]",
                    "Tbar(sfc) [K]");
      for (int j = 0; j < core.decomp().lny(); ++j) {
        const int gj = core.decomp().gj(j);
        const double lat =
            90.0 - (gj + 0.5) * 180.0 / cfg.ny;  // colatitude -> latitude
        std::printf("%8.1f %12.2f %14.1f\n", lat,
                    u_mean[static_cast<std::size_t>(j)],
                    t_surf[static_cast<std::size_t>(j)]);
      }
    }
    comm::barrier(ctx, ctx.world());

    // Plottable artifact: u interpolated to 500 hPa (the classic chart),
    // one text file per rank.
    {
      // Convert U back to physical u on the fly for the interpolation.
      util::Array3D<double> u_phys(core.decomp().lnx(),
                                   core.decomp().lny(),
                                   core.decomp().lnz(),
                                   xi.u().halo());
      for (int k = 0; k < core.decomp().lnz(); ++k)
        for (int j = 0; j < core.decomp().lny(); ++j)
          for (int i = 0; i < core.decomp().lnx(); ++i)
            u_phys(i, j, k) =
                xi.u()(i, j, k) /
                state::p_factor_u(xi.psa(), core.strat(), i, j);
      auto u500 = state::interpolate_to_pressure(core.op_context(),
                                                 xi.psa(), u_phys, 5.0e4);
      const auto path =
          (std::filesystem::temp_directory_path() /
           ("ca_agcm_u500.rank" + std::to_string(ctx.world_rank()) +
            ".txt"))
              .string();
      util::write_text_field(path, "u at 500 hPa [m/s]", u500);
      if (ctx.world_rank() == 0)
        std::printf("\nwrote u(500 hPa) text fields: %s (et al.)\n",
                    path.c_str());
    }

    if (ctx.world_rank() == 0)
      std::printf(
          "\nExpected H-S structure: warm tropical surface (~300 K) and\n"
          "cold poles (the forcing's 60 K contrast), with westerlies\n"
          "spinning up in mid-latitudes as the run lengthens.\n");
  });
  return 0;
}
