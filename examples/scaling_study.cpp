// Decomposition and scaling study with the performance model: sweeps
// process counts and decomposition schemes at the paper's 50 km mesh and
// prints the modeled communication/computation breakdown — a miniature,
// configurable version of Figures 6-8.
//
//   ./scaling_study [years=10] [dt=600] [pmin=64] [pmax=1024]
#include <cstdio>
#include <iostream>
#include <string>

#include "core/schedule_builders.hpp"
#include "perf/event_sim.hpp"
#include "perf/report.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace ca;
  const auto cfg = util::Config::from_args(argc, argv);
  const double years = cfg.get_double("years", 10.0);
  const double dt = cfg.get_double("dt", 600.0);
  const int pmin = cfg.get_int("pmin", 64);
  const int pmax = cfg.get_int("pmax", 1024);
  const long long steps =
      static_cast<long long>(years * 365.0 * 86400.0 / dt);

  const auto machine = perf::MachineModel::tianhe2();
  core::ScheduleParams base;
  base.mesh = {720, 360, 30};
  base.M = 3;
  base.steps = 1;

  std::printf(
      "Modeled scaling of the 50 km dynamical core, %g model years "
      "(K = %lld steps)\n\n",
      years, steps);
  std::printf("%6s %10s | %12s %12s %12s | %12s\n", "p", "scheme", "coll [s]",
              "stencil [s]", "compute [s]", "total [s]");

  for (int p = pmin; p <= pmax; p *= 2) {
    struct Row {
      const char* name;
      perf::Schedule sched;
    };
    auto params_yz = base;
    params_yz.grid = {1, p / 8, 8};
    auto params_xy = base;
    int px = 1;
    while (px * px < p) px *= 2;
    params_xy.grid = {px, p / px, 1};

    const Row rows[] = {
        {"XY", core::build_original_schedule(params_xy,
                                             core::DecompScheme::kXY,
                                             machine)},
        {"YZ", core::build_original_schedule(params_yz,
                                             core::DecompScheme::kYZ,
                                             machine)},
        {"CA", core::build_ca_schedule(params_yz, machine)},
    };
    for (const auto& row : rows) {
      const auto r = perf::simulate(row.sched, machine);
      const double scale = static_cast<double>(steps);
      std::printf("%6d %10s | %12.0f %12.0f %12.0f | %12.0f\n", p, row.name,
                  scale * r.phase_max_seconds(core::kPhaseCollective),
                  scale * r.phase_max_seconds(core::kPhaseStencil),
                  scale * r.phase_max_seconds(core::kPhaseCompute),
                  scale * r.makespan);
    }
    std::printf("\n");
  }
  // Detailed per-phase breakdown for the largest run: where the time
  // goes inside one step, and which rank sets the makespan.
  {
    auto params = base;
    params.grid = {1, pmax / 8, 8};
    const auto yz = perf::simulate(
        core::build_original_schedule(params, core::DecompScheme::kYZ,
                                      machine),
        machine);
    const auto ca =
        perf::simulate(core::build_ca_schedule(params, machine), machine);
    std::printf("\nPer-phase breakdown of one step at p = %d:\n", pmax);
    perf::print_summary(std::cout, yz, "original Y-Z");
    perf::print_summary(std::cout, ca, "communication-avoiding");
    std::printf("critical ranks: YZ %d, CA %d\n", perf::critical_rank(yz),
                perf::critical_rank(ca));
  }

  std::printf(
      "\nSet CA_AGCM_YEARS / pmin= / pmax= to explore other run lengths and\n"
      "rank ranges; perf::MachineModel holds the Tianhe-2 calibration.\n");
  return 0;
}
