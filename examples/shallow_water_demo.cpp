// Shallow-water demo: a gravity wave radiating from an equatorial height
// bump on the rotating sphere, printed as a coarse ASCII height-anomaly
// map — the classic first picture of any atmospheric-model substrate.
//
//   ./shallow_water_demo [nx=72] [ny=36] [steps=120] [ranks=2]
#include <cstdio>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/runtime.hpp"
#include "swe/shallow_water.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace ca;
  const auto cfg_in = util::Config::from_args(argc, argv);
  swe::SweConfig cfg;
  cfg.nx = cfg_in.get_int("nx", 72);
  cfg.ny = cfg_in.get_int("ny", 36);
  cfg.dt = cfg_in.get_double("dt", 60.0);
  const int steps = cfg_in.get_int("steps", 120);
  const int ranks = cfg_in.get_int("ranks", 2);

  std::printf(
      "Shallow-water gravity wave, %dx%d, dt = %.0f s, %d steps, %d "
      "ranks\n\n",
      cfg.nx, cfg.ny, cfg.dt, steps, ranks);

  comm::Runtime::run(ranks, [&](comm::Context& ctx) {
    swe::ShallowWaterCore core(cfg, ctx, ranks);
    auto s = core.make_state();
    core.initialize(s, swe::SweInitial::kGravityWave);

    auto report = [&](int step) {
      std::vector<double> sums{core.local_mass(s), core.local_energy(s)};
      std::vector<double> tot(2);
      comm::allreduce<double>(ctx, ctx.world(), sums, tot,
                              comm::ReduceOp::kSum);
      std::vector<double> vm{core.max_abs_velocity(s)}, vmax(1);
      comm::allreduce<double>(ctx, ctx.world(), vm, vmax,
                              comm::ReduceOp::kMax);
      if (ctx.world_rank() == 0)
        std::printf("step %4d: mass %.6e  energy %.6e  max|v| %6.2f m/s\n",
                    step, tot[0], tot[1], vmax[0]);
    };

    report(0);
    for (int n = 0; n < steps; ++n) {
      core.step(s);
      if ((n + 1) % (steps / 4) == 0) report(n + 1);
    }

    // ASCII height-anomaly map, rows printed rank by rank.
    const char* shades = " .:-=+*#%@";
    for (int r = 0; r < ranks; ++r) {
      comm::barrier(ctx, ctx.world());
      if (r != ctx.world_rank()) continue;
      if (r == 0) std::printf("\nheight anomaly (equator bump radiating):\n");
      for (int j = 0; j < core.decomp().lny(); j += 2) {
        for (int i = 0; i < cfg.nx; i += 2) {
          const double an = s.h(i, j) - cfg.mean_depth;
          int level = static_cast<int>((an + 50.0) / 100.0 * 9.0 + 0.5);
          level = std::min(9, std::max(0, level));
          std::fputc(shades[level], stdout);
        }
        std::fputc('\n', stdout);
      }
      std::fflush(stdout);
    }
    comm::barrier(ctx, ctx.world());
  });
  return 0;
}
