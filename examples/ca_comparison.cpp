// Side-by-side run of the original and communication-avoiding algorithms
// on the same initial state: accuracy of the approximation (max state
// difference), message counts, and wall time — the zero-to-one
// demonstration of the paper's contribution on a laptop-sized mesh.
//
//   ./ca_comparison [nx=48] [ny=48] [nz=8] [steps=8] [ranks=4]
#include <cstdio>

#include "comm/runtime.hpp"
#include "core/ca_core.hpp"
#include "core/exchange.hpp"
#include "core/original_core.hpp"
#include "util/config.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace ca;
  const auto cfg_in = util::Config::from_args(argc, argv);

  core::DycoreConfig cfg;
  cfg.nx = cfg_in.get_int("nx", 48);
  // 48 rows keep ny/ranks >= 3M + 1 (the CA core's deep-halo floor)
  // at the default M = 3, ranks = 4.
  cfg.ny = cfg_in.get_int("ny", 48);
  cfg.nz = cfg_in.get_int("nz", 8);
  cfg.M = cfg_in.get_int("m", 3);
  cfg.dt_adapt = cfg_in.get_double("dt_adapt", 60.0);
  cfg.dt_advect = cfg_in.get_double("dt_advect", 300.0);
  const int steps = cfg_in.get_int("steps", 8);
  const int ranks = cfg_in.get_int("ranks", 4);

  state::InitialOptions ic;
  ic.kind = state::InitialCondition::kPlanetaryWave;

  std::printf(
      "Original vs communication-avoiding, %dx%dx%d, M = %d, %d steps, "
      "%d ranks (Y-Z)\n\n",
      cfg.nx, cfg.ny, cfg.nz, cfg.M, steps, ranks);

  state::State orig_global, ca_global;
  struct RunStats {
    unsigned long long messages = 0;
    unsigned long long bytes = 0;
    unsigned long long collectives = 0;
    double seconds = 0.0;
  } orig_stats, ca_stats;

  comm::Runtime::run(ranks, [&](comm::Context& ctx) {
    core::OriginalCore core(cfg, ctx, core::DecompScheme::kYZ,
                            {1, ranks, 1});
    auto xi = core.make_state();
    core.initialize(xi, ic);
    util::Timer timer;
    core.run(xi, steps);
    const double secs = timer.seconds();
    auto g = core::gather_global(core.op_context(), ctx, core.topology(),
                                 xi);
    if (ctx.world_rank() == 0) {
      auto t = ctx.stats().grand_totals();
      orig_stats = {t.p2p_messages, t.p2p_bytes, t.collective_calls, secs};
      orig_global = std::move(g);
    }
  });

  comm::Runtime::run(ranks, [&](comm::Context& ctx) {
    core::CACore core(cfg, ctx, {1, ranks, 1});
    auto xi = core.make_state();
    core.initialize(xi, ic);
    util::Timer timer;
    core.run(xi, steps);
    const double secs = timer.seconds();
    auto g = core::gather_global(core.op_context(), ctx, core.topology(),
                                 xi);
    if (ctx.world_rank() == 0) {
      auto t = ctx.stats().grand_totals();
      ca_stats = {t.p2p_messages, t.p2p_bytes, t.collective_calls, secs};
      ca_global = std::move(g);
    }
  });

  const double diff = state::State::max_abs_diff(
      orig_global, ca_global, orig_global.interior());
  double scale = 0.0;
  for (int k = 0; k < cfg.nz; ++k)
    for (int j = 0; j < cfg.ny; ++j)
      for (int i = 0; i < cfg.nx; ++i)
        scale = std::max(scale, std::abs(orig_global.u()(i, j, k)));

  std::printf("%-26s %14s %14s\n", "", "original", "comm-avoiding");
  std::printf("%-26s %14llu %14llu\n", "halo messages (rank 0)",
              orig_stats.messages, ca_stats.messages);
  std::printf("%-26s %14llu %14llu\n", "halo bytes (rank 0)",
              orig_stats.bytes, ca_stats.bytes);
  std::printf("%-26s %14llu %14llu\n", "collective calls (rank 0)",
              orig_stats.collectives, ca_stats.collectives);
  std::printf("%-26s %14.3f %14.3f\n", "wall time [s]", orig_stats.seconds,
              ca_stats.seconds);
  std::printf(
      "\nmax |original - CA| after %d steps: %.3e  (field scale ~%.1f)\n",
      steps, diff, scale);
  std::printf(
      "The difference is the approximate nonlinear iteration's high-order\n"
      "perturbation (paper eq. 13); the message count drops from\n"
      "(3M + 4) x fields to 2 fat exchanges per step.\n");
  return 0;
}
