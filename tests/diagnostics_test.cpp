// Diagnostics extensions (zonal spectra vs the polar filter) and the
// scan/sendrecv collectives.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/collectives.hpp"
#include "comm/runtime.hpp"
#include "core/diagnostics.hpp"
#include "core/serial_core.hpp"
#include "ops/filter.hpp"
#include "util/math.hpp"

namespace ca {
namespace {

TEST(ZonalSpectrum, IdentifiesPureTone) {
  core::DycoreConfig c;
  c.nx = 48;
  c.ny = 16;
  c.nz = 4;
  core::SerialCore core(c);
  auto xi = core.make_state();
  xi.fill(0.0);
  const int tone = 7, row = 8, lev = 1;
  for (int i = 0; i < c.nx; ++i)
    xi.phi()(i, row, lev) = 3.0 * std::cos(2.0 * util::kPi * tone * i / c.nx);
  auto power = core::zonal_spectrum(core.op_context(), xi.phi(), row, lev);
  // Parseval-normalized power of A*cos: A^2/2 in the m = tone bin.
  EXPECT_NEAR(power[tone], 4.5, 1e-9);
  for (int m = 0; m <= c.nx / 2; ++m) {
    if (m == tone) continue;
    EXPECT_NEAR(power[static_cast<std::size_t>(m)], 0.0, 1e-9) << "m=" << m;
  }
}

TEST(ZonalSpectrum, FilterDampsPolarHighWavenumbers) {
  core::DycoreConfig c;
  c.nx = 48;
  c.ny = 24;
  c.nz = 4;
  core::SerialCore core(c);
  ops::FourierFilter filt(core.op_context());
  auto xi = core.make_state();
  xi.fill(0.0);
  const int polar_row = 1;  // near the north pole: active
  ASSERT_TRUE(filt.row_active(polar_row));
  const int m_high = 20;
  for (int i = 0; i < c.nx; ++i)
    xi.phi()(i, polar_row, 0) =
        std::cos(2.0 * util::kPi * m_high * i / c.nx) + 2.0;
  auto before =
      core::zonal_spectrum(core.op_context(), xi.phi(), polar_row, 0);
  filt.apply_local(core.op_context(), xi, xi.interior());
  auto after =
      core::zonal_spectrum(core.op_context(), xi.phi(), polar_row, 0);
  EXPECT_LT(after[m_high], 0.05 * before[m_high])
      << "high zonal wavenumber must be damped at a polar row";
  EXPECT_NEAR(after[0], before[0], 1e-10) << "zonal mean preserved";
}

TEST(Scan, InclusivePrefix) {
  comm::Runtime::run(6, [](comm::Context& ctx) {
    const int me = ctx.world_rank();
    std::vector<double> in{static_cast<double>(me + 1)};
    std::vector<double> out(1, -1.0);
    comm::scan<double>(ctx, ctx.world(), in, out, comm::ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(out[0], (me + 1) * (me + 2) / 2.0);
  });
}

TEST(Scan, MaxOperator) {
  comm::Runtime::run(5, [](comm::Context& ctx) {
    const int me = ctx.world_rank();
    // Values 3, 1, 4, 1, 5 -> running max 3, 3, 4, 4, 5.
    const double vals[] = {3, 1, 4, 1, 5};
    const double expect[] = {3, 3, 4, 4, 5};
    std::vector<double> in{vals[me]};
    std::vector<double> out(1);
    comm::scan<double>(ctx, ctx.world(), in, out, comm::ReduceOp::kMax);
    EXPECT_DOUBLE_EQ(out[0], expect[me]);
  });
}

TEST(Scan, MatchesExscanPlusOwn) {
  comm::Runtime::run(7, [](comm::Context& ctx) {
    std::vector<double> in{1.5 * ctx.world_rank() + 0.25};
    std::vector<double> inc(1), exc(1);
    comm::scan<double>(ctx, ctx.world(), in, inc, comm::ReduceOp::kSum);
    comm::exscan<double>(ctx, ctx.world(), in, exc, comm::ReduceOp::kSum);
    EXPECT_NEAR(inc[0], exc[0] + in[0], 1e-12);
  });
}

TEST(SendRecv, RingRotation) {
  comm::Runtime::run(5, [](comm::Context& ctx) {
    const int me = ctx.world_rank();
    const int p = ctx.world_size();
    std::vector<int> out{me * 10};
    std::vector<int> in(1);
    comm::sendrecv<int>(ctx, ctx.world(), (me + 1) % p, 3, out,
                        (me - 1 + p) % p, 3, in);
    EXPECT_EQ(in[0], ((me - 1 + p) % p) * 10);
  });
}

TEST(SendRecv, SelfExchangeThroughNeighbors) {
  // Two half-rotations return the original value.
  comm::Runtime::run(4, [](comm::Context& ctx) {
    const int me = ctx.world_rank();
    const int p = ctx.world_size();
    std::vector<double> v{me + 0.5};
    std::vector<double> tmp(1);
    comm::sendrecv<double>(ctx, ctx.world(), (me + 2) % p, 9, v,
                           (me + 2) % p, 9, tmp);
    comm::sendrecv<double>(ctx, ctx.world(), (me + 2) % p, 10, tmp,
                           (me + 2) % p, 10, v);
    EXPECT_DOUBLE_EQ(v[0], me + 0.5);
  });
}

}  // namespace
}  // namespace ca
