// Fault-injection determinism: the same seed and the same FaultPlan must
// produce a bitwise-identical execution — identical final values on every
// rank AND an identical injection pattern — across two runs, for every
// allreduce algorithm.  Faults must also stay transparent: the faulty
// result equals the fault-free one bit for bit.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/context.hpp"
#include "comm/fault.hpp"
#include "comm/runtime.hpp"
#include "core/ca_core.hpp"
#include "core/exchange.hpp"

namespace ca::comm {
namespace {

constexpr int kRanks = 4;      // power of two so kRabenseifner runs natively
constexpr std::size_t kN = 64; // >= p so kRabenseifner does not fall back

FaultPlan test_plan(std::uint64_t seed) {
  FaultPlan plan(seed);
  auto add = [&](FaultKind kind, double p, int param) {
    FaultRule r;
    r.kind = kind;
    r.probability = p;
    r.param = param;
    plan.add_rule(r);
  };
  add(FaultKind::kDrop, 0.15, 1);
  add(FaultKind::kDuplicate, 0.15, 1);
  add(FaultKind::kDelay, 0.15, 2);
  return plan;
}

/// Runs one allreduce on kRanks ranks under `opts` and returns the
/// per-rank output vectors.
std::vector<std::vector<double>> run_allreduce(AllreduceAlgorithm alg,
                                               const RunOptions& opts) {
  std::vector<std::vector<double>> results(kRanks);
  Runtime::run(kRanks, opts, [&](Context& ctx) {
    std::vector<double> in(kN), out(kN);
    for (std::size_t i = 0; i < kN; ++i)
      in[i] = 1.0 + 0.37 * static_cast<double>(i) +
              1.3 * static_cast<double>(ctx.world_rank());
    allreduce<double>(ctx, ctx.world(), in, out, ReduceOp::kSum, alg);
    results[static_cast<std::size_t>(ctx.world_rank())] = std::move(out);
  });
  return results;
}

bool bitwise_equal(const std::vector<std::vector<double>>& a,
                   const std::vector<std::vector<double>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t r = 0; r < a.size(); ++r) {
    if (a[r].size() != b[r].size()) return false;
    if (std::memcmp(a[r].data(), b[r].data(),
                    a[r].size() * sizeof(double)) != 0)
      return false;
  }
  return true;
}

bool same_injections(const FaultSummary& x, const FaultSummary& y) {
  return x.injected_delay == y.injected_delay &&
         x.injected_duplicate == y.injected_duplicate &&
         x.injected_drop == y.injected_drop &&
         x.injected_corrupt == y.injected_corrupt &&
         x.injected_stall == y.injected_stall;
}

class AllreduceDeterminism
    : public ::testing::TestWithParam<AllreduceAlgorithm> {};

TEST_P(AllreduceDeterminism, SameSeedSameFaultPlanIsBitwiseIdentical) {
  const AllreduceAlgorithm alg = GetParam();
  constexpr std::uint64_t kSeed = 777;

  const auto clean = run_allreduce(alg, RunOptions{});

  FaultPlan plan_a = test_plan(kSeed);
  RunOptions opts_a;
  opts_a.faults = &plan_a;
  const auto run_a = run_allreduce(alg, opts_a);

  FaultPlan plan_b = test_plan(kSeed);
  RunOptions opts_b;
  opts_b.faults = &plan_b;
  const auto run_b = run_allreduce(alg, opts_b);

  EXPECT_GT(plan_a.summary().injected_total(), 0u)
      << "plan injected nothing; determinism claim is vacuous";
  EXPECT_TRUE(same_injections(plan_a.summary(), plan_b.summary()))
      << "identical seeds produced different fault patterns";
  EXPECT_TRUE(bitwise_equal(run_a, run_b))
      << "two runs with the same FaultPlan diverged";
  EXPECT_TRUE(bitwise_equal(run_a, clean))
      << "recovered faults changed the allreduce result";
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, AllreduceDeterminism,
    ::testing::Values(AllreduceAlgorithm::kRing,
                      AllreduceAlgorithm::kRecursiveDoubling,
                      AllreduceAlgorithm::kLinearOrdered,
                      AllreduceAlgorithm::kRabenseifner),
    [](const ::testing::TestParamInfo<AllreduceAlgorithm>& i) {
      switch (i.param) {
        case AllreduceAlgorithm::kRing: return "ring";
        case AllreduceAlgorithm::kRecursiveDoubling: return "rd";
        case AllreduceAlgorithm::kLinearOrdered: return "linear";
        case AllreduceAlgorithm::kRabenseifner: return "rab";
        default: return "auto";
      }
    });

TEST(CACoreDeterminism, SameFaultSeedReproducesFinalStateBitwise) {
  core::DycoreConfig cfg;
  cfg.nx = 24;
  cfg.ny = 16;
  cfg.nz = 8;
  cfg.M = 2;
  cfg.dt_adapt = 30.0;
  cfg.dt_advect = 120.0;
  cfg.z_allreduce = AllreduceAlgorithm::kLinearOrdered;
  constexpr int kSteps = 2;

  auto run_once = [&](FaultPlan* plan) {
    state::State global;
    RunOptions opts;
    opts.faults = plan;
    Runtime::run(2, opts, [&](Context& ctx) {
      core::CACore core(cfg, ctx, {1, 2, 1});
      auto xi = core.make_state();
      state::InitialOptions init;
      init.kind = state::InitialCondition::kPlanetaryWave;
      core.initialize(xi, init);
      core.run(xi, kSteps);
      auto g = core::gather_global(core.op_context(), ctx, core.topology(),
                                   xi);
      if (ctx.world_rank() == 0) global = std::move(g);
    });
    return global;
  };

  FaultPlan plan_a = test_plan(99);
  const state::State a = run_once(&plan_a);
  FaultPlan plan_b = test_plan(99);
  const state::State b = run_once(&plan_b);

  EXPECT_GT(plan_a.summary().injected_total(), 0u);
  EXPECT_TRUE(same_injections(plan_a.summary(), plan_b.summary()));
  const double diff = state::State::max_abs_diff(a, b, a.interior());
  EXPECT_EQ(diff, 0.0)
      << "same fault seed must reproduce the final state bit for bit";
}

}  // namespace
}  // namespace ca::comm
