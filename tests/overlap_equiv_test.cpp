// Communication/computation overlap (comm.overlap_exchange): posting the
// halo exchange early and completing faces per boundary sub-range must be
// invisible to the numerics — bitwise-identical final states on every
// core and decomposition shape, with and without message coalescing, and
// under recoverable fault injection against the in-flight posts.  The
// message counts must not move either: overlap changes WHEN a message is
// waited on, never how many are sent.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "comm/error.hpp"
#include "comm/fault.hpp"
#include "comm/runtime.hpp"
#include "core/ca_core.hpp"
#include "core/exchange.hpp"
#include "core/original_core.hpp"
#include "core/serial_core.hpp"
#include "util/config.hpp"

namespace ca::core {
namespace {

DycoreConfig test_config() {
  DycoreConfig c;
  c.nx = 24;
  // 32 rows keep ny/py >= 3M + 1 for the CA core's deep halos at py = 4.
  c.ny = 32;
  c.nz = 8;
  c.M = 2;
  c.dt_adapt = 30.0;
  c.dt_advect = 120.0;
  // Ordered z reduction keeps the two modes bitwise comparable.
  c.z_allreduce = comm::AllreduceAlgorithm::kLinearOrdered;
  // Honor the documented env override (CA_AGCM_COMM_OVERLAP_EXCHANGE) the
  // way a runtime config would; the equivalence runs below override the
  // field explicitly so the on-vs-off contrast survives the CI overlap leg.
  c.overlap_exchange =
      util::Config{}.get_bool("comm.overlap_exchange", false);
  return c;
}

struct RunTotals {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

state::State run_serial(int steps, bool overlap) {
  DycoreConfig cfg = test_config();
  cfg.overlap_exchange = overlap;
  SerialCore core(cfg);
  auto xi = core.make_state();
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kPlanetaryWave;
  core.initialize(xi, opt);
  core.run(xi, steps);
  return xi;
}

/// Runs `steps` of the original core and returns the state gathered to
/// logical rank 0.
state::State run_original(DecompScheme scheme, std::array<int, 3> dims,
                          int steps, bool overlap, bool coalesce = false,
                          comm::FaultPlan* plan = nullptr,
                          RunTotals* totals = nullptr,
                          std::chrono::milliseconds recv_timeout =
                              std::chrono::milliseconds{120000}) {
  const int p = dims[0] * dims[1] * dims[2];
  state::State global;
  std::mutex mu;
  comm::RunOptions opts;
  opts.faults = plan;
  opts.recv_timeout = recv_timeout;
  comm::Runtime::run(p, opts, [&](comm::Context& ctx) {
    DycoreConfig cfg = test_config();
    cfg.overlap_exchange = overlap;
    cfg.coalesce_exchange = coalesce;
    OriginalCore core(cfg, ctx, scheme, dims);
    auto xi = core.make_state();
    state::InitialOptions opt;
    opt.kind = state::InitialCondition::kPlanetaryWave;
    core.initialize(xi, opt);
    core.run(xi, steps);
    state::State g = gather_global(core.op_context(), ctx,
                                   core.topology(), xi);
    std::lock_guard<std::mutex> lock(mu);
    if (ctx.world_rank() == 0) global = std::move(g);
    if (totals != nullptr) {
      const auto t = ctx.stats().grand_totals();
      totals->messages += t.p2p_messages;
      totals->bytes += t.p2p_bytes;
    }
  });
  return global;
}

state::State run_ca(int p, int steps, bool overlap, bool coalesce = false,
                    comm::FaultPlan* plan = nullptr,
                    RunTotals* totals = nullptr) {
  state::State global;
  std::mutex mu;
  comm::RunOptions opts;
  opts.faults = plan;
  comm::Runtime::run(p, opts, [&](comm::Context& ctx) {
    DycoreConfig cfg = test_config();
    cfg.overlap_exchange = overlap;
    cfg.coalesce_exchange = coalesce;
    CACore core(cfg, ctx, {1, p, 1});
    auto xi = core.make_state();
    state::InitialOptions opt;
    opt.kind = state::InitialCondition::kPlanetaryWave;
    core.initialize(xi, opt);
    core.run(xi, steps);
    state::State g = gather_global(core.op_context(), ctx,
                                   core.topology(), xi);
    std::lock_guard<std::mutex> lock(mu);
    if (ctx.world_rank() == 0) global = std::move(g);
    if (totals != nullptr) {
      const auto t = ctx.stats().grand_totals();
      totals->messages += t.p2p_messages;
      totals->bytes += t.p2p_bytes;
    }
  });
  return global;
}

constexpr int kSteps = 2;

TEST(OverlapEquiv, SerialSplitIsBitwiseIdentical) {
  // The serial core has no messages, but the flag routes it through the
  // same interior/boundary split passes — this pins the pure geometry.
  state::State off = run_serial(kSteps, false);
  state::State on = run_serial(kSteps, true);
  const double diff = state::State::max_abs_diff(off, on, off.interior());
  EXPECT_EQ(diff, 0.0) << "serial interior/boundary split changed a bit";
}

TEST(OverlapEquiv, OriginalBitwiseAcrossDecompositionShapes) {
  // 1xN (y line, z-line collectives), Nx1 (x line, distributed filter),
  // and NxM (y-z plane: faces plus corner exchanges).
  const struct {
    DecompScheme scheme;
    std::array<int, 3> dims;
  } cases[] = {
      {DecompScheme::kYZ, {1, 4, 1}},
      {DecompScheme::kXY, {4, 1, 1}},
      {DecompScheme::kYZ, {1, 2, 2}},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(::testing::Message() << "dims " << c.dims[0] << "x"
                                      << c.dims[1] << "x" << c.dims[2]);
    RunTotals off_totals, on_totals;
    state::State off = run_original(c.scheme, c.dims, kSteps, false, false,
                                    nullptr, &off_totals);
    state::State on = run_original(c.scheme, c.dims, kSteps, true, false,
                                   nullptr, &on_totals);
    const double diff = state::State::max_abs_diff(off, on, off.interior());
    EXPECT_EQ(diff, 0.0) << "overlap changed the answer";
    EXPECT_EQ(on_totals.messages, off_totals.messages)
        << "overlap must not change the paper's message counts";
    EXPECT_EQ(on_totals.bytes, off_totals.bytes);
  }
}

TEST(OverlapEquiv, OriginalBitwiseWithCoalescing) {
  const std::array<int, 3> dims{1, 2, 2};
  state::State off =
      run_original(DecompScheme::kYZ, dims, kSteps, false, true);
  state::State on =
      run_original(DecompScheme::kYZ, dims, kSteps, true, true);
  const double diff = state::State::max_abs_diff(off, on, off.interior());
  EXPECT_EQ(diff, 0.0) << "overlap + coalescing changed the answer";
}

TEST(OverlapEquiv, CABitwiseWithAndWithoutCoalescing) {
  for (bool coalesce : {false, true}) {
    SCOPED_TRACE(coalesce ? "coalesced" : "per-item");
    RunTotals off_totals, on_totals;
    state::State off =
        run_ca(4, kSteps, false, coalesce, nullptr, &off_totals);
    state::State on = run_ca(4, kSteps, true, coalesce, nullptr, &on_totals);
    const double diff = state::State::max_abs_diff(off, on, off.interior());
    EXPECT_EQ(diff, 0.0) << "per-face drain changed the CA answer";
    EXPECT_EQ(on_totals.messages, off_totals.messages);
  }
}

comm::FaultPlan recoverable_plan(std::uint64_t seed) {
  comm::FaultPlan plan(seed);
  auto add = [&](comm::FaultKind kind, double prob, int param) {
    comm::FaultRule r;
    r.kind = kind;
    r.probability = prob;
    r.param = param;
    plan.add_rule(r);
  };
  // Drop (forces retransmission against an in-flight post), duplicate,
  // and delay (ages across finish_region/test polls).
  add(comm::FaultKind::kDrop, 0.10, 1);
  add(comm::FaultKind::kDuplicate, 0.10, 1);
  add(comm::FaultKind::kDelay, 0.10, 3);
  return plan;
}

TEST(OverlapEquiv, OriginalBitwiseUnderActiveFaultPlan) {
  const std::array<int, 3> dims{1, 2, 2};
  state::State reference =
      run_original(DecompScheme::kYZ, dims, kSteps, false);
  comm::FaultPlan plan = recoverable_plan(4242);
  state::State faulted =
      run_original(DecompScheme::kYZ, dims, kSteps, true, false, &plan);
  EXPECT_GT(plan.summary().injected_total(), 0u)
      << "plan must actually fire for this test to mean anything";
  EXPECT_EQ(plan.summary().detected_total(), 0u)
      << "recoverable faults must not surface as errors";
  const double diff =
      state::State::max_abs_diff(reference, faulted, reference.interior());
  EXPECT_EQ(diff, 0.0)
      << "fault recovery against in-flight posts changed the answer";
}

TEST(OverlapEquiv, CABitwiseUnderActiveFaultPlan) {
  state::State reference = run_ca(4, kSteps, false);
  comm::FaultPlan plan = recoverable_plan(777);
  state::State faulted = run_ca(4, kSteps, true, false, &plan);
  EXPECT_GT(plan.summary().injected_total(), 0u);
  EXPECT_EQ(plan.summary().detected_total(), 0u);
  const double diff =
      state::State::max_abs_diff(reference, faulted, reference.interior());
  EXPECT_EQ(diff, 0.0);
}

TEST(OverlapEquiv, CorruptionAgainstInFlightPostsIsDetectedNotHung) {
  // Corruption is detected-fatal (ChecksumError), not recoverable: an
  // overlap run must surface it as the typed error instead of deadlocking
  // in finish_region()/finish() or silently unpacking garbage.
  comm::FaultPlan plan(31);
  comm::FaultRule corrupt;
  corrupt.kind = comm::FaultKind::kCorrupt;
  corrupt.probability = 1.0;
  corrupt.param = 2;
  plan.add_rule(corrupt);
  // Short receive deadline: with every retransmission corrupted too, the
  // receiver polls until the deadline before surfacing the typed error.
  EXPECT_THROW(run_original(DecompScheme::kYZ, {1, 2, 1}, 1, true, false,
                            &plan, nullptr, std::chrono::milliseconds{2000}),
               comm::ChecksumError);
  EXPECT_GE(plan.summary().detected_checksum, 1u);
}

TEST(OverlapEquiv, ConfigKeyFoldsToDocumentedEnvName) {
  EXPECT_EQ(util::Config::env_name("comm.overlap_exchange"),
            "CA_AGCM_COMM_OVERLAP_EXCHANGE");
  // Struct default must stay off: the paper's message counts and the
  // bitwise baselines are defined by the non-overlapped schedule.
  EXPECT_FALSE(DycoreConfig{}.overlap_exchange);
}

}  // namespace
}  // namespace ca::core
