// Chaos suite, part 1: every fault kind the FaultPlan can inject (delay,
// duplicate, drop, corrupt, stall) has a test asserting the run either
// *detects* the fault — a typed error within a wall-clock bound, never a
// hang — or *recovers bit-for-bit*: with recovery enabled the final state
// is identical to a fault-free run with the same seed.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <sstream>
#include <vector>

#include "comm/context.hpp"

#include "comm/error.hpp"
#include "comm/fault.hpp"
#include "comm/runtime.hpp"
#include "core/ca_core.hpp"
#include "core/exchange.hpp"
#include "perf/report.hpp"
#include "util/config.hpp"

namespace ca::comm {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Guard value for "the run must not hang": generous against slow CI
/// machines, tiny against an actual infinite spin.
constexpr double kWallClockBound = 60.0;

FaultRule rule(FaultKind kind, double probability, int param = 1) {
  FaultRule r;
  r.kind = kind;
  r.probability = probability;
  r.param = param;
  return r;
}

TEST(FaultPlanUnit, DecisionsAreDeterministicGivenSeed) {
  FaultPlan a(1234), b(1234), c(99);
  for (FaultPlan* p : {&a, &b, &c}) {
    p->add_rule(rule(FaultKind::kDrop, 0.3));
    p->add_rule(rule(FaultKind::kDelay, 0.3, 5));
    p->add_rule(rule(FaultKind::kDuplicate, 0.3));
  }
  int diff_from_c = 0;
  for (std::uint64_t seq = 1; seq <= 200; ++seq) {
    const auto ia = a.decide("stencil", 0, 1, 7, seq);
    const auto ib = b.decide("stencil", 0, 1, 7, seq);
    EXPECT_EQ(ia.drop, ib.drop);
    EXPECT_EQ(ia.duplicate, ib.duplicate);
    EXPECT_EQ(ia.delay_polls, ib.delay_polls);
    const auto ic = c.decide("stencil", 0, 1, 7, seq);
    if (ia.drop != ic.drop || ia.duplicate != ic.duplicate ||
        ia.delay_polls != ic.delay_polls)
      ++diff_from_c;
  }
  // A different seed must give a different fault pattern.
  EXPECT_GT(diff_from_c, 0);
  // Probabilities actually fire at roughly the requested rate.
  const auto s = a.summary();
  EXPECT_GT(s.injected_drop, 20u);
  EXPECT_LT(s.injected_drop, 120u);
}

TEST(FaultPlanUnit, ScopesRestrictInjection) {
  FaultPlan plan(7);
  FaultRule r = rule(FaultKind::kDrop, 1.0);
  r.phase = "stencil";
  r.tag = 42;
  r.src = 0;
  r.dst = 1;
  plan.add_rule(r);
  EXPECT_TRUE(plan.decide("stencil", 0, 1, 42, 1).drop);
  EXPECT_FALSE(plan.decide("collective", 0, 1, 42, 1).drop);
  EXPECT_FALSE(plan.decide("stencil", 1, 0, 42, 1).drop);
  EXPECT_FALSE(plan.decide("stencil", 0, 1, 43, 1).drop);
}

TEST(FaultPlanUnit, FromConfigParsesFaultsBlock) {
  const auto cfg = util::Config::from_text(
      "faults.seed = 31\n"
      "faults.drop = 0.25\n"
      "faults.delay = 0.5   # with a comment\n"
      "faults.delay_polls = 7\n"
      "faults.corrupt = 0.1\n"
      "faults.phase = stencil\n"
      "faults.tag = 9\n");
  FaultPlan plan = FaultPlan::from_config(cfg);
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.seed(), 31u);
  ASSERT_EQ(plan.rules().size(), 3u);
  EXPECT_EQ(plan.rules()[0].kind, FaultKind::kDelay);
  EXPECT_EQ(plan.rules()[0].param, 7);
  EXPECT_EQ(plan.rules()[0].phase, "stencil");
  EXPECT_EQ(plan.rules()[0].tag, 9);
  EXPECT_EQ(plan.rules()[1].kind, FaultKind::kDrop);
  EXPECT_DOUBLE_EQ(plan.rules()[1].probability, 0.25);
  EXPECT_EQ(plan.rules()[2].kind, FaultKind::kCorrupt);

  const auto off = util::Config::from_text(
      "faults.enabled = false\nfaults.drop = 1.0\n");
  EXPECT_FALSE(FaultPlan::from_config(off).enabled());
}

// --- delay: recovered transparently ---------------------------------------

TEST(FaultInjection, DelayRecoversBitForBit) {
  FaultPlan plan(11);
  plan.add_rule(rule(FaultKind::kDelay, 1.0, 3));
  RunOptions opts;
  opts.faults = &plan;
  const auto start = Clock::now();
  Runtime::run(2, opts, [](Context& ctx) {
    const auto& w = ctx.world();
    std::vector<double> buf(64);
    for (int round = 0; round < 8; ++round) {
      if (ctx.world_rank() == 0) {
        for (std::size_t i = 0; i < buf.size(); ++i)
          buf[i] = round * 1000.0 + static_cast<double>(i);
        ctx.send_values<double>(w, 1, 5, buf);
      } else {
        ctx.recv_values<double>(w, 0, 5, buf);
        for (std::size_t i = 0; i < buf.size(); ++i)
          ASSERT_EQ(buf[i], round * 1000.0 + static_cast<double>(i));
      }
    }
  });
  EXPECT_LT(elapsed_seconds(start), kWallClockBound);
  const auto s = plan.summary();
  EXPECT_EQ(s.injected_delay, 8u);
  EXPECT_EQ(s.recovered_delay, 8u);
  EXPECT_EQ(s.detected_total(), 0u);
}

// --- duplicate: suppressed via sequence numbers ----------------------------

TEST(FaultInjection, DuplicateSuppressedInOrder) {
  FaultPlan plan(13);
  plan.add_rule(rule(FaultKind::kDuplicate, 1.0));
  RunOptions opts;
  opts.faults = &plan;
  const auto start = Clock::now();
  Runtime::run(2, opts, [](Context& ctx) {
    const auto& w = ctx.world();
    std::array<double, 4> buf{};
    for (int i = 0; i < 10; ++i) {
      if (ctx.world_rank() == 0) {
        buf.fill(static_cast<double>(i));
        ctx.send_values<double>(w, 1, 3, buf);
      } else {
        ctx.recv_values<double>(w, 0, 3, buf);
        // Every receive must see the next value exactly once, in order.
        ASSERT_EQ(buf[0], static_cast<double>(i));
      }
    }
  });
  EXPECT_LT(elapsed_seconds(start), kWallClockBound);
  const auto s = plan.summary();
  EXPECT_EQ(s.injected_duplicate, 10u);
  EXPECT_GE(s.recovered_duplicate, 9u);  // the last copy may never be polled
  EXPECT_EQ(s.detected_total(), 0u);
}

// --- drop: recovered by retransmission, detected without retries -----------

TEST(FaultInjection, DropRecoversViaRetransmission) {
  FaultPlan plan(17);
  plan.add_rule(rule(FaultKind::kDrop, 1.0));
  RunOptions opts;
  opts.faults = &plan;
  opts.max_resends = 1;
  const auto start = Clock::now();
  Runtime::run(2, opts, [](Context& ctx) {
    const auto& w = ctx.world();
    std::array<double, 8> buf{};
    for (int i = 0; i < 6; ++i) {
      if (ctx.world_rank() == 0) {
        buf.fill(100.0 + i);
        ctx.send_values<double>(w, 1, 2, buf);
      } else {
        ctx.recv_values<double>(w, 0, 2, buf);
        ASSERT_EQ(buf[7], 100.0 + i);
      }
    }
  });
  EXPECT_LT(elapsed_seconds(start), kWallClockBound);
  const auto s = plan.summary();
  EXPECT_EQ(s.injected_drop, 6u);
  EXPECT_EQ(s.recovered_drop, 6u);
  EXPECT_EQ(s.detected_total(), 0u);
}

TEST(FaultInjection, DropDetectedAsTimeoutWhenRetriesDisabled) {
  FaultPlan plan(19);
  plan.add_rule(rule(FaultKind::kDrop, 1.0));
  RunOptions opts;
  opts.faults = &plan;
  opts.max_resends = 0;  // no retransmission: the drop must surface
  opts.recv_timeout = std::chrono::milliseconds(250);
  const auto start = Clock::now();
  EXPECT_THROW(
      Runtime::run(2, opts,
                   [](Context& ctx) {
                     const auto& w = ctx.world();
                     std::array<double, 8> buf{};
                     if (ctx.world_rank() == 0) {
                       buf.fill(1.0);
                       ctx.send_values<double>(w, 1, 2, buf);
                     } else {
                       ctx.recv_values<double>(w, 0, 2, buf);
                     }
                   }),
      TimeoutError);
  EXPECT_LT(elapsed_seconds(start), kWallClockBound);
  const auto s = plan.summary();
  EXPECT_EQ(s.injected_drop, 1u);
  EXPECT_GE(s.detected_timeout, 1u);
  EXPECT_EQ(s.recovered_drop, 0u);
}

// --- corrupt: detected via the payload checksum ----------------------------

TEST(FaultInjection, CorruptDetectedByChecksum) {
  FaultPlan plan(23);
  plan.add_rule(rule(FaultKind::kCorrupt, 1.0, 1));
  RunOptions opts;
  opts.faults = &plan;
  const auto start = Clock::now();
  EXPECT_THROW(
      Runtime::run(2, opts,
                   [](Context& ctx) {
                     const auto& w = ctx.world();
                     std::array<double, 16> buf{};
                     if (ctx.world_rank() == 0) {
                       buf.fill(3.25);
                       ctx.send_values<double>(w, 1, 4, buf);
                     } else {
                       ctx.recv_values<double>(w, 0, 4, buf);
                     }
                   }),
      ChecksumError);
  EXPECT_LT(elapsed_seconds(start), kWallClockBound);
  const auto s = plan.summary();
  EXPECT_EQ(s.injected_corrupt, 1u);
  EXPECT_EQ(s.detected_checksum, 1u);
}

// --- stall: detected by the peer's bounded wait, recovered under a
// generous timeout -----------------------------------------------------------

TEST(FaultInjection, StallDetectedByPeerTimeout) {
  FaultPlan plan(29);
  FaultRule r = rule(FaultKind::kStall, 1.0, 5000);  // 5000 polls = 1 s
  r.src = 0;                                         // stall rank 0 only
  plan.add_rule(r);
  RunOptions opts;
  opts.faults = &plan;
  opts.recv_timeout = std::chrono::milliseconds(150);
  const auto start = Clock::now();
  EXPECT_THROW(
      Runtime::run(2, opts,
                   [](Context& ctx) {
                     const auto& w = ctx.world();
                     std::array<double, 4> buf{};
                     ctx.notify_step();  // rank 0 stalls here
                     if (ctx.world_rank() == 0) {
                       buf.fill(9.0);
                       ctx.send_values<double>(w, 1, 6, buf);
                     } else {
                       ctx.recv_values<double>(w, 0, 6, buf);
                     }
                   }),
      TimeoutError);
  EXPECT_LT(elapsed_seconds(start), kWallClockBound);
  const auto s = plan.summary();
  EXPECT_EQ(s.injected_stall, 1u);
  EXPECT_GE(s.detected_timeout, 1u);
}

TEST(FaultInjection, StallRecoversUnderGenerousTimeout) {
  FaultPlan plan(31);
  FaultRule r = rule(FaultKind::kStall, 1.0, 50);  // 50 polls = 10 ms
  r.src = 0;
  plan.add_rule(r);
  RunOptions opts;
  opts.faults = &plan;
  const auto start = Clock::now();
  Runtime::run(2, opts, [](Context& ctx) {
    const auto& w = ctx.world();
    std::array<double, 4> buf{};
    ctx.notify_step();
    if (ctx.world_rank() == 0) {
      buf.fill(9.0);
      ctx.send_values<double>(w, 1, 6, buf);
    } else {
      ctx.recv_values<double>(w, 0, 6, buf);
      ASSERT_EQ(buf[0], 9.0);
    }
  });
  EXPECT_LT(elapsed_seconds(start), kWallClockBound);
  const auto s = plan.summary();
  EXPECT_EQ(s.injected_stall, 1u);
  EXPECT_EQ(s.detected_total(), 0u);
}

// --- bit-for-bit recovery of the CA core under recoverable faults ----------

namespace {

core::DycoreConfig chaos_config() {
  core::DycoreConfig c;
  c.nx = 24;
  c.ny = 16;
  c.nz = 8;
  c.M = 2;
  c.dt_adapt = 30.0;
  c.dt_advect = 120.0;
  c.z_allreduce = AllreduceAlgorithm::kLinearOrdered;
  return c;
}

/// Runs the CA core for `steps` on `dims` ranks under `opts` and returns
/// the gathered global state (valid on the caller).
state::State run_ca(const core::DycoreConfig& cfg, std::array<int, 3> dims,
                    int steps, const RunOptions& opts) {
  state::State global;
  const int p = dims[0] * dims[1] * dims[2];
  Runtime::run(p, opts, [&](Context& ctx) {
    core::CACore core(cfg, ctx, dims);
    auto xi = core.make_state();
    state::InitialOptions init;
    init.kind = state::InitialCondition::kPlanetaryWave;
    core.initialize(xi, init);
    core.run(xi, steps);
    state::State g =
        core::gather_global(core.op_context(), ctx, core.topology(), xi);
    if (ctx.world_rank() == 0) global = std::move(g);
  });
  return global;
}

}  // namespace

TEST(FaultInjection, CACoreRecoversBitForBitFromRecoverableFaults) {
  const auto cfg = chaos_config();
  const std::array<int, 3> dims{1, 2, 2};
  constexpr int kSteps = 2;

  const state::State reference = run_ca(cfg, dims, kSteps, RunOptions{});

  FaultPlan plan(4242);
  plan.add_rule(rule(FaultKind::kDrop, 0.08));
  plan.add_rule(rule(FaultKind::kDuplicate, 0.08));
  plan.add_rule(rule(FaultKind::kDelay, 0.08, 2));
  RunOptions opts;
  opts.faults = &plan;
  const auto start = Clock::now();
  const state::State chaos = run_ca(cfg, dims, kSteps, opts);
  EXPECT_LT(elapsed_seconds(start), kWallClockBound);

  const auto s = plan.summary();
  EXPECT_GT(s.injected_total(), 0u) << "plan injected nothing; test is vacuous";
  EXPECT_EQ(s.detected_total(), 0u);
  const double diff =
      state::State::max_abs_diff(chaos, reference, reference.interior());
  EXPECT_EQ(diff, 0.0) << "recovery was not bit-for-bit";
}

TEST(FaultInjection, FaultSummaryReportRendersCounters) {
  FaultPlan plan(5);
  plan.add_rule(rule(FaultKind::kDrop, 1.0));
  (void)plan.decide("stencil", 0, 1, 1, 1);
  std::ostringstream out;
  perf::print_fault_summary(out, plan.summary(), "chaos run");
  EXPECT_NE(out.str().find("injected 1"), std::string::npos);
  EXPECT_NE(out.str().find("drop"), std::string::npos);
}

}  // namespace
}  // namespace ca::comm
