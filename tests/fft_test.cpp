// FFT correctness: fast transforms vs the O(n^2) reference, round trips,
// and the algebraic properties the Fourier filter relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "fft/dft.hpp"
#include "fft/fft.hpp"
#include "util/math.hpp"

namespace ca::fft {
namespace {

std::vector<cplx> random_signal(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx{dist(rng), dist(rng)};
  return v;
}

class FftSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeSweep, ForwardMatchesReferenceDft) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 42 + static_cast<unsigned>(n));
  std::vector<cplx> ref(n);
  dft(x, ref, /*inverse=*/false);

  std::vector<cplx> fast = x;
  Plan plan(n);
  plan.forward(fast);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(fast[k].real(), ref[k].real(), 1e-9 * n) << "k=" << k;
    EXPECT_NEAR(fast[k].imag(), ref[k].imag(), 1e-9 * n) << "k=" << k;
  }
}

TEST_P(FftSizeSweep, InverseMatchesReferenceDft) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 7 + static_cast<unsigned>(n));
  std::vector<cplx> ref(n);
  dft(x, ref, /*inverse=*/true);

  std::vector<cplx> fast = x;
  Plan plan(n);
  plan.inverse(fast);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(fast[k].real(), ref[k].real(), 1e-10 * n);
    EXPECT_NEAR(fast[k].imag(), ref[k].imag(), 1e-10 * n);
  }
}

TEST_P(FftSizeSweep, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 1000 + static_cast<unsigned>(n));
  std::vector<cplx> y = x;
  Plan plan(n);
  plan.forward(y);
  plan.inverse(y);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(y[k].real(), x[k].real(), 1e-10 * n);
    EXPECT_NEAR(y[k].imag(), x[k].imag(), 1e-10 * n);
  }
}

TEST_P(FftSizeSweep, ParsevalHolds) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 5 + static_cast<unsigned>(n));
  double time_energy = 0;
  for (const auto& v : x) time_energy += std::norm(v);
  std::vector<cplx> y = x;
  Plan plan(n);
  plan.forward(y);
  double freq_energy = 0;
  for (const auto& v : y) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n),
              1e-8 * time_energy * static_cast<double>(n));
}

// Sizes: powers of two (radix-2 path), primes, composites, and the paper's
// n_x = 720.
INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeSweep,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{4}, std::size_t{8},
                                           std::size_t{16}, std::size_t{64},
                                           std::size_t{3}, std::size_t{5},
                                           std::size_t{7}, std::size_t{13},
                                           std::size_t{12}, std::size_t{30},
                                           std::size_t{45}, std::size_t{100},
                                           std::size_t{360},
                                           std::size_t{720}),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "n" + std::to_string(i.param);
                         });

TEST(Fft, LinearityProperty) {
  const std::size_t n = 48;
  auto x = random_signal(n, 1);
  auto y = random_signal(n, 2);
  const cplx a{2.0, -0.5}, b{-1.0, 3.0};
  std::vector<cplx> combo(n), fx = x, fy = y;
  for (std::size_t i = 0; i < n; ++i) combo[i] = a * x[i] + b * y[i];
  Plan plan(n);
  plan.forward(combo);
  plan.forward(fx);
  plan.forward(fy);
  for (std::size_t k = 0; k < n; ++k) {
    const cplx expect = a * fx[k] + b * fy[k];
    EXPECT_NEAR(combo[k].real(), expect.real(), 1e-9 * n);
    EXPECT_NEAR(combo[k].imag(), expect.imag(), 1e-9 * n);
  }
}

TEST(Fft, PureToneHasSingleBin) {
  const std::size_t n = 720;
  const std::size_t tone = 37;
  std::vector<cplx> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = 2.0 * util::kPi * static_cast<double>(tone * i) /
                         static_cast<double>(n);
    x[i] = cplx{std::cos(angle), std::sin(angle)};
  }
  Plan plan(n);
  plan.forward(x);
  for (std::size_t k = 0; k < n; ++k) {
    const double expect = (k == tone) ? static_cast<double>(n) : 0.0;
    EXPECT_NEAR(std::abs(x[k]), expect, 1e-7);
  }
}

TEST(Fft, RealInputHasConjugateSymmetry) {
  const std::size_t n = 90;
  std::mt19937 rng(9);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<cplx> x(n);
  for (auto& v : x) v = cplx{dist(rng), 0.0};
  Plan plan(n);
  plan.forward(x);
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_NEAR(x[k].real(), x[n - k].real(), 1e-10);
    EXPECT_NEAR(x[k].imag(), -x[n - k].imag(), 1e-10);
  }
}

TEST(Fft, ZeroLengthThrows) { EXPECT_THROW(Plan plan(0), std::invalid_argument); }

TEST(Fft, PlanIsReusable) {
  const std::size_t n = 720;
  Plan plan(n);
  for (int trial = 0; trial < 3; ++trial) {
    auto x = random_signal(n, 100 + static_cast<unsigned>(trial));
    auto y = x;
    plan.forward(y);
    plan.inverse(y);
    for (std::size_t k = 0; k < n; ++k)
      EXPECT_NEAR(std::abs(y[k] - x[k]), 0.0, 1e-8);
  }
}

class RealFftSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RealFftSweep, MatchesComplexTransform) {
  const std::size_t n = GetParam();
  std::mt19937 rng(17 + static_cast<unsigned>(n));
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> x(n);
  for (auto& v : x) v = dist(rng);

  std::vector<cplx> ref(n);
  for (std::size_t i = 0; i < n; ++i) ref[i] = cplx{x[i], 0.0};
  Plan cplan(n);
  cplan.forward(ref);

  RealPlan rplan(n);
  std::vector<cplx> spec(n / 2 + 1);
  rplan.forward(x, spec);
  for (std::size_t k = 0; k <= n / 2; ++k) {
    EXPECT_NEAR(spec[k].real(), ref[k].real(), 1e-9 * n) << "k=" << k;
    EXPECT_NEAR(spec[k].imag(), ref[k].imag(), 1e-9 * n) << "k=" << k;
  }
}

TEST_P(RealFftSweep, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  std::mt19937 rng(29 + static_cast<unsigned>(n));
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  std::vector<double> x(n), back(n);
  for (auto& v : x) v = dist(rng);
  RealPlan plan(n);
  std::vector<cplx> spec(n / 2 + 1);
  plan.forward(x, spec);
  plan.inverse(spec, back);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(back[i], x[i], 1e-10 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RealFftSweep,
                         ::testing::Values(std::size_t{2}, std::size_t{4},
                                           std::size_t{8}, std::size_t{64},
                                           std::size_t{6}, std::size_t{10},
                                           std::size_t{90},
                                           std::size_t{720}),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "n" + std::to_string(i.param);
                         });

TEST(RealFft, OddOrTinySizesThrow) {
  EXPECT_THROW(RealPlan plan(5), std::invalid_argument);
  EXPECT_THROW(RealPlan plan(1), std::invalid_argument);
  EXPECT_THROW(RealPlan plan(0), std::invalid_argument);
}

}  // namespace
}  // namespace ca::fft
