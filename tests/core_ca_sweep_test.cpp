// Parameter sweeps of the communication-avoiding core: every combination
// of M, finite-difference order, vertical-level stretching, and
// decomposition must (a) run stably and (b) remain
// decomposition-invariant in exact mode.
#include <gtest/gtest.h>

#include <array>

#include "comm/runtime.hpp"
#include "core/ca_core.hpp"
#include "core/diagnostics.hpp"
#include "core/exchange.hpp"

namespace ca::core {
namespace {

struct SweepCase {
  int M;
  int x_order;
  bool stretched;
  std::array<int, 3> dims;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const auto& c = info.param;
  return "M" + std::to_string(c.M) + "_ord" + std::to_string(c.x_order) +
         (c.stretched ? "_str" : "_uni") + "_py" +
         std::to_string(c.dims[1]) + "pz" + std::to_string(c.dims[2]);
}

DycoreConfig sweep_config(const SweepCase& c) {
  DycoreConfig cfg;
  cfg.nx = 24;
  // Block-size constraint: ny/py >= 3M + 2.
  cfg.ny = c.dims[1] * (3 * c.M + 4);
  cfg.nz = std::max(8, c.dims[2] * 4);
  cfg.M = c.M;
  cfg.dt_adapt = 30.0;
  cfg.dt_advect = 120.0;
  cfg.params.x_order = c.x_order;
  cfg.stretched_levels = c.stretched;
  cfg.z_allreduce = comm::AllreduceAlgorithm::kLinearOrdered;
  return cfg;
}

class CASweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(CASweep, StableAndDecompositionInvariant) {
  const auto& param = GetParam();
  const auto cfg = sweep_config(param);
  const auto ic = state::InitialCondition::kPlanetaryWave;
  constexpr int kSteps = 2;

  CAOptions opts;
  opts.fresh_c_on_block_face = false;  // exact mode

  state::State reference;
  comm::Runtime::run(1, [&](comm::Context& ctx) {
    CACore core(cfg, ctx, {1, 1, 1}, opts);
    auto xi = core.make_state();
    state::InitialOptions o;
    o.kind = ic;
    core.initialize(xi, o);
    core.run(xi, kSteps);
    reference = gather_global(core.op_context(), ctx, core.topology(), xi);
  });

  // Stability.
  GlobalDiag diag;
  {
    mesh::LatLonMesh mesh(cfg.nx, cfg.ny, cfg.nz);
    auto levels = cfg.stretched_levels ? mesh::SigmaLevels::stretched(cfg.nz)
                                       : mesh::SigmaLevels::uniform(cfg.nz);
    state::Stratification strat(levels);
    mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
    ops::OpContext ctx{&mesh, &levels, &strat, &d, cfg.params};
    diag = local_diagnostics(ctx, reference);
  }
  EXPECT_TRUE(std::isfinite(diag.total_energy()));
  EXPECT_LT(diag.max_abs_u, 500.0);

  const int p = param.dims[0] * param.dims[1] * param.dims[2];
  comm::Runtime::run(p, [&](comm::Context& ctx) {
    CACore core(cfg, ctx, param.dims, opts);
    auto xi = core.make_state();
    state::InitialOptions o;
    o.kind = ic;
    core.initialize(xi, o);
    core.run(xi, kSteps);
    auto g = gather_global(core.op_context(), ctx, core.topology(), xi);
    if (ctx.world_rank() == 0) {
      EXPECT_LT(state::State::max_abs_diff(g, reference,
                                           reference.interior()),
                1e-8)
          << case_name({GetParam(), 0});
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Parameters, CASweep,
    ::testing::Values(SweepCase{2, 4, false, {1, 2, 1}},
                      SweepCase{3, 4, false, {1, 2, 1}},
                      SweepCase{4, 4, false, {1, 2, 1}},
                      SweepCase{2, 2, false, {1, 2, 1}},
                      SweepCase{2, 4, true, {1, 2, 1}},
                      SweepCase{2, 4, false, {1, 2, 2}},
                      SweepCase{2, 2, true, {1, 2, 2}},
                      SweepCase{3, 4, false, {1, 3, 1}}),
    case_name);

TEST(CASweepCounts, ExchangeCountIndependentOfM) {
  // Two exchanges per steady step for every M — the whole point.
  for (int M : {2, 3, 4}) {
    DycoreConfig cfg;
    cfg.nx = 24;
    cfg.ny = 2 * (3 * M + 4);
    cfg.nz = 8;
    cfg.M = M;
    comm::Runtime::run(2, [&](comm::Context& ctx) {
      CACore core(cfg, ctx, {1, 2, 1});
      auto xi = core.make_state();
      state::InitialOptions o;
      o.kind = state::InitialCondition::kPlanetaryWave;
      core.initialize(xi, o);
      core.step(xi);
      auto before = ctx.stats().phase_totals("stencil");
      core.step(xi);
      auto after = ctx.stats().phase_totals("stencil");
      // 10 items in the adaptation exchange + 5 in the advection one,
      // one neighbor.
      EXPECT_EQ(after.p2p_messages - before.p2p_messages, 15u)
          << "M = " << M;
    });
  }
}

}  // namespace
}  // namespace ca::core
