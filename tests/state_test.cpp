// State container arithmetic, the IAP transform (eq. 1), stratification,
// and initial conditions.
#include <gtest/gtest.h>

#include <cmath>

#include "core/dycore_config.hpp"
#include "mesh/decomp.hpp"
#include "state/initial.hpp"
#include "state/state.hpp"
#include "state/stratification.hpp"
#include "state/transforms.hpp"
#include "util/math.hpp"

namespace ca::state {
namespace {

StateHalo test_halo() { return core::halos_for_depth(1); }

TEST(State, RegionScopedArithmetic) {
  State a(4, 4, 3, test_halo()), b(4, 4, 3, test_halo()),
      c(4, 4, 3, test_halo());
  a.fill(1.0);
  b.fill(2.0);
  c.fill(-5.0);
  mesh::Box half{0, 4, 0, 2, 0, 3};
  c.add_scaled(a, 3.0, b, half);
  EXPECT_DOUBLE_EQ(c.u()(0, 0, 0), 7.0);
  EXPECT_DOUBLE_EQ(c.phi()(3, 1, 2), 7.0);
  EXPECT_DOUBLE_EQ(c.psa()(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(c.u()(0, 3, 0), -5.0) << "outside region untouched";
  EXPECT_DOUBLE_EQ(c.psa()(0, 3), -5.0);

  c.average(a, b, half);
  EXPECT_DOUBLE_EQ(c.v()(1, 0, 1), 1.5);
  c.assign(b, half);
  EXPECT_DOUBLE_EQ(c.v()(1, 1, 1), 2.0);
}

TEST(State, RegionClipsToAllocatedHalo) {
  State a(4, 4, 3, test_halo()), b(4, 4, 3, test_halo());
  a.fill(1.0);
  b.fill(0.0);
  // A huge region must clip instead of crashing.
  b.assign(a, mesh::Box{-100, 100, -100, 100, -100, 100});
  EXPECT_DOUBLE_EQ(b.u()(-3, -2, -1), 1.0);
  EXPECT_DOUBLE_EQ(b.u()(6, 5, 3), 1.0);
}

TEST(State, MaxAbsDiff) {
  State a(3, 3, 2, test_halo()), b(3, 3, 2, test_halo());
  a.fill(0.0);
  b.fill(0.0);
  b.phi()(1, 2, 1) = 0.25;
  b.psa()(2, 0) = -0.5;
  EXPECT_DOUBLE_EQ(State::max_abs_diff(a, b, a.interior()), 0.5);
}

TEST(Stratification, StandardAtmosphereProfile) {
  auto levels = mesh::SigmaLevels::uniform(20);
  Stratification strat(levels);
  EXPECT_NEAR(strat.t_surface(), 288.15, 1.0);
  // Temperature decreases with height until the isothermal stratosphere.
  EXPECT_LT(strat.t_ref(0), strat.t_ref(19));
  EXPECT_GE(strat.t_ref(0), 216.0);
  // P factor of the reference state.
  EXPECT_NEAR(strat.p_factor_ref(),
              std::sqrt((1.0e5 - 220.0) / 1.0e5), 1e-12);
  EXPECT_GT(strat.rho_sa(), 1.0);
  EXPECT_LT(strat.rho_sa(), 1.5);
}

TEST(Stratification, TStandardMonotoneInPressure) {
  double prev = 0.0;
  for (double p : {5e3, 2e4, 5e4, 8e4, 1e5}) {
    const double t = Stratification::t_standard(p);
    EXPECT_GE(t, 216.65);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(Transforms, RoundTripIsIdentity) {
  mesh::LatLonMesh mesh(16, 8, 4);
  auto levels = mesh::SigmaLevels::uniform(4);
  Stratification strat(levels);
  const StateHalo halo = test_halo();
  PhysicalState phys(16, 8, 4, halo);
  // Smooth fields incl. a pressure anomaly.
  for (int j = -1; j < 9; ++j) {
    for (int i = -1; i < 17; ++i) {
      if (!phys.ps.in_bounds(i, j)) continue;
      phys.ps(i, j) = 1.0e5 + 500.0 * std::sin(0.3 * i) * std::cos(0.5 * j);
    }
  }
  for (int k = 0; k < 4; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 16; ++i) {
        phys.u(i, j, k) = 10.0 * std::sin(0.4 * i + j);
        phys.v(i, j, k) = 5.0 * std::cos(0.2 * i - k);
        phys.t(i, j, k) = strat.t_ref(k) + 3.0 * std::sin(0.1 * i * j);
      }

  State xi(16, 8, 4, halo);
  to_transformed(phys, strat, xi);
  PhysicalState back(16, 8, 4, halo);
  // to_physical reads the psa halo through staggered averages; mirror the
  // ps halo values used on the forward path.
  for (int j = -halo.hy2; j < 8 + halo.hy2; ++j)
    for (int i = -halo.hx2; i < 16 + halo.hx2; ++i)
      if (phys.ps.in_bounds(i, j) && xi.psa().in_bounds(i, j) &&
          (i < 0 || i >= 16 || j < 0 || j >= 8))
        xi.psa()(i, j) = phys.ps(i, j) - strat.ps_ref();
  to_physical(xi, strat, back);
  for (int k = 0; k < 4; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 16; ++i) {
        EXPECT_NEAR(back.u(i, j, k), phys.u(i, j, k), 1e-10);
        EXPECT_NEAR(back.v(i, j, k), phys.v(i, j, k), 1e-10);
        EXPECT_NEAR(back.t(i, j, k), phys.t(i, j, k), 1e-9);
      }
  for (int j = 0; j < 8; ++j)
    for (int i = 0; i < 16; ++i)
      EXPECT_NEAR(back.ps(i, j), phys.ps(i, j), 1e-9);
}

TEST(Transforms, RestStateMapsToZero) {
  mesh::LatLonMesh mesh(16, 8, 4);
  auto levels = mesh::SigmaLevels::uniform(4);
  Stratification strat(levels);
  PhysicalState phys(16, 8, 4, test_halo());
  phys.u.fill(0.0);
  phys.v.fill(0.0);
  phys.ps.fill(strat.ps_ref());
  for (int k = 0; k < 4; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 16; ++i) phys.t(i, j, k) = strat.t_ref(k);
  State xi(16, 8, 4, test_halo());
  to_transformed(phys, strat, xi);
  EXPECT_DOUBLE_EQ(State::max_abs_diff(
                       xi, State(16, 8, 4, test_halo()), xi.interior()),
                   0.0);
}

class InitialSweep : public ::testing::TestWithParam<InitialCondition> {};

TEST_P(InitialSweep, DecompositionInvariant) {
  // The same global state must emerge from any decomposition.
  mesh::LatLonMesh mesh(24, 12, 6);
  auto levels = mesh::SigmaLevels::uniform(6);
  Stratification strat(levels);
  InitialOptions opt;
  opt.kind = GetParam();

  mesh::DomainDecomp whole(mesh, {1, 1, 1}, {0, 0, 0});
  State global(24, 12, 6, test_halo());
  initialize(global, mesh, levels, strat, whole, opt);

  mesh::DomainDecomp part(mesh, {1, 3, 2}, {0, 1, 1});
  State local(24, part.lny(), part.lnz(), test_halo());
  initialize(local, mesh, levels, strat, part, opt);

  for (int k = 0; k < part.lnz(); ++k)
    for (int j = 0; j < part.lny(); ++j)
      for (int i = 0; i < part.lnx(); ++i) {
        EXPECT_DOUBLE_EQ(local.u()(i, j, k),
                         global.u()(part.gi(i), part.gj(j), part.gk(k)));
        EXPECT_DOUBLE_EQ(local.phi()(i, j, k),
                         global.phi()(part.gi(i), part.gj(j), part.gk(k)));
      }
  for (int j = 0; j < part.lny(); ++j)
    for (int i = 0; i < part.lnx(); ++i)
      EXPECT_DOUBLE_EQ(local.psa()(i, j),
                       global.psa()(part.gi(i), part.gj(j)));
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, InitialSweep,
    ::testing::Values(InitialCondition::kRestIsothermal,
                      InitialCondition::kZonalJet,
                      InitialCondition::kPlanetaryWave,
                      InitialCondition::kRandomPerturbation),
    [](const ::testing::TestParamInfo<InitialCondition>& i) {
      switch (i.param) {
        case InitialCondition::kRestIsothermal:
          return std::string("rest");
        case InitialCondition::kZonalJet:
          return std::string("jet");
        case InitialCondition::kPlanetaryWave:
          return std::string("wave");
        default:
          return std::string("random");
      }
    });

TEST(Initial, JetHasExpectedStructure) {
  mesh::LatLonMesh mesh(24, 12, 6);
  auto levels = mesh::SigmaLevels::uniform(6);
  Stratification strat(levels);
  mesh::DomainDecomp whole(mesh, {1, 1, 1}, {0, 0, 0});
  State xi(24, 12, 6, test_halo());
  InitialOptions opt;
  opt.kind = InitialCondition::kZonalJet;
  initialize(xi, mesh, levels, strat, whole, opt);
  // Westerly (positive U) everywhere, peak away from equator and poles,
  // V identically zero.
  double max_u = 0.0;
  for (int j = 0; j < 12; ++j) max_u = std::max(max_u, xi.u()(0, j, 1));
  EXPECT_GT(max_u, 0.0);
  EXPECT_DOUBLE_EQ(xi.v()(5, 5, 2), 0.0);
  // Zonally uniform.
  EXPECT_DOUBLE_EQ(xi.u()(0, 4, 1), xi.u()(13, 4, 1));
  EXPECT_DOUBLE_EQ(xi.psa()(3, 3), 0.0);
}

}  // namespace
}  // namespace ca::state
