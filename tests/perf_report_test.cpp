// Simulation-result reporting: summaries, imbalance, CSV emission.
#include <gtest/gtest.h>

#include <sstream>

#include "perf/report.hpp"
#include "perf/schedule.hpp"

namespace ca::perf {
namespace {

MachineModel unit_machine() {
  MachineModel m;
  m.alpha = 1.0;
  m.beta = 0.001;
  m.flop_time = 0.1;
  m.collective_round_overhead = 0.0;
  return m;
}

SimResult two_phase_result() {
  Schedule s(2);
  s.add_compute(0, 10.0, "work");   // 1 s
  s.add_compute(1, 30.0, "work");   // 3 s
  s.add_isend(0, 1, 1000, "comm");  // 1 s alpha
  s.add_irecv(1, 0, "comm");
  s.add_waitall(1, "comm");
  return simulate(s, unit_machine());
}

TEST(Report, SummaryStatistics) {
  auto result = two_phase_result();
  auto rows = summarize(result);
  ASSERT_EQ(rows.size(), 2u);
  // Sorted by phase name: comm, work.
  EXPECT_EQ(rows[0].phase, "comm");
  EXPECT_EQ(rows[1].phase, "work");
  EXPECT_DOUBLE_EQ(rows[1].max_seconds, 3.0);
  EXPECT_DOUBLE_EQ(rows[1].avg_seconds, 2.0);
  EXPECT_DOUBLE_EQ(rows[1].imbalance, 1.5);
  EXPECT_EQ(rows[0].messages, 1u);
  EXPECT_EQ(rows[0].bytes, 1000u);
}

TEST(Report, CriticalRankIsSlowest) {
  auto result = two_phase_result();
  EXPECT_EQ(critical_rank(result), 1);
}

TEST(Report, PrintSummaryContainsPhases) {
  auto result = two_phase_result();
  std::ostringstream out;
  print_summary(out, result, "test schedule");
  const std::string text = out.str();
  EXPECT_NE(text.find("test schedule"), std::string::npos);
  EXPECT_NE(text.find("comm"), std::string::npos);
  EXPECT_NE(text.find("work"), std::string::npos);
  EXPECT_NE(text.find("critical rank 1"), std::string::npos);
}

TEST(Report, CsvHeaderOnceAndRows) {
  auto result = two_phase_result();
  std::ostringstream out;
  append_csv(out, "run_a", result);
  append_csv(out, "run_b", result);
  const std::string text = out.str();
  // One header, four data rows (2 phases x 2 labels).
  EXPECT_EQ(text.find("label,phase"), 0u);
  EXPECT_EQ(text.rfind("label,phase"), 0u);
  int rows = 0;
  for (char c : text)
    if (c == '\n') ++rows;
  EXPECT_EQ(rows, 1 + 4);
  EXPECT_NE(text.find("run_a,comm"), std::string::npos);
  EXPECT_NE(text.find("run_b,work"), std::string::npos);
}

TEST(Report, EmptyScheduleIsHarmless) {
  Schedule s(3);
  auto result = simulate(s, unit_machine());
  EXPECT_TRUE(summarize(result).empty());
  EXPECT_EQ(critical_rank(result), 0);  // all ranks at t = 0
  std::ostringstream out;
  print_summary(out, result, "empty");
  EXPECT_NE(out.str().find("empty"), std::string::npos);
}

}  // namespace
}  // namespace ca::perf
