// Stencil footprints of every term in the paper's Tables 1-3, measured by
// perturbation probing of the actual kernels.  The x footprints reproduce
// the tables' 4th-order patterns; y and z footprints are the 2nd-order
// {j, j+-1} / {k, k+-1} patterns; the HALO-WIDTH consequences (per-update
// widths 1 in y and z, <= 3 in x, +-2 smoothing) that the
// communication-avoiding halos rely on are asserted for every term.
#include <gtest/gtest.h>

#include <cmath>

#include "core/dycore_config.hpp"
#include "core/exchange.hpp"
#include "core/serial_core.hpp"
#include "ops/adaptation.hpp"
#include "ops/advection.hpp"
#include "ops/footprint.hpp"
#include "ops/smoothing.hpp"
#include "ops/tendency.hpp"

namespace ca::ops {
namespace {

/// Serial fixture with smooth nontrivial fields and computed diagnostics.
class FootprintFixture : public ::testing::Test {
 protected:
  FootprintFixture()
      : core_(make_config()),
        xi_(core_.make_state()),
        ws_(make_config().nx, make_config().ny, make_config().nz,
            core::halos_for_depth(1)) {
    state::InitialOptions opt;
    opt.kind = state::InitialCondition::kPlanetaryWave;
    core_.initialize(xi_, opt);
    // Add an x-varying pressure anomaly so pes-derivative terms are live.
    for (int j = 0; j < xi_.lny(); ++j)
      for (int i = 0; i < xi_.lnx(); ++i)
        xi_.psa()(i, j) = 300.0 * std::sin(0.7 * i + 0.3 * j);
    core_.fill_boundaries(xi_);
    refresh();
  }

  /// Recomputes all diagnostics from the (possibly perturbed) state.
  void refresh() {
    core::compute_diagnostics(core_.op_context(), nullptr, nullptr, xi_,
                              xi_.interior(), ws_, false,
                              comm::AllreduceAlgorithm::kAuto, "fp");
  }

  static core::DycoreConfig make_config() {
    core::DycoreConfig c;
    c.nx = 16;
    c.ny = 12;
    c.nz = 6;
    return c;
  }

  /// Probes a term treating U, V, Phi, psa AND the derived fields the
  /// paper's tables treat as stencil inputs (phi', sigma-dot/W, p_es).
  std::set<Offset> probe(std::function<double()> eval, int i0, int j0,
                         int k0, int radius = 4) {
    FootprintProbe p;
    p.inputs3d = {&xi_.u(), &xi_.v(), &xi_.phi(), &ws_.vert.phi_geo,
                  &ws_.vert.sdot, &ws_.vert.w, &ws_.local.div};
    p.inputs2d = {&xi_.psa(), &ws_.local.pes, &ws_.local.pfac,
                  &ws_.vert.divsum};
    p.eval = std::move(eval);
    return measure_footprint(p, i0, j0, k0, radius);
  }

  core::SerialCore core_;
  state::State xi_;
  DiagWorkspace ws_;
};

constexpr int kI = 7, kJ = 5, kK = 2;

// --------------------------- Table 1: adaptation ---------------------------

TEST_F(FootprintFixture, Table1_PLambda1) {
  AdaptationTerms t(core_.op_context(), xi_, ws_.local, ws_.vert);
  auto fp = probe([&] { return t.p_lambda1(kI, kJ, kK); }, kI, kJ, kK);
  // Table 1: x in {i, i+-1, i-2}; y = j; z local (phi' carries the k,k+1
  // coupling through the hydrostatic integral in C).
  EXPECT_EQ(x_offsets(fp), (std::set<int>{-2, -1, 0, 1}));
  EXPECT_EQ(y_offsets(fp), (std::set<int>{0}));
  EXPECT_EQ(z_offsets(fp), (std::set<int>{0}));
}

TEST_F(FootprintFixture, Table1_PLambda2) {
  AdaptationTerms t(core_.op_context(), xi_, ws_.local, ws_.vert);
  auto fp = probe([&] { return t.p_lambda2(kI, kJ, kK); }, kI, kJ, kK);
  EXPECT_EQ(x_offsets(fp), (std::set<int>{-2, -1, 0, 1}));
  EXPECT_EQ(y_offsets(fp), (std::set<int>{0}));
  EXPECT_EQ(z_offsets(fp), (std::set<int>{0}));
}

TEST_F(FootprintFixture, Table1_CoriolisU) {
  AdaptationTerms t(core_.op_context(), xi_, ws_.local, ws_.vert);
  auto fp = probe([&] { return t.coriolis_u(kI, kJ, kK); }, kI, kJ, kK);
  // Table 1 f*V: x in {i, i-1}, y in {j, j-1}.
  EXPECT_EQ(x_offsets(fp), (std::set<int>{-1, 0}));
  EXPECT_EQ(y_offsets(fp), (std::set<int>{-1, 0}));
  EXPECT_EQ(z_offsets(fp), (std::set<int>{0}));
}

TEST_F(FootprintFixture, Table1_PTheta1) {
  AdaptationTerms t(core_.op_context(), xi_, ws_.local, ws_.vert);
  auto fp = probe([&] { return t.p_theta1(kI, kJ, kK); }, kI, kJ, kK);
  EXPECT_EQ(x_offsets(fp), (std::set<int>{0}));
  EXPECT_EQ(y_offsets(fp), (std::set<int>{0, 1}));  // Table 1: j, j+1
  EXPECT_EQ(z_offsets(fp), (std::set<int>{0}));
}

TEST_F(FootprintFixture, Table1_PTheta2) {
  AdaptationTerms t(core_.op_context(), xi_, ws_.local, ws_.vert);
  auto fp = probe([&] { return t.p_theta2(kI, kJ, kK); }, kI, kJ, kK);
  EXPECT_EQ(x_offsets(fp), (std::set<int>{0}));
  EXPECT_EQ(y_offsets(fp), (std::set<int>{0, 1}));
  EXPECT_EQ(z_offsets(fp), (std::set<int>{0}));
}

TEST_F(FootprintFixture, Table1_CoriolisV) {
  AdaptationTerms t(core_.op_context(), xi_, ws_.local, ws_.vert);
  auto fp = probe([&] { return t.coriolis_v(kI, kJ, kK); }, kI, kJ, kK);
  // Table 1 f*U: x in {i, i+1}, y in {j, j+1}.
  EXPECT_EQ(x_offsets(fp), (std::set<int>{0, 1}));
  EXPECT_EQ(y_offsets(fp), (std::set<int>{0, 1}));
}

TEST_F(FootprintFixture, Table1_Omega1) {
  AdaptationTerms t(core_.op_context(), xi_, ws_.local, ws_.vert);
  auto fp = probe([&] { return t.omega1(kI, kJ, kK); }, kI, kJ, kK);
  // Table 1 Omega^1: x = i, y = j, z in {k, k+1} (through W at the two
  // bounding interfaces).
  EXPECT_EQ(x_offsets(fp), (std::set<int>{0}));
  EXPECT_EQ(y_offsets(fp), (std::set<int>{0}));
  EXPECT_EQ(z_offsets(fp), (std::set<int>{0, 1}));
}

TEST_F(FootprintFixture, Table1_Omega2Theta) {
  AdaptationTerms t(core_.op_context(), xi_, ws_.local, ws_.vert);
  auto fp = probe([&] { return t.omega2_theta(kI, kJ, kK); }, kI, kJ, kK);
  EXPECT_EQ(x_offsets(fp), (std::set<int>{0}));
  EXPECT_EQ(y_offsets(fp), (std::set<int>{-1, 0, 1}));  // j, j+-1
}

TEST_F(FootprintFixture, Table1_Omega2Lambda) {
  AdaptationTerms t(core_.op_context(), xi_, ws_.local, ws_.vert);
  auto fp = probe([&] { return t.omega2_lambda(kI, kJ, kK); }, kI, kJ, kK);
  EXPECT_EQ(x_offsets(fp), (std::set<int>{-2, -1, 0, 1, 2}));
  EXPECT_EQ(y_offsets(fp), (std::set<int>{0}));
}

TEST_F(FootprintFixture, Table1_Dsa) {
  AdaptationTerms t(core_.op_context(), xi_, ws_.local, ws_.vert);
  auto fp = probe([&] { return t.d_sa(kI, kJ); }, kI, kJ, 0);
  EXPECT_EQ(x_offsets(fp), (std::set<int>{-1, 0, 1}));  // i, i+-1
  EXPECT_EQ(y_offsets(fp), (std::set<int>{-1, 0, 1}));  // j, j+-1
}

// --------------------------- Table 2: advection -----------------------------

TEST_F(FootprintFixture, Table2_L1U) {
  AdvectionTerms t(core_.op_context(), xi_, ws_.local, ws_.vert);
  auto fp = probe([&] { return t.l1_u(kI, kJ, kK); }, kI, kJ, kK);
  // Table 2: x in {i, i+-1, i+-2, i+-3}; y = j.
  EXPECT_EQ(x_offsets(fp), (std::set<int>{-3, -2, -1, 0, 1, 2, 3}));
  EXPECT_EQ(y_offsets(fp), (std::set<int>{0}));
  EXPECT_EQ(z_offsets(fp), (std::set<int>{0}));
}

TEST_F(FootprintFixture, Table2_L2U) {
  AdvectionTerms t(core_.op_context(), xi_, ws_.local, ws_.vert);
  auto fp = probe([&] { return t.l2_u(kI, kJ, kK); }, kI, kJ, kK);
  EXPECT_EQ(x_offsets(fp), (std::set<int>{-1, 0}));     // i, i-1
  EXPECT_EQ(y_offsets(fp), (std::set<int>{-1, 0, 1}));  // j, j+-1
}

TEST_F(FootprintFixture, Table2_L3U) {
  AdvectionTerms t(core_.op_context(), xi_, ws_.local, ws_.vert);
  auto fp = probe([&] { return t.l3_u(kI, kJ, kK); }, kI, kJ, kK);
  EXPECT_EQ(x_offsets(fp), (std::set<int>{-1, 0}));
  EXPECT_EQ(z_offsets(fp), (std::set<int>{-1, 0, 1}));  // k, k+-1
}

TEST_F(FootprintFixture, Table2_L1V) {
  AdvectionTerms t(core_.op_context(), xi_, ws_.local, ws_.vert);
  auto fp = probe([&] { return t.l1_v(kI, kJ, kK); }, kI, kJ, kK);
  EXPECT_EQ(x_offsets(fp), (std::set<int>{-3, -2, -1, 0, 1, 2, 3}));
  EXPECT_EQ(y_offsets(fp), (std::set<int>{0, 1}));  // j, j+1
}

TEST_F(FootprintFixture, Table2_L2V) {
  AdvectionTerms t(core_.op_context(), xi_, ws_.local, ws_.vert);
  auto fp = probe([&] { return t.l2_v(kI, kJ, kK); }, kI, kJ, kK);
  EXPECT_EQ(x_offsets(fp), (std::set<int>{0}));
  EXPECT_EQ(y_offsets(fp), (std::set<int>{-1, 0, 1}));
}

TEST_F(FootprintFixture, Table2_L3V) {
  AdvectionTerms t(core_.op_context(), xi_, ws_.local, ws_.vert);
  auto fp = probe([&] { return t.l3_v(kI, kJ, kK); }, kI, kJ, kK);
  EXPECT_EQ(x_offsets(fp), (std::set<int>{0}));
  EXPECT_EQ(y_offsets(fp), (std::set<int>{0, 1}));      // j, j+1
  EXPECT_EQ(z_offsets(fp), (std::set<int>{-1, 0, 1}));  // k, k+-1
}

TEST_F(FootprintFixture, Table2_L1Phi) {
  AdvectionTerms t(core_.op_context(), xi_, ws_.local, ws_.vert);
  auto fp = probe([&] { return t.l1_phi(kI, kJ, kK); }, kI, kJ, kK);
  EXPECT_EQ(x_offsets(fp), (std::set<int>{-3, -2, -1, 0, 1, 2, 3}));
  EXPECT_EQ(y_offsets(fp), (std::set<int>{0}));
}

TEST_F(FootprintFixture, Table2_L2Phi) {
  AdvectionTerms t(core_.op_context(), xi_, ws_.local, ws_.vert);
  auto fp = probe([&] { return t.l2_phi(kI, kJ, kK); }, kI, kJ, kK);
  EXPECT_EQ(x_offsets(fp), (std::set<int>{0}));
  EXPECT_EQ(y_offsets(fp), (std::set<int>{-1, 0, 1}));
}

TEST_F(FootprintFixture, Table2_L3Phi) {
  AdvectionTerms t(core_.op_context(), xi_, ws_.local, ws_.vert);
  auto fp = probe([&] { return t.l3_phi(kI, kJ, kK); }, kI, kJ, kK);
  EXPECT_EQ(x_offsets(fp), (std::set<int>{0}));
  EXPECT_EQ(y_offsets(fp), (std::set<int>{0}));
  EXPECT_EQ(z_offsets(fp), (std::set<int>{-1, 0, 1}));
}

// --------------------------- Table 3: smoothing -----------------------------

TEST_F(FootprintFixture, Table3_P1AndP2) {
  // Measure the smoothing through apply_smoothing on a single point.
  auto out = core_.make_state();
  const auto& ctx = core_.op_context();
  // P1 (on U): x in {i, i+-1, i+-2}, y = j.
  {
    FootprintProbe p;
    p.inputs3d = {&xi_.u()};
    p.eval = [&] {
      apply_smoothing(ctx, xi_, out,
                      mesh::Box{kI, kI + 1, kJ, kJ + 1, kK, kK + 1});
      return out.u()(kI, kJ, kK);
    };
    auto fp = measure_footprint(p, kI, kJ, kK, 3);
    EXPECT_EQ(x_offsets(fp), (std::set<int>{-2, -1, 0, 1, 2}));
    EXPECT_EQ(y_offsets(fp), (std::set<int>{0}));
  }
  // P2 (on Phi): x and y in {0, +-1, +-2}.
  {
    FootprintProbe p;
    p.inputs3d = {&xi_.phi()};
    p.eval = [&] {
      apply_smoothing(ctx, xi_, out,
                      mesh::Box{kI, kI + 1, kJ, kJ + 1, kK, kK + 1});
      return out.phi()(kI, kJ, kK);
    };
    auto fp = measure_footprint(p, kI, kJ, kK, 3);
    EXPECT_EQ(x_offsets(fp), (std::set<int>{-2, -1, 0, 1, 2}));
    EXPECT_EQ(y_offsets(fp), (std::set<int>{-2, -1, 0, 1, 2}));
    EXPECT_EQ(z_offsets(fp), (std::set<int>{0}));
  }
}

// ------------------- Halo-width consequences (Section 4.3) -----------------

TEST_F(FootprintFixture, PerUpdateHaloWidthIsOneInYandZ) {
  // The 3M-deep halo argument requires every adaptation/advection term to
  // reach at most one cell in y and z — measure the FULL assembled
  // tendencies.
  AdaptationTerms a(core_.op_context(), xi_, ws_.local, ws_.vert);
  AdvectionTerms l(core_.op_context(), xi_, ws_.local, ws_.vert);
  for (auto eval : std::vector<std::function<double()>>{
           [&] { return a.tend_u(kI, kJ, kK); },
           [&] { return a.tend_v(kI, kJ, kK); },
           [&] { return a.tend_phi(kI, kJ, kK); },
           [&] { return l.tend_u(kI, kJ, kK); },
           [&] { return l.tend_v(kI, kJ, kK); },
           [&] { return l.tend_phi(kI, kJ, kK); }}) {
    auto fp = probe(eval, kI, kJ, kK);
    const auto e = extent(fp);
    EXPECT_GE(e.dj_min, -1);
    EXPECT_LE(e.dj_max, 1);
    EXPECT_GE(e.dk_min, -1);
    EXPECT_LE(e.dk_max, 1);
    EXPECT_GE(e.di_min, -3);
    EXPECT_LE(e.di_max, 3);
  }
}

TEST_F(FootprintFixture, SecondOrderXShrinksFootprints) {
  // The x_order = 2 ablation must use only nearest x neighbors in L1.
  auto cfg = make_config();
  cfg.params.x_order = 2;
  core::SerialCore core2(cfg);
  auto xi2 = core2.make_state();
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kPlanetaryWave;
  core2.initialize(xi2, opt);
  DiagWorkspace ws2(cfg.nx, cfg.ny, cfg.nz, core::halos_for_depth(1));
  core::compute_diagnostics(core2.op_context(), nullptr, nullptr, xi2,
                            xi2.interior(), ws2, false,
                            comm::AllreduceAlgorithm::kAuto, "fp");
  AdvectionTerms t(core2.op_context(), xi2, ws2.local, ws2.vert);
  FootprintProbe p;
  p.inputs3d = {&xi2.phi()};
  p.eval = [&] { return t.l1_phi(kI, kJ, kK); };
  auto fp = measure_footprint(p, kI, kJ, kK, 4);
  const auto e = extent(fp);
  EXPECT_GE(e.di_min, -1);
  EXPECT_LE(e.di_max, 1);
}

}  // namespace
}  // namespace ca::ops
