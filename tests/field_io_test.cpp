// Pressure-level interpolation and text field I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/serial_core.hpp"
#include "state/vertical_interp.hpp"
#include "util/field_io.hpp"
#include "util/math.hpp"

namespace ca {
namespace {

core::DycoreConfig cfg() {
  core::DycoreConfig c;
  c.nx = 16;
  c.ny = 8;
  c.nz = 10;
  return c;
}

TEST(VerticalInterp, LevelPressuresAreMonotone) {
  core::SerialCore core(cfg());
  auto xi = core.make_state();
  xi.fill(0.0);
  const auto& ctx = core.op_context();
  for (int k = 0; k + 1 < 10; ++k)
    EXPECT_LT(state::level_pressure(ctx, xi.psa(), 3, 3, k),
              state::level_pressure(ctx, xi.psa(), 3, 3, k + 1));
  EXPECT_GT(state::level_pressure(ctx, xi.psa(), 3, 3, 0),
            util::kPressureTop);
  EXPECT_LT(state::level_pressure(ctx, xi.psa(), 3, 3, 9), 1.0e5);
}

TEST(VerticalInterp, RecoversLinearInLogPProfile) {
  core::SerialCore core(cfg());
  auto xi = core.make_state();
  xi.fill(0.0);
  const auto& ctx = core.op_context();
  // Field exactly linear in log(p): interpolation must be exact.
  util::Array3D<double> f(16, 8, 10, xi.u().halo());
  for (int k = 0; k < 10; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 16; ++i)
        f(i, j, k) =
            3.0 * std::log(state::level_pressure(ctx, xi.psa(), i, j, k)) -
            5.0;
  const double p500 = 5.0e4;
  auto slab = state::interpolate_to_pressure(ctx, xi.psa(), f, p500);
  for (int j = 0; j < 8; ++j)
    for (int i = 0; i < 16; ++i)
      EXPECT_NEAR(slab(i, j), 3.0 * std::log(p500) - 5.0, 1e-10);
}

TEST(VerticalInterp, ClampsOutOfRangeLevels) {
  core::SerialCore core(cfg());
  auto xi = core.make_state();
  xi.fill(0.0);
  const auto& ctx = core.op_context();
  util::Array3D<double> f(16, 8, 10, xi.u().halo());
  for (int k = 0; k < 10; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 16; ++i) f(i, j, k) = 100.0 + k;
  auto above = state::interpolate_to_pressure(ctx, xi.psa(), f, 1.0);
  EXPECT_DOUBLE_EQ(above(2, 2), 100.0);  // top level
  auto below = state::interpolate_to_pressure(ctx, xi.psa(), f, 2.0e5);
  EXPECT_DOUBLE_EQ(below(2, 2), 109.0);  // bottom level
}

TEST(VerticalInterp, RespondsToSurfacePressureAnomaly) {
  // Raising p_s shifts every level's pressure: the same target level then
  // samples higher (smaller k) model levels.
  core::SerialCore core(cfg());
  auto xi = core.make_state();
  const auto& ctx = core.op_context();
  util::Array3D<double> f(16, 8, 10, xi.u().halo());
  for (int k = 0; k < 10; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 16; ++i) f(i, j, k) = static_cast<double>(k);
  xi.fill(0.0);
  auto flat = state::interpolate_to_pressure(ctx, xi.psa(), f, 5.0e4);
  xi.psa()(4, 4) = 5000.0;  // +50 hPa at one column
  auto high = state::interpolate_to_pressure(ctx, xi.psa(), f, 5.0e4);
  EXPECT_LT(high(4, 4), flat(4, 4))
      << "higher surface pressure maps 500 hPa to a higher model level";
  EXPECT_DOUBLE_EQ(high(0, 0), flat(0, 0)) << "other columns unchanged";
}

TEST(FieldIo, RoundTrip) {
  util::Array2D<double> f(6, 4);
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 6; ++i) f(i, j) = 0.5 * i - 1.25 * j;
  const auto path = (std::filesystem::temp_directory_path() /
                     "ca_agcm_field_io_test.txt")
                        .string();
  util::write_text_field(path, "test field", f);
  auto g = util::read_text_field(path);
  ASSERT_EQ(g.nx(), 6);
  ASSERT_EQ(g.ny(), 4);
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(g(i, j), f(i, j));
  std::remove(path.c_str());
}

TEST(FieldIo, WriteLevelOf3D) {
  util::Array3D<double> f(5, 3, 2, util::Halo3{1, 1, 0});
  for (int k = 0; k < 2; ++k)
    for (int j = 0; j < 3; ++j)
      for (int i = 0; i < 5; ++i) f(i, j, k) = i + 10 * j + 100 * k;
  const auto path = (std::filesystem::temp_directory_path() /
                     "ca_agcm_field_io_level.txt")
                        .string();
  util::write_text_level(path, "level 1", f, 1);
  auto g = util::read_text_field(path);
  for (int j = 0; j < 3; ++j)
    for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(g(i, j), 100.0 + i + 10 * j);
  std::remove(path.c_str());
}

TEST(FieldIo, MalformedFilesThrow) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto bad1 = (dir / "ca_agcm_bad1.txt").string();
  {
    std::ofstream out(bad1);
    out << "no header here\n1 2 3\n";
  }
  EXPECT_THROW(util::read_text_field(bad1), std::runtime_error);
  std::remove(bad1.c_str());

  const auto bad2 = (dir / "ca_agcm_bad2.txt").string();
  {
    std::ofstream out(bad2);
    out << "# label\n# nx 4 ny 3\n1 2 3 4\n5 6\n";  // truncated row
  }
  EXPECT_THROW(util::read_text_field(bad2), std::runtime_error);
  std::remove(bad2.c_str());

  EXPECT_THROW(util::read_text_field("/nonexistent/file.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace ca
